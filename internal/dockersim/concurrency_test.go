package dockersim

import (
	"sync"
	"testing"
	"time"

	"github.com/gear-image/gear/internal/netsim"
)

// TestParallelGearDeploys: distinct containers of one image deploying
// concurrently must all succeed, produce correct content, and fetch
// each Gear file exactly once between them.
func TestParallelGearDeploys(t *testing.T) {
	r := buildRig(t, "nginx", 1)
	d := r.newDaemon(t, 904)
	access := r.access(t, 0)

	const deploys = 8
	deps := make([]*Deployment, deploys)
	errs := make([]error, deploys)
	var wg sync.WaitGroup
	for i := 0; i < deploys; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			deps[i], errs[i] = d.DeployGear("gear/nginx", "v01", access, 0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}

	// Container IDs must be unique.
	ids := make(map[string]bool)
	for _, dep := range deps {
		if ids[dep.ContainerID] {
			t.Errorf("duplicate container id %s", dep.ContainerID)
		}
		ids[dep.ContainerID] = true
	}

	// Every deployment reads the same correct content.
	want, _, err := deps[0].Read(access[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, dep := range deps[1:] {
		got, _, err := dep.Read(access[0])
		if err != nil || string(got) != string(want) {
			t.Fatalf("%s: read mismatch (%v)", dep.ContainerID, err)
		}
	}

	// Singleflight across viewers: remote objects fetched once per
	// distinct fingerprint, regardless of 8 containers faulting them.
	serial := r.newDaemon(t, 904)
	if _, err := serial.DeployGear("gear/nginx", "v01", access, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := d.GearStore().Stats().RemoteObjects, serial.GearStore().Stats().RemoteObjects; got != want {
		t.Errorf("parallel deploys fetched %d objects, serial baseline %d", got, want)
	}

	for _, dep := range deps {
		if _, err := dep.Destroy(); err != nil {
			t.Error(err)
		}
	}
}

// TestParallelMixedModeDeploys: Docker, Gear, and Slacker deploys racing
// on one daemon must be race-free and each produce valid deployments.
func TestParallelMixedModeDeploys(t *testing.T) {
	r := buildRig(t, "redis", 2)
	d := r.newDaemon(t, 904)
	a0, a1 := r.access(t, 0), r.access(t, 1)

	var wg sync.WaitGroup
	errc := make(chan error, 6)
	launch := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				errc <- err
			}
		}()
	}
	for i := 0; i < 2; i++ {
		version, access := "v01", a0
		if i == 1 {
			version, access = "v02", a1
		}
		launch(func() error {
			_, err := d.DeployDocker("redis", version, access, 0)
			return err
		})
		launch(func() error {
			_, err := d.DeployGear("gear/redis", version, access, 0)
			return err
		})
		launch(func() error {
			_, err := d.DeploySlacker("redis", version, access, 0)
			return err
		})
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestFetchWorkersDeployEquivalence: a cold-cache Gear deploy moves the
// same bytes and requests at every worker count, and its deploy time is
// monotonically non-increasing from 1 to 8 workers; workers=1 uses the
// serial fault path (the pre-change baseline).
func TestFetchWorkersDeployEquivalence(t *testing.T) {
	r := buildRig(t, "mysql", 1)
	access := r.access(t, 0)

	type point struct {
		workers int
		time    time.Duration
		bytes   int64
		reqs    int64
	}
	var points []point
	for _, w := range []int{1, 2, 4, 8} {
		d, err := NewDaemon(r.docker, r.gear, Options{
			Link:         netsim.DefaultLAN().WithBandwidth(904.0 / 1000),
			FetchWorkers: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		dep, err := d.DeployGear("gear/mysql", "v01", access, 0)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, point{w, dep.Total(), dep.Pull.Bytes + dep.Run.Bytes,
			dep.Pull.Requests + dep.Run.Requests})
	}
	base := points[0]
	for _, p := range points[1:] {
		if p.bytes != base.bytes || p.reqs != base.reqs {
			t.Errorf("workers=%d: bytes/requests = %d/%d, want %d/%d (volume must not depend on workers)",
				p.workers, p.bytes, p.reqs, base.bytes, base.reqs)
		}
	}
	for i := 1; i < len(points); i++ {
		if points[i].time > points[i-1].time {
			t.Errorf("deploy time increased from workers=%d (%v) to workers=%d (%v)",
				points[i-1].workers, points[i-1].time, points[i].workers, points[i].time)
		}
	}
	if points[0].time <= points[len(points)-1].time {
		t.Logf("note: speedup 1->8 workers: %v -> %v", points[0].time, points[len(points)-1].time)
	}
}

// TestConcurrentDeployDestroyLoop: deploy/read/destroy cycles racing on
// one daemon (the lifecycle the RemoveContainer lock fix protects).
func TestConcurrentDeployDestroyLoop(t *testing.T) {
	r := buildRig(t, "tomcat", 1)
	d := r.newDaemon(t, 904)
	access := r.access(t, 0)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				dep, err := d.DeployGear("gear/tomcat", "v01", access, 0)
				if err != nil {
					t.Errorf("deploy: %v", err)
					return
				}
				if _, _, err := dep.Read(access[0]); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if _, err := dep.Destroy(); err != nil {
					t.Errorf("destroy: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := d.GearStore().Stats().Containers; got != 0 {
		t.Errorf("containers left = %d, want 0", got)
	}
}
