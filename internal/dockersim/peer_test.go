package dockersim

import (
	"fmt"
	"testing"

	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/peer"
)

// peerRig attaches a fleet of daemons to one topology with a tracker
// and peer exchange wired through each daemon's Gear store.
func peerRig(t *testing.T, r *rig, nodes int, wanMbps, lanMbps float64) ([]*Daemon, *peer.Tracker, *netsim.Topology) {
	t.Helper()
	topo, err := netsim.NewTopology(
		netsim.DefaultLAN().WithBandwidth(wanMbps/1000),
		netsim.DefaultLAN().WithBandwidth(lanMbps/1000))
	if err != nil {
		t.Fatal(err)
	}
	tracker := peer.NewTracker()
	network := peer.NewStaticNetwork()
	daemons := make([]*Daemon, nodes)
	for i := 0; i < nodes; i++ {
		id := fmt.Sprintf("node%d", i)
		d, err := NewDaemon(r.docker, r.gear, Options{
			Links: topo.Node(id),
			Peers: peer.NewExchange(id, tracker, network),
		})
		if err != nil {
			t.Fatal(err)
		}
		d.GearStore().Cache().SetHooks(tracker.Hooks(id))
		// Peers serve compressed, like the registry, so wire bytes match
		// whichever source serves.
		network.Add(id, peer.NewServer(id, d.GearStore().Cache(), peer.ServerOptions{Compress: true}))
		daemons[i] = d
	}
	return daemons, tracker, topo
}

// TestPeerDeploySavesRegistryEgress deploys the same image across a
// small fleet: the first node fetches everything from the registry and
// seeds the cluster; later nodes get their Gear files from it over the
// LAN, at identical received bytes.
func TestPeerDeploySavesRegistryEgress(t *testing.T) {
	r := buildRig(t, "nginx", 1)
	access := r.access(t, 0)
	ref := "gear/" + r.series

	// Baseline: same topology shape, no peers.
	solo, err := NewDaemon(r.docker, r.gear, Options{
		Link: netsim.DefaultLAN().WithBandwidth(20.0 / 1000),
	})
	if err != nil {
		t.Fatal(err)
	}
	soloDep, err := solo.DeployGear(ref, "v01", access, 0)
	if err != nil {
		t.Fatal(err)
	}
	soloBytes := soloDep.Pull.Bytes + soloDep.Run.Bytes

	const nodes = 4
	daemons, tracker, topo := peerRig(t, r, nodes, 20, 1000)
	var received []int64
	for i, d := range daemons {
		dep, err := d.DeployGear(ref, "v01", access, 0)
		if err != nil {
			t.Fatal(err)
		}
		wan := dep.Pull.Bytes + dep.Run.Bytes
		lan := d.PeerLink().Stats().Bytes
		received = append(received, wan+lan)
		if i == 0 {
			if lan != 0 {
				t.Errorf("seed node used %d LAN bytes, want 0", lan)
			}
			if wan != soloBytes {
				t.Errorf("seed node WAN bytes = %d, solo baseline = %d; must match", wan, soloBytes)
			}
		} else if st := d.GearStore().Stats(); st.PeerObjects == 0 {
			t.Errorf("node %d fetched no files from peers", i)
		}
	}

	// Every node received the same volume, wherever it came from. The
	// LAN share includes per-object request overhead on both paths, so
	// the comparison is exact.
	for i, got := range received {
		if got != received[0] {
			t.Errorf("node %d received %d bytes, node 0 received %d", i, got, received[0])
		}
	}

	// Fleet-level registry egress collapsed: followers only pull the
	// index image over the WAN.
	wan := topo.WANStats()
	if baseline := soloBytes * nodes; wan.Bytes*2 >= baseline {
		t.Errorf("fleet WAN egress = %d, no-peer baseline = %d; want < 50%%", wan.Bytes, baseline)
	}
	if topo.LANStats().Bytes == 0 {
		t.Error("no peer traffic crossed the LAN")
	}
	if st := tracker.Stats(); st.Holders != nodes {
		t.Errorf("tracker sees %d holders, want %d", st.Holders, nodes)
	}

	// Deploy time accounts the LAN transfers: a follower's run phase is
	// nonzero even though it barely touched the WAN.
	if len(daemons) > 1 {
		if lan := daemons[1].PeerLink().Stats(); lan.Elapsed == 0 {
			t.Error("peer transfers cost no virtual time")
		}
	}
}

// TestTopologyDaemonDegeneratesWithoutPeers pins the single-node
// degeneration: a daemon attached to a topology but with no peer
// source behaves byte-identically to a plain-link daemon.
func TestTopologyDaemonDegeneratesWithoutPeers(t *testing.T) {
	r := buildRig(t, "redis", 1)
	access := r.access(t, 0)
	ref := "gear/" + r.series

	plain, err := NewDaemon(r.docker, r.gear, Options{
		Link: netsim.DefaultLAN().WithBandwidth(20.0 / 1000),
	})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := netsim.NewTopology(
		netsim.DefaultLAN().WithBandwidth(20.0/1000),
		netsim.DefaultLAN().WithBandwidth(1000.0/1000))
	if err != nil {
		t.Fatal(err)
	}
	attached, err := NewDaemon(r.docker, r.gear, Options{Links: topo.Node("only")})
	if err != nil {
		t.Fatal(err)
	}

	a, err := plain.DeployGear(ref, "v01", access, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := attached.DeployGear(ref, "v01", access, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pull.Bytes != b.Pull.Bytes || a.Run.Bytes != b.Run.Bytes {
		t.Errorf("attached daemon moved %d/%d bytes, plain %d/%d",
			b.Pull.Bytes, b.Run.Bytes, a.Pull.Bytes, a.Run.Bytes)
	}
	if a.Total() != b.Total() {
		t.Errorf("attached deploy took %v, plain %v", b.Total(), a.Total())
	}
	if lan := topo.LANStats(); lan.Bytes != 0 || lan.Requests != 0 {
		t.Errorf("peer-less daemon produced LAN traffic: %+v", lan)
	}
}
