package dockersim

import (
	"errors"
	"testing"
	"time"

	"github.com/gear-image/gear/internal/corpus"
	"github.com/gear-image/gear/internal/gear/convert"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/prefetch"
	"github.com/gear-image/gear/internal/registry"
	"github.com/gear-image/gear/internal/slacker"
)

// rig is a full test deployment rig: a corpus series published to a
// Docker registry (originals + Gear index images), a Gear registry, and
// a Slacker block server.
type rig struct {
	corpus    *corpus.Corpus
	docker    *registry.Registry
	gear      *gearregistry.Registry
	slackSrv  *slacker.Server
	series    string
	numImages int
}

func buildRig(t *testing.T, series string, versions int) *rig {
	t.Helper()
	c, err := corpus.New(corpus.Options{
		Seed: 7, Scale: 0.4, SeriesFilter: []string{series}, MaxVersions: versions,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		corpus:   c,
		docker:   registry.New(),
		gear:     gearregistry.New(gearregistry.Options{Compress: true}),
		slackSrv: slacker.NewServer(),
		series:   series,
	}
	conv, err := convert.New(convert.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < versions; v++ {
		img, err := c.Image(series, v)
		if err != nil {
			t.Fatal(err)
		}
		// Docker baseline needs the original image under its own ref;
		// the Gear index image is stored under "gear/<series>".
		if _, err := registry.Push(r.docker, img); err != nil {
			t.Fatal(err)
		}
		res, err := conv.Convert(img)
		if err != nil {
			t.Fatal(err)
		}
		res.Index.Name = "gear/" + series
		ixImg, err := res.Index.ToImage()
		if err != nil {
			t.Fatal(err)
		}
		res.IndexImage = ixImg
		if _, _, err := convert.Publish(res, r.docker, r.gear); err != nil {
			t.Fatal(err)
		}
		bi, err := slacker.FromImage(img, slacker.DefaultBlockSize)
		if err != nil {
			t.Fatal(err)
		}
		r.slackSrv.Put(bi)
		r.numImages++
	}
	return r
}

func (r *rig) newDaemon(t *testing.T, mbps float64) *Daemon {
	t.Helper()
	// The corpus is ~1/1000 of the paper's byte scale; scale the link
	// down by the same factor so deployment times keep the paper's shape.
	d, err := NewDaemon(r.docker, r.gear, Options{Link: netsim.DefaultLAN().WithBandwidth(mbps / 1000)})
	if err != nil {
		t.Fatal(err)
	}
	d.ConfigureSlacker(r.slackSrv)
	return d
}

func (r *rig) access(t *testing.T, version int) []string {
	t.Helper()
	items, err := r.corpus.NecessarySet(r.series, version)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(items))
	for i, it := range items {
		paths[i] = it.Path
	}
	return paths
}

func TestDockerDeploy(t *testing.T) {
	r := buildRig(t, "nginx", 2)
	d := r.newDaemon(t, 904)
	dep, err := d.DeployDocker("nginx", "v01", r.access(t, 0), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Pull.Bytes <= 0 || dep.Pull.Time <= 0 {
		t.Errorf("pull = %+v", dep.Pull)
	}
	if dep.Run.Bytes != 0 {
		t.Errorf("docker run fetched %d bytes; everything should be local", dep.Run.Bytes)
	}
	if dep.Run.Time < 100*time.Millisecond {
		t.Errorf("run time %v < compute", dep.Run.Time)
	}
	data, cost, err := dep.Read(r.access(t, 0)[0])
	if err != nil || len(data) == 0 || cost <= 0 {
		t.Errorf("Read = %d bytes, %v, %v", len(data), cost, err)
	}
}

func TestGearDeployPullsOnlyIndex(t *testing.T) {
	r := buildRig(t, "nginx", 2)
	d := r.newDaemon(t, 904)
	gearDep, err := d.DeployGear("gear/nginx", "v01", r.access(t, 0), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	d2 := r.newDaemon(t, 904)
	dockerDep, err := d2.DeployDocker("nginx", "v01", r.access(t, 0), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if gearDep.Pull.Bytes >= dockerDep.Pull.Bytes/3 {
		t.Errorf("gear pull %d bytes not much smaller than docker pull %d",
			gearDep.Pull.Bytes, dockerDep.Pull.Bytes)
	}
	if gearDep.Run.Bytes == 0 {
		t.Error("gear run fetched nothing; lazy faults expected")
	}
	total := gearDep.Pull.Bytes + gearDep.Run.Bytes
	if total >= dockerDep.Pull.Bytes {
		t.Errorf("gear total transfer %d not below docker %d", total, dockerDep.Pull.Bytes)
	}
	// Pull phase shorter, run phase longer — the Fig 9 shape.
	if gearDep.Pull.Time >= dockerDep.Pull.Time {
		t.Errorf("gear pull %v not shorter than docker %v", gearDep.Pull.Time, dockerDep.Pull.Time)
	}
	if gearDep.Run.Time <= dockerDep.Run.Time {
		t.Errorf("gear run %v not longer than docker %v", gearDep.Run.Time, dockerDep.Run.Time)
	}
}

func TestGearWarmCacheFasterThanCold(t *testing.T) {
	r := buildRig(t, "redis", 3)
	d := r.newDaemon(t, 100)
	cold, err := d.DeployGear("gear/redis", "v01", r.access(t, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same-series next version with warm cache.
	warm, err := d.DeployGear("gear/redis", "v02", r.access(t, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Run.Bytes >= cold.Run.Bytes {
		t.Errorf("warm deploy fetched %d bytes, cold fetched %d; cache ineffective",
			warm.Run.Bytes, cold.Run.Bytes)
	}

	// Cold-cache control: clear between deploys.
	d2 := r.newDaemon(t, 100)
	if _, err := d2.DeployGear("gear/redis", "v01", r.access(t, 0), 0); err != nil {
		t.Fatal(err)
	}
	d2.ClearGearCache()
	cold2, err := d2.DeployGear("gear/redis", "v02", r.access(t, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Run.Bytes >= cold2.Run.Bytes {
		t.Errorf("warm %d bytes vs cleared-cache %d bytes", warm.Run.Bytes, cold2.Run.Bytes)
	}
}

func TestRedeploySameImageIsLocal(t *testing.T) {
	r := buildRig(t, "nginx", 1)
	d := r.newDaemon(t, 904)
	if _, err := d.DeployGear("gear/nginx", "v01", r.access(t, 0), 0); err != nil {
		t.Fatal(err)
	}
	second, err := d.DeployGear("gear/nginx", "v01", r.access(t, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if second.Pull.Bytes != 0 || second.Run.Bytes != 0 {
		t.Errorf("second deploy transferred pull=%d run=%d bytes", second.Pull.Bytes, second.Run.Bytes)
	}
}

func TestSlackerDeploy(t *testing.T) {
	r := buildRig(t, "tomcat", 2)
	d := r.newDaemon(t, 904)
	dep, err := d.DeploySlacker("tomcat", "v01", r.access(t, 0), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Pull.Bytes <= 0 {
		t.Error("slacker mount transferred nothing (metadata blocks expected)")
	}
	if dep.Run.Bytes == 0 {
		t.Error("slacker run paged nothing in")
	}
	// Block granularity: more run requests than Gear needs files.
	gearDep, err := d.DeployGear("gear/tomcat", "v01", r.access(t, 0), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Run.Requests <= gearDep.Run.Requests {
		t.Errorf("slacker requests %d not more than gear %d", dep.Run.Requests, gearDep.Run.Requests)
	}
}

func TestSlackerUnconfigured(t *testing.T) {
	r := buildRig(t, "nginx", 1)
	d, err := NewDaemon(r.docker, r.gear, Options{Link: netsim.DefaultLAN()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DeploySlacker("nginx", "v01", nil, 0); !errors.Is(err, ErrNoSlacker) {
		t.Errorf("err = %v, want ErrNoSlacker", err)
	}
}

func TestBandwidthSensitivity(t *testing.T) {
	// Fig 9: Docker degrades with bandwidth much faster than Gear.
	r := buildRig(t, "mysql", 1)
	ratioAt := func(mbps float64) float64 {
		d := r.newDaemon(t, mbps)
		docker, err := d.DeployDocker("mysql", "v01", r.access(t, 0), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		d2 := r.newDaemon(t, mbps)
		gear, err := d2.DeployGear("gear/mysql", "v01", r.access(t, 0), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return float64(docker.Total()) / float64(gear.Total())
	}
	fast := ratioAt(904)
	slow := ratioAt(5)
	if fast < 1.0 {
		t.Errorf("gear slower than docker even at 904 Mbps: ratio %.2f", fast)
	}
	if slow <= fast {
		t.Errorf("gear advantage at 5 Mbps (%.2f) not larger than at 904 Mbps (%.2f)", slow, fast)
	}
}

func TestDockerLayerSharingAcrossVersions(t *testing.T) {
	// Fig 10: later Docker deploys of a series reuse shared layers.
	r := buildRig(t, "postgres", 6)
	d := r.newDaemon(t, 904)
	v1, err := d.DeployDocker("postgres", "v01", r.access(t, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := d.DeployDocker("postgres", "v02", r.access(t, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Pull.Bytes >= v1.Pull.Bytes {
		t.Errorf("v2 pull %d >= v1 pull %d; layer sharing broken", v2.Pull.Bytes, v1.Pull.Bytes)
	}
}

func TestDestroy(t *testing.T) {
	r := buildRig(t, "httpd", 1)
	d := r.newDaemon(t, 904)
	docker, err := d.DeployDocker("httpd", "v01", r.access(t, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	gear, err := d.DeployGear("gear/httpd", "v01", r.access(t, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	dockerDestroy, err := docker.Destroy()
	if err != nil {
		t.Fatal(err)
	}
	gearDestroy, err := gear.Destroy()
	if err != nil {
		t.Fatal(err)
	}
	// Fig 11b: Gear destroys faster (fewer cached inodes).
	if gearDestroy >= dockerDestroy {
		t.Errorf("gear destroy %v not faster than docker %v", gearDestroy, dockerDestroy)
	}
	if _, err := gear.Destroy(); !errors.Is(err, ErrNotDeployed) {
		t.Errorf("double destroy err = %v", err)
	}
	if _, _, err := gear.Read("/any"); !errors.Is(err, ErrNotDeployed) {
		t.Errorf("read after destroy err = %v", err)
	}
}

func TestWriteGoesToWritableLayer(t *testing.T) {
	r := buildRig(t, "nginx", 1)
	d := r.newDaemon(t, 904)
	dep, err := d.DeployGear("gear/nginx", "v01", r.access(t, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Write("/no/dir/out", []byte("result")); err == nil {
		t.Error("write without parent dir should fail")
	}
	if err := dep.Write("/opt/nginx/out", []byte("result")); err != nil {
		t.Fatal(err)
	}
	data, _, err := dep.Read("/opt/nginx/out")
	if err != nil || string(data) != "result" {
		t.Errorf("read back = %q, %v", data, err)
	}
	slackerDep, err := d.DeploySlacker("nginx", "v01", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := slackerDep.Write("/x", nil); err == nil {
		t.Error("slacker write should be rejected by this model")
	}
}

func TestModeString(t *testing.T) {
	if ModeDocker.String() != "docker" || ModeGear.String() != "gear" ||
		ModeSlacker.String() != "slacker" || Mode(9).String() != "Mode(9)" {
		t.Error("mode names wrong")
	}
}

func TestDeployMissingImage(t *testing.T) {
	r := buildRig(t, "nginx", 1)
	d := r.newDaemon(t, 904)
	if _, err := d.DeployDocker("ghost-img", "v01", nil, 0); err == nil {
		t.Error("missing image deployed")
	}
	if _, err := d.DeployGear("ghost-img", "v01", nil, 0); err == nil {
		t.Error("missing gear image deployed")
	}
}

func TestCommitAndRedeploy(t *testing.T) {
	r := buildRig(t, "nginx", 1)
	d := r.newDaemon(t, 904)
	dep, err := d.DeployGear("gear/nginx", "v01", r.access(t, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Write("/opt/nginx/custom.conf", []byte("worker_processes 4;")); err != nil {
		t.Fatal(err)
	}
	ref, uploaded, err := dep.Commit("gear/nginx-custom", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if ref != "gear/nginx-custom:v1" || uploaded <= 0 {
		t.Errorf("commit = %q, %d bytes", ref, uploaded)
	}
	// A second daemon (another host) deploys the committed image.
	d2 := r.newDaemon(t, 904)
	dep2, err := d2.DeployGear("gear/nginx-custom", "v1", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := dep2.Read("/opt/nginx/custom.conf")
	if err != nil || string(data) != "worker_processes 4;" {
		t.Errorf("committed file = %q, %v", data, err)
	}
	// Docker-mode containers cannot commit in this model.
	dockerDep, err := d.DeployDocker("nginx", "v01", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dockerDep.Commit("x", "y"); err == nil {
		t.Error("docker commit accepted")
	}
	// Closed containers cannot commit.
	if _, err := dep.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dep.Commit("a", "b"); !errors.Is(err, ErrNotDeployed) {
		t.Errorf("err = %v, want ErrNotDeployed", err)
	}
}

func TestRequestOverheadChargedPerObject(t *testing.T) {
	// Two daemons, one with huge per-request overhead: same payload, more
	// wire bytes and time for the many-object Gear fetch path.
	r := buildRig(t, "redis", 1)
	cheap, err := NewDaemon(r.docker, r.gear, Options{
		Link: netsim.DefaultLAN().WithBandwidth(0.1), GearRequestBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := NewDaemon(r.docker, r.gear, Options{
		Link: netsim.DefaultLAN().WithBandwidth(0.1), GearRequestBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	a, err := cheap.DeployGear("gear/redis", "v01", r.access(t, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := costly.DeployGear("gear/redis", "v01", r.access(t, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Run.Time <= a.Run.Time {
		t.Errorf("overhead bytes did not slow the run phase: %v vs %v", b.Run.Time, a.Run.Time)
	}
}

func TestTraceRecordsAccessTimeline(t *testing.T) {
	r := buildRig(t, "nginx", 1)
	d, err := NewDaemon(r.docker, r.gear, Options{
		Link: netsim.DefaultLAN().WithBandwidth(0.9), Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	access := r.access(t, 0)
	dep, err := d.DeployGear("gear/nginx", "v01", access, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Events) != len(access) {
		t.Fatalf("events = %d, want %d", len(dep.Events), len(access))
	}
	var remoteEvents int
	var remoteBytes int64
	for _, e := range dep.Events {
		if e.Cost <= 0 {
			t.Errorf("%s: non-positive cost", e.Path)
		}
		if e.RemoteBytes > 0 {
			remoteEvents++
			remoteBytes += e.RemoteBytes
		}
	}
	if remoteEvents == 0 {
		t.Error("no remote events traced on a cold deploy")
	}
	if remoteBytes != dep.Run.Bytes {
		t.Errorf("traced bytes %d != run phase bytes %d", remoteBytes, dep.Run.Bytes)
	}
	// Untraced deploys carry no events.
	d2, err := NewDaemon(r.docker, r.gear, Options{Link: netsim.DefaultLAN()})
	if err != nil {
		t.Fatal(err)
	}
	dep2, err := d2.DeployGear("gear/nginx", "v01", access, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dep2.Events != nil {
		t.Error("events recorded without Trace")
	}
}

// TestTraceSpansAccountForAllWANBytes: every deploy mode attributes
// 100% of the WAN bytes netsim reports to phase spans — Trace() is a
// complete accounting, not a sample. The warm Gear deploy additionally
// splits the traffic into demand (pull) and prefetch classes.
func TestTraceSpansAccountForAllWANBytes(t *testing.T) {
	r := buildRig(t, "nginx", 1)
	lib := prefetch.NewLibrary()
	newDaemon := func() *Daemon {
		d, err := NewDaemon(r.docker, r.gear, Options{
			Link:     netsim.DefaultLAN().WithBandwidth(20.0 / 1000),
			Profiles: lib,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.ConfigureSlacker(r.slackSrv)
		return d
	}
	spanBytes := func(dep *Deployment) int64 {
		var sum int64
		for _, sp := range dep.Trace() {
			sum += sp.Bytes
		}
		return sum
	}

	deploys := []struct {
		mode   string
		deploy func(d *Daemon) (*Deployment, error)
	}{
		{"docker", func(d *Daemon) (*Deployment, error) {
			return d.DeployDocker("nginx", "v01", r.access(t, 0), 0)
		}},
		{"gear-cold", func(d *Daemon) (*Deployment, error) {
			return d.DeployGear("gear/nginx", "v01", r.access(t, 0), 0)
		}},
		{"gear-warm", func(d *Daemon) (*Deployment, error) {
			return d.DeployGear("gear/nginx", "v01", r.access(t, 0), 0)
		}},
		{"slacker", func(d *Daemon) (*Deployment, error) {
			return d.DeploySlacker("nginx", "v01", r.access(t, 0), 0)
		}},
	}
	for _, tc := range deploys {
		d := newDaemon()
		dep, err := tc.deploy(d)
		if err != nil {
			t.Fatalf("%s: %v", tc.mode, err)
		}
		wan := d.Link().Stats()
		if wan.Bytes == 0 {
			t.Fatalf("%s: deploy moved no WAN bytes", tc.mode)
		}
		if got := spanBytes(dep); got != wan.Bytes {
			t.Errorf("%s: trace spans carry %d bytes, netsim WAN link reports %d",
				tc.mode, got, wan.Bytes)
		}
		// The daemon ring holds the same spans (plus the store's per-fetch
		// spans for Gear modes), so the phase spans must appear there too.
		var ringPhase int
		for _, sp := range d.TraceRing().Snapshot() {
			if sp.Op == "deploy.pull" || sp.Op == "deploy.prefetch" || sp.Op == "deploy.run" {
				ringPhase++
			}
		}
		if ringPhase != len(dep.Trace()) {
			t.Errorf("%s: ring holds %d phase spans, deployment holds %d",
				tc.mode, ringPhase, len(dep.Trace()))
		}
	}

	// The warm Gear deploy above replayed a profile: its trace must carry
	// a prefetch-class span, and classes must cover the byte total.
	d := newDaemon()
	warm, err := d.DeployGear("gear/nginx", "v01", r.access(t, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	var demand, prefetched int64
	for _, sp := range warm.Trace() {
		switch sp.Class {
		case "prefetch":
			prefetched += sp.Bytes
		case "demand":
			demand += sp.Bytes
		default:
			t.Errorf("span %s has unknown class %q", sp.Op, sp.Class)
		}
	}
	if prefetched == 0 {
		t.Error("warm deploy trace has no prefetch-class bytes")
	}
	if wan := d.Link().Stats(); demand+prefetched != wan.Bytes {
		t.Errorf("class split %d+%d != WAN bytes %d", demand, prefetched, wan.Bytes)
	}
}

func TestGearProfileGuidedRedeploy(t *testing.T) {
	r := buildRig(t, "nginx", 1)
	lib := prefetch.NewLibrary()
	newDaemon := func(lib *prefetch.Library) *Daemon {
		d, err := NewDaemon(r.docker, r.gear, Options{
			Link:     netsim.DefaultLAN().WithBandwidth(20.0 / 1000),
			Profiles: lib,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	// Cold deploy on host A: no profile yet, so no prefetch phase; the
	// run stalls on every fault, and the trace is persisted.
	cold, err := newDaemon(lib).DeployGear("gear/nginx", "v01", r.access(t, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Prefetch != (PhaseStats{}) {
		t.Errorf("cold deploy has a prefetch phase: %+v", cold.Prefetch)
	}
	if cold.DemandStall <= 0 || cold.DemandMisses == 0 {
		t.Errorf("cold deploy: stall=%v misses=%d, want both positive", cold.DemandStall, cold.DemandMisses)
	}
	if lib.Len() != 1 {
		t.Fatalf("profile library holds %d profiles after cold deploy, want 1", lib.Len())
	}

	// Warm redeploy on host B (fresh daemon, shared profile library):
	// the replay moves the bytes in the prefetch phase and the run never
	// touches the network.
	warm, err := newDaemon(lib).DeployGear("gear/nginx", "v01", r.access(t, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Prefetch.Bytes == 0 || warm.Prefetch.Time <= 0 {
		t.Errorf("warm deploy prefetch = %+v, want traffic", warm.Prefetch)
	}
	if warm.DemandStall != 0 || warm.DemandMisses != 0 || warm.Run.Bytes != 0 {
		t.Errorf("warm deploy stalled: stall=%v misses=%d runBytes=%d",
			warm.DemandStall, warm.DemandMisses, warm.Run.Bytes)
	}
	if warm.PrefetchHits == 0 || warm.PrefetchWasted != 0 {
		t.Errorf("warm deploy: hits=%d wasted=%d, want all replayed objects consumed",
			warm.PrefetchHits, warm.PrefetchWasted)
	}

	// The replay moves exactly the bytes the cold run faulted on: total
	// transfer is identical, it just happens before the container needs it.
	coldTotal := cold.Pull.Bytes + cold.Run.Bytes
	warmTotal := warm.Pull.Bytes + warm.Prefetch.Bytes + warm.Run.Bytes
	if warmTotal != coldTotal {
		t.Errorf("warm total bytes = %d, cold = %d; prefetch must not inflate traffic", warmTotal, coldTotal)
	}
}

func TestGearNoProfileMatchesBaselineExactly(t *testing.T) {
	r := buildRig(t, "redis", 1)
	deploy := func(lib *prefetch.Library) *Deployment {
		d, err := NewDaemon(r.docker, r.gear, Options{
			Link:     netsim.DefaultLAN().WithBandwidth(20.0 / 1000),
			Profiles: lib,
		})
		if err != nil {
			t.Fatal(err)
		}
		dep, err := d.DeployGear("gear/redis", "v01", r.access(t, 0), 0)
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}
	base := deploy(nil)                     // prefetch disabled entirely
	guided := deploy(prefetch.NewLibrary()) // enabled, but no profile exists yet
	if guided.Prefetch != (PhaseStats{}) {
		t.Errorf("empty library produced a prefetch phase: %+v", guided.Prefetch)
	}
	if base.Pull != guided.Pull || base.Run != guided.Run || base.Total() != guided.Total() {
		t.Errorf("no-profile deploy diverged from baseline:\nbase   pull=%+v run=%+v\nguided pull=%+v run=%+v",
			base.Pull, base.Run, guided.Pull, guided.Run)
	}
}
