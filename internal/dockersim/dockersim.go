// Package dockersim simulates the deployment host of the paper's
// evaluation: a daemon that deploys containers from a Docker registry
// (eager pull of every layer), from a Gear registry (index pull + lazy
// file faults, §III-D), or from a Slacker block server (lazy 4 KB block
// paging), measuring the pull and run phases the way Fig 9 and Fig 10
// break them down.
//
// All time is virtual: network cost comes from a shared netsim.Link,
// local I/O and unpacking from simple throughput/latency models, and the
// container's own work from a caller-provided compute duration. Byte and
// request counts are exact; durations are deterministic functions of
// them.
package dockersim

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gear-image/gear/internal/cache"
	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gear/store"
	"github.com/gear-image/gear/internal/gear/viewer"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/prefetch"
	"github.com/gear-image/gear/internal/registry"
	"github.com/gear-image/gear/internal/slacker"
	"github.com/gear-image/gear/internal/telemetry"
	"github.com/gear-image/gear/internal/vfs"
)

// Mode selects a deployment system.
type Mode int

// Deployment systems compared in the paper.
const (
	ModeDocker Mode = iota + 1
	ModeGear
	ModeSlacker
)

// String returns the mode's display name.
func (m Mode) String() string {
	switch m {
	case ModeDocker:
		return "docker"
	case ModeGear:
		return "gear"
	case ModeSlacker:
		return "slacker"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Errors returned by the daemon.
var (
	ErrNoSlacker   = errors.New("no slacker server configured")
	ErrNotDeployed = errors.New("container not deployed")
	// ErrDetached reports a deployment attempted on a daemon whose node
	// has left the cluster topology (its links are closed). It wraps
	// netsim.ErrLinkClosed so either sentinel matches.
	ErrDetached = fmt.Errorf("node detached: %w", netsim.ErrLinkClosed)
)

// Options configures a Daemon's cost model.
type Options struct {
	// Link models the client<->registry network. Required unless Links
	// is set.
	Link netsim.LinkConfig
	// Links, if set, attaches the daemon to a cluster topology instead
	// of a single link: registry traffic rides Links.WAN (which
	// replaces Link) and peer-to-peer Gear transfers ride Links.LAN.
	// Obtain it from netsim.Topology.Node.
	Links *netsim.NodeLinks
	// LocalReadLatency and LocalReadBPS model serving a file that is
	// already local (page-cache-ish).
	LocalReadLatency time.Duration
	LocalReadBPS     float64
	// OverlayLatency is the extra union-filesystem lookup cost per file
	// access; Docker and Gear pay it (both run on Overlay2), Slacker does
	// not (its ext4 sits directly on the block device) — the reason the
	// paper's first Tomcat container is 15.3% slower under Gear than
	// Slacker (§V-E2).
	OverlayLatency time.Duration
	// UnpackBPS models layer decompression+extraction during Docker's
	// pull phase. Gear skips it for all but the tiny index layer.
	UnpackBPS float64
	// InodeDestroyCost is the per-cached-inode teardown cost at container
	// destruction (Fig 11b: Gear destroys faster because only required
	// files have cached inodes).
	InodeDestroyCost time.Duration
	// GearRequestBytes is the wire overhead charged per Gear file fetch
	// (HTTP request/response headers, framing). Unlike payload bytes it
	// does not scale with the corpus, which is what bends Gear's
	// low-bandwidth speedup toward the paper's curve (Fig 9).
	GearRequestBytes int64
	// SlackerRequestBytes is the wire overhead per block fetch (NFS RPC
	// framing — leaner than HTTP).
	SlackerRequestBytes int64
	// Peers, if set, lets Gear fetches try cluster peers before the
	// registry (see store.Options.Peers). Peer transfers are priced on
	// Links.LAN when a topology is attached, on Link otherwise.
	Peers store.PeerSource
	// PeerRequestBytes is the wire overhead charged per peer-served
	// Gear file. 0 means "same as GearRequestBytes" — both paths speak
	// the registry wire protocol, which is what keeps per-node received
	// bytes identical whether a file came from a peer or the registry.
	PeerRequestBytes int64
	// CacheCapacity/CachePolicy configure the Gear level-1 cache.
	CacheCapacity int64
	CachePolicy   cache.Policy
	// FetchWorkers > 1 enables the concurrent fetch engine for Gear
	// deploys: the known access set is pre-faulted through the store's
	// FetchAll with that many workers, and the transfer window is priced
	// by netsim's fair-share model. The default (0, treated as 1) keeps
	// the paper's serial lazy-fault path and its exact request-by-request
	// accounting.
	FetchWorkers int
	// Profiles, if set, enables profile-guided startup prefetch for Gear
	// deploys: each deploy records its access trace (persisted after the
	// run), and a deploy of an image with a persisted profile replays it
	// before the run phase, so the run's faults hit the warmed cache.
	// Nil keeps the exact pre-profile behavior.
	Profiles *prefetch.Library
	// PrefetchInflight bounds the profile replay's in-flight objects
	// (see store.Options.PrefetchInflight).
	PrefetchInflight int
	// ChunkWindowBytes bounds the in-flight chunk bytes of the daemon
	// store's demand window when faulting chunked files (see
	// store.Options.ChunkWindowBytes). 0 selects the store default.
	ChunkWindowBytes int64
	// ChunkReadahead speculatively fetches up to this many chunks past a
	// demand read inside the window budget (see
	// store.Options.ChunkReadahead).
	ChunkReadahead int
	// Trace records a per-access event timeline on every deployment
	// (path, bytes moved, cost), at some memory cost per deploy.
	Trace bool
	// Telemetry, if set, is the per-daemon metrics registry every
	// component (store, cache, scheduler, peer exchange) publishes into.
	// Nil creates a private registry, so Daemon.StatsSnapshot always
	// works.
	Telemetry *telemetry.Registry
	// TraceCapacity bounds the daemon's fetch-path span ring. 0 selects
	// telemetry.DefaultTraceCapacity.
	TraceCapacity int
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.LocalReadLatency == 0 {
		o.LocalReadLatency = 10 * time.Microsecond
	}
	if o.LocalReadBPS == 0 {
		o.LocalReadBPS = 2e9
	}
	if o.OverlayLatency == 0 {
		o.OverlayLatency = 8 * time.Microsecond
	}
	if o.UnpackBPS == 0 {
		o.UnpackBPS = 300e6
	}
	if o.InodeDestroyCost == 0 {
		o.InodeDestroyCost = 2 * time.Microsecond
	}
	if o.GearRequestBytes == 0 {
		o.GearRequestBytes = 900
	}
	if o.SlackerRequestBytes == 0 {
		o.SlackerRequestBytes = 120
	}
	if o.PeerRequestBytes == 0 {
		o.PeerRequestBytes = o.GearRequestBytes
	}
	return o
}

// PhaseStats measures one deployment phase.
type PhaseStats struct {
	Time     time.Duration `json:"time"`
	Bytes    int64         `json:"bytes"`
	Requests int64         `json:"requests"`
}

// AccessEvent is one traced file access during the run phase.
type AccessEvent struct {
	Path string `json:"path"`
	// RemoteBytes is the wire volume this access caused (0 = served
	// locally).
	RemoteBytes int64 `json:"remoteBytes"`
	// Requests is the number of remote objects fetched.
	Requests int64 `json:"requests"`
	// Cost is the access's modeled latency (local service + network).
	Cost time.Duration `json:"cost"`
}

// Deployment is one deployed container.
type Deployment struct {
	Mode        Mode
	Ref         string
	ContainerID string
	Pull        PhaseStats
	// Prefetch is the startup-profile replay between pull and run (Gear
	// deploys with Options.Profiles only; zero otherwise). Its traffic
	// is background-class: the same bytes the run phase would otherwise
	// stall on, moved before the container needs them.
	Prefetch PhaseStats
	Run      PhaseStats
	// DemandStall is the portion of the run phase spent blocked on the
	// network — the per-access link time of faults that missed the local
	// cache (plus any pre-fault window). DemandMisses/StallBytes count
	// those faults and their content volume; PrefetchHits/PrefetchWasted
	// report how much of the replay the run actually consumed (Gear
	// deploys only).
	DemandStall    time.Duration
	DemandMisses   int64
	StallBytes     int64
	PrefetchHits   int64
	PrefetchWasted int64
	// Events is the run-phase access timeline (only with Options.Trace).
	Events []AccessEvent
	// spans are the deployment's phase-attribution records; see Trace.
	spans []telemetry.Span

	daemon *Daemon
	// docker-mode state
	root *vfs.FS
	// gear-mode state
	view *viewer.Viewer
	// slacker-mode state: container id doubles as the mount handle.

	// inodes is the count of locally cached inodes at destroy time.
	inodes int
	closed bool
}

// Total returns pull+prefetch+run time.
func (d *Deployment) Total() time.Duration { return d.Pull.Time + d.Prefetch.Time + d.Run.Time }

// Trace returns the deployment's phase-attribution spans: one span per
// deploy phase that moved traffic (op "deploy.pull", "deploy.prefetch",
// "deploy.run"), whose Bytes are exactly the WAN bytes netsim charged
// that phase — summing them reconciles a deployment against the link's
// own counters. The same spans are also recorded into the daemon's
// TraceRing alongside per-fault spans from the store.
func (d *Deployment) Trace() []telemetry.Span {
	out := make([]telemetry.Span, len(d.spans))
	copy(out, d.spans)
	return out
}

// Daemon deploys containers. It is safe for concurrent use: distinct
// containers can deploy in parallel (image pulls serialize on the local
// layer store, matching dockerd's pull dedup). Note that the link and
// its virtual clock are shared, so when deploys do overlap, each
// Deployment's phase stats attribute whatever traffic the link carried
// during that phase, not only its own — the paper's experiments deploy
// sequentially and measure each in isolation.
type Daemon struct {
	opts   Options
	docker registry.Store
	gear   gearregistry.Store
	link   *netsim.Link
	// peerLink prices peer-to-peer Gear transfers. It equals link when
	// no topology is attached, so single-link setups keep working.
	peerLink *netsim.Link

	// layersMu guards layers, the local layer store implementing
	// Docker's client-side layer sharing (§II-C). It is held across a
	// whole image pull so concurrent deploys of one image fetch and
	// install it once.
	layersMu sync.Mutex
	layers   map[hashing.Digest]*imagefmt.Layer
	// gearStore is the three-level Gear storage.
	gearStore *store.Store
	// slackerSrv/slackerClient are set by ConfigureSlacker.
	slackerSrv    *slacker.Server
	slackerClient *slacker.Client

	// tele is the per-daemon metrics registry every component publishes
	// into; ring is the fetch-path span buffer shared with the store.
	tele *telemetry.Registry
	ring *telemetry.TraceRing

	// net gauges mirror the links' counters on demand (StatsSnapshot).
	wanBytes, wanRequests, wanElapsed *telemetry.Gauge
	lanBytes, lanRequests, lanElapsed *telemetry.Gauge

	nextID atomic.Int64
}

// NewDaemon returns a Daemon speaking to the given registries.
func NewDaemon(docker registry.Store, gear gearregistry.Store, opts Options) (*Daemon, error) {
	opts = opts.withDefaults()
	var link, peerLink *netsim.Link
	if opts.Links != nil {
		link = opts.Links.WAN
		peerLink = opts.Links.LAN
		// Stream pricing (OnFetchWindow) needs the WAN's configuration.
		opts.Link = link.Config()
	} else {
		var err error
		link, err = netsim.NewLink(opts.Link)
		if err != nil {
			return nil, fmt.Errorf("dockersim: %w", err)
		}
		peerLink = link
	}
	tele := opts.Telemetry
	if tele == nil {
		tele = telemetry.NewRegistry()
	}
	d := &Daemon{
		opts:        opts,
		docker:      docker,
		gear:        gear,
		link:        link,
		peerLink:    peerLink,
		layers:      make(map[hashing.Digest]*imagefmt.Layer),
		tele:        tele,
		ring:        telemetry.NewTraceRing(opts.TraceCapacity),
		wanBytes:    tele.Gauge("net.wan.bytes"),
		wanRequests: tele.Gauge("net.wan.requests"),
		wanElapsed:  tele.Gauge("net.wan.elapsed.ns"),
		lanBytes:    tele.Gauge("net.lan.bytes"),
		lanRequests: tele.Gauge("net.lan.requests"),
		lanElapsed:  tele.Gauge("net.lan.elapsed.ns"),
	}
	var err error
	d.gearStore, err = store.New(store.Options{
		CacheCapacity:    opts.CacheCapacity,
		CachePolicy:      opts.CachePolicy,
		Remote:           gear,
		Peers:            opts.Peers,
		FetchWorkers:     max(opts.FetchWorkers, 1),
		Profiles:         opts.Profiles,
		PrefetchInflight: opts.PrefetchInflight,
		ChunkWindowBytes: opts.ChunkWindowBytes,
		ChunkReadahead:   opts.ChunkReadahead,
		Telemetry:        tele,
		Trace:            d.ring,
		OnRemoteFetch: func(objects int, bytes int64) {
			d.link.TransferBatch(objects, bytes+int64(objects)*d.opts.GearRequestBytes)
		},
		OnPeerFetch: func(objects int, bytes int64) {
			d.peerLink.TransferBatch(objects, bytes+int64(objects)*d.opts.PeerRequestBytes)
		},
		// FetchAll windows are priced by the fair-share model: each
		// worker stream pays its request setup latency (one RTT for a
		// batched round trip, one per object otherwise) and the streams
		// split the link bandwidth.
		OnFetchWindow: func(w store.FetchWindow) {
			streams := make([]netsim.Stream, 0, len(w.Streams))
			for _, st := range w.Streams {
				bytes := st.Bytes + int64(st.Objects)*d.opts.GearRequestBytes
				s := netsim.PerObjectStream(d.opts.Link, st.Objects, bytes)
				if st.Batched {
					s = netsim.BatchedStream(d.opts.Link, st.Objects, bytes)
				}
				streams = append(streams, s)
			}
			d.link.TransferWindow(streams)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("dockersim: %w", err)
	}
	return d, nil
}

// ConfigureSlacker attaches a Slacker block server for ModeSlacker
// deployments.
func (d *Daemon) ConfigureSlacker(srv *slacker.Server) {
	d.slackerSrv = srv
	d.slackerClient = slacker.NewClient(srv, func(blocks int, bytes int64) {
		d.link.TransferBatch(blocks, bytes+int64(blocks)*d.opts.SlackerRequestBytes)
	})
}

// GearStore exposes the daemon's three-level Gear storage (cache stats,
// commits).
func (d *Daemon) GearStore() *store.Store { return d.gearStore }

// Telemetry returns the per-daemon metrics registry every component
// publishes into.
func (d *Daemon) Telemetry() *telemetry.Registry { return d.tele }

// TraceRing returns the daemon's fetch-path span buffer: per-fault
// spans from the store plus the per-phase spans deploys record.
func (d *Daemon) TraceRing() *telemetry.TraceRing { return d.ring }

// StatsSnapshot returns the unified telemetry snapshot for this daemon.
// The net.wan.*/net.lan.* gauges are refreshed from the links' own
// counters at snapshot time, so the snapshot is a complete picture
// without the links publishing on their hot path.
func (d *Daemon) StatsSnapshot() telemetry.Snapshot {
	wan := d.link.Stats()
	d.wanBytes.Set(wan.Bytes)
	d.wanRequests.Set(wan.Requests)
	d.wanElapsed.Set(int64(wan.Elapsed))
	if d.peerLink != d.link {
		lan := d.peerLink.Stats()
		d.lanBytes.Set(lan.Bytes)
		d.lanRequests.Set(lan.Requests)
		d.lanElapsed.Set(int64(lan.Elapsed))
	}
	return d.tele.Snapshot()
}

// Snapshot implements telemetry.Snapshotter.
func (d *Daemon) Snapshot() telemetry.Snapshot { return d.StatsSnapshot() }

// recordPhase attributes one deploy phase's traffic to dep: the span is
// kept on the deployment (Deployment.Trace) and recorded into the
// daemon's ring next to the store's per-fault spans.
func (d *Daemon) recordPhase(dep *Deployment, op, class string, ps PhaseStats) {
	span := telemetry.Span{
		Op:       op,
		Ref:      dep.Ref,
		Class:    class,
		Source:   telemetry.SourceRegistry,
		Objects:  int(ps.Requests),
		Bytes:    ps.Bytes,
		Transfer: ps.Time,
	}
	d.ring.Record(span)
	dep.spans = append(dep.spans, span)
}

// Link exposes the daemon's network link counters (the WAN link when a
// topology is attached).
func (d *Daemon) Link() *netsim.Link { return d.link }

// PeerLink exposes the link pricing peer-to-peer Gear transfers: the
// topology's LAN attachment, or the same link as Link() without one.
func (d *Daemon) PeerLink() *netsim.Link { return d.peerLink }

// ClearGearCache empties the Gear level-1 cache (cold-cache runs).
func (d *Daemon) ClearGearCache() { d.gearStore.ClearCache() }

// ClearLayerCache empties Docker's local layer store.
func (d *Daemon) ClearLayerCache() {
	d.layersMu.Lock()
	defer d.layersMu.Unlock()
	d.layers = make(map[hashing.Digest]*imagefmt.Layer)
}

func (d *Daemon) newContainerID(mode Mode) string {
	return mode.String() + "-" + strconv.FormatInt(d.nextID.Add(1), 10)
}

// localRead models serving size bytes from local storage.
func (d *Daemon) localRead(size int64) time.Duration {
	return d.opts.LocalReadLatency +
		time.Duration(float64(size)/d.opts.LocalReadBPS*float64(time.Second))
}

// checkAttached guards a deployment entry point: deploying through a
// closed (detached) link would silently move zero-cost traffic, so it
// is a typed error instead.
func (d *Daemon) checkAttached() error {
	if d.link.Closed() || (d.peerLink != d.link && d.peerLink.Closed()) {
		return ErrDetached
	}
	return nil
}

// netDelta runs fn and returns the link stats it accrued. Bytes and
// Requests count WAN (registry) traffic only — they are the registry
// egress the experiments sum — while Time also includes what a separate
// peer LAN link spent, so deploy durations reflect every transfer.
func (d *Daemon) netDelta(fn func() error) (PhaseStats, error) {
	before := d.link.Stats()
	var peerBefore netsim.Stats
	if d.peerLink != d.link {
		peerBefore = d.peerLink.Stats()
	}
	err := fn()
	after := d.link.Stats()
	ps := PhaseStats{
		Time:     after.Elapsed - before.Elapsed,
		Bytes:    after.Bytes - before.Bytes,
		Requests: after.Requests - before.Requests,
	}
	if d.peerLink != d.link {
		peerAfter := d.peerLink.Stats()
		ps.Time += peerAfter.Elapsed - peerBefore.Elapsed
	}
	return ps, err
}

// DeployDocker deploys ref the stock Docker way: download every layer
// not already local, unpack, mount, then run the task (access + compute).
func (d *Daemon) DeployDocker(name, tag string, access []string, compute time.Duration) (*Deployment, error) {
	if err := d.checkAttached(); err != nil {
		return nil, fmt.Errorf("dockersim: deploy docker %s:%s: %w", name, tag, err)
	}
	dep := &Deployment{Mode: ModeDocker, Ref: name + ":" + tag, daemon: d,
		ContainerID: d.newContainerID(ModeDocker)}

	var unpacked int64
	pull, err := d.netDelta(func() error {
		d.layersMu.Lock()
		defer d.layersMu.Unlock()
		m, err := d.docker.GetManifest(name, tag)
		if err != nil {
			return err
		}
		d.link.Transfer(manifestSize(m))
		img := &imagefmt.Image{Manifest: m}
		for _, digest := range m.Layers {
			layer, ok := d.layers[digest]
			if !ok {
				blob, err := d.docker.GetBlob(digest)
				if err != nil {
					return err
				}
				d.link.Transfer(int64(len(blob)))
				layer, err = imagefmt.NewLayerFromTarball(blob, digest)
				if err != nil {
					return err
				}
				d.layers[digest] = layer
				unpacked += layer.UncompressedSize
			}
			img.Layers = append(img.Layers, layer)
		}
		root, err := img.Flatten()
		if err != nil {
			return err
		}
		dep.root = root
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dockersim: deploy docker %s:%s: %w", name, tag, err)
	}
	// Unpacking newly downloaded layers is part of Docker's pull phase.
	pull.Time += time.Duration(float64(unpacked) / d.opts.UnpackBPS * float64(time.Second))
	dep.Pull = pull
	d.recordPhase(dep, "deploy.pull", telemetry.ClassDemand, pull)

	// Run phase: every access is local (the whole image is here).
	var runTime time.Duration
	for _, p := range access {
		n, err := dep.root.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("dockersim: docker run %s: %w", dep.Ref, err)
		}
		cost := d.opts.OverlayLatency + d.localRead(n.Size())
		runTime += cost
		if d.opts.Trace {
			dep.Events = append(dep.Events, AccessEvent{Path: p, Cost: cost})
		}
	}
	runTime += compute
	dep.Run = PhaseStats{Time: runTime}
	d.recordPhase(dep, "deploy.run", telemetry.ClassDemand, PhaseStats{Time: runTime})
	dep.inodes = dep.root.Stats().Files // everything was unpacked
	return dep, nil
}

func manifestSize(m *imagefmt.Manifest) int64 {
	data, err := imagefmt.EncodeManifest(m)
	if err != nil {
		return 1024
	}
	return int64(len(data))
}

// DeployGear deploys ref the Gear way: pull only the index image (if not
// local), install it at level 2, then run the task with lazy file
// faults (§III-D2).
func (d *Daemon) DeployGear(name, tag string, access []string, compute time.Duration) (*Deployment, error) {
	ref := name + ":" + tag
	if err := d.checkAttached(); err != nil {
		return nil, fmt.Errorf("dockersim: deploy gear %s: %w", ref, err)
	}
	dep := &Deployment{Mode: ModeGear, Ref: ref, daemon: d,
		ContainerID: d.newContainerID(ModeGear)}

	var unpacked int64
	pull, err := d.netDelta(func() error {
		d.layersMu.Lock()
		defer d.layersMu.Unlock()
		if d.gearStore.HasIndex(ref) {
			return nil
		}
		m, err := d.docker.GetManifest(name, tag)
		if err != nil {
			return err
		}
		d.link.Transfer(manifestSize(m))
		img := &imagefmt.Image{Manifest: m}
		for _, digest := range m.Layers {
			layer, ok := d.layers[digest]
			if !ok {
				blob, err := d.docker.GetBlob(digest)
				if err != nil {
					return err
				}
				d.link.Transfer(int64(len(blob)))
				layer, err = imagefmt.NewLayerFromTarball(blob, digest)
				if err != nil {
					return err
				}
				d.layers[digest] = layer
				unpacked += layer.UncompressedSize
			}
			img.Layers = append(img.Layers, layer)
		}
		ix, err := index.FromImage(img)
		if err != nil {
			return err
		}
		return d.gearStore.AddIndex(ix)
	})
	if err != nil {
		return nil, fmt.Errorf("dockersim: deploy gear %s: %w", ref, err)
	}
	pull.Time += time.Duration(float64(unpacked) / d.opts.UnpackBPS * float64(time.Second))
	dep.Pull = pull
	d.recordPhase(dep, "deploy.pull", telemetry.ClassDemand, pull)

	view, err := d.gearStore.CreateContainer(dep.ContainerID, ref)
	if err != nil {
		return nil, fmt.Errorf("dockersim: deploy gear %s: %w", ref, err)
	}
	dep.view = view

	storeBefore := d.gearStore.Stats()

	// Startup-profile replay: with a profile library configured and a
	// persisted profile for this image, warm the level-1 cache with the
	// recorded access set before the container starts reading. The
	// virtual clock makes a truly concurrent replay nondeterministic, so
	// the simulator runs it as its own phase — the bytes move on the
	// same link either way; what changes is that the run phase no longer
	// stalls on them. Without a profile (or without a library) this
	// phase is exactly zero and the deploy behaves as before.
	if d.opts.Profiles != nil {
		pre, err := d.netDelta(func() error {
			_, err := d.gearStore.PrefetchProfile(ref)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("dockersim: gear prefetch %s: %w", ref, err)
		}
		dep.Prefetch = pre
		d.recordPhase(dep, "deploy.prefetch", telemetry.ClassPrefetch, pre)
	}

	run, err := d.netDelta(func() error {
		// With the concurrent fetch engine on, pre-fault the access set
		// through the bounded worker pool; the lazy reads below then hit
		// cache. With one worker (the default), the per-fault serial path
		// below reproduces the paper's request-by-request accounting.
		if d.opts.FetchWorkers > 1 {
			fps, err := d.gearStore.Fingerprints(ref, access)
			if err != nil {
				return err
			}
			if _, err := d.gearStore.FetchAll(fps); err != nil {
				return err
			}
		}
		var localTime time.Duration
		for _, p := range access {
			before := d.link.Stats()
			data, err := view.ReadFile(p)
			if err != nil {
				return err
			}
			local := d.opts.OverlayLatency + d.localRead(int64(len(data)))
			localTime += local
			if d.opts.Trace {
				after := d.link.Stats()
				dep.Events = append(dep.Events, AccessEvent{
					Path:        p,
					RemoteBytes: after.Bytes - before.Bytes,
					Requests:    after.Requests - before.Requests,
					Cost:        local + (after.Elapsed - before.Elapsed),
				})
			}
		}
		dep.Run.Time += localTime
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dockersim: gear run %s: %w", ref, err)
	}
	dep.Run.Time += run.Time + compute
	dep.Run.Bytes = run.Bytes
	dep.Run.Requests = run.Requests
	d.recordPhase(dep, "deploy.run", telemetry.ClassDemand, run)
	// Everything the run phase spent on the link was a container blocked
	// on a demand transfer: the run's network time IS the demand stall.
	dep.DemandStall = run.Time
	storeAfter := d.gearStore.Stats()
	dep.DemandMisses = storeAfter.DemandMisses - storeBefore.DemandMisses
	dep.StallBytes = storeAfter.StallBytes - storeBefore.StallBytes
	dep.PrefetchHits = storeAfter.PrefetchHits - storeBefore.PrefetchHits
	dep.PrefetchWasted = storeAfter.PrefetchWasted // gauge, not a counter
	// Persist this deploy's access trace so the next deploy of the image
	// can replay it. SaveProfile keeps the richer of old and new traces.
	if _, err := d.gearStore.SaveProfile(ref); err != nil {
		return nil, fmt.Errorf("dockersim: gear profile %s: %w", ref, err)
	}
	// Teardown releases the inode cache of the files this container
	// touched — required files only, never the whole image (§V-F).
	dep.inodes = uniqueCount(access)
	return dep, nil
}

// uniqueCount returns the number of distinct strings in list.
func uniqueCount(list []string) int {
	seen := make(map[string]bool, len(list))
	for _, s := range list {
		seen[s] = true
	}
	return len(seen)
}

// DeploySlacker deploys ref from the Slacker block server: mount, then
// page blocks in as the task reads.
func (d *Daemon) DeploySlacker(name, tag string, access []string, compute time.Duration) (*Deployment, error) {
	if d.slackerClient == nil {
		return nil, fmt.Errorf("dockersim: %w", ErrNoSlacker)
	}
	ref := name + ":" + tag
	if err := d.checkAttached(); err != nil {
		return nil, fmt.Errorf("dockersim: deploy slacker %s: %w", ref, err)
	}
	dep := &Deployment{Mode: ModeSlacker, Ref: ref, daemon: d,
		ContainerID: d.newContainerID(ModeSlacker)}

	pull, err := d.netDelta(func() error {
		return d.slackerClient.Mount(dep.ContainerID, ref)
	})
	if err != nil {
		return nil, fmt.Errorf("dockersim: deploy slacker %s: %w", ref, err)
	}
	dep.Pull = pull
	d.recordPhase(dep, "deploy.pull", telemetry.ClassDemand, pull)

	run, err := d.netDelta(func() error {
		var localTime time.Duration
		for _, p := range access {
			before := d.link.Stats()
			data, err := d.slackerClient.ReadFile(dep.ContainerID, p)
			if err != nil {
				return err
			}
			// No overlay layer on Slacker's ext4-on-device path.
			local := d.localRead(int64(len(data)))
			localTime += local
			if d.opts.Trace {
				after := d.link.Stats()
				dep.Events = append(dep.Events, AccessEvent{
					Path:        p,
					RemoteBytes: after.Bytes - before.Bytes,
					Requests:    after.Requests - before.Requests,
					Cost:        local + (after.Elapsed - before.Elapsed),
				})
			}
		}
		dep.Run.Time += localTime
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dockersim: slacker run %s: %w", ref, err)
	}
	dep.Run.Time += run.Time + compute
	dep.Run.Bytes = run.Bytes
	dep.Run.Requests = run.Requests
	d.recordPhase(dep, "deploy.run", telemetry.ClassDemand, run)
	dep.inodes = len(access)
	return dep, nil
}

// Read serves one file from the deployed container, returning the data
// and its modeled service latency. Long-running services (Fig 11a) call
// this in their request loops.
func (dep *Deployment) Read(p string) ([]byte, time.Duration, error) {
	if dep.closed {
		return nil, 0, fmt.Errorf("dockersim: %s: %w", dep.ContainerID, ErrNotDeployed)
	}
	d := dep.daemon
	switch dep.Mode {
	case ModeDocker:
		data, err := dep.root.ReadFile(p)
		if err != nil {
			return nil, 0, err
		}
		return data, d.opts.OverlayLatency + d.localRead(int64(len(data))), nil
	case ModeGear:
		before := d.link.Stats()
		peerBefore := d.peerLink.Stats()
		data, err := dep.view.ReadFile(p)
		if err != nil {
			return nil, 0, err
		}
		after := d.link.Stats()
		cost := d.opts.OverlayLatency + d.localRead(int64(len(data))) +
			(after.Elapsed - before.Elapsed)
		if d.peerLink != d.link {
			cost += d.peerLink.Stats().Elapsed - peerBefore.Elapsed
		}
		return data, cost, nil
	case ModeSlacker:
		before := d.link.Stats()
		data, err := d.slackerClient.ReadFile(dep.ContainerID, p)
		if err != nil {
			return nil, 0, err
		}
		after := d.link.Stats()
		return data, d.localRead(int64(len(data))) + (after.Elapsed - before.Elapsed), nil
	default:
		return nil, 0, fmt.Errorf("dockersim: bad mode %v", dep.Mode)
	}
}

// ReadAt serves n bytes of one file from offset off, returning the
// data and its modeled service latency. On a Gear deployment with a
// chunked file only the overlapping chunks fault in, so the latency is
// the partial-read stall the chunked format exists to shrink; Docker
// and Slacker deployments slice their full-file read.
func (dep *Deployment) ReadAt(p string, off, n int64) ([]byte, time.Duration, error) {
	if dep.closed {
		return nil, 0, fmt.Errorf("dockersim: %s: %w", dep.ContainerID, ErrNotDeployed)
	}
	d := dep.daemon
	if dep.Mode != ModeGear {
		data, cost, err := dep.Read(p)
		if err != nil {
			return nil, 0, err
		}
		if off < 0 || n <= 0 || off >= int64(len(data)) {
			return nil, cost, nil
		}
		if off+n > int64(len(data)) {
			n = int64(len(data)) - off
		}
		return data[off : off+n], cost, nil
	}
	before := d.link.Stats()
	peerBefore := d.peerLink.Stats()
	data, err := dep.view.ReadAt(p, off, n)
	if err != nil {
		return nil, 0, err
	}
	after := d.link.Stats()
	cost := d.opts.OverlayLatency + d.localRead(int64(len(data))) +
		(after.Elapsed - before.Elapsed)
	if d.peerLink != d.link {
		cost += d.peerLink.Stats().Elapsed - peerBefore.Elapsed
	}
	return data, cost, nil
}

// Write stores a file in the container's writable layer (Gear/Docker
// containers only; the Docker simulation writes to the materialized
// root, standing in for its writable layer).
func (dep *Deployment) Write(p string, data []byte) error {
	if dep.closed {
		return fmt.Errorf("dockersim: %s: %w", dep.ContainerID, ErrNotDeployed)
	}
	switch dep.Mode {
	case ModeDocker:
		return dep.root.WriteFile(p, data, 0o644)
	case ModeGear:
		return dep.view.WriteFile(p, data, 0o644)
	default:
		return fmt.Errorf("dockersim: %s containers are read-only in this model", dep.Mode)
	}
}

// Commit turns a running Gear container into a new Gear image and
// pushes both halves: new Gear files to the Gear registry (absent ones
// only) and the new index image to the Docker registry (Â§III-D2's full
// commit path). It returns the new reference and the bytes uploaded.
func (dep *Deployment) Commit(newName, newTag string) (ref string, uploaded int64, err error) {
	if dep.closed {
		return "", 0, fmt.Errorf("dockersim: %s: %w", dep.ContainerID, ErrNotDeployed)
	}
	if dep.Mode != ModeGear {
		return "", 0, fmt.Errorf("dockersim: commit: %s containers cannot commit in this model", dep.Mode)
	}
	d := dep.daemon
	newIx, newFiles, err := d.gearStore.Commit(dep.ContainerID, newName, newTag)
	if err != nil {
		return "", 0, fmt.Errorf("dockersim: commit %s: %w", dep.ContainerID, err)
	}
	for fp, data := range newFiles {
		present, err := d.gear.Query(fp)
		if err != nil {
			return "", 0, fmt.Errorf("dockersim: commit push %s: %w", fp, err)
		}
		if present {
			continue
		}
		if err := d.gear.Upload(fp, data); err != nil {
			return "", 0, fmt.Errorf("dockersim: commit push %s: %w", fp, err)
		}
		n := int64(len(data))
		uploaded += n
		d.link.Transfer(n)
	}
	ixImg, err := newIx.ToImage()
	if err != nil {
		return "", 0, fmt.Errorf("dockersim: commit %s: %w", dep.ContainerID, err)
	}
	pushed, err := registry.Push(d.docker, ixImg)
	if err != nil {
		return "", 0, fmt.Errorf("dockersim: commit push index: %w", err)
	}
	uploaded += pushed
	d.link.Transfer(pushed)
	return newIx.Reference(), uploaded, nil
}

// Destroy tears the container down and returns the modeled teardown
// time: per-inode cache destruction (Fig 11b's destroy bar).
func (dep *Deployment) Destroy() (time.Duration, error) {
	if dep.closed {
		return 0, fmt.Errorf("dockersim: %s: %w", dep.ContainerID, ErrNotDeployed)
	}
	dep.closed = true
	d := dep.daemon
	switch dep.Mode {
	case ModeGear:
		if err := d.gearStore.RemoveContainer(dep.ContainerID); err != nil {
			return 0, err
		}
	case ModeSlacker:
		if err := d.slackerClient.Unmount(dep.ContainerID); err != nil {
			return 0, err
		}
	case ModeDocker:
		dep.root = nil
	}
	return time.Duration(dep.inodes) * d.opts.InodeDestroyCost, nil
}
