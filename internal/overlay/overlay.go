// Package overlay implements an Overlay2-style union mount over vfs trees:
// a stack of read-only lower layers (bottom first, each a layer diff with
// literal whiteout entries) merged with one writable upper directory.
//
// This is the graph-driver substrate of the reproduction (§II-C of the
// Gear paper). The Docker baseline mounts all image layers plus a writable
// layer; the Gear File Viewer mounts a read-only Gear index plus a
// writable "diff" directory on top of it (§III-D2). Deletions are recorded
// as whiteout files in the upper layer, so the upper tree is exactly the
// "diff/" directory that a commit serializes back into a layer.
package overlay

import (
	"errors"
	"fmt"
	"io/fs"
	"path"
	"sort"
	"strings"

	"github.com/gear-image/gear/internal/tarstream"
	"github.com/gear-image/gear/internal/vfs"
)

// ErrReadOnly reports a write to a read-only mount.
var ErrReadOnly = errors.New("read-only mount")

// Mount is a union view of lower layers and a writable upper tree.
// It is not safe for concurrent mutation; the Gear driver serializes
// writes per container exactly as the kernel serializes per-inode.
type Mount struct {
	// squash is the flattened lower stack (whiteouts resolved).
	squash *vfs.FS
	// upper holds this container's modifications, with literal whiteouts.
	upper *vfs.FS
	// readonly disables all mutation (used for index-only mounts).
	readonly bool
}

// New mounts the given lower layer diffs (bottom first) under a fresh
// writable upper. Lower layers may contain whiteout entries; they are
// resolved while squashing, mirroring how Overlay2 presents a merged view.
func New(lowers ...*vfs.FS) (*Mount, error) {
	squash := vfs.New()
	for i, l := range lowers {
		if err := tarstream.ApplyLayer(squash, l); err != nil {
			return nil, fmt.Errorf("overlay: squash lower %d: %w", i, err)
		}
	}
	return &Mount{squash: squash, upper: vfs.New()}, nil
}

// AttachShared mounts an existing tree as the read-only lower WITHOUT
// copying it. The mount never mutates the lower tree, but external
// refinements of it (the Gear driver swapping a fingerprint placeholder
// for a hard-linked Gear file, §III-D2) become visible to every mount
// attached to the same tree — matching how all containers of one image
// share the kernel's dentry tree for the index directory.
func AttachShared(lower *vfs.FS) *Mount {
	return &Mount{squash: lower, upper: vfs.New()}
}

// AttachSharedWithUpper is AttachShared with an existing upper tree (a
// stopped container's diff directory being re-mounted).
func AttachSharedWithUpper(lower, upper *vfs.FS) *Mount {
	return &Mount{squash: lower, upper: upper}
}

// NewWithUpper mounts lowers under an existing upper tree (e.g. when
// re-mounting a stopped container's diff directory).
func NewWithUpper(upper *vfs.FS, lowers ...*vfs.FS) (*Mount, error) {
	m, err := New(lowers...)
	if err != nil {
		return nil, err
	}
	m.upper = upper
	return m, nil
}

// SetReadOnly marks the mount read-only.
func (m *Mount) SetReadOnly() { m.readonly = true }

// Upper returns the writable layer (the "diff/" directory). Mutating it
// directly bypasses whiteout bookkeeping; callers should treat it as
// read-only and use Commit-style flows instead.
func (m *Mount) Upper() *vfs.FS { return m.upper }

// Lower returns the squashed read-only view of all lower layers.
func (m *Mount) Lower() *vfs.FS { return m.squash }

// whiteoutPath returns the upper-layer whiteout marker path for p.
func whiteoutPath(p string) string {
	dir, name := path.Split(vfs.Clean(p))
	return path.Join(vfs.Clean(dir), tarstream.WhiteoutPrefix+name)
}

// hiddenByWhiteout reports whether the lower entry at p is hidden by the
// upper layer: a whiteout on p or an ancestor, an opaque ancestor
// (including the root — "rm -rf /" marks the root opaque), or an
// ancestor shadowed by an upper non-directory.
func (m *Mount) hiddenByWhiteout(p string) bool {
	parts := vfs.Split(p)
	cur := "/"
	for i := 0; i <= len(parts); i++ {
		if i > 0 {
			probe := path.Join(cur, parts[i-1])
			if m.upper.Exists(whiteoutPath(probe)) {
				return true
			}
			cur = probe
		}
		if i == len(parts) {
			break
		}
		// cur is now an ancestor directory of p (the root when i == 0).
		if i > 0 {
			if n, err := m.upper.Stat(cur); err == nil && !n.IsDir() {
				// An upper file/symlink shadows the whole lower subtree.
				return true
			}
		}
		if m.upper.Exists(path.Join(cur, tarstream.OpaqueMarker)) {
			// The opaque marker hides lower content below cur unless the
			// upper itself carries the deeper entries — in which case
			// Stat finds them in upper first.
			rest := path.Join(append([]string{cur}, parts[i:]...)...)
			if !m.upper.Exists(rest) {
				return true
			}
		}
	}
	return false
}

// Stat resolves p through the union: upper wins over lower; whiteouts and
// opaque markers hide lower entries.
func (m *Mount) Stat(p string) (*vfs.Node, error) {
	p = vfs.Clean(p)
	if n, err := m.upper.Stat(p); err == nil {
		if _, isWh := tarstream.IsWhiteout(path.Base(p)); isWh || path.Base(p) == tarstream.OpaqueMarker {
			return nil, fmt.Errorf("overlay: stat %s: %w", p, vfs.ErrNotExist)
		}
		// An upper directory merges with lower; any other upper node
		// shadows the lower entirely.
		return n, nil
	}
	if m.upper.Exists(whiteoutPath(p)) || m.hiddenByWhiteout(p) {
		return nil, fmt.Errorf("overlay: stat %s: %w", p, vfs.ErrNotExist)
	}
	n, err := m.squash.Stat(p)
	if err != nil {
		return nil, fmt.Errorf("overlay: stat %s: %w", p, vfs.ErrNotExist)
	}
	return n, nil
}

// Exists reports whether p resolves in the union view.
func (m *Mount) Exists(p string) bool {
	_, err := m.Stat(p)
	return err == nil
}

// ReadFile returns the regular-file content at p from the union view.
func (m *Mount) ReadFile(p string) ([]byte, error) {
	n, err := m.Stat(p)
	if err != nil {
		return nil, err
	}
	if n.IsDir() {
		return nil, fmt.Errorf("overlay: read %s: %w", vfs.Clean(p), vfs.ErrIsDir)
	}
	if n.Type() != vfs.TypeRegular {
		return nil, fmt.Errorf("overlay: read %s: %w", vfs.Clean(p), vfs.ErrInvalid)
	}
	return n.Content().Data(), nil
}

// Readlink returns the symlink target at p.
func (m *Mount) Readlink(p string) (string, error) {
	n, err := m.Stat(p)
	if err != nil {
		return "", err
	}
	if n.Type() != vfs.TypeSymlink {
		return "", fmt.Errorf("overlay: readlink %s: %w", vfs.Clean(p), vfs.ErrInvalid)
	}
	return n.Target(), nil
}

// ensureUpperDir materializes p's directory chain in the upper layer
// (Overlay2's "copy-up" of parent directories before a write).
func (m *Mount) ensureUpperDir(dir string) error {
	return m.upper.MkdirAll(dir, 0o755)
}

// WriteFile writes a regular file at p. The write lands in the upper
// layer; a same-named lower file is shadowed (whole-file copy-up
// semantics). Parent directories must exist in the union view.
func (m *Mount) WriteFile(p string, data []byte, mode fs.FileMode) error {
	if m.readonly {
		return fmt.Errorf("overlay: write %s: %w", vfs.Clean(p), ErrReadOnly)
	}
	p = vfs.Clean(p)
	dir := path.Dir(p)
	if dir != "/" {
		n, err := m.Stat(dir)
		if err != nil {
			return fmt.Errorf("overlay: write %s: %w", p, vfs.ErrNotExist)
		}
		if !n.IsDir() {
			return fmt.Errorf("overlay: write %s: %w", p, vfs.ErrNotDir)
		}
	}
	if n, err := m.Stat(p); err == nil && n.IsDir() {
		return fmt.Errorf("overlay: write %s: %w", p, vfs.ErrIsDir)
	}
	if err := m.ensureUpperDir(dir); err != nil {
		return fmt.Errorf("overlay: write %s: %w", p, err)
	}
	// Writing over a previously deleted name revives it: drop the marker.
	_ = m.upper.Remove(whiteoutPath(p))
	if err := m.upper.WriteFile(p, data, mode); err != nil {
		return fmt.Errorf("overlay: write %s: %w", p, err)
	}
	return nil
}

// Mkdir creates a directory at p in the upper layer.
func (m *Mount) Mkdir(p string, mode fs.FileMode) error {
	if m.readonly {
		return fmt.Errorf("overlay: mkdir %s: %w", vfs.Clean(p), ErrReadOnly)
	}
	p = vfs.Clean(p)
	if m.Exists(p) {
		return fmt.Errorf("overlay: mkdir %s: %w", p, vfs.ErrExist)
	}
	dir := path.Dir(p)
	if dir != "/" {
		n, err := m.Stat(dir)
		if err != nil {
			return fmt.Errorf("overlay: mkdir %s: %w", p, vfs.ErrNotExist)
		}
		if !n.IsDir() {
			return fmt.Errorf("overlay: mkdir %s: %w", p, vfs.ErrNotDir)
		}
	}
	if err := m.ensureUpperDir(dir); err != nil {
		return fmt.Errorf("overlay: mkdir %s: %w", p, err)
	}
	wasDeleted := m.upper.Exists(whiteoutPath(p))
	_ = m.upper.Remove(whiteoutPath(p))
	if err := m.upper.MkdirAll(p, mode); err != nil {
		return fmt.Errorf("overlay: mkdir %s: %w", p, err)
	}
	if wasDeleted && m.squash.Exists(p) {
		// Re-created over a deleted lower dir: hide stale lower content.
		if err := m.upper.WriteFile(path.Join(p, tarstream.OpaqueMarker), nil, 0); err != nil {
			return fmt.Errorf("overlay: mkdir %s: %w", p, err)
		}
	}
	return nil
}

// Symlink creates a symbolic link at p in the upper layer.
func (m *Mount) Symlink(target, p string) error {
	if m.readonly {
		return fmt.Errorf("overlay: symlink %s: %w", vfs.Clean(p), ErrReadOnly)
	}
	p = vfs.Clean(p)
	dir := path.Dir(p)
	if dir != "/" {
		n, err := m.Stat(dir)
		if err != nil {
			return fmt.Errorf("overlay: symlink %s: %w", p, vfs.ErrNotExist)
		}
		if !n.IsDir() {
			return fmt.Errorf("overlay: symlink %s: %w", p, vfs.ErrNotDir)
		}
	}
	if n, err := m.Stat(p); err == nil && n.IsDir() {
		return fmt.Errorf("overlay: symlink %s: %w", p, vfs.ErrIsDir)
	}
	if err := m.ensureUpperDir(dir); err != nil {
		return fmt.Errorf("overlay: symlink %s: %w", p, err)
	}
	_ = m.upper.Remove(whiteoutPath(p))
	if err := m.upper.Symlink(target, p); err != nil {
		return fmt.Errorf("overlay: symlink %s: %w", p, err)
	}
	return nil
}

// Remove deletes p from the union view. Upper-only entries are removed
// directly; entries visible from the lower stack get a whiteout marker in
// the upper layer ("Gear File Viewer creates ... a whiteout file in diff",
// §III-D2).
func (m *Mount) Remove(p string) error {
	if m.readonly {
		return fmt.Errorf("overlay: remove %s: %w", vfs.Clean(p), ErrReadOnly)
	}
	p = vfs.Clean(p)
	if p == "/" {
		return fmt.Errorf("overlay: remove /: %w", vfs.ErrInvalid)
	}
	n, err := m.Stat(p)
	if err != nil {
		return err
	}
	if n.IsDir() {
		names, err := m.ReadDir(p)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			return fmt.Errorf("overlay: remove %s: %w", p, vfs.ErrNotEmpty)
		}
	}
	if m.upper.Exists(p) {
		if err := m.upper.RemoveAll(p); err != nil {
			return fmt.Errorf("overlay: remove %s: %w", p, err)
		}
	}
	if m.squash.Exists(p) && !m.hiddenByWhiteout(p) {
		if err := m.ensureUpperDir(path.Dir(p)); err != nil {
			return fmt.Errorf("overlay: remove %s: %w", p, err)
		}
		if err := m.upper.WriteFile(whiteoutPath(p), nil, 0); err != nil {
			return fmt.Errorf("overlay: remove %s: %w", p, err)
		}
	}
	return nil
}

// RemoveAll deletes the subtree at p from the union view. Missing paths
// are not an error.
func (m *Mount) RemoveAll(p string) error {
	if m.readonly {
		return fmt.Errorf("overlay: removeall %s: %w", vfs.Clean(p), ErrReadOnly)
	}
	p = vfs.Clean(p)
	if p == "/" {
		// rm -rf /: empty the writable layer and hide the whole lower
		// stack behind a root opaque marker.
		if err := m.upper.RemoveAll("/"); err != nil {
			return fmt.Errorf("overlay: removeall /: %w", err)
		}
		if err := m.upper.WriteFile("/"+tarstream.OpaqueMarker, nil, 0); err != nil {
			return fmt.Errorf("overlay: removeall /: %w", err)
		}
		return nil
	}
	if !m.Exists(p) {
		// Match os.RemoveAll: a missing path is fine, but an ancestor
		// that exists and is not a directory is an error.
		if m.ancestorNotDir(p) {
			return fmt.Errorf("overlay: removeall %s: %w", p, vfs.ErrNotDir)
		}
		return nil
	}
	if err := m.upper.RemoveAll(p); err != nil {
		return fmt.Errorf("overlay: removeall %s: %w", p, err)
	}
	if m.squash.Exists(p) && !m.hiddenByWhiteout(p) {
		if err := m.ensureUpperDir(path.Dir(p)); err != nil {
			return fmt.Errorf("overlay: removeall %s: %w", p, err)
		}
		if err := m.upper.WriteFile(whiteoutPath(p), nil, 0); err != nil {
			return fmt.Errorf("overlay: removeall %s: %w", p, err)
		}
	}
	return nil
}

// ancestorNotDir reports whether some proper ancestor of p resolves to a
// non-directory in the union view.
func (m *Mount) ancestorNotDir(p string) bool {
	parts := vfs.Split(p)
	cur := "/"
	for i := 0; i < len(parts)-1; i++ {
		cur = path.Join(cur, parts[i])
		n, err := m.Stat(cur)
		if err != nil {
			return false
		}
		if !n.IsDir() {
			return true
		}
	}
	return false
}

// ReadDir returns the merged, sorted entry names of the directory at p,
// with whiteout and opaque markers filtered out.
func (m *Mount) ReadDir(p string) ([]string, error) {
	p = vfs.Clean(p)
	n, err := m.Stat(p)
	if err != nil {
		return nil, err
	}
	if !n.IsDir() {
		return nil, fmt.Errorf("overlay: readdir %s: %w", p, vfs.ErrNotDir)
	}

	names := make(map[string]bool)
	upperDir, upperErr := m.upper.Stat(p)
	opaque := false
	if upperErr == nil && upperDir.IsDir() {
		for _, name := range upperDir.ChildNames() {
			if name == tarstream.OpaqueMarker {
				opaque = true
				continue
			}
			if _, isWh := tarstream.IsWhiteout(name); isWh {
				continue
			}
			names[name] = true
		}
		opaque = opaque || upperDir.Opaque
	}
	if !opaque && !m.hiddenByWhiteout(p) {
		// ReadDirNames lists the lower tree under its lock: the squash
		// layer may be a live shared index tree that a concurrent fetch
		// is linking Gear files into.
		if lowerNames, err := m.squash.ReadDirNames(p); err == nil {
			// Upper non-dir shadows the whole lower dir.
			if upperErr != nil || upperDir.IsDir() {
				for _, name := range lowerNames {
					child := path.Join(p, name)
					if m.upper.Exists(whiteoutPath(child)) {
						continue
					}
					if un, err := m.upper.Stat(child); err == nil && !un.IsDir() {
						// Shadowed by an upper file/symlink; already listed.
						continue
					}
					names[name] = true
				}
			}
		}
	}
	out := make([]string, 0, len(names))
	for name := range names {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Walk visits the union view in deterministic pre-order.
func (m *Mount) Walk(fn vfs.WalkFunc) error {
	return m.walkDir("/", fn)
}

func (m *Mount) walkDir(dir string, fn vfs.WalkFunc) error {
	names, err := m.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		p := path.Join(dir, name)
		n, err := m.Stat(p)
		if err != nil {
			return err
		}
		if err := fn(p, n); err != nil {
			return err
		}
		if n.IsDir() {
			if err := m.walkDir(p, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// Materialize flattens the union view into a standalone tree — the root
// filesystem a container process sees.
func (m *Mount) Materialize() (*vfs.FS, error) {
	out := vfs.New()
	err := m.Walk(func(p string, n *vfs.Node) error {
		switch n.Type() {
		case vfs.TypeDir:
			return out.MkdirAll(p, n.Mode())
		case vfs.TypeRegular:
			return out.PutContent(p, n.Content(), n.Mode())
		case vfs.TypeSymlink:
			return out.Symlink(n.Target(), p)
		default:
			return fmt.Errorf("overlay: materialize %s: %w", p, vfs.ErrInvalid)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DiffTree returns the upper layer — the container's modifications in
// layer-diff form (whiteouts literal), ready for tarstream packing. This
// is what "docker commit" turns into a new read-only layer (§II-A) and
// what the Gear File Viewer's commit extracts Gear files from (§III-D2).
func (m *Mount) DiffTree() *vfs.FS { return m.upper.Clone() }

// UpperStats summarizes the writable layer.
func (m *Mount) UpperStats() tarstream.LayerStats { return tarstream.StatsOf(m.upper) }

// IsMarkerName reports whether name is overlay bookkeeping (whiteout or
// opaque marker) rather than visible payload.
func IsMarkerName(name string) bool {
	if name == tarstream.OpaqueMarker {
		return true
	}
	return strings.HasPrefix(name, tarstream.WhiteoutPrefix)
}
