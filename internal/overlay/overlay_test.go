package overlay

import (
	"errors"
	"fmt"
	"math/rand"
	"path"
	"strings"
	"testing"
	"testing/quick"

	"github.com/gear-image/gear/internal/tarstream"
	"github.com/gear-image/gear/internal/vfs"
)

// lowerFixture builds a lower layer resembling a small image rootfs.
func lowerFixture(t *testing.T) *vfs.FS {
	t.Helper()
	f := vfs.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.MkdirAll("/etc", 0o755))
	must(f.MkdirAll("/bin", 0o755))
	must(f.WriteFile("/etc/conf", []byte("lower"), 0o644))
	must(f.WriteFile("/bin/sh", []byte("#!sh"), 0o755))
	must(f.Symlink("sh", "/bin/bash"))
	return f
}

func newMount(t *testing.T) *Mount {
	t.Helper()
	m, err := New(lowerFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReadThroughToLower(t *testing.T) {
	m := newMount(t)
	got, err := m.ReadFile("/etc/conf")
	if err != nil || string(got) != "lower" {
		t.Errorf("ReadFile = %q, %v", got, err)
	}
	target, err := m.Readlink("/bin/bash")
	if err != nil || target != "sh" {
		t.Errorf("Readlink = %q, %v", target, err)
	}
	if _, err := m.ReadFile("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("missing file err = %v", err)
	}
	if _, err := m.ReadFile("/etc"); !errors.Is(err, vfs.ErrIsDir) {
		t.Errorf("read dir err = %v", err)
	}
	if _, err := m.ReadFile("/bin/bash"); !errors.Is(err, vfs.ErrInvalid) {
		t.Errorf("read symlink err = %v", err)
	}
	if _, err := m.Readlink("/etc/conf"); !errors.Is(err, vfs.ErrInvalid) {
		t.Errorf("readlink file err = %v", err)
	}
}

func TestWriteShadowsLower(t *testing.T) {
	m := newMount(t)
	if err := m.WriteFile("/etc/conf", []byte("upper"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("/etc/conf")
	if err != nil || string(got) != "upper" {
		t.Errorf("ReadFile = %q, %v", got, err)
	}
	// The lower tree is untouched.
	low, err := m.Lower().ReadFile("/etc/conf")
	if err != nil || string(low) != "lower" {
		t.Errorf("lower mutated: %q, %v", low, err)
	}
	// The upper diff contains exactly the one change.
	s := m.UpperStats()
	if s.Whiteouts != 0 || s.Bytes != int64(len("upper")) {
		t.Errorf("upper stats = %+v", s)
	}
}

func TestWriteErrors(t *testing.T) {
	m := newMount(t)
	if err := m.WriteFile("/no/parent", nil, 0o644); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
	if err := m.WriteFile("/etc", nil, 0o644); !errors.Is(err, vfs.ErrIsDir) {
		t.Errorf("err = %v, want ErrIsDir", err)
	}
	if err := m.WriteFile("/bin/sh/x", nil, 0o644); !errors.Is(err, vfs.ErrNotDir) {
		t.Errorf("err = %v, want ErrNotDir", err)
	}
}

func TestRemoveLowerCreatesWhiteout(t *testing.T) {
	m := newMount(t)
	if err := m.Remove("/etc/conf"); err != nil {
		t.Fatal(err)
	}
	if m.Exists("/etc/conf") {
		t.Error("file still visible after Remove")
	}
	if _, err := m.ReadFile("/etc/conf"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("err = %v", err)
	}
	s := m.UpperStats()
	if s.Whiteouts != 1 {
		t.Errorf("whiteouts = %d, want 1", s.Whiteouts)
	}
	// Lower still intact.
	if !m.Lower().Exists("/etc/conf") {
		t.Error("lower mutated")
	}
}

func TestRemoveUpperOnlyLeavesNoWhiteout(t *testing.T) {
	m := newMount(t)
	if err := m.WriteFile("/etc/new", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("/etc/new"); err != nil {
		t.Fatal(err)
	}
	if m.Exists("/etc/new") {
		t.Error("still visible")
	}
	if got := m.UpperStats().Whiteouts; got != 0 {
		t.Errorf("whiteouts = %d, want 0 (no lower entry to hide)", got)
	}
}

func TestRemoveShadowedFileNeedsWhiteoutToo(t *testing.T) {
	m := newMount(t)
	if err := m.WriteFile("/etc/conf", []byte("upper"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("/etc/conf"); err != nil {
		t.Fatal(err)
	}
	if m.Exists("/etc/conf") {
		t.Error("lower shows through after removing shadowing upper file")
	}
}

func TestRemoveNonEmptyDir(t *testing.T) {
	m := newMount(t)
	if err := m.Remove("/etc"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Errorf("err = %v, want ErrNotEmpty", err)
	}
}

func TestRemoveAllSubtree(t *testing.T) {
	m := newMount(t)
	if err := m.WriteFile("/etc/extra", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveAll("/etc"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/etc", "/etc/conf", "/etc/extra"} {
		if m.Exists(p) {
			t.Errorf("%s still visible", p)
		}
	}
	if err := m.RemoveAll("/etc"); err != nil {
		t.Errorf("RemoveAll of missing path = %v, want nil", err)
	}
	// /bin unaffected.
	if !m.Exists("/bin/sh") {
		t.Error("unrelated subtree removed")
	}
}

func TestWriteRevivesDeletedFile(t *testing.T) {
	m := newMount(t)
	if err := m.Remove("/etc/conf"); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile("/etc/conf", []byte("reborn"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("/etc/conf")
	if err != nil || string(got) != "reborn" {
		t.Errorf("ReadFile = %q, %v", got, err)
	}
	if got := m.UpperStats().Whiteouts; got != 0 {
		t.Errorf("whiteouts = %d, want 0 after revival", got)
	}
}

func TestMkdirOverDeletedLowerDirIsOpaque(t *testing.T) {
	m := newMount(t)
	if err := m.RemoveAll("/etc"); err != nil {
		t.Fatal(err)
	}
	if err := m.Mkdir("/etc", 0o755); err != nil {
		t.Fatal(err)
	}
	if m.Exists("/etc/conf") {
		t.Error("stale lower content visible in re-created directory")
	}
	names, err := m.ReadDir("/etc")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("ReadDir = %v, want empty", names)
	}
}

func TestMkdirErrors(t *testing.T) {
	m := newMount(t)
	if err := m.Mkdir("/etc", 0o755); !errors.Is(err, vfs.ErrExist) {
		t.Errorf("err = %v, want ErrExist", err)
	}
	if err := m.Mkdir("/no/parent", 0o755); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
}

func TestReadDirMergesLayers(t *testing.T) {
	m := newMount(t)
	if err := m.WriteFile("/etc/upper-only", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("/etc/conf"); err != nil {
		t.Fatal(err)
	}
	names, err := m.ReadDir("/etc")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"upper-only"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("ReadDir = %v, want %v", names, want)
	}
	names, err = m.ReadDir("/bin")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(names, ",") != "bash,sh" {
		t.Errorf("ReadDir(/bin) = %v", names)
	}
	if _, err := m.ReadDir("/bin/sh"); !errors.Is(err, vfs.ErrNotDir) {
		t.Errorf("readdir on file err = %v", err)
	}
}

func TestUpperFileShadowsLowerDir(t *testing.T) {
	lower := vfs.New()
	if err := lower.MkdirAll("/opt/app", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := lower.WriteFile("/opt/app/bin", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := New(lower)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveAll("/opt/app"); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile("/opt/app", []byte("now a file"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := m.Stat("/opt/app")
	if err != nil || n.Type() != vfs.TypeRegular {
		t.Fatalf("Stat = %v, %v; want regular file", n, err)
	}
	if m.Exists("/opt/app/bin") {
		t.Error("child of shadowed dir still visible")
	}
	names, err := m.ReadDir("/opt")
	if err != nil || strings.Join(names, ",") != "app" {
		t.Errorf("ReadDir(/opt) = %v, %v", names, err)
	}
}

func TestMultipleLowerLayers(t *testing.T) {
	l1 := vfs.New()
	if err := l1.MkdirAll("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := l1.WriteFile("/a/f", []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l1.WriteFile("/a/gone", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := vfs.New()
	if err := l2.MkdirAll("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := l2.WriteFile("/a/f", []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l2.WriteFile("/a/.wh.gone", nil, 0); err != nil {
		t.Fatal(err)
	}
	m, err := New(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("/a/f")
	if err != nil || string(got) != "v2" {
		t.Errorf("upper layer did not win: %q, %v", got, err)
	}
	if m.Exists("/a/gone") {
		t.Error("lower whiteout not applied while squashing")
	}
}

func TestReadOnlyMount(t *testing.T) {
	m := newMount(t)
	m.SetReadOnly()
	ops := map[string]error{
		"write":     m.WriteFile("/etc/x", nil, 0o644),
		"mkdir":     m.Mkdir("/newdir", 0o755),
		"symlink":   m.Symlink("t", "/etc/l"),
		"remove":    m.Remove("/etc/conf"),
		"removeall": m.RemoveAll("/etc"),
	}
	for name, err := range ops {
		if !errors.Is(err, ErrReadOnly) {
			t.Errorf("%s err = %v, want ErrReadOnly", name, err)
		}
	}
	if _, err := m.ReadFile("/etc/conf"); err != nil {
		t.Errorf("read on read-only mount failed: %v", err)
	}
}

func TestMaterializeAndWalk(t *testing.T) {
	m := newMount(t)
	if err := m.WriteFile("/etc/conf", []byte("upper"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("/bin/bash"); err != nil {
		t.Fatal(err)
	}
	flat, err := m.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := flat.ReadFile("/etc/conf")
	if err != nil || string(got) != "upper" {
		t.Errorf("materialized conf = %q, %v", got, err)
	}
	if flat.Exists("/bin/bash") {
		t.Error("removed symlink materialized")
	}
	var paths []string
	if err := m.Walk(func(p string, _ *vfs.Node) error {
		paths = append(paths, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if IsMarkerName(path.Base(p)) {
			t.Errorf("walk leaked marker %s", p)
		}
	}
}

func TestCommitRoundTrip(t *testing.T) {
	// The upper diff, applied over the lower stack, equals the union view —
	// the invariant behind "docker commit" and the Gear commit path.
	m := newMount(t)
	if err := m.WriteFile("/etc/conf", []byte("changed"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile("/etc/new", []byte("n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("/bin/bash"); err != nil {
		t.Fatal(err)
	}

	base := m.Lower().Clone()
	if err := tarstream.ApplyLayer(base, m.DiffTree()); err != nil {
		t.Fatal(err)
	}
	flat, err := m.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	snapA := snapshot(base)
	snapB := snapshot(flat)
	if snapA != snapB {
		t.Errorf("apply(diff) != materialized view:\n--- apply\n%s--- view\n%s", snapA, snapB)
	}
}

func TestNewWithUpperRestoresState(t *testing.T) {
	m := newMount(t)
	if err := m.WriteFile("/etc/conf", []byte("persisted"), 0o644); err != nil {
		t.Fatal(err)
	}
	diff := m.DiffTree()

	m2, err := NewWithUpper(diff, lowerFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.ReadFile("/etc/conf")
	if err != nil || string(got) != "persisted" {
		t.Errorf("remounted upper lost data: %q, %v", got, err)
	}
}

func snapshot(f *vfs.FS) string {
	var sb strings.Builder
	_ = f.Walk(func(p string, n *vfs.Node) error {
		var body string
		if n.Type() == vfs.TypeRegular {
			body = string(n.Content().Data())
		}
		fmt.Fprintf(&sb, "%s %v %q %q\n", p, n.Type(), n.Target(), body)
		return nil
	})
	return sb.String()
}

func mountSnapshot(m *Mount) string {
	var sb strings.Builder
	_ = m.Walk(func(p string, n *vfs.Node) error {
		var body string
		if n.Type() == vfs.TypeRegular {
			body = string(n.Content().Data())
		}
		fmt.Fprintf(&sb, "%s %v %q %q\n", p, n.Type(), n.Target(), body)
		return nil
	})
	return sb.String()
}

// Property: a random series of mount mutations keeps three invariants:
// (1) the union view never shows marker names, (2) Materialize equals
// ApplyLayer(lower, diff), and (3) the lower tree is never mutated.
func TestMountInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lower := vfs.New()
		buildRandomTree(lower, rng, 25)
		lowerSnap := snapshot(lower)

		m, err := New(lower)
		if err != nil {
			return false
		}
		applyRandomMountOps(m, rng, 40)

		// (1) no markers visible
		bad := false
		_ = m.Walk(func(p string, _ *vfs.Node) error {
			if IsMarkerName(path.Base(p)) {
				bad = true
			}
			return nil
		})
		if bad {
			return false
		}
		// (2) commit round trip
		base := m.Lower().Clone()
		if err := tarstream.ApplyLayer(base, m.DiffTree()); err != nil {
			return false
		}
		flat, err := m.Materialize()
		if err != nil {
			return false
		}
		if snapshot(base) != snapshot(flat) {
			return false
		}
		// (3) lower untouched
		return snapshot(lower) == lowerSnap
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func buildRandomTree(f *vfs.FS, rng *rand.Rand, n int) {
	dirs := []string{"/"}
	for i := 0; i < n; i++ {
		d := dirs[rng.Intn(len(dirs))]
		name := fmt.Sprintf("e%02d", i)
		p := path.Join(d, name)
		switch rng.Intn(3) {
		case 0:
			if f.Mkdir(p, 0o755) == nil {
				dirs = append(dirs, p)
			}
		case 1:
			data := make([]byte, rng.Intn(20))
			rng.Read(data)
			_ = f.WriteFile(p, data, 0o644)
		default:
			_ = f.Symlink("/tgt", p)
		}
	}
}

func applyRandomMountOps(m *Mount, rng *rand.Rand, n int) {
	var all []string
	refresh := func() {
		all = []string{"/"}
		_ = m.Walk(func(p string, _ *vfs.Node) error {
			all = append(all, p)
			return nil
		})
	}
	for i := 0; i < n; i++ {
		refresh()
		target := all[rng.Intn(len(all))]
		switch rng.Intn(5) {
		case 0:
			_ = m.WriteFile(path.Join(target, fmt.Sprintf("w%02d", i)), []byte{byte(i)}, 0o644)
		case 1:
			_ = m.Mkdir(path.Join(target, fmt.Sprintf("d%02d", i)), 0o755)
		case 2:
			_ = m.Symlink("/x", path.Join(target, fmt.Sprintf("s%02d", i)))
		case 3:
			if target != "/" {
				_ = m.Remove(target)
			}
		default:
			if target != "/" {
				_ = m.RemoveAll(target)
			}
		}
	}
}

// Property: remounting the diff over the same lower stack reproduces the
// identical union view (container stop/start persistence).
func TestRemountProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lower := vfs.New()
		buildRandomTree(lower, rng, 20)
		m, err := New(lower)
		if err != nil {
			return false
		}
		applyRandomMountOps(m, rng, 30)
		before := mountSnapshot(m)

		m2, err := NewWithUpper(m.DiffTree(), lower)
		if err != nil {
			return false
		}
		return mountSnapshot(m2) == before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionStat(b *testing.B) {
	lower := vfs.New()
	if err := lower.MkdirAll("/usr/lib/app", 0o755); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := lower.WriteFile(fmt.Sprintf("/usr/lib/app/f%03d", i), []byte("x"), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	m := AttachShared(lower)
	if err := m.WriteFile("/usr/lib/app/f000", []byte("upper"), 0o644); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Stat(fmt.Sprintf("/usr/lib/app/f%03d", i%100)); err != nil {
			b.Fatal(err)
		}
	}
}
