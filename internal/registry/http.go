package registry

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
)

// HTTP wire protocol, loosely modeled on the Docker Registry v2 API:
//
//	GET  /v2/manifests/{name}/{tag}   -> manifest JSON
//	PUT  /v2/manifests/{name}/{tag}   <- manifest JSON
//	GET  /v2/manifests/               -> newline-separated references
//	HEAD /v2/blobs/{digest}           -> 200 if present, 404 otherwise
//	GET  /v2/blobs/{digest}           -> blob bytes
//	PUT  /v2/blobs/{digest}           <- blob bytes

// Handler adapts a Registry to HTTP.
type Handler struct {
	reg *Registry
}

var _ http.Handler = (*Handler)(nil)

// NewHandler wraps reg.
func NewHandler(reg *Registry) *Handler { return &Handler{reg: reg} }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasPrefix(r.URL.Path, "/v2/manifests/"):
		h.serveManifest(w, r, strings.TrimPrefix(r.URL.Path, "/v2/manifests/"))
	case strings.HasPrefix(r.URL.Path, "/v2/blobs/"):
		h.serveBlob(w, r, strings.TrimPrefix(r.URL.Path, "/v2/blobs/"))
	default:
		http.NotFound(w, r)
	}
}

func (h *Handler) serveManifest(w http.ResponseWriter, r *http.Request, rest string) {
	if rest == "" {
		if r.Method != http.MethodGet {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		refs, _ := h.reg.ListManifests()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, strings.Join(refs, "\n"))
		return
	}
	// Image names may contain slashes ("gear/nginx"); the tag is the
	// final path segment.
	cut := strings.LastIndex(rest, "/")
	if cut <= 0 || cut == len(rest)-1 {
		http.Error(w, "want /v2/manifests/{name}/{tag}", http.StatusBadRequest)
		return
	}
	name, tag := rest[:cut], rest[cut+1:]
	switch r.Method {
	case http.MethodGet:
		m, err := h.reg.GetManifest(name, tag)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrManifestNotFound) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		data, err := imagefmt.EncodeManifest(m)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	case http.MethodPut:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		m, err := imagefmt.DecodeManifest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if m.Name != name || m.Tag != tag {
			http.Error(w, "manifest reference does not match URL", http.StatusBadRequest)
			return
		}
		if err := h.reg.PutManifest(m); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (h *Handler) serveBlob(w http.ResponseWriter, r *http.Request, rawDigest string) {
	d := hashing.Digest(rawDigest)
	if err := d.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodHead:
		ok, _ := h.reg.HasBlob(d)
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	case http.MethodGet:
		data, err := h.reg.GetBlob(d)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrBlobNotFound) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	case http.MethodPut:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := h.reg.PutBlob(d, body); err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrDigestMismatch) || errors.Is(err, hashing.ErrMalformed) {
				status = http.StatusBadRequest
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.WriteHeader(http.StatusCreated)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

// Client is an HTTP Store implementation used by daemons talking to a
// remote registry.
type Client struct {
	base string
	http *http.Client
}

var _ Store = (*Client)(nil)

// NewClient returns a client for the registry at baseURL (no trailing
// slash required). If hc is nil, http.DefaultClient is used.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimSuffix(baseURL, "/"), http: hc}
}

func (c *Client) do(method, url string, body []byte) (*http.Response, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		return nil, fmt.Errorf("registry client: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("registry client: %s %s: %w", method, url, err)
	}
	return resp, nil
}

// readBody drains and closes the response body.
func readBody(resp *http.Response) ([]byte, error) {
	defer func() { _ = resp.Body.Close() }()
	return io.ReadAll(resp.Body)
}

// PutManifest implements Store.
func (c *Client) PutManifest(m *imagefmt.Manifest) error {
	data, err := imagefmt.EncodeManifest(m)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/v2/manifests/%s/%s", c.base, m.Name, m.Tag)
	resp, err := c.do(http.MethodPut, url, data)
	if err != nil {
		return err
	}
	body, _ := readBody(resp)
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("registry client: put manifest %s: %s: %s",
			m.Reference(), resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// GetManifest implements Store.
func (c *Client) GetManifest(name, tag string) (*imagefmt.Manifest, error) {
	url := fmt.Sprintf("%s/v2/manifests/%s/%s", c.base, name, tag)
	resp, err := c.do(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	body, err := readBody(resp)
	if err != nil {
		return nil, fmt.Errorf("registry client: get manifest: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return imagefmt.DecodeManifest(body)
	case http.StatusNotFound:
		return nil, fmt.Errorf("registry client: %s:%s: %w", name, tag, ErrManifestNotFound)
	default:
		return nil, fmt.Errorf("registry client: get manifest %s:%s: %s", name, tag, resp.Status)
	}
}

// ListManifests implements Store.
func (c *Client) ListManifests() ([]string, error) {
	resp, err := c.do(http.MethodGet, c.base+"/v2/manifests/", nil)
	if err != nil {
		return nil, err
	}
	body, err := readBody(resp)
	if err != nil {
		return nil, fmt.Errorf("registry client: list manifests: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("registry client: list manifests: %s", resp.Status)
	}
	text := strings.TrimSpace(string(body))
	if text == "" {
		return nil, nil
	}
	return strings.Split(text, "\n"), nil
}

// HasBlob implements Store.
func (c *Client) HasBlob(d hashing.Digest) (bool, error) {
	resp, err := c.do(http.MethodHead, c.base+"/v2/blobs/"+string(d), nil)
	if err != nil {
		return false, err
	}
	_, _ = readBody(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("registry client: head blob %s: %s", d, resp.Status)
	}
}

// PutBlob implements Store.
func (c *Client) PutBlob(d hashing.Digest, data []byte) error {
	resp, err := c.do(http.MethodPut, c.base+"/v2/blobs/"+string(d), data)
	if err != nil {
		return err
	}
	body, _ := readBody(resp)
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("registry client: put blob %s: %s: %s",
			d, resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// GetBlob implements Store.
func (c *Client) GetBlob(d hashing.Digest) ([]byte, error) {
	resp, err := c.do(http.MethodGet, c.base+"/v2/blobs/"+string(d), nil)
	if err != nil {
		return nil, err
	}
	body, err := readBody(resp)
	if err != nil {
		return nil, fmt.Errorf("registry client: get blob %s: %w", d, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, nil
	case http.StatusNotFound:
		return nil, fmt.Errorf("registry client: %s: %w", d, ErrBlobNotFound)
	default:
		return nil, fmt.Errorf("registry client: get blob %s: %s", d, resp.Status)
	}
}
