// Package registry implements the Docker-side registry of the
// reproduction: a content-addressed store of gzip-compressed layer
// tarballs plus named manifests, deduplicated at layer granularity by
// SHA256 digest exactly as §II-B of the Gear paper describes. It stores
// both regular Docker images and the single-layer Gear-index images the
// converter produces (§III-C).
//
// The store is exposed two ways: in-process (Registry) and over HTTP
// (Handler/Client), mirroring the paper's deployment where the Docker
// Registry runs on a separate server from the daemon.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/telemetry"
)

// Errors returned by registry operations.
var (
	ErrManifestNotFound = errors.New("manifest not found")
	ErrBlobNotFound     = errors.New("blob not found")
	ErrDigestMismatch   = errors.New("blob does not match digest")
)

// Store is the registry protocol shared by the in-process Registry and
// the HTTP client: exactly what a Docker daemon needs to push and pull.
type Store interface {
	// PutManifest stores or replaces the manifest for its reference.
	PutManifest(m *imagefmt.Manifest) error
	// GetManifest fetches the manifest for name:tag.
	GetManifest(name, tag string) (*imagefmt.Manifest, error)
	// ListManifests returns all stored references, sorted.
	ListManifests() ([]string, error)
	// HasBlob reports whether the layer blob is already stored — the
	// layer-level dedup check clients run before uploading.
	HasBlob(d hashing.Digest) (bool, error)
	// PutBlob stores a compressed layer under its digest.
	PutBlob(d hashing.Digest, data []byte) error
	// GetBlob fetches a compressed layer by digest.
	GetBlob(d hashing.Digest) ([]byte, error)
}

// Registry is the in-process store. It is safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	manifests map[string][]byte
	blobs     map[hashing.Digest][]byte

	// Telemetry handles are the stats' only storage; the registry.*
	// gauges are maintained under mu on every mutation, making Stats
	// O(1), and a shared telemetry registry sees them live.
	tele          *telemetry.Registry
	manifestCount *telemetry.Gauge
	manifestBytes *telemetry.Gauge
	blobCount     *telemetry.Gauge
	blobBytes     *telemetry.Gauge
	dedupHits     *telemetry.Counter
}

var _ Store = (*Registry)(nil)

// New returns an empty registry publishing into a private telemetry
// registry.
func New() *Registry {
	return NewWithTelemetry(nil)
}

// NewWithTelemetry is New publishing registry.* metrics into reg (nil
// creates a private registry so the snapshot surface always works).
func NewWithTelemetry(reg *telemetry.Registry) *Registry {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Registry{
		manifests:     make(map[string][]byte),
		blobs:         make(map[hashing.Digest][]byte),
		tele:          reg,
		manifestCount: reg.Gauge("registry.manifests"),
		manifestBytes: reg.Gauge("registry.manifest.bytes"),
		blobCount:     reg.Gauge("registry.blobs"),
		blobBytes:     reg.Gauge("registry.blob.bytes"),
		dedupHits:     reg.Counter("registry.dedup.hits"),
	}
}

// Telemetry returns the metrics registry this store publishes into.
func (r *Registry) Telemetry() *telemetry.Registry { return r.tele }

// StatsSnapshot returns the unified telemetry snapshot for this store —
// what the /metrics endpoint serves.
func (r *Registry) StatsSnapshot() telemetry.Snapshot { return r.tele.Snapshot() }

// Snapshot implements telemetry.Snapshotter.
func (r *Registry) Snapshot() telemetry.Snapshot { return r.StatsSnapshot() }

// PutManifest implements Store.
func (r *Registry) PutManifest(m *imagefmt.Manifest) error {
	data, err := imagefmt.EncodeManifest(m)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ref := m.Reference()
	if old, ok := r.manifests[ref]; ok {
		r.manifestBytes.Add(-int64(len(old)))
	} else {
		r.manifestCount.Add(1)
	}
	r.manifests[ref] = data
	r.manifestBytes.Add(int64(len(data)))
	return nil
}

// GetManifest implements Store.
func (r *Registry) GetManifest(name, tag string) (*imagefmt.Manifest, error) {
	ref := name + ":" + tag
	r.mu.RLock()
	data, ok := r.manifests[ref]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("registry: %s: %w", ref, ErrManifestNotFound)
	}
	return imagefmt.DecodeManifest(data)
}

// ListManifests implements Store.
func (r *Registry) ListManifests() ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	refs := make([]string, 0, len(r.manifests))
	for ref := range r.manifests {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	return refs, nil
}

// HasBlob implements Store.
func (r *Registry) HasBlob(d hashing.Digest) (bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.blobs[d]
	return ok, nil
}

// PutBlob implements Store. Content is verified against the digest;
// re-uploads of existing blobs are counted as dedup hits and dropped.
func (r *Registry) PutBlob(d hashing.Digest, data []byte) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("registry: put blob: %w", err)
	}
	if got := hashing.DigestBytes(data); got != d {
		return fmt.Errorf("registry: put blob %s: %w", d, ErrDigestMismatch)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.blobs[d]; ok {
		r.dedupHits.Inc()
		return nil
	}
	stored := make([]byte, len(data))
	copy(stored, data)
	r.blobs[d] = stored
	r.blobCount.Add(1)
	r.blobBytes.Add(int64(len(stored)))
	return nil
}

// GetBlob implements Store.
func (r *Registry) GetBlob(d hashing.Digest) ([]byte, error) {
	r.mu.RLock()
	data, ok := r.blobs[d]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("registry: blob %s: %w", d, ErrBlobNotFound)
	}
	return data, nil
}

// Stats summarizes registry storage, the quantity Fig 7 compares across
// Docker and Gear registries. It is a view over the registry.*
// telemetry gauges.
type Stats struct {
	Manifests     int   `json:"manifests"`
	Blobs         int   `json:"blobs"`
	BlobBytes     int64 `json:"blobBytes"`
	ManifestBytes int64 `json:"manifestBytes"`
	DedupHits     int64 `json:"dedupHits"`
}

// TotalBytes returns blob plus manifest storage.
func (s Stats) TotalBytes() int64 { return s.BlobBytes + s.ManifestBytes }

// Stats returns a snapshot of storage usage.
func (r *Registry) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Stats{
		Manifests:     len(r.manifests),
		Blobs:         len(r.blobs),
		BlobBytes:     r.blobBytes.Value(),
		ManifestBytes: r.manifestBytes.Value(),
		DedupHits:     r.dedupHits.Value(),
	}
}

// Push uploads an image to any Store, skipping blobs the store already
// has (the client side of layer-level dedup). It returns the number of
// bytes actually uploaded.
func Push(s Store, img *imagefmt.Image) (int64, error) {
	if err := img.Validate(); err != nil {
		return 0, fmt.Errorf("registry: push: %w", err)
	}
	var uploaded int64
	for _, layer := range img.Layers {
		ok, err := s.HasBlob(layer.Digest)
		if err != nil {
			return uploaded, fmt.Errorf("registry: push %s: %w", img.Manifest.Reference(), err)
		}
		if ok {
			continue
		}
		if err := s.PutBlob(layer.Digest, layer.Tarball()); err != nil {
			return uploaded, fmt.Errorf("registry: push %s: %w", img.Manifest.Reference(), err)
		}
		uploaded += layer.Size
	}
	if err := s.PutManifest(img.Manifest); err != nil {
		return uploaded, fmt.Errorf("registry: push %s: %w", img.Manifest.Reference(), err)
	}
	return uploaded, nil
}

// Pull fetches a complete image from any Store.
func Pull(s Store, name, tag string) (*imagefmt.Image, error) {
	m, err := s.GetManifest(name, tag)
	if err != nil {
		return nil, fmt.Errorf("registry: pull %s:%s: %w", name, tag, err)
	}
	img := &imagefmt.Image{Manifest: m}
	for _, d := range m.Layers {
		data, err := s.GetBlob(d)
		if err != nil {
			return nil, fmt.Errorf("registry: pull %s:%s: %w", name, tag, err)
		}
		layer, err := imagefmt.NewLayerFromTarball(data, d)
		if err != nil {
			return nil, fmt.Errorf("registry: pull %s:%s: %w", name, tag, err)
		}
		img.Layers = append(img.Layers, layer)
	}
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("registry: pull %s:%s: %w", name, tag, err)
	}
	return img, nil
}
