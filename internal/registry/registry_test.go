package registry

import (
	"errors"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

func testImage(t *testing.T, name, tag, payload string) *imagefmt.Image {
	t.Helper()
	base := vfs.New()
	if err := base.MkdirAll("/bin", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := base.WriteFile("/bin/sh", []byte("#!shared-base"), 0o755); err != nil {
		t.Fatal(err)
	}
	app := vfs.New()
	if err := app.WriteFile("/app", []byte(payload), 0o755); err != nil {
		t.Fatal(err)
	}
	b := imagefmt.NewBuilder(name, tag)
	if err := b.AddDiffLayer(base); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDiffLayer(app); err != nil {
		t.Fatal(err)
	}
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestPushPullRoundTrip(t *testing.T) {
	r := New()
	img := testImage(t, "nginx", "1.17", "nginx-bin")
	uploaded, err := Push(r, img)
	if err != nil {
		t.Fatal(err)
	}
	if uploaded != img.Manifest.TotalSize() {
		t.Errorf("uploaded = %d, want %d", uploaded, img.Manifest.TotalSize())
	}
	got, err := Pull(r, "nginx", "1.17")
	if err != nil {
		t.Fatal(err)
	}
	root, err := got.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	data, err := root.ReadFile("/app")
	if err != nil || string(data) != "nginx-bin" {
		t.Errorf("pulled app = %q, %v", data, err)
	}
}

func TestPullMissing(t *testing.T) {
	r := New()
	if _, err := Pull(r, "ghost", "v1"); !errors.Is(err, ErrManifestNotFound) {
		t.Errorf("err = %v, want ErrManifestNotFound", err)
	}
}

func TestLayerLevelDedup(t *testing.T) {
	// Two images sharing the base layer: the second push uploads only its
	// unique top layer (§II-B layer-level dedup).
	r := New()
	a := testImage(t, "nginx", "1.17", "nginx-bin")
	b := testImage(t, "httpd", "2.4", "httpd-bin")
	if _, err := Push(r, a); err != nil {
		t.Fatal(err)
	}
	before := r.Stats()
	up, err := Push(r, b)
	if err != nil {
		t.Fatal(err)
	}
	if up != b.Layers[1].Size {
		t.Errorf("second push uploaded %d, want only top layer %d", up, b.Layers[1].Size)
	}
	after := r.Stats()
	if after.Blobs != before.Blobs+1 {
		t.Errorf("blobs %d -> %d, want +1 (base shared)", before.Blobs, after.Blobs)
	}
	if after.Manifests != 2 {
		t.Errorf("manifests = %d, want 2", after.Manifests)
	}
}

func TestRepushIsIdempotent(t *testing.T) {
	r := New()
	img := testImage(t, "redis", "6", "redis-bin")
	if _, err := Push(r, img); err != nil {
		t.Fatal(err)
	}
	before := r.Stats()
	up, err := Push(r, img)
	if err != nil {
		t.Fatal(err)
	}
	if up != 0 {
		t.Errorf("re-push uploaded %d bytes, want 0", up)
	}
	if got := r.Stats(); got.BlobBytes != before.BlobBytes || got.Blobs != before.Blobs {
		t.Errorf("storage changed on re-push: %+v -> %+v", before, got)
	}
}

func TestPutBlobVerifiesDigest(t *testing.T) {
	r := New()
	data := []byte("blob")
	if err := r.PutBlob(hashing.DigestBytes([]byte("other")), data); !errors.Is(err, ErrDigestMismatch) {
		t.Errorf("err = %v, want ErrDigestMismatch", err)
	}
	if err := r.PutBlob("sha256:short", data); !errors.Is(err, hashing.ErrMalformed) {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
	if err := r.PutBlob(hashing.DigestBytes(data), data); err != nil {
		t.Errorf("valid put failed: %v", err)
	}
}

func TestPutBlobDedupHit(t *testing.T) {
	r := New()
	data := []byte("same blob")
	d := hashing.DigestBytes(data)
	for i := 0; i < 3; i++ {
		if err := r.PutBlob(d, data); err != nil {
			t.Fatal(err)
		}
	}
	s := r.Stats()
	if s.Blobs != 1 || s.DedupHits != 2 {
		t.Errorf("stats = %+v, want 1 blob / 2 dedup hits", s)
	}
}

func TestListManifests(t *testing.T) {
	r := New()
	for _, ref := range []struct{ n, tag, p string }{
		{"zz", "1", "a"}, {"aa", "2", "b"}, {"mm", "3", "c"},
	} {
		if _, err := Push(r, testImage(t, ref.n, ref.tag, ref.p)); err != nil {
			t.Fatal(err)
		}
	}
	refs, err := r.ListManifests()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"aa:2", "mm:3", "zz:1"}
	if len(refs) != 3 {
		t.Fatalf("refs = %v", refs)
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("refs[%d] = %q, want %q", i, refs[i], want[i])
		}
	}
}

func TestStatsTotalBytes(t *testing.T) {
	r := New()
	if _, err := Push(r, testImage(t, "a", "b", "p")); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.TotalBytes() != s.BlobBytes+s.ManifestBytes {
		t.Error("TotalBytes mismatch")
	}
	if s.BlobBytes <= 0 || s.ManifestBytes <= 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestConcurrentPushes(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			img := testImage(t, "app", "v", "same payload") // identical images
			_, errs[w] = Push(r, img)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	s := r.Stats()
	if s.Blobs != 2 || s.Manifests != 1 {
		t.Errorf("stats = %+v, want 2 blobs / 1 manifest", s)
	}
}

// --- HTTP layer ---

func newHTTPStore(t *testing.T) (*Registry, Store) {
	t.Helper()
	reg := New()
	srv := httptest.NewServer(NewHandler(reg))
	t.Cleanup(srv.Close)
	return reg, NewClient(srv.URL, srv.Client())
}

func TestHTTPPushPull(t *testing.T) {
	reg, client := newHTTPStore(t)
	img := testImage(t, "nginx", "1.17", "payload")
	if _, err := Push(client, img); err != nil {
		t.Fatal(err)
	}
	if s := reg.Stats(); s.Blobs != 2 || s.Manifests != 1 {
		t.Errorf("server stats = %+v", s)
	}
	got, err := Pull(client, "nginx", "1.17")
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest.Reference() != "nginx:1.17" || len(got.Layers) != 2 {
		t.Errorf("pulled %s with %d layers", got.Manifest.Reference(), len(got.Layers))
	}
}

func TestHTTPMissing(t *testing.T) {
	_, client := newHTTPStore(t)
	if _, err := client.GetManifest("ghost", "v1"); !errors.Is(err, ErrManifestNotFound) {
		t.Errorf("manifest err = %v", err)
	}
	d := hashing.DigestBytes([]byte("nope"))
	if _, err := client.GetBlob(d); !errors.Is(err, ErrBlobNotFound) {
		t.Errorf("blob err = %v", err)
	}
	ok, err := client.HasBlob(d)
	if err != nil || ok {
		t.Errorf("HasBlob = %v, %v", ok, err)
	}
}

func TestHTTPHasBlob(t *testing.T) {
	reg, client := newHTTPStore(t)
	data := []byte("blob data")
	d := hashing.DigestBytes(data)
	if err := reg.PutBlob(d, data); err != nil {
		t.Fatal(err)
	}
	ok, err := client.HasBlob(d)
	if err != nil || !ok {
		t.Errorf("HasBlob = %v, %v; want true", ok, err)
	}
	got, err := client.GetBlob(d)
	if err != nil || string(got) != string(data) {
		t.Errorf("GetBlob = %q, %v", got, err)
	}
}

func TestHTTPListManifests(t *testing.T) {
	_, client := newHTTPStore(t)
	refs, err := client.ListManifests()
	if err != nil || refs != nil {
		t.Errorf("empty list = %v, %v", refs, err)
	}
	if _, err := Push(client, testImage(t, "a", "1", "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := Push(client, testImage(t, "b", "2", "y")); err != nil {
		t.Fatal(err)
	}
	refs, err = client.ListManifests()
	if err != nil || len(refs) != 2 || refs[0] != "a:1" || refs[1] != "b:2" {
		t.Errorf("refs = %v, %v", refs, err)
	}
}

func TestHTTPRejectsBadRequests(t *testing.T) {
	_, client := newHTTPStore(t)
	// Mismatched manifest reference vs URL is rejected server-side; the
	// client always derives the URL from the manifest, so drive the
	// handler directly for the malformed-blob case instead.
	if err := client.PutBlob("sha256:bogus", []byte("x")); err == nil {
		t.Error("malformed digest accepted")
	}
	data := []byte("x")
	if err := client.PutBlob(hashing.DigestBytes([]byte("y")), data); err == nil {
		t.Error("digest mismatch accepted")
	}
}
