// Package vfs implements the in-memory filesystem substrate used throughout
// the Gear reproduction. It models the subset of POSIX semantics that
// container images rely on: directories, regular files, symbolic links,
// hard links (shared, reference-counted content), permission bits, and a
// deterministic tree walk.
//
// All container layers, overlay mounts, Gear indexes, and container root
// filesystems in this repository are vfs trees. Keeping the filesystem in
// memory is the substitution for the paper's on-disk EXT4/Overlay2 stack;
// the structural operations (lookup, link, whiteout, copy-up) are identical.
package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Sentinel errors returned by filesystem operations. They are comparable
// with errors.Is after being wrapped with path context.
var (
	ErrNotExist = errors.New("file does not exist")
	ErrExist    = errors.New("file already exists")
	ErrNotDir   = errors.New("not a directory")
	ErrIsDir    = errors.New("is a directory")
	ErrNotEmpty = errors.New("directory not empty")
	ErrInvalid  = errors.New("invalid argument")
)

// FileType identifies the kind of a filesystem node.
type FileType int

// Node types. TypeRegular covers both ordinary files and Gear fingerprint
// placeholders (the distinction lives in higher layers).
const (
	TypeRegular FileType = iota + 1
	TypeDir
	TypeSymlink
)

// String returns a short human-readable name for the type.
func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "regular"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("FileType(%d)", int(t))
	}
}

// Content is reference-counted regular-file content. Hard links share one
// Content; the link count tracks how many nodes point at it. The Gear local
// cache exploits this to "hard link" pool files into container indexes
// exactly as the paper's three-level storage structure does (§III-D1).
//
// The link count is atomic because one Content can be linked into several
// trees at once (the shared cache pins, each image's index tree links),
// and the cache reads Nlink under its own lock while a store links or
// unlinks under another.
type Content struct {
	data  []byte
	nlink atomic.Int64
}

// Data returns the content bytes. Callers must not mutate the result.
func (c *Content) Data() []byte { return c.data }

// Size returns the content length in bytes.
func (c *Content) Size() int64 { return int64(len(c.data)) }

// Nlink returns the current hard-link count.
func (c *Content) Nlink() int { return int(c.nlink.Load()) }

// NewContent wraps data in a Content with a zero link count. The caller
// owns data and must not mutate it afterwards.
func NewContent(data []byte) *Content { return &Content{data: data} }

// newContent wraps data with an initial link count.
func newContent(data []byte, nlink int64) *Content {
	c := &Content{data: data}
	c.nlink.Store(nlink)
	return c
}

// Node is a single entry in the filesystem tree.
type Node struct {
	name     string
	typ      FileType
	mode     fs.FileMode
	content  *Content // regular files only
	target   string   // symlinks only
	children map[string]*Node
	// Opaque marks a directory that hides lower-layer entries under
	// overlay union semantics (Overlay2's "trusted.overlay.opaque").
	Opaque bool
}

// Name returns the node's base name ("" for the root).
func (n *Node) Name() string { return n.name }

// Type returns the node type.
func (n *Node) Type() FileType { return n.typ }

// Mode returns the permission bits.
func (n *Node) Mode() fs.FileMode { return n.mode }

// SetMode replaces the permission bits.
func (n *Node) SetMode(m fs.FileMode) { n.mode = m }

// Target returns the symlink target; empty for non-symlinks.
func (n *Node) Target() string { return n.target }

// Content returns the shared content of a regular file, nil otherwise.
func (n *Node) Content() *Content { return n.content }

// Size returns the byte size of a regular file, the length of a symlink
// target, and zero for directories.
func (n *Node) Size() int64 {
	switch n.typ {
	case TypeRegular:
		return n.content.Size()
	case TypeSymlink:
		return int64(len(n.target))
	default:
		return 0
	}
}

// IsDir reports whether the node is a directory.
func (n *Node) IsDir() bool { return n.typ == TypeDir }

// ChildNames returns the sorted names of a directory's entries.
func (n *Node) ChildNames() []string {
	if n.typ != TypeDir {
		return nil
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Child returns the named child of a directory, or nil.
func (n *Node) Child(name string) *Node {
	if n.typ != TypeDir {
		return nil
	}
	return n.children[name]
}

// NumChildren returns the number of entries in a directory.
func (n *Node) NumChildren() int { return len(n.children) }

// FS is an in-memory filesystem rooted at "/". The zero value is not
// usable; construct with New.
//
// FS methods are safe for concurrent use: lookups take a shared lock and
// mutations an exclusive one, so one tree can be read by many container
// viewers while the Gear driver links fetched files into it (§III-D2's
// shared index directory). Nodes returned by Stat/Walk are immutable
// snapshots — mutations replace nodes rather than editing them — except
// for directory nodes, whose child sets may change; use ReadDirNames for
// a consistent listing of a live tree.
type FS struct {
	mu   sync.RWMutex
	root *Node
}

// New returns an empty filesystem containing only the root directory.
func New() *FS {
	return &FS{root: &Node{
		typ:      TypeDir,
		mode:     0o755,
		children: make(map[string]*Node),
	}}
}

// Root returns the root directory node. The caller must ensure the tree
// is quiescent (no concurrent mutators) while navigating from it.
func (f *FS) Root() *Node { return f.root }

// pathError wraps err with the operation and path for context.
func pathError(op, p string, err error) error {
	return fmt.Errorf("%s %s: %w", op, p, err)
}

// Clean normalizes p to a slash-rooted clean path ("/a/b"). An empty path
// or "." becomes "/".
func Clean(p string) string {
	p = path.Clean("/" + p)
	return p
}

// Split breaks a cleaned path into its segments; "/" yields nil.
func Split(p string) []string {
	p = Clean(p)
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// lookup walks to the node at p without following a trailing symlink.
func (f *FS) lookup(p string) (*Node, error) {
	parts := Split(p)
	cur := f.root
	for i, part := range parts {
		if cur.typ != TypeDir {
			return nil, ErrNotDir
		}
		next := cur.children[part]
		if next == nil {
			return nil, ErrNotExist
		}
		if i < len(parts)-1 && next.typ == TypeSymlink {
			// Intermediate symlinks are not followed: images are
			// self-contained trees and layer application operates on
			// literal paths, matching tar extraction semantics.
			return nil, ErrNotDir
		}
		cur = next
	}
	return cur, nil
}

// lookupParent returns the directory containing p and p's base name.
func (f *FS) lookupParent(p string) (*Node, string, error) {
	p = Clean(p)
	if p == "/" {
		return nil, "", ErrInvalid
	}
	dir, base := path.Split(p)
	parent, err := f.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if parent.typ != TypeDir {
		return nil, "", ErrNotDir
	}
	return parent, base, nil
}

// Stat returns the node at p.
func (f *FS) Stat(p string) (*Node, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return nil, pathError("stat", Clean(p), err)
	}
	return n, nil
}

// Exists reports whether a node exists at p.
func (f *FS) Exists(p string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, err := f.lookup(p)
	return err == nil
}

// ReadDirNames returns the sorted entry names of the directory at p. It
// is the race-safe way to list a directory of a live tree (a directory
// Node's own ChildNames is only stable on quiescent trees).
func (f *FS) ReadDirNames(p string) ([]string, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return nil, pathError("readdir", Clean(p), err)
	}
	if n.typ != TypeDir {
		return nil, pathError("readdir", Clean(p), ErrNotDir)
	}
	return n.ChildNames(), nil
}

// Mkdir creates a single directory at p.
func (f *FS) Mkdir(p string, mode fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, base, err := f.lookupParent(p)
	if err != nil {
		return pathError("mkdir", Clean(p), err)
	}
	if _, ok := parent.children[base]; ok {
		return pathError("mkdir", Clean(p), ErrExist)
	}
	parent.children[base] = &Node{
		name:     base,
		typ:      TypeDir,
		mode:     mode.Perm(),
		children: make(map[string]*Node),
	}
	return nil
}

// MkdirAll creates the directory at p along with any missing parents.
// Existing directories along the way are left untouched.
func (f *FS) MkdirAll(p string, mode fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	parts := Split(p)
	cur := f.root
	for _, part := range parts {
		next := cur.children[part]
		if next == nil {
			next = &Node{
				name:     part,
				typ:      TypeDir,
				mode:     mode.Perm(),
				children: make(map[string]*Node),
			}
			cur.children[part] = next
		} else if next.typ != TypeDir {
			return pathError("mkdir", Clean(p), ErrNotDir)
		}
		cur = next
	}
	return nil
}

// WriteFile creates or replaces the regular file at p with data. The parent
// directory must exist. Replacing breaks any hard links (a fresh Content is
// installed), matching write-through-rename semantics used by tar unpack.
func (f *FS) WriteFile(p string, data []byte, mode fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, base, err := f.lookupParent(p)
	if err != nil {
		return pathError("write", Clean(p), err)
	}
	if old, ok := parent.children[base]; ok {
		if old.typ == TypeDir {
			return pathError("write", Clean(p), ErrIsDir)
		}
		f.unlinkNode(old)
	}
	content := newContent(data, 1)
	parent.children[base] = &Node{
		name:    base,
		typ:     TypeRegular,
		mode:    mode.Perm(),
		content: content,
	}
	return nil
}

// PutContent installs shared content at p, creating a hard link to it.
// It is the primitive behind the Gear cache's link-into-index operation.
func (f *FS) PutContent(p string, c *Content, mode fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.putContent(p, c, mode)
}

// putContent is PutContent with f.mu already held.
func (f *FS) putContent(p string, c *Content, mode fs.FileMode) error {
	parent, base, err := f.lookupParent(p)
	if err != nil {
		return pathError("link", Clean(p), err)
	}
	if old, ok := parent.children[base]; ok {
		if old.typ == TypeDir {
			return pathError("link", Clean(p), ErrIsDir)
		}
		f.unlinkNode(old)
	}
	c.nlink.Add(1)
	parent.children[base] = &Node{
		name:    base,
		typ:     TypeRegular,
		mode:    mode.Perm(),
		content: c,
	}
	return nil
}

// ReadFile returns the content bytes of the regular file at p. The result
// must not be mutated.
func (f *FS) ReadFile(p string) ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return nil, pathError("read", Clean(p), err)
	}
	if n.typ == TypeDir {
		return nil, pathError("read", Clean(p), ErrIsDir)
	}
	if n.typ != TypeRegular {
		return nil, pathError("read", Clean(p), ErrInvalid)
	}
	return n.content.data, nil
}

// Symlink creates a symbolic link at p pointing at target.
func (f *FS) Symlink(target, p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, base, err := f.lookupParent(p)
	if err != nil {
		return pathError("symlink", Clean(p), err)
	}
	if old, ok := parent.children[base]; ok {
		if old.typ == TypeDir {
			return pathError("symlink", Clean(p), ErrIsDir)
		}
		f.unlinkNode(old)
	}
	parent.children[base] = &Node{
		name:   base,
		typ:    TypeSymlink,
		mode:   0o777,
		target: target,
	}
	return nil
}

// Link creates a hard link at newp to the regular file at oldp.
func (f *FS) Link(oldp, newp string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.lookup(oldp)
	if err != nil {
		return pathError("link", Clean(oldp), err)
	}
	if n.typ != TypeRegular {
		return pathError("link", Clean(oldp), ErrInvalid)
	}
	return f.putContent(newp, n.content, n.mode)
}

// unlinkNode drops one reference from a non-directory node's content.
func (f *FS) unlinkNode(n *Node) {
	if n.typ == TypeRegular && n.content != nil {
		n.content.nlink.Add(-1)
	}
}

// Remove deletes the file, symlink, or empty directory at p.
func (f *FS) Remove(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, base, err := f.lookupParent(p)
	if err != nil {
		return pathError("remove", Clean(p), err)
	}
	n, ok := parent.children[base]
	if !ok {
		return pathError("remove", Clean(p), ErrNotExist)
	}
	if n.typ == TypeDir && len(n.children) > 0 {
		return pathError("remove", Clean(p), ErrNotEmpty)
	}
	f.unlinkNode(n)
	delete(parent.children, base)
	return nil
}

// RemoveAll deletes p and everything below it. Removing "/" empties the
// filesystem. A missing path is not an error, matching os.RemoveAll.
func (f *FS) RemoveAll(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = Clean(p)
	if p == "/" {
		for _, c := range f.root.children {
			releaseTree(c)
		}
		f.root.children = make(map[string]*Node)
		return nil
	}
	parent, base, err := f.lookupParent(p)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil
		}
		return pathError("removeall", p, err)
	}
	n, ok := parent.children[base]
	if !ok {
		return nil
	}
	releaseTree(n)
	delete(parent.children, base)
	return nil
}

// releaseTree walks a subtree dropping content references.
func releaseTree(n *Node) {
	if n.typ == TypeRegular && n.content != nil {
		n.content.nlink.Add(-1)
		return
	}
	for _, c := range n.children {
		releaseTree(c)
	}
}

// WalkFunc visits one node during a Walk. p is the full cleaned path.
// Returning an error aborts the walk and is returned from Walk.
type WalkFunc func(p string, n *Node) error

// Walk visits every node in deterministic (pre-order, lexicographic)
// order, starting at the root. The root itself is not visited. The walk
// holds the tree's read lock, so fn must not mutate the same FS.
func (f *FS) Walk(fn WalkFunc) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return walkNode("", f.root, fn)
}

func walkNode(prefix string, dir *Node, fn WalkFunc) error {
	for _, name := range dir.ChildNames() {
		child := dir.children[name]
		p := prefix + "/" + name
		if err := fn(p, child); err != nil {
			return err
		}
		if child.typ == TypeDir {
			if err := walkNode(p, child, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the filesystem. Regular-file content is
// shared structurally (copy-on-write at the node level): clones get fresh
// Content wrappers over the same byte slices, so mutating one tree never
// disturbs the other's link counts.
func (f *FS) Clone() *FS {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return &FS{root: cloneNode(f.root)}
}

func cloneNode(n *Node) *Node {
	c := &Node{
		name:   n.name,
		typ:    n.typ,
		mode:   n.mode,
		target: n.target,
		Opaque: n.Opaque,
	}
	if n.typ == TypeRegular {
		c.content = newContent(n.content.data, 1)
	}
	if n.typ == TypeDir {
		c.children = make(map[string]*Node, len(n.children))
		for name, child := range n.children {
			c.children[name] = cloneNode(child)
		}
	}
	return c
}

// Stats summarizes a filesystem tree.
type Stats struct {
	Files    int   // regular files
	Dirs     int   // directories (excluding the root)
	Symlinks int   // symbolic links
	Bytes    int64 // total regular-file bytes (hard links counted once per node)
}

// Stats walks the tree and returns aggregate counts.
func (f *FS) Stats() Stats {
	var s Stats
	_ = f.Walk(func(_ string, n *Node) error {
		switch n.typ {
		case TypeRegular:
			s.Files++
			s.Bytes += n.Size()
		case TypeDir:
			s.Dirs++
		case TypeSymlink:
			s.Symlinks++
		}
		return nil
	})
	return s
}
