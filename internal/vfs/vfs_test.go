package vfs

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCleanAndSplit(t *testing.T) {
	tests := []struct {
		in    string
		clean string
		parts []string
	}{
		{"", "/", nil},
		{".", "/", nil},
		{"/", "/", nil},
		{"a", "/a", []string{"a"}},
		{"/a/b/", "/a/b", []string{"a", "b"}},
		{"a/./b/../c", "/a/c", []string{"a", "c"}},
		{"//a//b", "/a/b", []string{"a", "b"}},
		{"/../a", "/a", []string{"a"}},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			if got := Clean(tt.in); got != tt.clean {
				t.Errorf("Clean(%q) = %q, want %q", tt.in, got, tt.clean)
			}
			got := Split(tt.in)
			if len(got) != len(tt.parts) {
				t.Fatalf("Split(%q) = %v, want %v", tt.in, got, tt.parts)
			}
			for i := range got {
				if got[i] != tt.parts[i] {
					t.Errorf("Split(%q)[%d] = %q, want %q", tt.in, i, got[i], tt.parts[i])
				}
			}
		})
	}
}

func TestWriteAndReadFile(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/etc/nginx", 0o755); err != nil {
		t.Fatal(err)
	}
	want := []byte("server {}")
	if err := f.WriteFile("/etc/nginx/nginx.conf", want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadFile("/etc/nginx/nginx.conf")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("ReadFile = %q, want %q", got, want)
	}
	n, err := f.Stat("/etc/nginx/nginx.conf")
	if err != nil {
		t.Fatal(err)
	}
	if n.Type() != TypeRegular || n.Size() != int64(len(want)) || n.Mode() != 0o644 {
		t.Errorf("node = %v/%d/%o, want regular/%d/644", n.Type(), n.Size(), n.Mode(), len(want))
	}
}

func TestWriteFileMissingParent(t *testing.T) {
	f := New()
	err := f.WriteFile("/no/such/dir/file", nil, 0o644)
	if !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
}

func TestWriteFileOverDirectory(t *testing.T) {
	f := New()
	if err := f.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/d", nil, 0o644); !errors.Is(err, ErrIsDir) {
		t.Errorf("err = %v, want ErrIsDir", err)
	}
}

func TestMkdirErrors(t *testing.T) {
	f := New()
	if err := f.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.Mkdir("/a", 0o755); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate mkdir err = %v, want ErrExist", err)
	}
	if err := f.Mkdir("/", 0o755); !errors.Is(err, ErrInvalid) {
		t.Errorf("mkdir / err = %v, want ErrInvalid", err)
	}
	if err := f.WriteFile("/a/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.Mkdir("/a/f/sub", 0o755); !errors.Is(err, ErrNotDir) {
		t.Errorf("mkdir under file err = %v, want ErrNotDir", err)
	}
	if err := f.MkdirAll("/a/f/sub", 0o755); !errors.Is(err, ErrNotDir) {
		t.Errorf("mkdirall through file err = %v, want ErrNotDir", err)
	}
}

func TestMkdirAllIdempotent(t *testing.T) {
	f := New()
	for i := 0; i < 3; i++ {
		if err := f.MkdirAll("/a/b/c", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	n, err := f.Stat("/a/b/c")
	if err != nil || !n.IsDir() {
		t.Fatalf("Stat(/a/b/c) = %v, %v; want dir", n, err)
	}
}

func TestSymlink(t *testing.T) {
	f := New()
	if err := f.Symlink("/usr/bin/python3", "/usr/bin/python"); err == nil {
		t.Fatal("symlink with missing parent should fail")
	}
	if err := f.MkdirAll("/usr/bin", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.Symlink("/usr/bin/python3", "/usr/bin/python"); err != nil {
		t.Fatal(err)
	}
	n, err := f.Stat("/usr/bin/python")
	if err != nil {
		t.Fatal(err)
	}
	if n.Type() != TypeSymlink || n.Target() != "/usr/bin/python3" {
		t.Errorf("symlink = %v -> %q", n.Type(), n.Target())
	}
	if n.Size() != int64(len("/usr/bin/python3")) {
		t.Errorf("symlink size = %d", n.Size())
	}
	// Reading a symlink as a file is invalid.
	if _, err := f.ReadFile("/usr/bin/python"); !errors.Is(err, ErrInvalid) {
		t.Errorf("read symlink err = %v, want ErrInvalid", err)
	}
}

func TestHardLinkSharesContent(t *testing.T) {
	f := New()
	if err := f.WriteFile("/a", []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.Link("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	na, _ := f.Stat("/a")
	nb, _ := f.Stat("/b")
	if na.Content() != nb.Content() {
		t.Fatal("hard link does not share content")
	}
	if got := na.Content().Nlink(); got != 2 {
		t.Errorf("nlink = %d, want 2", got)
	}
	if err := f.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if got := nb.Content().Nlink(); got != 1 {
		t.Errorf("nlink after remove = %d, want 1", got)
	}
	got, err := f.ReadFile("/b")
	if err != nil || string(got) != "data" {
		t.Errorf("ReadFile(/b) = %q, %v", got, err)
	}
}

func TestLinkErrors(t *testing.T) {
	f := New()
	if err := f.Link("/missing", "/b"); !errors.Is(err, ErrNotExist) {
		t.Errorf("link missing err = %v", err)
	}
	if err := f.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.Link("/d", "/b"); !errors.Is(err, ErrInvalid) {
		t.Errorf("link dir err = %v, want ErrInvalid", err)
	}
}

func TestPutContentReplacesAndCounts(t *testing.T) {
	f := New()
	c := NewContent([]byte("pool file"))
	if err := f.PutContent("/x", c, 0o644); err != nil {
		t.Fatal(err)
	}
	if c.Nlink() != 1 {
		t.Fatalf("nlink = %d, want 1", c.Nlink())
	}
	// Replacing with another link bumps the new and drops the old.
	c2 := NewContent([]byte("other"))
	if err := f.PutContent("/x", c2, 0o644); err != nil {
		t.Fatal(err)
	}
	if c.Nlink() != 0 || c2.Nlink() != 1 {
		t.Errorf("nlinks = %d,%d; want 0,1", c.Nlink(), c2.Nlink())
	}
}

func TestRemove(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/a/b/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("/a/b"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("remove non-empty dir err = %v, want ErrNotEmpty", err)
	}
	if err := f.Remove("/a/b/f"); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("/a/b"); err != nil {
		t.Fatal(err)
	}
	if f.Exists("/a/b") {
		t.Error("directory still exists after Remove")
	}
	if err := f.Remove("/a/b"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double remove err = %v, want ErrNotExist", err)
	}
}

func TestRemoveAll(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/a/b/c", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/a/b/c/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveAll("/a"); err != nil {
		t.Fatal(err)
	}
	if f.Exists("/a") {
		t.Error("subtree still exists")
	}
	if err := f.RemoveAll("/a"); err != nil {
		t.Errorf("RemoveAll on missing path = %v, want nil", err)
	}
	if err := f.RemoveAll("/no/parent/here"); err != nil {
		t.Errorf("RemoveAll with missing parent = %v, want nil", err)
	}
}

func TestRemoveAllRoot(t *testing.T) {
	f := New()
	if err := f.WriteFile("/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveAll("/"); err != nil {
		t.Fatal(err)
	}
	if f.Root().NumChildren() != 0 {
		t.Error("root not emptied")
	}
}

func TestRemoveAllDropsLinkCounts(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	c := NewContent([]byte("shared"))
	if err := f.PutContent("/d/a", c, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.PutContent("/keep", c, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveAll("/d"); err != nil {
		t.Fatal(err)
	}
	if c.Nlink() != 1 {
		t.Errorf("nlink = %d, want 1", c.Nlink())
	}
}

func TestWalkDeterministicOrder(t *testing.T) {
	f := New()
	paths := []string{"/b/x", "/a/z", "/a/y", "/c"}
	for _, p := range paths {
		dir := p[:strings.LastIndex(p, "/")]
		if dir != "" {
			if err := f.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.WriteFile(p, []byte(p), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := f.Walk(func(p string, _ *Node) error {
		got = append(got, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"/a", "/a/y", "/a/z", "/b", "/b/x", "/c"}
	if len(got) != len(want) {
		t.Fatalf("walk visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("walk[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestWalkAbort(t *testing.T) {
	f := New()
	for _, p := range []string{"/a", "/b", "/c"} {
		if err := f.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	count := 0
	err := f.Walk(func(string, *Node) error {
		count++
		if count == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || count != 2 {
		t.Errorf("walk abort: err=%v count=%d", err, count)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/d/f", []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.Symlink("t", "/d/l"); err != nil {
		t.Fatal(err)
	}
	g := f.Clone()
	if err := g.WriteFile("/d/f", []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveAll("/d/l"); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadFile("/d/f")
	if err != nil || string(got) != "one" {
		t.Errorf("original mutated: %q, %v", got, err)
	}
	if !f.Exists("/d/l") {
		t.Error("original symlink removed by clone mutation")
	}
	// Content bytes are shared but wrappers are fresh.
	nf, _ := f.Stat("/d/f")
	if nf.Content().Nlink() != 1 {
		t.Errorf("original nlink = %d, want 1", nf.Content().Nlink())
	}
}

func TestStats(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/a/f1", make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/a/b/f2", make([]byte, 50), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.Symlink("f1", "/a/l"); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Files != 2 || s.Dirs != 2 || s.Symlinks != 1 || s.Bytes != 150 {
		t.Errorf("stats = %+v", s)
	}
}

func TestIntermediateSymlinkNotFollowed(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/real", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.Symlink("/real", "/alias"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat("/alias/x"); !errors.Is(err, ErrNotDir) {
		t.Errorf("stat through symlink err = %v, want ErrNotDir", err)
	}
}

func TestFileTypeString(t *testing.T) {
	tests := []struct {
		t    FileType
		want string
	}{
		{TypeRegular, "regular"},
		{TypeDir, "dir"},
		{TypeSymlink, "symlink"},
		{FileType(9), "FileType(9)"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.t, got, tt.want)
		}
	}
}

// randomTree builds a pseudorandom tree from a seed and returns the created
// file paths.
func randomTree(f *FS, seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	dirs := []string{"/"}
	var files []string
	for i := 0; i < n; i++ {
		parent := dirs[rng.Intn(len(dirs))]
		name := fmt.Sprintf("n%03d", i)
		p := Clean(parent + "/" + name)
		switch rng.Intn(3) {
		case 0:
			if f.Mkdir(p, 0o755) == nil {
				dirs = append(dirs, p)
			}
		case 1:
			data := make([]byte, rng.Intn(64))
			rng.Read(data)
			if f.WriteFile(p, data, 0o644) == nil {
				files = append(files, p)
			}
		default:
			_ = f.Symlink("/target", p)
		}
	}
	return files
}

// Property: Walk visits every path exactly once, in strictly increasing
// order within each directory, and Stats agrees with a manual count.
func TestWalkVisitsAllOnceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		f := New()
		randomTree(f, seed, 200)
		seen := make(map[string]int)
		var files, dirs, links int
		err := f.Walk(func(p string, n *Node) error {
			seen[p]++
			switch n.Type() {
			case TypeRegular:
				files++
			case TypeDir:
				dirs++
			case TypeSymlink:
				links++
			}
			return nil
		})
		if err != nil {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		s := f.Stats()
		return s.Files == files && s.Dirs == dirs && s.Symlinks == links
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: cloning and then arbitrarily mutating the clone never changes
// the original tree's walk snapshot.
func TestClonePreservesOriginalProperty(t *testing.T) {
	snapshot := func(f *FS) string {
		var b strings.Builder
		_ = f.Walk(func(p string, n *Node) error {
			fmt.Fprintf(&b, "%s|%v|%d|%s\n", p, n.Type(), n.Size(), n.Target())
			return nil
		})
		return b.String()
	}
	prop := func(seed int64) bool {
		f := New()
		files := randomTree(f, seed, 100)
		before := snapshot(f)
		g := f.Clone()
		rng := rand.New(rand.NewSource(seed ^ 0x5ee5))
		for _, p := range files {
			switch rng.Intn(3) {
			case 0:
				_ = g.WriteFile(p, []byte("mutated"), 0o600)
			case 1:
				_ = g.Remove(p)
			default:
				_ = g.RemoveAll(p)
			}
		}
		return snapshot(f) == before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: for any sequence of PutContent/Remove operations over a pool of
// shared contents, each content's nlink equals the number of live nodes
// pointing at it.
func TestNlinkInvariantProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := New()
		pool := make([]*Content, 8)
		for i := range pool {
			pool[i] = NewContent([]byte{byte(i)})
		}
		where := make(map[string]*Content)
		for op := 0; op < 300; op++ {
			p := fmt.Sprintf("/f%d", rng.Intn(20))
			if rng.Intn(2) == 0 {
				c := pool[rng.Intn(len(pool))]
				if f.PutContent(p, c, 0o644) == nil {
					where[p] = c
				}
			} else if f.Remove(p) == nil {
				delete(where, p)
			}
		}
		counts := make(map[*Content]int)
		for _, c := range where {
			counts[c]++
		}
		for _, c := range pool {
			if c.Nlink() != counts[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWalk(b *testing.B) {
	f := New()
	for d := 0; d < 20; d++ {
		dir := fmt.Sprintf("/d%02d", d)
		if err := f.MkdirAll(dir, 0o755); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := f.WriteFile(fmt.Sprintf("%s/f%02d", dir, i), []byte("x"), 0o644); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		_ = f.Walk(func(string, *Node) error { n++; return nil })
		if n != 1020 {
			b.Fatalf("visited %d", n)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	f := New()
	if err := f.MkdirAll("/a/b/c/d/e", 0o755); err != nil {
		b.Fatal(err)
	}
	if err := f.WriteFile("/a/b/c/d/e/target", []byte("x"), 0o644); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Stat("/a/b/c/d/e/target"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRemoveAllRootReleasesLinks(t *testing.T) {
	f := New()
	c := NewContent([]byte("shared"))
	if err := f.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.PutContent("/d/a", c, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveAll("/"); err != nil {
		t.Fatal(err)
	}
	if c.Nlink() != 0 {
		t.Errorf("nlink after root RemoveAll = %d, want 0", c.Nlink())
	}
}
