package netsim

import (
	"errors"
	"testing"
	"time"
)

// With RangeOverhead zero, a range request prices bit-identically to a
// whole-object request — the degeneration the chunked path relies on.
func TestTransferRangeDegeneratesToTransfer(t *testing.T) {
	cfg := DefaultLAN()
	a, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int64{0, 1, 4096, 1 << 20} {
		whole := a.Transfer(size)
		ranged := b.TransferRange(size)
		if whole != ranged {
			t.Fatalf("size %d: whole %v != range %v with zero RangeOverhead", size, whole, ranged)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestTransferRangePaysRangeOverhead(t *testing.T) {
	cfg := DefaultLAN()
	cfg.RangeOverhead = 5 * time.Millisecond
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewLink(cfg.WithBandwidth(904))
	if err != nil {
		t.Fatal(err)
	}
	whole := base.Transfer(4096)
	ranged := l.TransferRange(4096)
	if got, want := ranged-whole, 5*time.Millisecond; got != want {
		t.Fatalf("range premium = %v, want %v", got, want)
	}
	// The premium is server-side: a straggler factor scales it too.
	if err := l.SetServiceFactor(2); err != nil {
		t.Fatal(err)
	}
	if err := base.SetServiceFactor(2); err != nil {
		t.Fatal(err)
	}
	whole2 := base.Transfer(4096)
	ranged2 := l.TransferRange(4096)
	if got, want := ranged2-whole2, 10*time.Millisecond; got != want {
		t.Fatalf("scaled range premium = %v, want %v", got, want)
	}
}

// A quote followed by RecordTransfer must price exactly like the
// one-shot recording call, jitter stream included.
func TestTransferRangeQuoteMatchesRecorded(t *testing.T) {
	cfg := DefaultLAN()
	cfg.RangeOverhead = time.Millisecond
	q, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []*Link{q, r} {
		if err := l.SetServiceJitter(42, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		size := int64(1000 * (i + 1))
		cost, err := q.TransferRangeQuote(1, size)
		if err != nil {
			t.Fatal(err)
		}
		if err := q.RecordTransfer(1, size, cost); err != nil {
			t.Fatal(err)
		}
		direct, err := r.TransferRangeE(size)
		if err != nil {
			t.Fatal(err)
		}
		if cost != direct {
			t.Fatalf("request %d: quoted %v != recorded %v", i, cost, direct)
		}
	}
	if q.Stats() != r.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", q.Stats(), r.Stats())
	}
}

func TestTransferRangeErrors(t *testing.T) {
	l, err := NewLink(DefaultLAN())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.TransferRangeE(-1); !errors.Is(err, ErrBadStream) {
		t.Fatalf("negative size: %v", err)
	}
	if _, err := l.TransferRangeQuote(1, -1); !errors.Is(err, ErrBadStream) {
		t.Fatalf("negative quote: %v", err)
	}
	if bad := (LinkConfig{BytesPerSecond: 1, RangeOverhead: -1}); !errors.Is(bad.Validate(), ErrBadLink) {
		t.Fatal("negative RangeOverhead accepted")
	}
	l.Close()
	if _, err := l.TransferRangeE(1); !errors.Is(err, ErrLinkClosed) {
		t.Fatalf("closed link: %v", err)
	}
	if _, err := l.TransferRangeQuote(1, 1); !errors.Is(err, ErrLinkClosed) {
		t.Fatalf("closed quote: %v", err)
	}
}
