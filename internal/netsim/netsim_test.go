package netsim

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMbps(t *testing.T) {
	if got := Mbps(8); got != 1e6 {
		t.Errorf("Mbps(8) = %f, want 1e6 bytes/s", got)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  LinkConfig
		ok   bool
	}{
		{"lan", DefaultLAN(), true},
		{"zero bandwidth", LinkConfig{}, false},
		{"negative rtt", LinkConfig{BytesPerSecond: 1, RTT: -1}, false},
		{"negative overhead", LinkConfig{BytesPerSecond: 1, RequestOverhead: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v", err)
			}
			if err != nil && !errors.Is(err, ErrBadLink) {
				t.Errorf("err = %v, want ErrBadLink", err)
			}
			_, err = NewLink(tt.cfg)
			if (err == nil) != tt.ok {
				t.Errorf("NewLink = %v", err)
			}
		})
	}
}

func TestTransferCost(t *testing.T) {
	cfg := LinkConfig{
		BytesPerSecond:  1e6, // 1 MB/s
		RTT:             10 * time.Millisecond,
		RequestOverhead: 5 * time.Millisecond,
	}
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB at 1 MB/s = 1 s wire + 15 ms fixed.
	got := l.TransferCost(1e6)
	want := time.Second + 15*time.Millisecond
	if got != want {
		t.Errorf("TransferCost = %v, want %v", got, want)
	}
	if got := l.TransferCost(0); got != 15*time.Millisecond {
		t.Errorf("zero-byte cost = %v, want 15ms", got)
	}
}

func TestBandwidthOrdering(t *testing.T) {
	// Lower bandwidth must strictly increase cost — the shape behind Fig 9.
	base := DefaultLAN()
	var prev time.Duration
	for i, mbps := range []float64{904, 100, 20, 5} {
		l, err := NewLink(base.WithBandwidth(mbps))
		if err != nil {
			t.Fatal(err)
		}
		cost := l.TransferCost(10 << 20)
		if i > 0 && cost <= prev {
			t.Errorf("cost at %.0f Mbps (%v) not greater than faster link (%v)", mbps, cost, prev)
		}
		prev = cost
	}
}

func TestTransferAccumulates(t *testing.T) {
	l, err := NewLink(DefaultLAN())
	if err != nil {
		t.Fatal(err)
	}
	c1 := l.Transfer(1000)
	c2 := l.Transfer(2000)
	s := l.Stats()
	if s.Bytes != 3000 || s.Requests != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.Elapsed != c1+c2 {
		t.Errorf("elapsed = %v, want %v", s.Elapsed, c1+c2)
	}
	l.Reset()
	if s := l.Stats(); s.Bytes != 0 || s.Requests != 0 || s.Elapsed != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestTransferBatchAmortizesRTT(t *testing.T) {
	cfg := LinkConfig{
		BytesPerSecond:  1e9,
		RTT:             50 * time.Millisecond,
		RequestOverhead: time.Millisecond,
	}
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := l.TransferBatch(100, 1e6)
	l.Reset()
	var serial time.Duration
	for i := 0; i < 100; i++ {
		serial += l.Transfer(1e4)
	}
	if batch >= serial {
		t.Errorf("batched %v not cheaper than serial %v", batch, serial)
	}
	if got := l.TransferBatch(0, 0); got != 0 {
		t.Errorf("empty batch cost = %v", got)
	}
}

func TestPerRequestOverheadPenalizesSmallObjects(t *testing.T) {
	// Same bytes, many more requests => more time. This is the mechanism
	// that makes Slacker's block fetches slower than Gear's file fetches
	// in Fig 10 at low bandwidth.
	l, err := NewLink(DefaultLAN().WithBandwidth(5))
	if err != nil {
		t.Fatal(err)
	}
	const total = 1 << 20
	asBlocks := l.TransferBatch(total/4096, total) // 4 KB blocks
	l.Reset()
	asFiles := l.TransferBatch(32, total) // 32 files
	if asBlocks <= asFiles {
		t.Errorf("block-granularity %v not slower than file-granularity %v", asBlocks, asFiles)
	}
}

func TestLinkConcurrentSafety(t *testing.T) {
	l, err := NewLink(DefaultLAN())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Transfer(10)
			}
		}()
	}
	wg.Wait()
	s := l.Stats()
	if s.Bytes != 8000 || s.Requests != 800 {
		t.Errorf("stats = %+v, want 8000 bytes / 800 requests", s)
	}
}

// Property: transfer cost is monotone in size and additive bookkeeping
// never loses bytes.
func TestCostMonotoneProperty(t *testing.T) {
	l, err := NewLink(DefaultLAN())
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint32) bool {
		x, y := int64(a%1e7), int64(b%1e7)
		if x > y {
			x, y = y, x
		}
		return l.TransferCost(x) <= l.TransferCost(y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
