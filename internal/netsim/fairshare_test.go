package netsim

import (
	"testing"
	"time"
)

func approxEqual(t *testing.T, got, want time.Duration, tol time.Duration, msg string) {
	t.Helper()
	d := got - want
	if d < 0 {
		d = -d
	}
	if d > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", msg, got, want, tol)
	}
}

// Two identical streams must each see half the bandwidth: both finish at
// 2S/bw, twice as late as one stream alone would, and the makespan
// matches the analytic processor-sharing model exactly.
func TestFairShareHalvesBandwidth(t *testing.T) {
	cfg := LinkConfig{BytesPerSecond: 1e6} // 1 MB/s, no latency
	const size = 500_000                   // 0.5 s alone

	solo, _ := FairShare(cfg, []Stream{{Bytes: size}})
	approxEqual(t, solo[0], 500*time.Millisecond, time.Microsecond, "solo stream")

	finish, makespan := FairShare(cfg, []Stream{{Bytes: size}, {Bytes: size}})
	want := time.Second // 2·S/bw: each stream at bw/2
	approxEqual(t, finish[0], want, time.Microsecond, "stream 0 at half bandwidth")
	approxEqual(t, finish[1], want, time.Microsecond, "stream 1 at half bandwidth")
	approxEqual(t, makespan, want, time.Microsecond, "makespan")
}

// Unequal streams: the short one finishes first at shared rate, then the
// long one speeds up to full bandwidth. Total wire time is conserved:
// makespan = (S1+S2)/bw when the link never idles.
func TestFairShareWorkConserving(t *testing.T) {
	cfg := LinkConfig{BytesPerSecond: 1e6}
	s1, s2 := int64(200_000), int64(800_000)

	finish, makespan := FairShare(cfg, []Stream{{Bytes: s1}, {Bytes: s2}})
	// Short stream: shares until done — 200k at 500k/s = 0.4 s.
	approxEqual(t, finish[0], 400*time.Millisecond, time.Microsecond, "short stream")
	// Long stream: 200k gone by 0.4 s, remaining 600k at full rate = 1.0 s total.
	approxEqual(t, finish[1], time.Second, time.Microsecond, "long stream")
	approxEqual(t, makespan, time.Second, time.Microsecond, "work conservation")
}

// Latency phases overlap across streams; only the wire serializes.
func TestFairShareLatencyOverlap(t *testing.T) {
	cfg := LinkConfig{BytesPerSecond: 1e6}
	lat := 100 * time.Millisecond
	const size = 500_000

	_, serial := FairShare(cfg, []Stream{{Latency: lat, Bytes: 2 * size}})
	_, parallel := FairShare(cfg, []Stream{
		{Latency: lat, Bytes: size},
		{Latency: lat, Bytes: size},
	})
	// Serial: lat + 1.0 s. Parallel: both latencies overlap, then the wire
	// carries the same volume — lat + 1.0 s too, but if the volume had been
	// split over separately-paid latencies it would be 2·lat + 1.0 s.
	approxEqual(t, serial, lat+time.Second, time.Microsecond, "serial window")
	approxEqual(t, parallel, lat+time.Second, time.Microsecond, "parallel window")
}

// Staggered starts: a stream that becomes ready later leaves the wire
// idle, then transfers at full rate.
func TestFairShareStaggeredStart(t *testing.T) {
	cfg := LinkConfig{BytesPerSecond: 1e6}
	finish, makespan := FairShare(cfg, []Stream{
		{Start: 300 * time.Millisecond, Bytes: 100_000},
	})
	approxEqual(t, finish[0], 400*time.Millisecond, time.Microsecond, "delayed stream")
	approxEqual(t, makespan, 400*time.Millisecond, time.Microsecond, "makespan includes idle lead-in")
}

// A latency-only stream (zero bytes) finishes at Start+Latency.
func TestFairShareLatencyOnlyStream(t *testing.T) {
	cfg := LinkConfig{BytesPerSecond: 1e6}
	finish, makespan := FairShare(cfg, nil)
	if len(finish) != 0 || makespan != 0 {
		t.Fatalf("empty window: finish=%v makespan=%v", finish, makespan)
	}
	finish, makespan = FairShare(cfg, []Stream{{Latency: 50 * time.Millisecond}})
	approxEqual(t, finish[0], 50*time.Millisecond, time.Microsecond, "latency-only stream")
	approxEqual(t, makespan, 50*time.Millisecond, time.Microsecond, "latency-only makespan")
}

// TransferWindow with one batched stream must cost the same as
// TransferBatch for the same requests and bytes, and record identical
// traffic stats.
func TestTransferWindowMatchesTransferBatch(t *testing.T) {
	cfg := DefaultLAN()
	a, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const n, size = 37, int64(1_234_567)
	batchCost := a.TransferBatch(n, size)
	windowCost := b.TransferWindow([]Stream{{
		Latency:  cfg.RTT + time.Duration(n)*cfg.RequestOverhead,
		Requests: n,
		Bytes:    size,
	}})
	approxEqual(t, windowCost, batchCost, time.Microsecond, "window vs batch cost")

	as, bs := a.Stats(), b.Stats()
	if as.Bytes != bs.Bytes || as.Requests != bs.Requests {
		t.Fatalf("stats diverge: batch=%+v window=%+v", as, bs)
	}
	approxEqual(t, bs.Elapsed, as.Elapsed, time.Microsecond, "elapsed")
}

// Splitting a fixed workload over more streams must never slow the
// window down (monotone non-increasing makespan), because wire work is
// conserved and latency overlaps.
func TestFairShareMonotoneInWorkers(t *testing.T) {
	cfg := DefaultLAN()
	const objects = 64
	const objSize = 128 * 1024

	prev := time.Duration(-1)
	for _, w := range []int{1, 2, 4, 8, 16} {
		streams := make([]Stream, w)
		per := objects / w
		for i := range streams {
			n := per
			if i < objects%w {
				n++
			}
			streams[i] = Stream{
				Latency:  cfg.RTT + time.Duration(n)*cfg.RequestOverhead,
				Requests: n,
				Bytes:    int64(n) * objSize,
			}
		}
		_, makespan := FairShare(cfg, streams)
		if prev >= 0 && makespan > prev {
			t.Fatalf("makespan increased at w=%d: %v > %v", w, makespan, prev)
		}
		prev = makespan
	}
}
