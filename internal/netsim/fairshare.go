package netsim

import (
	"fmt"
	"sort"
	"time"
)

// Stream describes one concurrent transfer inside a fetch window: a
// worker that opens its request(s) at Start (relative to the window
// origin), pays Latency of per-request setup (RTT and server overhead,
// during which it occupies no bandwidth), and then moves Bytes over the
// shared wire.
type Stream struct {
	// Start is the stream's offset from the beginning of the window.
	Start time.Duration
	// Latency is the request setup time paid before any byte moves:
	// typically RTT + RequestOverhead×Requests for a batched stream, or
	// (RTT + RequestOverhead)×Requests for per-object requests.
	Latency time.Duration
	// Requests is the number of requests the stream issues (accounting
	// only; the time cost is folded into Latency by the caller).
	Requests int
	// Bytes is the payload volume the stream carries.
	Bytes int64
}

// PerObjectStream returns the Stream for a worker that issues one
// request per object: each object pays its own RTT and server overhead
// before the payload bytes share the wire.
func PerObjectStream(cfg LinkConfig, objects int, bytes int64) Stream {
	return Stream{
		Latency:  (cfg.RTT + cfg.RequestOverhead) * time.Duration(objects),
		Requests: objects,
		Bytes:    bytes,
	}
}

// BatchedStream returns the Stream for a worker that moves objects in
// one batched round trip: a single RTT, with the per-object server
// overhead still paid for every object in the batch.
func BatchedStream(cfg LinkConfig, objects int, bytes int64) Stream {
	return Stream{
		Latency:  cfg.RTT + cfg.RequestOverhead*time.Duration(objects),
		Requests: objects,
		Bytes:    bytes,
	}
}

// FairShare runs a deterministic processor-sharing simulation of the
// given streams on a link with cfg's bandwidth: at any instant the
// streams with remaining bytes split BytesPerSecond equally. It returns
// each stream's finish time (relative to the window origin, in input
// order) and the makespan of the whole window.
//
// The model is work-conserving: the total wire time equals the serial
// wire time for the same byte volume whenever the link is never idle, so
// parallelism buys back only the latency phases that overlap — matching
// how concurrent HTTP downloads behave on one bottleneck link.
//
// Invalid input (a zero-bandwidth cfg, a stream with negative fields)
// yields zeroed results; FairShareE reports the typed error instead.
func FairShare(cfg LinkConfig, streams []Stream) (finish []time.Duration, makespan time.Duration) {
	finish, makespan, err := FairShareE(cfg, streams)
	if err != nil {
		return make([]time.Duration, len(streams)), 0
	}
	return finish, makespan
}

// ValidateStreams checks that every stream describes a physically
// possible transfer: non-negative start, latency, request count, and
// byte volume.
func ValidateStreams(streams []Stream) error {
	for i, s := range streams {
		if s.Start < 0 || s.Latency < 0 || s.Requests < 0 || s.Bytes < 0 {
			return fmt.Errorf("netsim: stream %d (start %v latency %v requests %d bytes %d): %w",
				i, s.Start, s.Latency, s.Requests, s.Bytes, ErrBadStream)
		}
	}
	return nil
}

// FairShareE is FairShare with typed failure reporting: ErrBadLink for
// a configuration the simulation cannot price (zero or negative
// bandwidth would make every active stream's share zero and the window
// never drain), ErrBadStream for impossible stream parameters.
func FairShareE(cfg LinkConfig, streams []Stream) (finish []time.Duration, makespan time.Duration, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	if err := ValidateStreams(streams); err != nil {
		return nil, 0, err
	}
	finish, makespan = fairShare(cfg, streams)
	return finish, makespan, nil
}

// fairShare runs the processor-sharing simulation on validated input.
func fairShare(cfg LinkConfig, streams []Stream) (finish []time.Duration, makespan time.Duration) {
	n := len(streams)
	finish = make([]time.Duration, n)
	if n == 0 {
		return finish, 0
	}

	type state struct {
		idx       int
		ready     float64 // seconds: Start+Latency, when bytes start moving
		remaining float64 // bytes left to transfer
	}
	states := make([]*state, 0, n)
	for i, s := range streams {
		st := &state{
			idx:       i,
			ready:     (s.Start + s.Latency).Seconds(),
			remaining: float64(s.Bytes),
		}
		if st.remaining <= 0 {
			// Latency-only stream: finishes as soon as its setup ends.
			finish[i] = s.Start + s.Latency
			continue
		}
		states = append(states, st)
	}
	sort.SliceStable(states, func(i, j int) bool { return states[i].ready < states[j].ready })

	bw := cfg.BytesPerSecond
	clock := 0.0
	active := make([]*state, 0, len(states))
	pending := states
	for len(active) > 0 || len(pending) > 0 {
		// Admit streams whose setup has completed.
		for len(pending) > 0 && pending[0].ready <= clock {
			active = append(active, pending[0])
			pending = pending[1:]
		}
		if len(active) == 0 {
			// Wire idle until the next stream becomes ready.
			clock = pending[0].ready
			continue
		}
		// Each active stream gets an equal share of the wire until either
		// the next admission or the earliest completion.
		share := bw / float64(len(active))
		dt := active[0].remaining / share
		for _, st := range active[1:] {
			if d := st.remaining / share; d < dt {
				dt = d
			}
		}
		if len(pending) > 0 {
			if d := pending[0].ready - clock; d < dt {
				dt = d
			}
		}
		clock += dt
		next := active[:0]
		for _, st := range active {
			st.remaining -= dt * share
			if st.remaining <= 1e-9 {
				finish[st.idx] = time.Duration(clock * float64(time.Second))
			} else {
				next = append(next, st)
			}
		}
		active = next
	}

	for _, f := range finish {
		if f > makespan {
			makespan = f
		}
	}
	return finish, makespan
}

// TransferWindow records a window of concurrent streams fair-sharing the
// link and returns the window's makespan, which is what it adds to the
// link's elapsed time. Bytes and request counts accumulate exactly as if
// the streams had run serially — parallelism changes time, not volume.
//
// A single batched stream costs the same as TransferBatch for the same
// requests and bytes.
//
// On a closed link or invalid input it records nothing and returns 0;
// TransferWindowE reports the typed error.
func (l *Link) TransferWindow(streams []Stream) time.Duration {
	makespan, _ := l.TransferWindowE(streams)
	return makespan
}

// TransferWindowE is TransferWindow with typed failure reporting:
// ErrLinkClosed on a closed link (a node that detached mid-transfer),
// ErrBadStream for impossible stream parameters.
func (l *Link) TransferWindowE(streams []Stream) (time.Duration, error) {
	if err := ValidateStreams(streams); err != nil {
		return 0, err
	}
	var (
		bytes    int64
		requests int64
	)
	for _, s := range streams {
		bytes += s.Bytes
		requests += int64(s.Requests)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("netsim: %w", ErrLinkClosed)
	}
	// cfg was validated at construction (and on every SetConfig), so the
	// share computation cannot divide by zero here.
	_, makespan := fairShare(l.cfg, streams)
	l.bytes += bytes
	l.requests += requests
	l.elapsed += makespan
	return makespan, nil
}
