package netsim

import "sync"

// Topology models the cluster/WAN asymmetry that makes peer-to-peer
// image distribution pay (the EdgePier setting): a fleet of nodes in
// one cluster, where every node owns a cheap, fat LAN link to its
// cluster peers and a separate, narrow WAN link toward the registry.
// Registry egress is the sum of WAN traffic; peer exchange rides the
// LAN links and never touches the WAN.
//
// Links stay per-node (each node has its own NIC); the asymmetry is in
// the two LinkConfigs. Aggregated stats answer the fleet questions:
// WANStats is what the registry served, LANStats is what the cluster
// absorbed internally.
type Topology struct {
	wanCfg, lanCfg LinkConfig

	mu    sync.Mutex
	nodes map[string]*NodeLinks
	order []string
}

// NodeLinks is one node's attachment to the topology.
type NodeLinks struct {
	// WAN carries registry traffic (index pulls, Gear file downloads
	// that no peer could serve).
	WAN *Link
	// LAN carries peer-to-peer Gear file transfers within the cluster.
	LAN *Link
}

// NewTopology returns an empty topology with the given WAN and LAN
// link configurations.
func NewTopology(wan, lan LinkConfig) (*Topology, error) {
	if err := wan.Validate(); err != nil {
		return nil, err
	}
	if err := lan.Validate(); err != nil {
		return nil, err
	}
	return &Topology{
		wanCfg: wan,
		lanCfg: lan,
		nodes:  make(map[string]*NodeLinks),
	}, nil
}

// Node returns the links of the named node, attaching it on first use.
func (t *Topology) Node(id string) *NodeLinks {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n, ok := t.nodes[id]; ok {
		return n
	}
	// Configs were validated in NewTopology; NewLink cannot fail.
	wan, _ := NewLink(t.wanCfg)
	lan, _ := NewLink(t.lanCfg)
	n := &NodeLinks{WAN: wan, LAN: lan}
	t.nodes[id] = n
	t.order = append(t.order, id)
	return n
}

// NodeIDs lists attached nodes in attachment order.
func (t *Topology) NodeIDs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// WANStats sums the registry-side traffic over every node — the
// fleet's total registry egress.
func (t *Topology) WANStats() Stats {
	return t.sum(func(n *NodeLinks) *Link { return n.WAN })
}

// LANStats sums the intra-cluster peer traffic over every node.
func (t *Topology) LANStats() Stats {
	return t.sum(func(n *NodeLinks) *Link { return n.LAN })
}

func (t *Topology) sum(pick func(*NodeLinks) *Link) Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total Stats
	for _, id := range t.order {
		s := pick(t.nodes[id]).Stats()
		total.Bytes += s.Bytes
		total.Requests += s.Requests
		total.Elapsed += s.Elapsed
	}
	return total
}
