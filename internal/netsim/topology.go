package netsim

import (
	"errors"
	"fmt"
	"sync"
)

// ErrUnknownNode reports a topology operation on a node id that is not
// currently attached.
var ErrUnknownNode = errors.New("unknown node")

// Topology models the cluster/WAN asymmetry that makes peer-to-peer
// image distribution pay (the EdgePier setting): a fleet of nodes in
// one cluster, where every node owns a cheap, fat LAN link to its
// cluster peers and a separate, narrow WAN link toward the registry.
// Registry egress is the sum of WAN traffic; peer exchange rides the
// LAN links and never touches the WAN.
//
// Links stay per-node (each node has its own NIC); the asymmetry is in
// the two LinkConfigs. Aggregated stats answer the fleet questions:
// WANStats is what the registry served, LANStats is what the cluster
// absorbed internally.
//
// Nodes can churn: Detach closes a node's links (in-flight transfer
// attempts fail with ErrLinkClosed), and a later Node call re-attaches
// it with fresh links. Traffic carried before a detach stays in the
// aggregate stats, so fleet egress is monotonic across churn.
type Topology struct {
	mu             sync.Mutex
	wanCfg, lanCfg LinkConfig
	nodes          map[string]*NodeLinks
	order          []string
	// retired holds the link pairs of detached nodes so their traffic
	// keeps counting toward the aggregates.
	retired []*NodeLinks
	// jitterSeed/jitterAmp, when amp > 0, arm deterministic per-node
	// service jitter: every attachment derives its own stream seed from
	// (jitterSeed, node id), so the same topology seed replays the same
	// per-node slow-request schedule regardless of attachment order.
	jitterSeed uint64
	jitterAmp  float64
}

// NodeLinks is one node's attachment to the topology.
type NodeLinks struct {
	// WAN carries registry traffic (index pulls, Gear file downloads
	// that no peer could serve).
	WAN *Link
	// LAN carries peer-to-peer Gear file transfers within the cluster.
	LAN *Link
}

// NewTopology returns an empty topology with the given WAN and LAN
// link configurations.
func NewTopology(wan, lan LinkConfig) (*Topology, error) {
	if err := wan.Validate(); err != nil {
		return nil, err
	}
	if err := lan.Validate(); err != nil {
		return nil, err
	}
	return &Topology{
		wanCfg: wan,
		lanCfg: lan,
		nodes:  make(map[string]*NodeLinks),
	}, nil
}

// Node returns the links of the named node, attaching it on first use.
// A node that was detached is re-attached with fresh links (a rejoin
// after churn); its earlier traffic remains in the aggregate stats.
func (t *Topology) Node(id string) *NodeLinks {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n, ok := t.nodes[id]; ok {
		return n
	}
	// Configs were validated in NewTopology; NewLink cannot fail.
	wan, _ := NewLink(t.wanCfg)
	lan, _ := NewLink(t.lanCfg)
	if t.jitterAmp > 0 {
		// Amp was validated in SetServiceJitter; SetServiceJitter on a
		// fresh link cannot fail.
		_ = wan.SetServiceJitter(nodeSeed(t.jitterSeed, id, 0), t.jitterAmp)
		_ = lan.SetServiceJitter(nodeSeed(t.jitterSeed, id, 1), t.jitterAmp)
	}
	n := &NodeLinks{WAN: wan, LAN: lan}
	t.nodes[id] = n
	t.order = append(t.order, id)
	return n
}

// SetServiceFactor scales the named node's server-side cost on both its
// links — the straggler knob (10 = one node serving at a tenth speed; 1
// restores nominal service). The node must be attached; the factor does
// not survive a detach/re-attach cycle (a rejoined node gets fresh
// links at nominal speed).
func (t *Topology) SetServiceFactor(id string, f float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[id]
	if !ok {
		return fmt.Errorf("netsim: service factor %q: %w", id, ErrUnknownNode)
	}
	if err := n.WAN.SetServiceFactor(f); err != nil {
		return err
	}
	return n.LAN.SetServiceFactor(f)
}

// SetServiceJitter arms deterministic per-request service jitter on
// every attached node and every future attachment: each transfer's
// server-side cost scales by 1+amp*u with u drawn from a per-node
// xorshift stream derived from (seed, node id). Same seed, same slow
// requests — the reproducible-straggler contract experiments replay.
// amp 0 disarms jitter for future attachments (existing links keep
// their streams).
func (t *Topology) SetServiceJitter(seed uint64, amp float64) error {
	if amp < 0 {
		return fmt.Errorf("netsim: jitter amplitude %f: %w", amp, ErrBadLink)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.jitterSeed, t.jitterAmp = seed, amp
	if amp == 0 {
		return nil
	}
	for _, id := range t.order {
		n := t.nodes[id]
		// Attached links are never closed and amp was validated, so
		// SetServiceJitter cannot fail.
		_ = n.WAN.SetServiceJitter(nodeSeed(seed, id, 0), amp)
		_ = n.LAN.SetServiceJitter(nodeSeed(seed, id, 1), amp)
	}
	return nil
}

// nodeSeed derives a per-(node, link-class) jitter seed: FNV-1a over
// the id mixed with the topology seed and finalized so nearby ids land
// on far-apart streams.
func nodeSeed(seed uint64, id string, class uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	h ^= seed + class*0x9e3779b97f4a7c15
	// murmur3 finalizer: avalanche every bit so streams decorrelate.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	if h == 0 {
		h = 0x9e3779b97f4a7c15
	}
	return h
}

// Detach removes the named node: both its links close, so any transfer
// still pointed at them fails with ErrLinkClosed instead of silently
// pricing traffic for a node that left. Detaching a node that is not
// attached reports ErrUnknownNode.
func (t *Topology) Detach(id string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[id]
	if !ok {
		return fmt.Errorf("netsim: detach %q: %w", id, ErrUnknownNode)
	}
	n.WAN.Close()
	n.LAN.Close()
	t.retired = append(t.retired, n)
	delete(t.nodes, id)
	for i, o := range t.order {
		if o == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	return nil
}

// Attached reports whether the named node is currently attached.
func (t *Topology) Attached(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.nodes[id]
	return ok
}

// NodeIDs lists attached nodes in attachment order (re-attachment after
// a detach counts as a fresh attachment).
func (t *Topology) NodeIDs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// SetWANConfig reprices every attached node's WAN link and every future
// attachment — the registry failing over to a degraded mirror, then
// recovering. Bytes already moved keep their original pricing.
func (t *Topology) SetWANConfig(cfg LinkConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wanCfg = cfg
	for _, id := range t.order {
		// Attached links are never closed, so SetConfig cannot fail.
		if err := t.nodes[id].WAN.SetConfig(cfg); err != nil {
			return err
		}
	}
	return nil
}

// WANConfig returns the configuration new WAN attachments receive.
func (t *Topology) WANConfig() LinkConfig {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wanCfg
}

// WANStats sums the registry-side traffic over every node — the
// fleet's total registry egress. Detached nodes' past traffic counts.
func (t *Topology) WANStats() Stats {
	return t.sum(func(n *NodeLinks) *Link { return n.WAN })
}

// LANStats sums the intra-cluster peer traffic over every node.
// Detached nodes' past traffic counts.
func (t *Topology) LANStats() Stats {
	return t.sum(func(n *NodeLinks) *Link { return n.LAN })
}

func (t *Topology) sum(pick func(*NodeLinks) *Link) Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total Stats
	for _, id := range t.order {
		total = total.add(pick(t.nodes[id]).Stats())
	}
	for _, n := range t.retired {
		total = total.add(pick(n).Stats())
	}
	return total
}

// add returns the element-wise sum of two stats snapshots.
func (s Stats) add(o Stats) Stats {
	return Stats{
		Bytes:    s.Bytes + o.Bytes,
		Requests: s.Requests + o.Requests,
		Elapsed:  s.Elapsed + o.Elapsed,
	}
}

// Sub returns the element-wise difference s - o: the traffic carried
// between two snapshots of the same link or topology.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Bytes:    s.Bytes - o.Bytes,
		Requests: s.Requests - o.Requests,
		Elapsed:  s.Elapsed - o.Elapsed,
	}
}
