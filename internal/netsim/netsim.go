// Package netsim models network transfer cost with a deterministic
// virtual clock. The Gear paper's deployment-time results (Fig 9, Fig 10)
// are dominated by how many bytes and how many round trips each image
// format needs at a given link bandwidth; this package computes those
// costs analytically so experiments are exact and repeatable on any
// machine, substituting for the paper's two-server Gigabit testbed.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBadLink reports an invalid link configuration.
var ErrBadLink = errors.New("invalid link configuration")

// ErrLinkClosed reports a transfer attempted on a closed link — a node
// that detached from its topology mid-scenario. Closed links carry no
// further traffic; their accumulated stats remain readable.
var ErrLinkClosed = errors.New("link closed")

// ErrBadStream reports a transfer described with impossible parameters
// (negative sizes or offsets).
var ErrBadStream = errors.New("invalid stream")

// Mbps converts megabits-per-second into bytes-per-second.
func Mbps(mbps float64) float64 { return mbps * 1e6 / 8 }

// LinkConfig describes a point-to-point link between a client and a
// registry.
type LinkConfig struct {
	// BytesPerSecond is the sustained throughput of the link.
	BytesPerSecond float64
	// RTT is the round-trip latency paid once per request.
	RTT time.Duration
	// RequestOverhead is the fixed server-side cost per request (HTTP
	// handling, object lookup). It is what makes many small requests —
	// Slacker's block fetches — slower than few large ones at the same
	// byte volume.
	RequestOverhead time.Duration
	// RangeOverhead is the extra server-side cost a byte-range request
	// pays on top of RequestOverhead — seeking into the stored object
	// and framing the Content-Range slice. Zero (the default) prices a
	// range request exactly like a whole-object request of the same
	// size, so chunked transfers degenerate to today's arithmetic.
	RangeOverhead time.Duration
}

// Validate checks the configuration.
func (c LinkConfig) Validate() error {
	if c.BytesPerSecond <= 0 {
		return fmt.Errorf("netsim: bytes per second %f: %w", c.BytesPerSecond, ErrBadLink)
	}
	if c.RTT < 0 || c.RequestOverhead < 0 || c.RangeOverhead < 0 {
		return fmt.Errorf("netsim: negative latency: %w", ErrBadLink)
	}
	return nil
}

// DefaultLAN approximates the paper's measured 904 Mbps server pair.
func DefaultLAN() LinkConfig {
	return LinkConfig{
		BytesPerSecond:  Mbps(904),
		RTT:             200 * time.Microsecond,
		RequestOverhead: 300 * time.Microsecond,
	}
}

// WithBandwidth returns a copy of c limited to the given Mbps, as the
// paper does with 1000/100/20/5 Mbps runs.
func (c LinkConfig) WithBandwidth(mbps float64) LinkConfig {
	c.BytesPerSecond = Mbps(mbps)
	return c
}

// Link accumulates traffic over a configured link and converts it to
// virtual time. Link is safe for concurrent use.
type Link struct {
	mu       sync.Mutex
	cfg      LinkConfig
	closed   bool
	bytes    int64
	requests int64
	elapsed  time.Duration
	// factor scales the server-side cost (request overhead + wire time)
	// of every future transfer: 0 or 1 is nominal, 10 a straggler
	// serving at a tenth of its rated speed. The RTT is network
	// propagation and stays unscaled.
	factor float64
	// jitterAmp > 0 adds deterministic per-request service jitter: each
	// transfer draws u in [0,1) from the seeded xorshift stream and
	// scales its server-side cost by 1+jitterAmp*u.
	jitterAmp   float64
	jitterState uint64
}

// NewLink returns a Link for cfg.
func NewLink(cfg LinkConfig) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Link{cfg: cfg}, nil
}

// Config returns the link configuration.
func (l *Link) Config() LinkConfig {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cfg
}

// SetConfig replaces the link configuration — a WAN degrading when the
// registry fails over to a distant mirror, then recovering. Traffic
// already recorded keeps its original pricing; only future transfers pay
// the new rates.
func (l *Link) SetConfig(cfg LinkConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("netsim: %w", ErrLinkClosed)
	}
	l.cfg = cfg
	return nil
}

// Close marks the link down — the node behind it detached. Further
// transfers record nothing; the error-returning variants report
// ErrLinkClosed. Closing twice is a no-op.
func (l *Link) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
}

// Closed reports whether the link has been closed.
func (l *Link) Closed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// SetServiceFactor scales the server-side cost of every future
// transfer on this link — the straggler knob: a factor of 10 models a
// node serving at a tenth of its rated speed (overloaded disk, GC
// storms, a failing NIC). Factor must be positive; 1 restores nominal
// service. Traffic already recorded keeps its original pricing.
func (l *Link) SetServiceFactor(f float64) error {
	if f <= 0 {
		return fmt.Errorf("netsim: service factor %f: %w", f, ErrBadLink)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.factor = f
	return nil
}

// ServiceFactor returns the current server-side cost multiplier.
func (l *Link) ServiceFactor() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.factor <= 0 {
		return 1
	}
	return l.factor
}

// SetServiceJitter enables deterministic per-request service jitter:
// each future transfer scales its server-side cost by 1+amp*u, with u
// drawn in [0,1) from an xorshift stream seeded here. The same seed
// replays the same jitter sequence, so slow requests are reproducible.
// amp 0 disables jitter; negative amp is rejected.
func (l *Link) SetServiceJitter(seed uint64, amp float64) error {
	if amp < 0 {
		return fmt.Errorf("netsim: jitter amplitude %f: %w", amp, ErrBadLink)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.jitterAmp = amp
	if seed == 0 {
		// xorshift is stuck at zero; displace with the splitmix constant.
		seed = 0x9e3779b97f4a7c15
	}
	l.jitterState = seed
	return nil
}

// jitterDrawLocked advances the jitter stream and returns u in [0,1).
func (l *Link) jitterDrawLocked() float64 {
	x := l.jitterState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	l.jitterState = x
	return float64(x>>11) / float64(1<<53)
}

// costLocked prices n requests totalling size bytes: RTT once, request
// overhead per request, wire time on the volume — with the server-side
// parts scaled by the service factor and one jitter draw per call. With
// factor 1 and jitter off the arithmetic is bit-identical to the
// pre-knob pricing.
func (l *Link) costLocked(n int, size int64) time.Duration {
	return l.costPerReqLocked(n, size, l.cfg.RequestOverhead)
}

// costPerReqLocked is costLocked with an explicit per-request overhead
// — the range-request path pays RequestOverhead+RangeOverhead per
// request through the same factor/jitter arithmetic.
func (l *Link) costPerReqLocked(n int, size int64, perReq time.Duration) time.Duration {
	wire := time.Duration(float64(size) / l.cfg.BytesPerSecond * float64(time.Second))
	serve := perReq*time.Duration(n) + wire
	f := 1.0
	if l.factor > 0 {
		f = l.factor
	}
	if l.jitterAmp > 0 {
		f *= 1 + l.jitterAmp*l.jitterDrawLocked()
	}
	if f != 1 {
		serve = time.Duration(float64(serve) * f)
	}
	return l.cfg.RTT + serve
}

// TransferCost returns the virtual time to move size bytes in a single
// request, without recording it. The service factor applies; the jitter
// stream is left untouched (a cost estimate must not perturb the
// deterministic per-request sequence) — use TransferQuote to draw a
// jittered cost.
func (l *Link) TransferCost(size int64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	wire := time.Duration(float64(size) / l.cfg.BytesPerSecond * float64(time.Second))
	serve := l.cfg.RequestOverhead + wire
	if l.factor > 0 && l.factor != 1 {
		serve = time.Duration(float64(serve) * l.factor)
	}
	return l.cfg.RTT + serve
}

// Transfer records one request of size bytes and returns its cost. On a
// closed link it records nothing and returns 0; use TransferE when the
// caller needs the typed error.
func (l *Link) Transfer(size int64) time.Duration {
	cost, _ := l.TransferE(size)
	return cost
}

// TransferE is Transfer with typed failure reporting: ErrLinkClosed on
// a closed link, ErrBadStream for a negative size.
func (l *Link) TransferE(size int64) (time.Duration, error) {
	if size < 0 {
		return 0, fmt.Errorf("netsim: transfer of %d bytes: %w", size, ErrBadStream)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("netsim: %w", ErrLinkClosed)
	}
	cost := l.costLocked(1, size)
	l.bytes += size
	l.requests++
	l.elapsed += cost
	return cost, nil
}

// TransferQuote draws the (service-scaled, jittered) cost of n requests
// totalling size bytes without recording any traffic. The jitter stream
// advances exactly as a recorded transfer would, so a quote followed by
// RecordTransfer prices identically to TransferE/TransferBatchE. Hedged
// readers quote both replicas, pick the winner, and record the loser's
// partial outcome.
func (l *Link) TransferQuote(n int, size int64) (time.Duration, error) {
	if n <= 0 {
		return 0, nil
	}
	if size < 0 {
		return 0, fmt.Errorf("netsim: quote of %d bytes: %w", size, ErrBadStream)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("netsim: %w", ErrLinkClosed)
	}
	return l.costLocked(n, size), nil
}

// RecordTransfer commits a previously quoted transfer outcome: n
// requests, size bytes moved, cost of link busy time. A cancelled
// (hedge-losing) transfer records the bytes and busy time it actually
// spent before cancellation.
func (l *Link) RecordTransfer(n int, size int64, cost time.Duration) error {
	if n <= 0 {
		return nil
	}
	if size < 0 || cost < 0 {
		return fmt.Errorf("netsim: record of %d bytes in %v: %w", size, cost, ErrBadStream)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("netsim: %w", ErrLinkClosed)
	}
	l.bytes += size
	l.requests += int64(n)
	l.elapsed += cost
	return nil
}

// PrefixBytes reports how many of size bytes a transfer of n requests
// priced at cost has delivered when cancelled busy into its service:
// nothing until the RTT and the (service-scaled) request overhead
// elapse, then linear across the wire phase. The overhead/wire split is
// taken from the current configuration; the service scaling cancels out
// of the split, so the same call prices jittered and straggling
// transfers correctly. Hedged readers use this to discount the bytes a
// cancelled loser actually moved.
func (l *Link) PrefixBytes(n int, size int64, busy, cost time.Duration) int64 {
	if n < 1 || size <= 0 || busy <= 0 {
		return 0
	}
	if busy >= cost {
		return size
	}
	l.mu.Lock()
	ovh := float64(l.cfg.RequestOverhead) * float64(n)
	wire := float64(size) / l.cfg.BytesPerSecond * float64(time.Second)
	rtt := float64(l.cfg.RTT)
	l.mu.Unlock()
	serve := float64(cost) - rtt
	if serve <= 0 || ovh+wire <= 0 {
		return 0
	}
	dataStart := rtt + serve*ovh/(ovh+wire)
	span := float64(cost) - dataStart
	if span <= 0 || float64(busy) <= dataStart {
		return 0
	}
	got := int64(float64(size) * (float64(busy) - dataStart) / span)
	if got > size {
		got = size
	}
	return got
}

// TransferBatch records n requests totalling size bytes, as when a client
// pipelines many object fetches: the wire time is paid on the full volume
// but the RTT is amortized over a pipeline window. On a closed link it
// records nothing and returns 0; use TransferBatchE for the typed error.
func (l *Link) TransferBatch(n int, size int64) time.Duration {
	cost, _ := l.TransferBatchE(n, size)
	return cost
}

// TransferBatchE is TransferBatch with typed failure reporting:
// ErrLinkClosed on a closed link, ErrBadStream for a negative size.
func (l *Link) TransferBatchE(n int, size int64) (time.Duration, error) {
	if n <= 0 {
		return 0, nil
	}
	if size < 0 {
		return 0, fmt.Errorf("netsim: batch of %d bytes: %w", size, ErrBadStream)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("netsim: %w", ErrLinkClosed)
	}
	cost := l.costLocked(n, size)
	l.bytes += size
	l.requests += int64(n)
	l.elapsed += cost
	return cost, nil
}

// TransferRange records one byte-range request of size bytes — a chunk
// fetched out of a larger stored object — and returns its cost. Range
// requests pay RangeOverhead on top of the per-request overhead; with
// RangeOverhead zero the cost is bit-identical to Transfer(size). On a
// closed link it records nothing and returns 0.
func (l *Link) TransferRange(size int64) time.Duration {
	cost, _ := l.TransferRangeE(size)
	return cost
}

// TransferRangeE is TransferRange with typed failure reporting:
// ErrLinkClosed on a closed link, ErrBadStream for a negative size.
func (l *Link) TransferRangeE(size int64) (time.Duration, error) {
	if size < 0 {
		return 0, fmt.Errorf("netsim: range transfer of %d bytes: %w", size, ErrBadStream)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("netsim: %w", ErrLinkClosed)
	}
	cost := l.costPerReqLocked(1, size, l.cfg.RequestOverhead+l.cfg.RangeOverhead)
	l.bytes += size
	l.requests++
	l.elapsed += cost
	return cost, nil
}

// TransferRangeQuote draws the cost of n range requests totalling size
// bytes without recording traffic, advancing the jitter stream exactly
// as a recorded transfer would — the range analogue of TransferQuote,
// for readers that quote replicas before committing via RecordTransfer.
func (l *Link) TransferRangeQuote(n int, size int64) (time.Duration, error) {
	if n <= 0 {
		return 0, nil
	}
	if size < 0 {
		return 0, fmt.Errorf("netsim: range quote of %d bytes: %w", size, ErrBadStream)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("netsim: %w", ErrLinkClosed)
	}
	return l.costPerReqLocked(n, size, l.cfg.RequestOverhead+l.cfg.RangeOverhead), nil
}

// Stats is a snapshot of traffic carried by a link.
type Stats struct {
	Bytes    int64         `json:"bytes"`
	Requests int64         `json:"requests"`
	Elapsed  time.Duration `json:"elapsed"`
}

// Stats returns the traffic carried so far.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Bytes: l.bytes, Requests: l.requests, Elapsed: l.elapsed}
}

// Reset zeroes the accumulated traffic.
func (l *Link) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bytes, l.requests, l.elapsed = 0, 0, 0
}
