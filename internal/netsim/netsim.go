// Package netsim models network transfer cost with a deterministic
// virtual clock. The Gear paper's deployment-time results (Fig 9, Fig 10)
// are dominated by how many bytes and how many round trips each image
// format needs at a given link bandwidth; this package computes those
// costs analytically so experiments are exact and repeatable on any
// machine, substituting for the paper's two-server Gigabit testbed.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBadLink reports an invalid link configuration.
var ErrBadLink = errors.New("invalid link configuration")

// ErrLinkClosed reports a transfer attempted on a closed link — a node
// that detached from its topology mid-scenario. Closed links carry no
// further traffic; their accumulated stats remain readable.
var ErrLinkClosed = errors.New("link closed")

// ErrBadStream reports a transfer described with impossible parameters
// (negative sizes or offsets).
var ErrBadStream = errors.New("invalid stream")

// Mbps converts megabits-per-second into bytes-per-second.
func Mbps(mbps float64) float64 { return mbps * 1e6 / 8 }

// LinkConfig describes a point-to-point link between a client and a
// registry.
type LinkConfig struct {
	// BytesPerSecond is the sustained throughput of the link.
	BytesPerSecond float64
	// RTT is the round-trip latency paid once per request.
	RTT time.Duration
	// RequestOverhead is the fixed server-side cost per request (HTTP
	// handling, object lookup). It is what makes many small requests —
	// Slacker's block fetches — slower than few large ones at the same
	// byte volume.
	RequestOverhead time.Duration
}

// Validate checks the configuration.
func (c LinkConfig) Validate() error {
	if c.BytesPerSecond <= 0 {
		return fmt.Errorf("netsim: bytes per second %f: %w", c.BytesPerSecond, ErrBadLink)
	}
	if c.RTT < 0 || c.RequestOverhead < 0 {
		return fmt.Errorf("netsim: negative latency: %w", ErrBadLink)
	}
	return nil
}

// DefaultLAN approximates the paper's measured 904 Mbps server pair.
func DefaultLAN() LinkConfig {
	return LinkConfig{
		BytesPerSecond:  Mbps(904),
		RTT:             200 * time.Microsecond,
		RequestOverhead: 300 * time.Microsecond,
	}
}

// WithBandwidth returns a copy of c limited to the given Mbps, as the
// paper does with 1000/100/20/5 Mbps runs.
func (c LinkConfig) WithBandwidth(mbps float64) LinkConfig {
	c.BytesPerSecond = Mbps(mbps)
	return c
}

// Link accumulates traffic over a configured link and converts it to
// virtual time. Link is safe for concurrent use.
type Link struct {
	mu       sync.Mutex
	cfg      LinkConfig
	closed   bool
	bytes    int64
	requests int64
	elapsed  time.Duration
}

// NewLink returns a Link for cfg.
func NewLink(cfg LinkConfig) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Link{cfg: cfg}, nil
}

// Config returns the link configuration.
func (l *Link) Config() LinkConfig {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cfg
}

// SetConfig replaces the link configuration — a WAN degrading when the
// registry fails over to a distant mirror, then recovering. Traffic
// already recorded keeps its original pricing; only future transfers pay
// the new rates.
func (l *Link) SetConfig(cfg LinkConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("netsim: %w", ErrLinkClosed)
	}
	l.cfg = cfg
	return nil
}

// Close marks the link down — the node behind it detached. Further
// transfers record nothing; the error-returning variants report
// ErrLinkClosed. Closing twice is a no-op.
func (l *Link) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
}

// Closed reports whether the link has been closed.
func (l *Link) Closed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// TransferCost returns the virtual time to move size bytes in a single
// request, without recording it.
func (l *Link) TransferCost(size int64) time.Duration {
	cfg := l.Config()
	wire := time.Duration(float64(size) / cfg.BytesPerSecond * float64(time.Second))
	return cfg.RTT + cfg.RequestOverhead + wire
}

// Transfer records one request of size bytes and returns its cost. On a
// closed link it records nothing and returns 0; use TransferE when the
// caller needs the typed error.
func (l *Link) Transfer(size int64) time.Duration {
	cost, _ := l.TransferE(size)
	return cost
}

// TransferE is Transfer with typed failure reporting: ErrLinkClosed on
// a closed link, ErrBadStream for a negative size.
func (l *Link) TransferE(size int64) (time.Duration, error) {
	if size < 0 {
		return 0, fmt.Errorf("netsim: transfer of %d bytes: %w", size, ErrBadStream)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("netsim: %w", ErrLinkClosed)
	}
	wire := time.Duration(float64(size) / l.cfg.BytesPerSecond * float64(time.Second))
	cost := l.cfg.RTT + l.cfg.RequestOverhead + wire
	l.bytes += size
	l.requests++
	l.elapsed += cost
	return cost, nil
}

// TransferBatch records n requests totalling size bytes, as when a client
// pipelines many object fetches: the wire time is paid on the full volume
// but the RTT is amortized over a pipeline window. On a closed link it
// records nothing and returns 0; use TransferBatchE for the typed error.
func (l *Link) TransferBatch(n int, size int64) time.Duration {
	cost, _ := l.TransferBatchE(n, size)
	return cost
}

// TransferBatchE is TransferBatch with typed failure reporting:
// ErrLinkClosed on a closed link, ErrBadStream for a negative size.
func (l *Link) TransferBatchE(n int, size int64) (time.Duration, error) {
	if n <= 0 {
		return 0, nil
	}
	if size < 0 {
		return 0, fmt.Errorf("netsim: batch of %d bytes: %w", size, ErrBadStream)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("netsim: %w", ErrLinkClosed)
	}
	wire := time.Duration(float64(size) / l.cfg.BytesPerSecond * float64(time.Second))
	perReq := l.cfg.RequestOverhead * time.Duration(n)
	cost := l.cfg.RTT + perReq + wire
	l.bytes += size
	l.requests += int64(n)
	l.elapsed += cost
	return cost, nil
}

// Stats is a snapshot of traffic carried by a link.
type Stats struct {
	Bytes    int64         `json:"bytes"`
	Requests int64         `json:"requests"`
	Elapsed  time.Duration `json:"elapsed"`
}

// Stats returns the traffic carried so far.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Bytes: l.bytes, Requests: l.requests, Elapsed: l.elapsed}
}

// Reset zeroes the accumulated traffic.
func (l *Link) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bytes, l.requests, l.elapsed = 0, 0, 0
}
