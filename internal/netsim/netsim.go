// Package netsim models network transfer cost with a deterministic
// virtual clock. The Gear paper's deployment-time results (Fig 9, Fig 10)
// are dominated by how many bytes and how many round trips each image
// format needs at a given link bandwidth; this package computes those
// costs analytically so experiments are exact and repeatable on any
// machine, substituting for the paper's two-server Gigabit testbed.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBadLink reports an invalid link configuration.
var ErrBadLink = errors.New("invalid link configuration")

// Mbps converts megabits-per-second into bytes-per-second.
func Mbps(mbps float64) float64 { return mbps * 1e6 / 8 }

// LinkConfig describes a point-to-point link between a client and a
// registry.
type LinkConfig struct {
	// BytesPerSecond is the sustained throughput of the link.
	BytesPerSecond float64
	// RTT is the round-trip latency paid once per request.
	RTT time.Duration
	// RequestOverhead is the fixed server-side cost per request (HTTP
	// handling, object lookup). It is what makes many small requests —
	// Slacker's block fetches — slower than few large ones at the same
	// byte volume.
	RequestOverhead time.Duration
}

// Validate checks the configuration.
func (c LinkConfig) Validate() error {
	if c.BytesPerSecond <= 0 {
		return fmt.Errorf("netsim: bytes per second %f: %w", c.BytesPerSecond, ErrBadLink)
	}
	if c.RTT < 0 || c.RequestOverhead < 0 {
		return fmt.Errorf("netsim: negative latency: %w", ErrBadLink)
	}
	return nil
}

// DefaultLAN approximates the paper's measured 904 Mbps server pair.
func DefaultLAN() LinkConfig {
	return LinkConfig{
		BytesPerSecond:  Mbps(904),
		RTT:             200 * time.Microsecond,
		RequestOverhead: 300 * time.Microsecond,
	}
}

// WithBandwidth returns a copy of c limited to the given Mbps, as the
// paper does with 1000/100/20/5 Mbps runs.
func (c LinkConfig) WithBandwidth(mbps float64) LinkConfig {
	c.BytesPerSecond = Mbps(mbps)
	return c
}

// Link accumulates traffic over a configured link and converts it to
// virtual time. Link is safe for concurrent use.
type Link struct {
	cfg LinkConfig

	mu       sync.Mutex
	bytes    int64
	requests int64
	elapsed  time.Duration
}

// NewLink returns a Link for cfg.
func NewLink(cfg LinkConfig) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Link{cfg: cfg}, nil
}

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// TransferCost returns the virtual time to move size bytes in a single
// request, without recording it.
func (l *Link) TransferCost(size int64) time.Duration {
	wire := time.Duration(float64(size) / l.cfg.BytesPerSecond * float64(time.Second))
	return l.cfg.RTT + l.cfg.RequestOverhead + wire
}

// Transfer records one request of size bytes and returns its cost.
func (l *Link) Transfer(size int64) time.Duration {
	cost := l.TransferCost(size)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bytes += size
	l.requests++
	l.elapsed += cost
	return cost
}

// TransferBatch records n requests totalling size bytes, as when a client
// pipelines many object fetches: the wire time is paid on the full volume
// but the RTT is amortized over a pipeline window.
func (l *Link) TransferBatch(n int, size int64) time.Duration {
	if n <= 0 {
		return 0
	}
	wire := time.Duration(float64(size) / l.cfg.BytesPerSecond * float64(time.Second))
	perReq := l.cfg.RequestOverhead * time.Duration(n)
	cost := l.cfg.RTT + perReq + wire
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bytes += size
	l.requests += int64(n)
	l.elapsed += cost
	return cost
}

// Stats is a snapshot of traffic carried by a link.
type Stats struct {
	Bytes    int64         `json:"bytes"`
	Requests int64         `json:"requests"`
	Elapsed  time.Duration `json:"elapsed"`
}

// Stats returns the traffic carried so far.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Bytes: l.bytes, Requests: l.requests, Elapsed: l.elapsed}
}

// Reset zeroes the accumulated traffic.
func (l *Link) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bytes, l.requests, l.elapsed = 0, 0, 0
}
