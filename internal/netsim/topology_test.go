package netsim

import (
	"sync"
	"testing"
)

func TestTopologyRejectsBadConfigs(t *testing.T) {
	good := DefaultLAN()
	if _, err := NewTopology(LinkConfig{}, good); err == nil {
		t.Error("bad WAN config accepted")
	}
	if _, err := NewTopology(good, LinkConfig{}); err == nil {
		t.Error("bad LAN config accepted")
	}
}

func TestTopologyNodeIdentityAndStats(t *testing.T) {
	topo, err := NewTopology(DefaultLAN().WithBandwidth(20), DefaultLAN().WithBandwidth(1000))
	if err != nil {
		t.Fatal(err)
	}
	a := topo.Node("a")
	if topo.Node("a") != a {
		t.Error("repeated Node(id) returned a different attachment")
	}
	b := topo.Node("b")

	a.WAN.Transfer(1000)
	b.WAN.Transfer(500)
	a.LAN.Transfer(2000)

	wan, lan := topo.WANStats(), topo.LANStats()
	if wan.Bytes != 1500 || wan.Requests != 2 {
		t.Errorf("WAN stats = %+v, want 1500 bytes / 2 requests", wan)
	}
	if lan.Bytes != 2000 || lan.Requests != 1 {
		t.Errorf("LAN stats = %+v, want 2000 bytes / 1 request", lan)
	}
	// The asymmetry is real: the same volume is far cheaper over the LAN.
	if a.LAN.TransferCost(1_000_000) >= a.WAN.TransferCost(1_000_000) {
		t.Error("LAN transfer not cheaper than WAN")
	}
	if ids := topo.NodeIDs(); len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("node ids = %v", ids)
	}
}

func TestTopologyConcurrentAttach(t *testing.T) {
	topo, err := NewTopology(DefaultLAN(), DefaultLAN())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, id := range []string{"n1", "n2", "n3"} {
				topo.Node(id).WAN.Transfer(10)
			}
		}()
	}
	wg.Wait()
	if got := topo.WANStats().Requests; got != 24 {
		t.Errorf("requests = %d, want 24", got)
	}
	if got := len(topo.NodeIDs()); got != 3 {
		t.Errorf("nodes = %d, want 3", got)
	}
}
