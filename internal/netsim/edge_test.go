package netsim

import (
	"errors"
	"testing"
	"time"
)

// TestTransferWindowEdgeCases drives the fair-share window through the
// degenerate inputs a fleet harness can produce — empty windows,
// latency-only streams, zero or vanishing bandwidth, impossible stream
// parameters — and checks each returns a typed error or a finite cost
// instead of hanging or dividing by zero.
func TestTransferWindowEdgeCases(t *testing.T) {
	lan := DefaultLAN()
	tests := []struct {
		name    string
		cfg     LinkConfig
		streams []Stream
		wantErr error
		// wantMakespan, when errless, bounds the expected window cost.
		min, max time.Duration
	}{
		{
			name: "empty window",
			cfg:  lan,
		},
		{
			name:    "latency-only stream",
			cfg:     lan,
			streams: []Stream{{Latency: time.Millisecond, Requests: 1}},
			min:     time.Millisecond,
			max:     time.Millisecond,
		},
		{
			name:    "single byte stream",
			cfg:     lan,
			streams: []Stream{{Bytes: 1, Requests: 1}},
			min:     time.Nanosecond,
			max:     time.Second,
		},
		{
			name:    "zero bandwidth",
			cfg:     LinkConfig{BytesPerSecond: 0},
			streams: []Stream{{Bytes: 100, Requests: 1}},
			wantErr: ErrBadLink,
		},
		{
			name:    "negative bandwidth",
			cfg:     LinkConfig{BytesPerSecond: -1},
			streams: []Stream{{Bytes: 100, Requests: 1}},
			wantErr: ErrBadLink,
		},
		{
			name: "tiny bandwidth stays finite",
			cfg:  LinkConfig{BytesPerSecond: 1},
			streams: []Stream{
				{Bytes: 3, Requests: 1},
				{Bytes: 2, Requests: 1},
			},
			min: 4 * time.Second,
			max: 6 * time.Second,
		},
		{
			name:    "negative bytes",
			cfg:     lan,
			streams: []Stream{{Bytes: -5, Requests: 1}},
			wantErr: ErrBadStream,
		},
		{
			name:    "negative start",
			cfg:     lan,
			streams: []Stream{{Start: -time.Second, Bytes: 5, Requests: 1}},
			wantErr: ErrBadStream,
		},
		{
			name:    "negative latency",
			cfg:     lan,
			streams: []Stream{{Latency: -time.Second, Bytes: 5, Requests: 1}},
			wantErr: ErrBadStream,
		},
		{
			name:    "negative requests",
			cfg:     lan,
			streams: []Stream{{Bytes: 5, Requests: -1}},
			wantErr: ErrBadStream,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			finish, makespan, err := FairShareE(tt.cfg, tt.streams)
			if tt.wantErr != nil {
				if !errors.Is(err, tt.wantErr) {
					t.Fatalf("FairShareE error = %v, want %v", err, tt.wantErr)
				}
				// The legacy entry point must also not hang or panic on the
				// same input; it reports zeros instead.
				if _, ms := FairShare(tt.cfg, tt.streams); ms != 0 {
					t.Errorf("FairShare makespan = %v on invalid input, want 0", ms)
				}
				return
			}
			if err != nil {
				t.Fatalf("FairShareE: %v", err)
			}
			if len(finish) != len(tt.streams) {
				t.Fatalf("finish has %d entries for %d streams", len(finish), len(tt.streams))
			}
			if makespan < tt.min || makespan > tt.max {
				t.Errorf("makespan = %v, want within [%v, %v]", makespan, tt.min, tt.max)
			}

			// The recording window agrees with the standalone simulation.
			link, lerr := NewLink(tt.cfg)
			if lerr != nil {
				t.Fatalf("NewLink: %v", lerr)
			}
			got, werr := link.TransferWindowE(tt.streams)
			if werr != nil {
				t.Fatalf("TransferWindowE: %v", werr)
			}
			if got != makespan {
				t.Errorf("TransferWindowE = %v, FairShareE makespan = %v", got, makespan)
			}
		})
	}
}

// TestTopologyEdgeCases covers fleet-shaped topology edges: the
// single-node fleet, node detach (including mid-window transfer
// attempts), double detach, and rejoin-after-churn stats continuity.
func TestTopologyEdgeCases(t *testing.T) {
	wan := DefaultLAN().WithBandwidth(20)
	lan := DefaultLAN().WithBandwidth(1000)

	t.Run("single-node fleet", func(t *testing.T) {
		topo, err := NewTopology(wan, lan)
		if err != nil {
			t.Fatal(err)
		}
		n := topo.Node("only")
		if _, err := n.WAN.TransferE(1000); err != nil {
			t.Fatalf("single-node transfer: %v", err)
		}
		if got := topo.WANStats().Bytes; got != 1000 {
			t.Errorf("WAN bytes = %d, want 1000", got)
		}
		if got := topo.LANStats().Bytes; got != 0 {
			t.Errorf("LAN bytes = %d, want 0 (no peers to talk to)", got)
		}
	})

	t.Run("detach unknown node", func(t *testing.T) {
		topo, err := NewTopology(wan, lan)
		if err != nil {
			t.Fatal(err)
		}
		if err := topo.Detach("ghost"); !errors.Is(err, ErrUnknownNode) {
			t.Errorf("Detach(ghost) = %v, want ErrUnknownNode", err)
		}
	})

	t.Run("detach closes links mid-transfer", func(t *testing.T) {
		topo, err := NewTopology(wan, lan)
		if err != nil {
			t.Fatal(err)
		}
		n := topo.Node("a")
		n.WAN.Transfer(500)
		if err := topo.Detach("a"); err != nil {
			t.Fatalf("Detach: %v", err)
		}
		// Every transfer shape on the detached node's links is a typed
		// error, not a hang or silent accounting.
		if _, err := n.WAN.TransferE(100); !errors.Is(err, ErrLinkClosed) {
			t.Errorf("TransferE after detach = %v, want ErrLinkClosed", err)
		}
		if _, err := n.WAN.TransferBatchE(3, 100); !errors.Is(err, ErrLinkClosed) {
			t.Errorf("TransferBatchE after detach = %v, want ErrLinkClosed", err)
		}
		if _, err := n.LAN.TransferWindowE([]Stream{{Bytes: 10, Requests: 1}}); !errors.Is(err, ErrLinkClosed) {
			t.Errorf("TransferWindowE after detach = %v, want ErrLinkClosed", err)
		}
		// The untyped variants record nothing rather than pricing traffic
		// for a node that left.
		before := topo.WANStats()
		if cost := n.WAN.Transfer(100); cost != 0 {
			t.Errorf("Transfer on closed link cost %v, want 0", cost)
		}
		if after := topo.WANStats(); after != before {
			t.Errorf("closed-link transfer changed stats: %+v -> %+v", before, after)
		}
		if err := topo.Detach("a"); !errors.Is(err, ErrUnknownNode) {
			t.Errorf("double Detach = %v, want ErrUnknownNode", err)
		}
	})

	t.Run("rejoin keeps aggregate stats monotonic", func(t *testing.T) {
		topo, err := NewTopology(wan, lan)
		if err != nil {
			t.Fatal(err)
		}
		topo.Node("a").WAN.Transfer(700)
		if err := topo.Detach("a"); err != nil {
			t.Fatal(err)
		}
		if topo.Attached("a") {
			t.Error("node still attached after Detach")
		}
		fresh := topo.Node("a")
		if !topo.Attached("a") {
			t.Error("node not attached after rejoin")
		}
		if fresh.WAN.Closed() {
			t.Error("rejoined node got a closed link")
		}
		fresh.WAN.Transfer(300)
		if got := topo.WANStats().Bytes; got != 1000 {
			t.Errorf("WAN bytes across churn = %d, want 1000 (700 pre-detach + 300 post)", got)
		}
	})

	t.Run("degrade and recover WAN", func(t *testing.T) {
		topo, err := NewTopology(wan, lan)
		if err != nil {
			t.Fatal(err)
		}
		a := topo.Node("a")
		fast := a.WAN.TransferCost(1 << 20)
		if err := topo.SetWANConfig(wan.WithBandwidth(2)); err != nil {
			t.Fatalf("SetWANConfig: %v", err)
		}
		if slow := a.WAN.TransferCost(1 << 20); slow <= fast {
			t.Errorf("degraded cost %v not above healthy cost %v", slow, fast)
		}
		// New attachments inherit the degraded config.
		b := topo.Node("b")
		if got := b.WAN.Config().BytesPerSecond; got != Mbps(2) {
			t.Errorf("new node bandwidth = %f, want degraded %f", got, Mbps(2))
		}
		if err := topo.SetWANConfig(LinkConfig{}); !errors.Is(err, ErrBadLink) {
			t.Errorf("SetWANConfig(zero) = %v, want ErrBadLink", err)
		}
		if err := topo.SetWANConfig(wan); err != nil {
			t.Fatalf("recover: %v", err)
		}
		if got := a.WAN.TransferCost(1 << 20); got != fast {
			t.Errorf("recovered cost = %v, want %v", got, fast)
		}
	})
}
