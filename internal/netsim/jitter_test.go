package netsim

import (
	"errors"
	"testing"
	"time"
)

// TestServiceFactorScalesServeTime checks the straggler knob: a 10x
// factor multiplies the server-side cost (overhead + wire) while the
// RTT stays unscaled, and factor 1 restores the exact nominal cost.
func TestServiceFactorScalesServeTime(t *testing.T) {
	cfg := DefaultLAN()
	nominal, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := slow.SetServiceFactor(10); err != nil {
		t.Fatal(err)
	}
	const size = 1 << 20
	base := nominal.Transfer(size)
	got := slow.Transfer(size)
	want := cfg.RTT + 10*(base-cfg.RTT)
	if got != want {
		t.Errorf("10x factor cost = %v, want %v (base %v)", got, want, base)
	}
	if f := slow.ServiceFactor(); f != 10 {
		t.Errorf("ServiceFactor = %v, want 10", f)
	}
	if err := slow.SetServiceFactor(1); err != nil {
		t.Fatal(err)
	}
	if back := slow.Transfer(size); back != base {
		t.Errorf("factor 1 cost = %v, want nominal %v", back, base)
	}
	if err := slow.SetServiceFactor(0); !errors.Is(err, ErrBadLink) {
		t.Errorf("SetServiceFactor(0) = %v, want ErrBadLink", err)
	}
	if err := slow.SetServiceFactor(-2); !errors.Is(err, ErrBadLink) {
		t.Errorf("SetServiceFactor(-2) = %v, want ErrBadLink", err)
	}
}

// TestServiceJitterDeterministic checks that the same seed replays the
// same per-request cost sequence, a different seed diverges, and every
// jittered cost stays within [nominal, nominal*(1+amp)] on the
// server-side component.
func TestServiceJitterDeterministic(t *testing.T) {
	cfg := DefaultLAN()
	mk := func(seed uint64) *Link {
		l, err := NewLink(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.SetServiceJitter(seed, 0.5); err != nil {
			t.Fatal(err)
		}
		return l
	}
	a, b, c := mk(7), mk(7), mk(8)
	nominal, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const size = 1 << 18
	base := nominal.TransferCost(size)
	ceiling := cfg.RTT + time.Duration(float64(base-cfg.RTT)*1.5)
	diverged := false
	for i := 0; i < 64; i++ {
		ca, cb, cc := a.Transfer(size), b.Transfer(size), c.Transfer(size)
		if ca != cb {
			t.Fatalf("request %d: same seed diverged: %v vs %v", i, ca, cb)
		}
		if ca != cc {
			diverged = true
		}
		if ca < base || ca > ceiling {
			t.Errorf("request %d: jittered cost %v outside [%v, %v]", i, ca, base, ceiling)
		}
	}
	if !diverged {
		t.Error("different seeds produced identical 64-request cost sequences")
	}
	if err := a.SetServiceJitter(1, -0.1); !errors.Is(err, ErrBadLink) {
		t.Errorf("negative amplitude = %v, want ErrBadLink", err)
	}
}

// TestQuoteRecordMatchesTransfer checks the split API prices and
// accounts exactly like the one-shot calls, including the jitter stream
// position.
func TestQuoteRecordMatchesTransfer(t *testing.T) {
	cfg := DefaultLAN()
	oneshot, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	split, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []*Link{oneshot, split} {
		if err := l.SetServiceJitter(99, 0.4); err != nil {
			t.Fatal(err)
		}
	}
	sizes := []int64{100, 5000, 0, 1 << 16}
	for i, size := range sizes {
		want, err := oneshot.TransferE(size)
		if err != nil {
			t.Fatal(err)
		}
		got, err := split.TransferQuote(1, size)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("request %d: quote %v != transfer %v", i, got, want)
		}
		if err := split.RecordTransfer(1, size, got); err != nil {
			t.Fatal(err)
		}
	}
	// Batch form too.
	want, err := oneshot.TransferBatchE(3, 9000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := split.TransferQuote(3, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("batch quote %v != batch transfer %v", got, want)
	}
	if err := split.RecordTransfer(3, 9000, got); err != nil {
		t.Fatal(err)
	}
	if a, b := oneshot.Stats(), split.Stats(); a != b {
		t.Errorf("split accounting %+v != one-shot %+v", b, a)
	}

	// Partial record: a cancelled transfer commits fewer bytes at a
	// shorter busy time.
	before := split.Stats()
	if err := split.RecordTransfer(1, 42, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	after := split.Stats()
	if after.Bytes-before.Bytes != 42 || after.Elapsed-before.Elapsed != time.Millisecond {
		t.Errorf("partial record delta = %+v -> %+v", before, after)
	}
	if err := split.RecordTransfer(1, -1, 0); !errors.Is(err, ErrBadStream) {
		t.Errorf("negative record = %v, want ErrBadStream", err)
	}
	if _, err := split.TransferQuote(1, -1); !errors.Is(err, ErrBadStream) {
		t.Errorf("negative quote = %v, want ErrBadStream", err)
	}
	split.Close()
	if _, err := split.TransferQuote(1, 1); !errors.Is(err, ErrLinkClosed) {
		t.Errorf("closed quote = %v, want ErrLinkClosed", err)
	}
	if err := split.RecordTransfer(1, 1, 1); !errors.Is(err, ErrLinkClosed) {
		t.Errorf("closed record = %v, want ErrLinkClosed", err)
	}
}

// TestPrefixBytes checks the cancelled-transfer discount: no bytes
// before the RTT+overhead phase ends, all bytes at completion, and a
// linear ramp across the wire phase.
func TestPrefixBytes(t *testing.T) {
	cfg := LinkConfig{
		BytesPerSecond:  Mbps(8), // 1 MB/s: 1e6 bytes take 1s on the wire
		RTT:             100 * time.Millisecond,
		RequestOverhead: 400 * time.Millisecond,
	}
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const size = int64(1e6)
	cost := l.TransferCost(size) // 100ms + 400ms + 1s = 1.5s
	if cost != 1500*time.Millisecond {
		t.Fatalf("cost = %v, want 1.5s", cost)
	}
	cases := []struct {
		busy time.Duration
		want int64
	}{
		{0, 0},
		{300 * time.Millisecond, 0},       // still in RTT+overhead
		{500 * time.Millisecond, 0},       // wire phase starts here
		{time.Second, 500000},             // halfway through the wire phase
		{1400 * time.Millisecond, 900000}, // 90% through
		{cost, size},                      // completed
		{2 * time.Second, size},           // past completion
	}
	for _, tc := range cases {
		if got := l.PrefixBytes(1, size, tc.busy, cost); got != tc.want {
			t.Errorf("PrefixBytes(busy %v) = %d, want %d", tc.busy, got, tc.want)
		}
	}
	// A 10x straggler cancelled during its stretched overhead phase has
	// moved nothing.
	if err := l.SetServiceFactor(10); err != nil {
		t.Fatal(err)
	}
	slowCost := l.TransferCost(size) // 100ms + 10*(400ms + 1s) = 14.1s
	if got := l.PrefixBytes(1, size, 3*time.Second, slowCost); got != 0 {
		t.Errorf("straggler cancelled in overhead phase moved %d bytes, want 0", got)
	}
	if got := l.PrefixBytes(1, size, slowCost, slowCost); got != size {
		t.Errorf("straggler completed = %d bytes, want %d", got, size)
	}
	if got := l.PrefixBytes(0, size, time.Second, cost); got != 0 {
		t.Errorf("n=0 moved %d bytes, want 0", got)
	}
}

// TestTopologyServiceKnobs checks per-node factor routing, the typed
// unknown-node error, and that topology-level jitter derives stable
// per-node streams regardless of attachment order.
func TestTopologyServiceKnobs(t *testing.T) {
	wan, lan := DefaultLAN(), DefaultLAN()
	topo, err := NewTopology(wan, lan)
	if err != nil {
		t.Fatal(err)
	}
	a := topo.Node("a")
	if err := topo.SetServiceFactor("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := topo.SetServiceFactor("ghost", 10); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node factor = %v, want ErrUnknownNode", err)
	}
	b := topo.Node("b")
	const size = 1 << 18
	ca, cb := a.WAN.Transfer(size), b.WAN.Transfer(size)
	if ca <= cb {
		t.Errorf("straggler cost %v not above nominal %v", ca, cb)
	}
	if f := a.LAN.ServiceFactor(); f != 10 {
		t.Errorf("straggler LAN factor = %v, want 10", f)
	}

	// Same jitter seed, different attach orders: per-node streams match.
	mk := func(ids ...string) *Topology {
		tp, err := NewTopology(wan, lan)
		if err != nil {
			t.Fatal(err)
		}
		if err := tp.SetServiceJitter(1234, 0.5); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			tp.Node(id)
		}
		return tp
	}
	t1 := mk("x", "y", "z")
	t2 := mk("z", "x", "y")
	for _, id := range []string{"x", "y", "z"} {
		for i := 0; i < 16; i++ {
			c1 := t1.Node(id).WAN.Transfer(size)
			c2 := t2.Node(id).WAN.Transfer(size)
			if c1 != c2 {
				t.Fatalf("node %s request %d: %v != %v across attach orders", id, i, c1, c2)
			}
		}
	}
	if err := t1.SetServiceJitter(1, -1); !errors.Is(err, ErrBadLink) {
		t.Errorf("negative topology amp = %v, want ErrBadLink", err)
	}
}
