// Package cache implements the first level of Gear's three-level storage
// structure (§III-D1 of the paper): a local, content-addressed pool of
// Gear files shared by every Gear image and container on a client.
//
// Files enter the cache when they are downloaded from the Gear Registry
// (or extracted by a commit) and are hard-linked into container indexes.
// Per the paper, "users can decide how much storage it can occupy and can
// apply replacement algorithms on it, such as FIFO or LRU. Files that are
// not linked to Gear indexes are candidates for replacement" — the link
// count on the shared content is the pin.
package cache

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/telemetry"
	"github.com/gear-image/gear/internal/vfs"
)

// Policy selects the replacement algorithm.
type Policy int

// Replacement policies from §III-D1.
const (
	FIFO Policy = iota + 1
	LRU
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case LRU:
		return "lru"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Errors returned by cache operations.
var (
	ErrBadPolicy = errors.New("unknown replacement policy")
	ErrTooLarge  = errors.New("object larger than cache capacity")
)

type entry struct {
	fp      hashing.Fingerprint
	content *vfs.Content
	elem    *list.Element
}

// Hooks observe cache membership transitions. Peer distribution wires
// them to a tracker: OnAdmit announces a newly cached file as shareable,
// OnEvict withdraws it. Hooks run outside the cache lock (so they may
// take their own locks or call back into the cache) and fire exactly
// once per transition: OnAdmit when a fingerprint enters the cache,
// OnEvict whenever one leaves — policy eviction, Drop, or Clear.
//
// Because hooks fire after the lock is released, a concurrent admit and
// evict of the same fingerprint may deliver their callbacks out of
// order; consumers that mirror membership (trackers) must tolerate a
// briefly stale view, which peer fetch paths already do by verifying
// and falling back.
type Hooks struct {
	OnAdmit func(fp hashing.Fingerprint, size int64)
	OnEvict func(fp hashing.Fingerprint, size int64)
}

// Cache is the shared Gear file cache. It is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int64 // bytes; 0 means unlimited
	policy   Policy
	entries  map[hashing.Fingerprint]*entry
	order    *list.List // front = next eviction candidate
	hooks    Hooks

	// Telemetry handles are the counters' storage — Stats is a view
	// over them, so a shared registry sees cache traffic live. The
	// byte gauge (occupancy) is only mutated under mu.
	objects   *telemetry.Gauge
	bytes     *telemetry.Gauge
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
}

// New returns a cache with the given byte capacity (0 = unlimited) and
// replacement policy, publishing into a private telemetry registry.
func New(capacity int64, policy Policy) (*Cache, error) {
	return NewTelemetered(capacity, policy, nil)
}

// NewTelemetered is New publishing cache.* metrics into reg (nil gets
// live unregistered handles, making telemetry impossible to forget).
func NewTelemetered(capacity int64, policy Policy, reg *telemetry.Registry) (*Cache, error) {
	if policy != FIFO && policy != LRU {
		return nil, fmt.Errorf("cache: policy %d: %w", policy, ErrBadPolicy)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("cache: negative capacity: %w", ErrTooLarge)
	}
	c := &Cache{
		capacity:  capacity,
		policy:    policy,
		entries:   make(map[hashing.Fingerprint]*entry),
		order:     list.New(),
		objects:   reg.Gauge("cache.objects"),
		bytes:     reg.Gauge("cache.bytes"),
		hits:      reg.Counter("cache.hits"),
		misses:    reg.Counter("cache.misses"),
		evictions: reg.Counter("cache.evictions"),
	}
	reg.Gauge("cache.capacity").Set(capacity)
	return c, nil
}

// SetHooks installs membership hooks. Install them before the cache
// sees traffic; SetHooks is not synchronized against in-flight
// operations.
func (c *Cache) SetHooks(h Hooks) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hooks = h
}

// Get returns the shared content for fp if cached. Under LRU a hit
// refreshes the entry's position.
func (c *Cache) Get(fp hashing.Fingerprint) (*vfs.Content, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	if c.policy == LRU {
		c.order.MoveToBack(e.elem)
	}
	return e.content, true
}

// Contains reports whether fp is cached without affecting recency.
func (c *Cache) Contains(fp hashing.Fingerprint) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[fp]
	return ok
}

// Peek returns the shared content for fp without touching hit/miss
// stats or recency. Peer serves read through Peek so exporting the
// cache to the cluster does not distort the owner's replacement
// decisions or cache-effectiveness accounting.
func (c *Cache) Peek(fp hashing.Fingerprint) (*vfs.Content, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if !ok {
		return nil, false
	}
	return e.content, true
}

// Put inserts data under fp and returns the shared content (existing
// content if fp was already cached). Inserting may evict unpinned
// entries; if the cache cannot make room because every entry is pinned
// by a live hard link, the insert still succeeds and the cache runs
// over capacity — correctness over strictness, matching how a filesystem
// cannot reclaim a file that is still linked.
func (c *Cache) Put(fp hashing.Fingerprint, data []byte) (*vfs.Content, error) {
	if err := fp.Validate(); err != nil {
		return nil, fmt.Errorf("cache: put: %w", err)
	}
	c.mu.Lock()
	if e, ok := c.entries[fp]; ok {
		if c.policy == LRU {
			c.order.MoveToBack(e.elem)
		}
		content := e.content
		c.mu.Unlock()
		return content, nil
	}
	size := int64(len(data))
	if c.capacity > 0 && size > c.capacity {
		c.mu.Unlock()
		return nil, fmt.Errorf("cache: put %s (%d bytes): %w", fp, size, ErrTooLarge)
	}
	evicted := c.makeRoom(size)
	content := vfs.NewContent(data)
	e := &entry{fp: fp, content: content}
	e.elem = c.order.PushBack(e)
	c.entries[fp] = e
	c.objects.Add(1)
	c.bytes.Add(size)
	hooks := c.hooks
	c.mu.Unlock()
	fireEvicts(hooks, evicted)
	if hooks.OnAdmit != nil {
		hooks.OnAdmit(fp, size)
	}
	return content, nil
}

// makeRoom evicts unpinned entries (front first) until size fits,
// returning the removed entries so the caller can fire hooks after
// releasing the lock. Pinned entries (link count > 0) are skipped.
func (c *Cache) makeRoom(size int64) []*entry {
	if c.capacity == 0 {
		return nil
	}
	var evicted []*entry
	elem := c.order.Front()
	for c.bytes.Value()+size > c.capacity && elem != nil {
		next := elem.Next()
		e, ok := elem.Value.(*entry)
		if !ok {
			// The order list only ever holds *entry values.
			elem = next
			continue
		}
		if e.content.Nlink() == 0 {
			c.removeLocked(e)
			evicted = append(evicted, e)
		}
		elem = next
	}
	return evicted
}

func (c *Cache) removeLocked(e *entry) {
	c.order.Remove(e.elem)
	delete(c.entries, e.fp)
	c.objects.Add(-1)
	c.bytes.Add(-e.content.Size())
	c.evictions.Inc()
}

// fireEvicts delivers OnEvict for every removed entry, outside the lock.
func fireEvicts(hooks Hooks, evicted []*entry) {
	if hooks.OnEvict == nil {
		return
	}
	for _, e := range evicted {
		hooks.OnEvict(e.fp, e.content.Size())
	}
}

// Drop removes fp from the cache regardless of policy (used when a file
// is superseded). Pinned contents stay alive through their links; the
// cache simply forgets them. Returns whether fp was present.
func (c *Cache) Drop(fp hashing.Fingerprint) bool {
	c.mu.Lock()
	e, ok := c.entries[fp]
	if !ok {
		c.mu.Unlock()
		return false
	}
	c.removeLocked(e)
	c.evictions.Add(-1) // explicit drops are not policy evictions
	hooks := c.hooks
	c.mu.Unlock()
	fireEvicts(hooks, []*entry{e})
	return true
}

// Clear empties the cache (the paper's cold-cache experiment resets the
// client between deployments this way).
func (c *Cache) Clear() {
	c.mu.Lock()
	evicted := make([]*entry, 0, len(c.entries))
	var freed int64
	for _, e := range c.entries {
		evicted = append(evicted, e)
		freed += e.content.Size()
	}
	c.entries = make(map[hashing.Fingerprint]*entry)
	c.order.Init()
	c.objects.Add(-int64(len(evicted)))
	c.bytes.Add(-freed)
	hooks := c.hooks
	c.mu.Unlock()
	fireEvicts(hooks, evicted)
}

// Stats is a snapshot of cache effectiveness: a view over the cache's
// telemetry handles (cache.* metrics), kept for existing callers.
type Stats struct {
	Objects   int   `json:"objects"`
	UsedBytes int64 `json:"usedBytes"`
	Capacity  int64 `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// HitRatio returns hits/(hits+misses), or 0 with no traffic.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Objects:   len(c.entries),
		UsedBytes: c.bytes.Value(),
		Capacity:  c.capacity,
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
	}
}
