package cache

import (
	"fmt"
	"sync"
	"testing"

	"github.com/gear-image/gear/internal/vfs"
)

// TestConcurrentLinkPins hammers a bounded cache with concurrent Put
// churn while other goroutines pin and unpin entries by hard-linking
// their content into index trees — the §III-D1 invariant that linked
// files are never replacement candidates must hold under full
// concurrency, for both policies. Run with -race.
func TestConcurrentLinkPins(t *testing.T) {
	for _, policy := range []Policy{FIFO, LRU} {
		t.Run(policy.String(), func(t *testing.T) {
			c := mustNew(t, 64, policy)

			// A permanently pinned entry: linked into an index before the
			// churn starts, it must survive arbitrary pressure.
			pinnedFP := fpOf("pinned forever")
			content, err := c.Put(pinnedFP, []byte("12345678"))
			if err != nil {
				t.Fatal(err)
			}
			pinIndex := vfs.New()
			if err := pinIndex.MkdirAll("/index", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := pinIndex.PutContent("/index/pinned", content, 0o644); err != nil {
				t.Fatal(err)
			}

			const (
				writers = 4
				pinners = 4
				rounds  = 200
			)
			var wg sync.WaitGroup
			// Writers churn the cache well past capacity.
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						fp := fpOf(fmt.Sprintf("churn %d %d", g, i))
						if _, err := c.Put(fp, []byte("12345678")); err != nil {
							t.Errorf("put: %v", err)
							return
						}
						c.Get(fp)
					}
				}(g)
			}
			// Pinners repeatedly insert, link, touch, and unlink their own
			// entries, racing the writers' evictions.
			for g := 0; g < pinners; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					f := vfs.New()
					if err := f.MkdirAll("/index", 0o755); err != nil {
						t.Errorf("mkdir: %v", err)
						return
					}
					fp := fpOf(fmt.Sprintf("pinner %d", g))
					for i := 0; i < rounds; i++ {
						content, err := c.Put(fp, []byte("abcdefgh"))
						if err != nil {
							t.Errorf("put: %v", err)
							return
						}
						if err := f.PutContent("/index/file", content, 0o644); err != nil {
							t.Errorf("link: %v", err)
							return
						}
						// While linked, the entry must be unevictable no
						// matter how hard the writers churn.
						if !c.Contains(fp) {
							t.Errorf("pinner %d round %d: pinned entry evicted", g, i)
							return
						}
						if got, ok := c.Get(fp); ok && string(got.Data()) != "abcdefgh" {
							t.Errorf("pinner %d: content corrupted", g)
							return
						}
						if err := f.Remove("/index/file"); err != nil {
							t.Errorf("unlink: %v", err)
							return
						}
					}
				}(g)
			}
			wg.Wait()

			if !c.Contains(pinnedFP) {
				t.Error("permanently pinned entry evicted during churn")
			}
			got, ok := c.Get(pinnedFP)
			if !ok || string(got.Data()) != "12345678" {
				t.Error("permanently pinned content lost or corrupted")
			}
			// The cache stayed consistent: stats add up and no evicted
			// entry still answers Contains.
			st := c.Stats()
			if st.Evictions == 0 {
				t.Error("churn produced no evictions; test exerted no pressure")
			}
		})
	}
}

// TestConcurrentGetPutConsistency checks that concurrent readers always
// observe either a miss or the full correct payload, never a torn entry.
func TestConcurrentGetPutConsistency(t *testing.T) {
	c := mustNew(t, 256, LRU)
	const keys = 16
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := (g + i) % keys
				payload := fmt.Sprintf("payload-%02d", k)
				fp := fpOf(payload)
				if g%2 == 0 {
					if _, err := c.Put(fp, []byte(payload)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				} else if got, ok := c.Get(fp); ok && string(got.Data()) != payload {
					t.Errorf("key %d: read %q", k, got.Data())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
