package cache

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/vfs"
)

func fpOf(s string) hashing.Fingerprint { return hashing.FingerprintBytes([]byte(s)) }

func mustNew(t *testing.T, capacity int64, p Policy) *Cache {
	t.Helper()
	c, err := New(capacity, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(10, Policy(0)); !errors.Is(err, ErrBadPolicy) {
		t.Errorf("err = %v, want ErrBadPolicy", err)
	}
	if _, err := New(-1, FIFO); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || LRU.String() != "lru" {
		t.Error("policy names wrong")
	}
	if Policy(7).String() != "Policy(7)" {
		t.Error("unknown policy name wrong")
	}
}

func TestPutGet(t *testing.T) {
	c := mustNew(t, 0, LRU)
	data := []byte("file content")
	fp := fpOf("k")
	content, err := c.Put(fp, data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(fp)
	if !ok || got != content {
		t.Error("Get did not return the shared content")
	}
	if string(got.Data()) != "file content" {
		t.Error("content mismatch")
	}
	if _, ok := c.Get(fpOf("missing")); ok {
		t.Error("Get(missing) = true")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Objects != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %f", s.HitRatio())
	}
}

func TestPutIdempotent(t *testing.T) {
	c := mustNew(t, 0, FIFO)
	fp := fpOf("k")
	a, err := c.Put(fp, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Put(fp, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("duplicate Put created a second content")
	}
	if s := c.Stats(); s.Objects != 1 || s.UsedBytes != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPutValidatesFingerprint(t *testing.T) {
	c := mustNew(t, 0, FIFO)
	if _, err := c.Put("bogus", []byte("x")); !errors.Is(err, hashing.ErrMalformed) {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

func TestPutRejectsOversized(t *testing.T) {
	c := mustNew(t, 4, FIFO)
	if _, err := c.Put(fpOf("big"), []byte("12345")); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestFIFOEviction(t *testing.T) {
	c := mustNew(t, 10, FIFO)
	for i := 0; i < 3; i++ {
		if _, err := c.Put(fpOf(fmt.Sprint(i)), []byte("1234")); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 10, each entry 4 bytes: third insert must evict the first.
	if c.Contains(fpOf("0")) {
		t.Error("FIFO kept the oldest entry")
	}
	if !c.Contains(fpOf("1")) || !c.Contains(fpOf("2")) {
		t.Error("FIFO evicted the wrong entry")
	}
	if s := c.Stats(); s.Evictions != 1 || s.UsedBytes != 8 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFIFOIgnoresAccessOrder(t *testing.T) {
	c := mustNew(t, 10, FIFO)
	if _, err := c.Put(fpOf("0"), []byte("1234")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(fpOf("1"), []byte("1234")); err != nil {
		t.Fatal(err)
	}
	c.Get(fpOf("0")) // access does not rescue under FIFO
	if _, err := c.Put(fpOf("2"), []byte("1234")); err != nil {
		t.Fatal(err)
	}
	if c.Contains(fpOf("0")) {
		t.Error("FIFO honored access recency")
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustNew(t, 10, LRU)
	if _, err := c.Put(fpOf("0"), []byte("1234")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(fpOf("1"), []byte("1234")); err != nil {
		t.Fatal(err)
	}
	c.Get(fpOf("0")) // refresh 0; 1 becomes LRU victim
	if _, err := c.Put(fpOf("2"), []byte("1234")); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(fpOf("0")) {
		t.Error("LRU evicted the recently used entry")
	}
	if c.Contains(fpOf("1")) {
		t.Error("LRU kept the least recently used entry")
	}
}

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	c := mustNew(t, 8, FIFO)
	content, err := c.Put(fpOf("pinned"), []byte("1234"))
	if err != nil {
		t.Fatal(err)
	}
	// Hard link it into an index — the paper's "linked to Gear indexes".
	f := vfs.New()
	if err := f.PutContent("/index/file", content, 0o644); err == nil {
		t.Fatal("expected missing parent error")
	}
	if err := f.MkdirAll("/index", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.PutContent("/index/file", content, 0o644); err != nil {
		t.Fatal(err)
	}
	// Fill past capacity; pinned entry must survive.
	if _, err := c.Put(fpOf("a"), []byte("1234")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(fpOf("b"), []byte("1234")); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(fpOf("pinned")) {
		t.Error("pinned entry evicted")
	}
	// Unlink and trigger another eviction round: now it may go.
	if err := f.Remove("/index/file"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(fpOf("c"), []byte("1234")); err != nil {
		t.Fatal(err)
	}
	if c.Contains(fpOf("pinned")) {
		t.Error("unpinned entry not evicted under pressure")
	}
}

func TestDrop(t *testing.T) {
	c := mustNew(t, 0, FIFO)
	fp := fpOf("k")
	if _, err := c.Put(fp, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !c.Drop(fp) {
		t.Error("Drop(existing) = false")
	}
	if c.Drop(fp) {
		t.Error("Drop(missing) = true")
	}
	if s := c.Stats(); s.Objects != 0 || s.UsedBytes != 0 || s.Evictions != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestClear(t *testing.T) {
	c := mustNew(t, 0, LRU)
	for i := 0; i < 5; i++ {
		if _, err := c.Put(fpOf(fmt.Sprint(i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	c.Clear()
	s := c.Stats()
	if s.Objects != 0 || s.UsedBytes != 0 {
		t.Errorf("stats after clear = %+v", s)
	}
	if c.Contains(fpOf("0")) {
		t.Error("entry survived Clear")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := mustNew(t, 1<<20, LRU)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("obj-%d", i%50)
				if i%2 == 0 {
					if _, err := c.Put(fpOf(key), []byte(key)); err != nil {
						t.Error(err)
						return
					}
				} else {
					c.Get(fpOf(key))
				}
			}
		}(w)
	}
	wg.Wait()
	if s := c.Stats(); s.Objects != 25 {
		t.Errorf("objects = %d, want 25 (only even iterations insert)", s.Objects)
	}
}

// Property: UsedBytes always equals the sum of cached entry sizes, and
// never exceeds capacity while no entry is pinned.
func TestCapacityInvariantProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		policy := FIFO
		if seed%2 == 0 {
			policy = LRU
		}
		c, err := New(100, policy)
		if err != nil {
			return false
		}
		live := make(map[hashing.Fingerprint]int)
		for op := 0; op < 200; op++ {
			key := fmt.Sprintf("k%d", rng.Intn(30))
			fp := fpOf(key)
			switch rng.Intn(3) {
			case 0:
				data := make([]byte, 1+rng.Intn(20))
				if _, err := c.Put(fp, data); err != nil {
					return false
				}
				live[fp] = len(data)
			case 1:
				c.Get(fp)
			default:
				c.Drop(fp)
				delete(live, fp)
			}
			s := c.Stats()
			if s.UsedBytes > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCacheGet(b *testing.B) {
	c, err := New(0, LRU)
	if err != nil {
		b.Fatal(err)
	}
	fps := make([]hashing.Fingerprint, 1000)
	for i := range fps {
		fps[i] = fpOf(fmt.Sprint(i))
		if _, err := c.Put(fps[i], []byte("data")); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(fps[i%len(fps)])
	}
}
