package cache

import (
	"fmt"
	"sync"
	"testing"

	"github.com/gear-image/gear/internal/hashing"
)

// hookRecorder counts OnAdmit/OnEvict deliveries per fingerprint. It is
// safe for concurrent use, like a peer tracker.
type hookRecorder struct {
	mu      sync.Mutex
	admits  map[hashing.Fingerprint]int
	evicts  map[hashing.Fingerprint]int
	members map[hashing.Fingerprint]bool
}

func newHookRecorder() *hookRecorder {
	return &hookRecorder{
		admits:  make(map[hashing.Fingerprint]int),
		evicts:  make(map[hashing.Fingerprint]int),
		members: make(map[hashing.Fingerprint]bool),
	}
}

func (r *hookRecorder) hooks() Hooks {
	return Hooks{
		OnAdmit: func(fp hashing.Fingerprint, size int64) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.admits[fp]++
			r.members[fp] = true
		},
		OnEvict: func(fp hashing.Fingerprint, size int64) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.evicts[fp]++
			delete(r.members, fp)
		},
	}
}

// TestEvictionHooksFireExactlyOnce fills a bounded cache past capacity
// under both policies and checks every eviction delivered exactly one
// OnEvict, every insert exactly one OnAdmit, and that the recorder's
// mirrored membership matches the cache at the end — the invariant a
// peer tracker depends on for announce/withdraw.
func TestEvictionHooksFireExactlyOnce(t *testing.T) {
	for _, policy := range []Policy{FIFO, LRU} {
		t.Run(policy.String(), func(t *testing.T) {
			rec := newHookRecorder()
			c := mustNew(t, 64, policy)
			c.SetHooks(rec.hooks())

			var fps []hashing.Fingerprint
			for i := 0; i < 50; i++ {
				data := []byte(fmt.Sprintf("object %02d padpad", i)) // 16 B each
				fp := hashing.FingerprintBytes(data)
				fps = append(fps, fp)
				if _, err := c.Put(fp, data); err != nil {
					t.Fatal(err)
				}
			}
			// Duplicate puts are membership no-ops: no extra admits.
			for _, fp := range fps[len(fps)-2:] {
				if _, err := c.Put(fp, []byte("ignored")); err != nil {
					t.Fatal(err)
				}
			}

			rec.mu.Lock()
			defer rec.mu.Unlock()
			for _, fp := range fps {
				if rec.admits[fp] != 1 {
					t.Errorf("%s: admits[%s] = %d, want 1", policy, fp, rec.admits[fp])
				}
				if n := rec.evicts[fp]; n > 1 {
					t.Errorf("%s: evicts[%s] = %d, want ≤1", policy, fp, n)
				}
				if rec.members[fp] != c.Contains(fp) {
					t.Errorf("%s: mirrored membership of %s = %v, cache says %v",
						policy, fp, rec.members[fp], c.Contains(fp))
				}
			}
			var evicted int
			for _, n := range rec.evicts {
				evicted += n
			}
			if int64(evicted) != c.Stats().Evictions {
				t.Errorf("%s: %d evict callbacks, cache counted %d evictions",
					policy, evicted, c.Stats().Evictions)
			}
			if evicted == 0 {
				t.Fatalf("%s: capacity pressure produced no evictions", policy)
			}
		})
	}
}

// TestDropAndClearFireEvictHooks verifies the non-policy removal paths
// also withdraw: an explicit Drop and a Clear both deliver OnEvict
// exactly once per removed fingerprint.
func TestDropAndClearFireEvictHooks(t *testing.T) {
	rec := newHookRecorder()
	c := mustNew(t, 0, LRU)
	c.SetHooks(rec.hooks())

	a, b := fpOf("drop me"), fpOf("clear me")
	if _, err := c.Put(a, []byte("drop me")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(b, []byte("clear me")); err != nil {
		t.Fatal(err)
	}
	if !c.Drop(a) {
		t.Fatal("drop missed")
	}
	c.Drop(a) // absent: no second callback
	c.Clear()

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.evicts[a] != 1 || rec.evicts[b] != 1 {
		t.Errorf("evicts = %d/%d, want 1/1", rec.evicts[a], rec.evicts[b])
	}
	if len(rec.members) != 0 {
		t.Errorf("mirrored membership not empty after clear: %v", rec.members)
	}
}

// TestEvictionHooksRaceWithPeerServes churns a bounded cache so entries
// evict continuously while concurrent readers serve the same entries
// through Peek (the peer server's read path), then checks the
// exactly-once withdraw invariant survived. Run under -race.
func TestEvictionHooksRaceWithPeerServes(t *testing.T) {
	for _, policy := range []Policy{FIFO, LRU} {
		t.Run(policy.String(), func(t *testing.T) {
			rec := newHookRecorder()
			c := mustNew(t, 256, policy)
			c.SetHooks(rec.hooks())

			const writers, servers, rounds = 4, 4, 200
			var wg sync.WaitGroup
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						data := []byte(fmt.Sprintf("writer %d object %03d", g, i%37))
						if _, err := c.Put(hashing.FingerprintBytes(data), data); err != nil {
							t.Error(err)
							return
						}
					}
				}(g)
			}
			for g := 0; g < servers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						data := []byte(fmt.Sprintf("writer %d object %03d", g%writers, i%37))
						fp := hashing.FingerprintBytes(data)
						// A peer serve of an entry that may be mid-eviction.
						if content, ok := c.Peek(fp); ok && len(content.Data()) == 0 {
							t.Errorf("peer serve of %s returned empty content", fp)
							return
						}
					}
				}(g)
			}
			wg.Wait()

			rec.mu.Lock()
			defer rec.mu.Unlock()
			var evicts int
			for fp, n := range rec.admits {
				// A fingerprint may cycle admit→evict→admit many times, but
				// the counts must balance exactly once per transition: what
				// is still cached has one unmatched admit, the rest none.
				want := n
				if c.Contains(fp) {
					want = n - 1
				}
				if rec.evicts[fp] != want {
					t.Errorf("%s: %d admits vs %d evicts (cached=%v)",
						fp, n, rec.evicts[fp], c.Contains(fp))
				}
			}
			for fp, n := range rec.evicts {
				evicts += n
				if rec.admits[fp] == 0 {
					t.Errorf("%s withdrawn without ever being announced", fp)
				}
			}
			if int64(evicts) != c.Stats().Evictions {
				t.Errorf("%d evict callbacks, cache counted %d evictions", evicts, c.Stats().Evictions)
			}
		})
	}
}
