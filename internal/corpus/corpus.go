// Package corpus generates the synthetic image population that stands in
// for the paper's workload: the top-50 most popular Docker Hub image
// series (Table I), 971 images across six categories, with the
// inter-version and inter-series redundancy structure the paper measures
// in §II-D, Fig 2, Fig 7, and Table II.
//
// Everything is deterministic in (Options.Seed, Options.Scale): a series'
// images are built on demand, byte-for-byte reproducible, so experiments
// need not hold 971 images in memory.
//
// The generative model mirrors how real images are built:
//
//   - every image stacks three layers: an OS base package, a category
//     runtime package, and a series-specific application package;
//   - packages evolve by churning a fraction of their files per version
//     (cold files churn rarely; hot files — the ones a container touches
//     at launch — churn at the category's release cadence);
//   - base packages change only every few versions, and most non-distro
//     series share one OS base lineage, producing the cross-series
//     duplication that file-level dedup exploits (Fig 7b);
//   - file contents are a deterministic blend of repetitive (text-like)
//     and incompressible (binary-like) bytes so gzip behaves realistically.
//
// Scale 1.0 produces a corpus roughly 1/1000 of the paper's byte volume
// with the same distributions; ratios, not absolute bytes, are what the
// experiments reproduce.
package corpus

import (
	"errors"
	"fmt"
	"time"
)

// Category classifies a series per Table I.
type Category int

// The six categories of Table I.
const (
	Distro Category = iota + 1
	Language
	Database
	WebComponent
	Platform
	Others
)

// Categories lists all categories in Table I order.
func Categories() []Category {
	return []Category{Distro, Language, Database, WebComponent, Platform, Others}
}

// String returns the category's display name as the paper prints it.
func (c Category) String() string {
	switch c {
	case Distro:
		return "Linux Distro"
	case Language:
		return "Language"
	case Database:
		return "Database"
	case WebComponent:
		return "Web Component"
	case Platform:
		return "Application Platform"
	case Others:
		return "Others"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// MarshalText renders the category name in JSON map keys and fields.
func (c Category) MarshalText() ([]byte, error) {
	return []byte(c.String()), nil
}

// UnmarshalText parses a category display name.
func (c *Category) UnmarshalText(text []byte) error {
	for _, cat := range Categories() {
		if cat.String() == string(text) {
			*c = cat
			return nil
		}
	}
	return fmt.Errorf("corpus: unknown category %q", text)
}

// Series is one image series (e.g. "nginx") with its versions.
type Series struct {
	Name     string
	Category Category
	// NumVersions is how many versions were collected (20 for most
	// series; hello-world, centos and eclipse-mosquitto have fewer, per
	// §V-A).
	NumVersions int
}

// Tags returns the version tags, oldest first ("v01".."vNN").
func (s *Series) Tags() []string {
	tags := make([]string, s.NumVersions)
	for i := range tags {
		tags[i] = versionTag(i)
	}
	return tags
}

func versionTag(i int) string { return fmt.Sprintf("v%02d", i+1) }

// seriesTable is Table I with the paper's version-count exceptions chosen
// so the corpus totals exactly 971 images.
var seriesTable = []Series{
	// Linux Distro (6)
	{"alpine", Distro, 20}, {"amazonlinux", Distro, 20}, {"busybox", Distro, 20},
	{"centos", Distro, 10}, {"debian", Distro, 20}, {"ubuntu", Distro, 20},
	// Language (6)
	{"golang", Language, 20}, {"java", Language, 20}, {"openjdk", Language, 20},
	{"php", Language, 20}, {"python", Language, 20}, {"ruby", Language, 20},
	// Database (11)
	{"cassandra", Database, 20}, {"couchbase", Database, 20}, {"crate", Database, 20},
	{"elasticsearch", Database, 20}, {"influxdb", Database, 20}, {"mariadb", Database, 20},
	{"memcached", Database, 20}, {"mongo", Database, 20}, {"mysql", Database, 20},
	{"postgres", Database, 20}, {"redis", Database, 20},
	// Web Component (11)
	{"consul", WebComponent, 20}, {"eclipse-mosquitto", WebComponent, 16},
	{"haproxy", WebComponent, 20}, {"httpd", WebComponent, 20}, {"kibana", WebComponent, 20},
	{"kong", WebComponent, 20}, {"nginx", WebComponent, 20}, {"node", WebComponent, 20},
	{"telegraf", WebComponent, 20}, {"tomcat", WebComponent, 20}, {"traefik", WebComponent, 20},
	// Application Platform (8)
	{"drupal", Platform, 20}, {"ghost", Platform, 20}, {"jenkins", Platform, 20},
	{"nextcloud", Platform, 20}, {"rabbitmq", Platform, 20}, {"solr", Platform, 20},
	{"sonarqube", Platform, 20}, {"wordpress", Platform, 20},
	// Others (8)
	{"chronograf", Others, 20}, {"docker", Others, 20}, {"gradle", Others, 20},
	{"hello-world", Others, 5}, {"logstash", Others, 20}, {"maven", Others, 20},
	{"registry", Others, 20}, {"vault", Others, 20},
}

// profile holds the per-category generation parameters calibrated against
// the paper's measured ratios (see DESIGN.md §2 for the mapping).
type profile struct {
	// baseBytes/runtimeBytes/appBytes size the three packages at Scale 1.
	baseBytes    int
	runtimeBytes int
	appBytes     int
	// baseEvery is how many versions between OS-base (and runtime)
	// generation bumps.
	baseEvery int
	// coldChurn is the per-generation fraction of cold files replaced in
	// the runtime/app packages; it drives registry dedup (Fig 7a).
	coldChurn float64
	// appHotChurn is the per-version fraction of hot app files replaced
	// (recompiled binaries and the like); it is the main driver of the
	// necessary-data redundancy of Fig 2.
	appHotChurn float64
	// baseHotFrac/rtHotFrac/appHotFrac are the fractions of each
	// package's files a launch touches. Combined they keep the necessary
	// set within the paper's 6.4%-33.3% on-demand window, weighted
	// heavily toward the app package.
	baseHotFrac float64
	rtHotFrac   float64
	appHotFrac  float64
	// sharedBase marks categories whose series are built on a common OS
	// base lineage (everything but the distro images themselves).
	sharedBase bool
	// taskCompute is the modeled post-launch task duration for Fig 9's
	// run phase.
	taskCompute time.Duration
}

// Shared-package churn parameters. These are global — NOT per category —
// because the osbase package's content must be a pure function of its
// generation for cross-category dedup to hold.
const (
	osbaseColdChurn = 0.10
	osbaseHotChurn  = 0.60
	// rtHotChurn is the per-generation hot churn of category runtimes.
	rtHotChurn = 0.60
)

// profiles is the calibration table. Targets: Fig 7a per-category storage
// savings (Distro 20.5%, Language 32.8%, DB 52.2%, Web 60.9%, Platform
// 58.6%, Others 46.7%), Fig 2 necessary-data redundancy (DB 56.0%,
// Platform 57.4%, average 39.9%).
var profiles = map[Category]profile{
	Distro: {
		baseBytes: 280_000, runtimeBytes: 0, appBytes: 40_000,
		baseEvery: 2, coldChurn: 0.75, appHotChurn: 0.95,
		baseHotFrac: 0.08, appHotFrac: 0.80,
		sharedBase: false, taskCompute: 300 * time.Millisecond,
	},
	Language: {
		baseBytes: 250_000, runtimeBytes: 130_000, appBytes: 60_000,
		baseEvery: 3, coldChurn: 0.04, appHotChurn: 0.97,
		baseHotFrac: 0.03, rtHotFrac: 0.06, appHotFrac: 0.50,
		sharedBase: true, taskCompute: 1000 * time.Millisecond,
	},
	Database: {
		baseBytes: 200_000, runtimeBytes: 130_000, appBytes: 220_000,
		baseEvery: 5, coldChurn: 0.30, appHotChurn: 0.50,
		baseHotFrac: 0.03, rtHotFrac: 0.06, appHotFrac: 0.55,
		sharedBase: true, taskCompute: 2000 * time.Millisecond,
	},
	WebComponent: {
		baseBytes: 180_000, runtimeBytes: 110_000, appBytes: 150_000,
		baseEvery: 5, coldChurn: 0.04, appHotChurn: 0.86,
		baseHotFrac: 0.03, rtHotFrac: 0.06, appHotFrac: 0.25,
		sharedBase: true, taskCompute: 1500 * time.Millisecond,
	},
	Platform: {
		baseBytes: 200_000, runtimeBytes: 150_000, appBytes: 190_000,
		baseEvery: 6, coldChurn: 0.14, appHotChurn: 0.49,
		baseHotFrac: 0.03, rtHotFrac: 0.06, appHotFrac: 0.60,
		sharedBase: true, taskCompute: 2500 * time.Millisecond,
	},
	Others: {
		baseBytes: 150_000, runtimeBytes: 90_000, appBytes: 130_000,
		baseEvery: 4, coldChurn: 0.05, appHotChurn: 0.90,
		baseHotFrac: 0.03, rtHotFrac: 0.06, appHotFrac: 0.30,
		sharedBase: true, taskCompute: 1000 * time.Millisecond,
	},
}

// Options configures corpus generation.
type Options struct {
	// Seed varies all content deterministically.
	Seed int64
	// Scale multiplies package byte sizes. 1.0 is the calibrated corpus
	// (~1/1000 of the paper's volume); tests typically run 0.05-0.2.
	Scale float64
	// SeriesFilter, when non-empty, restricts generation to the named
	// series (useful for single-series experiments like Fig 10's tomcat
	// rollout).
	SeriesFilter []string
	// MaxVersions, when > 0, caps versions per series.
	MaxVersions int
}

// Errors returned by corpus operations.
var (
	ErrBadScale  = errors.New("scale must be positive")
	ErrNoSeries  = errors.New("unknown series")
	ErrNoVersion = errors.New("version out of range")
)

// Corpus is a generated image population.
type Corpus struct {
	opts   Options
	series []Series
	byName map[string]*Series
}

// New validates opts and returns a Corpus. No image bytes are produced
// until Image/NecessarySet are called.
func New(opts Options) (*Corpus, error) {
	if opts.Scale <= 0 {
		return nil, fmt.Errorf("corpus: scale %f: %w", opts.Scale, ErrBadScale)
	}
	keep := func(name string) bool {
		if len(opts.SeriesFilter) == 0 {
			return true
		}
		for _, f := range opts.SeriesFilter {
			if f == name {
				return true
			}
		}
		return false
	}
	c := &Corpus{opts: opts, byName: make(map[string]*Series)}
	for _, s := range seriesTable {
		if !keep(s.Name) {
			continue
		}
		if opts.MaxVersions > 0 && s.NumVersions > opts.MaxVersions {
			s.NumVersions = opts.MaxVersions
		}
		c.series = append(c.series, s)
		c.byName[s.Name] = &c.series[len(c.series)-1]
	}
	if len(c.series) == 0 {
		return nil, fmt.Errorf("corpus: filter matched nothing: %w", ErrNoSeries)
	}
	return c, nil
}

// Series lists the generated series in Table I order.
func (c *Corpus) Series() []Series {
	out := make([]Series, len(c.series))
	copy(out, c.series)
	return out
}

// SeriesByCategory groups series names by category, Table I order.
func (c *Corpus) SeriesByCategory() map[Category][]string {
	out := make(map[Category][]string)
	for _, s := range c.series {
		out[s.Category] = append(out[s.Category], s.Name)
	}
	return out
}

// TotalImages returns the image count (971 for the unfiltered corpus).
func (c *Corpus) TotalImages() int {
	total := 0
	for _, s := range c.series {
		total += s.NumVersions
	}
	return total
}

// lookup resolves a series/version pair.
func (c *Corpus) lookup(series string, version int) (*Series, profile, error) {
	s, ok := c.byName[series]
	if !ok {
		return nil, profile{}, fmt.Errorf("corpus: %q: %w", series, ErrNoSeries)
	}
	if version < 0 || version >= s.NumVersions {
		return nil, profile{}, fmt.Errorf("corpus: %s version %d of %d: %w",
			series, version, s.NumVersions, ErrNoVersion)
	}
	return s, profiles[s.Category], nil
}

// TaskCompute returns the modeled post-launch task duration for a series
// (the container's actual work in Fig 9's run phase).
func (c *Corpus) TaskCompute(series string) (time.Duration, error) {
	s, ok := c.byName[series]
	if !ok {
		return 0, fmt.Errorf("corpus: %q: %w", series, ErrNoSeries)
	}
	return profiles[s.Category].taskCompute, nil
}
