package corpus

import (
	"fmt"
	"hash/fnv"
	"io/fs"
	"math"
	"math/rand"
	"sort"
	"strings"

	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

// hash64 hashes a label list with FNV-1a, mixed with the corpus seed.
func (c *Corpus) hash64(parts ...string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", c.opts.Seed)
	for _, p := range parts {
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(p))
	}
	return h.Sum64()
}

// frac maps a hash to [0,1).
func frac(h uint64) float64 { return float64(h%1_000_000) / 1_000_000 }

// pkg describes one package instance (a package name at a content
// generation) plus the churn parameters governing its file contents.
type pkg struct {
	// key identifies the package lineage ("osbase", "nginx-app", ...).
	key string
	// gen is the content generation used for cold/hot churn clocks.
	gen int
	// dirs are the directories the package's files land in.
	dirs []string
	// files is the number of files.
	files int
	// hotFrac, hotChurn, coldChurn control which files a launch touches
	// and how fast they change across generations.
	hotFrac, hotChurn, coldChurn float64
	// sizeMul scales this package's file sizes.
	sizeMul float64
}

// seriesSizeMul gives each series a stable size personality around the
// category mean. node is deliberately the largest (the paper's Fig 6
// calls out node's 105 s conversion); hello-world is deliberately tiny.
func (c *Corpus) seriesSizeMul(series string) float64 {
	switch series {
	case "node":
		return 3.2
	case "hello-world":
		return 0.04
	default:
		return 0.7 + 0.6*frac(c.hash64("sizemul", series))
	}
}

// avgFileBytes is the expected file size of the distribution in
// fileSize; used to derive file counts from package byte budgets.
const avgFileBytes = 7300

// fileSize returns the deterministic size of file i of a package.
// Cold files follow a heavy-tailed distribution (mostly small files, a
// medium tier, a large tail — the paper notes files in Docker images are
// usually small). Hot files draw from a tight band around the mean so a
// package's launch-time byte budget is hotFrac*packageBytes with low
// variance — the calibration the Fig 2/Fig 8 targets rest on.
func (c *Corpus) fileSize(p *pkg, i int) int {
	h := c.hash64("size", p.key, fmt.Sprint(i))
	var size int
	if c.isHot(p, i) {
		size = int(avgFileBytes * (0.5 + frac(h)))
	} else {
		r := rand.New(rand.NewSource(int64(h)))
		switch q := frac(h); {
		case q < 0.60:
			size = 64 + r.Intn(2048-64)
		case q < 0.90:
			size = 2048 + r.Intn(16384-2048)
		default:
			size = 16384 + r.Intn(65536-16384)
		}
	}
	size = int(float64(size) * p.sizeMul)
	if size < 16 {
		size = 16
	}
	return size
}

// isHot reports whether file i of a package belongs to the launch-time
// (necessary) set. Selection is rank-based — exactly ceil(hotFrac*files)
// files are hot — so the necessary set's size has no sampling variance
// even for small packages.
func (c *Corpus) isHot(p *pkg, i int) bool {
	hot := int(math.Ceil(p.hotFrac * float64(p.files)))
	return i < hot
}

// contentGen returns the generation whose content file i currently
// carries: the most recent generation at which the file churned. A file
// churns at generation g>0 with its churn probability; generation 0 is
// the file's birth.
func (c *Corpus) contentGen(p *pkg, i int) int {
	churn := p.coldChurn
	if c.isHot(p, i) {
		churn = p.hotChurn
	}
	for g := p.gen; g > 0; g-- {
		if frac(c.hash64("churn", p.key, fmt.Sprint(i), fmt.Sprint(g))) < churn {
			return g
		}
	}
	return 0
}

// fileBytes produces the deterministic content of file i at a content
// generation: a blend of repetitive (compressible) and pseudo-random
// (incompressible) bytes in a stable per-file ratio.
func (c *Corpus) fileBytes(p *pkg, i, contentGen, size int) []byte {
	seed := int64(c.hash64("content", p.key, fmt.Sprint(i), fmt.Sprint(contentGen)))
	r := rand.New(rand.NewSource(seed))
	// Per-file compressibility: between 25% and 85% repetitive.
	textRatio := 0.25 + 0.6*frac(c.hash64("text", p.key, fmt.Sprint(i)))
	textLen := int(float64(size) * textRatio)

	out := make([]byte, size)
	token := []byte(fmt.Sprintf("%s-%d-g%d ", p.key, i, contentGen))
	for off := 0; off < textLen; off += len(token) {
		copy(out[off:min(off+len(token), textLen)], token)
	}
	r.Read(out[textLen:])
	return out
}

// filePath returns the stable path of file i of a package.
func (c *Corpus) filePath(p *pkg, i int) string {
	dir := p.dirs[int(c.hash64("dir", p.key, fmt.Sprint(i))%uint64(len(p.dirs)))]
	exts := []string{".so", ".bin", ".conf", ".dat", ".txt", ".mo"}
	ext := exts[int(c.hash64("ext", p.key, fmt.Sprint(i))%uint64(len(exts)))]
	return fmt.Sprintf("%s/%s-%04d%s", dir, shortKey(p.key), i, ext)
}

func shortKey(key string) string {
	return strings.Map(func(r rune) rune {
		if r == '/' {
			return '_'
		}
		return r
	}, key)
}

// packages returns the package stack of (series, version), bottom first.
func (c *Corpus) packages(s *Series, version int) []*pkg {
	prof := profiles[s.Category]
	mul := c.seriesSizeMul(s.Name)

	mkPkg := func(key string, gen int, bytesBudget int, dirs []string, hotFrac, hotChurn, coldChurn float64) *pkg {
		files := int(float64(bytesBudget) * c.opts.Scale * mul / avgFileBytes)
		if files < 3 {
			files = 3
		}
		return &pkg{
			key:       key,
			gen:       gen,
			dirs:      dirs,
			files:     files,
			hotFrac:   hotFrac,
			hotChurn:  hotChurn,
			coldChurn: coldChurn,
			sizeMul:   1,
		}
	}

	var out []*pkg

	// hello-world is genuinely tiny on Docker Hub: a single static
	// binary, no OS base, no runtime.
	if s.Name == "hello-world" {
		tiny := mkPkg("hello-world-base", version/prof.baseEvery, prof.baseBytes,
			[]string{"/"}, 0.5, prof.appHotChurn, prof.coldChurn)
		tiny.files = 2
		tiny.sizeMul = 0.1
		app := mkPkg("hello-world-app", version, prof.appBytes,
			[]string{"/opt/hello-world", "/opt/hello-world/bin"}, 0.8,
			prof.appHotChurn, prof.coldChurn)
		app.files = 2
		app.sizeMul = 0.1
		return []*pkg{tiny, app}
	}

	// OS base: shared lineage for non-distro categories, per-series for
	// distros. Generation bumps every baseEvery versions, staggered per
	// series so releases do not all align.
	baseKey := s.Name + "-base"
	baseHotChurn := prof.appHotChurn * 0.6 // distro bases churn slower than apps
	baseColdChurn := prof.coldChurn
	if prof.sharedBase {
		// The shared osbase's content parameters are global so its files
		// are a pure function of generation across every category.
		baseKey = "osbase"
		baseHotChurn = osbaseHotChurn
		baseColdChurn = osbaseColdChurn
	}
	offset := int(c.hash64("stagger", s.Name) % uint64(prof.baseEvery))
	baseGen := (version + offset) / prof.baseEvery
	base := mkPkg(baseKey, baseGen, prof.baseBytes,
		[]string{"/bin", "/lib", "/etc", "/usr/share"},
		prof.baseHotFrac, baseHotChurn, baseColdChurn)
	if prof.sharedBase {
		// Size is independent of the series personality so every series
		// sees identical base files.
		base.files = int(float64(prof.baseBytes) * c.opts.Scale / avgFileBytes)
		if base.files < 3 {
			base.files = 3
		}
		// Hot designation must also be category-independent.
		base.hotFrac = 0.03
	}
	out = append(out, base)

	// Category runtime (absent for distros).
	if prof.runtimeBytes > 0 {
		slug := runtimeSlug(s.Category)
		roffset := int(c.hash64("rstagger", s.Name) % uint64(prof.baseEvery))
		rgen := (version + roffset) / prof.baseEvery
		rt := mkPkg(slug+"-runtime", rgen, prof.runtimeBytes,
			[]string{"/usr/lib/" + slug, "/usr/share/" + slug},
			prof.rtHotFrac, rtHotChurn, prof.coldChurn)
		// Shared runtime files must be identical across the category.
		rt.files = int(float64(prof.runtimeBytes) * c.opts.Scale / avgFileBytes)
		if rt.files < 3 {
			rt.files = 3
		}
		out = append(out, rt)
	}

	// Application library package: the app's cold payload (bundled
	// libraries, locale data). Every release rebuilds this layer — so its
	// digest changes and Docker's layer-level dedup re-stores it — but
	// only coldChurn of its files actually differ, which is exactly the
	// in-layer redundancy Gear's file-level sharing removes (§II-D).
	applibBytes := int(float64(prof.appBytes) * (1 - prof.appHotFrac))
	if applibBytes > 0 {
		applib := mkPkg(s.Name+"-applib", version, applibBytes,
			[]string{"/opt/" + s.Name, "/opt/" + s.Name + "/lib", "/etc/" + s.Name},
			0, 0, prof.coldChurn)
		out = append(out, applib)
	}

	// Application binary package: the hot, launch-time payload —
	// recompiled binaries and entry configs. New generation every
	// version; every file belongs to the necessary set.
	appbinBytes := int(float64(prof.appBytes) * prof.appHotFrac)
	appbin := mkPkg(s.Name+"-appbin", version, appbinBytes,
		[]string{"/opt/" + s.Name, "/opt/" + s.Name + "/bin"},
		1.0, prof.appHotChurn, prof.appHotChurn)
	out = append(out, appbin)
	return out
}

func runtimeSlug(cat Category) string {
	switch cat {
	case Language:
		return "langrt"
	case Database:
		return "dbrt"
	case WebComponent:
		return "webrt"
	case Platform:
		return "platrt"
	case Others:
		return "miscrt"
	default:
		return "rt"
	}
}

// packageTree renders a package instance as a filesystem tree.
func (c *Corpus) packageTree(p *pkg) (*vfs.FS, error) {
	f := vfs.New()
	for _, d := range p.dirs {
		if err := f.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("corpus: package %s: %w", p.key, err)
		}
	}
	for i := 0; i < p.files; i++ {
		size := c.fileSize(p, i)
		data := c.fileBytes(p, i, c.contentGen(p, i), size)
		mode := fs.FileMode(0o644)
		if strings.HasSuffix(c.filePath(p, i), ".bin") {
			mode = 0o755
		}
		if err := f.WriteFile(c.filePath(p, i), data, mode); err != nil {
			return nil, fmt.Errorf("corpus: package %s: %w", p.key, err)
		}
	}
	return f, nil
}

// Image builds the Docker image of (series, version): one layer per
// package, bottom first, plus a start script and version marker in the
// app layer.
func (c *Corpus) Image(series string, version int) (*imagefmt.Image, error) {
	s, _, err := c.lookup(series, version)
	if err != nil {
		return nil, err
	}
	b := imagefmt.NewBuilder(series, versionTag(version))
	b.SetConfig(imagefmt.Config{
		Env:        []string{"PATH=/bin:/opt/" + series + "/bin", "SERIES=" + series},
		Entrypoint: []string{"/opt/" + series + "/bin/start"},
		Labels:     map[string]string{"io.corpus.category": s.Category.String()},
	})
	pkgs := c.packages(s, version)
	for i, p := range pkgs {
		tree, err := c.packageTree(p)
		if err != nil {
			return nil, err
		}
		if i == len(pkgs)-1 {
			// App layer extras: entrypoint and version marker.
			if err := tree.MkdirAll("/opt/"+series+"/bin", 0o755); err != nil {
				return nil, fmt.Errorf("corpus: image %s: %w", series, err)
			}
			start := fmt.Sprintf("#!/bin/sh\nexec %s-daemon --version=%s\n", series, versionTag(version))
			if err := tree.WriteFile("/opt/"+series+"/bin/start", []byte(start), 0o755); err != nil {
				return nil, fmt.Errorf("corpus: image %s: %w", series, err)
			}
			if err := tree.WriteFile("/opt/"+series+"/VERSION", []byte(versionTag(version)), 0o644); err != nil {
				return nil, fmt.Errorf("corpus: image %s: %w", series, err)
			}
		}
		if err := b.AddDiffLayer(tree); err != nil {
			return nil, fmt.Errorf("corpus: image %s:%s: %w", series, versionTag(version), err)
		}
	}
	return b.Build()
}

// AccessItem is one launch-time file access.
type AccessItem struct {
	Path string
	Size int64
}

// NecessarySet returns the files a container of (series, version) reads
// while launching and serving its first request, in access order (base,
// runtime, then app). This is the "necessary data" of §II-D/Fig 2 and
// the on-demand download set of Fig 8/9.
func (c *Corpus) NecessarySet(series string, version int) ([]AccessItem, error) {
	s, _, err := c.lookup(series, version)
	if err != nil {
		return nil, err
	}
	var items []AccessItem
	for _, p := range c.packages(s, version) {
		var pkgItems []AccessItem
		for i := 0; i < p.files; i++ {
			if !c.isHot(p, i) {
				continue
			}
			pkgItems = append(pkgItems, AccessItem{
				Path: c.filePath(p, i),
				Size: int64(c.fileSize(p, i)),
			})
		}
		sort.Slice(pkgItems, func(a, b int) bool { return pkgItems[a].Path < pkgItems[b].Path })
		items = append(items, pkgItems...)
	}
	items = append(items, AccessItem{
		Path: "/opt/" + series + "/bin/start",
		Size: int64(len(fmt.Sprintf("#!/bin/sh\nexec %s-daemon --version=%s\n", series, versionTag(version)))),
	})
	return items, nil
}
