package corpus

import (
	"bytes"
	"errors"
	"testing"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/vfs"
)

// testOpts is a small-but-representative scale for unit tests.
func testOpts() Options { return Options{Seed: 42, Scale: 0.15} }

func newCorpus(t *testing.T, opts Options) *Corpus {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCorpusShapeMatchesTableI(t *testing.T) {
	c := newCorpus(t, testOpts())
	if got := len(c.Series()); got != 50 {
		t.Errorf("series = %d, want 50", got)
	}
	if got := c.TotalImages(); got != 971 {
		t.Errorf("total images = %d, want 971", got)
	}
	byCat := c.SeriesByCategory()
	wantCounts := map[Category]int{
		Distro: 6, Language: 6, Database: 11, WebComponent: 11, Platform: 8, Others: 8,
	}
	for cat, want := range wantCounts {
		if got := len(byCat[cat]); got != want {
			t.Errorf("%s series = %d, want %d", cat, got, want)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{Scale: 0}); !errors.Is(err, ErrBadScale) {
		t.Errorf("err = %v, want ErrBadScale", err)
	}
	if _, err := New(Options{Scale: 1, SeriesFilter: []string{"no-such"}}); !errors.Is(err, ErrNoSeries) {
		t.Errorf("err = %v, want ErrNoSeries", err)
	}
	c, err := New(Options{Scale: 1, SeriesFilter: []string{"tomcat"}, MaxVersions: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Series()) != 1 || c.TotalImages() != 5 {
		t.Errorf("filtered corpus: %d series / %d images", len(c.Series()), c.TotalImages())
	}
}

func TestLookupErrors(t *testing.T) {
	c := newCorpus(t, testOpts())
	if _, err := c.Image("ghost-series", 0); !errors.Is(err, ErrNoSeries) {
		t.Errorf("err = %v, want ErrNoSeries", err)
	}
	if _, err := c.Image("nginx", 99); !errors.Is(err, ErrNoVersion) {
		t.Errorf("err = %v, want ErrNoVersion", err)
	}
	if _, err := c.Image("nginx", -1); !errors.Is(err, ErrNoVersion) {
		t.Errorf("err = %v, want ErrNoVersion", err)
	}
	if _, err := c.NecessarySet("no-such", 0); !errors.Is(err, ErrNoSeries) {
		t.Errorf("err = %v, want ErrNoSeries", err)
	}
	if _, err := c.TaskCompute("no-such"); !errors.Is(err, ErrNoSeries) {
		t.Errorf("err = %v, want ErrNoSeries", err)
	}
}

func TestImageDeterminism(t *testing.T) {
	a := newCorpus(t, testOpts())
	b := newCorpus(t, testOpts())
	imgA, err := a.Image("redis", 3)
	if err != nil {
		t.Fatal(err)
	}
	imgB, err := b.Image("redis", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgA.Layers) != len(imgB.Layers) {
		t.Fatal("layer counts differ")
	}
	for i := range imgA.Layers {
		if imgA.Layers[i].Digest != imgB.Layers[i].Digest {
			t.Errorf("layer %d digest differs across identical corpora", i)
		}
	}
	// Different seed changes content.
	c2 := newCorpus(t, Options{Seed: 43, Scale: 0.15})
	imgC, err := c2.Image("redis", 3)
	if err != nil {
		t.Fatal(err)
	}
	if imgA.Layers[0].Digest == imgC.Layers[0].Digest {
		t.Error("different seeds produced identical layers")
	}
}

func TestImageStructure(t *testing.T) {
	c := newCorpus(t, testOpts())
	img, err := c.Image("nginx", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
	// Non-distro: base + runtime + applib + appbin = 4 layers.
	if len(img.Layers) != 4 {
		t.Errorf("nginx layers = %d, want 4", len(img.Layers))
	}
	distro, err := c.Image("debian", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(distro.Layers) != 3 {
		t.Errorf("debian layers = %d, want 3 (no runtime)", len(distro.Layers))
	}
	root, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if !root.Exists("/opt/nginx/bin/start") {
		t.Error("entrypoint missing")
	}
	data, err := root.ReadFile("/opt/nginx/VERSION")
	if err != nil || string(data) != "v01" {
		t.Errorf("VERSION = %q, %v", data, err)
	}
	if img.Manifest.Config.Entrypoint[0] != "/opt/nginx/bin/start" {
		t.Error("config entrypoint wrong")
	}
}

func TestBaseLayerSharedAcrossAdjacentVersions(t *testing.T) {
	// Within a base generation window, the bottom layer digest is
	// identical, enabling Docker's layer-level dedup.
	c := newCorpus(t, testOpts())
	shared := 0
	for v := 0; v < 9; v++ {
		a, err := c.Image("postgres", v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.Image("postgres", v+1)
		if err != nil {
			t.Fatal(err)
		}
		if a.Layers[0].Digest == b.Layers[0].Digest {
			shared++
		}
		// App layer always changes.
		if a.Layers[len(a.Layers)-1].Digest == b.Layers[len(b.Layers)-1].Digest {
			t.Errorf("app layer identical between v%d and v%d", v, v+1)
		}
	}
	if shared < 5 {
		t.Errorf("base layer shared between only %d/9 adjacent pairs (baseEvery=5)", shared)
	}
}

func TestCrossSeriesBaseSharing(t *testing.T) {
	// Non-distro series share the osbase lineage: two series at versions
	// mapping to the same base generation share base-file contents.
	c := newCorpus(t, testOpts())
	fpSet := func(series string, version int) map[hashing.Fingerprint]bool {
		img, err := c.Image(series, version)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := img.Layers[0].Tree()
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[hashing.Fingerprint]bool)
		_ = tree.Walk(func(_ string, n *vfs.Node) error {
			if n.Type() == vfs.TypeRegular {
				set[hashing.FingerprintBytes(n.Content().Data())] = true
			}
			return nil
		})
		return set
	}
	best := 0.0
	redisSet := fpSet("redis", 5)
	for v := 0; v < 10; v++ {
		nginxSet := fpSet("nginx", v)
		common := 0
		for fp := range redisSet {
			if nginxSet[fp] {
				common++
			}
		}
		if r := float64(common) / float64(len(redisSet)); r > best {
			best = r
		}
	}
	if best < 0.5 {
		t.Errorf("max cross-series base overlap = %.2f, want >= 0.5", best)
	}
}

func TestNecessarySetProperties(t *testing.T) {
	c := newCorpus(t, Options{Seed: 42, Scale: 1.0,
		SeriesFilter: []string{"redis", "nginx", "debian", "wordpress"}})
	for _, series := range []string{"redis", "nginx", "debian", "wordpress"} {
		img, err := c.Image(series, 2)
		if err != nil {
			t.Fatal(err)
		}
		root, err := img.Flatten()
		if err != nil {
			t.Fatal(err)
		}
		items, err := c.NecessarySet(series, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) == 0 {
			t.Fatalf("%s: empty necessary set", series)
		}
		var necessaryBytes, totalBytes int64
		for _, it := range items {
			n, err := root.Stat(it.Path)
			if err != nil {
				t.Errorf("%s: necessary file %s not in image: %v", series, it.Path, err)
				continue
			}
			if n.Size() != it.Size {
				t.Errorf("%s: %s size %d != %d", series, it.Path, n.Size(), it.Size)
			}
			necessaryBytes += it.Size
		}
		totalBytes = root.Stats().Bytes
		ratio := float64(necessaryBytes) / float64(totalBytes)
		// The paper's on-demand formats fetch 6.4%-33.3% of an image.
		if ratio < 0.03 || ratio > 0.45 {
			t.Errorf("%s: necessary ratio = %.3f, want within (0.03, 0.45)", series, ratio)
		}
	}
}

func TestNecessarySetRedundancyAcrossVersions(t *testing.T) {
	// Fig 2: consecutive versions share a substantial fraction of their
	// necessary bytes; Database higher than Distro.
	c := newCorpus(t, Options{Seed: 42, Scale: 0.3})
	redundancy := func(series string) float64 {
		var sharedB, totalB int64
		for v := 0; v < 10; v++ {
			prev := necessaryContents(t, c, series, v)
			cur, curList := prev, [][]byte(nil)
			_ = cur
			curList = necessaryContentsList(t, c, series, v+1)
			for _, data := range curList {
				totalB += int64(len(data))
				if prev[hashing.FingerprintBytes(data)] {
					sharedB += int64(len(data))
				}
			}
		}
		return float64(sharedB) / float64(totalB)
	}
	db := redundancy("mysql")
	distro := redundancy("ubuntu")
	if db < 0.35 || db > 0.8 {
		t.Errorf("database redundancy = %.2f, want ~0.56", db)
	}
	if distro > db {
		t.Errorf("distro redundancy %.2f >= database %.2f; paper has DB higher", distro, db)
	}
}

// necessaryContents returns the fingerprint set of a version's necessary
// file contents.
func necessaryContents(t *testing.T, c *Corpus, series string, version int) map[hashing.Fingerprint]bool {
	t.Helper()
	out := make(map[hashing.Fingerprint]bool)
	for _, data := range necessaryContentsList(t, c, series, version) {
		out[hashing.FingerprintBytes(data)] = true
	}
	return out
}

func necessaryContentsList(t *testing.T, c *Corpus, series string, version int) [][]byte {
	t.Helper()
	img, err := c.Image(series, version)
	if err != nil {
		t.Fatal(err)
	}
	root, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	items, err := c.NecessarySet(series, version)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for _, it := range items {
		data, err := root.ReadFile(it.Path)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

func TestFileContentsCompressible(t *testing.T) {
	c := newCorpus(t, testOpts())
	img, err := c.Image("redis", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Compressed layer size must be meaningfully below uncompressed: the
	// paper reports ~3.5x总 savings from compression+layer dedup.
	var raw, stored int64
	for _, l := range img.Layers {
		raw += l.UncompressedSize
		stored += l.Size
	}
	ratio := float64(raw) / float64(stored)
	if ratio < 1.3 || ratio > 6 {
		t.Errorf("compression ratio = %.2f, want between 1.3 and 6", ratio)
	}
}

func TestNodeIsLargestHelloWorldSmallest(t *testing.T) {
	c := newCorpus(t, Options{Seed: 42, Scale: 1.0,
		SeriesFilter: []string{"node", "hello-world", "nginx"}})
	size := func(series string) int64 {
		img, err := c.Image(series, 0)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, l := range img.Layers {
			total += l.UncompressedSize
		}
		return total
	}
	node, hello, nginx := size("node"), size("hello-world"), size("nginx")
	if node <= nginx {
		t.Errorf("node (%d) not larger than nginx (%d)", node, nginx)
	}
	if hello >= nginx/4 {
		t.Errorf("hello-world (%d) not tiny vs nginx (%d)", hello, nginx)
	}
}

func TestTaskCompute(t *testing.T) {
	c := newCorpus(t, testOpts())
	distro, err := c.TaskCompute("alpine")
	if err != nil {
		t.Fatal(err)
	}
	db, err := c.TaskCompute("mysql")
	if err != nil {
		t.Fatal(err)
	}
	if distro >= db {
		t.Errorf("distro task %v not shorter than database task %v", distro, db)
	}
}

func TestTagsAndVersioning(t *testing.T) {
	c := newCorpus(t, testOpts())
	var tomcat *Series
	for _, s := range c.Series() {
		if s.Name == "tomcat" {
			tomcat = &s
			break
		}
	}
	if tomcat == nil {
		t.Fatal("tomcat missing")
	}
	tags := tomcat.Tags()
	if len(tags) != 20 || tags[0] != "v01" || tags[19] != "v20" {
		t.Errorf("tags = %v", tags)
	}
}

func TestImageBytesIdenticalAcrossBuilds(t *testing.T) {
	// Building the same image twice from one corpus yields identical
	// tarballs (required for registry digest stability).
	c := newCorpus(t, testOpts())
	a, err := c.Image("httpd", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Image("httpd", 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Layers {
		if !bytes.Equal(a.Layers[i].Tarball(), b.Layers[i].Tarball()) {
			t.Errorf("layer %d bytes differ across rebuilds", i)
		}
	}
}

func TestCategoryTextRoundTrip(t *testing.T) {
	for _, cat := range Categories() {
		text, err := cat.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Category
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != cat {
			t.Errorf("round trip: %v -> %s -> %v", cat, text, back)
		}
	}
	var c Category
	if err := c.UnmarshalText([]byte("Nonsense")); err == nil {
		t.Error("unknown category accepted")
	}
}
