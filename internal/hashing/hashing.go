// Package hashing provides the content-addressing primitives of the Gear
// reproduction: MD5 fingerprints for Gear files (§III-B of the paper),
// SHA256 digests for Docker layers and manifests (§II-A), and the
// collision-detection registry the paper describes for deployments where
// MD5's collision resistance is not trusted.
package hashing

import (
	"crypto/md5"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"sync"
)

// Fingerprint identifies a Gear file by the MD5 hash of its content,
// rendered as 32 lowercase hex digits. The paper names Gear files by
// fingerprint in both the registry pool and the local shared cache.
type Fingerprint string

// Digest identifies a Docker layer or manifest by the SHA256 hash of its
// (compressed) content, rendered as "sha256:<64 hex digits>".
type Digest string

// FingerprintBytes returns the MD5 fingerprint of data.
func FingerprintBytes(data []byte) Fingerprint {
	sum := md5.Sum(data)
	return Fingerprint(hex.EncodeToString(sum[:]))
}

// DigestBytes returns the SHA256 digest of data in Docker's
// "sha256:..." notation.
func DigestBytes(data []byte) Digest {
	sum := sha256.Sum256(data)
	return Digest("sha256:" + hex.EncodeToString(sum[:]))
}

// ErrMalformed reports a fingerprint or digest that fails validation.
var ErrMalformed = errors.New("malformed content address")

// Valid reports whether f is a well-formed MD5 fingerprint or a unique ID
// assigned by a Registry after a collision (see Registry.Assign).
func (f Fingerprint) Valid() bool {
	s := string(f)
	if len(s) == 32 {
		return isHex(s)
	}
	// Collision fallback IDs look like "<32 hex>-cN".
	if len(s) > 34 && s[32] == '-' && s[33] == 'c' {
		if !isHex(s[:32]) {
			return false
		}
		_, err := strconv.Atoi(s[34:])
		return err == nil
	}
	return false
}

// Validate returns ErrMalformed (wrapped with the value) if f is invalid.
func (f Fingerprint) Validate() error {
	if !f.Valid() {
		return fmt.Errorf("fingerprint %q: %w", string(f), ErrMalformed)
	}
	return nil
}

// Valid reports whether d is a well-formed "sha256:..." digest.
func (d Digest) Valid() bool {
	s := string(d)
	const prefix = "sha256:"
	if len(s) != len(prefix)+64 || s[:len(prefix)] != prefix {
		return false
	}
	return isHex(s[len(prefix):])
}

// Validate returns ErrMalformed (wrapped with the value) if d is invalid.
func (d Digest) Validate() error {
	if !d.Valid() {
		return fmt.Errorf("digest %q: %w", string(d), ErrMalformed)
	}
	return nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Hasher computes fingerprints. The production hasher is MD5; tests inject
// deliberately weak hashers to force collisions and prove the registry's
// fallback preserves correctness, as §III-B argues it must.
type Hasher interface {
	// Fingerprint returns the content address of data.
	Fingerprint(data []byte) Fingerprint
}

// MD5 is the production Hasher.
type MD5 struct{}

var _ Hasher = MD5{}

// Fingerprint implements Hasher using crypto/md5.
func (MD5) Fingerprint(data []byte) Fingerprint { return FingerprintBytes(data) }

// verifier is the strong digest the registry keeps per assigned content
// in place of the content itself: two inputs with equal fingerprints are
// a true duplicate iff their verifiers match. SHA256 collisions would be
// required to confuse two distinct contents, so collision handling keeps
// the byte-for-byte guarantee while resident state stays O(entries)
// instead of O(total corpus bytes).
type verifier [sha256.Size]byte

func verifierOf(data []byte) verifier { return sha256.Sum256(data) }

// registryShards is the number of independently locked shards. Shards
// are selected by fingerprint prefix, so load spreads evenly under the
// production hasher and contention is per-prefix, not global.
const registryShards = 64

// registryShard holds the entries for one fingerprint-prefix slice of
// the space. Each fingerprint maps to the verifiers of the contents seen
// under it, in assignment order: index 0 is the bare fingerprint, later
// entries carry "-cN" suffixes.
type registryShard struct {
	mu         sync.Mutex
	byFP       map[Fingerprint][]verifier
	collisions int
}

// Registry assigns stable content addresses with collision detection.
// On a fingerprint match it compares strong content digests; a true
// duplicate reuses the existing address, while a collision (same hash,
// different bytes) is assigned a unique ID of the form "<fp>-cN". The
// paper's design (§III-B) notes this disables dedup for the colliding
// files without compromising correctness.
//
// The registry retains only a fixed-size verification digest per entry —
// never the content — so its resident memory is independent of payload
// sizes, and the fingerprint space is sharded by prefix so concurrent
// assignment does not serialize on one lock.
//
// A Registry is safe for concurrent use.
type Registry struct {
	hasher Hasher
	shards [registryShards]registryShard
}

// NewRegistry returns a Registry using hasher (MD5{} if nil).
func NewRegistry(hasher Hasher) *Registry {
	if hasher == nil {
		hasher = MD5{}
	}
	r := &Registry{hasher: hasher}
	for i := range r.shards {
		r.shards[i].byFP = make(map[Fingerprint][]verifier)
	}
	return r
}

// shardIndexOf maps a fingerprint to its shard by prefix. Weak test
// hashers may emit short or non-hex fingerprints, so the fold is
// defensive.
func shardIndexOf(fp Fingerprint) uint32 {
	var h uint32
	for i := 0; i < len(fp) && i < 2; i++ {
		h = h*31 + uint32(fp[i])
	}
	return h % registryShards
}

func (r *Registry) shardOf(fp Fingerprint) *registryShard {
	return &r.shards[shardIndexOf(fp)]
}

// Assign returns the content address for data, detecting collisions.
// Identical contents always receive identical addresses; distinct contents
// always receive distinct addresses, even under a colliding hasher.
func (r *Registry) Assign(data []byte) Fingerprint {
	return r.assign(r.hasher.Fingerprint(data), verifierOf(data))
}

// assign resolves a precomputed (fingerprint, verifier) pair to its
// collision-safe ID, recording the verifier under the fingerprint.
// Callers must pass fp computed by r's hasher and v = verifierOf(data).
func (r *Registry) assign(fp Fingerprint, v verifier) Fingerprint {
	s := r.shardOf(fp)
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := s.byFP[fp]
	for i, prev := range seen {
		if prev == v {
			return indexedID(fp, i)
		}
	}
	s.byFP[fp] = append(seen, v)
	if len(seen) > 0 {
		s.collisions++
	}
	return indexedID(fp, len(seen))
}

// AssignAll assigns content addresses to every item using up to workers
// goroutines for the hash computations — the CPU-bound part — and then
// resolves collision IDs per shard, in input order within each shard.
// The returned addresses are bit-identical to calling Assign on each
// item in order, for any worker count: "-cN" suffixes depend only on the
// order collisions are *assigned per fingerprint*, a fingerprint never
// spans shards, and each shard assigns its items in input order — so no
// global serialization point remains.
func (r *Registry) AssignAll(items [][]byte, workers int) []Fingerprint {
	n := len(items)
	if n == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	fps := make([]Fingerprint, n)
	vs := make([]verifier, n)
	if workers <= 1 {
		for i, data := range items {
			fps[i] = r.hasher.Fingerprint(data)
			vs[i] = verifierOf(data)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * n / workers
			hi := (w + 1) * n / workers
			if lo >= hi {
				continue // empty range: don't spawn an idle goroutine
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					fps[i] = r.hasher.Fingerprint(items[i])
					vs[i] = verifierOf(items[i])
				}
			}(lo, hi)
		}
		wg.Wait()
	}

	// Bucket item indices by shard with a counting sort (no per-shard
	// slice allocations), then assign shard-by-shard. Within a shard,
	// items keep input order, which pins the "-cN" numbering.
	var counts [registryShards]int
	shardIdx := make([]uint8, n)
	for i, fp := range fps {
		si := uint8(shardIndexOf(fp))
		shardIdx[i] = si
		counts[si]++
	}
	var offsets [registryShards]int
	total := 0
	for s := 0; s < registryShards; s++ {
		offsets[s] = total
		total += counts[s]
	}
	order := make([]int32, n)
	next := offsets
	for i := 0; i < n; i++ {
		s := shardIdx[i]
		order[next[s]] = int32(i)
		next[s]++
	}

	// Each item is resolved exactly once, so the fingerprint slice can be
	// rewritten in place with the collision-safe IDs.
	type run struct{ lo, hi int }
	runs := make([]run, 0, registryShards)
	for s := 0; s < registryShards; s++ {
		if counts[s] > 0 {
			runs = append(runs, run{offsets[s], offsets[s] + counts[s]})
		}
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	if workers <= 1 {
		for _, i := range order {
			fps[i] = r.assign(fps[i], vs[i])
		}
		return fps
	}
	// Shards are independent: fan each populated shard's run out to the
	// pool. Assignment within a run stays in input order.
	var wg sync.WaitGroup
	runCh := make(chan run, len(runs))
	for _, rn := range runs {
		runCh <- rn
	}
	close(runCh)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rn := range runCh {
				for _, i := range order[rn.lo:rn.hi] {
					fps[i] = r.assign(fps[i], vs[i])
				}
			}
		}()
	}
	wg.Wait()
	return fps
}

// Collisions returns how many fallback IDs have been assigned.
func (r *Registry) Collisions() int {
	total := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		total += s.collisions
		s.mu.Unlock()
	}
	return total
}

// Entries returns how many distinct contents the registry has assigned
// addresses to. Each entry costs a fixed-size verifier digest, so
// Entries bounds resident memory regardless of payload sizes.
func (r *Registry) Entries() int {
	total := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for _, seen := range s.byFP {
			total += len(seen)
		}
		s.mu.Unlock()
	}
	return total
}

func indexedID(fp Fingerprint, i int) Fingerprint {
	if i == 0 {
		return fp
	}
	return Fingerprint(string(fp) + "-c" + strconv.Itoa(i))
}

// CollisionProbability returns the birthday-paradox bound from the paper's
// equation (1): p <= n(n-1)/2 * 2^-m for n files under an m-bit hash.
func CollisionProbability(n float64, bits int) float64 {
	p := n * (n - 1) / 2
	for i := 0; i < bits; i++ {
		p /= 2
	}
	return p
}
