// Package hashing provides the content-addressing primitives of the Gear
// reproduction: MD5 fingerprints for Gear files (§III-B of the paper),
// SHA256 digests for Docker layers and manifests (§II-A), and the
// collision-detection registry the paper describes for deployments where
// MD5's collision resistance is not trusted.
package hashing

import (
	"crypto/md5"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"sync"
)

// Fingerprint identifies a Gear file by the MD5 hash of its content,
// rendered as 32 lowercase hex digits. The paper names Gear files by
// fingerprint in both the registry pool and the local shared cache.
type Fingerprint string

// Digest identifies a Docker layer or manifest by the SHA256 hash of its
// (compressed) content, rendered as "sha256:<64 hex digits>".
type Digest string

// FingerprintBytes returns the MD5 fingerprint of data.
func FingerprintBytes(data []byte) Fingerprint {
	sum := md5.Sum(data)
	return Fingerprint(hex.EncodeToString(sum[:]))
}

// DigestBytes returns the SHA256 digest of data in Docker's
// "sha256:..." notation.
func DigestBytes(data []byte) Digest {
	sum := sha256.Sum256(data)
	return Digest("sha256:" + hex.EncodeToString(sum[:]))
}

// ErrMalformed reports a fingerprint or digest that fails validation.
var ErrMalformed = errors.New("malformed content address")

// Valid reports whether f is a well-formed MD5 fingerprint or a unique ID
// assigned by a Registry after a collision (see Registry.Assign).
func (f Fingerprint) Valid() bool {
	s := string(f)
	if len(s) == 32 {
		return isHex(s)
	}
	// Collision fallback IDs look like "<32 hex>-cN".
	if len(s) > 34 && s[32] == '-' && s[33] == 'c' {
		if !isHex(s[:32]) {
			return false
		}
		_, err := strconv.Atoi(s[34:])
		return err == nil
	}
	return false
}

// Validate returns ErrMalformed (wrapped with the value) if f is invalid.
func (f Fingerprint) Validate() error {
	if !f.Valid() {
		return fmt.Errorf("fingerprint %q: %w", string(f), ErrMalformed)
	}
	return nil
}

// Valid reports whether d is a well-formed "sha256:..." digest.
func (d Digest) Valid() bool {
	s := string(d)
	const prefix = "sha256:"
	if len(s) != len(prefix)+64 || s[:len(prefix)] != prefix {
		return false
	}
	return isHex(s[len(prefix):])
}

// Validate returns ErrMalformed (wrapped with the value) if d is invalid.
func (d Digest) Validate() error {
	if !d.Valid() {
		return fmt.Errorf("digest %q: %w", string(d), ErrMalformed)
	}
	return nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Hasher computes fingerprints. The production hasher is MD5; tests inject
// deliberately weak hashers to force collisions and prove the registry's
// fallback preserves correctness, as §III-B argues it must.
type Hasher interface {
	// Fingerprint returns the content address of data.
	Fingerprint(data []byte) Fingerprint
}

// MD5 is the production Hasher.
type MD5 struct{}

var _ Hasher = MD5{}

// Fingerprint implements Hasher using crypto/md5.
func (MD5) Fingerprint(data []byte) Fingerprint { return FingerprintBytes(data) }

// Registry assigns stable content addresses with collision detection.
// On a fingerprint match it compares contents byte-for-byte; a true
// duplicate reuses the existing address, while a collision (same hash,
// different bytes) is assigned a unique ID of the form "<fp>-cN". The
// paper's design (§III-B) notes this disables dedup for the colliding
// files without compromising correctness.
//
// A Registry is safe for concurrent use.
type Registry struct {
	hasher Hasher

	mu sync.Mutex
	// byFP maps each raw fingerprint to the contents seen under it, in
	// assignment order. Index 0 keeps the bare fingerprint; later entries
	// carry "-cN" suffixes.
	byFP map[Fingerprint][][]byte
	// collisions counts assignments that required a fallback ID.
	collisions int
}

// NewRegistry returns a Registry using hasher (MD5{} if nil).
func NewRegistry(hasher Hasher) *Registry {
	if hasher == nil {
		hasher = MD5{}
	}
	return &Registry{
		hasher: hasher,
		byFP:   make(map[Fingerprint][][]byte),
	}
}

// Assign returns the content address for data, detecting collisions.
// Identical contents always receive identical addresses; distinct contents
// always receive distinct addresses, even under a colliding hasher.
func (r *Registry) Assign(data []byte) Fingerprint {
	return r.assign(r.hasher.Fingerprint(data), data)
}

// assign resolves a precomputed fingerprint to its collision-safe ID,
// recording data under it. Callers must pass fp computed by r's hasher.
func (r *Registry) assign(fp Fingerprint, data []byte) Fingerprint {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := r.byFP[fp]
	for i, prev := range seen {
		if bytesEqual(prev, data) {
			return indexedID(fp, i)
		}
	}
	r.byFP[fp] = append(seen, cloneBytes(data))
	if len(seen) > 0 {
		r.collisions++
	}
	return indexedID(fp, len(seen))
}

// AssignAll assigns content addresses to every item using up to workers
// goroutines for the hash computation — the CPU-bound part — while the
// collision-ID assignment runs sequentially in input order afterwards.
// The returned addresses are therefore bit-identical to calling Assign on
// each item in order, for any worker count: "-cN" suffixes depend only on
// the order collisions are *assigned*, which AssignAll keeps serial.
func (r *Registry) AssignAll(items [][]byte, workers int) []Fingerprint {
	if workers < 1 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items)
	}
	fps := make([]Fingerprint, len(items))
	if workers <= 1 {
		for i, data := range items {
			fps[i] = r.hasher.Fingerprint(data)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * len(items) / workers
			hi := (w + 1) * len(items) / workers
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					fps[i] = r.hasher.Fingerprint(items[i])
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	for i, data := range items {
		fps[i] = r.assign(fps[i], data)
	}
	return fps
}

// Collisions returns how many fallback IDs have been assigned.
func (r *Registry) Collisions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.collisions
}

func indexedID(fp Fingerprint, i int) Fingerprint {
	if i == 0 {
		return fp
	}
	return Fingerprint(string(fp) + "-c" + strconv.Itoa(i))
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// CollisionProbability returns the birthday-paradox bound from the paper's
// equation (1): p <= n(n-1)/2 * 2^-m for n files under an m-bit hash.
func CollisionProbability(n float64, bits int) float64 {
	p := n * (n - 1) / 2
	for i := 0; i < bits; i++ {
		p /= 2
	}
	return p
}
