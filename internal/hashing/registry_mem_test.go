package hashing

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// assignPayloads assigns n distinct payloads of size bytes each and
// returns the registry (payloads go out of scope before measurement).
func assignPayloads(tb testing.TB, n, size int) *Registry {
	tb.Helper()
	r := NewRegistry(nil)
	rng := rand.New(rand.NewSource(int64(size)))
	buf := make([]byte, size)
	for i := 0; i < n; i++ {
		rng.Read(buf)
		if fp := r.Assign(buf); !fp.Valid() {
			tb.Fatalf("invalid fingerprint %q", fp)
		}
	}
	if got := r.Entries(); got != n {
		tb.Fatalf("entries = %d, want %d", got, n)
	}
	return r
}

// heapLive returns the live heap after a full GC.
func heapLive() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestRegistryDoesNotRetainContents asserts the digest-backed registry's
// resident size is independent of payload size: N one-megabyte payloads
// must not leave ~N MB resident the way the old clone-everything
// registry did. The retained state is a fixed-size verifier per entry,
// so registries fed 1 KiB and 1 MiB payloads must end up within noise of
// each other.
func TestRegistryDoesNotRetainContents(t *testing.T) {
	const n = 64
	base := heapLive()
	small := assignPayloads(t, n, 1<<10) // 64 KiB total corpus
	afterSmall := heapLive()
	large := assignPayloads(t, n, 1<<20) // 64 MiB total corpus
	afterLarge := heapLive()

	smallGrowth := int64(afterSmall) - int64(base)
	largeGrowth := int64(afterLarge) - int64(afterSmall)
	// The large corpus is 1024x the small one. If the registry retained
	// contents, largeGrowth would be ~64 MiB; with digests it is a few
	// KiB of map state, identical to the small case. Allow 1 MiB of slack
	// for allocator noise — still 64x below content retention.
	const slack = 1 << 20
	if largeGrowth > slack {
		t.Errorf("heap grew %d bytes after 64 MiB of 1 MiB payloads; registry appears to retain contents (small-payload growth was %d)",
			largeGrowth, smallGrowth)
	}
	runtime.KeepAlive(small)
	runtime.KeepAlive(large)
}

// TestRegistryCollisionsUnderWeakHasherStillResolve pairs the memory
// guarantee with correctness: a colliding hasher still yields distinct
// "-cN" IDs for distinct contents and stable IDs for duplicates, even
// though no content bytes are retained for comparison.
func TestRegistryCollisionsUnderWeakHasherStillResolve(t *testing.T) {
	r := NewRegistry(weakHasher{})
	// Three distinct even-length contents collide under weakHasher.
	a := r.Assign([]byte("aaaa"))
	b := r.Assign([]byte("bbbb"))
	c := r.Assign([]byte("cccc"))
	if a == b || b == c || a == c {
		t.Fatalf("colliding contents shared an ID: %s %s %s", a, b, c)
	}
	wantFP := Fingerprint("00000000000000000000000000000000")
	if a != wantFP {
		t.Errorf("first content = %s, want bare %s", a, wantFP)
	}
	if b != wantFP+"-c1" || c != wantFP+"-c2" {
		t.Errorf("fallback IDs = %s, %s; want -c1, -c2", b, c)
	}
	for i, data := range [][]byte{[]byte("aaaa"), []byte("bbbb"), []byte("cccc")} {
		got := r.Assign(data)
		want := []Fingerprint{a, b, c}[i]
		if got != want {
			t.Errorf("re-assign %d = %s, want %s", i, got, want)
		}
	}
	if r.Collisions() != 2 {
		t.Errorf("collisions = %d, want 2", r.Collisions())
	}
}

// TestAssignAllEdgeCases covers worker counts that exceed the item count
// (no goroutine may receive an empty [lo,hi) range) and empty input.
func TestAssignAllEdgeCases(t *testing.T) {
	r := NewRegistry(nil)
	if out := r.AssignAll(nil, 8); out != nil {
		t.Errorf("AssignAll(nil) = %v, want nil", out)
	}
	if out := r.AssignAll([][]byte{}, 0); out != nil {
		t.Errorf("AssignAll(empty) = %v, want nil", out)
	}

	// workers >> items: every range [w*n/workers, (w+1)*n/workers) with
	// n < workers includes empty ranges; results must still match serial.
	items := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	serial := NewRegistry(nil)
	want := make([]Fingerprint, len(items))
	for i, d := range items {
		want[i] = serial.Assign(d)
	}
	for _, workers := range []int{4, 17, 1000} {
		got := NewRegistry(nil).AssignAll(items, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: item %d = %s, want %s", workers, i, got[i], want[i])
			}
		}
	}

	// Single item, many workers.
	one := NewRegistry(nil).AssignAll([][]byte{[]byte("solo")}, 64)
	if len(one) != 1 || one[0] != FingerprintBytes([]byte("solo")) {
		t.Errorf("single-item AssignAll = %v", one)
	}
}

// --- Microbenchmarks: the fingerprint-assignment hot path ---

func benchItems(n, size int, dupEvery int) [][]byte {
	rng := rand.New(rand.NewSource(42))
	items := make([][]byte, n)
	for i := range items {
		if dupEvery > 0 && i%dupEvery == 1 {
			items[i] = items[i-1] // duplicate of the previous item
			continue
		}
		data := make([]byte, size)
		rng.Read(data)
		items[i] = data
	}
	return items
}

// BenchmarkRegistryAssign measures serial assignment of 4 KiB objects
// with a 50% duplicate rate (the dedup-heavy shape of the corpus).
func BenchmarkRegistryAssign(b *testing.B) {
	items := benchItems(256, 4096, 2)
	b.ReportAllocs()
	b.SetBytes(int64(len(items)) * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRegistry(nil)
		for _, data := range items {
			r.Assign(data)
		}
	}
}

// BenchmarkRegistryAssignAll measures the parallel path at several
// worker counts over the same workload.
func BenchmarkRegistryAssignAll(b *testing.B) {
	items := benchItems(256, 4096, 2)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(items)) * 4096)
			for i := 0; i < b.N; i++ {
				r := NewRegistry(nil)
				r.AssignAll(items, workers)
			}
		})
	}
}

// BenchmarkRegistryAssignLarge isolates the memory benefit: 1 MiB
// payloads, where the old registry cloned every byte.
func BenchmarkRegistryAssignLarge(b *testing.B) {
	items := benchItems(16, 1<<20, 0)
	b.ReportAllocs()
	b.SetBytes(16 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRegistry(nil)
		for _, data := range items {
			r.Assign(data)
		}
	}
}
