package hashing

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestFingerprintBytesKnownValue(t *testing.T) {
	// md5("") and md5("abc") are well-known vectors.
	tests := []struct {
		in   string
		want Fingerprint
	}{
		{"", "d41d8cd98f00b204e9800998ecf8427e"},
		{"abc", "900150983cd24fb0d6963f7d28e17f72"},
	}
	for _, tt := range tests {
		if got := FingerprintBytes([]byte(tt.in)); got != tt.want {
			t.Errorf("FingerprintBytes(%q) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

func TestDigestBytesKnownValue(t *testing.T) {
	want := Digest("sha256:ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
	if got := DigestBytes([]byte("abc")); got != want {
		t.Errorf("DigestBytes(abc) = %s, want %s", got, want)
	}
}

func TestFingerprintValid(t *testing.T) {
	tests := []struct {
		fp   Fingerprint
		want bool
	}{
		{"d41d8cd98f00b204e9800998ecf8427e", true},
		{"d41d8cd98f00b204e9800998ecf8427e-c1", true},
		{"d41d8cd98f00b204e9800998ecf8427e-c42", true},
		{"", false},
		{"short", false},
		{"D41D8CD98F00B204E9800998ECF8427E", false}, // uppercase rejected
		{"d41d8cd98f00b204e9800998ecf8427g", false}, // non-hex
		{"d41d8cd98f00b204e9800998ecf8427e-x1", false},
		{"d41d8cd98f00b204e9800998ecf8427e-c", false},
		{"d41d8cd98f00b204e9800998ecf8427e-cx", false},
		{"zzzz8cd98f00b204e9800998ecf8427e-c1", false},
	}
	for _, tt := range tests {
		if got := tt.fp.Valid(); got != tt.want {
			t.Errorf("Valid(%q) = %v, want %v", tt.fp, got, tt.want)
		}
		err := tt.fp.Validate()
		if (err == nil) != tt.want {
			t.Errorf("Validate(%q) = %v", tt.fp, err)
		}
	}
}

func TestDigestValid(t *testing.T) {
	ok := DigestBytes([]byte("x"))
	if !ok.Valid() {
		t.Errorf("real digest invalid: %s", ok)
	}
	bad := []Digest{
		"",
		"sha256:",
		"sha256:abcd",
		Digest("md5:" + strings.Repeat("a", 64)),
		Digest("sha256:" + strings.Repeat("A", 64)),
		Digest("sha256:" + strings.Repeat("a", 63) + "g"),
	}
	for _, d := range bad {
		if d.Valid() {
			t.Errorf("Valid(%q) = true, want false", d)
		}
		if d.Validate() == nil {
			t.Errorf("Validate(%q) = nil", d)
		}
	}
}

func TestRegistryDeduplicates(t *testing.T) {
	r := NewRegistry(nil)
	a1 := r.Assign([]byte("same"))
	a2 := r.Assign([]byte("same"))
	b := r.Assign([]byte("different"))
	if a1 != a2 {
		t.Errorf("identical content got different IDs: %s vs %s", a1, a2)
	}
	if a1 == b {
		t.Error("distinct content shares an ID")
	}
	if r.Collisions() != 0 {
		t.Errorf("collisions = %d, want 0", r.Collisions())
	}
}

// weakHasher maps every input to one of two fingerprints, guaranteeing
// collisions, to exercise the fallback path.
type weakHasher struct{}

func (weakHasher) Fingerprint(data []byte) Fingerprint {
	if len(data)%2 == 0 {
		return Fingerprint(strings.Repeat("0", 32))
	}
	return Fingerprint(strings.Repeat("1", 32))
}

func TestRegistryCollisionFallback(t *testing.T) {
	r := NewRegistry(weakHasher{})
	a := r.Assign([]byte("aa")) // even length -> fp 000...
	b := r.Assign([]byte("bb")) // even length -> same fp, different bytes
	c := r.Assign([]byte("aa")) // duplicate of a
	if a == b {
		t.Error("collision produced identical IDs")
	}
	if a != c {
		t.Errorf("duplicate content got a new ID: %s vs %s", a, c)
	}
	if !b.Valid() {
		t.Errorf("fallback ID %q is not Valid", b)
	}
	if r.Collisions() != 1 {
		t.Errorf("collisions = %d, want 1", r.Collisions())
	}
	d := r.Assign([]byte("cc"))
	if d == a || d == b {
		t.Error("third colliding content reused an ID")
	}
	if r.Collisions() != 2 {
		t.Errorf("collisions = %d, want 2", r.Collisions())
	}
}

// Property: under any hasher, Assign is injective on contents and stable
// under repetition.
func TestRegistryInjectiveProperty(t *testing.T) {
	for _, h := range []Hasher{nil, weakHasher{}} {
		r := NewRegistry(h)
		ids := make(map[Fingerprint]string)
		prop := func(data []byte) bool {
			id := r.Assign(data)
			if id != r.Assign(data) {
				return false
			}
			if prev, ok := ids[id]; ok {
				return prev == string(data)
			}
			ids[id] = string(data)
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("hasher %T: %v", h, err)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(weakHasher{})
	const workers = 8
	var wg sync.WaitGroup
	results := make([][]Fingerprint, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				data := []byte(fmt.Sprintf("content-%d", i))
				results[w] = append(results[w], r.Assign(data))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d assigned %s for item %d; worker 0 assigned %s",
					w, results[w][i], i, results[0][i])
			}
		}
	}
}

func TestCollisionProbability(t *testing.T) {
	// Paper: n = 5e10 files, 128-bit MD5 -> p ~= 5e-18.
	p := CollisionProbability(5e10, 128)
	if p < 1e-18 || p > 1e-17 {
		t.Errorf("CollisionProbability(5e10, 128) = %g, want ~5e-18", p)
	}
	if got := CollisionProbability(1, 128); got != 0 {
		t.Errorf("one file should have zero collision probability, got %g", got)
	}
}

// AssignAll must be indistinguishable from serial Assign calls for any
// worker count — including the "-cN" collision IDs, which depend on
// assignment order.
func TestAssignAllMatchesSerial(t *testing.T) {
	var items [][]byte
	for i := 0; i < 64; i++ {
		// A mix of duplicates and weakHasher collisions.
		items = append(items, []byte(strings.Repeat("x", i%7)+fmt.Sprint(i%9)))
	}
	for _, hasher := range []Hasher{nil, weakHasher{}} {
		serial := NewRegistry(hasher)
		want := make([]Fingerprint, len(items))
		for i, data := range items {
			want[i] = serial.Assign(data)
		}
		for _, workers := range []int{0, 1, 2, 3, 8, 100} {
			r := NewRegistry(hasher)
			got := r.AssignAll(items, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("hasher %T workers %d: item %d = %s, want %s",
						hasher, workers, i, got[i], want[i])
				}
			}
			if r.Collisions() != serial.Collisions() {
				t.Errorf("hasher %T workers %d: collisions = %d, want %d",
					hasher, workers, r.Collisions(), serial.Collisions())
			}
		}
	}
	if out := NewRegistry(nil).AssignAll(nil, 4); len(out) != 0 {
		t.Errorf("empty AssignAll returned %v", out)
	}
}

// Concurrent AssignAll and Assign calls on one registry must be
// race-free and keep the injectivity invariant.
func TestAssignAllConcurrent(t *testing.T) {
	r := NewRegistry(weakHasher{})
	var items [][]byte
	for i := 0; i < 32; i++ {
		items = append(items, []byte(fmt.Sprintf("payload %d", i%11)))
	}
	var wg sync.WaitGroup
	results := make([][]Fingerprint, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = r.AssignAll(items, 4)
		}(g)
	}
	wg.Wait()
	// Identical inputs always resolve to identical IDs, regardless of
	// which goroutine assigned first.
	for g := 1; g < 8; g++ {
		for i := range items {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d item %d = %s, want %s", g, i, results[g][i], results[0][i])
			}
		}
	}
}
