package gearregistry

import (
	"fmt"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/tarstream"
)

// BatchDownloader is implemented by stores that can serve many Gear
// files in one round trip, amortizing per-request overhead across the
// batch — the transfer shape behind the concurrent fetch engine.
type BatchDownloader interface {
	// DownloadBatch fetches the given Gear files in one request. The
	// payloads come back uncompressed, in request order, alongside the
	// total bytes that crossed the wire. The whole batch fails if any
	// fingerprint is malformed or absent.
	DownloadBatch(fps []hashing.Fingerprint) (payloads [][]byte, wireBytes int64, err error)
}

// DownloadBatch implements BatchDownloader on the in-process registry.
func (r *Registry) DownloadBatch(fps []hashing.Fingerprint) ([][]byte, int64, error) {
	r.downloads.Add(int64(len(fps)))
	for _, fp := range fps {
		if err := fp.Validate(); err != nil {
			return nil, 0, fmt.Errorf("gearregistry: batch: %w", err)
		}
	}
	// Gather all stored objects under one read lock so the batch is a
	// consistent snapshot, then decompress outside it.
	stored := make([][]byte, len(fps))
	var wire int64
	r.mu.RLock()
	for i, fp := range fps {
		b, ok := r.objects[fp]
		if !ok {
			r.mu.RUnlock()
			return nil, 0, fmt.Errorf("gearregistry: batch: %s: %w", fp, ErrNotFound)
		}
		stored[i] = b
		wire += int64(len(b))
	}
	r.mu.RUnlock()

	if !r.opts.Compress {
		return stored, wire, nil
	}
	payloads := make([][]byte, len(fps))
	for i, b := range stored {
		data, err := tarstream.Gunzip(b)
		if err != nil {
			return nil, 0, fmt.Errorf("gearregistry: batch %s: %w", fps[i], err)
		}
		payloads[i] = data
	}
	return payloads, wire, nil
}

// DownloadAll fetches every fingerprint from s, using one DownloadBatch
// round trip when s supports it and falling back to per-object Download
// otherwise. batched reports which path was taken, so callers can model
// the request cost accordingly.
func DownloadAll(s Store, fps []hashing.Fingerprint) (payloads [][]byte, wireBytes int64, batched bool, err error) {
	if len(fps) == 0 {
		return nil, 0, false, nil
	}
	if bd, ok := s.(BatchDownloader); ok {
		payloads, wireBytes, err = bd.DownloadBatch(fps)
		return payloads, wireBytes, true, err
	}
	payloads = make([][]byte, len(fps))
	for i, fp := range fps {
		data, wire, err := s.Download(fp)
		if err != nil {
			return nil, 0, false, err
		}
		payloads[i] = data
		wireBytes += wire
	}
	return payloads, wireBytes, false, nil
}

// DownloadBatch implements BatchDownloader with retries when the inner
// store batches; otherwise it degrades to per-object Download (each with
// its own retry budget).
func (r *RetryStore) DownloadBatch(fps []hashing.Fingerprint) ([][]byte, int64, error) {
	bd, ok := r.inner.(BatchDownloader)
	if !ok {
		payloads := make([][]byte, len(fps))
		var wire int64
		for i, fp := range fps {
			data, w, err := r.Download(fp)
			if err != nil {
				return nil, 0, err
			}
			payloads[i] = data
			wire += w
		}
		return payloads, wire, nil
	}
	var payloads [][]byte
	var wire int64
	err := r.do(func() error {
		var err error
		payloads, wire, err = bd.DownloadBatch(fps)
		return err
	})
	return payloads, wire, err
}

var _ BatchDownloader = (*Registry)(nil)
var _ BatchDownloader = (*RetryStore)(nil)
var _ BatchDownloader = (*Client)(nil)
