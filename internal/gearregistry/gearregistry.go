// Package gearregistry implements the Gear Registry of the paper (§III-C,
// §IV): a content-addressed file server holding Gear files — regular file
// contents named by the MD5 fingerprint of their bytes. The paper backs
// this with MinIO and exposes three HTTP interfaces (query, upload,
// download); this package provides the same three verbs both in-process
// and over HTTP.
//
// Because objects are keyed by fingerprint, identical files from any
// image dedup to one stored copy, which is the mechanism behind the
// paper's 54% registry storage saving (Fig 7).
package gearregistry

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/tarstream"
	"github.com/gear-image/gear/internal/telemetry"
)

// Errors returned by Gear Registry operations.
var (
	ErrNotFound            = errors.New("gear file not found")
	ErrFingerprintMismatch = errors.New("content does not match fingerprint")
)

// Store is the three-verb Gear file protocol from §IV of the paper.
type Store interface {
	// Query reports whether the Gear file is already stored; clients call
	// it before uploading so only absent files cross the wire.
	Query(fp hashing.Fingerprint) (bool, error)
	// Upload stores a Gear file under its fingerprint.
	Upload(fp hashing.Fingerprint, data []byte) error
	// Download fetches a Gear file by fingerprint. It returns the
	// uncompressed payload plus the number of bytes that crossed the
	// wire (smaller than the payload when the registry compresses
	// objects) — the quantity Fig 8's bandwidth study counts.
	Download(fp hashing.Fingerprint) (payload []byte, wireBytes int64, err error)
}

// Options configures a Registry.
type Options struct {
	// Compress stores objects gzip-compressed ("Gear files can be further
	// compressed for higher space efficiency", §III-C).
	Compress bool
	// SkipVerify disables fingerprint verification on upload. Collision
	// fallback IDs ("<fp>-cN") are never verifiable by hashing and are
	// always accepted.
	SkipVerify bool
	// Telemetry, if set, is the registry gear.* metrics publish into —
	// the pool gauges and per-verb request counters the /metrics
	// endpoint exposes. Nil gets private, live handles.
	Telemetry *telemetry.Registry
}

// Registry is the in-process Gear file store. It is safe for concurrent
// use.
type Registry struct {
	opts Options
	tele *telemetry.Registry

	mu      sync.RWMutex
	objects map[hashing.Fingerprint][]byte // stored (possibly compressed)
	logical map[hashing.Fingerprint]int64  // uncompressed sizes

	// Telemetry handles are the stats' only storage: the pool gauges
	// are maintained under mu on every mutation (making Stats O(1)),
	// and the request counters tick per verb call.
	objectsGauge *telemetry.Gauge
	storedBytes  *telemetry.Gauge
	logicalBytes *telemetry.Gauge
	dedupHits    *telemetry.Counter
	queries      *telemetry.Counter
	uploads      *telemetry.Counter
	downloads    *telemetry.Counter
	ranges       *telemetry.Counter
}

var _ Store = (*Registry)(nil)

// New returns an empty Gear Registry.
func New(opts Options) *Registry {
	tele := opts.Telemetry
	if tele == nil {
		tele = telemetry.NewRegistry()
	}
	return &Registry{
		opts:         opts,
		tele:         tele,
		objects:      make(map[hashing.Fingerprint][]byte),
		logical:      make(map[hashing.Fingerprint]int64),
		objectsGauge: tele.Gauge("gear.objects"),
		storedBytes:  tele.Gauge("gear.stored.bytes"),
		logicalBytes: tele.Gauge("gear.logical.bytes"),
		dedupHits:    tele.Counter("gear.dedup.hits"),
		queries:      tele.Counter("gear.query.requests"),
		uploads:      tele.Counter("gear.upload.requests"),
		downloads:    tele.Counter("gear.download.requests"),
		ranges:       tele.Counter("gear.range.requests"),
	}
}

// Telemetry returns the metrics registry this pool publishes into (the
// one from Options, or the private default).
func (r *Registry) Telemetry() *telemetry.Registry { return r.tele }

// StatsSnapshot returns the unified telemetry snapshot for this pool —
// what the /metrics endpoint serves.
func (r *Registry) StatsSnapshot() telemetry.Snapshot { return r.tele.Snapshot() }

// Snapshot implements telemetry.Snapshotter.
func (r *Registry) Snapshot() telemetry.Snapshot { return r.StatsSnapshot() }

// Query implements Store.
func (r *Registry) Query(fp hashing.Fingerprint) (bool, error) {
	r.queries.Inc()
	if err := fp.Validate(); err != nil {
		return false, fmt.Errorf("gearregistry: query: %w", err)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.objects[fp]
	return ok, nil
}

// Upload implements Store. Identical re-uploads are dropped and counted
// as dedup hits.
func (r *Registry) Upload(fp hashing.Fingerprint, data []byte) error {
	r.uploads.Inc()
	if err := fp.Validate(); err != nil {
		return fmt.Errorf("gearregistry: upload: %w", err)
	}
	if !r.opts.SkipVerify && len(fp) == 32 {
		if got := hashing.FingerprintBytes(data); got != fp {
			return fmt.Errorf("gearregistry: upload %s: %w", fp, ErrFingerprintMismatch)
		}
	}
	stored := data
	if r.opts.Compress {
		z, err := tarstream.Gzip(data)
		if err != nil {
			return fmt.Errorf("gearregistry: upload %s: %w", fp, err)
		}
		stored = z
	} else {
		stored = make([]byte, len(data))
		copy(stored, data)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.objects[fp]; ok {
		r.dedupHits.Inc()
		return nil
	}
	r.objects[fp] = stored
	r.logical[fp] = int64(len(data))
	r.objectsGauge.Add(1)
	r.storedBytes.Add(int64(len(stored)))
	r.logicalBytes.Add(int64(len(data)))
	return nil
}

// Download implements Store.
func (r *Registry) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	r.downloads.Inc()
	if err := fp.Validate(); err != nil {
		return nil, 0, fmt.Errorf("gearregistry: download: %w", err)
	}
	r.mu.RLock()
	stored, ok := r.objects[fp]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("gearregistry: %s: %w", fp, ErrNotFound)
	}
	wire := int64(len(stored))
	if r.opts.Compress {
		data, err := tarstream.Gunzip(stored)
		if err != nil {
			return nil, 0, fmt.Errorf("gearregistry: download %s: %w", fp, err)
		}
		return data, wire, nil
	}
	return stored, wire, nil
}

// downloadWire returns the stored bytes exactly as they would cross the
// wire, plus whether they are gzip-framed. The HTTP handler serves this
// so compression survives transport. It is a download entry point of
// its own, so it ticks the request counter like Download does.
func (r *Registry) downloadWire(fp hashing.Fingerprint) ([]byte, bool, error) {
	r.downloads.Inc()
	if err := fp.Validate(); err != nil {
		return nil, false, fmt.Errorf("gearregistry: download: %w", err)
	}
	r.mu.RLock()
	stored, ok := r.objects[fp]
	r.mu.RUnlock()
	if !ok {
		return nil, false, fmt.Errorf("gearregistry: %s: %w", fp, ErrNotFound)
	}
	return stored, r.opts.Compress, nil
}

// Size returns the uncompressed size of a stored Gear file without
// fetching it — used by deploy-time planners.
func (r *Registry) Size(fp hashing.Fingerprint) (int64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.logical[fp]
	if !ok {
		return 0, fmt.Errorf("gearregistry: %s: %w", fp, ErrNotFound)
	}
	return n, nil
}

// Fingerprints returns every stored fingerprint in sorted order — the
// enumeration that pool seeding and shard rebalancing walk. The slice is
// a snapshot; concurrent mutations are not reflected.
func (r *Registry) Fingerprints() []hashing.Fingerprint {
	r.mu.RLock()
	out := make([]hashing.Fingerprint, 0, len(r.objects))
	for fp := range r.objects {
		out = append(out, fp)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Delete removes a single object, returning the stored bytes freed.
// Deleting an absent object reports ErrNotFound. Unlike Retain (the
// reference-driven GC sweep), Delete is the shard-rebalancing primitive:
// an ex-replica drops exactly the objects the ring moved away.
func (r *Registry) Delete(fp hashing.Fingerprint) (int64, error) {
	if err := fp.Validate(); err != nil {
		return 0, fmt.Errorf("gearregistry: delete: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	stored, ok := r.objects[fp]
	if !ok {
		return 0, fmt.Errorf("gearregistry: %s: %w", fp, ErrNotFound)
	}
	freed := int64(len(stored))
	r.logicalBytes.Add(-r.logical[fp])
	delete(r.objects, fp)
	delete(r.logical, fp)
	r.objectsGauge.Add(-1)
	r.storedBytes.Add(-freed)
	return freed, nil
}

// Retain garbage-collects the pool: every object whose fingerprint is
// not in keep is removed. Registry operators run this after deleting
// index images (the paper's lifecycle decoupling means file deletion is
// a separate, reference-driven step). It returns the number of objects
// removed and the stored bytes freed.
func (r *Registry) Retain(keep map[hashing.Fingerprint]bool) (removed int, freed int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for fp, stored := range r.objects {
		if keep[fp] {
			continue
		}
		removed++
		freed += int64(len(stored))
		r.logicalBytes.Add(-r.logical[fp])
		delete(r.objects, fp)
		delete(r.logical, fp)
	}
	r.objectsGauge.Add(-int64(removed))
	r.storedBytes.Add(-freed)
	return removed, freed
}

// Stats summarizes the Gear file pool: a view over the gear.* telemetry
// gauges, which are maintained on every mutation — O(1) now instead of
// a full pool walk.
type Stats struct {
	Objects      int   `json:"objects"`
	StoredBytes  int64 `json:"storedBytes"`  // on-disk (compressed if enabled)
	LogicalBytes int64 `json:"logicalBytes"` // sum of uncompressed sizes
	DedupHits    int64 `json:"dedupHits"`
}

// Stats returns a snapshot of pool usage.
func (r *Registry) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Stats{
		Objects:      len(r.objects),
		StoredBytes:  r.storedBytes.Value(),
		LogicalBytes: r.logicalBytes.Value(),
		DedupHits:    r.dedupHits.Value(),
	}
}
