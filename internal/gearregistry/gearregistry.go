// Package gearregistry implements the Gear Registry of the paper (§III-C,
// §IV): a content-addressed file server holding Gear files — regular file
// contents named by the MD5 fingerprint of their bytes. The paper backs
// this with MinIO and exposes three HTTP interfaces (query, upload,
// download); this package provides the same three verbs both in-process
// and over HTTP.
//
// Because objects are keyed by fingerprint, identical files from any
// image dedup to one stored copy, which is the mechanism behind the
// paper's 54% registry storage saving (Fig 7).
package gearregistry

import (
	"errors"
	"fmt"
	"sync"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/tarstream"
)

// Errors returned by Gear Registry operations.
var (
	ErrNotFound            = errors.New("gear file not found")
	ErrFingerprintMismatch = errors.New("content does not match fingerprint")
)

// Store is the three-verb Gear file protocol from §IV of the paper.
type Store interface {
	// Query reports whether the Gear file is already stored; clients call
	// it before uploading so only absent files cross the wire.
	Query(fp hashing.Fingerprint) (bool, error)
	// Upload stores a Gear file under its fingerprint.
	Upload(fp hashing.Fingerprint, data []byte) error
	// Download fetches a Gear file by fingerprint. It returns the
	// uncompressed payload plus the number of bytes that crossed the
	// wire (smaller than the payload when the registry compresses
	// objects) — the quantity Fig 8's bandwidth study counts.
	Download(fp hashing.Fingerprint) (payload []byte, wireBytes int64, err error)
}

// Options configures a Registry.
type Options struct {
	// Compress stores objects gzip-compressed ("Gear files can be further
	// compressed for higher space efficiency", §III-C).
	Compress bool
	// SkipVerify disables fingerprint verification on upload. Collision
	// fallback IDs ("<fp>-cN") are never verifiable by hashing and are
	// always accepted.
	SkipVerify bool
}

// Registry is the in-process Gear file store. It is safe for concurrent
// use.
type Registry struct {
	opts Options

	mu      sync.RWMutex
	objects map[hashing.Fingerprint][]byte // stored (possibly compressed)
	logical map[hashing.Fingerprint]int64  // uncompressed sizes
	// dedupHits counts uploads that found the object already present.
	dedupHits int64
}

var _ Store = (*Registry)(nil)

// New returns an empty Gear Registry.
func New(opts Options) *Registry {
	return &Registry{
		opts:    opts,
		objects: make(map[hashing.Fingerprint][]byte),
		logical: make(map[hashing.Fingerprint]int64),
	}
}

// Query implements Store.
func (r *Registry) Query(fp hashing.Fingerprint) (bool, error) {
	if err := fp.Validate(); err != nil {
		return false, fmt.Errorf("gearregistry: query: %w", err)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.objects[fp]
	return ok, nil
}

// Upload implements Store. Identical re-uploads are dropped and counted
// as dedup hits.
func (r *Registry) Upload(fp hashing.Fingerprint, data []byte) error {
	if err := fp.Validate(); err != nil {
		return fmt.Errorf("gearregistry: upload: %w", err)
	}
	if !r.opts.SkipVerify && len(fp) == 32 {
		if got := hashing.FingerprintBytes(data); got != fp {
			return fmt.Errorf("gearregistry: upload %s: %w", fp, ErrFingerprintMismatch)
		}
	}
	stored := data
	if r.opts.Compress {
		z, err := tarstream.Gzip(data)
		if err != nil {
			return fmt.Errorf("gearregistry: upload %s: %w", fp, err)
		}
		stored = z
	} else {
		stored = make([]byte, len(data))
		copy(stored, data)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.objects[fp]; ok {
		r.dedupHits++
		return nil
	}
	r.objects[fp] = stored
	r.logical[fp] = int64(len(data))
	return nil
}

// Download implements Store.
func (r *Registry) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	if err := fp.Validate(); err != nil {
		return nil, 0, fmt.Errorf("gearregistry: download: %w", err)
	}
	r.mu.RLock()
	stored, ok := r.objects[fp]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("gearregistry: %s: %w", fp, ErrNotFound)
	}
	wire := int64(len(stored))
	if r.opts.Compress {
		data, err := tarstream.Gunzip(stored)
		if err != nil {
			return nil, 0, fmt.Errorf("gearregistry: download %s: %w", fp, err)
		}
		return data, wire, nil
	}
	return stored, wire, nil
}

// downloadWire returns the stored bytes exactly as they would cross the
// wire, plus whether they are gzip-framed. The HTTP handler serves this
// so compression survives transport.
func (r *Registry) downloadWire(fp hashing.Fingerprint) ([]byte, bool, error) {
	if err := fp.Validate(); err != nil {
		return nil, false, fmt.Errorf("gearregistry: download: %w", err)
	}
	r.mu.RLock()
	stored, ok := r.objects[fp]
	r.mu.RUnlock()
	if !ok {
		return nil, false, fmt.Errorf("gearregistry: %s: %w", fp, ErrNotFound)
	}
	return stored, r.opts.Compress, nil
}

// Size returns the uncompressed size of a stored Gear file without
// fetching it — used by deploy-time planners.
func (r *Registry) Size(fp hashing.Fingerprint) (int64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.logical[fp]
	if !ok {
		return 0, fmt.Errorf("gearregistry: %s: %w", fp, ErrNotFound)
	}
	return n, nil
}

// Retain garbage-collects the pool: every object whose fingerprint is
// not in keep is removed. Registry operators run this after deleting
// index images (the paper's lifecycle decoupling means file deletion is
// a separate, reference-driven step). It returns the number of objects
// removed and the stored bytes freed.
func (r *Registry) Retain(keep map[hashing.Fingerprint]bool) (removed int, freed int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for fp, stored := range r.objects {
		if keep[fp] {
			continue
		}
		removed++
		freed += int64(len(stored))
		delete(r.objects, fp)
		delete(r.logical, fp)
	}
	return removed, freed
}

// Stats summarizes the Gear file pool.
type Stats struct {
	Objects      int   `json:"objects"`
	StoredBytes  int64 `json:"storedBytes"`  // on-disk (compressed if enabled)
	LogicalBytes int64 `json:"logicalBytes"` // sum of uncompressed sizes
	DedupHits    int64 `json:"dedupHits"`
}

// Stats returns a snapshot of pool usage.
func (r *Registry) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Stats{Objects: len(r.objects), DedupHits: r.dedupHits}
	for fp, b := range r.objects {
		s.StoredBytes += int64(len(b))
		s.LogicalBytes += r.logical[fp]
	}
	return s
}
