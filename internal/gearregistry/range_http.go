package gearregistry

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/gear-image/gear/internal/hashing"
)

// HTTP transport for the range verb:
//
//	GET /gear/range/{fingerprint}/{off}/{n}
//
// A successful response is one strict frame,
//
//	<fingerprint> <off> <n> <total>\n
//
// followed by exactly n raw payload bytes — the uncompressed
// [off, off+n) slice. The header echoes the request and carries the
// object's total uncompressed size so clients can plan later ranges;
// any mismatch between header, request, and body length is a protocol
// error. Out-of-bounds ranges answer 416.

// parseRangePath decodes "/gear/range/{fp}/{off}/{n}". The fingerprint
// itself never contains '/', so the last two segments are
// unambiguously the offsets.
func parseRangePath(p string) (fp hashing.Fingerprint, off, n int64, ok bool) {
	rest, found := strings.CutPrefix(p, "/gear/range/")
	if !found {
		return "", 0, 0, false
	}
	rawFP, nums, found := strings.Cut(rest, "/")
	if !found || rawFP == "" {
		return "", 0, 0, false
	}
	rawOff, rawN, found := strings.Cut(nums, "/")
	if !found {
		return "", 0, 0, false
	}
	off, err := strconv.ParseInt(rawOff, 10, 64)
	if err != nil {
		return "", 0, 0, false
	}
	n, err = strconv.ParseInt(rawN, 10, 64)
	if err != nil {
		return "", 0, 0, false
	}
	return hashing.Fingerprint(rawFP), off, n, true
}

// serveRange implements GET /gear/range/{fp}/{off}/{n}.
func (h *Handler) serveRange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	fp, off, n, ok := parseRangePath(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	payload, _, err := h.reg.DownloadRange(fp, off, n)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrNotFound):
			status = http.StatusNotFound
		case errors.Is(err, ErrBadRange):
			status = http.StatusRequestedRangeNotSatisfiable
		case errors.Is(err, hashing.ErrMalformed):
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	total, err := h.reg.Size(fp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	fmt.Fprintf(w, "%s %d %d %d\n", fp, off, n, total)
	_, _ = w.Write(payload)
}

// rangeFrame is a decoded /gear/range response.
type rangeFrame struct {
	fp      hashing.Fingerprint
	off     int64
	n       int64
	total   int64
	payload []byte
}

// parseRangeResponse decodes the strict /gear/range framing. Every
// deviation — missing header, short or long body, negative numbers, a
// range that does not fit the declared total — is rejected.
func parseRangeResponse(body []byte) (rangeFrame, error) {
	var f rangeFrame
	nl := bytes.IndexByte(body, '\n')
	if nl < 0 {
		return f, fmt.Errorf("truncated range header %q", body)
	}
	header := string(body[:nl])
	payload := body[nl+1:]
	fields := strings.Fields(header)
	if len(fields) != 4 {
		return f, fmt.Errorf("malformed range header %q", header)
	}
	fp := hashing.Fingerprint(fields[0])
	if err := fp.Validate(); err != nil {
		return f, fmt.Errorf("range header %q: %w", header, err)
	}
	nums := make([]int64, 3)
	for i, raw := range fields[1:] {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return f, fmt.Errorf("range header %q: bad number %q", header, raw)
		}
		nums[i] = v
	}
	off, n, total := nums[0], nums[1], nums[2]
	if off < 0 || n <= 0 || total < 0 || off+n > total {
		return f, fmt.Errorf("range header %q: %w", header, ErrBadRange)
	}
	if int64(len(payload)) != n {
		return f, fmt.Errorf("range %s [%d,+%d): body is %d bytes", fp, off, n, len(payload))
	}
	return rangeFrame{fp: fp, off: off, n: n, total: total, payload: payload}, nil
}

// DownloadRange implements RangeDownloader over HTTP via GET
// /gear/range. The wire size is the framed body as transported.
func (c *Client) DownloadRange(fp hashing.Fingerprint, off, n int64) ([]byte, int64, error) {
	resp, err := c.http.Get(fmt.Sprintf("%s/gear/range/%s/%d/%d", c.base, fp, off, n))
	if err != nil {
		return nil, 0, fmt.Errorf("gearregistry client: range %s: %w", fp, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("gearregistry client: range %s: %w", fp, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, 0, fmt.Errorf("gearregistry client: %s: %w", fp, ErrNotFound)
	case http.StatusRequestedRangeNotSatisfiable:
		return nil, 0, fmt.Errorf("gearregistry client: range %s [%d,+%d): %s: %w",
			fp, off, n, strings.TrimSpace(string(body)), ErrBadRange)
	default:
		return nil, 0, fmt.Errorf("gearregistry client: range %s: %s: %s",
			fp, resp.Status, strings.TrimSpace(string(body)))
	}
	frame, err := parseRangeResponse(body)
	if err != nil {
		return nil, 0, fmt.Errorf("gearregistry client: range: %w", err)
	}
	if frame.fp != fp || frame.off != off || frame.n != n {
		return nil, 0, fmt.Errorf("gearregistry client: range %s [%d,+%d): server echoed %s [%d,+%d)",
			fp, off, n, frame.fp, frame.off, frame.n)
	}
	return frame.payload, int64(len(body)), nil
}
