package gearregistry

import (
	"errors"
	"testing"
	"time"

	"github.com/gear-image/gear/internal/hashing"
)

// flakyStore fails the first failures calls of each operation with a
// transient error.
type flakyStore struct {
	inner    Store
	failures int
	calls    int
}

var errTransient = errors.New("connection reset")

func (f *flakyStore) tick() error {
	f.calls++
	if f.calls <= f.failures {
		return errTransient
	}
	return nil
}

func (f *flakyStore) Query(fp hashing.Fingerprint) (bool, error) {
	if err := f.tick(); err != nil {
		return false, err
	}
	return f.inner.Query(fp)
}

func (f *flakyStore) Upload(fp hashing.Fingerprint, data []byte) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.inner.Upload(fp, data)
}

func (f *flakyStore) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	if err := f.tick(); err != nil {
		return nil, 0, err
	}
	return f.inner.Download(fp)
}

func TestNewRetryStoreValidates(t *testing.T) {
	if _, err := NewRetryStore(New(Options{}), 0); !errors.Is(err, ErrBadAttempts) {
		t.Errorf("err = %v, want ErrBadAttempts", err)
	}
}

func TestRetryRecoversFromTransientFailures(t *testing.T) {
	inner := New(Options{})
	// Retried uploads probe with Query first, and the flaky store fails
	// any operation while failures remain: attempt 1 upload fails, retry
	// 2's probe fails (ignored), its upload fails, retry 3's probe sees
	// the object absent and the upload finally lands.
	flaky := &flakyStore{inner: inner, failures: 3}
	r, err := NewRetryStore(flaky, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("eventually consistent")
	fp := hashing.FingerprintBytes(data)
	if err := r.Upload(fp, data); err != nil {
		t.Fatalf("upload with retries failed: %v", err)
	}
	if r.Retries() != 2 {
		t.Errorf("retries = %d, want 2", r.Retries())
	}
	got, _, err := r.Download(fp)
	if err != nil || string(got) != string(data) {
		t.Errorf("download = %q, %v", got, err)
	}
}

func TestRetryGivesUpAfterBound(t *testing.T) {
	flaky := &flakyStore{inner: New(Options{}), failures: 10}
	r, err := NewRetryStore(flaky, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Upload(hashing.FingerprintBytes([]byte("x")), []byte("x")); !errors.Is(err, errTransient) {
		t.Errorf("err = %v, want wrapped errTransient", err)
	}
	// 3 uploads plus the idempotency probe before each of the 2 retries.
	if flaky.calls != 5 {
		t.Errorf("calls = %d, want 5", flaky.calls)
	}
}

// lossyStore lands uploads server-side but loses the first N responses —
// the failure mode that makes naive upload retries double-count dedup.
type lossyStore struct {
	inner  *Registry
	losses int
}

func (l *lossyStore) Query(fp hashing.Fingerprint) (bool, error) { return l.inner.Query(fp) }
func (l *lossyStore) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	return l.inner.Download(fp)
}
func (l *lossyStore) Upload(fp hashing.Fingerprint, data []byte) error {
	err := l.inner.Upload(fp, data)
	if err == nil && l.losses > 0 {
		l.losses--
		return errTransient
	}
	return err
}

func TestRetryUploadIsIdempotent(t *testing.T) {
	inner := New(Options{})
	lossy := &lossyStore{inner: inner, losses: 1}
	r, err := NewRetryStore(lossy, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("landed but response lost")
	fp := hashing.FingerprintBytes(data)
	if err := r.Upload(fp, data); err != nil {
		t.Fatalf("upload: %v", err)
	}
	// The retry's Query probe saw the object present and did not
	// re-upload, so the registry records no duplicate-upload hit.
	st := inner.Stats()
	if st.DedupHits != 0 {
		t.Errorf("dedup hits = %d, want 0 (retry must not re-upload)", st.DedupHits)
	}
	if st.Objects != 1 {
		t.Errorf("objects = %d, want 1", st.Objects)
	}
}

func TestRetryBackoff(t *testing.T) {
	if _, err := NewRetryStoreBackoff(New(Options{}), 3, -1); !errors.Is(err, ErrBadAttempts) {
		t.Errorf("negative backoff: err = %v, want ErrBadAttempts", err)
	}
	flaky := &flakyStore{inner: New(Options{}), failures: 2}
	r, err := NewRetryStoreBackoff(flaky, 3, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("backed off")
	start := time.Now()
	if _, err := r.Query(hashing.FingerprintBytes(data)); err != nil {
		t.Fatalf("query: %v", err)
	}
	// Two retries sleep 1ms + 2ms under exponential backoff.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("elapsed = %v, want >= 3ms of backoff", elapsed)
	}
}

func TestRetryDoesNotRetryPermanentErrors(t *testing.T) {
	inner := New(Options{})
	flaky := &flakyStore{inner: inner, failures: 0}
	r, err := NewRetryStore(flaky, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Missing object: immediate failure, no retries.
	if _, _, err := r.Download(hashing.FingerprintBytes([]byte("ghost"))); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if flaky.calls != 1 {
		t.Errorf("calls = %d, want 1 (no retry on permanent error)", flaky.calls)
	}
	// Fingerprint mismatch: same.
	flaky.calls = 0
	if err := r.Upload(hashing.FingerprintBytes([]byte("a")), []byte("b")); !errors.Is(err, ErrFingerprintMismatch) {
		t.Errorf("err = %v", err)
	}
	if flaky.calls != 1 {
		t.Errorf("calls = %d, want 1", flaky.calls)
	}
	if r.Retries() != 0 {
		t.Errorf("retries = %d, want 0", r.Retries())
	}
}

func TestRetryQueryPassesThrough(t *testing.T) {
	inner := New(Options{})
	data := []byte("present")
	fp := hashing.FingerprintBytes(data)
	if err := inner.Upload(fp, data); err != nil {
		t.Fatal(err)
	}
	r, err := NewRetryStore(&flakyStore{inner: inner, failures: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := r.Query(fp)
	if err != nil || !ok {
		t.Errorf("Query = %v, %v", ok, err)
	}
}
