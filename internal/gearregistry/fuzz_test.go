package gearregistry

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/gear-image/gear/internal/hashing"
)

// FuzzBatchHandler: the /gear/batch handler must never panic on
// arbitrary fingerprint lists, and every 200 response must parse with
// the client framing and contain only objects the registry holds.
func FuzzBatchHandler(f *testing.F) {
	reg := New(Options{})
	known := hashing.FingerprintBytes([]byte("known object"))
	if err := reg.Upload(known, []byte("known object")); err != nil {
		f.Fatal(err)
	}
	compressed := New(Options{Compress: true})
	if err := compressed.Upload(known, []byte("known object")); err != nil {
		f.Fatal(err)
	}

	f.Add("")
	f.Add("\n\n\n")
	f.Add(string(known) + "\n")
	f.Add(string(known) + "\n" + string(known) + "\n") // duplicates
	f.Add("d41d8cd98f00b204e9800998ecf8427e\n")        // unknown but well-formed
	f.Add("zzzz\n")                                    // malformed
	f.Add(string(known) + "\nnot a fingerprint\n")
	f.Add("d41d8cd98f00b204e9800998ecf8427e-c2\n") // collision id form
	f.Add(string(known) + " 5 raw\nhello")         // framing-shaped input

	f.Fuzz(func(t *testing.T, body string) {
		for _, reg := range []*Registry{reg, compressed} {
			req := httptest.NewRequest(http.MethodPost, "/gear/batch", bytes.NewReader([]byte(body)))
			rec := httptest.NewRecorder()
			NewHandler(reg).ServeHTTP(rec, req)

			switch rec.Code {
			case http.StatusOK:
				objects, err := parseBatchResponse(rec.Body.Bytes())
				if err != nil {
					t.Fatalf("200 response does not parse: %v", err)
				}
				for _, o := range objects {
					if err := o.fp.Validate(); err != nil {
						t.Fatalf("served invalid fingerprint %q", o.fp)
					}
					present, err := reg.Query(o.fp)
					if err != nil || !present {
						t.Fatalf("served object %s the registry does not hold", o.fp)
					}
				}
			case http.StatusBadRequest, http.StatusNotFound:
				// Rejected lists are fine; the handler just must not panic
				// or serve partial garbage.
			default:
				t.Fatalf("unexpected status %d", rec.Code)
			}
		}
	})
}

// FuzzQueryBatchHandler: the /gear/querybatch handler must never panic
// on arbitrary fingerprint lists, and every 200 response must parse with
// the client framing, echo the request order, and agree with per-object
// Query verdicts.
func FuzzQueryBatchHandler(f *testing.F) {
	reg := New(Options{})
	known := hashing.FingerprintBytes([]byte("known object"))
	if err := reg.Upload(known, []byte("known object")); err != nil {
		f.Fatal(err)
	}

	f.Add("")
	f.Add("\n\n\n")
	f.Add(string(known) + "\n")
	f.Add(string(known) + "\n" + string(known) + "\n") // duplicates
	f.Add("d41d8cd98f00b204e9800998ecf8427e\n")        // unknown but well-formed
	f.Add("zzzz\n")                                    // malformed
	f.Add(string(known) + "\nnot a fingerprint\n")
	f.Add("d41d8cd98f00b204e9800998ecf8427e-c2\n") // collision id form
	f.Add(string(known) + " present\n")            // response-shaped input

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/gear/querybatch", bytes.NewReader([]byte(body)))
		rec := httptest.NewRecorder()
		NewHandler(reg).ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusOK:
			present, fps, err := parseQueryBatchResponse(rec.Body.Bytes())
			if err != nil {
				t.Fatalf("200 response does not parse: %v", err)
			}
			if len(present) != len(fps) {
				t.Fatalf("%d verdicts for %d fingerprints", len(present), len(fps))
			}
			for i, fp := range fps {
				got, err := reg.Query(fp)
				if err != nil {
					t.Fatalf("served invalid fingerprint %q: %v", fp, err)
				}
				if got != present[i] {
					t.Fatalf("verdict for %s = %v, registry says %v", fp, present[i], got)
				}
			}
		case http.StatusBadRequest:
			// Malformed lists are rejected whole; the handler just must
			// not panic or answer a partial batch.
		default:
			t.Fatalf("unexpected status %d", rec.Code)
		}
	})
}

// FuzzParseQueryBatchResponse: the client-side verdict parser must never
// panic and must only accept well-formed fingerprint/verdict lines.
func FuzzParseQueryBatchResponse(f *testing.F) {
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e present\n"))
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e absent\n"))
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e-c2 present\n"))
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e maybe\n"))
	f.Add([]byte("zzzz present\n"))
	f.Add([]byte("no verdict"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		present, fps, err := parseQueryBatchResponse(data)
		if err != nil {
			return
		}
		if len(present) != len(fps) {
			t.Fatalf("%d verdicts for %d fingerprints", len(present), len(fps))
		}
		for _, fp := range fps {
			if err := fp.Validate(); err != nil {
				t.Fatalf("accepted invalid fingerprint %q", fp)
			}
		}
	})
}

// FuzzParseBatchResponse: the client-side frame parser must never panic
// and must only accept frames whose payload lengths are consistent.
func FuzzParseBatchResponse(f *testing.F) {
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e 5 raw\nhello"))
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e 0 gzip\n"))
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e 99 raw\nshort"))
	f.Add([]byte("zzzz 5 raw\nhello"))
	f.Add([]byte("no header"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		objects, err := parseBatchResponse(data)
		if err != nil {
			return
		}
		var total int
		for _, o := range objects {
			if err := o.fp.Validate(); err != nil {
				t.Fatalf("accepted invalid fingerprint %q", o.fp)
			}
			total += len(o.stored)
		}
		if total > len(data) {
			t.Fatalf("parsed %d payload bytes from %d input bytes", total, len(data))
		}
	})
}

// FuzzParseRangeResponse: the client-side range frame parser must never
// panic and must only accept frames whose header and payload agree.
func FuzzParseRangeResponse(f *testing.F) {
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e 0 5 100\nhello"))
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e 95 5 100\nhello"))
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e 99 5 100\nhello")) // past the end
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e 0 5 100\nhi"))     // short body
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e 0 5 100\nhello world"))
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e -1 5 100\nhello"))
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e 0 0 100\n"))
	f.Add([]byte("zzzz 0 5 100\nhello"))
	f.Add([]byte("no header"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := parseRangeResponse(data)
		if err != nil {
			return
		}
		if err := frame.fp.Validate(); err != nil {
			t.Fatalf("accepted invalid fingerprint %q", frame.fp)
		}
		if frame.off < 0 || frame.n <= 0 || frame.off+frame.n > frame.total {
			t.Fatalf("accepted inconsistent range [%d,+%d) of %d", frame.off, frame.n, frame.total)
		}
		if int64(len(frame.payload)) != frame.n {
			t.Fatalf("payload %d bytes for declared %d", len(frame.payload), frame.n)
		}
	})
}

// FuzzRangeHandler: the /gear/range handler must never panic on
// arbitrary paths, and every 200 response must parse with the client
// framing and carry the true object slice.
func FuzzRangeHandler(f *testing.F) {
	reg := New(Options{Compress: true})
	payload := []byte("the quick brown fox jumps over the lazy dog")
	known := hashing.FingerprintBytes(payload)
	if err := reg.Upload(known, payload); err != nil {
		f.Fatal(err)
	}
	f.Add(string(known) + "/0/5")
	f.Add(string(known) + "/40/3")
	f.Add(string(known) + "/40/99")
	f.Add(string(known) + "/-1/5")
	f.Add(string(known) + "/0/0")
	f.Add(string(known))
	f.Add("zzzz/0/5")
	f.Add("../../etc/passwd")
	f.Add("")
	f.Fuzz(func(t *testing.T, tail string) {
		req := httptest.NewRequest(http.MethodGet, "/gear/range/"+tail, nil)
		rec := httptest.NewRecorder()
		NewHandler(reg).ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
			frame, err := parseRangeResponse(rec.Body.Bytes())
			if err != nil {
				t.Fatalf("200 response does not parse: %v", err)
			}
			want, _, err := reg.DownloadRange(frame.fp, frame.off, frame.n)
			if err != nil {
				t.Fatalf("served a range the registry rejects: %v", err)
			}
			if !bytes.Equal(frame.payload, want) {
				t.Fatalf("served wrong bytes for %s [%d,+%d)", frame.fp, frame.off, frame.n)
			}
		case http.StatusBadRequest, http.StatusNotFound, http.StatusRequestedRangeNotSatisfiable:
		default:
			t.Fatalf("unexpected status %d", rec.Code)
		}
	})
}
