package gearregistry

import (
	"errors"
	"fmt"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/tarstream"
)

// The range verb: the fourth Gear file interface, added for chunked
// lazy loading. Where Download moves a whole object, DownloadRange
// moves exactly the [off, off+n) slice of its uncompressed content —
// what a viewer faulting one read's worth of a big model file needs.
// The verb is optional (RangeDownloader); stores that lack it keep the
// three-verb contract and callers fall back to whole-object fetches.

// Errors returned by range downloads.
var (
	// ErrBadRange reports a range that is malformed or does not fit the
	// object: negative offset, non-positive length, or off+n past the
	// end. Ranges are strict — a clamped read would silently hand the
	// caller fewer bytes than it asked for.
	ErrBadRange = errors.New("invalid byte range")
	// ErrRangeUnsupported reports a store without the range verb.
	ErrRangeUnsupported = errors.New("range downloads unsupported")
)

// RangeDownloader is the optional byte-range extension of Store.
type RangeDownloader interface {
	// DownloadRange fetches the [off, off+n) slice of the object's
	// uncompressed content. wireBytes is what actually crossed the wire
	// — n for an in-process registry, the framed body for HTTP. The
	// whole range must fit inside the object or ErrBadRange is
	// returned.
	DownloadRange(fp hashing.Fingerprint, off, n int64) (payload []byte, wireBytes int64, err error)
}

// DownloadRange implements RangeDownloader. Compressed pools inflate
// server-side and serve the raw slice, so the wire carries exactly n
// bytes — a range of a gzip stream is not independently decodable.
func (r *Registry) DownloadRange(fp hashing.Fingerprint, off, n int64) ([]byte, int64, error) {
	r.ranges.Inc()
	if err := fp.Validate(); err != nil {
		return nil, 0, fmt.Errorf("gearregistry: range: %w", err)
	}
	if off < 0 || n <= 0 {
		return nil, 0, fmt.Errorf("gearregistry: range [%d,+%d): %w", off, n, ErrBadRange)
	}
	r.mu.RLock()
	stored, ok := r.objects[fp]
	size := r.logical[fp]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("gearregistry: %s: %w", fp, ErrNotFound)
	}
	if off+n > size {
		return nil, 0, fmt.Errorf("gearregistry: range [%d,+%d) of %d-byte %s: %w",
			off, n, size, fp, ErrBadRange)
	}
	data := stored
	if r.opts.Compress {
		var err error
		if data, err = tarstream.Gunzip(stored); err != nil {
			return nil, 0, fmt.Errorf("gearregistry: range %s: %w", fp, err)
		}
	}
	out := make([]byte, n)
	copy(out, data[off:off+n])
	return out, n, nil
}

// DownloadRange implements RangeDownloader with retries when the inner
// store supports the verb; a store without it reports
// ErrRangeUnsupported immediately.
func (r *RetryStore) DownloadRange(fp hashing.Fingerprint, off, n int64) ([]byte, int64, error) {
	rd, ok := r.inner.(RangeDownloader)
	if !ok {
		return nil, 0, fmt.Errorf("gearregistry: retry: %w", ErrRangeUnsupported)
	}
	var payload []byte
	var wire int64
	err := r.do(func() error {
		var err error
		payload, wire, err = rd.DownloadRange(fp, off, n)
		return err
	})
	return payload, wire, err
}
