package gearregistry

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/gear-image/gear/internal/clientopt"
	"github.com/gear-image/gear/internal/hashing"
)

func rangeObject(t *testing.T, reg *Registry) (hashing.Fingerprint, []byte) {
	t.Helper()
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	fp := hashing.FingerprintBytes(data)
	if err := reg.Upload(fp, data); err != nil {
		t.Fatal(err)
	}
	return fp, data
}

func TestRegistryDownloadRange(t *testing.T) {
	for _, compress := range []bool{false, true} {
		reg := New(Options{Compress: compress})
		fp, data := rangeObject(t, reg)
		for _, r := range []struct{ off, n int64 }{
			{0, 1}, {0, 10000}, {9999, 1}, {1234, 4321},
		} {
			got, wire, err := reg.DownloadRange(fp, r.off, r.n)
			if err != nil {
				t.Fatalf("compress=%v range [%d,+%d): %v", compress, r.off, r.n, err)
			}
			if wire != r.n || !bytes.Equal(got, data[r.off:r.off+r.n]) {
				t.Fatalf("compress=%v range [%d,+%d): wrong slice (wire %d)", compress, r.off, r.n, wire)
			}
		}
		for _, r := range []struct{ off, n int64 }{
			{-1, 5}, {0, 0}, {0, -1}, {9999, 2}, {10000, 1}, {0, 10001},
		} {
			if _, _, err := reg.DownloadRange(fp, r.off, r.n); !errors.Is(err, ErrBadRange) {
				t.Fatalf("compress=%v range [%d,+%d) = %v, want ErrBadRange", compress, r.off, r.n, err)
			}
		}
		absent := hashing.FingerprintBytes([]byte("absent"))
		if _, _, err := reg.DownloadRange(absent, 0, 1); !errors.Is(err, ErrNotFound) {
			t.Fatalf("absent object: %v", err)
		}
		if _, _, err := reg.DownloadRange("zz", 0, 1); !errors.Is(err, hashing.ErrMalformed) {
			t.Fatalf("malformed fp: %v", err)
		}
	}
}

func TestRangeHTTPRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		reg := New(Options{Compress: compress})
		fp, data := rangeObject(t, reg)
		srv := httptest.NewServer(NewHandler(reg))
		defer srv.Close()
		c := NewClient(srv.URL, srv.Client())

		got, wire, err := c.DownloadRange(fp, 500, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[500:2500]) {
			t.Fatalf("compress=%v: wrong payload", compress)
		}
		// Wire = header + exactly n payload bytes, never the whole object.
		if wire <= 2000 || wire >= 2100 {
			t.Fatalf("compress=%v: wire = %d", compress, wire)
		}

		if _, _, err := c.DownloadRange(fp, 9000, 2000); !errors.Is(err, ErrBadRange) {
			t.Fatalf("oob range over HTTP: %v", err)
		}
		absent := hashing.FingerprintBytes([]byte("absent"))
		if _, _, err := c.DownloadRange(absent, 0, 1); !errors.Is(err, ErrNotFound) {
			t.Fatalf("absent over HTTP: %v", err)
		}
	}
}

func TestRangeHTTPVerbSurface(t *testing.T) {
	reg := New(Options{})
	fp, _ := rangeObject(t, reg)
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	// Wrong method.
	resp, err := http.Post(srv.URL+"/gear/range/"+string(fp)+"/0/1", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST range = %d", resp.StatusCode)
	}
	// Malformed paths 404.
	for _, p := range []string{
		"/gear/range/", "/gear/range/" + string(fp), "/gear/range/" + string(fp) + "/0",
		"/gear/range/" + string(fp) + "/x/1", "/gear/range/" + string(fp) + "/0/y",
	} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", p, resp.StatusCode)
		}
	}
}

// The retry wrapper passes ranges through, retries transient failures,
// and refuses stores without the verb.
func TestRetryStoreDownloadRange(t *testing.T) {
	reg := New(Options{})
	fp, data := rangeObject(t, reg)
	r, err := NewRetryStore(reg, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, wire, err := r.DownloadRange(fp, 10, 20)
	if err != nil || wire != 20 || !bytes.Equal(got, data[10:30]) {
		t.Fatalf("retry range = %v (wire %d)", err, wire)
	}
	// Bad ranges are permanent: no retries burned.
	if _, _, err := r.DownloadRange(fp, 0, 1<<40); !errors.Is(err, ErrBadRange) {
		t.Fatalf("retry oob = %v", err)
	}
	if r.Retries() != 0 {
		t.Fatalf("burned %d retries on permanent errors", r.Retries())
	}

	bare, err := NewRetryStore(rangelessStore{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bare.DownloadRange(fp, 0, 1); !errors.Is(err, ErrRangeUnsupported) {
		t.Fatalf("rangeless inner = %v", err)
	}
}

// rangelessStore implements Store but not RangeDownloader.
type rangelessStore struct{}

func (rangelessStore) Query(hashing.Fingerprint) (bool, error)  { return false, nil }
func (rangelessStore) Upload(hashing.Fingerprint, []byte) error { return nil }
func (rangelessStore) Download(hashing.Fingerprint) ([]byte, int64, error) {
	return nil, 0, errors.New("nope")
}

func TestClientWithOptionsSupportsRange(t *testing.T) {
	reg := New(Options{Compress: true})
	fp, data := rangeObject(t, reg)
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()
	store, err := NewClientWithOptions(srv.URL, clientopt.Options{Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	rd, ok := store.(RangeDownloader)
	if !ok {
		t.Fatal("retry-wrapped HTTP client lost the range verb")
	}
	got, _, err := rd.DownloadRange(fp, 100, 50)
	if err != nil || !bytes.Equal(got, data[100:150]) {
		t.Fatalf("range through options client: %v", err)
	}
}
