package gearregistry

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gear-image/gear/internal/hashing"
)

func TestQueryBatchRoundTrip(t *testing.T) {
	r := New(Options{})
	fps, _ := seedObjects(t, r, 4)
	missing := hashing.FingerprintBytes([]byte("never uploaded"))

	mixed := []hashing.Fingerprint{fps[0], missing, fps[2], fps[3], missing}
	present, err := r.QueryBatch(mixed)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, true, false}
	for i := range want {
		if present[i] != want[i] {
			t.Errorf("verdict %d = %v, want %v", i, present[i], want[i])
		}
	}

	// Empty batch is a no-op.
	if present, err := r.QueryBatch(nil); err != nil || len(present) != 0 {
		t.Errorf("empty batch: %v verdicts, err %v", present, err)
	}

	// Malformed fingerprints fail the whole batch.
	if _, err := r.QueryBatch([]hashing.Fingerprint{fps[0], "zzzz"}); !errors.Is(err, hashing.ErrMalformed) {
		t.Errorf("malformed: err = %v, want ErrMalformed", err)
	}
}

func TestQueryAll(t *testing.T) {
	r := New(Options{})
	fps, _ := seedObjects(t, r, 3)
	missing := hashing.FingerprintBytes([]byte("absent"))
	ask := append(fps[:2:2], missing)

	// Batch-capable store: one round trip.
	present, batched, err := QueryAll(r, ask)
	if err != nil || !batched {
		t.Fatalf("QueryAll: batched=%v err=%v", batched, err)
	}
	if !present[0] || !present[1] || present[2] {
		t.Errorf("verdicts = %v", present)
	}

	// Non-batching store: per-object fallback, same verdicts.
	present2, batched2, err := QueryAll(plainStore{r}, ask)
	if err != nil || batched2 {
		t.Fatalf("fallback QueryAll: batched=%v err=%v", batched2, err)
	}
	for i := range present {
		if present[i] != present2[i] {
			t.Errorf("fallback verdict %d = %v, want %v", i, present2[i], present[i])
		}
	}

	// Empty set short-circuits.
	if present, batched, err := QueryAll(r, nil); err != nil || batched || present != nil {
		t.Errorf("empty QueryAll = %v/%v/%v", present, batched, err)
	}
}

func TestHTTPQueryBatchRoundTrip(t *testing.T) {
	reg := New(Options{Compress: true})
	fps, _ := seedObjects(t, reg, 5)
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())

	missing := hashing.FingerprintBytes([]byte("absent object"))
	ask := []hashing.Fingerprint{fps[0], missing, fps[4]}
	present, err := c.QueryBatch(ask)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if present[i] != want[i] {
			t.Errorf("verdict %d = %v, want %v", i, present[i], want[i])
		}
	}

	// Empty set never touches the wire.
	if present, err := c.QueryBatch(nil); err != nil || present != nil {
		t.Errorf("empty = %v/%v", present, err)
	}

	// The generic helper picks the batch path over HTTP too.
	present2, batched, err := QueryAll(c, ask)
	if err != nil || !batched {
		t.Fatalf("QueryAll over HTTP: batched=%v err=%v", batched, err)
	}
	for i := range want {
		if present2[i] != want[i] {
			t.Errorf("QueryAll verdict %d = %v, want %v", i, present2[i], want[i])
		}
	}
}

// TestHTTPQueryBatchGzipFraming drives a fingerprint set big enough to
// cross the gzip threshold in both directions and verifies the framing
// survives: hex fingerprint lines compress well, so both bodies shrink.
func TestHTTPQueryBatchGzipFraming(t *testing.T) {
	reg := New(Options{})
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())

	var ask []hashing.Fingerprint
	var wantPresent []bool
	for i := 0; i < 200; i++ {
		data := []byte(fmt.Sprintf("object %d", i))
		fp := hashing.FingerprintBytes(data)
		if i%2 == 0 {
			if err := reg.Upload(fp, data); err != nil {
				t.Fatal(err)
			}
		}
		ask = append(ask, fp)
		wantPresent = append(wantPresent, i%2 == 0)
	}
	present, err := c.QueryBatch(ask)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantPresent {
		if present[i] != wantPresent[i] {
			t.Fatalf("verdict %d = %v, want %v", i, present[i], wantPresent[i])
		}
	}
}

func TestHTTPQueryBatchErrors(t *testing.T) {
	reg := New(Options{})
	fps, _ := seedObjects(t, reg, 1)
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/gear/querybatch", "text/plain",
		strings.NewReader("zzzz\n"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed fp: status %d, want 400", resp.StatusCode)
	}

	resp, err = srv.Client().Get(srv.URL + "/gear/querybatch")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}

	// A garbage gzip frame is rejected, not crashed on.
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/gear/querybatch",
		strings.NewReader(string(fps[0])+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(encodingHeader, "gzip")
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad gzip frame: status %d, want 400", resp.StatusCode)
	}
}

func TestRetryStoreQueryBatch(t *testing.T) {
	reg := New(Options{})
	fps, _ := seedObjects(t, reg, 3)
	missing := hashing.FingerprintBytes([]byte("nope"))
	ask := append(fps[:2:2], missing)

	// Batching inner store: RetryStore forwards and retries.
	flaky := &flakyQueryBatchStore{inner: reg, failures: 2}
	rs, err := NewRetryStore(flaky, 3)
	if err != nil {
		t.Fatal(err)
	}
	present, err := rs.QueryBatch(ask)
	if err != nil {
		t.Fatal(err)
	}
	if !present[0] || !present[1] || present[2] {
		t.Errorf("verdicts = %v", present)
	}
	if rs.Retries() == 0 {
		t.Error("expected retries to be spent")
	}

	// Non-batching inner store: per-object fallback.
	rs2, err := NewRetryStore(plainStore{reg}, 2)
	if err != nil {
		t.Fatal(err)
	}
	present, err = rs2.QueryBatch(ask)
	if err != nil {
		t.Fatal(err)
	}
	if !present[0] || !present[1] || present[2] {
		t.Errorf("fallback verdicts = %v", present)
	}
}

// flakyQueryBatchStore fails the first N QueryBatch calls transiently.
type flakyQueryBatchStore struct {
	inner    *Registry
	failures int
}

func (f *flakyQueryBatchStore) Query(fp hashing.Fingerprint) (bool, error) { return f.inner.Query(fp) }
func (f *flakyQueryBatchStore) Upload(fp hashing.Fingerprint, data []byte) error {
	return f.inner.Upload(fp, data)
}
func (f *flakyQueryBatchStore) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	return f.inner.Download(fp)
}
func (f *flakyQueryBatchStore) QueryBatch(fps []hashing.Fingerprint) ([]bool, error) {
	if f.failures > 0 {
		f.failures--
		return nil, errors.New("transient querybatch failure")
	}
	return f.inner.QueryBatch(fps)
}
