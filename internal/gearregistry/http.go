package gearregistry

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/gear-image/gear/internal/clientopt"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/tarstream"
)

// HTTP wire protocol — the three interfaces named in §IV of the paper,
// plus a garbage-collection verb for registry operators:
//
//	GET  /gear/query/{fingerprint}    -> 200 if present, 404 otherwise
//	PUT  /gear/upload/{fingerprint}   <- file bytes
//	GET  /gear/download/{fingerprint} -> file bytes
//	POST /gear/batch                  <- newline-separated fingerprints
//	                                  -> framed objects (see serveBatch)
//	POST /gear/querybatch             <- newline-separated fingerprints
//	                                  -> "<fingerprint> present|absent" lines
//	                                     (see serveQueryBatch; bodies may be
//	                                     gzip-framed via X-Gear-Encoding)
//	POST /gear/gc                     <- newline-separated fingerprints to KEEP
//	                                  -> "removed=N freed=M"
//	GET  /gear/range/{fp}/{off}/{n}   -> strict range frame (see serveRange)

// Handler adapts a Registry to HTTP.
type Handler struct {
	reg *Registry
}

var _ http.Handler = (*Handler)(nil)

// NewHandler wraps reg.
func NewHandler(reg *Registry) *Handler { return &Handler{reg: reg} }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/gear/gc" {
		h.serveGC(w, r)
		return
	}
	if r.URL.Path == "/gear/batch" {
		h.serveBatch(w, r)
		return
	}
	if r.URL.Path == "/gear/querybatch" {
		h.serveQueryBatch(w, r)
		return
	}
	if strings.HasPrefix(r.URL.Path, "/gear/range/") {
		h.serveRange(w, r)
		return
	}
	verb, fp, ok := splitPath(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	switch verb {
	case "query":
		if r.Method != http.MethodGet {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		present, err := h.reg.Query(fp)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !present {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	case "upload":
		if r.Method != http.MethodPut {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := h.reg.Upload(fp, body); err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrFingerprintMismatch) || errors.Is(err, hashing.ErrMalformed) {
				status = http.StatusBadRequest
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case "download":
		if r.Method != http.MethodGet {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		data, compressed, err := h.reg.downloadWire(fp)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrNotFound) {
				status = http.StatusNotFound
			} else if errors.Is(err, hashing.ErrMalformed) {
				status = http.StatusBadRequest
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if compressed {
			w.Header().Set("X-Gear-Encoding", "gzip")
		}
		_, _ = w.Write(data)
	default:
		http.NotFound(w, r)
	}
}

// serveBatch implements the one-round-trip multi-object download verb.
// The request body is newline-separated fingerprints (the gc framing);
// the response is, per requested object in order, a header line
//
//	<fingerprint> <storedLen> <raw|gzip>\n
//
// followed by exactly storedLen stored (possibly gzip-compressed) bytes.
// A malformed fingerprint fails the whole batch with 400, an absent one
// with 404 — batches are all-or-nothing, mirroring Registry.DownloadBatch.
func (h *Handler) serveBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var fps []hashing.Fingerprint
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fps = append(fps, hashing.Fingerprint(line))
	}
	// Validate and locate everything before the first write: HTTP status
	// is only expressible up front.
	type object struct {
		fp         hashing.Fingerprint
		stored     []byte
		compressed bool
	}
	objects := make([]object, 0, len(fps))
	for _, fp := range fps {
		stored, compressed, err := h.reg.downloadWire(fp)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrNotFound) {
				status = http.StatusNotFound
			} else if errors.Is(err, hashing.ErrMalformed) {
				status = http.StatusBadRequest
			}
			http.Error(w, err.Error(), status)
			return
		}
		objects = append(objects, object{fp, stored, compressed})
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	for _, o := range objects {
		enc := "raw"
		if o.compressed {
			enc = "gzip"
		}
		fmt.Fprintf(w, "%s %d %s\n", o.fp, len(o.stored), enc)
		_, _ = w.Write(o.stored)
	}
}

// gzipWireThreshold is the body size above which querybatch bodies are
// worth gzip-framing: a whole image's fingerprint set is thousands of
// highly compressible hex lines, while a handful of lines costs more in
// gzip header than it saves.
const gzipWireThreshold = 1024

// encodingHeader marks a gzip-framed request or response body, and
// acceptHeader advertises that the peer may gzip its reply — the same
// explicit framing /gear/download uses, so compression survives any
// transport.
const (
	encodingHeader = "X-Gear-Encoding"
	acceptHeader   = "X-Gear-Accept"
)

// readWireBody reads a request or response body, inflating it when the
// encoding header says it is gzip-framed.
func readWireBody(body io.Reader, encoding string) ([]byte, error) {
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, err
	}
	if encoding == "gzip" {
		return tarstream.Gunzip(data)
	}
	return data, nil
}

// serveQueryBatch implements the one-round-trip multi-object presence
// check behind the parallel push pipeline. The request body is
// newline-separated fingerprints (the batch/gc framing, optionally
// gzip-framed with X-Gear-Encoding: gzip); the response is, per
// requested fingerprint in order, a line
//
//	<fingerprint> <present|absent>\n
//
// gzip-framed when the client sent X-Gear-Accept: gzip and the body is
// large enough to profit. A malformed fingerprint fails the whole batch
// with 400 — batches are all-or-nothing, mirroring Registry.QueryBatch.
func (h *Handler) serveQueryBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	body, err := readWireBody(r.Body, r.Header.Get(encodingHeader))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var fps []hashing.Fingerprint
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fps = append(fps, hashing.Fingerprint(line))
	}
	present, err := h.reg.QueryBatch(fps)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var out bytes.Buffer
	for i, fp := range fps {
		verdict := "absent"
		if present[i] {
			verdict = "present"
		}
		fmt.Fprintf(&out, "%s %s\n", fp, verdict)
	}
	w.Header().Set("Content-Type", "text/plain")
	payload := out.Bytes()
	if strings.Contains(r.Header.Get(acceptHeader), "gzip") && out.Len() > gzipWireThreshold {
		if z, err := tarstream.Gzip(payload); err == nil {
			w.Header().Set(encodingHeader, "gzip")
			payload = z
		}
	}
	_, _ = w.Write(payload)
}

// serveGC implements the keep-set garbage collection verb.
func (h *Handler) serveGC(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	keep := make(map[hashing.Fingerprint]bool)
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fp := hashing.Fingerprint(line)
		if err := fp.Validate(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		keep[fp] = true
	}
	removed, freed := h.reg.Retain(keep)
	fmt.Fprintf(w, "removed=%d freed=%d\n", removed, freed)
}

func splitPath(p string) (verb string, fp hashing.Fingerprint, ok bool) {
	rest, found := strings.CutPrefix(p, "/gear/")
	if !found {
		return "", "", false
	}
	verb, raw, found := strings.Cut(rest, "/")
	if !found || raw == "" {
		return "", "", false
	}
	return verb, hashing.Fingerprint(raw), true
}

// Client is an HTTP Store implementation used by Gear drivers fetching
// files from a remote Gear Registry.
type Client struct {
	base string
	http *http.Client
}

var _ Store = (*Client)(nil)

// NewClient returns a client for the Gear Registry at baseURL. If hc is
// nil, http.DefaultClient is used.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimSuffix(baseURL, "/"), http: hc}
}

// NewClientWithOptions returns a registry store client configured by
// the shared client options (gear.ClientOptions): Timeout bounds each
// request's transport, and Retries/Backoff wrap the client in a
// RetryStore. The zero Options behaves exactly like NewClient(baseURL,
// nil) — one attempt, default transport.
func NewClientWithOptions(baseURL string, o clientopt.Options) (Store, error) {
	c := NewClient(baseURL, o.HTTPClient())
	if o.Retries <= 0 {
		return c, nil
	}
	return NewRetryStoreOptions(c, o)
}

// Query implements Store.
func (c *Client) Query(fp hashing.Fingerprint) (bool, error) {
	resp, err := c.http.Get(fmt.Sprintf("%s/gear/query/%s", c.base, fp))
	if err != nil {
		return false, fmt.Errorf("gearregistry client: query %s: %w", fp, err)
	}
	defer func() { _ = resp.Body.Close() }()
	_, _ = io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("gearregistry client: query %s: %s", fp, resp.Status)
	}
}

// Upload implements Store.
func (c *Client) Upload(fp hashing.Fingerprint, data []byte) error {
	url := fmt.Sprintf("%s/gear/upload/%s", c.base, fp)
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("gearregistry client: upload %s: %w", fp, err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("gearregistry client: upload %s: %w", fp, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("gearregistry client: upload %s: %s: %s",
			fp, resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// GC asks the remote registry to retain only the given fingerprints,
// returning how many objects it removed and the stored bytes freed.
func (c *Client) GC(keep []hashing.Fingerprint) (removed int, freed int64, err error) {
	var body strings.Builder
	for _, fp := range keep {
		body.WriteString(string(fp))
		body.WriteByte('\n')
	}
	resp, err := c.http.Post(c.base+"/gear/gc", "text/plain", strings.NewReader(body.String()))
	if err != nil {
		return 0, 0, fmt.Errorf("gearregistry client: gc: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, fmt.Errorf("gearregistry client: gc: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("gearregistry client: gc: %s: %s",
			resp.Status, strings.TrimSpace(string(out)))
	}
	if _, err := fmt.Sscanf(string(out), "removed=%d freed=%d", &removed, &freed); err != nil {
		return 0, 0, fmt.Errorf("gearregistry client: gc: parse %q: %w", out, err)
	}
	return removed, freed, nil
}

// DownloadBatch implements BatchDownloader over HTTP via POST
// /gear/batch. The wire size is the full response body as transported
// (object headers included).
func (c *Client) DownloadBatch(fps []hashing.Fingerprint) ([][]byte, int64, error) {
	if len(fps) == 0 {
		return nil, 0, nil
	}
	var reqBody strings.Builder
	for _, fp := range fps {
		reqBody.WriteString(string(fp))
		reqBody.WriteByte('\n')
	}
	resp, err := c.http.Post(c.base+"/gear/batch", "text/plain", strings.NewReader(reqBody.String()))
	if err != nil {
		return nil, 0, fmt.Errorf("gearregistry client: batch: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("gearregistry client: batch: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, 0, fmt.Errorf("gearregistry client: batch: %s: %w",
			strings.TrimSpace(string(body)), ErrNotFound)
	default:
		return nil, 0, fmt.Errorf("gearregistry client: batch: %s: %s",
			resp.Status, strings.TrimSpace(string(body)))
	}
	objects, err := parseBatchResponse(body)
	if err != nil {
		return nil, 0, fmt.Errorf("gearregistry client: batch: %w", err)
	}
	if len(objects) != len(fps) {
		return nil, 0, fmt.Errorf("gearregistry client: batch: got %d objects, want %d",
			len(objects), len(fps))
	}
	payloads := make([][]byte, len(fps))
	for i, o := range objects {
		if o.fp != fps[i] {
			return nil, 0, fmt.Errorf("gearregistry client: batch: object %d is %s, want %s",
				i, o.fp, fps[i])
		}
		if o.compressed {
			data, err := tarstream.Gunzip(o.stored)
			if err != nil {
				return nil, 0, fmt.Errorf("gearregistry client: batch %s: %w", o.fp, err)
			}
			payloads[i] = data
		} else {
			payloads[i] = o.stored
		}
	}
	return payloads, int64(len(body)), nil
}

// batchObject is one framed object in a /gear/batch response.
type batchObject struct {
	fp         hashing.Fingerprint
	stored     []byte
	compressed bool
}

// parseBatchResponse decodes the /gear/batch framing: repeated
// "<fingerprint> <storedLen> <raw|gzip>\n" headers each followed by
// exactly storedLen bytes. It rejects truncated or malformed frames.
func parseBatchResponse(body []byte) ([]batchObject, error) {
	var objects []batchObject
	for len(body) > 0 {
		nl := bytes.IndexByte(body, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("truncated object header %q", body)
		}
		header := string(body[:nl])
		body = body[nl+1:]
		fields := strings.Fields(header)
		if len(fields) != 3 {
			return nil, fmt.Errorf("malformed object header %q", header)
		}
		fp := hashing.Fingerprint(fields[0])
		if err := fp.Validate(); err != nil {
			return nil, fmt.Errorf("object header %q: %w", header, err)
		}
		size, err := strconv.Atoi(fields[1])
		if err != nil || size < 0 {
			return nil, fmt.Errorf("object header %q: bad size", header)
		}
		var compressed bool
		switch fields[2] {
		case "raw":
		case "gzip":
			compressed = true
		default:
			return nil, fmt.Errorf("object header %q: bad encoding", header)
		}
		if size > len(body) {
			return nil, fmt.Errorf("object %s: truncated payload: want %d bytes, have %d",
				fp, size, len(body))
		}
		objects = append(objects, batchObject{fp: fp, stored: body[:size], compressed: compressed})
		body = body[size:]
	}
	return objects, nil
}

// QueryBatch implements BatchQuerier over HTTP via POST
// /gear/querybatch: one round trip answers presence for a whole
// fingerprint set. Large request bodies are gzip-framed, and the client
// advertises that it accepts a gzip-framed response.
func (c *Client) QueryBatch(fps []hashing.Fingerprint) ([]bool, error) {
	if len(fps) == 0 {
		return nil, nil
	}
	var reqBody strings.Builder
	for _, fp := range fps {
		reqBody.WriteString(string(fp))
		reqBody.WriteByte('\n')
	}
	payload := []byte(reqBody.String())
	req, err := http.NewRequest(http.MethodPost, c.base+"/gear/querybatch", nil)
	if err != nil {
		return nil, fmt.Errorf("gearregistry client: querybatch: %w", err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set(acceptHeader, "gzip")
	if len(payload) > gzipWireThreshold {
		if z, zerr := tarstream.Gzip(payload); zerr == nil {
			payload = z
			req.Header.Set(encodingHeader, "gzip")
		}
	}
	req.Body = io.NopCloser(bytes.NewReader(payload))
	req.ContentLength = int64(len(payload))
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("gearregistry client: querybatch: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := readWireBody(resp.Body, resp.Header.Get(encodingHeader))
	if err != nil {
		return nil, fmt.Errorf("gearregistry client: querybatch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("gearregistry client: querybatch: %s: %s",
			resp.Status, strings.TrimSpace(string(body)))
	}
	present, got, err := parseQueryBatchResponse(body)
	if err != nil {
		return nil, fmt.Errorf("gearregistry client: querybatch: %w", err)
	}
	if len(present) != len(fps) {
		return nil, fmt.Errorf("gearregistry client: querybatch: got %d verdicts, want %d",
			len(present), len(fps))
	}
	for i, fp := range got {
		if fp != fps[i] {
			return nil, fmt.Errorf("gearregistry client: querybatch: verdict %d is %s, want %s",
				i, fp, fps[i])
		}
	}
	return present, nil
}

// parseQueryBatchResponse decodes the /gear/querybatch framing: one
// "<fingerprint> <present|absent>" line per queried object, in request
// order. It rejects malformed lines and invalid fingerprints.
func parseQueryBatchResponse(body []byte) (present []bool, fps []hashing.Fingerprint, err error) {
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, nil, fmt.Errorf("malformed verdict line %q", line)
		}
		fp := hashing.Fingerprint(fields[0])
		if verr := fp.Validate(); verr != nil {
			return nil, nil, fmt.Errorf("verdict line %q: %w", line, verr)
		}
		switch fields[1] {
		case "present":
			present = append(present, true)
		case "absent":
			present = append(present, false)
		default:
			return nil, nil, fmt.Errorf("verdict line %q: bad verdict", line)
		}
		fps = append(fps, fp)
	}
	return present, fps, nil
}

// Download implements Store. Compressed payloads (marked with the
// X-Gear-Encoding header) are inflated locally; the wire size is the
// body length as transported.
func (c *Client) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	resp, err := c.http.Get(fmt.Sprintf("%s/gear/download/%s", c.base, fp))
	if err != nil {
		return nil, 0, fmt.Errorf("gearregistry client: download %s: %w", fp, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("gearregistry client: download %s: %w", fp, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		wire := int64(len(body))
		if resp.Header.Get("X-Gear-Encoding") == "gzip" {
			data, err := tarstream.Gunzip(body)
			if err != nil {
				return nil, 0, fmt.Errorf("gearregistry client: download %s: %w", fp, err)
			}
			return data, wire, nil
		}
		return body, wire, nil
	case http.StatusNotFound:
		return nil, 0, fmt.Errorf("gearregistry client: %s: %w", fp, ErrNotFound)
	default:
		return nil, 0, fmt.Errorf("gearregistry client: download %s: %s", fp, resp.Status)
	}
}
