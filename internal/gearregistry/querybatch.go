package gearregistry

import (
	"fmt"

	"github.com/gear-image/gear/internal/hashing"
)

// BatchQuerier is implemented by stores that can answer many presence
// queries in one round trip. It is the upload-side mirror of
// BatchDownloader: before pushing an image, a client checks the image's
// whole fingerprint set against the registry at once, so dedup (the
// paper's query-before-upload protocol, §III-C) costs one request
// instead of one per Gear file.
type BatchQuerier interface {
	// QueryBatch reports, per fingerprint in request order, whether the
	// Gear file is already stored. The whole batch fails if any
	// fingerprint is malformed — batches are all-or-nothing, mirroring
	// DownloadBatch. Absent objects are not an error; they simply report
	// false.
	QueryBatch(fps []hashing.Fingerprint) ([]bool, error)
}

// QueryBatch implements BatchQuerier on the in-process registry.
func (r *Registry) QueryBatch(fps []hashing.Fingerprint) ([]bool, error) {
	r.queries.Add(int64(len(fps)))
	for _, fp := range fps {
		if err := fp.Validate(); err != nil {
			return nil, fmt.Errorf("gearregistry: querybatch: %w", err)
		}
	}
	// Answer under one read lock so the batch is a consistent snapshot.
	present := make([]bool, len(fps))
	r.mu.RLock()
	for i, fp := range fps {
		_, present[i] = r.objects[fp]
	}
	r.mu.RUnlock()
	return present, nil
}

// QueryAll checks every fingerprint against s, using one QueryBatch
// round trip when s supports it and falling back to per-object Query
// otherwise. batched reports which path was taken, so callers can model
// the request cost accordingly.
func QueryAll(s Store, fps []hashing.Fingerprint) (present []bool, batched bool, err error) {
	if len(fps) == 0 {
		return nil, false, nil
	}
	if bq, ok := s.(BatchQuerier); ok {
		present, err = bq.QueryBatch(fps)
		return present, true, err
	}
	present = make([]bool, len(fps))
	for i, fp := range fps {
		p, err := s.Query(fp)
		if err != nil {
			return nil, false, err
		}
		present[i] = p
	}
	return present, false, nil
}

// QueryBatch implements BatchQuerier with retries when the inner store
// batches; otherwise it degrades to per-object Query (each with its own
// retry budget).
func (r *RetryStore) QueryBatch(fps []hashing.Fingerprint) ([]bool, error) {
	bq, ok := r.inner.(BatchQuerier)
	if !ok {
		present := make([]bool, len(fps))
		for i, fp := range fps {
			p, err := r.Query(fp)
			if err != nil {
				return nil, err
			}
			present[i] = p
		}
		return present, nil
	}
	var present []bool
	err := r.do(func() error {
		var err error
		present, err = bq.QueryBatch(fps)
		return err
	})
	return present, err
}

var _ BatchQuerier = (*Registry)(nil)
var _ BatchQuerier = (*RetryStore)(nil)
var _ BatchQuerier = (*Client)(nil)
