package gearregistry

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"github.com/gear-image/gear/internal/hashing"
)

func put(t *testing.T, s Store, data []byte) hashing.Fingerprint {
	t.Helper()
	fp := hashing.FingerprintBytes(data)
	if err := s.Upload(fp, data); err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			r := New(Options{Compress: compress})
			data := bytes.Repeat([]byte("gear file content "), 64)
			fp := put(t, r, data)

			ok, err := r.Query(fp)
			if err != nil || !ok {
				t.Errorf("Query = %v, %v; want true", ok, err)
			}
			got, wire, err := r.Download(fp)
			if err != nil || !bytes.Equal(got, data) {
				t.Errorf("Download mismatch: %d bytes, %v", len(got), err)
			}
			if compress && wire >= int64(len(data)) {
				t.Errorf("wire bytes %d not below payload %d with compression", wire, len(data))
			}
			if !compress && wire != int64(len(data)) {
				t.Errorf("wire bytes %d != payload %d without compression", wire, len(data))
			}
			size, err := r.Size(fp)
			if err != nil || size != int64(len(data)) {
				t.Errorf("Size = %d, %v; want %d", size, err, len(data))
			}
		})
	}
}

func TestCompressionSavesSpace(t *testing.T) {
	data := bytes.Repeat([]byte("very compressible data! "), 256)
	plain := New(Options{})
	comp := New(Options{Compress: true})
	fp := hashing.FingerprintBytes(data)
	if err := plain.Upload(fp, data); err != nil {
		t.Fatal(err)
	}
	if err := comp.Upload(fp, data); err != nil {
		t.Fatal(err)
	}
	ps, cs := plain.Stats(), comp.Stats()
	if cs.StoredBytes >= ps.StoredBytes {
		t.Errorf("compressed %d >= plain %d", cs.StoredBytes, ps.StoredBytes)
	}
	if cs.LogicalBytes != ps.LogicalBytes {
		t.Errorf("logical bytes differ: %d vs %d", cs.LogicalBytes, ps.LogicalBytes)
	}
}

func TestDedup(t *testing.T) {
	r := New(Options{})
	data := []byte("shared file")
	fp := put(t, r, data)
	for i := 0; i < 4; i++ {
		if err := r.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	s := r.Stats()
	if s.Objects != 1 || s.DedupHits != 4 {
		t.Errorf("stats = %+v, want 1 object / 4 dedup hits", s)
	}
}

func TestUploadVerifiesFingerprint(t *testing.T) {
	r := New(Options{})
	err := r.Upload(hashing.FingerprintBytes([]byte("other")), []byte("data"))
	if !errors.Is(err, ErrFingerprintMismatch) {
		t.Errorf("err = %v, want ErrFingerprintMismatch", err)
	}
	if err := r.Upload("not-a-fingerprint", []byte("x")); !errors.Is(err, hashing.ErrMalformed) {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

func TestCollisionIDsSkipVerification(t *testing.T) {
	r := New(Options{})
	fp := hashing.Fingerprint(strings.Repeat("a", 32) + "-c1")
	if err := r.Upload(fp, []byte("colliding content")); err != nil {
		t.Fatalf("collision ID rejected: %v", err)
	}
	got, _, err := r.Download(fp)
	if err != nil || string(got) != "colliding content" {
		t.Errorf("Download = %q, %v", got, err)
	}
}

func TestSkipVerifyOption(t *testing.T) {
	r := New(Options{SkipVerify: true})
	fp := hashing.FingerprintBytes([]byte("other"))
	if err := r.Upload(fp, []byte("mismatched")); err != nil {
		t.Errorf("SkipVerify upload failed: %v", err)
	}
}

func TestDownloadMissing(t *testing.T) {
	r := New(Options{})
	fp := hashing.FingerprintBytes([]byte("ghost"))
	if _, _, err := r.Download(fp); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if _, err := r.Size(fp); !errors.Is(err, ErrNotFound) {
		t.Errorf("Size err = %v, want ErrNotFound", err)
	}
	ok, err := r.Query(fp)
	if err != nil || ok {
		t.Errorf("Query = %v, %v; want false", ok, err)
	}
}

func TestConcurrentUploads(t *testing.T) {
	r := New(Options{})
	data := []byte("contended")
	fp := hashing.FingerprintBytes(data)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = r.Upload(fp, data)
		}()
	}
	wg.Wait()
	if s := r.Stats(); s.Objects != 1 || s.DedupHits != 7 {
		t.Errorf("stats = %+v, want 1 object / 7 hits", s)
	}
}

func TestStatsAccounting(t *testing.T) {
	r := New(Options{})
	put(t, r, []byte("aaaa"))
	put(t, r, []byte("bbbbbbbb"))
	s := r.Stats()
	if s.Objects != 2 || s.LogicalBytes != 12 || s.StoredBytes != 12 {
		t.Errorf("stats = %+v", s)
	}
}

// --- HTTP layer ---

func newHTTPStore(t *testing.T, opts Options) (*Registry, Store) {
	t.Helper()
	reg := New(opts)
	srv := httptest.NewServer(NewHandler(reg))
	t.Cleanup(srv.Close)
	return reg, NewClient(srv.URL, srv.Client())
}

func TestHTTPRoundTrip(t *testing.T) {
	reg, client := newHTTPStore(t, Options{Compress: true})
	data := bytes.Repeat([]byte("over the wire "), 32)
	fp := hashing.FingerprintBytes(data)

	ok, err := client.Query(fp)
	if err != nil || ok {
		t.Errorf("Query before upload = %v, %v", ok, err)
	}
	if err := client.Upload(fp, data); err != nil {
		t.Fatal(err)
	}
	ok, err = client.Query(fp)
	if err != nil || !ok {
		t.Errorf("Query after upload = %v, %v", ok, err)
	}
	got, wire, err := client.Download(fp)
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("Download mismatch: %d bytes, %v", len(got), err)
	}
	if wire >= int64(len(data)) {
		t.Errorf("HTTP wire bytes %d not below payload %d with compression", wire, len(data))
	}
	if s := reg.Stats(); s.Objects != 1 {
		t.Errorf("server stats = %+v", s)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, client := newHTTPStore(t, Options{})
	fp := hashing.FingerprintBytes([]byte("missing"))
	if _, _, err := client.Download(fp); !errors.Is(err, ErrNotFound) {
		t.Errorf("download err = %v, want ErrNotFound", err)
	}
	if err := client.Upload(fp, []byte("wrong content")); err == nil {
		t.Error("mismatched upload accepted over HTTP")
	}
	if _, err := client.Query("malformed!!"); err == nil {
		t.Error("malformed query accepted")
	}
}

func TestHTTPUnknownRoutes(t *testing.T) {
	reg := New(Options{})
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()
	for _, p := range []string{"/", "/gear/", "/gear/query/", "/other/path"} {
		resp, err := srv.Client().Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("GET %s = %d, want 404", p, resp.StatusCode)
		}
	}
}

// Property: any byte content survives an HTTP round trip through a
// compressed registry unchanged.
func TestHTTPRoundTripProperty(t *testing.T) {
	_, client := newHTTPStore(t, Options{Compress: true})
	prop := func(data []byte) bool {
		fp := hashing.FingerprintBytes(data)
		if err := client.Upload(fp, data); err != nil {
			return false
		}
		got, _, err := client.Download(fp)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRetainGarbageCollects(t *testing.T) {
	r := New(Options{Compress: true})
	live := []byte("still referenced")
	dead := []byte("orphaned by image deletion")
	liveFP := hashing.FingerprintBytes(live)
	deadFP := hashing.FingerprintBytes(dead)
	if err := r.Upload(liveFP, live); err != nil {
		t.Fatal(err)
	}
	if err := r.Upload(deadFP, dead); err != nil {
		t.Fatal(err)
	}
	removed, freed := r.Retain(map[hashing.Fingerprint]bool{liveFP: true})
	if removed != 1 || freed <= 0 {
		t.Errorf("Retain = %d removed, %d freed", removed, freed)
	}
	if ok, _ := r.Query(liveFP); !ok {
		t.Error("live object collected")
	}
	if ok, _ := r.Query(deadFP); ok {
		t.Error("dead object survived")
	}
	if s := r.Stats(); s.Objects != 1 {
		t.Errorf("objects = %d", s.Objects)
	}
	// Idempotent.
	if removed, _ := r.Retain(map[hashing.Fingerprint]bool{liveFP: true}); removed != 0 {
		t.Errorf("second Retain removed %d", removed)
	}
}

func TestHTTPGC(t *testing.T) {
	reg := New(Options{})
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())

	live, dead := []byte("live"), []byte("dead")
	liveFP, deadFP := hashing.FingerprintBytes(live), hashing.FingerprintBytes(dead)
	if err := client.Upload(liveFP, live); err != nil {
		t.Fatal(err)
	}
	if err := client.Upload(deadFP, dead); err != nil {
		t.Fatal(err)
	}
	removed, freed, err := client.GC([]hashing.Fingerprint{liveFP})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || freed != int64(len(dead)) {
		t.Errorf("GC = %d removed, %d freed", removed, freed)
	}
	if ok, _ := reg.Query(liveFP); !ok {
		t.Error("live object collected over HTTP")
	}
	if ok, _ := reg.Query(deadFP); ok {
		t.Error("dead object survived over HTTP")
	}
	// Malformed fingerprints are rejected whole.
	resp, err := srv.Client().Post(srv.URL+"/gear/gc", "text/plain", strings.NewReader("not-a-fp\n"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed gc status = %d", resp.StatusCode)
	}
	// GET is not allowed.
	getResp, err := srv.Client().Get(srv.URL + "/gear/gc")
	if err != nil {
		t.Fatal(err)
	}
	_ = getResp.Body.Close()
	if getResp.StatusCode != 405 {
		t.Errorf("GET gc status = %d", getResp.StatusCode)
	}
	// GC with an empty keep set removes everything.
	if err := client.Upload(liveFP, live); err == nil {
		// already present; dedup hit is fine
		_ = err
	}
	removed, _, err = client.GC(nil)
	if err != nil || removed != 1 {
		t.Errorf("empty-keep GC = %d removed, %v", removed, err)
	}
}

// Fingerprints enumerates the pool sorted; Delete removes one object,
// keeps the pool gauges exact, and reports ErrNotFound for absences —
// the primitives shard rebalancing drains with.
func TestFingerprintsAndDelete(t *testing.T) {
	reg := New(Options{Compress: true})
	var want []hashing.Fingerprint
	for i := 0; i < 5; i++ {
		data := []byte(strings.Repeat("object ", i+1))
		fp := hashing.FingerprintBytes(data)
		want = append(want, fp)
		if err := reg.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	got := reg.Fingerprints()
	if len(got) != len(want) {
		t.Fatalf("Fingerprints returned %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Fingerprints[%d] = %s, want %s (sorted)", i, got[i], want[i])
		}
	}

	before := reg.Stats()
	freed, err := reg.Delete(want[0])
	if err != nil {
		t.Fatal(err)
	}
	if freed <= 0 {
		t.Fatalf("Delete freed %d bytes", freed)
	}
	after := reg.Stats()
	if after.Objects != before.Objects-1 {
		t.Fatalf("objects %d after delete, want %d", after.Objects, before.Objects-1)
	}
	if after.StoredBytes != before.StoredBytes-freed {
		t.Fatalf("stored bytes %d, want %d", after.StoredBytes, before.StoredBytes-freed)
	}
	if after.LogicalBytes >= before.LogicalBytes {
		t.Fatal("logical bytes did not shrink")
	}
	if present, _ := reg.Query(want[0]); present {
		t.Fatal("deleted object still present")
	}
	if len(reg.Fingerprints()) != len(want)-1 {
		t.Fatal("enumeration still lists deleted object")
	}

	if _, err := reg.Delete(want[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v, want ErrNotFound", err)
	}
	if _, err := reg.Delete(hashing.Fingerprint("zzzz")); !errors.Is(err, hashing.ErrMalformed) {
		t.Fatalf("malformed delete err = %v, want ErrMalformed", err)
	}

	// Deleted objects can be re-uploaded (no tombstone).
	data := []byte(strings.Repeat("object ", 1))
	if err := reg.Upload(want[0], data); err != nil {
		// want[0] may not be data's fp after sorting; recompute.
		fp := hashing.FingerprintBytes(data)
		if err := reg.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
}
