package gearregistry

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gear-image/gear/internal/hashing"
)

func seedObjects(t *testing.T, r *Registry, n int) ([]hashing.Fingerprint, [][]byte) {
	t.Helper()
	fps := make([]hashing.Fingerprint, n)
	data := make([][]byte, n)
	for i := range fps {
		data[i] = bytes.Repeat([]byte(fmt.Sprintf("object %d contents ", i)), 16+i)
		fps[i] = put(t, r, data[i])
	}
	return fps, data
}

func TestDownloadBatchRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			r := New(Options{Compress: compress})
			fps, data := seedObjects(t, r, 8)

			payloads, wire, err := r.DownloadBatch(fps)
			if err != nil {
				t.Fatal(err)
			}
			if len(payloads) != len(fps) {
				t.Fatalf("got %d payloads, want %d", len(payloads), len(fps))
			}
			var total int64
			for i := range fps {
				if !bytes.Equal(payloads[i], data[i]) {
					t.Errorf("payload %d mismatch", i)
				}
				total += int64(len(data[i]))
			}
			if compress && wire >= total {
				t.Errorf("wire %d not below payload total %d with compression", wire, total)
			}
			if !compress && wire != total {
				t.Errorf("wire %d != payload total %d without compression", wire, total)
			}

			// Batch wire bytes must match the sum of per-object downloads:
			// batching amortizes requests, not bytes.
			var perObject int64
			for _, fp := range fps {
				_, w, err := r.Download(fp)
				if err != nil {
					t.Fatal(err)
				}
				perObject += w
			}
			if wire != perObject {
				t.Errorf("batch wire %d != per-object wire %d", wire, perObject)
			}
		})
	}
}

func TestDownloadBatchAllOrNothing(t *testing.T) {
	r := New(Options{})
	fps, _ := seedObjects(t, r, 3)

	missing := hashing.FingerprintBytes([]byte("never uploaded"))
	_, _, err := r.DownloadBatch(append(fps[:2:2], missing))
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("absent fingerprint: err = %v, want ErrNotFound", err)
	}
	_, _, err = r.DownloadBatch([]hashing.Fingerprint{fps[0], "zzzz"})
	if !errors.Is(err, hashing.ErrMalformed) {
		t.Errorf("malformed fingerprint: err = %v, want ErrMalformed", err)
	}
}

func TestDownloadBatchEmptyAndDuplicates(t *testing.T) {
	r := New(Options{})
	fps, data := seedObjects(t, r, 2)

	payloads, wire, err := r.DownloadBatch(nil)
	if err != nil || len(payloads) != 0 || wire != 0 {
		t.Errorf("empty batch: %d payloads, wire %d, err %v", len(payloads), wire, err)
	}

	// Duplicates are served per-slot: each occurrence pays its bytes.
	dup := []hashing.Fingerprint{fps[0], fps[1], fps[0]}
	payloads, wire, err = r.DownloadBatch(dup)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 3 || !bytes.Equal(payloads[0], data[0]) ||
		!bytes.Equal(payloads[1], data[1]) || !bytes.Equal(payloads[2], data[0]) {
		t.Errorf("duplicate batch payloads wrong")
	}
	if want := int64(2*len(data[0]) + len(data[1])); wire != want {
		t.Errorf("duplicate batch wire %d, want %d", wire, want)
	}
}

func TestHTTPBatchRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			reg := New(Options{Compress: compress})
			fps, data := seedObjects(t, reg, 5)
			srv := httptest.NewServer(NewHandler(reg))
			defer srv.Close()
			c := NewClient(srv.URL, srv.Client())

			payloads, wire, err := c.DownloadBatch(fps)
			if err != nil {
				t.Fatal(err)
			}
			for i := range fps {
				if !bytes.Equal(payloads[i], data[i]) {
					t.Errorf("payload %d mismatch", i)
				}
			}
			if wire <= 0 {
				t.Errorf("wire = %d, want > 0", wire)
			}

			// And via the generic helper, which should pick the batch path.
			payloads2, _, batched, err := DownloadAll(c, fps)
			if err != nil || !batched {
				t.Fatalf("DownloadAll: batched=%v err=%v", batched, err)
			}
			for i := range fps {
				if !bytes.Equal(payloads2[i], data[i]) {
					t.Errorf("DownloadAll payload %d mismatch", i)
				}
			}
		})
	}
}

func TestHTTPBatchErrors(t *testing.T) {
	reg := New(Options{})
	fps, _ := seedObjects(t, reg, 2)
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+"/gear/batch", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = resp.Body.Close() })
		return resp
	}

	if resp := post("zzzz\n"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed fp: status %d, want 400", resp.StatusCode)
	}
	missing := hashing.FingerprintBytes([]byte("absent"))
	if resp := post(string(fps[0]) + "\n" + string(missing) + "\n"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("absent fp: status %d, want 404", resp.StatusCode)
	}
	resp, err := srv.Client().Get(srv.URL + "/gear/batch")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}

	c := NewClient(srv.URL, srv.Client())
	if _, _, err := c.DownloadBatch([]hashing.Fingerprint{missing}); !errors.Is(err, ErrNotFound) {
		t.Errorf("client absent fp: err = %v, want ErrNotFound", err)
	}
}

func TestRetryStoreDownloadBatch(t *testing.T) {
	// Batching inner store: RetryStore forwards and retries.
	reg := New(Options{})
	fps, data := seedObjects(t, reg, 3)
	flaky := &flakyBatchStore{inner: reg, failures: 2}
	rs, err := NewRetryStore(flaky, 3)
	if err != nil {
		t.Fatal(err)
	}
	payloads, _, err := rs.DownloadBatch(fps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fps {
		if !bytes.Equal(payloads[i], data[i]) {
			t.Errorf("payload %d mismatch", i)
		}
	}
	if rs.Retries() == 0 {
		t.Error("expected retries to be spent")
	}

	// Non-batching inner store: falls back to per-object downloads.
	rs2, err := NewRetryStore(plainStore{reg}, 2)
	if err != nil {
		t.Fatal(err)
	}
	payloads, _, err = rs2.DownloadBatch(fps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fps {
		if !bytes.Equal(payloads[i], data[i]) {
			t.Errorf("fallback payload %d mismatch", i)
		}
	}
}

// flakyBatchStore fails the first N batch calls with a transient error.
type flakyBatchStore struct {
	inner    *Registry
	failures int
}

func (f *flakyBatchStore) Query(fp hashing.Fingerprint) (bool, error) { return f.inner.Query(fp) }
func (f *flakyBatchStore) Upload(fp hashing.Fingerprint, data []byte) error {
	return f.inner.Upload(fp, data)
}
func (f *flakyBatchStore) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	return f.inner.Download(fp)
}
func (f *flakyBatchStore) DownloadBatch(fps []hashing.Fingerprint) ([][]byte, int64, error) {
	if f.failures > 0 {
		f.failures--
		return nil, 0, errors.New("transient batch failure")
	}
	return f.inner.DownloadBatch(fps)
}

// plainStore hides the Registry's BatchDownloader implementation.
type plainStore struct{ inner *Registry }

func (p plainStore) Query(fp hashing.Fingerprint) (bool, error) { return p.inner.Query(fp) }
func (p plainStore) Upload(fp hashing.Fingerprint, data []byte) error {
	return p.inner.Upload(fp, data)
}
func (p plainStore) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	return p.inner.Download(fp)
}
