package gearregistry

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/gear-image/gear/internal/hashing"
)

// RetryStore wraps a Store with bounded retries on transient failures,
// the behavior a production Gear driver needs against a flaky network.
// Definite failures — a missing object, a malformed fingerprint — are
// returned immediately; everything else retries up to Attempts times.
type RetryStore struct {
	inner Store
	// attempts is the total number of tries per operation (>= 1).
	attempts int
	// retries counts extra attempts actually spent, for observability.
	retries atomic.Int64
}

var _ Store = (*RetryStore)(nil)

// ErrBadAttempts reports a non-positive attempt bound.
var ErrBadAttempts = errors.New("attempts must be >= 1")

// NewRetryStore wraps inner with the given total attempt bound.
func NewRetryStore(inner Store, attempts int) (*RetryStore, error) {
	if attempts < 1 {
		return nil, fmt.Errorf("gearregistry: retry: %d: %w", attempts, ErrBadAttempts)
	}
	return &RetryStore{inner: inner, attempts: attempts}, nil
}

// Retries returns how many extra attempts have been spent so far.
func (r *RetryStore) Retries() int64 { return r.retries.Load() }

// permanent reports errors that retrying cannot fix.
func permanent(err error) bool {
	return errors.Is(err, ErrNotFound) ||
		errors.Is(err, ErrFingerprintMismatch) ||
		errors.Is(err, hashing.ErrMalformed)
}

func (r *RetryStore) do(op func() error) error {
	var err error
	for i := 0; i < r.attempts; i++ {
		if i > 0 {
			r.retries.Add(1)
		}
		if err = op(); err == nil || permanent(err) {
			return err
		}
	}
	return fmt.Errorf("gearregistry: after %d attempts: %w", r.attempts, err)
}

// Query implements Store with retries.
func (r *RetryStore) Query(fp hashing.Fingerprint) (bool, error) {
	var present bool
	err := r.do(func() error {
		var err error
		present, err = r.inner.Query(fp)
		return err
	})
	return present, err
}

// Upload implements Store with retries.
func (r *RetryStore) Upload(fp hashing.Fingerprint, data []byte) error {
	return r.do(func() error { return r.inner.Upload(fp, data) })
}

// Download implements Store with retries.
func (r *RetryStore) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	var payload []byte
	var wire int64
	err := r.do(func() error {
		var err error
		payload, wire, err = r.inner.Download(fp)
		return err
	})
	return payload, wire, err
}
