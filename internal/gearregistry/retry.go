package gearregistry

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/gear-image/gear/internal/hashing"
)

// RetryStore wraps a Store with bounded retries on transient failures,
// the behavior a production Gear driver needs against a flaky network.
// Definite failures — a missing object, a malformed fingerprint — are
// returned immediately; everything else retries up to Attempts times,
// with optional exponential backoff between attempts. Every verb —
// Query, Upload, Download, and their batched forms — shares the one
// retry/backoff policy.
type RetryStore struct {
	inner Store
	// attempts is the total number of tries per operation (>= 1).
	attempts int
	// backoff is the sleep before the first retry; it doubles per extra
	// retry, capped at maxBackoffShift doublings. Zero disables sleeping.
	backoff time.Duration
	// retries counts extra attempts actually spent, for observability.
	retries atomic.Int64
}

var _ Store = (*RetryStore)(nil)

// maxBackoffShift caps the exponential backoff at base << maxBackoffShift.
const maxBackoffShift = 6

// ErrBadAttempts reports a non-positive attempt bound.
var ErrBadAttempts = errors.New("attempts must be >= 1")

// NewRetryStore wraps inner with the given total attempt bound and no
// backoff (retries fire immediately — the right shape for tests and
// in-process stores).
func NewRetryStore(inner Store, attempts int) (*RetryStore, error) {
	return NewRetryStoreBackoff(inner, attempts, 0)
}

// NewRetryStoreBackoff wraps inner with the given total attempt bound
// and exponential backoff: the i-th retry waits backoff << (i-1), capped
// after maxBackoffShift doublings. A negative backoff is rejected.
func NewRetryStoreBackoff(inner Store, attempts int, backoff time.Duration) (*RetryStore, error) {
	if attempts < 1 {
		return nil, fmt.Errorf("gearregistry: retry: %d: %w", attempts, ErrBadAttempts)
	}
	if backoff < 0 {
		return nil, fmt.Errorf("gearregistry: retry: negative backoff %v: %w", backoff, ErrBadAttempts)
	}
	return &RetryStore{inner: inner, attempts: attempts, backoff: backoff}, nil
}

// Retries returns how many extra attempts have been spent so far.
func (r *RetryStore) Retries() int64 { return r.retries.Load() }

// permanent reports errors that retrying cannot fix.
func permanent(err error) bool {
	return errors.Is(err, ErrNotFound) ||
		errors.Is(err, ErrFingerprintMismatch) ||
		errors.Is(err, hashing.ErrMalformed)
}

// wait sleeps the exponential backoff before retry number i (1-based).
func (r *RetryStore) wait(i int) {
	if r.backoff <= 0 {
		return
	}
	shift := i - 1
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	time.Sleep(r.backoff << shift)
}

func (r *RetryStore) do(op func() error) error {
	var err error
	for i := 0; i < r.attempts; i++ {
		if i > 0 {
			r.retries.Add(1)
			r.wait(i)
		}
		if err = op(); err == nil || permanent(err) {
			return err
		}
	}
	return fmt.Errorf("gearregistry: after %d attempts: %w", r.attempts, err)
}

// Query implements Store with retries.
func (r *RetryStore) Query(fp hashing.Fingerprint) (bool, error) {
	var present bool
	err := r.do(func() error {
		var err error
		present, err = r.inner.Query(fp)
		return err
	})
	return present, err
}

// Upload implements Store with retries. Retried uploads are idempotent:
// a failed attempt may in fact have landed server-side (the response,
// not the upload, was lost), so each retry first queries the object and
// treats presence as success — re-uploading would both waste the wire
// and inflate the registry's dedup counters.
func (r *RetryStore) Upload(fp hashing.Fingerprint, data []byte) error {
	var err error
	for i := 0; i < r.attempts; i++ {
		if i > 0 {
			r.retries.Add(1)
			r.wait(i)
			if present, qerr := r.inner.Query(fp); qerr == nil && present {
				return nil
			}
		}
		if err = r.inner.Upload(fp, data); err == nil || permanent(err) {
			return err
		}
	}
	return fmt.Errorf("gearregistry: after %d attempts: %w", r.attempts, err)
}

// Download implements Store with retries.
func (r *RetryStore) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	var payload []byte
	var wire int64
	err := r.do(func() error {
		var err error
		payload, wire, err = r.inner.Download(fp)
		return err
	})
	return payload, wire, err
}
