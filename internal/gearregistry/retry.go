package gearregistry

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/gear-image/gear/internal/clientopt"
	"github.com/gear-image/gear/internal/hashing"
)

// RetryStore wraps a Store with bounded retries on transient failures,
// the behavior a production Gear driver needs against a flaky network.
// Definite failures — a missing object, a malformed fingerprint — are
// returned immediately; everything else retries per the shared
// clientopt policy (Retries extra attempts, exponential Backoff between
// them). Every verb — Query, Upload, Download, and their batched forms
// — shares the one policy.
type RetryStore struct {
	inner Store
	opts  clientopt.Options
	// retries counts extra attempts actually spent, for observability.
	retries atomic.Int64
}

var _ Store = (*RetryStore)(nil)

// ErrBadAttempts reports a non-positive attempt bound.
var ErrBadAttempts = errors.New("attempts must be >= 1")

// NewRetryStore wraps inner with the given total attempt bound and no
// backoff (retries fire immediately — the right shape for tests and
// in-process stores).
func NewRetryStore(inner Store, attempts int) (*RetryStore, error) {
	return NewRetryStoreBackoff(inner, attempts, 0)
}

// NewRetryStoreBackoff wraps inner with the given total attempt bound
// and exponential backoff: the i-th retry waits backoff << (i-1), capped
// after clientopt.MaxBackoffShift doublings. A negative backoff is
// rejected.
func NewRetryStoreBackoff(inner Store, attempts int, backoff time.Duration) (*RetryStore, error) {
	if attempts < 1 {
		return nil, fmt.Errorf("gearregistry: retry: %d: %w", attempts, ErrBadAttempts)
	}
	if backoff < 0 {
		return nil, fmt.Errorf("gearregistry: retry: negative backoff %v: %w", backoff, ErrBadAttempts)
	}
	return &RetryStore{inner: inner, opts: clientopt.Options{Retries: attempts - 1, Backoff: backoff}}, nil
}

// NewRetryStoreOptions wraps inner with the shared client-option retry
// policy (gear.ClientOptions). The zero Options means a single attempt
// — no retrying at all. Timeout is a transport concern and is ignored
// here; NewClientWithOptions applies it.
func NewRetryStoreOptions(inner Store, o clientopt.Options) (*RetryStore, error) {
	return NewRetryStoreBackoff(inner, o.Attempts(), o.Backoff)
}

// Retries returns how many extra attempts have been spent so far.
func (r *RetryStore) Retries() int64 { return r.retries.Load() }

// permanent reports errors that retrying cannot fix.
func permanent(err error) bool {
	return errors.Is(err, ErrNotFound) ||
		errors.Is(err, ErrFingerprintMismatch) ||
		errors.Is(err, ErrBadRange) ||
		errors.Is(err, ErrRangeUnsupported) ||
		errors.Is(err, hashing.ErrMalformed)
}

func (r *RetryStore) do(op func() error) error {
	var err error
	attempts := r.opts.Attempts()
	for i := 0; i < attempts; i++ {
		if i > 0 {
			r.retries.Add(1)
			r.opts.Sleep(i)
		}
		if err = op(); err == nil || permanent(err) {
			return err
		}
	}
	return fmt.Errorf("gearregistry: after %d attempts: %w", attempts, err)
}

// Query implements Store with retries.
func (r *RetryStore) Query(fp hashing.Fingerprint) (bool, error) {
	var present bool
	err := r.do(func() error {
		var err error
		present, err = r.inner.Query(fp)
		return err
	})
	return present, err
}

// Upload implements Store with retries. Retried uploads are idempotent:
// a failed attempt may in fact have landed server-side (the response,
// not the upload, was lost), so each retry first queries the object and
// treats presence as success — re-uploading would both waste the wire
// and inflate the registry's dedup counters.
func (r *RetryStore) Upload(fp hashing.Fingerprint, data []byte) error {
	var err error
	attempts := r.opts.Attempts()
	for i := 0; i < attempts; i++ {
		if i > 0 {
			r.retries.Add(1)
			r.opts.Sleep(i)
			if present, qerr := r.inner.Query(fp); qerr == nil && present {
				return nil
			}
		}
		if err = r.inner.Upload(fp, data); err == nil || permanent(err) {
			return err
		}
	}
	return fmt.Errorf("gearregistry: after %d attempts: %w", attempts, err)
}

// Download implements Store with retries.
func (r *RetryStore) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	var payload []byte
	var wire int64
	err := r.do(func() error {
		var err error
		payload, wire, err = r.inner.Download(fp)
		return err
	})
	return payload, wire, err
}
