package telemetry

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a deterministic registry resembling a daemon's:
// fetch counters, pool gauges, and one latency histogram.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("store.remote.objects").Add(12)
	r.Counter("store.remote.bytes").Add(48_000)
	r.Counter("store.prefetch.hits").Add(7)
	r.Counter("cache.hits").Add(30)
	r.Counter("cache.misses").Add(12)
	r.Gauge("cache.bytes").Set(16_384)
	r.Gauge("store.indexes").Set(3)
	h := r.Histogram("store.demand.stall", DefaultLatencyBounds)
	h.Observe(50_000)      // 50µs -> first bucket
	h.Observe(5_000_000)   // 5ms
	h.Observe(200_000_000) // 200ms
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestMetricsHandlerGolden(t *testing.T) {
	srv := httptest.NewServer(Handler(goldenRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json", buf.Bytes())

	// The body must round-trip through the CLI's decoder.
	snap, err := DecodeSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("decode own exposition: %v", err)
	}
	if got := snap.Counter("store.remote.objects"); got != 12 {
		t.Fatalf("round-tripped counter = %d, want 12", got)
	}
}

func TestMetricsHandlerRejectsNonGET(t *testing.T) {
	srv := httptest.NewServer(Handler(goldenRegistry()))
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %s, want 405", resp.Status)
	}
}

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	WriteText(&buf, goldenRegistry().Snapshot())
	checkGolden(t, "metrics.txt", buf.Bytes())
}

func TestWriteTextEmpty(t *testing.T) {
	var buf bytes.Buffer
	WriteText(&buf, Snapshot{})
	if got := buf.String(); got != "(empty snapshot)\n" {
		t.Fatalf("empty render = %q", got)
	}
}

func TestDecodeSnapshotRejectsInvalid(t *testing.T) {
	cases := []string{
		`not json`,
		`{"histograms":{"h":{"bounds":[1,2],"counts":[0,0],"sum":0,"count":0}}}`,
		`{"histograms":{"h":{"bounds":[2,1],"counts":[0,0,0],"sum":0,"count":0}}}`,
	}
	for i, c := range cases {
		if _, err := DecodeSnapshot([]byte(c)); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}
