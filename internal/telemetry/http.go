package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// Snapshotter is anything that can produce a metrics snapshot — a
// *Registry, or a component that refreshes derived gauges before
// delegating to one.
type Snapshotter interface {
	Snapshot() Snapshot
}

// Handler serves src's snapshot as JSON: the /metrics exposition
// endpoint mounted on the gear-registry, docker-registry, tracker, and
// profile servers. encoding/json sorts map keys, so the body is
// deterministic for a given snapshot — golden tests rely on that.
func Handler(src Snapshotter) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := EncodeSnapshot(w, src.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// EncodeSnapshot writes s as indented JSON (the /metrics wire format).
func EncodeSnapshot(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DecodeSnapshot parses a /metrics body and validates its structural
// invariants. This is the decoder behind gearctl's diff mode and the
// package's fuzz target: arbitrary input must produce an error or a
// valid snapshot, never a panic downstream.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: decode snapshot: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}

// WriteText pretty-prints s for terminals: sorted sections, aligned
// values, histogram sums rendered as durations (histogram observations
// are nanoseconds by convention). Deterministic for a given snapshot.
func WriteText(w io.Writer, s Snapshot) {
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "  %-32s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "  %-32s %d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		names := make([]string, 0, len(s.Histograms))
		for name := range s.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := s.Histograms[name]
			mean := time.Duration(0)
			if h.Count > 0 {
				mean = time.Duration(h.Sum / h.Count)
			}
			fmt.Fprintf(w, "  %-32s count=%d sum=%s mean=%s\n",
				name, h.Count, time.Duration(h.Sum), mean)
		}
	}
	if len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0 {
		fmt.Fprintln(w, "(empty snapshot)")
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
