package telemetry

import (
	"bytes"
	"testing"
)

// FuzzDecodeSnapshot hardens the decoder behind gearctl's diff mode:
// arbitrary bytes must yield an error or a snapshot that validates,
// re-encodes, and re-decodes identically — never a panic.
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"counters":{"a":1},"gauges":{"b":-2}}`))
	f.Add([]byte(`{"histograms":{"h":{"bounds":[10,20],"counts":[1,2,3],"sum":60,"count":6}}}`))
	f.Add([]byte(`{"histograms":{"h":{"bounds":[],"counts":[0],"sum":0,"count":0}}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"counters":null}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("decoded snapshot fails validation: %v", verr)
		}
		// Diffing against itself and an empty snapshot must stay valid.
		if verr := s.Diff(s).Validate(); verr != nil {
			t.Fatalf("self-diff invalid: %v", verr)
		}
		if verr := s.Diff(Snapshot{}).Validate(); verr != nil {
			t.Fatalf("diff from empty invalid: %v", verr)
		}
		// Round trip: encode then decode must succeed.
		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, s); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if _, err := DecodeSnapshot(buf.Bytes()); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}
