// Package telemetry is the reproduction's observability spine: a
// dependency-free metrics registry (typed counters, gauges, and
// fixed-bucket latency histograms with atomic hot paths) plus a bounded
// structured trace ring for per-fetch events (trace.go) and a JSON
// exposition surface (http.go).
//
// The paper evaluates Gear almost entirely through measurement — pull
// size, deployment latency, per-phase traffic — so every subsystem of
// this codebase (store fetch/scheduler, cache admit/evict, both
// registries, peer exchange, prefetch replay, deploy phases) publishes
// into a Registry, and the per-package Stats structs are thin views
// derived from it. One snapshot shape, one naming scheme
// (Objects/Bytes/Hits/Misses), one wire format.
//
// Handles are resolved once at construction time and are safe to use
// from any goroutine: a Counter.Add is a single atomic op. Every method
// is nil-receiver safe, and a nil *Registry hands out live,
// unregistered handles — components never need to guard the hot path on
// "is telemetry configured?".
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing (well-behaved callers only add
// non-negative deltas; Drop-style corrections may subtract) int64
// metric. The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns an unregistered counter.
func NewCounter() *Counter { return new(Counter) }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 level: cache occupancy, index count,
// link totals. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns an unregistered gauge.
func NewGauge() *Gauge { return new(Gauge) }

// Set replaces the level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the level by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBounds are the fixed histogram bucket upper bounds used
// for latency metrics, in nanoseconds: 100µs, 1ms, 10ms, 100ms, 1s, 10s
// (plus the implicit overflow bucket). Deployment-phase durations under
// the virtual clock span exactly this range.
var DefaultLatencyBounds = []int64{
	int64(100 * time.Microsecond),
	int64(time.Millisecond),
	int64(10 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(time.Second),
	int64(10 * time.Second),
}

// Histogram is a fixed-bucket int64 histogram. Observe is lock-free:
// one atomic add into the bucket plus two for sum/count. Bounds are
// upper bucket edges (v <= bounds[i] lands in bucket i); values above
// the last bound land in the overflow bucket, so len(counts) ==
// len(bounds)+1.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// NewHistogram returns an unregistered histogram with the given bucket
// bounds. Bounds must be strictly increasing; out-of-order or duplicate
// bounds are sorted and deduplicated defensively. Empty bounds yield a
// single (overflow-only) bucket.
func NewHistogram(bounds []int64) *Histogram {
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	dedup := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			dedup = append(dedup, b)
		}
	}
	bs = dedup
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Buckets are few (a handful of latency decades); linear scan beats
	// binary search at this size and stays branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records one duration (stored as nanoseconds).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// snapshot copies the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry is a named collection of metrics. Metric handles are
// get-or-create: two components asking for the same name share the one
// metric. Safe for concurrent use; resolve handles once at construction
// and publish through them on hot paths.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if
// absent. A nil registry returns a live, unregistered counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return NewCounter()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if absent.
// A nil registry returns a live, unregistered gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return NewGauge()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds if absent (later callers' bounds are ignored —
// the first registration wins). A nil registry returns a live,
// unregistered histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's state at snapshot time.
// Counts[i] holds observations <= Bounds[i]; the final element is the
// overflow bucket, so len(Counts) == len(Bounds)+1.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot is a point-in-time copy of a registry: the unified stats
// shape every component exposes (gear.StatsSnapshot). It marshals to
// deterministic JSON (encoding/json sorts map keys), which is what the
// /metrics exposition handler serves and gearctl stats decodes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every registered metric. Values are read atomically
// per metric; the snapshot as a whole is not a global atomic cut, which
// is fine for monotonic counters (each value is some true intermediate
// state). A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// DiffStripped returns Snapshot().Diff(prev).Strip(drop...) computed in
// one pass over the registry: the current values are read, subtracted,
// and filtered directly into the result maps, with no intermediate
// snapshot or second/third map pass. Per-phase accounting loops (fleet
// scenarios take two snapshots per phase) use it so bookkeeping cost
// stays flat as fleets scale. A nil registry yields an empty snapshot.
func (r *Registry) DiffStripped(prev Snapshot, drop ...string) Snapshot {
	var d Snapshot
	if r == nil {
		return d
	}
	dropped := func(name string) bool {
		// drop lists are tiny (a couple of wall-clock metrics); a linear
		// scan beats building a set per call.
		for _, n := range drop {
			if n == name {
				return true
			}
		}
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		d.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			if !dropped(name) {
				d.Counters[name] = c.Value() - prev.Counters[name]
			}
		}
	}
	if len(r.gauges) > 0 {
		d.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			if !dropped(name) {
				d.Gauges[name] = g.Value()
			}
		}
	}
	if len(r.hists) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			if !dropped(name) {
				d.Histograms[name] = h.snapshot().diff(prev.Histograms[name])
			}
		}
	}
	return d
}

// Counter returns the snapshot's value for a counter (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the snapshot's value for a gauge (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Diff returns the change from prev to s: counters and histogram
// buckets subtract (metrics absent from prev count from zero); gauges
// keep s's current level — a gauge is an instantaneous reading, not an
// accumulation. Histograms whose bounds changed between snapshots are
// reported at their current state.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	var d Snapshot
	if len(s.Counters) > 0 {
		d.Counters = make(map[string]int64, len(s.Counters))
		for name, v := range s.Counters {
			d.Counters[name] = v - prev.Counters[name]
		}
	}
	if len(s.Gauges) > 0 {
		d.Gauges = make(map[string]int64, len(s.Gauges))
		for name, v := range s.Gauges {
			d.Gauges[name] = v
		}
	}
	if len(s.Histograms) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for name, h := range s.Histograms {
			d.Histograms[name] = h.diff(prev.Histograms[name])
		}
	}
	return d
}

// diff subtracts prev bucket-wise when the bounds match, and returns h
// unchanged otherwise.
func (h HistogramSnapshot) diff(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Bounds) != len(h.Bounds) || len(prev.Counts) != len(h.Counts) {
		return h
	}
	for i, b := range h.Bounds {
		if prev.Bounds[i] != b {
			return h
		}
	}
	out := HistogramSnapshot{
		Bounds: append([]int64(nil), h.Bounds...),
		Counts: make([]int64, len(h.Counts)),
		Sum:    h.Sum - prev.Sum,
		Count:  h.Count - prev.Count,
	}
	for i := range h.Counts {
		out.Counts[i] = h.Counts[i] - prev.Counts[i]
	}
	return out
}

// Strip returns a copy of s without the named metrics (matched against
// counters, gauges, and histograms alike). Deterministic replays use it
// to drop the few wall-clock-derived metrics (demand-stall timings are
// measured in real time, not virtual time) before comparing snapshots
// bit-for-bit.
func (s Snapshot) Strip(names ...string) Snapshot {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	var out Snapshot
	if len(s.Counters) > 0 {
		out.Counters = make(map[string]int64, len(s.Counters))
		for name, v := range s.Counters {
			if !drop[name] {
				out.Counters[name] = v
			}
		}
	}
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]int64, len(s.Gauges))
		for name, v := range s.Gauges {
			if !drop[name] {
				out.Gauges[name] = v
			}
		}
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for name, h := range s.Histograms {
			if !drop[name] {
				out.Histograms[name] = h
			}
		}
	}
	return out
}

// Validate checks the structural invariants the decoder relies on:
// histogram bounds strictly increasing, len(Counts) == len(Bounds)+1,
// and Count equal to the bucket sum. Counter/gauge values are
// unconstrained (diffs may legitimately be negative).
func (s Snapshot) Validate() error {
	for name, h := range s.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("telemetry: histogram %q: %d counts for %d bounds",
				name, len(h.Counts), len(h.Bounds))
		}
		var total int64
		for _, c := range h.Counts {
			total += c
		}
		if total != h.Count {
			return fmt.Errorf("telemetry: histogram %q: buckets sum to %d, count says %d",
				name, total, h.Count)
		}
		for i := 1; i < len(h.Bounds); i++ {
			if h.Bounds[i] <= h.Bounds[i-1] {
				return fmt.Errorf("telemetry: histogram %q: bounds not strictly increasing at %d",
					name, i)
			}
		}
	}
	return nil
}
