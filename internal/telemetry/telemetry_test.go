package telemetry

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge value = %d, want 0", got)
	}
	var h *Histogram
	h.Observe(42)
	h.ObserveDuration(time.Second)
	if s := h.snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram count = %d, want 0", s.Count)
	}
}

func TestNilRegistryHandsOutLiveHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(7)
	if got := c.Value(); got != 7 {
		t.Fatalf("live counter from nil registry = %d, want 7", got)
	}
	g := r.Gauge("y")
	g.Set(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("live gauge from nil registry = %d, want 9", got)
	}
	h := r.Histogram("z", DefaultLatencyBounds)
	h.Observe(1)
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a, b := r.Counter("shared"), r.Counter("shared")
	if a != b {
		t.Fatal("same name should return the same counter")
	}
	a.Add(2)
	b.Add(3)
	if got := r.Snapshot().Counter("shared"); got != 5 {
		t.Fatalf("shared counter = %d, want 5", got)
	}
	h1 := r.Histogram("lat", []int64{10, 20})
	h2 := r.Histogram("lat", []int64{999}) // later bounds ignored
	if h1 != h2 {
		t.Fatal("same name should return the same histogram")
	}
	if len(h2.bounds) != 2 {
		t.Fatalf("first registration's bounds should win, got %v", h2.bounds)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 100, 5}) // unsorted with dup
	if len(h.bounds) != 3 {
		t.Fatalf("bounds not deduped/sorted: %v", h.bounds)
	}
	h.Observe(5)    // <= 5 -> bucket 0
	h.Observe(6)    // <= 10 -> bucket 1
	h.Observe(100)  // <= 100 -> bucket 2
	h.Observe(1000) // overflow
	s := h.snapshot()
	want := []int64{1, 1, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 4 || s.Sum != 5+6+100+1000 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if err := (Snapshot{Histograms: map[string]HistogramSnapshot{"h": s}}).Validate(); err != nil {
		t.Fatalf("valid histogram failed validation: %v", err)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("objects")
	g := r.Gauge("level")
	h := r.Histogram("lat", []int64{10})
	c.Add(3)
	g.Set(100)
	h.Observe(5)
	before := r.Snapshot()
	c.Add(4)
	g.Set(250)
	h.Observe(50)
	after := r.Snapshot()

	d := after.Diff(before)
	if got := d.Counter("objects"); got != 4 {
		t.Fatalf("diffed counter = %d, want 4", got)
	}
	if got := d.Gauge("level"); got != 250 {
		t.Fatalf("diffed gauge = %d, want current value 250", got)
	}
	dh := d.Histograms["lat"]
	if dh.Count != 1 || dh.Sum != 50 || dh.Counts[0] != 0 || dh.Counts[1] != 1 {
		t.Fatalf("diffed histogram = %+v", dh)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("diffed snapshot invalid: %v", err)
	}
	// A metric absent from prev diffs from zero.
	d2 := after.Diff(Snapshot{})
	if got := d2.Counter("objects"); got != 7 {
		t.Fatalf("diff from empty = %d, want 7", got)
	}
}

func TestValidateRejectsBrokenHistograms(t *testing.T) {
	bad := []Snapshot{
		{Histograms: map[string]HistogramSnapshot{"h": {
			Bounds: []int64{1, 2}, Counts: []int64{0, 0}, // wrong len
		}}},
		{Histograms: map[string]HistogramSnapshot{"h": {
			Bounds: []int64{1, 2}, Counts: []int64{1, 0, 0}, Count: 2, // sum mismatch
		}}},
		{Histograms: map[string]HistogramSnapshot{"h": {
			Bounds: []int64{2, 2}, Counts: []int64{0, 0, 0}, // not strictly increasing
		}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
}

func TestConcurrentPublishAndSnapshot(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("objects")
			g := r.Gauge("level")
			h := r.Histogram("lat", DefaultLatencyBounds)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := r.Snapshot()
			if err := s.Validate(); err != nil {
				t.Errorf("mid-flight snapshot invalid: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	s := r.Snapshot()
	if got := s.Counter("objects"); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := s.Histograms["lat"].Count; got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestTraceRingWrap(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Record(Span{Op: "fault", Bytes: int64(i)})
	}
	if got := r.Total(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("len = %d, want 3", got)
	}
	spans := r.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(spans))
	}
	for i, s := range spans {
		wantSeq := int64(i + 3) // oldest retained is seq 3
		if s.Seq != wantSeq {
			t.Fatalf("span %d seq = %d, want %d (oldest-first order)", i, s.Seq, wantSeq)
		}
	}
	var nilRing *TraceRing
	nilRing.Record(Span{Op: "ignored"})
	if nilRing.Snapshot() != nil || nilRing.Total() != 0 || nilRing.Len() != 0 {
		t.Fatal("nil ring should discard and report empty")
	}
}

func TestTraceRingConcurrentRecord(t *testing.T) {
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Span{Op: "fetch"})
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Total(); got != 2000 {
		t.Fatalf("total = %d, want 2000", got)
	}
}

// populateRegistry fills a registry with the metric mix a fleet harness
// carries: many counters, some gauges, a few histograms.
func populateRegistry(counters, gauges, hists int) *Registry {
	r := NewRegistry()
	for i := 0; i < counters; i++ {
		r.Counter(fmt.Sprintf("c.%03d", i)).Add(int64(i * 7))
	}
	for i := 0; i < gauges; i++ {
		r.Gauge(fmt.Sprintf("g.%03d", i)).Set(int64(i * 3))
	}
	for i := 0; i < hists; i++ {
		h := r.Histogram(fmt.Sprintf("h.%03d", i), DefaultLatencyBounds)
		for v := 0; v < 10; v++ {
			h.Observe(int64(v) * 1e6)
		}
	}
	return r
}

// TestDiffStrippedMatchesComposed pins the one-pass diff to the
// composed Snapshot().Diff(prev).Strip(drop...) it replaces.
func TestDiffStrippedMatchesComposed(t *testing.T) {
	r := populateRegistry(20, 5, 3)
	prev := r.Snapshot()
	r.Counter("c.001").Add(42)
	r.Counter("late.arrival").Inc()
	r.Gauge("g.002").Set(99)
	r.Histogram("h.000", DefaultLatencyBounds).Observe(5e8)

	drop := []string{"c.003", "g.001", "h.001", "absent.metric"}
	want := r.Snapshot().Diff(prev).Strip(drop...)
	got := r.DiffStripped(prev, drop...)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DiffStripped = %+v\nwant %+v", got, want)
	}

	// And with nothing dropped.
	want = r.Snapshot().Diff(prev)
	got = r.DiffStripped(prev)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DiffStripped() = %+v\nwant %+v", got, want)
	}

	var nilReg *Registry
	if got := nilReg.DiffStripped(prev); !reflect.DeepEqual(got, Snapshot{}) {
		t.Errorf("nil registry DiffStripped = %+v, want empty", got)
	}
}

// BenchmarkPhaseDiff measures the per-phase accounting cost: the
// composed three-pass form versus the one-pass DiffStripped.
func BenchmarkPhaseDiff(b *testing.B) {
	r := populateRegistry(80, 12, 6)
	prev := r.Snapshot()
	drop := []string{"c.000", "c.001"}
	b.Run("composed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = r.Snapshot().Diff(prev).Strip(drop...)
		}
	})
	b.Run("onepass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = r.DiffStripped(prev, drop...)
		}
	})
}
