package telemetry

import (
	"sync"
	"time"
)

// Span classes: what triggered the recorded work.
const (
	// ClassDemand marks work done on the blocking path of a container
	// read (a demand fault).
	ClassDemand = "demand"
	// ClassPrefetch marks work done speculatively by the profile replay.
	ClassPrefetch = "prefetch"
)

// Span sources: where the bytes came from.
const (
	// SourceCache marks a hit in the local L1 object cache.
	SourceCache = "cache"
	// SourcePeer marks objects served by a peer daemon's cache.
	SourcePeer = "peer"
	// SourceRegistry marks objects downloaded from the Gear registry
	// over the WAN.
	SourceRegistry = "registry"
)

// Span is one structured trace event on the fetch path: a deploy phase,
// a fetch window, or a single blocking fault. Times are virtual-clock
// durations, so spans from a simulation are exactly reproducible.
type Span struct {
	// Seq is the ring-assigned record order (1-based, monotonic).
	Seq int64 `json:"seq"`
	// Op names the operation: "deploy.pull", "deploy.prefetch",
	// "deploy.run", "fetch", "fault".
	Op string `json:"op"`
	// Ref identifies the subject (image ref, fingerprint prefix).
	Ref string `json:"ref,omitempty"`
	// Class is ClassDemand or ClassPrefetch.
	Class string `json:"class,omitempty"`
	// Source is SourceCache, SourcePeer, or SourceRegistry.
	Source string `json:"source,omitempty"`
	// Objects is the number of Gear files the span moved.
	Objects int `json:"objects,omitempty"`
	// Bytes is the wire volume the span accounts for.
	Bytes int64 `json:"bytes,omitempty"`
	// QueueWait is time spent waiting for a scheduler slot or an
	// in-flight duplicate download.
	QueueWait time.Duration `json:"queueWait,omitempty"`
	// Transfer is time on the (virtual) wire.
	Transfer time.Duration `json:"transfer,omitempty"`
}

// DefaultTraceCapacity bounds a TraceRing when the caller does not pick
// a size: enough for every fetch window of a large deploy, small enough
// to forget about.
const DefaultTraceCapacity = 4096

// TraceRing is a bounded in-memory span buffer: recording is O(1), old
// spans are overwritten once the ring wraps, and Snapshot returns the
// retained spans oldest-first. A nil ring discards records, so
// components thread a ring through unconditionally.
type TraceRing struct {
	mu    sync.Mutex
	spans []Span
	next  int   // write cursor into spans
	seq   int64 // total spans ever recorded
}

// NewTraceRing returns a ring retaining the last capacity spans
// (DefaultTraceCapacity if capacity <= 0).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceRing{spans: make([]Span, 0, capacity)}
}

// Record appends one span, assigning its Seq. Nil-safe.
func (t *TraceRing) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	s.Seq = t.seq
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, s)
		return
	}
	t.spans[t.next] = s
	t.next = (t.next + 1) % len(t.spans)
}

// Snapshot copies the retained spans, oldest first.
func (t *TraceRing) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.spans))
	out = append(out, t.spans[t.next:]...)
	out = append(out, t.spans[:t.next]...)
	return out
}

// Total returns how many spans were ever recorded (including any the
// ring has since overwritten).
func (t *TraceRing) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Len returns the number of retained spans.
func (t *TraceRing) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
