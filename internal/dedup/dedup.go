// Package dedup implements the offline deduplication study of §II-D
// (Table II of the Gear paper): given a set of Docker images, it
// measures storage usage and unique-object counts when duplicates are
// removed at no / layer / file / chunk granularity, compressing objects
// at the same granularity they are deduplicated at.
//
// The paper's conclusion — file-level dedup captures nearly all of
// chunk-level's space saving at a ~16x smaller object count — is the
// motivation for Gear's file-granularity design; this analyzer is what
// regenerates that comparison.
package dedup

import (
	"errors"
	"fmt"

	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/tarstream"
	"github.com/gear-image/gear/internal/vfs"
)

// Granularity selects the dedup unit.
type Granularity int

// Granularities of Table II, plus the content-defined sub-file row the
// chunked lazy-loading extension adds: CDC cuts by rolling hash (the
// index builder's own chunker), so identical regions dedup across files
// even at different offsets — the ceiling fixed-size Chunk misses.
const (
	None Granularity = iota + 1
	Layer
	File
	Chunk
	CDC
)

// String returns the granularity's display name.
func (g Granularity) String() string {
	switch g {
	case None:
		return "none"
	case Layer:
		return "layer"
	case File:
		return "file"
	case Chunk:
		return "chunk"
	case CDC:
		return "cdc"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// ErrBadChunkSize reports a non-positive chunk size.
var ErrBadChunkSize = errors.New("chunk size must be positive")

// DefaultChunkSize is the paper's 128 KB study setting.
const DefaultChunkSize = 128 << 10

// Report is one Table II row.
type Report struct {
	Granularity Granularity `json:"granularity"`
	// StorageBytes is total storage with per-object compression.
	StorageBytes int64 `json:"storageBytes"`
	// RawBytes is total storage before compression.
	RawBytes int64 `json:"rawBytes"`
	// Objects is the number of unique stored objects.
	Objects int64 `json:"objects"`
}

// Analyzer ingests images incrementally and reports every row.
// It is not safe for concurrent use.
type Analyzer struct {
	chunkSize int64

	// none: every image is one object.
	noneObjects int64
	noneRaw     int64
	noneStored  int64

	layers map[hashing.Digest]struct{}
	layerRaw,
	layerStored int64

	files map[hashing.Fingerprint]struct{}
	fileRaw,
	fileStored int64

	chunks map[hashing.Fingerprint]struct{}
	chunkRaw,
	chunkStored int64

	cdcPolicy index.ChunkPolicy
	cdc       map[hashing.Fingerprint]struct{}
	cdcRaw,
	cdcStored int64
}

// NewAnalyzer returns an Analyzer using chunkSize for the chunk row.
func NewAnalyzer(chunkSize int64) (*Analyzer, error) {
	if chunkSize <= 0 {
		return nil, fmt.Errorf("dedup: chunk size %d: %w", chunkSize, ErrBadChunkSize)
	}
	return &Analyzer{
		chunkSize: chunkSize,
		layers:    make(map[hashing.Digest]struct{}),
		files:     make(map[hashing.Fingerprint]struct{}),
		chunks:    make(map[hashing.Fingerprint]struct{}),
		cdcPolicy: index.CDCChunks(chunkSize),
		cdc:       make(map[hashing.Fingerprint]struct{}),
	}, nil
}

// Add ingests one image into every accounting.
func (a *Analyzer) Add(img *imagefmt.Image) error {
	if err := img.Validate(); err != nil {
		return fmt.Errorf("dedup: add: %w", err)
	}

	// Row 1: no dedup — the image stored whole (compressed layers
	// concatenated, as a registry without digest sharing would hold it).
	a.noneObjects++
	for _, l := range img.Layers {
		a.noneRaw += l.UncompressedSize
		a.noneStored += l.Size
	}

	for _, l := range img.Layers {
		// Row 2: layer dedup — unique compressed tarballs by digest.
		if _, ok := a.layers[l.Digest]; !ok {
			a.layers[l.Digest] = struct{}{}
			a.layerRaw += l.UncompressedSize
			a.layerStored += l.Size
		}

		// Rows 3 and 4 operate on the unpacked layer's files ("the
		// registry unpacks the layers and removes duplicate data").
		tree, err := l.Tree()
		if err != nil {
			return fmt.Errorf("dedup: add %s: %w", img.Manifest.Reference(), err)
		}
		err = tree.Walk(func(_ string, n *vfs.Node) error {
			if n.Type() != vfs.TypeRegular {
				return nil
			}
			data := n.Content().Data()
			if err := a.addFile(data); err != nil {
				return err
			}
			if err := a.addChunks(data); err != nil {
				return err
			}
			return a.addCDC(data)
		})
		if err != nil {
			return fmt.Errorf("dedup: add %s: %w", img.Manifest.Reference(), err)
		}
	}
	return nil
}

func (a *Analyzer) addFile(data []byte) error {
	fp := hashing.FingerprintBytes(data)
	if _, ok := a.files[fp]; ok {
		return nil
	}
	a.files[fp] = struct{}{}
	a.fileRaw += int64(len(data))
	z, err := tarstream.Gzip(data)
	if err != nil {
		return err
	}
	a.fileStored += int64(len(z))
	return nil
}

func (a *Analyzer) addChunks(data []byte) error {
	for off := int64(0); off == 0 || off < int64(len(data)); off += a.chunkSize {
		end := off + a.chunkSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		piece := data[off:end]
		fp := hashing.FingerprintBytes(piece)
		if _, ok := a.chunks[fp]; ok {
			continue
		}
		a.chunks[fp] = struct{}{}
		a.chunkRaw += int64(len(piece))
		z, err := tarstream.Gzip(piece)
		if err != nil {
			return err
		}
		a.chunkStored += int64(len(z))
	}
	return nil
}

// addCDC accounts the content-defined sub-file row: data is cut by the
// same rolling-hash policy the index builder uses (average a.chunkSize,
// bounds at the conventional 4x spread); files the policy leaves whole
// are one object.
func (a *Analyzer) addCDC(data []byte) error {
	pieces, err := a.cdcPolicy.Split(data)
	if err != nil {
		return err
	}
	if pieces == nil {
		pieces = [][]byte{data}
	}
	for _, piece := range pieces {
		fp := hashing.FingerprintBytes(piece)
		if _, ok := a.cdc[fp]; ok {
			continue
		}
		a.cdc[fp] = struct{}{}
		a.cdcRaw += int64(len(piece))
		z, err := tarstream.Gzip(piece)
		if err != nil {
			return err
		}
		a.cdcStored += int64(len(z))
	}
	return nil
}

// Reports returns the Table II rows in granularity order: the paper's
// four plus the content-defined sub-file row.
func (a *Analyzer) Reports() []Report {
	return []Report{
		{Granularity: None, StorageBytes: a.noneStored, RawBytes: a.noneRaw, Objects: a.noneObjects},
		{Granularity: Layer, StorageBytes: a.layerStored, RawBytes: a.layerRaw, Objects: int64(len(a.layers))},
		{Granularity: File, StorageBytes: a.fileStored, RawBytes: a.fileRaw, Objects: int64(len(a.files))},
		{Granularity: Chunk, StorageBytes: a.chunkStored, RawBytes: a.chunkRaw, Objects: int64(len(a.chunks))},
		{Granularity: CDC, StorageBytes: a.cdcStored, RawBytes: a.cdcRaw, Objects: int64(len(a.cdc))},
	}
}

// Analyze is a convenience over NewAnalyzer/Add/Reports.
func Analyze(images []*imagefmt.Image, chunkSize int64) ([]Report, error) {
	a, err := NewAnalyzer(chunkSize)
	if err != nil {
		return nil, err
	}
	for _, img := range images {
		if err := a.Add(img); err != nil {
			return nil, err
		}
	}
	return a.Reports(), nil
}
