package dedup

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

// mkImage builds an image with the given layers; each layer is a list of
// (path, content) pairs.
func mkImage(t *testing.T, name, tag string, layers ...map[string]string) *imagefmt.Image {
	t.Helper()
	b := imagefmt.NewBuilder(name, tag)
	for _, files := range layers {
		f := vfs.New()
		for p, content := range files {
			if err := f.MkdirAll(vfs.Clean(p[:strings.LastIndex(p, "/")+1]), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := f.WriteFile(p, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.AddDiffLayer(f); err != nil {
			t.Fatal(err)
		}
	}
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func reportsByG(reports []Report) map[Granularity]Report {
	out := make(map[Granularity]Report, len(reports))
	for _, r := range reports {
		out[r.Granularity] = r
	}
	return out
}

func TestGranularityString(t *testing.T) {
	names := map[Granularity]string{
		None: "none", Layer: "layer", File: "file", Chunk: "chunk", CDC: "cdc", Granularity(9): "Granularity(9)",
	}
	for g, want := range names {
		if got := g.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", g, got, want)
		}
	}
}

func TestNewAnalyzerRejectsBadChunkSize(t *testing.T) {
	for _, sz := range []int64{0, -1} {
		if _, err := NewAnalyzer(sz); !errors.Is(err, ErrBadChunkSize) {
			t.Errorf("chunk size %d err = %v", sz, err)
		}
	}
}

func TestObjectCountsAcrossGranularities(t *testing.T) {
	// Two images sharing their base layer; top layers share one file.
	base := map[string]string{"/bin/sh": "shell", "/etc/os": "debian"}
	imgs := []*imagefmt.Image{
		mkImage(t, "a", "1", base, map[string]string{"/app": "app-a", "/shared": "common"}),
		mkImage(t, "b", "1", base, map[string]string{"/app": "app-b", "/shared": "common"}),
	}
	reports, err := Analyze(imgs, DefaultChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	r := reportsByG(reports)
	if r[None].Objects != 2 {
		t.Errorf("none objects = %d, want 2 images", r[None].Objects)
	}
	// Unique layers: base (shared) + 2 distinct tops = 3.
	if r[Layer].Objects != 3 {
		t.Errorf("layer objects = %d, want 3", r[Layer].Objects)
	}
	// Unique files: sh, os, app-a, app-b, common = 5.
	if r[File].Objects != 5 {
		t.Errorf("file objects = %d, want 5", r[File].Objects)
	}
	// All files < chunk size: chunk count equals file count.
	if r[Chunk].Objects != 5 {
		t.Errorf("chunk objects = %d, want 5", r[Chunk].Objects)
	}
}

func TestStorageMonotonicallyShrinks(t *testing.T) {
	// Table II's ordering: none >= layer >= file (>= chunk on raw bytes).
	rng := rand.New(rand.NewSource(11))
	sharedBase := map[string]string{}
	for i := 0; i < 20; i++ {
		data := make([]byte, 500)
		rng.Read(data)
		sharedBase[fmt.Sprintf("/lib/l%02d", i)] = string(data)
	}
	var imgs []*imagefmt.Image
	for v := 0; v < 5; v++ {
		top := map[string]string{"/version": fmt.Sprint(v)}
		imgs = append(imgs, mkImage(t, "app", fmt.Sprint(v), sharedBase, top))
	}
	reports, err := Analyze(imgs, DefaultChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	r := reportsByG(reports)
	if !(r[None].RawBytes >= r[Layer].RawBytes && r[Layer].RawBytes >= r[File].RawBytes) {
		t.Errorf("raw bytes not monotone: none=%d layer=%d file=%d",
			r[None].RawBytes, r[Layer].RawBytes, r[File].RawBytes)
	}
	if r[File].RawBytes < r[Chunk].RawBytes {
		t.Errorf("chunk raw %d > file raw %d", r[Chunk].RawBytes, r[File].RawBytes)
	}
	// Five identical base layers dedup away: layer storage must be much
	// smaller than none.
	if float64(r[Layer].RawBytes) > 0.5*float64(r[None].RawBytes) {
		t.Errorf("layer dedup saved too little: %d vs %d", r[Layer].RawBytes, r[None].RawBytes)
	}
}

func TestChunkLevelSplitsBigFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	big := make([]byte, 10*1024)
	rng.Read(big)
	img := mkImage(t, "big", "1", map[string]string{"/blob": string(big)})
	reports, err := Analyze([]*imagefmt.Image{img}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	r := reportsByG(reports)
	if r[File].Objects != 1 {
		t.Errorf("file objects = %d, want 1", r[File].Objects)
	}
	if r[Chunk].Objects != 10 {
		t.Errorf("chunk objects = %d, want 10", r[Chunk].Objects)
	}
}

func TestChunkLevelFindsSubFileDuplication(t *testing.T) {
	// Two files differing only in their last kilobyte: file-level stores
	// both fully, chunk-level shares the identical prefix chunks.
	rng := rand.New(rand.NewSource(6))
	prefix := make([]byte, 8*1024)
	rng.Read(prefix)
	fileA := string(prefix) + "tail-A"
	fileB := string(prefix) + "tail-B"
	img := mkImage(t, "x", "1", map[string]string{"/a": fileA, "/b": fileB})
	reports, err := Analyze([]*imagefmt.Image{img}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	r := reportsByG(reports)
	if r[File].RawBytes != int64(len(fileA)+len(fileB)) {
		t.Errorf("file raw = %d", r[File].RawBytes)
	}
	if r[Chunk].RawBytes >= r[File].RawBytes {
		t.Errorf("chunk raw %d not smaller than file raw %d", r[Chunk].RawBytes, r[File].RawBytes)
	}
	// 8 shared prefix chunks + 2 distinct tails = 10 objects vs 2 files.
	if r[Chunk].Objects != 10 {
		t.Errorf("chunk objects = %d, want 10", r[Chunk].Objects)
	}
}

func TestCDCSurvivesOffsetShift(t *testing.T) {
	// A byte prepended to a big file shifts every fixed-size chunk
	// boundary, so fixed chunking re-stores nearly everything; the
	// content-defined row re-cuts at the same content boundaries and
	// shares almost all of it.
	rng := rand.New(rand.NewSource(7))
	body := make([]byte, 64*1024)
	rng.Read(body)
	img := mkImage(t, "s", "1", map[string]string{
		"/orig":    string(body),
		"/shifted": "!" + string(body),
	})
	reports, err := Analyze([]*imagefmt.Image{img}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	r := reportsByG(reports)
	if r[Chunk].RawBytes < 64*1024*19/10 {
		t.Errorf("fixed chunks shared shifted data: raw = %d", r[Chunk].RawBytes)
	}
	if r[CDC].RawBytes > 64*1024*13/10 {
		t.Errorf("cdc raw = %d, want near one copy of %d", r[CDC].RawBytes, 64*1024)
	}
	if r[CDC].RawBytes > r[Chunk].RawBytes {
		t.Errorf("cdc raw %d > fixed-chunk raw %d", r[CDC].RawBytes, r[Chunk].RawBytes)
	}
}

func TestCDCSmallFilesStayWhole(t *testing.T) {
	// Files at most MaxSize (4x the average) are one CDC object each,
	// matching the file row exactly.
	img := mkImage(t, "w", "1", map[string]string{"/a": "alpha", "/b": "beta"})
	reports, err := Analyze([]*imagefmt.Image{img}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	r := reportsByG(reports)
	if r[CDC] != (Report{Granularity: CDC, StorageBytes: r[File].StorageBytes,
		RawBytes: r[File].RawBytes, Objects: r[File].Objects}) {
		t.Errorf("cdc row %+v differs from file row %+v on whole-file corpus", r[CDC], r[File])
	}
}

func TestCompressionAccounted(t *testing.T) {
	compressible := make([]byte, 4096) // zeros compress well
	img := mkImage(t, "z", "1", map[string]string{"/zeros": string(compressible)})
	reports, err := Analyze([]*imagefmt.Image{img}, DefaultChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.StorageBytes >= r.RawBytes {
			t.Errorf("%s: stored %d >= raw %d for compressible data",
				r.Granularity, r.StorageBytes, r.RawBytes)
		}
	}
}

func TestEmptyFileCounted(t *testing.T) {
	img := mkImage(t, "e", "1", map[string]string{"/empty": ""})
	reports, err := Analyze([]*imagefmt.Image{img}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	r := reportsByG(reports)
	if r[File].Objects != 1 || r[Chunk].Objects != 1 {
		t.Errorf("empty file objects: file=%d chunk=%d, want 1/1", r[File].Objects, r[Chunk].Objects)
	}
}

func TestAddRejectsInvalidImage(t *testing.T) {
	a, err := NewAnalyzer(DefaultChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	img := mkImage(t, "a", "1", map[string]string{"/f": "x"})
	img.Layers = nil
	if err := a.Add(img); err == nil {
		t.Error("invalid image accepted")
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	imgs := []*imagefmt.Image{
		mkImage(t, "a", "1", map[string]string{"/f": "one"}),
		mkImage(t, "b", "1", map[string]string{"/f": "one", "/g": "two"}),
	}
	batch, err := Analyze(imgs, DefaultChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(DefaultChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, img := range imgs {
		if err := a.Add(img); err != nil {
			t.Fatal(err)
		}
	}
	inc := a.Reports()
	for i := range batch {
		if batch[i] != inc[i] {
			t.Errorf("row %d: batch %+v != incremental %+v", i, batch[i], inc[i])
		}
	}
}
