package bench

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func validFile() *File {
	return &File{
		Schema: Schema,
		PR:     6,
		Seed:   20211107,
		Scale:  0.25,
		Experiments: []Experiment{
			{ID: "fig9", WallNS: int64(120 * time.Millisecond), AllocBytes: 1 << 20, AllocObjects: 4096},
			{ID: "extfleet", WallNS: int64(2 * time.Second), Counters: map[string]int64{
				"fleet.deploys":        1024,
				"store.remote.objects": 331,
			}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	f := validFile()
	data, err := Encode(f)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("encoded snapshot missing trailing newline")
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(back, f) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, f)
	}
	// Canonical form is stable: encoding the decoded file reproduces
	// the bytes (what the CI regeneration check relies on).
	re, err := Encode(back)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if string(re) != string(data) {
		t.Errorf("canonical form unstable:\n%s\nvs\n%s", data, re)
	}

	e, ok := back.Experiment("extfleet")
	if !ok || e.Wall() != 2*time.Second {
		t.Errorf("Experiment(extfleet) = %+v, %v", e, ok)
	}
	if got := back.CounterNames(); !reflect.DeepEqual(got, []string{"fleet.deploys", "store.remote.objects"}) {
		t.Errorf("CounterNames = %v", got)
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	good, err := Encode(validFile())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		data string
		want error
	}{
		{"empty", "", ErrCorrupt},
		{"not json", "BENCH!", ErrCorrupt},
		{"truncated", string(good[:len(good)/2]), ErrCorrupt},
		{"trailing garbage", string(good) + "{}", ErrCorrupt},
		{"unknown field", `{"schema":"gear-bench/v1","pr":6,"seed":1,"scale":1,"experiments":[{"id":"x","wallNs":1}],"extra":true}`, ErrCorrupt},
		{"missing schema", `{"pr":6}`, ErrSchema},
		{"wrong schema", `{"schema":"gear-bench/v3","pr":6}`, ErrSchema},
		{"schema wrong type", `{"schema":42}`, ErrCorrupt},
		{"negative allocBytes", `{"schema":"gear-bench/v2","pr":6,"seed":1,"scale":1,"experiments":[{"id":"x","wallNs":1,"allocBytes":-1}]}`, ErrInvalid},
		{"alloc columns under v1", `{"schema":"gear-bench/v1","pr":6,"seed":1,"scale":1,"experiments":[{"id":"x","wallNs":1,"allocBytes":5}]}`, ErrInvalid},
		{"pr zero", `{"schema":"gear-bench/v1","pr":0,"seed":1,"scale":1,"experiments":[{"id":"x","wallNs":1}]}`, ErrInvalid},
		{"no experiments", `{"schema":"gear-bench/v1","pr":6,"seed":1,"scale":1,"experiments":[]}`, ErrInvalid},
		{"empty id", `{"schema":"gear-bench/v1","pr":6,"seed":1,"scale":1,"experiments":[{"id":"","wallNs":1}]}`, ErrInvalid},
		{"duplicate id", `{"schema":"gear-bench/v1","pr":6,"seed":1,"scale":1,"experiments":[{"id":"x","wallNs":1},{"id":"x","wallNs":2}]}`, ErrInvalid},
		{"negative wall", `{"schema":"gear-bench/v1","pr":6,"seed":1,"scale":1,"experiments":[{"id":"x","wallNs":-1}]}`, ErrInvalid},
		{"negative counter", `{"schema":"gear-bench/v1","pr":6,"seed":1,"scale":1,"experiments":[{"id":"x","wallNs":1,"counters":{"c":-2}}]}`, ErrInvalid},
		{"zero scale", `{"schema":"gear-bench/v1","pr":6,"seed":1,"scale":0,"experiments":[{"id":"x","wallNs":1}]}`, ErrInvalid},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Decode([]byte(tt.data))
			if !errors.Is(err, tt.want) {
				t.Errorf("Decode = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	f := validFile()
	f.Experiments[0].ID = ""
	if _, err := Encode(f); !errors.Is(err, ErrInvalid) {
		t.Errorf("Encode(invalid) = %v, want ErrInvalid", err)
	}
	f = validFile()
	f.Schema = "bogus"
	if _, err := Encode(f); !errors.Is(err, ErrSchema) {
		t.Errorf("Encode(bad schema) = %v, want ErrSchema", err)
	}
}

func TestFilename(t *testing.T) {
	if got := Filename(6); got != "BENCH_6.json" {
		t.Errorf("Filename(6) = %q", got)
	}
}

// TestDecodeV1Compat pins backward compatibility: earlier committed
// BENCH_<pr>.json files (schema v1, no alloc columns) must keep
// decoding and round-tripping under their own schema.
func TestDecodeV1Compat(t *testing.T) {
	v1 := `{
  "schema": "gear-bench/v1",
  "pr": 6,
  "seed": 20211107,
  "scale": 0.25,
  "experiments": [
    {
      "id": "fig9",
      "wallNs": 120000000,
      "counters": {
        "store.remote.objects": 331
      }
    }
  ]
}
`
	f, err := Decode([]byte(v1))
	if err != nil {
		t.Fatalf("Decode(v1): %v", err)
	}
	if f.Schema != SchemaV1 {
		t.Errorf("schema = %q, want %q", f.Schema, SchemaV1)
	}
	e, ok := f.Experiment("fig9")
	if !ok || e.AllocBytes != 0 || e.AllocObjects != 0 {
		t.Errorf("fig9 = %+v, %v; want zero alloc columns", e, ok)
	}
	re, err := Encode(f)
	if err != nil {
		t.Fatalf("re-Encode(v1): %v", err)
	}
	if string(re) != v1 {
		t.Errorf("v1 canonical form unstable:\n%s\nvs\n%s", v1, re)
	}
}
