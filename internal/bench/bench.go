// Package bench is the versioned codec for the repo's committed
// benchmark snapshots (BENCH_<pr>.json): per-experiment wall time plus
// the key telemetry counters of a full experiment sweep, written by
// cmd/benchreport each PR so regressions are diffable from git history
// alone. The decoder is strict — unknown schema versions, unknown
// fields, truncation, and semantic violations are distinct typed
// errors, never panics — because CI validates the committed snapshot on
// every run.
package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Schema is the current snapshot schema identifier. v2 adds the
// per-experiment allocation columns (allocBytes/allocObjects) that
// cmd/benchreport records alongside wall time. Decode also accepts
// SchemaV1 snapshots — earlier committed BENCH_<pr>.json files remain
// readable — but rejects v1 files carrying v2-only fields.
const Schema = "gear-bench/v2"

// SchemaV1 is the previous snapshot schema: identical shape minus the
// allocation columns.
const SchemaV1 = "gear-bench/v1"

// Errors returned by the codec.
var (
	// ErrSchema reports a snapshot whose schema field is missing or
	// names a version this decoder does not speak.
	ErrSchema = errors.New("unknown bench schema")
	// ErrCorrupt reports bytes that are not a well-formed snapshot:
	// invalid JSON, truncation, or fields the schema does not define.
	ErrCorrupt = errors.New("corrupt bench snapshot")
	// ErrInvalid reports a well-formed snapshot violating semantic
	// invariants (duplicate experiment ids, negative wall times, ...).
	ErrInvalid = errors.New("invalid bench snapshot")
)

// Experiment is one experiment's measurement.
type Experiment struct {
	// ID is the experiment identifier ("fig9", "extfleet", ...).
	ID string `json:"id"`
	// WallNS is the experiment's wall-clock run time in nanoseconds.
	WallNS int64 `json:"wallNs"`
	// AllocBytes is the total heap bytes allocated while the experiment
	// ran (runtime MemStats.TotalAlloc delta) — cumulative allocation
	// pressure, not resident size. Schema v2 only.
	AllocBytes int64 `json:"allocBytes,omitempty"`
	// AllocObjects is the heap object count allocated while the
	// experiment ran (MemStats.Mallocs delta). Schema v2 only.
	AllocObjects int64 `json:"allocObjects,omitempty"`
	// Counters are the telemetry counters the experiment's daemons
	// accumulated (snapshot diff over the run).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Wall returns the wall time as a duration.
func (e *Experiment) Wall() time.Duration { return time.Duration(e.WallNS) }

// File is one committed benchmark snapshot.
type File struct {
	Schema string `json:"schema"`
	// PR is the stacked-PR number the snapshot belongs to (BENCH_<PR>.json).
	PR int `json:"pr"`
	// Seed/Scale echo the experiments.Config that produced the run.
	Seed        int64        `json:"seed"`
	Scale       float64      `json:"scale"`
	Experiments []Experiment `json:"experiments"`
}

// Filename returns the canonical committed name for a PR's snapshot.
func Filename(pr int) string { return fmt.Sprintf("BENCH_%d.json", pr) }

// Experiment returns the named experiment's entry.
func (f *File) Experiment(id string) (Experiment, bool) {
	for _, e := range f.Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Validate checks the semantic invariants Encode enforces and Decode
// guarantees: a known schema, a positive PR, positive scale, non-empty
// unique experiment ids, non-negative measurements, and no v2-only
// fields under the v1 schema.
func (f *File) Validate() error {
	if f.Schema != Schema && f.Schema != SchemaV1 {
		return fmt.Errorf("bench: schema %q: %w", f.Schema, ErrSchema)
	}
	if f.PR <= 0 {
		return fmt.Errorf("bench: pr %d: %w", f.PR, ErrInvalid)
	}
	if f.Scale <= 0 {
		return fmt.Errorf("bench: scale %g: %w", f.Scale, ErrInvalid)
	}
	if len(f.Experiments) == 0 {
		return fmt.Errorf("bench: no experiments: %w", ErrInvalid)
	}
	seen := make(map[string]bool, len(f.Experiments))
	for i, e := range f.Experiments {
		if e.ID == "" {
			return fmt.Errorf("bench: experiment %d: empty id: %w", i, ErrInvalid)
		}
		if seen[e.ID] {
			return fmt.Errorf("bench: experiment %q: duplicate id: %w", e.ID, ErrInvalid)
		}
		seen[e.ID] = true
		if e.WallNS < 0 {
			return fmt.Errorf("bench: experiment %q: negative wall time: %w", e.ID, ErrInvalid)
		}
		if e.AllocBytes < 0 || e.AllocObjects < 0 {
			return fmt.Errorf("bench: experiment %q: negative alloc stats: %w", e.ID, ErrInvalid)
		}
		if f.Schema == SchemaV1 && (e.AllocBytes != 0 || e.AllocObjects != 0) {
			return fmt.Errorf("bench: experiment %q: alloc columns under schema %s: %w",
				e.ID, SchemaV1, ErrInvalid)
		}
		for name, v := range e.Counters {
			if name == "" {
				return fmt.Errorf("bench: experiment %q: empty counter name: %w", e.ID, ErrInvalid)
			}
			if v < 0 {
				return fmt.Errorf("bench: experiment %q: counter %q negative: %w", e.ID, name, ErrInvalid)
			}
		}
	}
	return nil
}

// Encode validates f and renders the canonical committed form:
// indented JSON, sorted map keys (encoding/json), trailing newline.
func Encode(f *File) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// Decode parses a committed snapshot. The schema field is probed first
// with a loose parse (so version skew reports ErrSchema, not a field
// mismatch), then the full file is decoded strictly — unknown fields
// and trailing garbage are ErrCorrupt — and validated (ErrInvalid).
func Decode(data []byte) (*File, error) {
	var probe struct {
		Schema *string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("bench: %v: %w", err, ErrCorrupt)
	}
	if probe.Schema == nil || (*probe.Schema != Schema && *probe.Schema != SchemaV1) {
		got := "(missing)"
		if probe.Schema != nil {
			got = *probe.Schema
		}
		return nil, fmt.Errorf("bench: schema %q, want %q or %q: %w", got, Schema, SchemaV1, ErrSchema)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	f := new(File)
	if err := dec.Decode(f); err != nil {
		return nil, fmt.Errorf("bench: %v: %w", err, ErrCorrupt)
	}
	// A second document after the first is not a snapshot.
	if dec.More() {
		return nil, fmt.Errorf("bench: trailing data: %w", ErrCorrupt)
	}
	// Normalize "counters": {} to the absent form so decoded files
	// re-encode canonically (omitempty drops empty maps).
	for i := range f.Experiments {
		if len(f.Experiments[i].Counters) == 0 {
			f.Experiments[i].Counters = nil
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// CounterNames lists every counter name appearing in any experiment,
// sorted — the stable axis for cross-PR comparison tables.
func (f *File) CounterNames() []string {
	seen := make(map[string]bool)
	for _, e := range f.Experiments {
		for name := range e.Counters {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
