package bench

import (
	"reflect"
	"testing"
)

// FuzzDecode: the snapshot decoder must never panic on arbitrary
// bytes, and everything it accepts must validate and survive an
// encode/decode round trip unchanged — the contract CI leans on when
// it re-checks the committed BENCH_<pr>.json every run.
func FuzzDecode(f *testing.F) {
	if data, err := Encode(validFile()); err == nil {
		f.Add(data)
		f.Add(data[:len(data)-2]) // truncated
		f.Add(append(data, '}'))  // trailing garbage
	}
	f.Add([]byte(`{"schema":"gear-bench/v1"}`))
	f.Add([]byte(`{"schema":"gear-bench/v9","pr":1}`))
	f.Add([]byte(`{"schema":42}`))
	f.Add([]byte(`{"schema":"gear-bench/v1","pr":6,"seed":1,"scale":1,"experiments":[{"id":"x","wallNs":1,"counters":{"c":9007199254740993}}]}`))
	f.Add([]byte("null"))
	f.Add([]byte("[]"))
	f.Add([]byte(""))
	f.Add([]byte("\xff\xfe"))

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Decode(data)
		if err != nil {
			return
		}
		if err := file.Validate(); err != nil {
			t.Fatalf("accepted snapshot fails validation: %v", err)
		}
		re, err := Encode(file)
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		back, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if !reflect.DeepEqual(back, file) {
			t.Fatal("decode(encode(f)) != f")
		}
	})
}
