package fleet

import (
	"sync"
	"testing"
)

// TestSnapshotHammer runs a 256-node flash crowd while hammering the
// fleet-wide Snapshot from concurrent readers (the -race contract:
// observability must never require pausing the fleet), then reconciles
// the final snapshot against the per-node legacy accessors — topology
// link counters and store.Stats — so the two reporting paths cannot
// drift apart.
func TestSnapshotHammer(t *testing.T) {
	h, err := New(testWorkload(t), Options{Nodes: 256, Seed: 99, Peers: true})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastWAN, lastDeploys int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := h.Snapshot()
				// The wall-clock histogram tears benignly under concurrent
				// observation (three independent atomic adds); everything
				// else must validate mid-flight.
				if err := snap.Strip(WallClockMetrics...).Validate(); err != nil {
					t.Error(err)
					return
				}
				if wan := snap.Gauge("fleet.wan.bytes"); wan < lastWAN {
					t.Errorf("fleet.wan.bytes went backwards: %d -> %d", lastWAN, wan)
					return
				} else {
					lastWAN = wan
				}
				if dep := snap.Counter("fleet.deploys"); dep < lastDeploys {
					t.Errorf("fleet.deploys went backwards: %d -> %d", lastDeploys, dep)
					return
				} else {
					lastDeploys = dep
				}
			}
		}()
	}

	res, err := h.Run(FlashCrowd)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TotalDeploys != 256 {
		t.Errorf("TotalDeploys = %d, want 256", res.TotalDeploys)
	}

	// Reconciliation pass: the quiesced snapshot, the topology
	// aggregates, and the per-node legacy accessors must tell one story.
	snap := h.Snapshot()
	topo := h.Topology()
	if got, want := snap.Gauge("fleet.wan.bytes"), topo.WANStats().Bytes; got != want {
		t.Errorf("fleet.wan.bytes gauge = %d, topology says %d", got, want)
	}
	if got, want := snap.Gauge("fleet.lan.bytes"), topo.LANStats().Bytes; got != want {
		t.Errorf("fleet.lan.bytes gauge = %d, topology says %d", got, want)
	}

	var wanSum, lanSum int64
	active := h.Active()
	if len(active) != 256 {
		t.Fatalf("active nodes = %d, want 256", len(active))
	}
	for _, id := range active {
		d, ok := h.Daemon(id)
		if !ok {
			t.Fatalf("daemon %q missing", id)
		}
		wanSum += d.Link().Stats().Bytes
		lanSum += d.PeerLink().Stats().Bytes
	}
	if wanSum != topo.WANStats().Bytes {
		t.Errorf("sum of per-node WAN link bytes %d != topology aggregate %d",
			wanSum, topo.WANStats().Bytes)
	}
	if lanSum != topo.LANStats().Bytes {
		t.Errorf("sum of per-node LAN link bytes %d != topology aggregate %d",
			lanSum, topo.LANStats().Bytes)
	}

	// Store handles publish into the shared fleet registry, so any
	// node's legacy Stats accessor reads the fleet-wide totals and must
	// agree with the snapshot's counters.
	d, _ := h.Daemon(active[0])
	st := d.GearStore().Stats()
	checks := []struct {
		name    string
		legacy  int64
		counter string
	}{
		{"remote objects", st.RemoteObjects, "store.remote.objects"},
		{"remote bytes", st.RemoteBytes, "store.remote.bytes"},
		{"peer objects", st.PeerObjects, "store.peer.objects"},
		{"peer bytes", st.PeerBytes, "store.peer.bytes"},
		{"demand misses", st.DemandMisses, "store.demand.misses"},
		{"stall bytes", st.StallBytes, "store.demand.stall.bytes"},
	}
	for _, c := range checks {
		if got := snap.Counter(c.counter); got != c.legacy {
			t.Errorf("%s: snapshot %s = %d, legacy Stats says %d",
				c.name, c.counter, got, c.legacy)
		}
	}
	if res.PeerObjects != st.PeerObjects {
		t.Errorf("result peer objects %d != store stats %d", res.PeerObjects, st.PeerObjects)
	}
	if res.PeerObjects == 0 {
		t.Error("flash crowd served no objects peer-to-peer")
	}
}
