package fleet

import (
	"errors"
	"fmt"
	"time"

	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/telemetry"
)

// Kind names a scripted scenario.
type Kind string

// The scripted scenarios.
const (
	// FlashCrowd: one seed node deploys the newest version from the
	// registry, then the rest of the fleet joins and deploys the same
	// version in a random order — a rollout wavefront where (with peers
	// on) almost every byte should come off the cluster LAN.
	FlashCrowd Kind = "flashcrowd"
	// Churn: a full-fleet baseline rollout, then rounds of random
	// leaves and cold-cache rejoins while the surviving fleet rolls
	// forward one version per round.
	Churn Kind = "churn"
	// Failover: a steady rollout, a rollout under a degraded registry,
	// and a rollout after recovery. Against a single-node registry the
	// degradation is a 10x-throttled WAN (failing over to a throttled
	// mirror); against a sharded tier (Options.Shards) one shard is
	// killed outright and its replicas absorb the traffic — every deploy
	// must still complete with zero failed fetches.
	Failover Kind = "failover"
	// Mixed: everyone deploys the first version; a random half then
	// acts as long-running services (request loops against the deployed
	// container) while the other half runs short-lived jobs (deploy the
	// newest version, then destroy).
	Mixed Kind = "mixed"
	// Straggler: a steady rollout, a rollout while the busiest shard
	// serves at 10x its nominal service time (no failures — the shard
	// stays live and correct, just slow), and a rollout after it
	// recovers. Requires a sharded tier (Options.Shards); whether the
	// slow phase hurts depends on Options.ReadBalance/ReadHedge.
	Straggler Kind = "straggler"
)

// Kinds lists every scenario in canonical order.
func Kinds() []Kind { return []Kind{FlashCrowd, Churn, Failover, Mixed, Straggler} }

// ErrUnknownScenario reports an unrecognized scenario kind.
var ErrUnknownScenario = errors.New("unknown scenario")

// churnRounds is the number of leave/rejoin rounds the churn scenario
// runs after its baseline rollout.
const churnRounds = 3

// Run executes the scenario against an empty fleet and returns its
// per-phase accounting. A harness is single-use: the second Run reports
// ErrAlreadyRun (node and telemetry state is cumulative, so re-running
// would not start from the documented initial conditions).
func (h *Harness) Run(kind Kind) (*Result, error) {
	h.mu.Lock()
	if h.ran {
		h.mu.Unlock()
		return nil, fmt.Errorf("fleet: run %s: %w", kind, ErrAlreadyRun)
	}
	h.ran = true
	h.mu.Unlock()

	res := &Result{
		Scenario:    string(kind),
		Seed:        h.opts.Seed,
		Nodes:       h.opts.Nodes,
		Peers:       h.opts.Peers,
		Shards:      h.opts.Shards,
		Replication: h.opts.Replication,
	}
	if h.cluster == nil {
		res.Replication = 0
	}
	var err error
	switch kind {
	case FlashCrowd:
		err = h.runFlashCrowd(res)
	case Churn:
		err = h.runChurn(res)
	case Failover:
		err = h.runFailover(res)
	case Mixed:
		err = h.runMixed(res)
	case Straggler:
		err = h.runStraggler(res)
	default:
		return nil, fmt.Errorf("fleet: %q: %w", kind, ErrUnknownScenario)
	}
	if err != nil {
		return nil, err
	}
	res.finish()
	return res, nil
}

// phase runs fn as one accounted scenario phase: its telemetry diff
// (wall-clock metrics stripped), link deltas, and deploy-time extrema
// land in one PhaseResult, and a span summarizing the phase is recorded
// into the harness ring.
func (h *Harness) phase(res *Result, name string, fn func() error) error {
	before := h.Snapshot()
	wanBefore, lanBefore := h.topo.WANStats(), h.topo.LANStats()
	var shardBefore netsim.Stats
	if h.shardTopo != nil {
		shardBefore = h.shardTopo.WANStats()
	}
	h.mu.Lock()
	h.maxDeploy = 0
	h.mu.Unlock()

	if err := fn(); err != nil {
		return fmt.Errorf("fleet: %s/%s: %w", res.Scenario, name, err)
	}

	diff := h.phaseDiff(before)
	h.mu.Lock()
	maxDeploy := h.maxDeploy
	h.mu.Unlock()
	p := PhaseResult{
		Name:       name,
		Joins:      diff.Counter("fleet.joins"),
		Leaves:     diff.Counter("fleet.leaves"),
		Deploys:    diff.Counter("fleet.deploys"),
		Reads:      diff.Counter("fleet.reads"),
		Destroys:   diff.Counter("fleet.destroys"),
		DeployTime: time.Duration(diff.Counter("fleet.deploy.virtual.ns")),
		MaxDeploy:  maxDeploy,
		WAN:        h.topo.WANStats().Sub(wanBefore),
		LAN:        h.topo.LANStats().Sub(lanBefore),
		Telemetry:  diff,
	}
	if h.shardTopo != nil {
		p.ShardWAN = h.shardTopo.WANStats().Sub(shardBefore)
	}
	if p.Deploys > 0 {
		p.MeanDeploy = p.DeployTime / time.Duration(p.Deploys)
	}
	h.ring.Record(telemetry.Span{
		Op:       "fleet.phase",
		Ref:      res.Scenario + "/" + name,
		Class:    telemetry.ClassDemand,
		Source:   telemetry.SourceRegistry,
		Objects:  int(p.Deploys),
		Bytes:    p.WAN.Bytes,
		Transfer: p.DeployTime,
	})
	res.Phases = append(res.Phases, p)
	return nil
}

// busiestShard returns the tier member with the most primary-routed
// objects (ties broken by id, so the pick is deterministic) — the
// worst-case single-shard failure the sharded failover scenario kills.
func (h *Harness) busiestShard() string {
	load := h.cluster.PrimaryLoad()
	var victim string
	most := -1
	for _, id := range h.cluster.Shards() {
		if load[id] > most {
			most, victim = load[id], id
		}
	}
	return victim
}

// latest returns the newest workload version index.
func (h *Harness) latest() int { return h.wl.Versions() - 1 }

// clampVersion bounds v to the published version range.
func (h *Harness) clampVersion(v int) int {
	if last := h.latest(); v > last {
		return last
	}
	return v
}

func (h *Harness) runFlashCrowd(res *Result) error {
	last := h.latest()
	if err := h.phase(res, "seed", func() error {
		if err := h.Join(NodeID(0)); err != nil {
			return err
		}
		_, err := h.Deploy(NodeID(0), last)
		return err
	}); err != nil {
		return err
	}
	return h.phase(res, "crowd", func() error {
		for i := 1; i < h.opts.Nodes; i++ {
			if err := h.Join(NodeID(i)); err != nil {
				return err
			}
		}
		// The crowd arrives in random order — the seeded permutation is
		// the scenario's schedule.
		for _, i := range h.rng.Perm(h.opts.Nodes - 1) {
			if _, err := h.Deploy(NodeID(i+1), last); err != nil {
				return err
			}
		}
		return nil
	})
}

func (h *Harness) runChurn(res *Result) error {
	if err := h.phase(res, "baseline", func() error {
		for i := 0; i < h.opts.Nodes; i++ {
			if err := h.Join(NodeID(i)); err != nil {
				return err
			}
			if _, err := h.Deploy(NodeID(i), 0); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	var gone []string
	for r := 1; r <= churnRounds; r++ {
		round := ChurnRound{}
		err := h.phase(res, fmt.Sprintf("round%d", r), func() error {
			// A random quarter of the fleet leaves...
			active := h.Active()
			quit := len(active) / 4
			if quit == 0 && len(active) > 1 {
				quit = 1
			}
			perm := h.rng.Perm(len(active))
			for _, pi := range perm[:quit] {
				id := active[pi]
				if err := h.Leave(id); err != nil {
					return err
				}
				round.Leave = append(round.Leave, id)
			}
			gone = append(gone, round.Leave...)
			// ...and half of everyone currently gone rejoins, cold.
			back := len(gone) / 2
			round.Rejoin = append(round.Rejoin, gone[:back]...)
			gone = gone[back:]
			for _, id := range round.Rejoin {
				if err := h.Join(id); err != nil {
					return err
				}
			}
			// The surviving fleet rolls forward one version.
			v := h.clampVersion(r)
			for _, id := range h.Active() {
				if _, err := h.Deploy(id, v); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		res.Churn = append(res.Churn, round)
	}
	return nil
}

func (h *Harness) runFailover(res *Result) error {
	deployAll := func(v int) func() error {
		return func() error {
			for _, id := range h.Active() {
				if _, err := h.Deploy(id, v); err != nil {
					return err
				}
			}
			return nil
		}
	}
	if err := h.phase(res, "steady", func() error {
		for i := 0; i < h.opts.Nodes; i++ {
			if err := h.Join(NodeID(i)); err != nil {
				return err
			}
		}
		return deployAll(0)()
	}); err != nil {
		return err
	}
	if h.cluster != nil {
		// Sharded tier: the failure is one dead shard, not a slow WAN —
		// specifically the shard carrying the most primary routes, the
		// worst single-member loss. Deploys must complete from the
		// surviving replicas.
		victim := h.busiestShard()
		res.KilledShard = victim
		if err := h.phase(res, "degraded", func() error {
			if err := h.cluster.KillShard(victim); err != nil {
				return err
			}
			return deployAll(h.clampVersion(1))()
		}); err != nil {
			return err
		}
		return h.phase(res, "recovered", func() error {
			if err := h.cluster.ReviveShard(victim); err != nil {
				return err
			}
			return deployAll(h.clampVersion(2))()
		})
	}
	healthy := h.topo.WANConfig()
	degraded := healthy
	degraded.BytesPerSecond /= 10
	if err := h.phase(res, "degraded", func() error {
		if err := h.topo.SetWANConfig(degraded); err != nil {
			return err
		}
		return deployAll(h.clampVersion(1))()
	}); err != nil {
		return err
	}
	return h.phase(res, "recovered", func() error {
		if err := h.topo.SetWANConfig(healthy); err != nil {
			return err
		}
		return deployAll(h.clampVersion(2))()
	})
}

// stragglerFactor is the service slowdown the straggler scenario
// applies to the busiest shard — the 10x slow node of the tail-latency
// literature.
const stragglerFactor = 10

// runStraggler is failover's latency-side sibling: nothing dies, but
// the shard carrying the most primary routes serves at stragglerFactor
// its nominal service time for the middle rollout. Rank-order reads eat
// the full slowdown on every object the straggler owns; balanced or
// hedged reads should keep the slow phase close to the steady one.
func (h *Harness) runStraggler(res *Result) error {
	if h.cluster == nil {
		return fmt.Errorf("fleet: straggler scenario needs a sharded tier (Options.Shards): %w", ErrBadFleet)
	}
	deployAll := func(v int) func() error {
		return func() error {
			for _, id := range h.Active() {
				if _, err := h.Deploy(id, v); err != nil {
					return err
				}
			}
			return nil
		}
	}
	if err := h.phase(res, "steady", func() error {
		for i := 0; i < h.opts.Nodes; i++ {
			if err := h.Join(NodeID(i)); err != nil {
				return err
			}
		}
		return deployAll(0)()
	}); err != nil {
		return err
	}
	victim := h.busiestShard()
	res.SlowShard = victim
	if err := h.phase(res, "slow", func() error {
		if err := h.shardTopo.SetServiceFactor(victim, stragglerFactor); err != nil {
			return err
		}
		return deployAll(h.clampVersion(1))()
	}); err != nil {
		return err
	}
	return h.phase(res, "recovered", func() error {
		if err := h.shardTopo.SetServiceFactor(victim, 1); err != nil {
			return err
		}
		return deployAll(h.clampVersion(2))()
	})
}

// mixedReadsPerService is the request-loop depth of each long-running
// service in the mixed scenario.
const mixedReadsPerService = 4

func (h *Harness) runMixed(res *Result) error {
	if err := h.phase(res, "rollout", func() error {
		for i := 0; i < h.opts.Nodes; i++ {
			if err := h.Join(NodeID(i)); err != nil {
				return err
			}
			if _, err := h.Deploy(NodeID(i), 0); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// A seeded permutation splits the fleet: the first half serves, the
	// second half cycles short-lived jobs.
	perm := h.rng.Perm(h.opts.Nodes)
	long, short := perm[:h.opts.Nodes/2], perm[h.opts.Nodes/2:]
	if err := h.phase(res, "longrun", func() error {
		paths := h.wl.Access[0]
		for _, i := range long {
			for r := 0; r < mixedReadsPerService; r++ {
				if _, err := h.Read(NodeID(i), paths[h.rng.Intn(len(paths))]); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return h.phase(res, "shortrun", func() error {
		last := h.latest()
		for _, i := range short {
			if _, err := h.Deploy(NodeID(i), last); err != nil {
				return err
			}
			if _, err := h.DestroyLast(NodeID(i)); err != nil {
				return err
			}
		}
		return nil
	})
}
