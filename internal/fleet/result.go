package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/telemetry"
)

// PhaseResult is one scenario phase's accounting: the fleet activity it
// scripted, the traffic each link class carried, and the fleet-wide
// telemetry diff over the phase (wall-clock metrics stripped, so it is
// identical across runs of the same (scenario, seed)).
type PhaseResult struct {
	Name     string `json:"name"`
	Joins    int64  `json:"joins,omitempty"`
	Leaves   int64  `json:"leaves,omitempty"`
	Deploys  int64  `json:"deploys,omitempty"`
	Reads    int64  `json:"reads,omitempty"`
	Destroys int64  `json:"destroys,omitempty"`
	// DeployTime sums the phase's deployment virtual times; MeanDeploy
	// and MaxDeploy summarize the distribution.
	DeployTime time.Duration `json:"deployTime"`
	MeanDeploy time.Duration `json:"meanDeploy"`
	MaxDeploy  time.Duration `json:"maxDeploy"`
	// WAN is the registry egress the phase cost; LAN is what the
	// cluster absorbed peer-to-peer instead. ShardWAN is the sharded
	// registry tier's own inter-shard/service traffic for the phase
	// (zero when the run has no shard tier).
	WAN      netsim.Stats `json:"wan"`
	LAN      netsim.Stats `json:"lan"`
	ShardWAN netsim.Stats `json:"shardWAN,omitzero"`
	// Telemetry is the stripped fleet-wide snapshot diff.
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

// ChurnRound records one churn round's schedule — the seed-determined
// leave and rejoin sets, in execution order.
type ChurnRound struct {
	Leave  []string `json:"leave,omitempty"`
	Rejoin []string `json:"rejoin,omitempty"`
}

// Result is one scenario run's full accounting.
type Result struct {
	Scenario string        `json:"scenario"`
	Seed     int64         `json:"seed"`
	Nodes    int           `json:"nodes"`
	Peers    bool          `json:"peers"`
	Phases   []PhaseResult `json:"phases"`
	// Shards/Replication describe the registry tier backing the run
	// (0 = single-node registry); KilledShard is the member the sharded
	// failover scenario killed; SlowShard the member the straggler
	// scenario ran at 10x service time.
	Shards      int    `json:"shards,omitempty"`
	Replication int    `json:"replication,omitempty"`
	KilledShard string `json:"killedShard,omitempty"`
	SlowShard   string `json:"slowShard,omitempty"`
	// Churn is the churn scenario's schedule (empty otherwise).
	Churn []ChurnRound `json:"churn,omitempty"`
	// Fleet-wide totals across all phases.
	TotalDeploys int64         `json:"totalDeploys"`
	WANBytes     int64         `json:"wanBytes"`
	LANBytes     int64         `json:"lanBytes"`
	PeerObjects  int64         `json:"peerObjects"`
	MeanDeploy   time.Duration `json:"meanDeploy"`
	MaxDeploy    time.Duration `json:"maxDeploy"`
}

// finish derives the run-level totals from the completed phases. Totals
// are sums of per-phase diffs, never absolute registry reads, so they
// stay correct when several harnesses share one telemetry registry
// (cmd/benchreport's whole-sweep snapshot).
func (r *Result) finish() {
	var deployNS time.Duration
	for i := range r.Phases {
		p := &r.Phases[i]
		r.TotalDeploys += p.Deploys
		r.WANBytes += p.WAN.Bytes
		r.LANBytes += p.LAN.Bytes
		r.PeerObjects += p.Telemetry.Counter("store.peer.objects")
		deployNS += p.DeployTime
		if p.MaxDeploy > r.MaxDeploy {
			r.MaxDeploy = p.MaxDeploy
		}
	}
	if r.TotalDeploys > 0 {
		r.MeanDeploy = deployNS / time.Duration(r.TotalDeploys)
	}
}

// Canonical returns the result's deterministic JSON form (map keys
// sort, so two bit-identical runs marshal to identical bytes).
func (r *Result) Canonical() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Fingerprint returns a short hash of the canonical form — the value
// replay checks compare.
func (r *Result) Fingerprint() (string, error) {
	data, err := r.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8]), nil
}

// Print renders the per-phase table.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "scenario %s: %d nodes, seed %d, peers=%v\n",
		r.Scenario, r.Nodes, r.Seed, r.Peers)
	fmt.Fprintf(w, "%-10s %6s %6s %8s %6s %8s %12s %12s %12s %12s\n",
		"phase", "joins", "leaves", "deploys", "reads", "destroys",
		"wan bytes", "lan bytes", "mean deploy", "max deploy")
	for i := range r.Phases {
		p := &r.Phases[i]
		fmt.Fprintf(w, "%-10s %6d %6d %8d %6d %8d %12d %12d %12s %12s\n",
			p.Name, p.Joins, p.Leaves, p.Deploys, p.Reads, p.Destroys,
			p.WAN.Bytes, p.LAN.Bytes,
			p.MeanDeploy.Round(time.Microsecond),
			p.MaxDeploy.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "total: %d deploys, %d WAN bytes, %d LAN bytes, %d peer-served objects, mean deploy %s\n",
		r.TotalDeploys, r.WANBytes, r.LANBytes, r.PeerObjects,
		r.MeanDeploy.Round(time.Microsecond))
	for _, round := range r.Churn {
		fmt.Fprintf(w, "churn: -%d +%d nodes\n", len(round.Leave), len(round.Rejoin))
	}
}
