// Package fleet is the scenario harness for cluster-scale simulation:
// it composes a netsim.Topology, a peer tracker, and per-node dockersim
// daemons into fleets of up to thousands of nodes, and drives them
// through scripted scenarios — flash-crowd rollouts, node churn,
// registry failover, mixed long/short-running workloads.
//
// Every random decision a scenario makes (deployment order, who leaves,
// who rejoins, which paths a long-running service reads) is drawn from
// one seeded math/rand source, and all daemons publish into one shared
// telemetry registry, so a run is bit-reproducible from (scenario,
// seed): same seed, same schedule, same telemetry snapshot — modulo the
// few wall-clock-derived metrics listed in WallClockMetrics, which the
// per-phase accounting strips.
package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/gear-image/gear/internal/corpus"
	"github.com/gear-image/gear/internal/dockersim"
	"github.com/gear-image/gear/internal/gear/convert"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/peer"
	"github.com/gear-image/gear/internal/registry"
	"github.com/gear-image/gear/internal/shardreg"
	"github.com/gear-image/gear/internal/telemetry"
)

// Errors returned by the harness.
var (
	// ErrBadFleet reports invalid harness options or workload parameters.
	ErrBadFleet = errors.New("invalid fleet configuration")
	// ErrAlreadyJoined reports a Join for a node id that is attached.
	ErrAlreadyJoined = errors.New("node already joined")
	// ErrAlreadyRun reports a second Run on a single-use harness.
	ErrAlreadyRun = errors.New("harness already ran a scenario")
)

// WallClockMetrics names the telemetry metrics derived from the host's
// real clock rather than the simulation's virtual clock (the store
// measures demand-stall latency with time.Now). They are the only
// metrics that differ between two runs of the same (scenario, seed);
// per-phase diffs strip them so snapshots compare bit-for-bit.
var WallClockMetrics = []string{"store.demand.stall.ns", "store.demand.stall"}

// Workload is the image material a fleet deploys: one series published
// into in-process registries, with the per-version access lists and
// task compute the daemons replay. It is read-only once built, so one
// workload can back many harnesses (and many scenario runs).
type Workload struct {
	// Docker/Gear are the registries holding the series (original
	// images + Gear index images, and Gear files respectively).
	Docker *registry.Registry
	Gear   *gearregistry.Registry
	// Series is the corpus series name; Ref is its Gear index
	// reference ("gear/<series>"); Tags lists the version tags.
	Series string
	Ref    string
	Tags   []string
	// Access[v] is version v's launch-time access list.
	Access [][]string
	// Compute is the per-deploy task compute time.
	Compute time.Duration
	// Scale is the corpus byte scale the workload was built at; the
	// harness uses it to size link bandwidths and wire overheads the
	// same way the experiments package does.
	Scale float64
}

// Versions returns the number of published versions.
func (w *Workload) Versions() int { return len(w.Tags) }

// WorkloadOptions parameterizes BuildWorkload. Zero fields default to
// the experiments package's quick configuration (seed 20211107, scale
// 0.25, the nginx series, 4 versions).
type WorkloadOptions struct {
	Seed     int64
	Scale    float64
	Series   string
	Versions int
}

// BuildWorkload publishes one deterministic series into fresh
// registries and returns the fleet's deployment material.
func BuildWorkload(o WorkloadOptions) (*Workload, error) {
	if o.Seed == 0 {
		o.Seed = 20211107
	}
	if o.Scale == 0 {
		o.Scale = 0.25
	}
	if o.Series == "" {
		o.Series = "nginx"
	}
	if o.Versions == 0 {
		o.Versions = 4
	}
	co, err := corpus.New(corpus.Options{
		Seed:         o.Seed,
		Scale:        o.Scale,
		SeriesFilter: []string{o.Series},
		MaxVersions:  o.Versions,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: workload corpus: %w", err)
	}
	series := co.Series()
	if len(series) == 0 {
		return nil, fmt.Errorf("fleet: workload series %q: %w", o.Series, ErrBadFleet)
	}
	s := series[0]
	wl := &Workload{
		Docker: registry.New(),
		Gear:   gearregistry.New(gearregistry.Options{Compress: true}),
		Series: s.Name,
		Ref:    "gear/" + s.Name,
		Tags:   s.Tags(),
		Scale:  o.Scale,
	}
	conv, err := convert.New(convert.Options{})
	if err != nil {
		return nil, fmt.Errorf("fleet: workload converter: %w", err)
	}
	for v := 0; v < s.NumVersions; v++ {
		img, err := co.Image(s.Name, v)
		if err != nil {
			return nil, fmt.Errorf("fleet: workload image %s v%d: %w", s.Name, v, err)
		}
		if _, err := registry.Push(wl.Docker, img); err != nil {
			return nil, fmt.Errorf("fleet: workload push %s v%d: %w", s.Name, v, err)
		}
		res, err := conv.Convert(img)
		if err != nil {
			return nil, fmt.Errorf("fleet: workload convert %s v%d: %w", s.Name, v, err)
		}
		res.Index.Name = wl.Ref
		ixImg, err := res.Index.ToImage()
		if err != nil {
			return nil, fmt.Errorf("fleet: workload index %s v%d: %w", s.Name, v, err)
		}
		res.IndexImage = ixImg
		if _, _, err := convert.Publish(res, wl.Docker, wl.Gear); err != nil {
			return nil, fmt.Errorf("fleet: workload publish %s v%d: %w", s.Name, v, err)
		}
		items, err := co.NecessarySet(s.Name, v)
		if err != nil {
			return nil, fmt.Errorf("fleet: workload access %s v%d: %w", s.Name, v, err)
		}
		paths := make([]string, len(items))
		for i, it := range items {
			paths[i] = it.Path
		}
		wl.Access = append(wl.Access, paths)
	}
	if wl.Compute, err = co.TaskCompute(s.Name); err != nil {
		return nil, fmt.Errorf("fleet: workload compute: %w", err)
	}
	return wl, nil
}

// Options configures a Harness.
type Options struct {
	// Nodes is the fleet size scenarios script against.
	Nodes int
	// Seed drives every random scenario decision.
	Seed int64
	// WAN/LAN override the per-node link configurations. Zero values
	// default to the paper's 20 Mbps registry uplink and 1000 Mbps
	// cluster LAN, scaled by the workload's corpus scale.
	WAN, LAN netsim.LinkConfig
	// Peers enables the cluster tracker + peer exchange, so Gear
	// fetches try LAN peers before the registry WAN.
	Peers bool
	// GearRequestBytes overrides the per-fetch wire overhead (0 scales
	// the default 900 bytes by the workload scale).
	GearRequestBytes int64
	// CacheCapacity bounds each node's level-1 Gear cache (0 =
	// unbounded).
	CacheCapacity int64
	// Telemetry is the fleet-wide metrics registry every daemon
	// publishes into. Nil creates a private one (Snapshot still works).
	Telemetry *telemetry.Registry
	// TraceCapacity bounds each daemon's span ring. The fleet default
	// is 64 (not telemetry.DefaultTraceCapacity) so a 1024-node fleet
	// does not pre-allocate thousands of spans per node.
	TraceCapacity int
	// Shards, when > 0, backs the fleet with a sharded registry tier
	// (internal/shardreg) seeded from the workload's Gear pool instead
	// of the single-node registry. The shard tier gets its own topology
	// (same WAN/LAN configs) so the fleet.wan.* gauges keep counting
	// client-side traffic only — a sharded fleet's per-node bytes stay
	// comparable to a single-registry run.
	Shards int
	// Replication is the shard tier's replica count (only meaningful
	// with Shards > 0; default min(2, Shards) so the failover scenario
	// can lose a shard without losing objects).
	Replication int
	// ReadBalance picks shard-tier download replicas by
	// power-of-two-choices over observed load instead of ring rank
	// (shardreg.ReadOptions.Balance). Placement is unchanged.
	ReadBalance bool
	// ReadHedge arms hedged shard-tier downloads: a mirrored request to
	// the next-best replica once the first runs past the adaptive delay
	// (shardreg.ReadOptions.Hedge).
	ReadHedge bool
}

// node is one attached fleet member.
type node struct {
	daemon *dockersim.Daemon
	// last is the most recent deployment, the target of Read and
	// DestroyLast.
	last *dockersim.Deployment
}

// Harness drives one fleet. Scenario execution is single-threaded (the
// virtual clock makes that the deterministic order), but Snapshot and
// the read-only accessors are safe to call concurrently with a running
// scenario — that is the -race hammer contract.
type Harness struct {
	wl      *Workload
	opts    Options
	tele    *telemetry.Registry
	topo    *netsim.Topology
	tracker *peer.Tracker
	network *peer.StaticNetwork
	ring    *telemetry.TraceRing
	rng     *rand.Rand
	// cluster is the sharded registry tier (nil without Options.Shards);
	// shardTopo is the tier's own topology, kept apart from the client
	// fleet's so fleet.wan.* stays client-side.
	cluster   *shardreg.Cluster
	shardTopo *netsim.Topology

	mu        sync.Mutex
	nodes     map[string]*node
	active    []string // attachment order
	maxDeploy time.Duration
	ran       bool

	joins, leaves, deploys *telemetry.Counter
	reads, destroys        *telemetry.Counter
	deployNS, readNS       *telemetry.Counter
	destroyNS, readBytes   *telemetry.Counter
	nodesGauge             *telemetry.Gauge
	wanBytes, wanRequests  *telemetry.Gauge
	wanElapsed             *telemetry.Gauge
	lanBytes, lanRequests  *telemetry.Gauge
	lanElapsed             *telemetry.Gauge
}

// New returns a harness over wl. No nodes are attached yet; scenarios
// (or tests) call Join.
func New(wl *Workload, opts Options) (*Harness, error) {
	if wl == nil || wl.Versions() == 0 {
		return nil, fmt.Errorf("fleet: nil or empty workload: %w", ErrBadFleet)
	}
	if opts.Nodes <= 0 {
		return nil, fmt.Errorf("fleet: %d nodes: %w", opts.Nodes, ErrBadFleet)
	}
	scale := wl.Scale
	if scale == 0 {
		scale = 1
	}
	if opts.WAN == (netsim.LinkConfig{}) {
		opts.WAN = netsim.DefaultLAN().WithBandwidth(20.0 / 1000 * scale)
	}
	if opts.LAN == (netsim.LinkConfig{}) {
		opts.LAN = netsim.DefaultLAN().WithBandwidth(1000.0 / 1000 * scale)
	}
	if opts.GearRequestBytes == 0 {
		opts.GearRequestBytes = int64(900 * scale)
	}
	if opts.TraceCapacity == 0 {
		opts.TraceCapacity = 64
	}
	tele := opts.Telemetry
	if tele == nil {
		tele = telemetry.NewRegistry()
	}
	topo, err := netsim.NewTopology(opts.WAN, opts.LAN)
	if err != nil {
		return nil, fmt.Errorf("fleet: topology: %w", err)
	}
	h := &Harness{
		wl:          wl,
		opts:        opts,
		tele:        tele,
		topo:        topo,
		tracker:     peer.NewTracker(),
		network:     peer.NewStaticNetwork(),
		ring:        telemetry.NewTraceRing(0),
		rng:         rand.New(rand.NewSource(opts.Seed)),
		nodes:       make(map[string]*node),
		joins:       tele.Counter("fleet.joins"),
		leaves:      tele.Counter("fleet.leaves"),
		deploys:     tele.Counter("fleet.deploys"),
		reads:       tele.Counter("fleet.reads"),
		destroys:    tele.Counter("fleet.destroys"),
		deployNS:    tele.Counter("fleet.deploy.virtual.ns"),
		readNS:      tele.Counter("fleet.read.virtual.ns"),
		destroyNS:   tele.Counter("fleet.destroy.virtual.ns"),
		readBytes:   tele.Counter("fleet.read.bytes"),
		nodesGauge:  tele.Gauge("fleet.nodes"),
		wanBytes:    tele.Gauge("fleet.wan.bytes"),
		wanRequests: tele.Gauge("fleet.wan.requests"),
		wanElapsed:  tele.Gauge("fleet.wan.elapsed.ns"),
		lanBytes:    tele.Gauge("fleet.lan.bytes"),
		lanRequests: tele.Gauge("fleet.lan.requests"),
		lanElapsed:  tele.Gauge("fleet.lan.elapsed.ns"),
	}
	if opts.Shards > 0 {
		if opts.Replication == 0 {
			opts.Replication = 2
			if opts.Shards < 2 {
				opts.Replication = opts.Shards
			}
			h.opts.Replication = opts.Replication
		}
		h.shardTopo, err = netsim.NewTopology(opts.WAN, opts.LAN)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard topology: %w", err)
		}
		ids := make([]string, opts.Shards)
		for i := range ids {
			ids[i] = ShardID(i)
		}
		h.cluster, err = shardreg.New(shardreg.Options{
			Shards:      ids,
			Replication: opts.Replication,
			Compress:    true,
			Telemetry:   tele,
			Topology:    h.shardTopo,
			Read: shardreg.ReadOptions{
				Balance: opts.ReadBalance,
				Hedge:   opts.ReadHedge,
				Seed:    uint64(opts.Seed),
			},
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: shard tier: %w", err)
		}
		// Migrate the workload's published pool into the tier so deploys
		// fetch from shards, not the single-node registry.
		if _, err := h.cluster.Seed(wl.Gear); err != nil {
			return nil, fmt.Errorf("fleet: shard seed: %w", err)
		}
	}
	return h, nil
}

// ShardID returns the canonical id of shard tier member i ("shard00"...).
func ShardID(i int) string { return fmt.Sprintf("shard%02d", i) }

// Cluster returns the sharded registry tier, or nil when the fleet runs
// against the single-node registry.
func (h *Harness) Cluster() *shardreg.Cluster { return h.cluster }

// NodeID returns the canonical id of fleet member i ("node0000"...).
func NodeID(i int) string { return fmt.Sprintf("node%04d", i) }

// gearStore is what daemons fetch Gear files from: the shard tier's
// routing client when sharded, the workload's single registry otherwise.
// The daemons are oblivious — both speak the same Store + batch verbs.
func (h *Harness) gearStore() gearregistry.Store {
	if h.cluster != nil {
		return h.cluster
	}
	return h.wl.Gear
}

// Join attaches a new node: topology links, a daemon publishing into
// the fleet registry, and (with Options.Peers) a peer exchange plus a
// served cache. A node that left can rejoin under the same id with a
// cold cache and fresh links.
func (h *Harness) Join(id string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.nodes[id]; ok {
		return fmt.Errorf("fleet: join %q: %w", id, ErrAlreadyJoined)
	}
	dopts := dockersim.Options{
		Links:            h.topo.Node(id),
		GearRequestBytes: h.opts.GearRequestBytes,
		CacheCapacity:    h.opts.CacheCapacity,
		Telemetry:        h.tele,
		TraceCapacity:    h.opts.TraceCapacity,
	}
	if h.opts.Peers {
		dopts.Peers = peer.NewExchangeWithTelemetry(id, h.tracker, h.network, h.tele)
	}
	d, err := dockersim.NewDaemon(h.wl.Docker, h.gearStore(), dopts)
	if err != nil {
		return fmt.Errorf("fleet: join %q: %w", id, err)
	}
	if h.opts.Peers {
		// Cache membership drives tracker announcements/withdrawals, and
		// the node's cache serves the cluster. Peers serve compressed like
		// the registry so received bytes are source-independent.
		d.GearStore().Cache().SetHooks(h.tracker.Hooks(id))
		h.network.Add(id, peer.NewServer(id, d.GearStore().Cache(),
			peer.ServerOptions{Compress: true}))
	}
	h.nodes[id] = &node{daemon: d}
	h.active = append(h.active, id)
	h.joins.Inc()
	h.nodesGauge.Set(int64(len(h.nodes)))
	return nil
}

// Leave detaches a node: its cache empties (firing tracker
// withdrawals), its file server leaves the network, and its topology
// links close so any in-flight transfer attempt fails with
// netsim.ErrLinkClosed. Leaving an unknown node reports
// netsim.ErrUnknownNode.
func (h *Harness) Leave(id string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	n, ok := h.nodes[id]
	if !ok {
		return fmt.Errorf("fleet: leave %q: %w", id, netsim.ErrUnknownNode)
	}
	n.daemon.ClearGearCache()
	h.network.Remove(id)
	if err := h.topo.Detach(id); err != nil {
		return fmt.Errorf("fleet: leave %q: %w", id, err)
	}
	delete(h.nodes, id)
	for i, a := range h.active {
		if a == id {
			h.active = append(h.active[:i], h.active[i+1:]...)
			break
		}
	}
	h.leaves.Inc()
	h.nodesGauge.Set(int64(len(h.nodes)))
	return nil
}

// lookup returns the named node or a typed error.
func (h *Harness) lookup(id string) (*node, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	n, ok := h.nodes[id]
	if !ok {
		return nil, fmt.Errorf("fleet: node %q: %w", id, netsim.ErrUnknownNode)
	}
	return n, nil
}

// Deploy deploys workload version v on the named node (Gear mode) and
// keeps the deployment as the node's current container.
func (h *Harness) Deploy(id string, v int) (*dockersim.Deployment, error) {
	if v < 0 || v >= h.wl.Versions() {
		return nil, fmt.Errorf("fleet: deploy %q: version %d of %d: %w",
			id, v, h.wl.Versions(), ErrBadFleet)
	}
	n, err := h.lookup(id)
	if err != nil {
		return nil, err
	}
	dep, err := n.daemon.DeployGear(h.wl.Ref, h.wl.Tags[v], h.wl.Access[v], h.wl.Compute)
	if err != nil {
		return nil, fmt.Errorf("fleet: deploy %q v%d: %w", id, v, err)
	}
	h.mu.Lock()
	n.last = dep
	if dep.Total() > h.maxDeploy {
		h.maxDeploy = dep.Total()
	}
	h.mu.Unlock()
	h.deploys.Inc()
	h.deployNS.Add(int64(dep.Total()))
	return dep, nil
}

// Read serves one file from the node's current container — a
// long-running service handling a request.
func (h *Harness) Read(id, path string) (time.Duration, error) {
	n, err := h.lookup(id)
	if err != nil {
		return 0, err
	}
	h.mu.Lock()
	dep := n.last
	h.mu.Unlock()
	if dep == nil {
		return 0, fmt.Errorf("fleet: read %q: %w", id, dockersim.ErrNotDeployed)
	}
	data, cost, err := dep.Read(path)
	if err != nil {
		return 0, fmt.Errorf("fleet: read %q %s: %w", id, path, err)
	}
	h.reads.Inc()
	h.readBytes.Add(int64(len(data)))
	h.readNS.Add(int64(cost))
	return cost, nil
}

// DestroyLast tears down the node's current container — the tail of a
// short-running lifecycle.
func (h *Harness) DestroyLast(id string) (time.Duration, error) {
	n, err := h.lookup(id)
	if err != nil {
		return 0, err
	}
	h.mu.Lock()
	dep := n.last
	n.last = nil
	h.mu.Unlock()
	if dep == nil {
		return 0, fmt.Errorf("fleet: destroy %q: %w", id, dockersim.ErrNotDeployed)
	}
	cost, err := dep.Destroy()
	if err != nil {
		return 0, fmt.Errorf("fleet: destroy %q: %w", id, err)
	}
	h.destroys.Inc()
	h.destroyNS.Add(int64(cost))
	return cost, nil
}

// Active lists attached node ids in attachment order.
func (h *Harness) Active() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.active))
	copy(out, h.active)
	return out
}

// Daemon returns the named node's daemon for direct inspection.
func (h *Harness) Daemon(id string) (*dockersim.Daemon, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	n, ok := h.nodes[id]
	if !ok {
		return nil, false
	}
	return n.daemon, true
}

// Topology exposes the fleet's network topology.
func (h *Harness) Topology() *netsim.Topology { return h.topo }

// TraceRing returns the harness's scenario-phase span buffer (one span
// per completed phase).
func (h *Harness) TraceRing() *telemetry.TraceRing { return h.ring }

// Snapshot returns the fleet-wide telemetry snapshot. The fleet.wan.*
// and fleet.lan.* gauges are refreshed from the topology's aggregated
// link counters (detached nodes' past traffic included) so the snapshot
// is the whole fleet's picture. Safe to call while a scenario runs.
func (h *Harness) Snapshot() telemetry.Snapshot {
	h.refreshLinkGauges()
	return h.tele.Snapshot()
}

// refreshLinkGauges folds the topology's aggregated link counters into
// the fleet.wan.*/fleet.lan.* gauges. The read-stats-then-set-gauge
// sequence is serialized so a stale read can never overwrite a fresher
// one: with the link counters monotone, serialized refreshes keep the
// gauges monotone too, and concurrent snapshot readers may trust that.
func (h *Harness) refreshLinkGauges() {
	h.mu.Lock()
	wan := h.topo.WANStats()
	h.wanBytes.Set(wan.Bytes)
	h.wanRequests.Set(wan.Requests)
	h.wanElapsed.Set(int64(wan.Elapsed))
	lan := h.topo.LANStats()
	h.lanBytes.Set(lan.Bytes)
	h.lanRequests.Set(lan.Requests)
	h.lanElapsed.Set(int64(lan.Elapsed))
	h.nodesGauge.Set(int64(len(h.nodes)))
	h.mu.Unlock()
}

// phaseDiff returns the change in fleet telemetry since before with the
// wall-clock metrics stripped, computed in one registry pass (see
// telemetry.Registry.DiffStripped) — the per-phase accounting hot path.
func (h *Harness) phaseDiff(before telemetry.Snapshot) telemetry.Snapshot {
	h.refreshLinkGauges()
	return h.tele.DiffStripped(before, WallClockMetrics...)
}
