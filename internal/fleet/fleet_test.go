package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"

	"github.com/gear-image/gear/internal/dockersim"
	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/telemetry"
)

var (
	wlOnce sync.Once
	wlErr  error
	testWL *Workload
)

// testWorkload builds the shared quick-scale workload once per test
// binary. The workload is read-only after construction, so harnesses
// (and parallel tests) can share it.
func testWorkload(t *testing.T) *Workload {
	t.Helper()
	wlOnce.Do(func() {
		testWL, wlErr = BuildWorkload(WorkloadOptions{})
	})
	if wlErr != nil {
		t.Fatalf("BuildWorkload: %v", wlErr)
	}
	return testWL
}

// runScenario builds a fresh harness and runs one scenario, returning
// the result and the final stripped fleet snapshot. The straggler
// scenario gets the sharded tier it requires.
func runScenario(t *testing.T, kind Kind, nodes int, seed int64) (*Result, telemetry.Snapshot) {
	t.Helper()
	opts := Options{Nodes: nodes, Seed: seed, Peers: true}
	if kind == Straggler {
		opts.Shards = 4
		opts.ReadBalance = true
		opts.ReadHedge = true
	}
	h, err := New(testWorkload(t), opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := h.Run(kind)
	if err != nil {
		t.Fatalf("Run(%s): %v", kind, err)
	}
	return res, h.Snapshot().Strip(WallClockMetrics...)
}

// TestScenarioDeterminism is the replay golden test: the same
// (scenario, seed) must reproduce bit-identical results and telemetry
// snapshots, run to run, for every scenario kind.
func TestScenarioDeterminism(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			res1, snap1 := runScenario(t, kind, 16, 42)
			res2, snap2 := runScenario(t, kind, 16, 42)

			j1, err := res1.Canonical()
			if err != nil {
				t.Fatalf("Canonical: %v", err)
			}
			j2, err := res2.Canonical()
			if err != nil {
				t.Fatalf("Canonical: %v", err)
			}
			if !bytes.Equal(j1, j2) {
				t.Errorf("same (scenario, seed) produced different results:\n--- run 1\n%s\n--- run 2\n%s", j1, j2)
			}
			if !reflect.DeepEqual(snap1, snap2) {
				t.Errorf("same (scenario, seed) produced different telemetry snapshots:\nrun 1: %+v\nrun 2: %+v", snap1, snap2)
			}
			fp1, err := res1.Fingerprint()
			if err != nil {
				t.Fatalf("Fingerprint: %v", err)
			}
			fp2, _ := res2.Fingerprint()
			if fp1 != fp2 {
				t.Errorf("fingerprints differ: %s vs %s", fp1, fp2)
			}

			// Every phase diff must be structurally valid.
			for _, p := range res1.Phases {
				if err := p.Telemetry.Validate(); err != nil {
					t.Errorf("phase %s: %v", p.Name, err)
				}
			}
		})
	}
}

// TestChurnSeedSensitivity checks the other half of the replay
// contract: a different seed draws a different churn schedule.
func TestChurnSeedSensitivity(t *testing.T) {
	res1, _ := runScenario(t, Churn, 16, 1)
	res2, _ := runScenario(t, Churn, 16, 2)
	s1, err := json.Marshal(res1.Churn)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := json.Marshal(res2.Churn)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s1, s2) {
		t.Errorf("seeds 1 and 2 drew the identical churn schedule: %s", s1)
	}
	if len(res1.Churn) != churnRounds {
		t.Errorf("churn recorded %d rounds, want %d", len(res1.Churn), churnRounds)
	}
}

// TestScenarioAccounting sanity-checks the flash-crowd phase economics:
// with peers on, the crowd phase should source most content over the
// LAN, and the totals must reconcile with the topology.
func TestScenarioAccounting(t *testing.T) {
	res, snap := runScenario(t, FlashCrowd, 16, 7)
	if res.TotalDeploys != 16 {
		t.Errorf("TotalDeploys = %d, want 16", res.TotalDeploys)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("phases = %d, want 2 (seed, crowd)", len(res.Phases))
	}
	seed, crowd := res.Phases[0], res.Phases[1]
	if seed.Deploys != 1 || crowd.Deploys != 15 {
		t.Errorf("phase deploys = %d/%d, want 1/15", seed.Deploys, crowd.Deploys)
	}
	if seed.LAN.Bytes != 0 {
		t.Errorf("seed phase moved %d LAN bytes with no peers present", seed.LAN.Bytes)
	}
	if crowd.LAN.Bytes == 0 {
		t.Error("crowd phase moved no LAN bytes despite peers")
	}
	if res.PeerObjects == 0 {
		t.Error("no objects served peer-to-peer in a flash crowd")
	}
	// The crowd should cost the registry far less than 15 cold pulls:
	// each Gear file leaves the registry roughly once.
	if crowd.WAN.Bytes > seed.WAN.Bytes*15/2 {
		t.Errorf("crowd WAN egress %d not materially below 15 cold pulls (seed pull was %d)",
			crowd.WAN.Bytes, seed.WAN.Bytes)
	}
	if got := seed.WAN.Bytes + crowd.WAN.Bytes; got != res.WANBytes {
		t.Errorf("phase WAN bytes sum %d != run total %d", got, res.WANBytes)
	}
	if snap.Gauge("fleet.nodes") != 16 {
		t.Errorf("fleet.nodes gauge = %d, want 16", snap.Gauge("fleet.nodes"))
	}
}

// TestHarnessTypedErrors drives every misuse path to its sentinel.
func TestHarnessTypedErrors(t *testing.T) {
	wl := testWorkload(t)
	if _, err := New(wl, Options{Nodes: 0}); !errors.Is(err, ErrBadFleet) {
		t.Errorf("New(0 nodes) = %v, want ErrBadFleet", err)
	}
	if _, err := New(nil, Options{Nodes: 1}); !errors.Is(err, ErrBadFleet) {
		t.Errorf("New(nil workload) = %v, want ErrBadFleet", err)
	}

	h, err := New(wl, Options{Nodes: 4, Seed: 1, Peers: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(Kind("thundering-herd")); !errors.Is(err, ErrUnknownScenario) {
		t.Errorf("Run(bogus) = %v, want ErrUnknownScenario", err)
	}
	if err := h.Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := h.Join("a"); !errors.Is(err, ErrAlreadyJoined) {
		t.Errorf("double Join = %v, want ErrAlreadyJoined", err)
	}
	if _, err := h.Deploy("ghost", 0); !errors.Is(err, netsim.ErrUnknownNode) {
		t.Errorf("Deploy(ghost) = %v, want ErrUnknownNode", err)
	}
	if err := h.Leave("ghost"); !errors.Is(err, netsim.ErrUnknownNode) {
		t.Errorf("Leave(ghost) = %v, want ErrUnknownNode", err)
	}
	if _, err := h.Deploy("a", 99); !errors.Is(err, ErrBadFleet) {
		t.Errorf("Deploy(v99) = %v, want ErrBadFleet", err)
	}
	if _, err := h.Read("a", "x"); !errors.Is(err, dockersim.ErrNotDeployed) {
		t.Errorf("Read before deploy = %v, want ErrNotDeployed", err)
	}
	if _, err := h.DestroyLast("a"); !errors.Is(err, dockersim.ErrNotDeployed) {
		t.Errorf("DestroyLast before deploy = %v, want ErrNotDeployed", err)
	}

	// A daemon handle kept across a Leave sees its links closed: deploys
	// report the detachment instead of pricing traffic on a dead link.
	d, ok := h.Daemon("a")
	if !ok {
		t.Fatal("Daemon(a) not found")
	}
	if err := h.Leave("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DeployGear(wl.Ref, wl.Tags[0], wl.Access[0], wl.Compute); !errors.Is(err, dockersim.ErrDetached) {
		t.Errorf("deploy on departed daemon = %v, want ErrDetached", err)
	}
	if _, err := d.DeployGear(wl.Ref, wl.Tags[0], wl.Access[0], wl.Compute); !errors.Is(err, netsim.ErrLinkClosed) {
		t.Errorf("ErrDetached does not wrap netsim.ErrLinkClosed: %v", err)
	}

	// After a rejoin the same id deploys again.
	if err := h.Join("a"); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if _, err := h.Deploy("a", 0); err != nil {
		t.Fatalf("deploy after rejoin: %v", err)
	}
}

// TestRunSingleUse pins the harness lifecycle: one scenario per
// harness.
func TestRunSingleUse(t *testing.T) {
	h, err := New(testWorkload(t), Options{Nodes: 2, Seed: 3, Peers: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(FlashCrowd); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(FlashCrowd); !errors.Is(err, ErrAlreadyRun) {
		t.Errorf("second Run = %v, want ErrAlreadyRun", err)
	}
}

// TestFailoverDegradesDeploys checks the failover scenario's shape: the
// degraded phase's deployments are slower than steady state, and
// recovery restores them.
func TestFailoverDegradesDeploys(t *testing.T) {
	res, _ := runScenario(t, Failover, 8, 11)
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(res.Phases))
	}
	steady, degraded, recovered := res.Phases[0], res.Phases[1], res.Phases[2]
	if degraded.MeanDeploy <= recovered.MeanDeploy {
		t.Errorf("degraded mean deploy %v not above recovered %v",
			degraded.MeanDeploy, recovered.MeanDeploy)
	}
	// Steady state includes the cold first pull, so compare per-phase
	// WAN elapsed instead: degraded pays 10x per byte.
	if steady.WAN.Bytes > 0 && degraded.WAN.Bytes > 0 {
		steadyRate := float64(steady.WAN.Elapsed) / float64(steady.WAN.Bytes)
		degradedRate := float64(degraded.WAN.Elapsed) / float64(degraded.WAN.Bytes)
		if degradedRate < steadyRate*2 {
			t.Errorf("degraded WAN %.2fx steady cost per byte, want >= 2x",
				degradedRate/steadyRate)
		}
	}
}

// TestMixedWorkload checks the mixed scenario splits the fleet and
// accounts both halves.
func TestMixedWorkload(t *testing.T) {
	res, _ := runScenario(t, Mixed, 10, 5)
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(res.Phases))
	}
	longrun, shortrun := res.Phases[1], res.Phases[2]
	if want := int64(5 * mixedReadsPerService); longrun.Reads != want {
		t.Errorf("longrun reads = %d, want %d", longrun.Reads, want)
	}
	if longrun.Telemetry.Counter("fleet.read.bytes") == 0 {
		t.Error("longrun phase read zero bytes")
	}
	if shortrun.Deploys != 5 || shortrun.Destroys != 5 {
		t.Errorf("shortrun deploys/destroys = %d/%d, want 5/5",
			shortrun.Deploys, shortrun.Destroys)
	}
}

// TestShardedFailover: with the fleet backed by a replicated shard tier,
// the failover scenario kills one shard — every deploy must complete
// from the surviving replicas (zero failed fetches), each node must pull
// byte-for-byte what it pulls from a single-node registry, and the run
// must stay bit-reproducible.
func TestShardedFailover(t *testing.T) {
	run := func(shards int, seed int64) (*Result, *Harness) {
		t.Helper()
		h, err := New(testWorkload(t), Options{Nodes: 8, Seed: seed, Peers: true, Shards: shards})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := h.Run(Failover)
		if err != nil {
			t.Fatalf("Run(failover, %d shards): %v", shards, err)
		}
		return res, h
	}

	sharded, hs := run(3, 11)
	if hs.Cluster() == nil || hs.Cluster().Replication() != 2 {
		t.Fatal("sharded harness did not build a replication-2 tier")
	}
	if sharded.Shards != 3 || sharded.Replication != 2 {
		t.Fatalf("result reports %d shards / %d replicas", sharded.Shards, sharded.Replication)
	}
	if sharded.KilledShard == "" {
		t.Fatal("failover killed no shard")
	}
	// Zero failed fetches: every phase deployed the whole fleet (a
	// failed fetch fails the deploy, which fails Run outright).
	for _, p := range sharded.Phases {
		if p.Deploys != 8 {
			t.Fatalf("phase %s deployed %d of 8 nodes", p.Name, p.Deploys)
		}
	}
	// The dead shard's traffic was re-routed to replicas.
	if hs.Cluster().Stats().Failovers == 0 {
		t.Error("no failovers recorded despite a dead shard")
	}

	// Per-node WAN byte parity with the single-registry failover run:
	// replicas serve the identical compressed bytes, so what each node
	// pulls is independent of the tier behind the store.
	single, hn := run(0, 11)
	if hn.Cluster() != nil {
		t.Fatal("unsharded harness built a tier")
	}
	for i := 0; i < 8; i++ {
		id := NodeID(i)
		got := hs.Topology().Node(id).WAN.Stats().Bytes
		want := hn.Topology().Node(id).WAN.Stats().Bytes
		if got != want {
			t.Errorf("node %s pulled %d WAN bytes sharded, %d single-registry", id, got, want)
		}
	}
	if sharded.LANBytes != single.LANBytes {
		t.Errorf("LAN bytes %d sharded vs %d single-registry", sharded.LANBytes, single.LANBytes)
	}

	// Reproducibility holds for sharded runs too.
	again, _ := run(3, 11)
	j1, err := sharded.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := again.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("same (scenario, seed) produced different sharded results:\n--- run 1\n%s\n--- run 2\n%s", j1, j2)
	}
}

// TestShardedOptionsValidation: a degenerate single-shard tier is
// allowed (replication clamps to 1) and bad shard counts fail fast.
func TestShardedSingleShard(t *testing.T) {
	h, err := New(testWorkload(t), Options{Nodes: 2, Seed: 7, Shards: 1})
	if err != nil {
		t.Fatalf("New(1 shard): %v", err)
	}
	if h.Cluster().Replication() != 1 {
		t.Fatalf("single-shard replication = %d, want 1", h.Cluster().Replication())
	}
	if _, err := h.Run(FlashCrowd); err != nil {
		t.Fatalf("Run over single-shard tier: %v", err)
	}
}

// TestStragglerScenario: the straggler scenario slows the busiest shard
// 10x without killing anything. Rank-order reads must pay for it — the
// slow phase's registry-side serve time balloons — while balanced reads
// route around it and keep the slow phase close to steady. Either way
// every deploy completes and the run stays bit-reproducible.
func TestStragglerScenario(t *testing.T) {
	run := func(balance, hedge bool) (*Result, *Harness) {
		t.Helper()
		// Peers stay off so every read lands on the shard tier — the
		// contrast under test is read routing, not peer offload.
		h, err := New(testWorkload(t), Options{
			Nodes: 8, Seed: 11, Shards: 4,
			ReadBalance: balance, ReadHedge: hedge,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := h.Run(Straggler)
		if err != nil {
			t.Fatalf("Run(straggler): %v", err)
		}
		return res, h
	}
	// Registry-side serve time of the slow phase, per variant.
	slowServe := func(h *Harness, res *Result) int64 {
		t.Helper()
		if len(res.Phases) != 3 || res.Phases[1].Name != "slow" {
			t.Fatalf("phases = %+v", res.Phases)
		}
		return res.Phases[1].ShardWAN.Elapsed.Nanoseconds()
	}

	rank, hRank := run(false, false)
	if rank.SlowShard == "" {
		t.Fatal("straggler slowed no shard")
	}
	for _, p := range rank.Phases {
		if p.Deploys != 8 {
			t.Fatalf("phase %s deployed %d of 8 nodes", p.Name, p.Deploys)
		}
	}
	// No failures: a straggler is slow, not dead.
	if got := hRank.Cluster().Stats().Failovers; got != 0 {
		t.Fatalf("straggler run recorded %d failovers, want 0", got)
	}

	bal, hBal := run(true, true)
	rankSlow, balSlow := slowServe(hRank, rank), slowServe(hBal, bal)
	if balSlow*2 >= rankSlow {
		t.Errorf("balanced slow-phase serve time %d ns, want well under rank-order %d ns", balSlow, rankSlow)
	}
	// Client bytes are unaffected by read policy: replicas serve
	// identical compressed bytes.
	if rank.WANBytes != bal.WANBytes {
		t.Errorf("client WAN bytes %d rank-order vs %d balanced", rank.WANBytes, bal.WANBytes)
	}

	// Reproducibility.
	again, _ := run(true, true)
	j1, err := bal.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := again.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("same (scenario, seed) produced different straggler results:\n--- run 1\n%s\n--- run 2\n%s", j1, j2)
	}

	// Without a tier the scenario refuses to run.
	h, err := New(testWorkload(t), Options{Nodes: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(Straggler); !errors.Is(err, ErrBadFleet) {
		t.Fatalf("straggler without shards err = %v", err)
	}
}
