// Package tarstream serializes vfs trees to deterministic tar archives and
// back, including the Docker/OCI whiteout conventions that layered images
// use to express deletions. Docker stores every layer as a compressed
// tarball in the registry (§II-B of the Gear paper); this package is the
// wire format shared by the Docker-baseline registry, the Gear converter
// (which unpacks layers bottom-up), and the Gear index's single-layer
// image packaging.
package tarstream

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"strings"
	"time"

	"github.com/gear-image/gear/internal/vfs"
)

// Whiteout naming follows the OCI image layer specification, which is what
// Overlay2-backed Docker layers use on the wire.
const (
	// WhiteoutPrefix marks a deletion of the suffixed name in lower layers.
	WhiteoutPrefix = ".wh."
	// OpaqueMarker inside a directory hides the directory's lower-layer
	// contents entirely.
	OpaqueMarker = ".wh..wh..opq"
)

// ErrCorrupt reports a malformed archive.
var ErrCorrupt = errors.New("corrupt tar stream")

// epoch is the fixed modification time stamped on all entries so that
// identical trees always produce byte-identical archives (and therefore
// identical layer digests, which layer-level dedup depends on).
var epoch = time.Unix(0, 0)

// Pack serializes the whole tree as an uncompressed tar archive in
// deterministic order.
func Pack(f *vfs.FS) ([]byte, error) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	err := f.Walk(func(p string, n *vfs.Node) error {
		return writeEntry(tw, p, n, f)
	})
	if err != nil {
		return nil, fmt.Errorf("tarstream: pack: %w", err)
	}
	if err := tw.Close(); err != nil {
		return nil, fmt.Errorf("tarstream: pack close: %w", err)
	}
	return buf.Bytes(), nil
}

func writeEntry(tw *tar.Writer, p string, n *vfs.Node, f *vfs.FS) error {
	name := strings.TrimPrefix(p, "/")
	hdr := &tar.Header{
		Name:    name,
		Mode:    int64(n.Mode().Perm()),
		ModTime: epoch,
	}
	switch n.Type() {
	case vfs.TypeDir:
		hdr.Typeflag = tar.TypeDir
		hdr.Name += "/"
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		if n.Opaque {
			opq := &tar.Header{
				Name:     name + "/" + OpaqueMarker,
				Mode:     0,
				ModTime:  epoch,
				Typeflag: tar.TypeReg,
			}
			if err := tw.WriteHeader(opq); err != nil {
				return err
			}
		}
		return nil
	case vfs.TypeSymlink:
		hdr.Typeflag = tar.TypeSymlink
		hdr.Linkname = n.Target()
		return tw.WriteHeader(hdr)
	case vfs.TypeRegular:
		hdr.Typeflag = tar.TypeReg
		data := n.Content().Data()
		hdr.Size = int64(len(data))
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	default:
		return fmt.Errorf("%w: unsupported node type %v at %s", ErrCorrupt, n.Type(), p)
	}
}

// PackGz serializes the tree as a gzip-compressed tar archive, the format
// Docker registries store layers in.
func PackGz(f *vfs.FS) ([]byte, error) {
	raw, err := Pack(f)
	if err != nil {
		return nil, err
	}
	return Gzip(raw)
}

// Gzip compresses data with deterministic gzip framing.
func Gzip(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("tarstream: gzip: %w", err)
	}
	if _, err := zw.Write(data); err != nil {
		return nil, fmt.Errorf("tarstream: gzip write: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("tarstream: gzip close: %w", err)
	}
	return buf.Bytes(), nil
}

// Gunzip decompresses gzip-framed data.
func Gunzip(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("tarstream: gunzip: %w", err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("tarstream: gunzip read: %w", err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("tarstream: gunzip close: %w", err)
	}
	return out, nil
}

// Unpack parses a tar archive into a fresh tree. Whiteout entries are
// preserved literally (as empty regular files named ".wh.*"); use
// ApplyLayer to interpret them against a base tree.
func Unpack(data []byte) (*vfs.FS, error) {
	f := vfs.New()
	tr := tar.NewReader(bytes.NewReader(data))
	for {
		hdr, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return f, nil
		}
		if err != nil {
			return nil, fmt.Errorf("tarstream: unpack: %w: %w", ErrCorrupt, err)
		}
		p := vfs.Clean(hdr.Name)
		if p == "/" {
			continue
		}
		if err := f.MkdirAll(path.Dir(p), 0o755); err != nil {
			return nil, fmt.Errorf("tarstream: unpack %s: %w", p, err)
		}
		mode := fs.FileMode(hdr.Mode).Perm()
		switch hdr.Typeflag {
		case tar.TypeDir:
			if f.Exists(p) {
				continue
			}
			if err := f.Mkdir(p, mode); err != nil {
				return nil, fmt.Errorf("tarstream: unpack %s: %w", p, err)
			}
		case tar.TypeReg:
			content, err := io.ReadAll(tr)
			if err != nil {
				return nil, fmt.Errorf("tarstream: unpack %s: %w: %w", p, ErrCorrupt, err)
			}
			if err := f.WriteFile(p, content, mode); err != nil {
				return nil, fmt.Errorf("tarstream: unpack %s: %w", p, err)
			}
		case tar.TypeSymlink:
			if err := f.Symlink(hdr.Linkname, p); err != nil {
				return nil, fmt.Errorf("tarstream: unpack %s: %w", p, err)
			}
		default:
			return nil, fmt.Errorf("%w: unsupported tar entry type %q at %s",
				ErrCorrupt, hdr.Typeflag, p)
		}
	}
}

// UnpackGz is Unpack over gzip-compressed data.
func UnpackGz(data []byte) (*vfs.FS, error) {
	raw, err := Gunzip(data)
	if err != nil {
		return nil, err
	}
	return Unpack(raw)
}

// IsWhiteout reports whether base name marks a lower-layer deletion, and
// returns the hidden name. The opaque marker is not a whiteout.
func IsWhiteout(name string) (hidden string, ok bool) {
	if name == OpaqueMarker {
		return "", false
	}
	if strings.HasPrefix(name, WhiteoutPrefix) {
		return strings.TrimPrefix(name, WhiteoutPrefix), true
	}
	return "", false
}

// ApplyLayer merges a layer diff (as produced by Unpack, with literal
// whiteout entries) into base, implementing Overlay2's union semantics:
// whiteouts delete lower entries, the opaque marker clears a directory,
// and every other entry replaces or adds to base.
//
// Opaque directories are cleared in a first pass — before any sibling
// entries are applied — because tar walk order is lexicographic and the
// ".wh..wh..opq" marker can otherwise sort after entries it must not
// erase (e.g. ".bashrc").
func ApplyLayer(base *vfs.FS, layer *vfs.FS) error {
	// Pass 1: opaque directory clears (literal markers or Opaque flags).
	err := layer.Walk(func(p string, n *vfs.Node) error {
		var dir string
		switch {
		case path.Base(p) == OpaqueMarker:
			dir = vfs.Clean(path.Dir(p))
		case n.Type() == vfs.TypeDir && n.Opaque:
			dir = p
		default:
			return nil
		}
		if err := base.RemoveAll(dir); err != nil {
			return err
		}
		return base.MkdirAll(dir, 0o755)
	})
	if err != nil {
		return fmt.Errorf("tarstream: apply layer opaque: %w", err)
	}

	// Pass 2: whiteouts, additions, and replacements.
	err = layer.Walk(func(p string, n *vfs.Node) error {
		dir, name := path.Split(p)
		dir = vfs.Clean(dir)

		if name == OpaqueMarker {
			return nil // handled in pass 1
		}
		if hidden, ok := IsWhiteout(name); ok {
			target := path.Join(dir, hidden)
			return base.RemoveAll(target)
		}

		switch n.Type() {
		case vfs.TypeDir:
			if existing, err := base.Stat(p); err == nil && !existing.IsDir() {
				if err := base.Remove(p); err != nil {
					return err
				}
			}
			return base.MkdirAll(p, n.Mode())
		case vfs.TypeRegular:
			if existing, err := base.Stat(p); err == nil && existing.IsDir() {
				if err := base.RemoveAll(p); err != nil {
					return err
				}
			}
			return base.WriteFile(p, n.Content().Data(), n.Mode())
		case vfs.TypeSymlink:
			if existing, err := base.Stat(p); err == nil && existing.IsDir() {
				if err := base.RemoveAll(p); err != nil {
					return err
				}
			}
			return base.Symlink(n.Target(), p)
		default:
			return fmt.Errorf("%w: node type %v at %s", ErrCorrupt, n.Type(), p)
		}
	})
	if err != nil {
		return fmt.Errorf("tarstream: apply layer: %w", err)
	}
	return nil
}

// LayerStats summarizes a layer's visible payload: whiteout markers are
// counted separately from real entries.
type LayerStats struct {
	Entries   int   // real files/dirs/symlinks
	Whiteouts int   // deletion markers (including opaque)
	Bytes     int64 // regular-file payload bytes
}

// StatsOf inspects a layer tree.
func StatsOf(layer *vfs.FS) LayerStats {
	var s LayerStats
	_ = layer.Walk(func(p string, n *vfs.Node) error {
		name := path.Base(p)
		if _, ok := IsWhiteout(name); ok || name == OpaqueMarker {
			s.Whiteouts++
			return nil
		}
		s.Entries++
		if n.Type() == vfs.TypeRegular {
			s.Bytes += n.Size()
		}
		return nil
	})
	return s
}

// Diff computes the layer tree that transforms base into next: changed and
// added entries appear literally, deletions appear as whiteout files. The
// result round-trips through ApplyLayer(base, Diff(base, next)) == next.
func Diff(base, next *vfs.FS) (*vfs.FS, error) {
	layer := vfs.New()

	// Additions and modifications.
	err := next.Walk(func(p string, n *vfs.Node) error {
		old, statErr := base.Stat(p)
		if statErr == nil && sameNode(old, n) {
			return nil
		}
		if err := layer.MkdirAll(path.Dir(p), 0o755); err != nil {
			return err
		}
		switch n.Type() {
		case vfs.TypeDir:
			// A dir replacing a non-dir must whiteout the old entry first.
			if statErr == nil && !old.IsDir() {
				if err := writeWhiteout(layer, p); err != nil {
					return err
				}
			}
			return layer.MkdirAll(p, n.Mode())
		case vfs.TypeRegular:
			return layer.WriteFile(p, n.Content().Data(), n.Mode())
		case vfs.TypeSymlink:
			return layer.Symlink(n.Target(), p)
		default:
			return fmt.Errorf("%w: node type %v at %s", ErrCorrupt, n.Type(), p)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("tarstream: diff: %w", err)
	}

	// Deletions.
	err = base.Walk(func(p string, n *vfs.Node) error {
		if next.Exists(p) {
			return nil
		}
		// Skip children of already-whiteouted directories.
		parent := path.Dir(p)
		if parent != "/" && !next.Exists(parent) {
			return nil
		}
		if err := layer.MkdirAll(path.Dir(p), 0o755); err != nil {
			return err
		}
		// A replacement (e.g. file -> dir handled above) may already have
		// an entry; a pure deletion needs a whiteout.
		if n.Type() == vfs.TypeDir {
			// Directory replaced by file/symlink: the new entry already
			// overwrites it under ApplyLayer semantics; only emit a
			// whiteout when nothing replaces it.
			if layerHas(layer, p) {
				return nil
			}
		}
		if layerHas(layer, p) {
			return nil
		}
		return writeWhiteout(layer, p)
	})
	if err != nil {
		return nil, fmt.Errorf("tarstream: diff deletions: %w", err)
	}
	return layer, nil
}

func layerHas(layer *vfs.FS, p string) bool {
	return layer.Exists(p)
}

func writeWhiteout(layer *vfs.FS, p string) error {
	dir, name := path.Split(p)
	wh := path.Join(vfs.Clean(dir), WhiteoutPrefix+name)
	return layer.WriteFile(wh, nil, 0)
}

func sameNode(a, b *vfs.Node) bool {
	if a.Type() != b.Type() || a.Mode() != b.Mode() {
		return false
	}
	switch a.Type() {
	case vfs.TypeDir:
		return true
	case vfs.TypeSymlink:
		return a.Target() == b.Target()
	case vfs.TypeRegular:
		return bytes.Equal(a.Content().Data(), b.Content().Data())
	default:
		return false
	}
}
