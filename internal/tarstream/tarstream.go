// Package tarstream serializes vfs trees to deterministic tar archives and
// back, including the Docker/OCI whiteout conventions that layered images
// use to express deletions. Docker stores every layer as a compressed
// tarball in the registry (§II-B of the Gear paper); this package is the
// wire format shared by the Docker-baseline registry, the Gear converter
// (which unpacks layers bottom-up), and the Gear index's single-layer
// image packaging.
package tarstream

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"strings"
	"sync"
	"time"

	"github.com/gear-image/gear/internal/vfs"
)

// Whiteout naming follows the OCI image layer specification, which is what
// Overlay2-backed Docker layers use on the wire.
const (
	// WhiteoutPrefix marks a deletion of the suffixed name in lower layers.
	WhiteoutPrefix = ".wh."
	// OpaqueMarker inside a directory hides the directory's lower-layer
	// contents entirely.
	OpaqueMarker = ".wh..wh..opq"
)

// ErrCorrupt reports a malformed archive.
var ErrCorrupt = errors.New("corrupt tar stream")

// epoch is the fixed modification time stamped on all entries so that
// identical trees always produce byte-identical archives (and therefore
// identical layer digests, which layer-level dedup depends on).
var epoch = time.Unix(0, 0)

// Buffer and codec pools. A gzip.Writer carries a multi-hundred-KB
// deflate state and a gzip.Reader a 32 KB window plus buffers;
// allocating them per object made every convert/push/fetch pay the
// setup cost again. The pools hand the same states back out, and
// because gzip framing at a fixed level is a pure function of the input
// byte stream, reuse cannot change output bytes.
var (
	gzWriterPool = sync.Pool{New: func() any {
		zw, err := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		if err != nil {
			panic(err) // BestSpeed is always a valid level
		}
		return zw
	}}
	gzReaderPool = sync.Pool{New: func() any { return new(gzip.Reader) }}
	bufPool      = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

// getBuf returns a reset scratch buffer; callers must putBuf it after
// copying the bytes out.
func getBuf() *bytes.Buffer {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

// maxPooledBuf bounds the scratch buffers kept alive by the pool; an
// occasional giant archive should not pin its footprint forever.
const maxPooledBuf = 8 << 20

func putBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBuf {
		bufPool.Put(buf)
	}
}

// packedSizeHint estimates the tar size of a tree: one 512-byte header
// block per entry (two for opaque markers), content rounded up to block
// size, and the two-block end-of-archive trailer.
func packedSizeHint(f *vfs.FS) int {
	size := 1024
	_ = f.Walk(func(_ string, n *vfs.Node) error {
		size += 512
		if n.Type() == vfs.TypeRegular {
			size += (int(n.Size()) + 511) &^ 511
		}
		if n.Type() == vfs.TypeDir && n.Opaque {
			size += 512
		}
		return nil
	})
	return size
}

// Pack serializes the whole tree as an uncompressed tar archive in
// deterministic order.
func Pack(f *vfs.FS) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(packedSizeHint(f))
	if err := packInto(&buf, f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// packInto streams the tree's tar form into w.
func packInto(w io.Writer, f *vfs.FS) error {
	tw := tar.NewWriter(w)
	var p packer
	err := f.Walk(func(path string, n *vfs.Node) error {
		return p.writeEntry(tw, path, n)
	})
	if err != nil {
		return fmt.Errorf("tarstream: pack: %w", err)
	}
	if err := tw.Close(); err != nil {
		return fmt.Errorf("tarstream: pack close: %w", err)
	}
	return nil
}

// packer reuses one header struct across entries; tar.Writer copies the
// fields on WriteHeader, so reuse is safe and saves an allocation per
// entry.
type packer struct {
	hdr tar.Header
}

func (pk *packer) writeEntry(tw *tar.Writer, p string, n *vfs.Node) error {
	name := strings.TrimPrefix(p, "/")
	pk.hdr = tar.Header{
		Name:    name,
		Mode:    int64(n.Mode().Perm()),
		ModTime: epoch,
	}
	switch n.Type() {
	case vfs.TypeDir:
		pk.hdr.Typeflag = tar.TypeDir
		pk.hdr.Name += "/"
		if err := tw.WriteHeader(&pk.hdr); err != nil {
			return err
		}
		if n.Opaque {
			pk.hdr = tar.Header{
				Name:     name + "/" + OpaqueMarker,
				Mode:     0,
				ModTime:  epoch,
				Typeflag: tar.TypeReg,
			}
			if err := tw.WriteHeader(&pk.hdr); err != nil {
				return err
			}
		}
		return nil
	case vfs.TypeSymlink:
		pk.hdr.Typeflag = tar.TypeSymlink
		pk.hdr.Linkname = n.Target()
		return tw.WriteHeader(&pk.hdr)
	case vfs.TypeRegular:
		pk.hdr.Typeflag = tar.TypeReg
		data := n.Content().Data()
		pk.hdr.Size = int64(len(data))
		if err := tw.WriteHeader(&pk.hdr); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	default:
		return fmt.Errorf("%w: unsupported node type %v at %s", ErrCorrupt, n.Type(), p)
	}
}

// PackGz serializes the tree as a gzip-compressed tar archive, the format
// Docker registries store layers in. The tar stream feeds the compressor
// directly — no intermediate uncompressed copy — and the output is
// byte-identical to Gzip(Pack(f)).
func PackGz(f *vfs.FS) ([]byte, error) {
	buf := getBuf()
	defer putBuf(buf)
	zw := gzWriterPool.Get().(*gzip.Writer)
	zw.Reset(buf)
	if err := packInto(zw, f); err != nil {
		gzWriterPool.Put(zw)
		return nil, err
	}
	if err := zw.Close(); err != nil {
		gzWriterPool.Put(zw)
		return nil, fmt.Errorf("tarstream: packgz close: %w", err)
	}
	gzWriterPool.Put(zw)
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// Gzip compresses data with deterministic gzip framing.
func Gzip(data []byte) ([]byte, error) {
	buf := getBuf()
	defer putBuf(buf)
	zw := gzWriterPool.Get().(*gzip.Writer)
	zw.Reset(buf)
	if _, err := zw.Write(data); err != nil {
		gzWriterPool.Put(zw)
		return nil, fmt.Errorf("tarstream: gzip write: %w", err)
	}
	if err := zw.Close(); err != nil {
		gzWriterPool.Put(zw)
		return nil, fmt.Errorf("tarstream: gzip close: %w", err)
	}
	gzWriterPool.Put(zw)
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// gunzipSizeHint reads the ISIZE trailer (uncompressed length mod 2^32)
// as an allocation hint, clamped by the deflate maximum expansion ratio
// (~1032:1) so corrupt trailers cannot force absurd allocations.
func gunzipSizeHint(data []byte) int {
	if len(data) < 8 {
		return 0
	}
	isize := int64(binary.LittleEndian.Uint32(data[len(data)-4:]))
	if limit := int64(len(data))*1032 + 64; isize > limit {
		return 0
	}
	return int(isize)
}

// Gunzip decompresses gzip-framed data.
func Gunzip(data []byte) ([]byte, error) {
	zr := gzReaderPool.Get().(*gzip.Reader)
	if err := zr.Reset(bytes.NewReader(data)); err != nil {
		gzReaderPool.Put(zr)
		return nil, fmt.Errorf("tarstream: gunzip: %w", err)
	}
	out, err := readAllSized(zr, gunzipSizeHint(data))
	if err != nil {
		gzReaderPool.Put(zr)
		return nil, fmt.Errorf("tarstream: gunzip read: %w", err)
	}
	if err := zr.Close(); err != nil {
		gzReaderPool.Put(zr)
		return nil, fmt.Errorf("tarstream: gunzip close: %w", err)
	}
	gzReaderPool.Put(zr)
	return out, nil
}

// readAllSized is io.ReadAll with a capacity hint: when the hint is
// exact (the common case — it comes from the gzip ISIZE trailer), the
// result is a single allocation with no growth copies.
func readAllSized(r io.Reader, hint int) ([]byte, error) {
	if hint < 0 {
		hint = 0
	}
	b := make([]byte, 0, hint+1)
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return b, err
		}
	}
}

// Unpack parses a tar archive into a fresh tree. Whiteout entries are
// preserved literally (as empty regular files named ".wh.*"); use
// ApplyLayer to interpret them against a base tree.
func Unpack(data []byte) (*vfs.FS, error) {
	return unpackFrom(bytes.NewReader(data), len(data))
}

// unpackFrom is the streaming tar parse shared by Unpack and UnpackGz.
// bound caps per-entry content allocation hints — a corrupt header
// claiming more than the stream can possibly hold must not drive the
// allocation; values <= 0 disable hinting entirely.
func unpackFrom(r io.Reader, bound int) (*vfs.FS, error) {
	f := vfs.New()
	tr := tar.NewReader(r)
	for {
		hdr, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return f, nil
		}
		if err != nil {
			return nil, fmt.Errorf("tarstream: unpack: %w: %w", ErrCorrupt, err)
		}
		p := vfs.Clean(hdr.Name)
		if p == "/" {
			continue
		}
		if err := f.MkdirAll(path.Dir(p), 0o755); err != nil {
			return nil, fmt.Errorf("tarstream: unpack %s: %w", p, err)
		}
		mode := fs.FileMode(hdr.Mode).Perm()
		switch hdr.Typeflag {
		case tar.TypeDir:
			if f.Exists(p) {
				continue
			}
			if err := f.Mkdir(p, mode); err != nil {
				return nil, fmt.Errorf("tarstream: unpack %s: %w", p, err)
			}
		case tar.TypeReg:
			// hdr.Size is authoritative for a well-formed archive, so
			// the exact-size read avoids io.ReadAll's growth copies.
			hint := int(hdr.Size)
			if hint < 0 || hint > bound {
				hint = 0
			}
			content, err := readAllSized(tr, hint)
			if err != nil {
				return nil, fmt.Errorf("tarstream: unpack %s: %w: %w", p, ErrCorrupt, err)
			}
			if err := f.WriteFile(p, content, mode); err != nil {
				return nil, fmt.Errorf("tarstream: unpack %s: %w", p, err)
			}
		case tar.TypeSymlink:
			if err := f.Symlink(hdr.Linkname, p); err != nil {
				return nil, fmt.Errorf("tarstream: unpack %s: %w", p, err)
			}
		default:
			return nil, fmt.Errorf("%w: unsupported tar entry type %q at %s",
				ErrCorrupt, hdr.Typeflag, p)
		}
	}
}

// UnpackGz is Unpack over gzip-compressed data. The pooled gzip reader
// feeds the tar parser directly — the uncompressed archive is never
// materialized, so a layer unpack allocates its file contents and
// nothing else.
func UnpackGz(data []byte) (*vfs.FS, error) {
	zr := gzReaderPool.Get().(*gzip.Reader)
	if err := zr.Reset(bytes.NewReader(data)); err != nil {
		gzReaderPool.Put(zr)
		return nil, fmt.Errorf("tarstream: unpackgz: %w", err)
	}
	// Deflate expands at most ~1032:1, so the compressed length bounds
	// any honest entry size the stream can carry.
	bound := len(data)*1032 + 64
	if bound < 0 { // overflow on absurd inputs: disable hinting
		bound = 0
	}
	f, err := unpackFrom(zr, bound)
	if err != nil {
		gzReaderPool.Put(zr)
		return nil, err
	}
	// The tar parser stops at the end-of-archive trailer; drain the rest
	// of the member so Close verifies the gzip CRC exactly as the
	// materializing path did.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		gzReaderPool.Put(zr)
		return nil, fmt.Errorf("tarstream: unpackgz drain: %w: %w", ErrCorrupt, err)
	}
	if err := zr.Close(); err != nil {
		gzReaderPool.Put(zr)
		return nil, fmt.Errorf("tarstream: unpackgz close: %w: %w", ErrCorrupt, err)
	}
	gzReaderPool.Put(zr)
	return f, nil
}

// IsWhiteout reports whether base name marks a lower-layer deletion, and
// returns the hidden name. The opaque marker is not a whiteout.
func IsWhiteout(name string) (hidden string, ok bool) {
	if name == OpaqueMarker {
		return "", false
	}
	if strings.HasPrefix(name, WhiteoutPrefix) {
		return strings.TrimPrefix(name, WhiteoutPrefix), true
	}
	return "", false
}

// ApplyLayer merges a layer diff (as produced by Unpack, with literal
// whiteout entries) into base, implementing Overlay2's union semantics:
// whiteouts delete lower entries, the opaque marker clears a directory,
// and every other entry replaces or adds to base.
//
// Opaque directories are cleared in a first pass — before any sibling
// entries are applied — because tar walk order is lexicographic and the
// ".wh..wh..opq" marker can otherwise sort after entries it must not
// erase (e.g. ".bashrc").
func ApplyLayer(base *vfs.FS, layer *vfs.FS) error {
	// Pass 1: opaque directory clears (literal markers or Opaque flags).
	err := layer.Walk(func(p string, n *vfs.Node) error {
		var dir string
		switch {
		case path.Base(p) == OpaqueMarker:
			dir = vfs.Clean(path.Dir(p))
		case n.Type() == vfs.TypeDir && n.Opaque:
			dir = p
		default:
			return nil
		}
		if err := base.RemoveAll(dir); err != nil {
			return err
		}
		return base.MkdirAll(dir, 0o755)
	})
	if err != nil {
		return fmt.Errorf("tarstream: apply layer opaque: %w", err)
	}

	// Pass 2: whiteouts, additions, and replacements.
	err = layer.Walk(func(p string, n *vfs.Node) error {
		dir, name := path.Split(p)
		dir = vfs.Clean(dir)

		if name == OpaqueMarker {
			return nil // handled in pass 1
		}
		if hidden, ok := IsWhiteout(name); ok {
			target := path.Join(dir, hidden)
			return base.RemoveAll(target)
		}

		switch n.Type() {
		case vfs.TypeDir:
			if existing, err := base.Stat(p); err == nil && !existing.IsDir() {
				if err := base.Remove(p); err != nil {
					return err
				}
			}
			return base.MkdirAll(p, n.Mode())
		case vfs.TypeRegular:
			if existing, err := base.Stat(p); err == nil && existing.IsDir() {
				if err := base.RemoveAll(p); err != nil {
					return err
				}
			}
			return base.WriteFile(p, n.Content().Data(), n.Mode())
		case vfs.TypeSymlink:
			if existing, err := base.Stat(p); err == nil && existing.IsDir() {
				if err := base.RemoveAll(p); err != nil {
					return err
				}
			}
			return base.Symlink(n.Target(), p)
		default:
			return fmt.Errorf("%w: node type %v at %s", ErrCorrupt, n.Type(), p)
		}
	})
	if err != nil {
		return fmt.Errorf("tarstream: apply layer: %w", err)
	}
	return nil
}

// LayerStats summarizes a layer's visible payload: whiteout markers are
// counted separately from real entries.
type LayerStats struct {
	Entries   int   // real files/dirs/symlinks
	Whiteouts int   // deletion markers (including opaque)
	Bytes     int64 // regular-file payload bytes
}

// StatsOf inspects a layer tree.
func StatsOf(layer *vfs.FS) LayerStats {
	var s LayerStats
	_ = layer.Walk(func(p string, n *vfs.Node) error {
		name := path.Base(p)
		if _, ok := IsWhiteout(name); ok || name == OpaqueMarker {
			s.Whiteouts++
			return nil
		}
		s.Entries++
		if n.Type() == vfs.TypeRegular {
			s.Bytes += n.Size()
		}
		return nil
	})
	return s
}

// Diff computes the layer tree that transforms base into next: changed and
// added entries appear literally, deletions appear as whiteout files. The
// result round-trips through ApplyLayer(base, Diff(base, next)) == next.
func Diff(base, next *vfs.FS) (*vfs.FS, error) {
	layer := vfs.New()

	// Additions and modifications.
	err := next.Walk(func(p string, n *vfs.Node) error {
		old, statErr := base.Stat(p)
		if statErr == nil && sameNode(old, n) {
			return nil
		}
		if err := layer.MkdirAll(path.Dir(p), 0o755); err != nil {
			return err
		}
		switch n.Type() {
		case vfs.TypeDir:
			// A dir replacing a non-dir must whiteout the old entry first.
			if statErr == nil && !old.IsDir() {
				if err := writeWhiteout(layer, p); err != nil {
					return err
				}
			}
			return layer.MkdirAll(p, n.Mode())
		case vfs.TypeRegular:
			return layer.WriteFile(p, n.Content().Data(), n.Mode())
		case vfs.TypeSymlink:
			return layer.Symlink(n.Target(), p)
		default:
			return fmt.Errorf("%w: node type %v at %s", ErrCorrupt, n.Type(), p)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("tarstream: diff: %w", err)
	}

	// Deletions.
	err = base.Walk(func(p string, n *vfs.Node) error {
		if next.Exists(p) {
			return nil
		}
		// Skip children of already-whiteouted directories.
		parent := path.Dir(p)
		if parent != "/" && !next.Exists(parent) {
			return nil
		}
		if err := layer.MkdirAll(path.Dir(p), 0o755); err != nil {
			return err
		}
		// A replacement (e.g. file -> dir handled above) may already have
		// an entry; a pure deletion needs a whiteout.
		if n.Type() == vfs.TypeDir {
			// Directory replaced by file/symlink: the new entry already
			// overwrites it under ApplyLayer semantics; only emit a
			// whiteout when nothing replaces it.
			if layerHas(layer, p) {
				return nil
			}
		}
		if layerHas(layer, p) {
			return nil
		}
		return writeWhiteout(layer, p)
	})
	if err != nil {
		return nil, fmt.Errorf("tarstream: diff deletions: %w", err)
	}
	return layer, nil
}

func layerHas(layer *vfs.FS, p string) bool {
	return layer.Exists(p)
}

func writeWhiteout(layer *vfs.FS, p string) error {
	dir, name := path.Split(p)
	wh := path.Join(vfs.Clean(dir), WhiteoutPrefix+name)
	return layer.WriteFile(wh, nil, 0)
}

func sameNode(a, b *vfs.Node) bool {
	if a.Type() != b.Type() || a.Mode() != b.Mode() {
		return false
	}
	switch a.Type() {
	case vfs.TypeDir:
		return true
	case vfs.TypeSymlink:
		return a.Target() == b.Target()
	case vfs.TypeRegular:
		return bytes.Equal(a.Content().Data(), b.Content().Data())
	default:
		return false
	}
}
