package tarstream

import (
	"testing"

	"github.com/gear-image/gear/internal/vfs"
)

// FuzzUnpack: arbitrary bytes must never panic the unpacker, and any
// archive it accepts must re-pack deterministically.
func FuzzUnpack(f *testing.F) {
	tree := vfs.New()
	_ = tree.MkdirAll("/d", 0o755)
	_ = tree.WriteFile("/d/f", []byte("content"), 0o644)
	_ = tree.Symlink("f", "/d/l")
	_ = tree.WriteFile("/d/.wh.gone", nil, 0)
	seed, err := Pack(tree)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("not a tar archive at all, definitely"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fs1, err := Unpack(data)
		if err != nil {
			return
		}
		a, err := Pack(fs1)
		if err != nil {
			t.Fatalf("accepted tree fails to pack: %v", err)
		}
		fs2, err := Unpack(a)
		if err != nil {
			t.Fatalf("our own archive fails to unpack: %v", err)
		}
		b, err := Pack(fs2)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatal("pack/unpack not a fixed point")
		}
	})
}

// FuzzGunzip: arbitrary bytes must never panic the decompressor.
func FuzzGunzip(f *testing.F) {
	z, err := Gzip([]byte("hello gzip"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(z)
	f.Add([]byte{0x1f, 0x8b})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Gunzip(data)
		if err != nil {
			return
		}
		// Accepted payloads round-trip through our compressor.
		z, err := Gzip(out)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Gunzip(z)
		if err != nil || string(back) != string(out) {
			t.Fatalf("round trip: %v", err)
		}
	})
}
