package tarstream

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path"
	"strings"
	"testing"
	"testing/quick"

	"github.com/gear-image/gear/internal/vfs"
)

// buildTree constructs a small fixture tree.
func buildTree(t *testing.T) *vfs.FS {
	t.Helper()
	f := vfs.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.MkdirAll("/etc/app", 0o755))
	must(f.MkdirAll("/usr/bin", 0o755))
	must(f.WriteFile("/etc/app/conf", []byte("key=value\n"), 0o644))
	must(f.WriteFile("/usr/bin/app", bytes.Repeat([]byte{0x7f}, 1024), 0o755))
	must(f.Symlink("app", "/usr/bin/app-latest"))
	return f
}

func treeEqual(a, b *vfs.FS) (string, bool) {
	snap := func(f *vfs.FS) string {
		var sb strings.Builder
		_ = f.Walk(func(p string, n *vfs.Node) error {
			var body string
			if n.Type() == vfs.TypeRegular {
				body = string(n.Content().Data())
			}
			fmt.Fprintf(&sb, "%s %v %o %q %q\n", p, n.Type(), n.Mode(), n.Target(), body)
			return nil
		})
		return sb.String()
	}
	sa, sb := snap(a), snap(b)
	if sa == sb {
		return "", true
	}
	return fmt.Sprintf("--- a\n%s--- b\n%s", sa, sb), false
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := buildTree(t)
	data, err := Pack(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if diff, ok := treeEqual(f, g); !ok {
		t.Errorf("round trip mismatch:\n%s", diff)
	}
}

func TestPackDeterministic(t *testing.T) {
	f := buildTree(t)
	a, err := Pack(f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pack(f.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("identical trees produced different archives")
	}
	ga, err := PackGz(f)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := PackGz(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ga, gb) {
		t.Error("identical trees produced different gzip archives")
	}
}

func TestGzipRoundTrip(t *testing.T) {
	in := bytes.Repeat([]byte("compressible "), 100)
	z, err := Gzip(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) >= len(in) {
		t.Errorf("gzip did not compress: %d >= %d", len(z), len(in))
	}
	out, err := Gunzip(z)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Error("gzip round trip mismatch")
	}
}

func TestGunzipCorrupt(t *testing.T) {
	if _, err := Gunzip([]byte("not gzip")); err == nil {
		t.Error("Gunzip accepted garbage")
	}
}

func TestUnpackGz(t *testing.T) {
	f := buildTree(t)
	data, err := PackGz(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnpackGz(data)
	if err != nil {
		t.Fatal(err)
	}
	if diff, ok := treeEqual(f, g); !ok {
		t.Errorf("gz round trip mismatch:\n%s", diff)
	}
}

func TestUnpackCorrupt(t *testing.T) {
	if _, err := Unpack([]byte("definitely not a tar archive")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestIsWhiteout(t *testing.T) {
	tests := []struct {
		name   string
		hidden string
		ok     bool
	}{
		{".wh.foo", "foo", true},
		{".wh..hidden", ".hidden", true},
		{OpaqueMarker, "", false},
		{"foo", "", false},
		{"wh.foo", "", false},
	}
	for _, tt := range tests {
		hidden, ok := IsWhiteout(tt.name)
		if hidden != tt.hidden || ok != tt.ok {
			t.Errorf("IsWhiteout(%q) = %q,%v; want %q,%v", tt.name, hidden, ok, tt.hidden, tt.ok)
		}
	}
}

func TestApplyLayerWhiteout(t *testing.T) {
	base := vfs.New()
	if err := base.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := base.WriteFile("/d/gone", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := base.WriteFile("/d/kept", []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}

	layer := vfs.New()
	if err := layer.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := layer.WriteFile("/d/.wh.gone", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := layer.WriteFile("/d/new", []byte("z"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := ApplyLayer(base, layer); err != nil {
		t.Fatal(err)
	}
	if base.Exists("/d/gone") {
		t.Error("whiteout did not delete /d/gone")
	}
	for p, want := range map[string]string{"/d/kept": "y", "/d/new": "z"} {
		got, err := base.ReadFile(p)
		if err != nil || string(got) != want {
			t.Errorf("ReadFile(%s) = %q, %v; want %q", p, got, err, want)
		}
	}
	if base.Exists("/d/.wh.gone") {
		t.Error("whiteout marker leaked into base")
	}
}

func TestApplyLayerOpaqueBeforeSiblings(t *testing.T) {
	// Regression: the opaque marker sorts after dot-files like ".bashrc";
	// it must still clear only LOWER content, never this layer's entries.
	base := vfs.New()
	if err := base.MkdirAll("/home", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := base.WriteFile("/home/old", []byte("lower"), 0o644); err != nil {
		t.Fatal(err)
	}

	layer := vfs.New()
	if err := layer.MkdirAll("/home", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := layer.WriteFile("/home/"+OpaqueMarker, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := layer.WriteFile("/home/.bashrc", []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := ApplyLayer(base, layer); err != nil {
		t.Fatal(err)
	}
	if base.Exists("/home/old") {
		t.Error("opaque marker did not clear lower content")
	}
	got, err := base.ReadFile("/home/.bashrc")
	if err != nil || string(got) != "new" {
		t.Errorf("/home/.bashrc = %q, %v; layer entry erased by opaque marker", got, err)
	}
}

func TestApplyLayerOpaqueFlag(t *testing.T) {
	base := vfs.New()
	if err := base.MkdirAll("/opt", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := base.WriteFile("/opt/lower", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	layer := vfs.New()
	if err := layer.MkdirAll("/opt", 0o755); err != nil {
		t.Fatal(err)
	}
	n, err := layer.Stat("/opt")
	if err != nil {
		t.Fatal(err)
	}
	n.Opaque = true
	if err := ApplyLayer(base, layer); err != nil {
		t.Fatal(err)
	}
	if base.Exists("/opt/lower") {
		t.Error("Opaque flag not honored")
	}
}

func TestApplyLayerTypeReplacements(t *testing.T) {
	base := vfs.New()
	if err := base.MkdirAll("/a/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := base.WriteFile("/a/dir/child", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := base.WriteFile("/a/file", []byte("f"), 0o644); err != nil {
		t.Fatal(err)
	}

	layer := vfs.New()
	if err := layer.MkdirAll("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	// dir -> regular file
	if err := layer.WriteFile("/a/dir", []byte("now a file"), 0o644); err != nil {
		t.Fatal(err)
	}
	// file -> dir
	if err := layer.MkdirAll("/a/file", 0o755); err != nil {
		t.Fatal(err)
	}

	if err := ApplyLayer(base, layer); err != nil {
		t.Fatal(err)
	}
	n, err := base.Stat("/a/dir")
	if err != nil || n.Type() != vfs.TypeRegular {
		t.Errorf("/a/dir = %v, %v; want regular", n, err)
	}
	n, err = base.Stat("/a/file")
	if err != nil || !n.IsDir() {
		t.Errorf("/a/file = %v, %v; want dir", n, err)
	}
}

func TestDiffAndApplyBasic(t *testing.T) {
	base := buildTree(t)
	next := base.Clone()
	if err := next.WriteFile("/etc/app/conf", []byte("key=other\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := next.WriteFile("/etc/app/extra", []byte("e"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := next.Remove("/usr/bin/app-latest"); err != nil {
		t.Fatal(err)
	}

	layer, err := Diff(base, next)
	if err != nil {
		t.Fatal(err)
	}
	s := StatsOf(layer)
	if s.Whiteouts != 1 {
		t.Errorf("whiteouts = %d, want 1", s.Whiteouts)
	}

	got := base.Clone()
	if err := ApplyLayer(got, layer); err != nil {
		t.Fatal(err)
	}
	if diff, ok := treeEqual(got, next); !ok {
		t.Errorf("apply(diff) != next:\n%s", diff)
	}
}

func TestDiffEmptyForIdenticalTrees(t *testing.T) {
	base := buildTree(t)
	layer, err := Diff(base, base.Clone())
	if err != nil {
		t.Fatal(err)
	}
	s := StatsOf(layer)
	if s.Bytes != 0 || s.Whiteouts != 0 {
		t.Errorf("diff of identical trees: %+v", s)
	}
}

func TestDiffDeletedSubtreeEmitsSingleWhiteout(t *testing.T) {
	base := vfs.New()
	if err := base.MkdirAll("/big/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := base.WriteFile(fmt.Sprintf("/big/sub/f%d", i), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	next := vfs.New()
	layer, err := Diff(base, next)
	if err != nil {
		t.Fatal(err)
	}
	s := StatsOf(layer)
	if s.Whiteouts != 1 {
		t.Errorf("whiteouts = %d, want 1 (only the subtree root)", s.Whiteouts)
	}
	got := base.Clone()
	if err := ApplyLayer(got, layer); err != nil {
		t.Fatal(err)
	}
	if got.Exists("/big") {
		t.Error("subtree not removed")
	}
}

func TestStatsOf(t *testing.T) {
	layer := vfs.New()
	if err := layer.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := layer.WriteFile("/d/f", make([]byte, 10), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := layer.WriteFile("/d/.wh.x", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := layer.WriteFile("/d/"+OpaqueMarker, nil, 0); err != nil {
		t.Fatal(err)
	}
	s := StatsOf(layer)
	if s.Entries != 2 || s.Whiteouts != 2 || s.Bytes != 10 {
		t.Errorf("stats = %+v", s)
	}
}

// randomMutate applies n random mutations to f.
func randomMutate(f *vfs.FS, rng *rand.Rand, n int) {
	var files, dirs []string
	collect := func() {
		files, dirs = nil, []string{"/"}
		_ = f.Walk(func(p string, node *vfs.Node) error {
			if node.IsDir() {
				dirs = append(dirs, p)
			} else {
				files = append(files, p)
			}
			return nil
		})
	}
	for i := 0; i < n; i++ {
		collect()
		switch rng.Intn(5) {
		case 0: // new file
			d := dirs[rng.Intn(len(dirs))]
			data := make([]byte, rng.Intn(32))
			rng.Read(data)
			_ = f.WriteFile(path.Join(d, fmt.Sprintf("nf%d", rng.Int31())), data, 0o644)
		case 1: // new dir
			d := dirs[rng.Intn(len(dirs))]
			_ = f.Mkdir(path.Join(d, fmt.Sprintf("nd%d", rng.Int31())), 0o755)
		case 2: // modify file
			if len(files) > 0 {
				p := files[rng.Intn(len(files))]
				_ = f.WriteFile(p, []byte(fmt.Sprintf("mod%d", rng.Int31())), 0o644)
			}
		case 3: // delete something
			if len(files) > 0 {
				_ = f.RemoveAll(files[rng.Intn(len(files))])
			} else if len(dirs) > 1 {
				_ = f.RemoveAll(dirs[1+rng.Intn(len(dirs)-1)])
			}
		default: // symlink
			d := dirs[rng.Intn(len(dirs))]
			_ = f.Symlink("/etc", path.Join(d, fmt.Sprintf("ln%d", rng.Int31())))
		}
	}
}

// Property: ApplyLayer(base, Diff(base, next)) reconstructs next exactly,
// for arbitrary mutation sequences, and the layer survives a tar round
// trip unchanged.
func TestDiffApplyRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := vfs.New()
		randomMutate(base, rng, 30)
		next := base.Clone()
		randomMutate(next, rng, 20)

		layer, err := Diff(base, next)
		if err != nil {
			return false
		}
		// Tar round trip of the layer.
		data, err := Pack(layer)
		if err != nil {
			return false
		}
		layer2, err := Unpack(data)
		if err != nil {
			return false
		}
		got := base.Clone()
		if err := ApplyLayer(got, layer2); err != nil {
			return false
		}
		_, ok := treeEqual(got, next)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Pack is deterministic for random trees.
func TestPackDeterministicProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := vfs.New()
		randomMutate(f, rng, 40)
		a, err := Pack(f)
		if err != nil {
			return false
		}
		b, err := Pack(f.Clone())
		if err != nil {
			return false
		}
		return bytes.Equal(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPack(b *testing.B) {
	f := vfs.New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		data := make([]byte, 2048)
		rng.Read(data)
		if err := f.WriteFile(fmt.Sprintf("/f%03d", i), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.SetBytes(200 * 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pack(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyLayer(b *testing.B) {
	base := vfs.New()
	layer := vfs.New()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		data := make([]byte, 512)
		rng.Read(data)
		if err := base.WriteFile(fmt.Sprintf("/f%03d", i), data, 0o644); err != nil {
			b.Fatal(err)
		}
		if i%2 == 0 {
			if err := layer.WriteFile(fmt.Sprintf("/f%03d", i), []byte("new"), 0o644); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := base.Clone()
		if err := ApplyLayer(target, layer); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPackGzMatchesGzipOfPack pins the streaming PackGz path to the
// composed form byte for byte: layer digests depend on the exact gzip
// framing, so the zero-copy path must not change a single bit.
func TestPackGzMatchesGzipOfPack(t *testing.T) {
	f := buildTree(t)
	streamed, err := PackGz(f)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Pack(f)
	if err != nil {
		t.Fatal(err)
	}
	composed, err := Gzip(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, composed) {
		t.Fatalf("PackGz (%d bytes) != Gzip(Pack(...)) (%d bytes)", len(streamed), len(composed))
	}
}

// TestGzipPooledReuseIsolated asserts pooled codec state never leaks
// between calls: interleaved compress/decompress cycles of different
// payloads must round-trip independently.
func TestGzipPooledReuseIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = make([]byte, 100+i*777)
		rng.Read(payloads[i])
	}
	zipped := make([][]byte, len(payloads))
	for i, p := range payloads {
		z, err := Gzip(p)
		if err != nil {
			t.Fatal(err)
		}
		zipped[i] = z
	}
	for i := len(zipped) - 1; i >= 0; i-- {
		got, err := Gunzip(zipped[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("payload %d corrupted after pooled round trip", i)
		}
	}
}

func benchTree(b *testing.B, files, size int) *vfs.FS {
	b.Helper()
	f := vfs.New()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < files; i++ {
		data := make([]byte, size)
		rng.Read(data)
		if err := f.WriteFile(fmt.Sprintf("/f%03d", i), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	return f
}

// BenchmarkPackGz measures the streaming compressed-pack path used by
// every registry push.
func BenchmarkPackGz(b *testing.B) {
	f := benchTree(b, 200, 2048)
	b.ReportAllocs()
	b.SetBytes(200 * 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PackGz(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGzipRoundTrip measures the pooled compress/decompress pair
// used on the wire paths (uploads, downloads, peer transfers).
func BenchmarkGzipRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 256<<10)
	rng.Read(data)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z, err := Gzip(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Gunzip(z); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnpackGz measures the full decode path a puller runs per
// layer: gunzip plus tar extraction into a fresh tree.
func BenchmarkUnpackGz(b *testing.B) {
	f := benchTree(b, 100, 4096)
	z, err := PackGz(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(100 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UnpackGz(z); err != nil {
			b.Fatal(err)
		}
	}
}

// TestUnpackGzStreamingParity guards the pooled streaming decode:
// UnpackGz feeds the gzip reader straight into the tar parser, and the
// tree it builds must re-pack to the exact bytes of the two-step
// Gunzip-then-Unpack path (and of the original archive). Corruption
// anywhere in the member — including the trailing CRC the tar parser
// never reads past — must still be rejected.
func TestUnpackGzStreamingParity(t *testing.T) {
	f := buildTree(t)
	plain, err := Pack(f)
	if err != nil {
		t.Fatal(err)
	}
	z, err := PackGz(f)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := UnpackGz(z)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Gunzip(z)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := Unpack(raw)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Pack(streamed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pack(staged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("streamed and staged decode repack to different bytes")
	}
	if !bytes.Equal(a, plain) {
		t.Error("streamed decode repack differs from the original archive")
	}

	// A flipped CRC byte sits after the end-of-archive trailer the tar
	// parser stops at; the drain must still surface it.
	bad := append([]byte(nil), z...)
	bad[len(bad)-8] ^= 0xff
	if _, err := UnpackGz(bad); err == nil {
		t.Error("UnpackGz accepted a corrupt gzip checksum")
	}
	if _, err := UnpackGz(z[:len(z)/2]); err == nil {
		t.Error("UnpackGz accepted a truncated member")
	}
	if _, err := UnpackGz([]byte("not gzip")); err == nil {
		t.Error("UnpackGz accepted garbage")
	}
}
