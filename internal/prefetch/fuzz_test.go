package prefetch

import (
	"reflect"
	"testing"

	"github.com/gear-image/gear/internal/hashing"
)

// FuzzDecodeProfile: the startup-profile decoder must never panic on
// arbitrary bytes, and everything it accepts must satisfy the profile
// invariants and survive a re-encode/re-decode round trip unchanged —
// what the store relies on when it persists a replayed profile back.
func FuzzDecodeProfile(f *testing.F) {
	valid := &Profile{ImageRef: "gear/nginx:v01", Entries: []Entry{
		{Fingerprint: hashing.FingerprintBytes([]byte("a")), Size: 10},
		{Fingerprint: hashing.FingerprintBytes([]byte("b")), Size: 0},
		{Fingerprint: hashing.Fingerprint("d41d8cd98f00b204e9800998ecf8427e-c2"), Size: 7},
	}}
	if data, err := Encode(valid); err == nil {
		f.Add(data)
		f.Add(data[:len(data)-1])            // truncated
		f.Add(append(data, 0))               // trailing byte
		skew := append([]byte(nil), data...) // version skew
		skew[3] = '9'
		f.Add(skew)
	}
	if data, err := Encode(&Profile{ImageRef: ""}); err == nil {
		f.Add(data)
	}
	f.Add([]byte("GPF1"))
	f.Add([]byte("GPF"))
	f.Add([]byte{})
	f.Add([]byte("GPF1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")) // huge varint count

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted profile fails validation: %v", err)
		}
		re, err := Encode(p)
		if err != nil {
			t.Fatalf("accepted profile does not re-encode: %v", err)
		}
		back, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded profile does not decode: %v", err)
		}
		if !reflect.DeepEqual(back, p) {
			t.Fatal("decode(encode(p)) != p")
		}
	})
}
