package prefetch

import (
	"fmt"
	"sort"
	"sync"

	"github.com/gear-image/gear/internal/telemetry"
)

// ErrNoProfile reports a library lookup for an image that has no
// persisted profile.
var ErrNoProfile = fmt.Errorf("no startup profile")

// Library persists startup profiles keyed by image reference, the way
// the store persists level-2 indexes: profiles survive container and
// daemon churn and are shared by every deploy of the image. Profiles
// are held in their encoded form, so every Get exercises the versioned
// decoder — a corrupt or version-skewed profile is discovered at load
// time and reported, never silently replayed.
//
// Library is safe for concurrent use.
type Library struct {
	mu       sync.Mutex
	profiles map[string][]byte

	// Telemetry gauges mirror the map under mu: profile count and
	// encoded-bytes footprint, so a shared registry sees the library
	// without iterating it.
	tele         *telemetry.Registry
	profileCount *telemetry.Gauge
	profileBytes *telemetry.Gauge
}

// NewLibrary returns an empty Library publishing into a private
// telemetry registry.
func NewLibrary() *Library {
	return NewLibraryWithTelemetry(nil)
}

// NewLibraryWithTelemetry is NewLibrary publishing profiles.* metrics
// into reg (nil creates a private registry).
func NewLibraryWithTelemetry(reg *telemetry.Registry) *Library {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Library{
		profiles:     make(map[string][]byte),
		tele:         reg,
		profileCount: reg.Gauge("profiles.count"),
		profileBytes: reg.Gauge("profiles.bytes"),
	}
}

// Telemetry returns the metrics registry this library publishes into.
func (l *Library) Telemetry() *telemetry.Registry { return l.tele }

// StatsSnapshot returns the unified telemetry snapshot for this library
// — what the /profile/metrics endpoint serves.
func (l *Library) StatsSnapshot() telemetry.Snapshot { return l.tele.Snapshot() }

// Snapshot implements telemetry.Snapshotter.
func (l *Library) Snapshot() telemetry.Snapshot { return l.StatsSnapshot() }

// Put encodes and stores p under p.ImageRef, replacing any previous
// profile for that image.
func (l *Library) Put(p *Profile) error {
	data, err := Encode(p)
	if err != nil {
		return fmt.Errorf("prefetch: put %s: %w", p.ImageRef, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.storeLocked(p.ImageRef, data)
	return nil
}

// PutRaw stores already-encoded bytes under ref without validating
// them. Tests use it to plant corrupt and version-skewed profiles; the
// decoder rejects them at Get time.
func (l *Library) PutRaw(ref string, data []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.storeLocked(ref, append([]byte(nil), data...))
}

// storeLocked installs data under ref and keeps the gauges equal to the
// map's size and byte footprint. Caller holds mu.
func (l *Library) storeLocked(ref string, data []byte) {
	if old, ok := l.profiles[ref]; ok {
		l.profileBytes.Add(-int64(len(old)))
	} else {
		l.profileCount.Add(1)
	}
	l.profiles[ref] = data
	l.profileBytes.Add(int64(len(data)))
}

// Get decodes and returns ref's profile. Absent profiles return
// ErrNoProfile; corrupt or version-skewed ones return the decoder's
// error. Callers treat any error as "deploy without prefetch".
func (l *Library) Get(ref string) (*Profile, error) {
	l.mu.Lock()
	data, ok := l.profiles[ref]
	l.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("prefetch: %s: %w", ref, ErrNoProfile)
	}
	p, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("prefetch: %s: %w", ref, err)
	}
	return p, nil
}

// Delete removes ref's profile, reporting whether one was present.
func (l *Library) Delete(ref string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	old, ok := l.profiles[ref]
	if ok {
		l.profileCount.Add(-1)
		l.profileBytes.Add(-int64(len(old)))
	}
	delete(l.profiles, ref)
	return ok
}

// Len returns the number of persisted profiles.
func (l *Library) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.profiles)
}

// Info summarizes one persisted profile for listings.
type Info struct {
	// Ref is the image reference the profile belongs to.
	Ref string `json:"ref"`
	// Entries is the number of recorded first accesses.
	Entries int `json:"entries"`
	// Bytes is the content volume the profile covers.
	Bytes int64 `json:"bytes"`
}

// List summarizes every persisted profile, sorted by reference.
// Profiles that no longer decode (corrupt plants, version skew) are
// listed with Entries == -1 so operators can find and delete them.
func (l *Library) List() []Info {
	l.mu.Lock()
	refs := make([]string, 0, len(l.profiles))
	for ref := range l.profiles {
		refs = append(refs, ref)
	}
	l.mu.Unlock()
	sort.Strings(refs)
	out := make([]Info, 0, len(refs))
	for _, ref := range refs {
		p, err := l.Get(ref)
		if err != nil {
			out = append(out, Info{Ref: ref, Entries: -1})
			continue
		}
		out = append(out, Info{Ref: ref, Entries: len(p.Entries), Bytes: p.TotalBytes()})
	}
	return out
}
