package prefetch

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/telemetry"
)

func sampleProfile(t *testing.T, n int) *Profile {
	t.Helper()
	p := &Profile{ImageRef: "gear/nginx:v01"}
	for i := 0; i < n; i++ {
		p.Entries = append(p.Entries, Entry{
			Fingerprint: hashing.FingerprintBytes([]byte(fmt.Sprintf("file-%d", i))),
			Size:        int64(100 * (i + 1)),
		})
	}
	return p
}

func TestProfileRoundTrip(t *testing.T) {
	p := sampleProfile(t, 7)
	// Include a collision-fallback id, which cannot encode as raw MD5.
	p.Entries = append(p.Entries, Entry{
		Fingerprint: hashing.Fingerprint("d41d8cd98f00b204e9800998ecf8427e-c2"),
		Size:        42,
	})
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
	if got.TotalBytes() != p.TotalBytes() {
		t.Fatalf("total bytes = %d, want %d", got.TotalBytes(), p.TotalBytes())
	}
}

func TestProfileRoundTripEmpty(t *testing.T) {
	p := &Profile{ImageRef: "gear/empty:v01"}
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ImageRef != p.ImageRef || len(got.Entries) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p := sampleProfile(t, 5)
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation of a valid encoding must be rejected, never
	// panic, and never yield a partially parsed profile.
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", cut, len(data))
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v is not ErrCorrupt", cut, err)
		}
	}

	// Trailing garbage is rejected too.
	if _, err := Decode(append(append([]byte(nil), data...), 0x00)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}

	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	p := sampleProfile(t, 3)
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	skewed := append([]byte(nil), data...)
	skewed[3] = '2' // version byte follows the "GPF" magic
	_, err = Decode(skewed)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: got %v, want ErrVersion", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("version skew misreported as corruption: %v", err)
	}
}

func TestEncodeRejectsDuplicates(t *testing.T) {
	fp := hashing.FingerprintBytes([]byte("dup"))
	p := &Profile{ImageRef: "x:y", Entries: []Entry{
		{Fingerprint: fp, Size: 1},
		{Fingerprint: fp, Size: 2},
	}}
	if _, err := Encode(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate entries: got %v, want ErrCorrupt", err)
	}
}

func TestTruncate(t *testing.T) {
	p := sampleProfile(t, 10)
	half := p.Truncate(0.5)
	if len(half.Entries) != 5 {
		t.Fatalf("half coverage kept %d entries, want 5", len(half.Entries))
	}
	if !reflect.DeepEqual(half.Entries, p.Entries[:5]) {
		t.Fatal("truncation did not keep the head of the access order")
	}
	if n := len(p.Truncate(0).Entries); n != 0 {
		t.Fatalf("zero coverage kept %d entries", n)
	}
	if n := len(p.Truncate(2).Entries); n != 10 {
		t.Fatalf("clamped coverage kept %d entries, want 10", n)
	}
}

func TestRecorderDedupsAndOrders(t *testing.T) {
	r := NewRecorder()
	a := hashing.FingerprintBytes([]byte("a"))
	b := hashing.FingerprintBytes([]byte("b"))
	r.Record(a, 10)
	r.Record(b, 20)
	r.Record(a, 10) // repeat access: ignored
	r.Record(hashing.Fingerprint("not-valid"), 5)
	r.Record(b, -1)
	if r.Len() != 2 {
		t.Fatalf("recorded %d entries, want 2", r.Len())
	}
	p := r.Snapshot("img:v1")
	want := []Entry{{a, 10}, {b, 20}}
	if !reflect.DeepEqual(p.Entries, want) {
		t.Fatalf("snapshot = %+v, want %+v", p.Entries, want)
	}
	// Snapshot is a copy: later records do not mutate it.
	r.Record(hashing.FingerprintBytes([]byte("c")), 30)
	if len(p.Entries) != 2 {
		t.Fatal("snapshot aliases the recorder")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Record(hashing.FingerprintBytes([]byte{byte(i)}), int64(i))
			}
		}()
	}
	wg.Wait()
	if r.Len() != 50 {
		t.Fatalf("recorded %d entries, want 50", r.Len())
	}
}

func TestLibraryRoundTrip(t *testing.T) {
	lib := NewLibrary()
	p := sampleProfile(t, 4)
	if err := lib.Put(p); err != nil {
		t.Fatal(err)
	}
	got, err := lib.Get(p.ImageRef)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("library round trip mismatch: %+v", got)
	}
	infos := lib.List()
	if len(infos) != 1 || infos[0].Entries != 4 || infos[0].Bytes != p.TotalBytes() {
		t.Fatalf("list = %+v", infos)
	}
	if !lib.Delete(p.ImageRef) {
		t.Fatal("delete reported absent")
	}
	if lib.Delete(p.ImageRef) {
		t.Fatal("second delete reported present")
	}
	if _, err := lib.Get(p.ImageRef); !errors.Is(err, ErrNoProfile) {
		t.Fatalf("deleted profile: got %v, want ErrNoProfile", err)
	}
}

func TestLibraryCorruptProfileIsReported(t *testing.T) {
	lib := NewLibrary()
	lib.PutRaw("broken:v1", []byte("GPF1 garbage"))
	if _, err := lib.Get("broken:v1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt profile: got %v, want ErrCorrupt", err)
	}
	infos := lib.List()
	if len(infos) != 1 || infos[0].Entries != -1 {
		t.Fatalf("corrupt profile listing = %+v, want Entries=-1", infos)
	}
}

func TestLibraryHTTP(t *testing.T) {
	lib := NewLibrary()
	p := sampleProfile(t, 6)
	if err := lib.Put(p); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewLibraryHandler(lib))
	defer srv.Close()
	c := NewLibraryClient(srv.URL, nil)

	infos, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Ref != p.ImageRef || infos[0].Entries != 6 ||
		infos[0].Bytes != p.TotalBytes() {
		t.Fatalf("list over HTTP = %+v", infos)
	}

	got, err := c.Dump(p.ImageRef)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("dump over HTTP mismatch:\n got %+v\nwant %+v", got, p)
	}

	if err := c.Delete(p.ImageRef); err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 0 {
		t.Fatal("delete over HTTP did not remove the profile")
	}
	if err := c.Delete(p.ImageRef); err == nil {
		t.Fatal("deleting an absent profile succeeded")
	}
	if _, err := c.Dump(p.ImageRef); err == nil {
		t.Fatal("dumping an absent profile succeeded")
	}

	// Wrong methods are rejected.
	resp, err := http.Get(srv.URL + "/profile/delete/x:y")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET delete: status %d", resp.StatusCode)
	}
}

// TestLibraryMetricsEndpoint: /profile/metrics serves the library's
// telemetry snapshot, whose gauges track the stored profile footprint.
func TestLibraryMetricsEndpoint(t *testing.T) {
	lib := NewLibrary()
	if err := lib.Put(&Profile{
		ImageRef: "gear/nginx:v01",
		Entries:  []Entry{{Fingerprint: hashing.FingerprintBytes([]byte("m")), Size: 64}},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewLibraryHandler(lib))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/profile/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := telemetry.DecodeSnapshot(body)
	if err != nil {
		t.Fatalf("decode /profile/metrics: %v", err)
	}
	if got := snap.Gauge("profiles.count"); got != int64(lib.Len()) {
		t.Errorf("profiles.count = %d, library holds %d", got, lib.Len())
	}
	if snap.Gauge("profiles.bytes") <= 0 {
		t.Error("profiles.bytes gauge not tracking stored footprint")
	}
}
