package prefetch

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/gear-image/gear/internal/clientopt"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/telemetry"
)

// HTTP wire protocol, styled after the peer tracker's handlers
// (newline-framed text bodies, status codes as verdicts):
//
//	GET  /profile/list          -> one "<ref> <entries> <bytes>" line
//	                               per persisted profile
//	GET  /profile/dump/{ref}    -> "<ref> <entries> <bytes>" header line,
//	                               then one "<fingerprint> <size>" line
//	                               per entry in first-access order
//	POST /profile/delete/{ref}  -> "ok"
//
// Image references contain ':' and '/', so {ref} is the remainder of
// the path, not a single segment. Refs with whitespace cannot ride the
// line framing and are rejected at both ends.

// LibraryHandler adapts a Library to HTTP so gearctl (and fleet
// tooling) can inspect and prune a daemon's persisted profiles.
type LibraryHandler struct {
	lib *Library
}

var _ http.Handler = (*LibraryHandler)(nil)

// NewLibraryHandler wraps lib.
func NewLibraryHandler(lib *Library) *LibraryHandler { return &LibraryHandler{lib: lib} }

// ServeHTTP implements http.Handler.
func (h *LibraryHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/profile/list":
		h.serveList(w, r)
	case r.URL.Path == "/profile/metrics":
		telemetry.Handler(h.lib).ServeHTTP(w, r)
	case strings.HasPrefix(r.URL.Path, "/profile/dump/"):
		h.serveDump(w, r, strings.TrimPrefix(r.URL.Path, "/profile/dump/"))
	case strings.HasPrefix(r.URL.Path, "/profile/delete/"):
		h.serveDelete(w, r, strings.TrimPrefix(r.URL.Path, "/profile/delete/"))
	default:
		http.NotFound(w, r)
	}
}

func (h *LibraryHandler) serveList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	for _, info := range h.lib.List() {
		if validateRef(info.Ref) != nil {
			continue // unframeable ref cannot ride the wire
		}
		fmt.Fprintf(w, "%s %d %d\n", info.Ref, info.Entries, info.Bytes)
	}
}

func (h *LibraryHandler) serveDump(w http.ResponseWriter, r *http.Request, ref string) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	if err := validateRef(ref); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p, err := h.lib.Get(ref)
	if err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, ErrNoProfile) {
			// Present but undecodable: the honest verdict is 500, not 404.
			status = http.StatusInternalServerError
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintf(w, "%s %d %d\n", p.ImageRef, len(p.Entries), p.TotalBytes())
	for _, e := range p.Entries {
		fmt.Fprintf(w, "%s %d\n", e.Fingerprint, e.Size)
	}
}

func (h *LibraryHandler) serveDelete(w http.ResponseWriter, r *http.Request, ref string) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	if err := validateRef(ref); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !h.lib.Delete(ref) {
		http.Error(w, fmt.Sprintf("prefetch: %s: %v", ref, ErrNoProfile), http.StatusNotFound)
		return
	}
	fmt.Fprintln(w, "ok")
}

// validateRef rejects image references the line framing cannot carry.
func validateRef(ref string) error {
	if ref == "" {
		return errors.New("prefetch: empty image reference")
	}
	if strings.ContainsAny(ref, " \t\n\r") {
		return fmt.Errorf("prefetch: image reference %q contains whitespace", ref)
	}
	return nil
}

// LibraryClient talks to a remote profile library over HTTP — the
// gearctl profile subcommand's transport.
type LibraryClient struct {
	base string
	http *http.Client
	opts clientopt.Options
}

// NewLibraryClient returns a client for the library served at baseURL.
// If hc is nil, http.DefaultClient is used.
func NewLibraryClient(baseURL string, hc *http.Client) *LibraryClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &LibraryClient{base: strings.TrimSuffix(baseURL, "/"), http: hc}
}

// NewLibraryClientWithOptions is NewLibraryClient configured by the
// shared clientopt.Options: Timeout shapes the transport, and
// Retries/Backoff re-issue requests that fail at the transport layer
// (HTTP error responses are verdicts and are never retried).
func NewLibraryClientWithOptions(baseURL string, o clientopt.Options) *LibraryClient {
	c := NewLibraryClient(baseURL, o.HTTPClient())
	c.opts = o
	return c
}

// do issues one request with the client's retry policy. Only transport
// errors retry; any HTTP response — success or failure — is final.
func (c *LibraryClient) do(issue func() (*http.Response, error)) (*http.Response, error) {
	var lastErr error
	for i := 0; i < c.opts.Attempts(); i++ {
		if i > 0 {
			c.opts.Sleep(i)
		}
		resp, err := issue()
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// List fetches the profile listing.
func (c *LibraryClient) List() ([]Info, error) {
	out, err := c.get("/profile/list")
	if err != nil {
		return nil, err
	}
	var infos []Info
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		info, err := parseListLine(line)
		if err != nil {
			return nil, fmt.Errorf("prefetch client: list: %w", err)
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// Dump fetches ref's full profile (entries in first-access order).
func (c *LibraryClient) Dump(ref string) (*Profile, error) {
	if err := validateRef(ref); err != nil {
		return nil, err
	}
	out, err := c.get("/profile/dump/" + ref)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(out), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return nil, fmt.Errorf("prefetch client: dump %s: empty response", ref)
	}
	header, err := parseListLine(strings.TrimSpace(lines[0]))
	if err != nil {
		return nil, fmt.Errorf("prefetch client: dump %s: %w", ref, err)
	}
	p := &Profile{ImageRef: header.Ref}
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("prefetch client: dump %s: malformed entry %q", ref, line)
		}
		fp := hashing.Fingerprint(fields[0])
		if err := fp.Validate(); err != nil {
			return nil, fmt.Errorf("prefetch client: dump %s: %w", ref, err)
		}
		size, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || size < 0 {
			return nil, fmt.Errorf("prefetch client: dump %s: bad size %q", ref, fields[1])
		}
		p.Entries = append(p.Entries, Entry{Fingerprint: fp, Size: size})
	}
	if len(p.Entries) != header.Entries {
		return nil, fmt.Errorf("prefetch client: dump %s: %d entries, header says %d",
			ref, len(p.Entries), header.Entries)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("prefetch client: dump %s: %w", ref, err)
	}
	return p, nil
}

// Delete removes ref's profile from the remote library.
func (c *LibraryClient) Delete(ref string) error {
	if err := validateRef(ref); err != nil {
		return err
	}
	resp, err := c.do(func() (*http.Response, error) {
		return c.http.Post(c.base+"/profile/delete/"+ref, "text/plain", strings.NewReader(""))
	})
	if err != nil {
		return fmt.Errorf("prefetch client: delete: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("prefetch client: delete: %s: %s", resp.Status, strings.TrimSpace(string(out)))
	}
	return nil
}

func (c *LibraryClient) get(path string) ([]byte, error) {
	resp, err := c.do(func() (*http.Response, error) {
		return c.http.Get(c.base + path)
	})
	if err != nil {
		return nil, fmt.Errorf("prefetch client: %s: %w", path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("prefetch client: %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("prefetch client: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(out)))
	}
	return out, nil
}

// parseListLine decodes one "<ref> <entries> <bytes>" listing line.
func parseListLine(line string) (Info, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return Info{}, fmt.Errorf("malformed listing line %q", line)
	}
	if err := validateRef(fields[0]); err != nil {
		return Info{}, err
	}
	entries, err := strconv.Atoi(fields[1])
	if err != nil {
		return Info{}, fmt.Errorf("listing line %q: bad entry count: %w", line, err)
	}
	bytes, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil || bytes < 0 {
		return Info{}, fmt.Errorf("listing line %q: bad byte count", line)
	}
	return Info{Ref: fields[0], Entries: entries, Bytes: bytes}, nil
}
