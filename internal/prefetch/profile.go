// Package prefetch implements profile-guided startup prefetch for Gear
// deployments. The paper's lazy deployment (§III-D) pulls only the
// files a container touches, but every *first* touch is a blocking
// demand miss over the WAN. Seekable OCI's prioritized lazy loading
// shows that the access order of one run predicts the next: this
// package records the ordered, deduplicated access trace of a deploy
// as a versioned **startup profile**, persists it alongside the
// level-2 index, and lets the next deploy of the same image replay the
// profile through a background prefetcher so files are already in the
// shared level-1 cache when the container asks for them.
//
// The package has three pieces:
//
//	Profile  — the persisted artifact: (fingerprint, size) entries in
//	           first-access order, with a versioned binary codec;
//	Recorder — collects a deploy's first accesses in order;
//	Library  — stores encoded profiles keyed by image reference, with
//	           an HTTP surface (list/dump/delete) styled after the
//	           peer tracker's handlers.
//
// The store-side scheduler that replays profiles under demand priority
// lives in internal/gear/store; this package is policy-free data.
package prefetch

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/gear-image/gear/internal/hashing"
)

// Errors returned by the profile codec.
var (
	// ErrCorrupt reports a profile that fails structural validation:
	// bad magic, truncation, trailing bytes, invalid fingerprints, or
	// duplicated entries. Callers fall back to no-prefetch.
	ErrCorrupt = errors.New("corrupt startup profile")
	// ErrVersion reports a profile written by a different codec
	// version. Callers fall back to no-prefetch rather than guess.
	ErrVersion = errors.New("unsupported startup profile version")
)

// Entry is one first-accessed file of a startup profile. Its position
// in Profile.Entries is the first-access sequence number.
type Entry struct {
	// Fingerprint identifies the Gear file (or collision-fallback id).
	Fingerprint hashing.Fingerprint `json:"fingerprint"`
	// Size is the file's content size in bytes, used to budget and to
	// report profile coverage without fetching anything.
	Size int64 `json:"size"`
}

// Profile is the recorded startup access trace of one image: every
// distinct Gear file the deploy touched, in first-access order.
type Profile struct {
	// ImageRef is the image the profile describes ("name:tag").
	ImageRef string `json:"imageRef"`
	// Entries is the deduplicated access order.
	Entries []Entry `json:"entries"`
}

// TotalBytes is the byte volume the profile covers.
func (p *Profile) TotalBytes() int64 {
	var n int64
	for _, e := range p.Entries {
		n += e.Size
	}
	return n
}

// Truncate returns a copy of the profile keeping only the first frac
// (0..1) of its entries — the head of the access order, which is what
// a partially recorded run would have captured. Used by the coverage
// sweep of the extprefetch experiment.
func (p *Profile) Truncate(frac float64) *Profile {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(float64(len(p.Entries)) * frac)
	out := &Profile{ImageRef: p.ImageRef, Entries: make([]Entry, n)}
	copy(out.Entries, p.Entries[:n])
	return out
}

// Validate checks the profile's invariants: valid, deduplicated
// fingerprints and non-negative sizes.
func (p *Profile) Validate() error {
	seen := make(map[hashing.Fingerprint]bool, len(p.Entries))
	for i, e := range p.Entries {
		if err := e.Fingerprint.Validate(); err != nil {
			return fmt.Errorf("prefetch: entry %d: %w", i, err)
		}
		if e.Size < 0 {
			return fmt.Errorf("prefetch: entry %d: negative size %d: %w", i, e.Size, ErrCorrupt)
		}
		if seen[e.Fingerprint] {
			return fmt.Errorf("prefetch: entry %d: duplicate fingerprint %s: %w", i, e.Fingerprint, ErrCorrupt)
		}
		seen[e.Fingerprint] = true
	}
	return nil
}

// Versioned binary codec. Profiles ride next to the level-2 index and
// are pure overhead on top of it, so they use the index codec's compact
// conventions: raw 16-byte MD5 fingerprints and varints.
//
// Layout:
//
//	magic "GPF" + version byte '1'
//	string imageRef
//	uvarint nentries
//	nentries × (fingerprint, uvarint size)
//	fingerprint: byte tag 0 + 16 raw bytes (plain MD5), or
//	             byte tag 1 + string     (collision-fallback IDs)
//	string: uvarint len + bytes
var (
	profileMagic   = []byte("GPF")
	profileVersion = byte('1')
)

// Encode renders the profile in the versioned binary form.
func Encode(p *Profile) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(profileMagic)
	buf.WriteByte(profileVersion)
	writeString(&buf, p.ImageRef)
	writeUvarint(&buf, uint64(len(p.Entries)))
	for _, e := range p.Entries {
		if err := writeFingerprint(&buf, e.Fingerprint); err != nil {
			return nil, err
		}
		writeUvarint(&buf, uint64(e.Size))
	}
	return buf.Bytes(), nil
}

// Decode parses and validates an encoded profile. A wrong-version
// profile returns ErrVersion; anything structurally wrong returns
// ErrCorrupt. Both mean "deploy without prefetch".
func Decode(data []byte) (*Profile, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, len(profileMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, profileMagic) {
		return nil, fmt.Errorf("prefetch: decode: bad magic: %w", ErrCorrupt)
	}
	version, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("prefetch: decode: missing version: %w", ErrCorrupt)
	}
	if version != profileVersion {
		return nil, fmt.Errorf("prefetch: decode: version %q, built for %q: %w",
			version, profileVersion, ErrVersion)
	}
	ref, err := readString(r)
	if err != nil {
		return nil, fmt.Errorf("prefetch: decode ref: %w: %w", ErrCorrupt, err)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("prefetch: decode count: %w: %w", ErrCorrupt, err)
	}
	// Every entry costs at least 2 encoded bytes; reject counts the
	// remaining payload cannot possibly hold before allocating.
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("prefetch: decode: %d entries in %d bytes: %w", n, r.Len(), ErrCorrupt)
	}
	p := &Profile{ImageRef: ref, Entries: make([]Entry, 0, n)}
	for i := uint64(0); i < n; i++ {
		fp, err := readFingerprint(r)
		if err != nil {
			return nil, fmt.Errorf("prefetch: decode entry %d: %w: %w", i, ErrCorrupt, err)
		}
		size, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("prefetch: decode entry %d size: %w: %w", i, ErrCorrupt, err)
		}
		p.Entries = append(p.Entries, Entry{Fingerprint: fp, Size: int64(size)})
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("prefetch: decode: %d trailing bytes: %w", r.Len(), ErrCorrupt)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func writeString(buf *bytes.Buffer, s string) {
	writeUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func readString(r *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > uint64(r.Len()) {
		return "", fmt.Errorf("string length %d exceeds %d remaining bytes", n, r.Len())
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeFingerprint(buf *bytes.Buffer, fp hashing.Fingerprint) error {
	if len(fp) == 32 {
		raw, err := hex.DecodeString(string(fp))
		if err == nil && len(raw) == 16 {
			buf.WriteByte(0)
			buf.Write(raw)
			return nil
		}
	}
	if err := fp.Validate(); err != nil {
		return err
	}
	buf.WriteByte(1)
	writeString(buf, string(fp))
	return nil
}

func readFingerprint(r *bytes.Reader) (hashing.Fingerprint, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return "", err
	}
	switch tag {
	case 0:
		raw := make([]byte, 16)
		if _, err := io.ReadFull(r, raw); err != nil {
			return "", err
		}
		return hashing.Fingerprint(hex.EncodeToString(raw)), nil
	case 1:
		s, err := readString(r)
		if err != nil {
			return "", err
		}
		fp := hashing.Fingerprint(s)
		if err := fp.Validate(); err != nil {
			return "", err
		}
		return fp, nil
	default:
		return "", fmt.Errorf("unknown fingerprint tag %d", tag)
	}
}

// Recorder collects one image's access trace: the first access of each
// distinct fingerprint, in order. It is safe for concurrent use — the
// store's resolver calls it from every faulting read.
type Recorder struct {
	mu      sync.Mutex
	seen    map[hashing.Fingerprint]bool
	entries []Entry
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{seen: make(map[hashing.Fingerprint]bool)}
}

// Record notes an access. Repeat accesses of the same fingerprint and
// invalid fingerprints are ignored.
func (r *Recorder) Record(fp hashing.Fingerprint, size int64) {
	if !fp.Valid() || size < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[fp] {
		return
	}
	r.seen[fp] = true
	r.entries = append(r.entries, Entry{Fingerprint: fp, Size: size})
}

// Len returns the number of distinct fingerprints recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Snapshot returns the trace recorded so far as a Profile for ref.
func (r *Recorder) Snapshot(ref string) *Profile {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := &Profile{ImageRef: ref, Entries: make([]Entry, len(r.entries))}
	copy(p.Entries, r.entries)
	return p
}
