// Package imagefmt models the Docker image format described in §II of the
// Gear paper: a read-only template composed of stacked layers, each stored
// as a gzip-compressed tarball identified by the SHA256 digest of its
// content, plus a JSON manifest carrying the image configuration and the
// ordered layer digest list.
//
// The Gear converter consumes these images; the Docker-baseline registry
// and client push, pull, and flatten them exactly as the Docker
// distribution path does.
package imagefmt

import (
	"encoding/json"
	"errors"
	"fmt"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/tarstream"
	"github.com/gear-image/gear/internal/vfs"
)

// Errors returned by image operations.
var (
	ErrNoLayers      = errors.New("image has no layers")
	ErrLayerMismatch = errors.New("manifest layer list does not match image layers")
	ErrBadDigest     = errors.New("layer content does not match digest")
)

// Layer is one read-only image layer: a diff over its parents, serialized
// as a gzip-compressed tarball. Digest identifies the compressed bytes
// (what registries dedup on); DiffID identifies the uncompressed tar.
type Layer struct {
	Digest           hashing.Digest `json:"digest"`
	DiffID           hashing.Digest `json:"diffId"`
	Size             int64          `json:"size"`
	UncompressedSize int64          `json:"uncompressedSize"`

	tarball []byte // gzip tar
}

// NewLayerFromDiff serializes a layer diff tree (whiteouts included as
// literal ".wh.*" entries) into a Layer.
func NewLayerFromDiff(diff *vfs.FS) (*Layer, error) {
	raw, err := tarstream.Pack(diff)
	if err != nil {
		return nil, fmt.Errorf("imagefmt: pack layer: %w", err)
	}
	gz, err := tarstream.Gzip(raw)
	if err != nil {
		return nil, fmt.Errorf("imagefmt: compress layer: %w", err)
	}
	return &Layer{
		Digest:           hashing.DigestBytes(gz),
		DiffID:           hashing.DigestBytes(raw),
		Size:             int64(len(gz)),
		UncompressedSize: int64(len(raw)),
		tarball:          gz,
	}, nil
}

// NewLayerFromTarball wraps registry-fetched compressed bytes, verifying
// them against the expected digest.
func NewLayerFromTarball(gz []byte, want hashing.Digest) (*Layer, error) {
	if got := hashing.DigestBytes(gz); got != want {
		return nil, fmt.Errorf("imagefmt: %w: got %s want %s", ErrBadDigest, got, want)
	}
	raw, err := tarstream.Gunzip(gz)
	if err != nil {
		return nil, fmt.Errorf("imagefmt: decompress layer: %w", err)
	}
	return &Layer{
		Digest:           want,
		DiffID:           hashing.DigestBytes(raw),
		Size:             int64(len(gz)),
		UncompressedSize: int64(len(raw)),
		tarball:          gz,
	}, nil
}

// Tarball returns the compressed layer bytes. Callers must not mutate it.
func (l *Layer) Tarball() []byte { return l.tarball }

// Tree decompresses and parses the layer into its diff tree.
func (l *Layer) Tree() (*vfs.FS, error) {
	return tarstream.UnpackGz(l.tarball)
}

// Config is the subset of a Docker image configuration the reproduction
// needs: the paper notes the converter must copy environment variables and
// configuration into the Gear index image so applications run unchanged.
type Config struct {
	Env        []string          `json:"env,omitempty"`
	Entrypoint []string          `json:"entrypoint,omitempty"`
	Cmd        []string          `json:"cmd,omitempty"`
	WorkingDir string            `json:"workingDir,omitempty"`
	Labels     map[string]string `json:"labels,omitempty"`
}

// Manifest is the registry-side description of an image: its reference,
// configuration, and ordered layer digests (bottom first).
type Manifest struct {
	Name   string           `json:"name"`
	Tag    string           `json:"tag"`
	Config Config           `json:"config"`
	Layers []hashing.Digest `json:"layers"`
	// LayerSizes mirrors Layers with the compressed byte size of each, so
	// clients can plan downloads without fetching blobs.
	LayerSizes []int64 `json:"layerSizes"`
}

// Reference returns the canonical "name:tag" reference.
func (m *Manifest) Reference() string { return m.Name + ":" + m.Tag }

// TotalSize returns the compressed size of all layers.
func (m *Manifest) TotalSize() int64 {
	var total int64
	for _, s := range m.LayerSizes {
		total += s
	}
	return total
}

// MarshalJSON-friendly encode/decode helpers.

// EncodeManifest renders the manifest as canonical JSON.
func EncodeManifest(m *Manifest) ([]byte, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("imagefmt: encode manifest: %w", err)
	}
	return data, nil
}

// DecodeManifest parses manifest JSON.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("imagefmt: decode manifest: %w", err)
	}
	return &m, nil
}

// Image is a complete local image: manifest plus layer payloads.
type Image struct {
	Manifest *Manifest
	Layers   []*Layer
}

// Validate checks manifest/layer agreement and digest integrity.
func (img *Image) Validate() error {
	if len(img.Layers) == 0 {
		return fmt.Errorf("imagefmt: %s: %w", img.Manifest.Reference(), ErrNoLayers)
	}
	if len(img.Manifest.Layers) != len(img.Layers) {
		return fmt.Errorf("imagefmt: %s: %w", img.Manifest.Reference(), ErrLayerMismatch)
	}
	for i, l := range img.Layers {
		if img.Manifest.Layers[i] != l.Digest {
			return fmt.Errorf("imagefmt: %s layer %d: %w", img.Manifest.Reference(), i, ErrLayerMismatch)
		}
		if got := hashing.DigestBytes(l.tarball); got != l.Digest {
			return fmt.Errorf("imagefmt: %s layer %d: %w", img.Manifest.Reference(), i, ErrBadDigest)
		}
	}
	return nil
}

// Flatten applies all layers bottom-up and returns the root filesystem the
// image describes, with whiteouts resolved.
func (img *Image) Flatten() (*vfs.FS, error) {
	root := vfs.New()
	for i, l := range img.Layers {
		tree, err := l.Tree()
		if err != nil {
			return nil, fmt.Errorf("imagefmt: flatten %s layer %d: %w",
				img.Manifest.Reference(), i, err)
		}
		if err := tarstream.ApplyLayer(root, tree); err != nil {
			return nil, fmt.Errorf("imagefmt: flatten %s layer %d: %w",
				img.Manifest.Reference(), i, err)
		}
	}
	return root, nil
}

// Builder assembles an image layer by layer.
type Builder struct {
	name   string
	tag    string
	config Config
	layers []*Layer
	// snapshot tracks the cumulative root filesystem so diffs can be
	// computed from successive snapshots.
	snapshot *vfs.FS
}

// NewBuilder starts an image build for name:tag.
func NewBuilder(name, tag string) *Builder {
	return &Builder{name: name, tag: tag, snapshot: vfs.New()}
}

// SetConfig replaces the image configuration.
func (b *Builder) SetConfig(c Config) *Builder {
	b.config = c
	return b
}

// AddDiffLayer appends a pre-computed diff tree as the next layer.
func (b *Builder) AddDiffLayer(diff *vfs.FS) error {
	layer, err := NewLayerFromDiff(diff)
	if err != nil {
		return err
	}
	if err := tarstream.ApplyLayer(b.snapshot, diff); err != nil {
		return fmt.Errorf("imagefmt: track snapshot: %w", err)
	}
	b.layers = append(b.layers, layer)
	return nil
}

// AddSnapshotLayer appends a layer computed as the diff between the
// builder's current cumulative filesystem and next. This mirrors how
// "docker commit" turns a writable layer into a read-only image layer.
func (b *Builder) AddSnapshotLayer(next *vfs.FS) error {
	diff, err := tarstream.Diff(b.snapshot, next)
	if err != nil {
		return fmt.Errorf("imagefmt: snapshot diff: %w", err)
	}
	layer, err := NewLayerFromDiff(diff)
	if err != nil {
		return err
	}
	b.snapshot = next.Clone()
	b.layers = append(b.layers, layer)
	return nil
}

// Build finalizes the image. The builder remains usable (e.g. to stack
// more layers for a derived image).
func (b *Builder) Build() (*Image, error) {
	if len(b.layers) == 0 {
		return nil, fmt.Errorf("imagefmt: build %s:%s: %w", b.name, b.tag, ErrNoLayers)
	}
	m := &Manifest{
		Name:   b.name,
		Tag:    b.tag,
		Config: b.config,
	}
	layers := make([]*Layer, len(b.layers))
	copy(layers, b.layers)
	for _, l := range layers {
		m.Layers = append(m.Layers, l.Digest)
		m.LayerSizes = append(m.LayerSizes, l.Size)
	}
	img := &Image{Manifest: m, Layers: layers}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}

// SingleLayerImage packages one tree as a single-layer image — the shape
// the Gear converter uses for Gear indexes (§III-C: "Gear index is
// organized as a single-layer Docker image so that it is accessible by
// Docker commands").
func SingleLayerImage(name, tag string, tree *vfs.FS, cfg Config) (*Image, error) {
	b := NewBuilder(name, tag)
	b.SetConfig(cfg)
	if err := b.AddDiffLayer(tree); err != nil {
		return nil, err
	}
	return b.Build()
}
