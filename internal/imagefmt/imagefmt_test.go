package imagefmt

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/vfs"
)

// baseTree returns a minimal distro-like root filesystem.
func baseTree(t *testing.T) *vfs.FS {
	t.Helper()
	f := vfs.New()
	for _, d := range []string{"/bin", "/etc", "/lib"} {
		if err := f.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WriteFile("/bin/sh", []byte("#!shell"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/etc/os-release", []byte("NAME=debian"), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

func buildTwoLayerImage(t *testing.T) *Image {
	t.Helper()
	b := NewBuilder("nginx", "1.17")
	b.SetConfig(Config{
		Env:        []string{"PATH=/bin"},
		Entrypoint: []string{"/bin/nginx"},
		Cmd:        []string{"-g", "daemon off;"},
	})
	if err := b.AddDiffLayer(baseTree(t)); err != nil {
		t.Fatal(err)
	}
	app := vfs.New()
	if err := app.MkdirAll("/bin", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := app.WriteFile("/bin/nginx", bytes.Repeat([]byte{1}, 2048), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDiffLayer(app); err != nil {
		t.Fatal(err)
	}
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestBuildAndValidate(t *testing.T) {
	img := buildTwoLayerImage(t)
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := img.Manifest.Reference(); got != "nginx:1.17" {
		t.Errorf("Reference = %q", got)
	}
	if len(img.Layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(img.Layers))
	}
	for i, l := range img.Layers {
		if !l.Digest.Valid() || !l.DiffID.Valid() {
			t.Errorf("layer %d has invalid digests", i)
		}
		if l.Size != int64(len(l.Tarball())) {
			t.Errorf("layer %d size mismatch", i)
		}
		if l.UncompressedSize <= 0 {
			t.Errorf("layer %d uncompressed size = %d", i, l.UncompressedSize)
		}
	}
	if img.Manifest.TotalSize() != img.Layers[0].Size+img.Layers[1].Size {
		t.Error("TotalSize mismatch")
	}
}

func TestBuildEmptyFails(t *testing.T) {
	_, err := NewBuilder("x", "y").Build()
	if !errors.Is(err, ErrNoLayers) {
		t.Errorf("err = %v, want ErrNoLayers", err)
	}
}

func TestFlatten(t *testing.T) {
	img := buildTwoLayerImage(t)
	root, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/bin/sh", "/etc/os-release", "/bin/nginx"} {
		if !root.Exists(p) {
			t.Errorf("flattened root missing %s", p)
		}
	}
	data, err := root.ReadFile("/bin/nginx")
	if err != nil || len(data) != 2048 {
		t.Errorf("nginx binary = %d bytes, %v", len(data), err)
	}
}

func TestFlattenWithWhiteout(t *testing.T) {
	b := NewBuilder("img", "v1")
	if err := b.AddDiffLayer(baseTree(t)); err != nil {
		t.Fatal(err)
	}
	del := vfs.New()
	if err := del.MkdirAll("/etc", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := del.WriteFile("/etc/.wh.os-release", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDiffLayer(del); err != nil {
		t.Fatal(err)
	}
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	root, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if root.Exists("/etc/os-release") {
		t.Error("whiteout not applied during flatten")
	}
}

func TestAddSnapshotLayer(t *testing.T) {
	b := NewBuilder("app", "v2")
	base := baseTree(t)
	if err := b.AddDiffLayer(base); err != nil {
		t.Fatal(err)
	}
	next := base.Clone()
	if err := next.WriteFile("/etc/app.conf", []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := next.Remove("/etc/os-release"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSnapshotLayer(next); err != nil {
		t.Fatal(err)
	}
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	root, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if !root.Exists("/etc/app.conf") || root.Exists("/etc/os-release") {
		t.Error("snapshot layer did not capture changes")
	}
	// The second layer should be small: only the two changes.
	tree, err := img.Layers[1].Tree()
	if err != nil {
		t.Fatal(err)
	}
	s := tree.Stats()
	if s.Files != 2 { // app.conf + whiteout
		t.Errorf("snapshot layer files = %d, want 2", s.Files)
	}
}

func TestIdenticalLayersShareDigest(t *testing.T) {
	// Layer-level dedup (§II-B) depends on identical diffs producing
	// identical digests.
	l1, err := NewLayerFromDiff(baseTree(t))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewLayerFromDiff(baseTree(t))
	if err != nil {
		t.Fatal(err)
	}
	if l1.Digest != l2.Digest || l1.DiffID != l2.DiffID {
		t.Error("identical trees produced different layer digests")
	}
}

func TestNewLayerFromTarball(t *testing.T) {
	l, err := NewLayerFromDiff(baseTree(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewLayerFromTarball(l.Tarball(), l.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if got.DiffID != l.DiffID || got.UncompressedSize != l.UncompressedSize {
		t.Error("tarball round trip lost metadata")
	}
	// Digest mismatch must be rejected.
	wrong := hashing.DigestBytes([]byte("other"))
	if _, err := NewLayerFromTarball(l.Tarball(), wrong); !errors.Is(err, ErrBadDigest) {
		t.Errorf("err = %v, want ErrBadDigest", err)
	}
}

func TestManifestEncodeDecode(t *testing.T) {
	img := buildTwoLayerImage(t)
	data, err := EncodeManifest(img.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reference() != img.Manifest.Reference() {
		t.Errorf("reference = %q", m.Reference())
	}
	if len(m.Layers) != 2 || m.Layers[0] != img.Manifest.Layers[0] {
		t.Error("layers lost in round trip")
	}
	if len(m.Config.Env) != 1 || m.Config.Env[0] != "PATH=/bin" {
		t.Error("config lost in round trip")
	}
	if _, err := DecodeManifest([]byte("{invalid")); err == nil {
		t.Error("DecodeManifest accepted garbage")
	}
}

func TestValidateDetectsTampering(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Image)
		want   error
	}{
		{
			"manifest digest swap",
			func(i *Image) { i.Manifest.Layers[0] = hashing.DigestBytes([]byte("evil")) },
			ErrLayerMismatch,
		},
		{
			"layer list truncated",
			func(i *Image) { i.Layers = i.Layers[:1] },
			ErrLayerMismatch,
		},
		{
			"tarball corrupted",
			func(i *Image) { i.Layers[0].tarball = append([]byte{0}, i.Layers[0].tarball...) },
			ErrBadDigest,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			img := buildTwoLayerImage(t)
			tt.mutate(img)
			if err := img.Validate(); !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestSingleLayerImage(t *testing.T) {
	tree := baseTree(t)
	cfg := Config{Env: []string{"A=1"}, Labels: map[string]string{"gear": "index"}}
	img, err := SingleLayerImage("gear-nginx", "1.17", tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Layers) != 1 {
		t.Fatalf("layers = %d, want 1", len(img.Layers))
	}
	if img.Manifest.Config.Labels["gear"] != "index" {
		t.Error("config not carried")
	}
	root, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if !root.Exists("/bin/sh") {
		t.Error("flattened single-layer image missing content")
	}
}

func TestSharedBaseLayerAcrossImages(t *testing.T) {
	// Figure 1(a): two images sharing the bottom layer have the same
	// bottom digest, enabling layer-level dedup in the registry.
	base := baseTree(t)
	debian, err := SingleLayerImage("debian", "buster-slim", base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("nginx", "1.17")
	if err := b.AddDiffLayer(base.Clone()); err != nil {
		t.Fatal(err)
	}
	app := vfs.New()
	if err := app.WriteFile("/nginx", []byte("bin"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDiffLayer(app); err != nil {
		t.Fatal(err)
	}
	nginx, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if debian.Layers[0].Digest != nginx.Layers[0].Digest {
		t.Error("shared base layer has different digests across images")
	}
}

func TestBuilderReusableForDerivedImages(t *testing.T) {
	b := NewBuilder("base", "v1")
	if err := b.AddDiffLayer(baseTree(t)); err != nil {
		t.Fatal(err)
	}
	v1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	extra := vfs.New()
	if err := extra.WriteFile("/extra", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDiffLayer(extra); err != nil {
		t.Fatal(err)
	}
	v2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(v1.Layers) != 1 {
		t.Errorf("v1 layers = %d, want 1 (Build must not alias builder state)", len(v1.Layers))
	}
	if len(v2.Layers) != 2 {
		t.Errorf("v2 layers = %d, want 2", len(v2.Layers))
	}
}

func TestManifestTotalSizeEmpty(t *testing.T) {
	m := &Manifest{Name: "a", Tag: "b"}
	if m.TotalSize() != 0 {
		t.Error("empty manifest TotalSize != 0")
	}
}

func BenchmarkLayerFromDiff(b *testing.B) {
	f := vfs.New()
	for i := 0; i < 100; i++ {
		p := fmt.Sprintf("/f%03d", i)
		if err := f.WriteFile(p, bytes.Repeat([]byte{byte(i)}, 1024), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewLayerFromDiff(f); err != nil {
			b.Fatal(err)
		}
	}
}
