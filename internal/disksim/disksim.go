// Package disksim models storage-device cost for the conversion-time
// experiment (Fig 6 of the Gear paper). Converting a Docker image walks
// the reconstructed filesystem and reads every file once, so the dominant
// costs are per-file access latency (seeks on the paper's WD60PURX HDD)
// and sequential throughput. The paper's SSD ablation — node's conversion
// dropping from 105 s to 36 s (-65.7%) — falls out of the same model with
// SSD parameters.
package disksim

import (
	"errors"
	"fmt"
	"time"
)

// ErrBadDisk reports an invalid disk configuration.
var ErrBadDisk = errors.New("invalid disk configuration")

// Config describes a storage device.
type Config struct {
	// Name labels the device in reports ("hdd", "ssd").
	Name string
	// AccessLatency is the per-file positioning cost (seek + rotation on
	// spinning media, command overhead on flash).
	AccessLatency time.Duration
	// ReadBytesPerSecond is sustained sequential read throughput.
	ReadBytesPerSecond float64
	// WriteBytesPerSecond is sustained sequential write throughput.
	WriteBytesPerSecond float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.AccessLatency < 0 {
		return fmt.Errorf("disksim: negative access latency: %w", ErrBadDisk)
	}
	if c.ReadBytesPerSecond <= 0 || c.WriteBytesPerSecond <= 0 {
		return fmt.Errorf("disksim: non-positive throughput: %w", ErrBadDisk)
	}
	return nil
}

// HDD approximates the paper's surveillance-class SATA disk (WD60PURX):
// ~9 ms average access, ~150 MB/s sequential.
func HDD() Config {
	return Config{
		Name:                "hdd",
		AccessLatency:       9 * time.Millisecond,
		ReadBytesPerSecond:  150e6,
		WriteBytesPerSecond: 140e6,
	}
}

// SSD approximates a SATA solid-state disk: ~80 µs access, ~520 MB/s read.
func SSD() Config {
	return Config{
		Name:                "ssd",
		AccessLatency:       80 * time.Microsecond,
		ReadBytesPerSecond:  520e6,
		WriteBytesPerSecond: 480e6,
	}
}

// Disk accumulates I/O cost on a device.
type Disk struct {
	cfg Config

	reads      int64
	writes     int64
	readBytes  int64
	writeBytes int64
	elapsed    time.Duration
}

// New returns a Disk for cfg.
func New(cfg Config) (*Disk, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Disk{cfg: cfg}, nil
}

// Config returns the device configuration.
func (d *Disk) Config() Config { return d.cfg }

// ReadCost returns the time to read one object of size bytes.
func (d *Disk) ReadCost(size int64) time.Duration {
	return d.cfg.AccessLatency +
		time.Duration(float64(size)/d.cfg.ReadBytesPerSecond*float64(time.Second))
}

// WriteCost returns the time to write one object of size bytes.
func (d *Disk) WriteCost(size int64) time.Duration {
	return d.cfg.AccessLatency +
		time.Duration(float64(size)/d.cfg.WriteBytesPerSecond*float64(time.Second))
}

// Read records a read of one object and returns its cost.
func (d *Disk) Read(size int64) time.Duration {
	cost := d.ReadCost(size)
	d.reads++
	d.readBytes += size
	d.elapsed += cost
	return cost
}

// Write records a write of one object and returns its cost.
func (d *Disk) Write(size int64) time.Duration {
	cost := d.WriteCost(size)
	d.writes++
	d.writeBytes += size
	d.elapsed += cost
	return cost
}

// Stats is a snapshot of accumulated I/O.
type Stats struct {
	Reads      int64         `json:"reads"`
	Writes     int64         `json:"writes"`
	ReadBytes  int64         `json:"readBytes"`
	WriteBytes int64         `json:"writeBytes"`
	Elapsed    time.Duration `json:"elapsed"`
}

// Stats returns the I/O recorded so far.
func (d *Disk) Stats() Stats {
	return Stats{
		Reads:      d.reads,
		Writes:     d.writes,
		ReadBytes:  d.readBytes,
		WriteBytes: d.writeBytes,
		Elapsed:    d.elapsed,
	}
}

// Reset zeroes the accumulated I/O.
func (d *Disk) Reset() {
	d.reads, d.writes, d.readBytes, d.writeBytes, d.elapsed = 0, 0, 0, 0, 0
}
