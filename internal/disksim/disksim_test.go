package disksim

import (
	"errors"
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"hdd", HDD(), true},
		{"ssd", SSD(), true},
		{"zero read", Config{WriteBytesPerSecond: 1}, false},
		{"zero write", Config{ReadBytesPerSecond: 1}, false},
		{"negative latency", Config{AccessLatency: -1, ReadBytesPerSecond: 1, WriteBytesPerSecond: 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v", err)
			}
			if err != nil && !errors.Is(err, ErrBadDisk) {
				t.Errorf("err = %v, want ErrBadDisk", err)
			}
			_, err = New(tt.cfg)
			if (err == nil) != tt.ok {
				t.Errorf("New = %v", err)
			}
		})
	}
}

func TestCosts(t *testing.T) {
	cfg := Config{
		Name:                "test",
		AccessLatency:       time.Millisecond,
		ReadBytesPerSecond:  1e6,
		WriteBytesPerSecond: 2e6,
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.ReadCost(1e6), time.Second+time.Millisecond; got != want {
		t.Errorf("ReadCost = %v, want %v", got, want)
	}
	if got, want := d.WriteCost(1e6), 500*time.Millisecond+time.Millisecond; got != want {
		t.Errorf("WriteCost = %v, want %v", got, want)
	}
}

func TestAccumulation(t *testing.T) {
	d, err := New(SSD())
	if err != nil {
		t.Fatal(err)
	}
	c1 := d.Read(1000)
	c2 := d.Write(2000)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.ReadBytes != 1000 || s.WriteBytes != 2000 {
		t.Errorf("stats = %+v", s)
	}
	if s.Elapsed != c1+c2 {
		t.Errorf("elapsed = %v, want %v", s.Elapsed, c1+c2)
	}
	d.Reset()
	if s := d.Stats(); s != (Stats{}) {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestSmallFilesAreSeekBound(t *testing.T) {
	// The paper attributes long conversion times to many small files;
	// per-file access latency must dominate for small objects on HDD.
	hdd, err := New(HDD())
	if err != nil {
		t.Fatal(err)
	}
	small := hdd.ReadCost(4 << 10)
	if small < hdd.Config().AccessLatency || small > 2*hdd.Config().AccessLatency {
		t.Errorf("4KB read cost %v should be dominated by %v seek", small, hdd.Config().AccessLatency)
	}
}

func TestSSDFasterThanHDD(t *testing.T) {
	hdd, err := New(HDD())
	if err != nil {
		t.Fatal(err)
	}
	ssd, err := New(SSD())
	if err != nil {
		t.Fatal(err)
	}
	// A workload of 10k small files + 1 GB sequential: SSD should win by
	// well over the paper's 65.7% node-series reduction.
	cost := func(d *Disk) time.Duration {
		var total time.Duration
		for i := 0; i < 10000; i++ {
			total += d.ReadCost(16 << 10)
		}
		total += d.ReadCost(1 << 30)
		return total
	}
	h, s := cost(hdd), cost(ssd)
	if s >= h {
		t.Fatalf("ssd %v not faster than hdd %v", s, h)
	}
	reduction := 1 - float64(s)/float64(h)
	if reduction < 0.6 {
		t.Errorf("ssd reduction = %.2f, want > 0.6 (paper: 0.657)", reduction)
	}
}
