package experiments

import (
	"fmt"
	"io"

	"github.com/gear-image/gear/internal/corpus"
	"github.com/gear-image/gear/internal/hashing"
)

// Fig2Result is the necessary-data redundancy study of §II-D: how much
// of the data needed to launch version N+1 is already present in version
// N's necessary set — i.e. what a local file cache saves when rolling
// out a new version.
type Fig2Result struct {
	// ByCategory maps category -> redundancy ratio in [0,1].
	ByCategory map[corpus.Category]float64 `json:"byCategory"`
	// Average is the unweighted mean of the per-category ratios, matching
	// how the paper reads its 39.9% off the Fig 2 bars.
	Average float64 `json:"average"`
}

// RunFig2 measures consecutive-version necessary-set overlap by content
// fingerprint, per category.
func RunFig2(cfg Config) (*Fig2Result, error) {
	co, err := cfg.newCorpus(nil)
	if err != nil {
		return nil, err
	}
	catShared := make(map[corpus.Category]int64)
	catTotal := make(map[corpus.Category]int64)

	for _, s := range cfg.pickSeries(co) {
		prev := make(map[hashing.Fingerprint]bool)
		for v := 0; v < s.NumVersions; v++ {
			cur, err := necessaryFingerprints(co, s.Name, v)
			if err != nil {
				return nil, err
			}
			if v > 0 {
				for fp, size := range cur {
					catTotal[s.Category] += size
					if prev[fp] {
						catShared[s.Category] += size
					}
				}
			}
			prev = make(map[hashing.Fingerprint]bool, len(cur))
			for fp := range cur {
				prev[fp] = true
			}
		}
	}

	res := &Fig2Result{ByCategory: make(map[corpus.Category]float64)}
	for cat, total := range catTotal {
		if total > 0 {
			res.ByCategory[cat] = float64(catShared[cat]) / float64(total)
		}
	}
	for _, v := range res.ByCategory {
		res.Average += v
	}
	if len(res.ByCategory) > 0 {
		res.Average /= float64(len(res.ByCategory))
	}
	return res, nil
}

// necessaryFingerprints returns fingerprint -> size of a version's
// necessary files.
func necessaryFingerprints(co *corpus.Corpus, series string, version int) (map[hashing.Fingerprint]int64, error) {
	img, err := co.Image(series, version)
	if err != nil {
		return nil, err
	}
	root, err := img.Flatten()
	if err != nil {
		return nil, err
	}
	items, err := co.NecessarySet(series, version)
	if err != nil {
		return nil, err
	}
	out := make(map[hashing.Fingerprint]int64, len(items))
	for _, it := range items {
		data, err := root.ReadFile(it.Path)
		if err != nil {
			return nil, err
		}
		out[hashing.FingerprintBytes(data)] = int64(len(data))
	}
	return out, nil
}

func runFig2(cfg Config, w io.Writer) error {
	res, err := RunFig2(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// paperFig2 holds the paper's reported redundancy ratios for reference.
var paperFig2 = map[corpus.Category]float64{
	corpus.Database: 0.560,
	corpus.Platform: 0.574,
}

// Print renders per-category redundancy next to the paper's anchors.
func (r *Fig2Result) Print(w io.Writer) {
	fmt.Fprintf(w, "%-22s %12s %10s\n", "category", "redundancy", "paper")
	for _, cat := range categoryOrder(r.ByCategory) {
		paper := "-"
		if p, ok := paperFig2[cat]; ok {
			paper = fmt.Sprintf("%.1f%%", p*100)
		}
		fmt.Fprintf(w, "%-22s %11.1f%% %10s\n", cat, r.ByCategory[cat]*100, paper)
	}
	fmt.Fprintf(w, "%-22s %11.1f%% %10s\n", "average", r.Average*100, "39.9%")
}
