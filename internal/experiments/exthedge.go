package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/shardreg"
)

// ExtHedgeCell is one (read policy, straggler condition) cell of the
// tail-latency sweep: the same shuffled single-object read stream
// replayed against a fresh 4-shard/2-replica tier.
type ExtHedgeCell struct {
	// Policy is the tier's read configuration: "primary" (rank-order
	// replica failover, the pre-balancing path), "balanced"
	// (power-of-two-choices replica selection), or "hedged" (balanced
	// plus hedged requests past the adaptive delay).
	Policy string `json:"policy"`
	// Straggler reports whether one shard ran at stragglerFactor× its
	// normal service time during the measured reads.
	Straggler bool `json:"straggler"`
	// P50/P95/P99 summarize the per-read client-observed latency.
	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	P99 time.Duration `json:"p99"`
	// ClientBytes is the wire volume the reads pulled — identical across
	// every cell (replicas serve the same compressed bytes, and neither
	// balancing nor hedging changes what a client downloads).
	ClientBytes int64 `json:"clientBytes"`
	// BalancedReads/HedgesFired/HedgesWon/HedgeWasteBytes are the
	// measured-phase read-path telemetry deltas. HedgeWasteBytes is the
	// hedge's extra registry egress: bytes the cancelled side moved
	// before it lost.
	BalancedReads   int64 `json:"balancedReads,omitempty"`
	HedgesFired     int64 `json:"hedgesFired,omitempty"`
	HedgesWon       int64 `json:"hedgesWon,omitempty"`
	HedgeWasteBytes int64 `json:"hedgeWasteBytes,omitempty"`
	// SlowShardReadShare is the fraction of measured reads the (eventual)
	// straggler shard served — the balancer should push it well under its
	// rank-order share once the shard slows down.
	SlowShardReadShare float64 `json:"slowShardReadShare"`
}

// ExtHedgeResult is the tail-latency-aware replica read experiment:
// {rank-order, balanced, balanced+hedged} × {healthy, one 10× straggler
// shard}, same object stream, fresh tier per cell.
type ExtHedgeResult struct {
	Shards          int    `json:"shards"`
	Replication     int    `json:"replication"`
	Objects         int    `json:"objects"`
	Rounds          int    `json:"rounds"`
	ReadsPerCell    int    `json:"readsPerCell"`
	StragglerFactor int    `json:"stragglerFactor"`
	SlowShard       string `json:"slowShard"`
	// JitterAmp is the deterministic per-node service jitter amplitude
	// every cell runs under (straggling is tail behaviour, so the
	// healthy baseline should not be perfectly smooth either).
	JitterAmp float64        `json:"jitterAmp"`
	Cells     []ExtHedgeCell `json:"cells"`
	// ParityOK: every cell pulled bit-identical client bytes.
	ParityOK bool `json:"parityOK"`
	// DegenerationOK: the "primary" cells showed zero balanced or hedged
	// activity and landed every read on the ring primary — the exact
	// rank-order path.
	DegenerationOK bool `json:"degenerationOK"`
	// P99Gain is the headline: straggler-condition p99 of the rank-order
	// policy over the balanced+hedged policy. BalancedP99Gain is the
	// same ratio for balancing alone.
	P99Gain         float64 `json:"p99Gain"`
	BalancedP99Gain float64 `json:"balancedP99Gain"`
	// WasteShare is the hedged straggler cell's extra egress relative to
	// its client bytes; WasteOK holds it under 5%.
	WasteShare float64 `json:"wasteShare"`
	WasteOK    bool    `json:"wasteOK"`
}

// Tier shape and measurement plan. The tier talks to readers over the
// paper's 20 Mbps edge class; the straggler runs at the fleet
// scenario's 10× service time.
const (
	extHedgeShards    = 4
	extHedgeReplicas  = 2
	extHedgeWANMbps   = 20
	extHedgeLANMbps   = 1000
	extHedgeRounds    = 6
	extHedgeFactor    = 10
	extHedgeJitterAmp = 0.1
)

// extHedgePolicies maps cell names to tier read options.
var extHedgePolicies = []struct {
	name string
	read shardreg.ReadOptions
}{
	{"primary", shardreg.ReadOptions{}},
	{"balanced", shardreg.ReadOptions{Balance: true}},
	{"hedged", shardreg.ReadOptions{Balance: true, Hedge: true}},
}

// extHedgeShuffle deterministically permutes idx in place (xorshift64,
// Fisher-Yates) so every round reads the objects in a fresh but
// replayable order.
func extHedgeShuffle(idx []int, seed uint64) {
	x := seed | 1
	for i := len(idx) - 1; i > 0; i-- {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		j := int(x % uint64(i+1))
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// extHedgePercentile returns the q-quantile of the (sorted-in-place)
// latency samples by nearest-rank.
func extHedgePercentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	i := int(q * float64(len(lats)-1))
	return lats[i]
}

// RunExtHedge replays one deterministic single-object read stream
// against {rank-order, balanced, balanced+hedged} read policies, healthy
// and with one shard at 10× service time. Balancing routes around the
// straggler once its latency is observed; hedging bounds the reads that
// still land on it. Client bytes stay bit-identical in every cell, the
// rank-order cells degenerate exactly to the pre-balancing path, and
// the hedge's extra egress stays a trace of the volume served.
func RunExtHedge(cfg Config) (*ExtHedgeResult, error) {
	if cfg.VersionsPerSeries <= 0 || cfg.VersionsPerSeries > 4 {
		cfg.VersionsPerSeries = 4
	}
	if cfg.SeriesPerCategory <= 0 || cfg.SeriesPerCategory > 2 {
		cfg.SeriesPerCategory = 2
	}
	co, err := cfg.newCorpus(nil)
	if err != nil {
		return nil, err
	}
	series := cfg.pickSeries(co)
	r, err := cfg.buildRig(co, series, false)
	if err != nil {
		return nil, err
	}
	fps := r.gear.Fingerprints()
	if len(fps) == 0 {
		return nil, fmt.Errorf("experiments: exthedge: empty gear pool")
	}

	res := &ExtHedgeResult{
		Shards:          extHedgeShards,
		Replication:     extHedgeReplicas,
		Objects:         len(fps),
		Rounds:          extHedgeRounds,
		ReadsPerCell:    extHedgeRounds * len(fps),
		StragglerFactor: extHedgeFactor,
		JitterAmp:       extHedgeJitterAmp,
		ParityOK:        true,
		DegenerationOK:  true,
	}

	// runCell replays the read stream against a fresh tier.
	runCell := func(read shardreg.ReadOptions, policy string, straggle bool) (ExtHedgeCell, error) {
		cell := ExtHedgeCell{Policy: policy, Straggler: straggle}
		topo, err := netsim.NewTopology(cfg.link(extHedgeWANMbps), cfg.link(extHedgeLANMbps))
		if err != nil {
			return cell, err
		}
		ids := make([]string, extHedgeShards)
		for i := range ids {
			ids[i] = fmt.Sprintf("shard%02d", i)
		}
		read.Seed = uint64(cfg.Seed)
		cluster, err := shardreg.New(shardreg.Options{
			Shards:      ids,
			Replication: extHedgeReplicas,
			Compress:    true,
			Topology:    topo,
			Read:        read,
		})
		if err != nil {
			return cell, err
		}
		if _, err := cluster.Seed(r.gear); err != nil {
			return cell, err
		}
		if err := topo.SetServiceJitter(uint64(cfg.Seed)+1, extHedgeJitterAmp); err != nil {
			return cell, err
		}
		// The straggler is the member carrying the most primary routes —
		// deterministic, so every cell slows the same shard.
		victim := ""
		most := -1
		load := cluster.PrimaryLoad()
		for _, id := range cluster.Shards() {
			if load[id] > most {
				most, victim = load[id], id
			}
		}
		res.SlowShard = victim
		// Warm pass: a healthy read of every object primes the latency
		// EWMAs and the hedge clock, like the fleet's steady phase —
		// stragglers develop at runtime, they don't boot slow.
		for _, fp := range fps {
			if _, _, _, err := cluster.DownloadTimed(fp); err != nil {
				return cell, err
			}
		}
		if straggle {
			if err := topo.SetServiceFactor(victim, extHedgeFactor); err != nil {
				return cell, err
			}
		}
		before := cluster.Stats()

		idx := make([]int, len(fps))
		for i := range idx {
			idx[i] = i
		}
		lats := make([]time.Duration, 0, extHedgeRounds*len(fps))
		for round := 0; round < extHedgeRounds; round++ {
			extHedgeShuffle(idx, uint64(cfg.Seed)^uint64(round+1)*0x9e3779b97f4a7c15)
			for _, i := range idx {
				_, wire, lat, err := cluster.DownloadTimed(fps[i])
				if err != nil {
					return cell, err
				}
				cell.ClientBytes += wire
				lats = append(lats, lat)
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		cell.P50 = extHedgePercentile(lats, 0.50)
		cell.P95 = extHedgePercentile(lats, 0.95)
		cell.P99 = extHedgePercentile(lats, 0.99)

		after := cluster.Stats()
		cell.BalancedReads = after.BalancedReads - before.BalancedReads
		cell.HedgesFired = after.HedgesFired - before.HedgesFired
		cell.HedgesWon = after.HedgesWon - before.HedgesWon
		cell.HedgeWasteBytes = after.HedgeWasteBytes - before.HedgeWasteBytes
		reads := make(map[string]int64, len(after.Shards))
		for _, s := range after.Shards {
			reads[s.ID] = s.Reads
		}
		for _, s := range before.Shards {
			reads[s.ID] -= s.Reads
		}
		if total := after.Reads - before.Reads; total > 0 {
			cell.SlowShardReadShare = float64(reads[victim]) / float64(total)
		}

		// Degeneration: the rank-order cells must show zero read-path
		// routing activity and land every measured read on the ring
		// primary.
		if policy == "primary" {
			if cell.BalancedReads != 0 || cell.HedgesFired != 0 || cell.HedgeWasteBytes != 0 {
				res.DegenerationOK = false
			}
			primaries := make(map[string]int64, extHedgeShards)
			for _, fp := range fps {
				primaries[cluster.Replicas(fp)[0]] += extHedgeRounds
			}
			for id, n := range reads {
				if n != primaries[id] {
					res.DegenerationOK = false
				}
			}
		}
		return cell, nil
	}

	for _, pol := range extHedgePolicies {
		for _, straggle := range []bool{false, true} {
			cell, err := runCell(pol.read, pol.name, straggle)
			if err != nil {
				return nil, err
			}
			if len(res.Cells) > 0 && cell.ClientBytes != res.Cells[0].ClientBytes {
				res.ParityOK = false
			}
			res.Cells = append(res.Cells, cell)
		}
	}

	// Headline ratios: straggler-condition p99, rank-order over balanced
	// and over balanced+hedged; hedge waste relative to client volume.
	cellAt := func(policy string, straggle bool) *ExtHedgeCell {
		for i := range res.Cells {
			if res.Cells[i].Policy == policy && res.Cells[i].Straggler == straggle {
				return &res.Cells[i]
			}
		}
		return nil
	}
	rank, bal, hedge := cellAt("primary", true), cellAt("balanced", true), cellAt("hedged", true)
	if hedge.P99 > 0 {
		res.P99Gain = float64(rank.P99) / float64(hedge.P99)
	}
	if bal.P99 > 0 {
		res.BalancedP99Gain = float64(rank.P99) / float64(bal.P99)
	}
	if hedge.ClientBytes > 0 {
		res.WasteShare = float64(hedge.HedgeWasteBytes) / float64(hedge.ClientBytes)
	}
	res.WasteOK = res.WasteShare < 0.05
	return res, nil
}

func runExtHedge(cfg Config, w io.Writer) error {
	res, err := RunExtHedge(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the policy × straggler latency table.
func (r *ExtHedgeResult) Print(w io.Writer) {
	fmt.Fprintf(w, "replica reads: %d shards, replication %d, %d objects × %d rounds, straggler %s at %dx\n",
		r.Shards, r.Replication, r.Objects, r.Rounds, r.SlowShard, r.StragglerFactor)
	fmt.Fprintf(w, "%-9s %-9s %10s %10s %10s %9s %7s %6s %10s %10s\n",
		"policy", "straggler", "p50", "p95", "p99", "balanced", "hedges", "won", "waste", "slow share")
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(w, "%-9s %-9v %10s %10s %10s %9d %7d %6d %10s %10.3f\n",
			c.Policy, c.Straggler,
			c.P50.Round(time.Millisecond), c.P95.Round(time.Millisecond), c.P99.Round(time.Millisecond),
			c.BalancedReads, c.HedgesFired, c.HedgesWon, mb(c.HedgeWasteBytes), c.SlowShardReadShare)
	}
	fmt.Fprintf(w, "straggler p99: rank-order/balanced %.1fx, rank-order/hedged %.1fx\n",
		r.BalancedP99Gain, r.P99Gain)
	fmt.Fprintf(w, "hedge extra egress: %.2f%% of client bytes (ok=%v); parity %v, rank-order degeneration %v\n",
		r.WasteShare*100, r.WasteOK, r.ParityOK, r.DegenerationOK)
}
