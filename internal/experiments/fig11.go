package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/gear-image/gear/internal/apps"
	"github.com/gear-image/gear/internal/corpus"
	"github.com/gear-image/gear/internal/dockersim"
)

// Fig11Service is one long-running service's normalized throughput.
type Fig11Service struct {
	Name string `json:"name"`
	// DockerOps and GearOps are throughputs (ops/s of virtual time).
	DockerOps float64 `json:"dockerOps"`
	GearOps   float64 `json:"gearOps"`
}

// Normalized returns Gear's rate relative to Docker (paper: ~1.0).
func (s Fig11Service) Normalized() float64 {
	if s.DockerOps == 0 {
		return 0
	}
	return s.GearOps / s.DockerOps
}

// Fig11Short is the short-running lifecycle breakdown, averaged over
// iterations of launch-request-destroy.
type Fig11Short struct {
	Launch  time.Duration `json:"launch"`
	Request time.Duration `json:"request"`
	Destroy time.Duration `json:"destroy"`
}

// Fig11Result reproduces both halves of Fig 11.
type Fig11Result struct {
	Services []Fig11Service `json:"services"`
	// DockerShort/GearShort are httpd's lifecycle costs per system.
	DockerShort Fig11Short `json:"dockerShort"`
	GearShort   Fig11Short `json:"gearShort"`
	// Iterations is the short-running repeat count (paper: 100).
	Iterations int `json:"iterations"`
}

// fig11Services maps the paper's benchmark containers to workload kinds.
var fig11Services = []struct {
	series string
	kv     bool
}{
	{"redis", true},
	{"memcached", true},
	{"nginx", false},
	{"httpd", false},
}

// RunFig11 deploys each service under Docker and Gear and drives the
// memtier-style or ab-style workload against it.
func RunFig11(cfg Config) (*Fig11Result, error) {
	names := make([]string, len(fig11Services))
	for i, svc := range fig11Services {
		names[i] = svc.series
	}
	co, err := corpus.New(corpus.Options{
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
		SeriesFilter: names,
		MaxVersions:  cfg.VersionsPerSeries,
	})
	if err != nil {
		return nil, err
	}
	r, err := cfg.buildRig(co, co.Series(), false)
	if err != nil {
		return nil, err
	}

	res := &Fig11Result{Iterations: 100}
	if cfg.VersionsPerSeries > 0 && cfg.VersionsPerSeries < 3 {
		res.Iterations = 20
	}

	const requests = 5000
	for _, svc := range fig11Services {
		access, err := accessPaths(co, svc.series, 0)
		if err != nil {
			return nil, err
		}
		// Data/content files the service touches in steady state: its
		// launch set (hot files), all local after warm-up.
		run := func(dep *dockersim.Deployment) (apps.Result, error) {
			if svc.kv {
				return apps.RunKV(dep, apps.KVConfig{Requests: requests, DataPaths: access})
			}
			return apps.RunWeb(dep, apps.WebConfig{Requests: requests, ContentPaths: access})
		}

		dd, err := cfg.newDaemon(r, 904)
		if err != nil {
			return nil, err
		}
		dockerDep, err := dd.DeployDocker(svc.series, "v01", access, 0)
		if err != nil {
			return nil, err
		}
		dockerRes, err := run(dockerDep)
		if err != nil {
			return nil, err
		}

		gd, err := cfg.newDaemon(r, 904)
		if err != nil {
			return nil, err
		}
		gearDep, err := gd.DeployGear(gearRef(svc.series), "v01", access, 0)
		if err != nil {
			return nil, err
		}
		gearRes, err := run(gearDep)
		if err != nil {
			return nil, err
		}

		res.Services = append(res.Services, Fig11Service{
			Name:      svc.series,
			DockerOps: dockerRes.Throughput(),
			GearOps:   gearRes.Throughput(),
		})
	}

	// Short-running: launch, one request, destroy, repeated.
	dockerShort, err := runShort(cfg, r, co, dockersim.ModeDocker, res.Iterations)
	if err != nil {
		return nil, err
	}
	gearShort, err := runShort(cfg, r, co, dockersim.ModeGear, res.Iterations)
	if err != nil {
		return nil, err
	}
	res.DockerShort = dockerShort
	res.GearShort = gearShort
	return res, nil
}

// runShort repeats launch-request-destroy for httpd under one system on
// a single persistent daemon (so the image is local after the first
// iteration — the paper measures steady-state lifecycle costs).
func runShort(cfg Config, r *rig, co *corpus.Corpus, mode dockersim.Mode, iterations int) (Fig11Short, error) {
	d, err := cfg.newDaemon(r, 904)
	if err != nil {
		return Fig11Short{}, err
	}
	access, err := accessPaths(co, "httpd", 0)
	if err != nil {
		return Fig11Short{}, err
	}
	var out Fig11Short
	for i := 0; i < iterations; i++ {
		var dep *dockersim.Deployment
		switch mode {
		case dockersim.ModeDocker:
			dep, err = d.DeployDocker("httpd", "v01", access, 0)
		case dockersim.ModeGear:
			dep, err = d.DeployGear(gearRef("httpd"), "v01", access, 0)
		default:
			return Fig11Short{}, fmt.Errorf("experiments: short-run mode %v unsupported", mode)
		}
		if err != nil {
			return Fig11Short{}, err
		}
		out.Launch += dep.Total()
		_, cost, err := dep.Read(access[len(access)-1])
		if err != nil {
			return Fig11Short{}, err
		}
		out.Request += cost
		destroy, err := dep.Destroy()
		if err != nil {
			return Fig11Short{}, err
		}
		out.Destroy += destroy
	}
	n := time.Duration(iterations)
	out.Launch /= n
	out.Request /= n
	out.Destroy /= n
	return out, nil
}

func runFig11(cfg Config, w io.Writer) error {
	res, err := RunFig11(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders normalized service rates and the lifecycle breakdown.
func (r *Fig11Result) Print(w io.Writer) {
	fmt.Fprintf(w, "-- long-running (normalized rate, gear/docker; paper: ~1.0) --\n")
	fmt.Fprintf(w, "%-12s %14s %14s %12s\n", "service", "docker ops/s", "gear ops/s", "normalized")
	for _, s := range r.Services {
		fmt.Fprintf(w, "%-12s %14.0f %14.0f %12.3f\n", s.Name, s.DockerOps, s.GearOps, s.Normalized())
	}
	fmt.Fprintf(w, "-- short-running httpd x%d (avg per iteration) --\n", r.Iterations)
	fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "system", "launch", "request", "destroy")
	fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "docker",
		r.DockerShort.Launch.Round(time.Microsecond),
		r.DockerShort.Request.Round(time.Microsecond),
		r.DockerShort.Destroy.Round(time.Microsecond))
	fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "gear",
		r.GearShort.Launch.Round(time.Microsecond),
		r.GearShort.Request.Round(time.Microsecond),
		r.GearShort.Destroy.Round(time.Microsecond))
	fmt.Fprintf(w, "gear destroy advantage: %.2fx faster (paper: slight advantage)\n",
		safeRatio(r.DockerShort.Destroy, r.GearShort.Destroy))
}

func safeRatio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
