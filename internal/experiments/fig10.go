package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/gear-image/gear/internal/corpus"
)

// Fig10Bandwidths are the rollout study's link speeds, Mbps.
var Fig10Bandwidths = []float64{1000, 100}

// Fig10Point is one deployed version's total time per system.
type Fig10Point struct {
	Version int           `json:"version"`
	Docker  time.Duration `json:"docker"`
	Slacker time.Duration `json:"slacker"`
	Gear    time.Duration `json:"gear"`
}

// Fig10Band is the rollout at one bandwidth.
type Fig10Band struct {
	Mbps   float64       `json:"mbps"`
	Points []Fig10Point  `json:"points"`
	AvgD   time.Duration `json:"avgDocker"`
	AvgS   time.Duration `json:"avgSlacker"`
	AvgG   time.Duration `json:"avgGear"`
}

// Fig10Result is the sequential Tomcat-version rollout: one client
// deploys version after version, keeping its local state (Docker layer
// store, Gear cache) between deployments. Slacker has no cross-version
// sharing, which is the paper's point.
type Fig10Result struct {
	Series string      `json:"series"`
	Bands  []Fig10Band `json:"bands"`
}

// RunFig10 rolls out every tomcat version under each system at each
// bandwidth.
func RunFig10(cfg Config) (*Fig10Result, error) {
	const seriesName = "tomcat"
	co, err := corpus.New(corpus.Options{
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
		SeriesFilter: []string{seriesName},
		MaxVersions:  cfg.VersionsPerSeries,
	})
	if err != nil {
		return nil, err
	}
	series := co.Series()
	r, err := cfg.buildRig(co, series, true)
	if err != nil {
		return nil, err
	}
	s := series[0]
	compute, err := co.TaskCompute(seriesName)
	if err != nil {
		return nil, err
	}

	res := &Fig10Result{Series: seriesName}
	for _, mbps := range Fig10Bandwidths {
		// One persistent daemon per system: local state accumulates
		// across the rollout exactly as on the paper's single client.
		dockerD, err := cfg.newDaemon(r, mbps)
		if err != nil {
			return nil, err
		}
		slackerD, err := cfg.newDaemon(r, mbps)
		if err != nil {
			return nil, err
		}
		gearD, err := cfg.newDaemon(r, mbps)
		if err != nil {
			return nil, err
		}

		band := Fig10Band{Mbps: mbps}
		for v := 0; v < s.NumVersions; v++ {
			access, err := accessPaths(co, seriesName, v)
			if err != nil {
				return nil, err
			}
			tag := s.Tags()[v]
			dd, err := dockerD.DeployDocker(seriesName, tag, access, compute)
			if err != nil {
				return nil, err
			}
			sd, err := slackerD.DeploySlacker(seriesName, tag, access, compute)
			if err != nil {
				return nil, err
			}
			gd, err := gearD.DeployGear(gearRef(seriesName), tag, access, compute)
			if err != nil {
				return nil, err
			}
			band.Points = append(band.Points, Fig10Point{
				Version: v + 1,
				Docker:  dd.Total(),
				Slacker: sd.Total(),
				Gear:    gd.Total(),
			})
			band.AvgD += dd.Total()
			band.AvgS += sd.Total()
			band.AvgG += gd.Total()
		}
		n := time.Duration(len(band.Points))
		band.AvgD /= n
		band.AvgS /= n
		band.AvgG /= n
		res.Bands = append(res.Bands, band)
	}
	return res, nil
}

func runFig10(cfg Config, w io.Writer) error {
	res, err := RunFig10(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the per-version series and averages.
func (r *Fig10Result) Print(w io.Writer) {
	for _, band := range r.Bands {
		fmt.Fprintf(w, "-- %s rollout at %g Mbps --\n", r.Series, band.Mbps)
		fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "version", "docker", "slacker", "gear")
		for _, p := range band.Points {
			fmt.Fprintf(w, "%-8d %12s %12s %12s\n", p.Version,
				p.Docker.Round(time.Millisecond),
				p.Slacker.Round(time.Millisecond),
				p.Gear.Round(time.Millisecond))
		}
		fmt.Fprintf(w, "avg: docker %s, slacker %s, gear %s (paper at 1000 Mbps: 6.08 s / 3.03 s / 3.04 s)\n",
			band.AvgD.Round(time.Millisecond), band.AvgS.Round(time.Millisecond),
			band.AvgG.Round(time.Millisecond))
	}
	if len(r.Bands) == 2 {
		d := float64(r.Bands[1].AvgD) / float64(r.Bands[0].AvgD)
		s := float64(r.Bands[1].AvgS) / float64(r.Bands[0].AvgS)
		g := float64(r.Bands[1].AvgG) / float64(r.Bands[0].AvgG)
		fmt.Fprintf(w, "1000->100 Mbps slowdown: docker %.1fx, slacker %.1fx, gear %.1fx (paper: 2.7x / 2.6x / 1.2x)\n",
			d, s, g)
	}
}
