// Package experiments regenerates every table and figure of the Gear
// paper's evaluation (§II-D and §V) on the synthetic corpus. Each
// experiment has a typed result and a printer that emits the same rows
// or series the paper reports; EXPERIMENTS.md records measured-vs-paper
// for each.
//
// Experiment index (see DESIGN.md §4 for the full mapping):
//
//	inventory — corpus composition (the §V-A workload table)
//	table2 — storage and object count per dedup granularity
//	fig2   — necessary-data redundancy within image series
//	fig6   — image conversion time vs size (HDD/SSD)
//	fig7   — registry storage saving, per category and overall
//	fig8   — bytes transferred per deployment
//	fig9   — deployment time under 904/100/20/5 Mbps
//	fig10  — sequential version rollout: Docker vs Slacker vs Gear
//	fig11  — long-running throughput and short-running lifecycle
//	extload — extension: registry egress under a client fleet
//	extcache — extension: level-1 cache capacity/policy ablation
//	extparallel — extension: concurrent fetch engine worker sweep
//	extpush — extension: concurrent push engine worker sweep
//	extp2p — extension: peer-to-peer distribution fleet/bandwidth sweep
//	extprefetch — extension: profile-guided startup prefetch coverage/bandwidth sweep
//	extfleet — extension: fleet-scale scenario harness (flash crowd, churn, failover, mixed)
//	extshard — extension: sharded registry tier shard-count sweep
//	exthedge — extension: tail-latency-aware replica reads (balanced + hedged)
//	extchunk — extension: chunked lazy loading file/chunk/window sweep
package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/gear-image/gear/internal/corpus"
	"github.com/gear-image/gear/internal/dockersim"
	"github.com/gear-image/gear/internal/gear/convert"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/registry"
	"github.com/gear-image/gear/internal/slacker"
	"github.com/gear-image/gear/internal/telemetry"
)

// ErrUnknownExperiment reports an unrecognized experiment id.
var ErrUnknownExperiment = errors.New("unknown experiment")

// Config scales and seeds a run. The zero value is NOT valid; use
// Default() or Quick().
type Config struct {
	// Seed drives the deterministic corpus.
	Seed int64
	// Scale is the corpus byte scale (1.0 = calibrated, ~1/1000 of the
	// paper's volume).
	Scale float64
	// VersionsPerSeries caps versions per series for deployment-heavy
	// experiments (0 = the series' full version list).
	VersionsPerSeries int
	// SeriesPerCategory caps how many series per category deployment
	// experiments touch (0 = all).
	SeriesPerCategory int
	// ChunkSize is Table II's chunk granularity, scaled with the corpus
	// (the paper's 128 KB against ~380 MB images ≈ 512 B against our
	// ~400 KB images).
	ChunkSize int64
	// SlackerBlockSize is the Fig 10 baseline's paging granularity,
	// scaled like ChunkSize (the paper's 4 KB against ~73 KB average
	// files ≈ 512 B against our ~7 KB files).
	SlackerBlockSize int64
	// Telemetry, if set, is the metrics registry every daemon the run
	// builds publishes into, so a whole sweep lands in one snapshot
	// (cmd/benchreport -metrics). Nil keeps per-daemon private
	// registries.
	Telemetry *telemetry.Registry
}

// Default is the full calibrated configuration used by cmd/benchreport.
func Default() Config {
	return Config{Seed: 20211107, Scale: 1.0, ChunkSize: 512, SlackerBlockSize: 512}
}

// Quick is a reduced configuration for tests and -short benches.
func Quick() Config {
	return Config{
		Seed:              20211107,
		Scale:             0.25,
		VersionsPerSeries: 4,
		SeriesPerCategory: 2,
		ChunkSize:         512,
		SlackerBlockSize:  512,
	}
}

// BandwidthScale converts a paper-quoted link speed (Mbps) into the
// corpus-scaled effective speed so deployment times keep the paper's
// magnitude: the corpus is ~1/1000 of the paper's image bytes, so the
// link slows by the same factor.
func (c Config) BandwidthScale(mbps float64) float64 {
	return mbps / 1000 * c.Scale
}

// link returns the simulated link at a paper-quoted bandwidth.
func (c Config) link(mbps float64) netsim.LinkConfig {
	return netsim.DefaultLAN().WithBandwidth(c.BandwidthScale(mbps))
}

// newCorpus builds the corpus for this configuration.
func (c Config) newCorpus(filter []string) (*corpus.Corpus, error) {
	return corpus.New(corpus.Options{
		Seed:         c.Seed,
		Scale:        c.Scale,
		SeriesFilter: filter,
		MaxVersions:  c.VersionsPerSeries,
	})
}

// pickSeries applies the SeriesPerCategory cap, preserving Table I order.
func (c Config) pickSeries(co *corpus.Corpus) []corpus.Series {
	if c.SeriesPerCategory <= 0 {
		return co.Series()
	}
	counts := make(map[corpus.Category]int)
	var out []corpus.Series
	for _, s := range co.Series() {
		if counts[s.Category] >= c.SeriesPerCategory {
			continue
		}
		counts[s.Category]++
		out = append(out, s)
	}
	return out
}

// rig is a populated deployment environment: the original images and
// Gear index images in a Docker registry, Gear files in a Gear registry,
// and (optionally) Slacker block devices.
type rig struct {
	corpus *corpus.Corpus
	docker *registry.Registry
	gear   *gearregistry.Registry
	slack  *slacker.Server
	// converted tracks per-image conversion results for experiments that
	// need timings or index stats.
	converted map[string]*convert.Result
}

// gearRef returns the registry reference of a series' Gear index image.
func gearRef(series string) string { return "gear/" + series }

// buildRig publishes the given series (all their versions) into fresh
// registries. withSlacker additionally lays out block devices.
func (c Config) buildRig(co *corpus.Corpus, series []corpus.Series, withSlacker bool) (*rig, error) {
	r := &rig{
		corpus:    co,
		docker:    registry.New(),
		gear:      gearregistry.New(gearregistry.Options{Compress: true}),
		converted: make(map[string]*convert.Result),
	}
	if withSlacker {
		r.slack = slacker.NewServer()
	}
	conv, err := convert.New(convert.Options{})
	if err != nil {
		return nil, err
	}
	for _, s := range series {
		for v := 0; v < s.NumVersions; v++ {
			img, err := co.Image(s.Name, v)
			if err != nil {
				return nil, err
			}
			if _, err := registry.Push(r.docker, img); err != nil {
				return nil, err
			}
			res, err := conv.Convert(img)
			if err != nil {
				return nil, err
			}
			// Republish the index under the gear/ namespace so both the
			// original and its Gear form live in one registry.
			res.Index.Name = gearRef(s.Name)
			ixImg, err := res.Index.ToImage()
			if err != nil {
				return nil, err
			}
			res.IndexImage = ixImg
			if _, _, err := convert.Publish(res, r.docker, r.gear); err != nil {
				return nil, err
			}
			r.converted[img.Manifest.Reference()] = res
			if withSlacker {
				bi, err := slacker.FromImage(img, c.SlackerBlockSize)
				if err != nil {
					return nil, err
				}
				r.slack.Put(bi)
			}
		}
	}
	return r, nil
}

// newDaemon builds a deployment daemon against the rig at a paper-quoted
// bandwidth. Per-request wire overheads shrink with the corpus scale so
// the overhead-to-payload ratio stays calibrated at any test scale.
func (c Config) newDaemon(r *rig, mbps float64) (*dockersim.Daemon, error) {
	d, err := dockersim.NewDaemon(r.docker, r.gear, dockersim.Options{
		Link:                c.link(mbps),
		GearRequestBytes:    int64(900 * c.Scale),
		SlackerRequestBytes: int64(120 * c.Scale),
		Telemetry:           c.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	if r.slack != nil {
		d.ConfigureSlacker(r.slack)
	}
	return d, nil
}

// accessPaths returns the launch-time access list of (series, version).
func accessPaths(co *corpus.Corpus, series string, version int) ([]string, error) {
	items, err := co.NecessarySet(series, version)
	if err != nil {
		return nil, err
	}
	paths := make([]string, len(items))
	for i, it := range items {
		paths[i] = it.Path
	}
	return paths, nil
}

// Runner executes one experiment and prints its result.
type Runner struct {
	// ID is the experiment identifier ("table2", "fig9", ...).
	ID string
	// Title matches the paper's table/figure caption.
	Title string
	// Run executes the experiment and writes the report to w.
	Run func(cfg Config, w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"inventory", "Workload: corpus composition (the paper's §V-A table)", runInventory},
		{"table2", "Table II: storage usage and object count per dedup granularity", runTable2},
		{"fig2", "Fig 2: redundancy of necessary data within image series", runFig2},
		{"fig6", "Fig 6: image conversion time per series", runFig6},
		{"fig7", "Fig 7: registry storage saving", runFig7},
		{"fig8", "Fig 8: bandwidth usage during deployments", runFig8},
		{"fig9", "Fig 9: deployment time under different bandwidths", runFig9},
		{"fig10", "Fig 10: sequential Tomcat version rollout", runFig10},
		{"fig11", "Fig 11: long-running and short-running workloads", runFig11},
		{"extload", "Extension: registry egress under a client fleet", runExtLoad},
		{"extcache", "Extension: level-1 cache capacity/policy ablation", runExtCache},
		{"extparallel", "Extension: concurrent fetch engine worker sweep", runExtParallel},
		{"extpush", "Extension: concurrent push engine worker sweep", runExtPush},
		{"extp2p", "Extension: peer-to-peer distribution fleet/bandwidth sweep", runExtP2P},
		{"extprefetch", "Extension: profile-guided startup prefetch coverage/bandwidth sweep", runExtPrefetch},
		{"extfleet", "Extension: fleet-scale scenario harness (flash crowd, churn, failover, mixed)", runExtFleet},
		{"extshard", "Extension: sharded registry tier shard-count sweep", runExtShard},
		{"exthedge", "Extension: tail-latency-aware replica reads (balanced + hedged)", runExtHedge},
		{"extchunk", "Extension: chunked lazy loading file/chunk/window sweep", runExtChunk},
	}
}

// Run executes the experiment with the given id ("all" runs everything).
func Run(id string, cfg Config, w io.Writer) error {
	if id == "all" {
		for _, r := range All() {
			fmt.Fprintf(w, "\n=== %s — %s ===\n", r.ID, r.Title)
			if err := r.Run(cfg, w); err != nil {
				return fmt.Errorf("experiments: %s: %w", r.ID, err)
			}
		}
		return nil
	}
	for _, r := range All() {
		if r.ID == id {
			return r.Run(cfg, w)
		}
	}
	return fmt.Errorf("experiments: %q: %w", id, ErrUnknownExperiment)
}

// IDs lists experiment ids in paper order.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, r := range all {
		ids[i] = r.ID
	}
	return ids
}

// Result runs one experiment and returns its typed result for
// programmatic use (every result type carries JSON field tags). "all" is
// not supported here; run ids individually.
func Result(id string, cfg Config) (any, error) {
	switch id {
	case "inventory":
		return RunInventory(cfg)
	case "table2":
		return RunTable2(cfg)
	case "fig2":
		return RunFig2(cfg)
	case "fig6":
		return RunFig6(cfg)
	case "fig7":
		return RunFig7(cfg)
	case "fig8":
		return RunFig8(cfg)
	case "fig9":
		return RunFig9(cfg)
	case "fig10":
		return RunFig10(cfg)
	case "fig11":
		return RunFig11(cfg)
	case "extload":
		return RunExtLoad(cfg)
	case "extcache":
		return RunExtCache(cfg)
	case "extparallel":
		return RunExtParallel(cfg)
	case "extpush":
		return RunExtPush(cfg)
	case "extp2p":
		return RunExtP2P(cfg)
	case "extprefetch":
		return RunExtPrefetch(cfg)
	case "extfleet":
		return RunExtFleet(cfg)
	case "extshard":
		return RunExtShard(cfg)
	case "exthedge":
		return RunExtHedge(cfg)
	case "extchunk":
		return RunExtChunk(cfg)
	default:
		return nil, fmt.Errorf("experiments: %q: %w", id, ErrUnknownExperiment)
	}
}

// categoryOrder sorts categories in Table I order for stable output.
func categoryOrder(m map[corpus.Category]float64) []corpus.Category {
	out := make([]corpus.Category, 0, len(m))
	for cat := range m {
		out = append(out, cat)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mb renders bytes as MB with two decimals.
func mb(n int64) string { return fmt.Sprintf("%.2f MB", float64(n)/1e6) }
