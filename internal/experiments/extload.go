package experiments

import (
	"fmt"
	"io"
	"time"
)

// ExtLoadResult is an extension experiment beyond the paper's figures:
// it quantifies the §I motivation directly — "the surge in the number of
// images puts high pressure on the registry in terms of bandwidth" — by
// having a fleet of independent clients deploy the same image set and
// measuring total registry egress and mean deployment time under Docker
// and under Gear.
type ExtLoadResult struct {
	Clients int `json:"clients"`
	Deploys int `json:"deploysPerClient"`
	// DockerEgress/GearEgress are total bytes served by the registries.
	DockerEgress int64 `json:"dockerEgress"`
	GearEgress   int64 `json:"gearEgress"`
	// DockerMeanTime/GearMeanTime are mean per-deployment times.
	DockerMeanTime time.Duration `json:"dockerMeanTime"`
	GearMeanTime   time.Duration `json:"gearMeanTime"`
}

// EgressSaving returns Gear's registry-egress reduction.
func (r *ExtLoadResult) EgressSaving() float64 {
	if r.DockerEgress == 0 {
		return 0
	}
	return 1 - float64(r.GearEgress)/float64(r.DockerEgress)
}

// RunExtLoad deploys one series' versions from every simulated client.
// Each client is an independent daemon (own layer store, own Gear cache)
// sharing the registries, like a fleet of edge nodes pulling the same
// rollout.
func RunExtLoad(cfg Config) (*ExtLoadResult, error) {
	const clients = 8
	co, err := cfg.newCorpus([]string{"nginx"})
	if err != nil {
		return nil, err
	}
	series := co.Series()
	r, err := cfg.buildRig(co, series, false)
	if err != nil {
		return nil, err
	}
	s := series[0]
	compute, err := co.TaskCompute(s.Name)
	if err != nil {
		return nil, err
	}

	res := &ExtLoadResult{Clients: clients, Deploys: s.NumVersions}
	var dockerTotal, gearTotal time.Duration
	var deploys int
	for c := 0; c < clients; c++ {
		dockerD, err := cfg.newDaemon(r, 100)
		if err != nil {
			return nil, err
		}
		gearD, err := cfg.newDaemon(r, 100)
		if err != nil {
			return nil, err
		}
		for v := 0; v < s.NumVersions; v++ {
			access, err := accessPaths(co, s.Name, v)
			if err != nil {
				return nil, err
			}
			tag := s.Tags()[v]
			dd, err := dockerD.DeployDocker(s.Name, tag, access, compute)
			if err != nil {
				return nil, err
			}
			gd, err := gearD.DeployGear(gearRef(s.Name), tag, access, compute)
			if err != nil {
				return nil, err
			}
			res.DockerEgress += dd.Pull.Bytes + dd.Run.Bytes
			res.GearEgress += gd.Pull.Bytes + gd.Run.Bytes
			dockerTotal += dd.Total()
			gearTotal += gd.Total()
			deploys++
		}
	}
	if deploys > 0 {
		res.DockerMeanTime = dockerTotal / time.Duration(deploys)
		res.GearMeanTime = gearTotal / time.Duration(deploys)
	}
	return res, nil
}

func runExtLoad(cfg Config, w io.Writer) error {
	res, err := RunExtLoad(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the fleet-load comparison.
func (r *ExtLoadResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%d clients x %d rolling deployments each, 100 Mbps links\n",
		r.Clients, r.Deploys)
	fmt.Fprintf(w, "%-8s %16s %16s\n", "system", "registry egress", "mean deploy")
	fmt.Fprintf(w, "%-8s %16s %16s\n", "docker", mb(r.DockerEgress),
		r.DockerMeanTime.Round(time.Millisecond))
	fmt.Fprintf(w, "%-8s %16s %16s\n", "gear", mb(r.GearEgress),
		r.GearMeanTime.Round(time.Millisecond))
	fmt.Fprintf(w, "gear cuts registry egress by %.1f%% across the fleet\n",
		r.EgressSaving()*100)
}
