package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/gear-image/gear/internal/dockersim"
)

// ExtParallelPoint is one worker-count sample of the fetch-engine sweep.
type ExtParallelPoint struct {
	// Workers is the daemon's FetchWorkers setting (1 = the serial
	// per-fault baseline path).
	Workers int `json:"workers"`
	// DeployTime is the summed deployment time of the cold-cache rollout.
	DeployTime time.Duration `json:"deployTime"`
	// Speedup is DeployTime(workers=1) / DeployTime(workers).
	Speedup float64 `json:"speedup"`
	// Requests/Bytes are the rollout's total wire traffic; they must be
	// identical at every worker count (parallelism changes time, not
	// volume).
	Requests int64 `json:"requests"`
	Bytes    int64 `json:"bytes"`
}

// ExtParallelResult is the concurrent-fetch-engine sweep: the same
// cold-cache category rollout deployed with 1..16 fetch workers. With
// one worker the daemon uses the serial per-fault path the paper
// describes; with more, launch-time fetching goes through FetchAll —
// per-worker batched downloads over fair-shared link streams — so the
// per-object round trips that dominate small-file transfer are
// amortized and overlapped.
type ExtParallelResult struct {
	// Series lists the deployed series (one per category).
	Series []string `json:"series"`
	// Deploys is the number of deployments summed into each point.
	Deploys int                `json:"deploys"`
	Points  []ExtParallelPoint `json:"points"`
}

// extParallelWorkers is the swept worker-count axis.
var extParallelWorkers = []int{1, 2, 4, 8, 16}

// RunExtParallel deploys one series per category (versions capped) on a
// fresh daemon per worker count, clearing the Gear cache between
// deployments so every deployment fetches its full necessary set.
func RunExtParallel(cfg Config) (*ExtParallelResult, error) {
	// The sweep repeats the same rollout once per worker count; keep it
	// to a category-representative slice of the corpus.
	if cfg.SeriesPerCategory <= 0 {
		cfg.SeriesPerCategory = 1
	}
	if cfg.VersionsPerSeries <= 0 || cfg.VersionsPerSeries > 3 {
		cfg.VersionsPerSeries = 3
	}
	co, err := cfg.newCorpus(nil)
	if err != nil {
		return nil, err
	}
	series := cfg.pickSeries(co)
	r, err := cfg.buildRig(co, series, false)
	if err != nil {
		return nil, err
	}

	res := &ExtParallelResult{}
	for _, s := range series {
		res.Series = append(res.Series, s.Name)
	}
	for _, workers := range extParallelWorkers {
		d, err := dockersim.NewDaemon(r.docker, r.gear, dockersim.Options{
			Link:             cfg.link(904),
			GearRequestBytes: int64(900 * cfg.Scale),
			FetchWorkers:     workers,
		})
		if err != nil {
			return nil, err
		}
		var total time.Duration
		var bytes, requests int64
		deploys := 0
		for _, s := range series {
			for v := 0; v < s.NumVersions; v++ {
				access, err := accessPaths(co, s.Name, v)
				if err != nil {
					return nil, err
				}
				dep, err := d.DeployGear(gearRef(s.Name), s.Tags()[v], access, 0)
				if err != nil {
					return nil, err
				}
				total += dep.Total()
				bytes += dep.Pull.Bytes + dep.Run.Bytes
				requests += dep.Pull.Requests + dep.Run.Requests
				if _, err := dep.Destroy(); err != nil {
					return nil, err
				}
				// Cold cache: the next deployment must not reuse files
				// shared with this version.
				d.ClearGearCache()
				deploys++
			}
		}
		res.Deploys = deploys
		p := ExtParallelPoint{Workers: workers, DeployTime: total, Bytes: bytes, Requests: requests}
		if len(res.Points) == 0 {
			p.Speedup = 1
		} else {
			p.Speedup = float64(res.Points[0].DeployTime) / float64(total)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

func runExtParallel(cfg Config, w io.Writer) error {
	res, err := RunExtParallel(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the worker sweep.
func (r *ExtParallelResult) Print(w io.Writer) {
	fmt.Fprintf(w, "cold-cache rollout of %d deployments (%v), 904 Mbps link\n",
		r.Deploys, r.Series)
	fmt.Fprintf(w, "%-8s %14s %9s %10s %12s\n",
		"workers", "deploy time", "speedup", "requests", "bytes")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-8d %14s %8.2fx %10d %12s\n",
			p.Workers, p.DeployTime.Round(time.Millisecond), p.Speedup, p.Requests, mb(p.Bytes))
	}
	fmt.Fprintln(w, "bytes and requests are identical at every worker count: the engine")
	fmt.Fprintln(w, "overlaps per-object round trips, it does not change what is fetched")
}
