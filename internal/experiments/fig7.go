package experiments

import (
	"fmt"
	"io"

	"github.com/gear-image/gear/internal/corpus"
	"github.com/gear-image/gear/internal/gear/convert"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/registry"
)

// Fig7Category is one category's registry-footprint comparison.
type Fig7Category struct {
	Category corpus.Category `json:"category"`
	// DockerBytes is the Docker registry footprint (layer-level dedup +
	// per-layer gzip).
	DockerBytes int64 `json:"dockerBytes"`
	// GearBytes is the Gear footprint: index images in the Docker
	// registry plus file-level-deduplicated, compressed Gear files.
	GearBytes int64 `json:"gearBytes"`
}

// Saving returns Gear's storage saving over Docker.
func (c Fig7Category) Saving() float64 {
	if c.DockerBytes == 0 {
		return 0
	}
	return 1 - float64(c.GearBytes)/float64(c.DockerBytes)
}

// Fig7Result is the storage-saving study: per category (Fig 7a) and the
// whole top-50 corpus in one registry (Fig 7b).
type Fig7Result struct {
	Categories []Fig7Category `json:"categories"`
	// Overall is the whole-corpus comparison (Fig 7b).
	Overall Fig7Category `json:"overall"`
	// AvgIndexBytes is the mean serialized Gear index size; the paper
	// measures ~0.53 MB (~0.53 KB at our scale).
	AvgIndexBytes int64 `json:"avgIndexBytes"`
	// IndexShare is the index registry's stored (compressed) bytes as a
	// fraction of total Gear storage (paper: 1.1%; larger here because
	// the corpus shrinks file bytes 1000x but not path/fingerprint
	// metadata).
	IndexShare float64 `json:"indexShare"`
}

// RunFig7 builds per-category registry pairs plus one overall pair and
// compares footprints.
func RunFig7(cfg Config) (*Fig7Result, error) {
	co, err := cfg.newCorpus(nil)
	if err != nil {
		return nil, err
	}
	series := cfg.pickSeries(co)

	res := &Fig7Result{}

	// Per-category (Fig 7a).
	byCat := make(map[corpus.Category][]corpus.Series)
	for _, s := range series {
		byCat[s.Category] = append(byCat[s.Category], s)
	}
	for _, cat := range corpus.Categories() {
		group, ok := byCat[cat]
		if !ok {
			continue
		}
		row, _, err := measureFootprints(co, group)
		if err != nil {
			return nil, err
		}
		row.Category = cat
		res.Categories = append(res.Categories, row)
	}

	// Whole corpus (Fig 7b) plus index statistics.
	overall, indexStats, err := measureFootprints(co, series)
	if err != nil {
		return nil, err
	}
	res.Overall = overall
	if indexStats.count > 0 {
		res.AvgIndexBytes = indexStats.totalBytes / int64(indexStats.count)
	}
	if overall.GearBytes > 0 {
		res.IndexShare = float64(indexStats.storedBytes) / float64(overall.GearBytes)
	}
	return res, nil
}

type indexAccounting struct {
	count       int
	totalBytes  int64 // uncompressed serialized index bytes
	storedBytes int64 // index registry footprint (compressed layers)
}

// measureFootprints pushes the group's images into a fresh Docker
// registry and, separately, their Gear forms into a fresh index registry
// + Gear file store, returning both footprints.
func measureFootprints(co *corpus.Corpus, group []corpus.Series) (Fig7Category, indexAccounting, error) {
	dockerReg := registry.New()
	indexReg := registry.New()
	gearReg := gearregistry.New(gearregistry.Options{Compress: true})
	conv, err := convert.New(convert.Options{})
	if err != nil {
		return Fig7Category{}, indexAccounting{}, err
	}
	var acct indexAccounting
	for _, s := range group {
		for v := 0; v < s.NumVersions; v++ {
			img, err := co.Image(s.Name, v)
			if err != nil {
				return Fig7Category{}, indexAccounting{}, err
			}
			if _, err := registry.Push(dockerReg, img); err != nil {
				return Fig7Category{}, indexAccounting{}, err
			}
			resConv, err := conv.Convert(img)
			if err != nil {
				return Fig7Category{}, indexAccounting{}, err
			}
			if _, _, err := convert.Publish(resConv, indexReg, gearReg); err != nil {
				return Fig7Category{}, indexAccounting{}, err
			}
			st, err := resConv.Index.Stats()
			if err != nil {
				return Fig7Category{}, indexAccounting{}, err
			}
			acct.count++
			acct.totalBytes += st.IndexBytes
		}
	}
	acct.storedBytes = indexReg.Stats().TotalBytes()
	row := Fig7Category{
		DockerBytes: dockerReg.Stats().TotalBytes(),
		GearBytes:   acct.storedBytes + gearReg.Stats().StoredBytes,
	}
	return row, acct, nil
}

func runFig7(cfg Config, w io.Writer) error {
	res, err := RunFig7(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// paperFig7 holds the paper's per-category savings for reference.
var paperFig7 = map[corpus.Category]float64{
	corpus.Distro:       0.205,
	corpus.Language:     0.328,
	corpus.Database:     0.522,
	corpus.WebComponent: 0.609,
	corpus.Platform:     0.586,
	corpus.Others:       0.467,
}

// Print renders per-category and overall savings beside the paper's.
func (r *Fig7Result) Print(w io.Writer) {
	fmt.Fprintf(w, "%-22s %12s %12s %9s %9s\n", "category", "docker", "gear", "saving", "paper")
	for _, row := range r.Categories {
		fmt.Fprintf(w, "%-22s %12s %12s %8.1f%% %8.1f%%\n",
			row.Category, mb(row.DockerBytes), mb(row.GearBytes),
			row.Saving()*100, paperFig7[row.Category]*100)
	}
	fmt.Fprintf(w, "%-22s %12s %12s %8.1f%% %8.1f%%\n",
		"overall (fig 7b)", mb(r.Overall.DockerBytes), mb(r.Overall.GearBytes),
		r.Overall.Saving()*100, 53.7)
	fmt.Fprintf(w, "avg index size = %d B; index share of gear storage = %.1f%% (paper: ~0.53 MB, 1.1%%)\n",
		r.AvgIndexBytes, r.IndexShare*100)
}
