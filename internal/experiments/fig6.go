package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/gear-image/gear/internal/disksim"
	"github.com/gear-image/gear/internal/gear/convert"
)

// Fig6Series is one series' conversion measurement.
type Fig6Series struct {
	Name string `json:"name"`
	// AvgUncompressedBytes is the mean image size of the series.
	AvgUncompressedBytes int64 `json:"avgUncompressedBytes"`
	// AvgHDD and AvgSSD are mean conversion times on each device.
	AvgHDD time.Duration `json:"avgHdd"`
	AvgSSD time.Duration `json:"avgSsd"`
}

// Fig6Result is the conversion-time study. The paper reports an overall
// ~46 s average on HDD and a 65.7% reduction for node on SSD; since our
// corpus is ~1/1000 scale, times land in the tens of milliseconds with
// the same proportionality and SSD ratio.
type Fig6Result struct {
	Series []Fig6Series `json:"series"` // ascending by size, as the paper plots
	// AvgHDD is the corpus-wide mean conversion time.
	AvgHDD time.Duration `json:"avgHdd"`
	// NodeReduction is node's SSD-vs-HDD improvement.
	NodeReduction float64 `json:"nodeReduction"`
}

// RunFig6 converts every image twice (HDD-modeled and SSD-modeled) and
// aggregates per series.
func RunFig6(cfg Config) (*Fig6Result, error) {
	co, err := cfg.newCorpus(nil)
	if err != nil {
		return nil, err
	}
	hdd, err := convert.New(convert.Options{Disk: disksim.HDD()})
	if err != nil {
		return nil, err
	}
	ssd, err := convert.New(convert.Options{Disk: disksim.SSD()})
	if err != nil {
		return nil, err
	}

	var out []Fig6Series
	var hddSum time.Duration
	var conversions int
	for _, s := range cfg.pickSeries(co) {
		var row Fig6Series
		row.Name = s.Name
		for v := 0; v < s.NumVersions; v++ {
			img, err := co.Image(s.Name, v)
			if err != nil {
				return nil, err
			}
			for _, l := range img.Layers {
				row.AvgUncompressedBytes += l.UncompressedSize
			}
			rh, err := hdd.Convert(img)
			if err != nil {
				return nil, err
			}
			rs, err := ssd.Convert(img)
			if err != nil {
				return nil, err
			}
			row.AvgHDD += rh.Timing.Total()
			row.AvgSSD += rs.Timing.Total()
			hddSum += rh.Timing.Total()
			conversions++
		}
		n := time.Duration(s.NumVersions)
		row.AvgUncompressedBytes /= int64(s.NumVersions)
		row.AvgHDD /= n
		row.AvgSSD /= n
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].AvgUncompressedBytes < out[j].AvgUncompressedBytes
	})
	res := &Fig6Result{Series: out}
	if conversions > 0 {
		res.AvgHDD = hddSum / time.Duration(conversions)
	}
	for _, row := range out {
		if row.Name == "node" && row.AvgHDD > 0 {
			res.NodeReduction = 1 - float64(row.AvgSSD)/float64(row.AvgHDD)
		}
	}
	return res, nil
}

func runFig6(cfg Config, w io.Writer) error {
	res, err := RunFig6(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the per-series rows in ascending size order.
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintf(w, "%-20s %12s %12s %12s\n", "series", "avg size", "hdd", "ssd")
	for _, row := range r.Series {
		fmt.Fprintf(w, "%-20s %12s %12s %12s\n",
			row.Name, mb(row.AvgUncompressedBytes),
			row.AvgHDD.Round(time.Millisecond), row.AvgSSD.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "average hdd conversion = %s (paper: ~46 s at 1000x scale)\n",
		r.AvgHDD.Round(time.Millisecond))
	if r.NodeReduction > 0 {
		fmt.Fprintf(w, "node ssd reduction = %.1f%% (paper: 65.7%%)\n", r.NodeReduction*100)
	}
}
