package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/gear-image/gear/internal/dockersim"
	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/shardreg"
)

// ExtShardPoint is one shard-count sample of the sharded-registry
// sweep: the extload client fleet rerun against a shardreg tier of S
// members.
type ExtShardPoint struct {
	// Shards/Replication describe the tier.
	Shards      int `json:"shards"`
	Replication int `json:"replication"`
	// ClientEgress is what the client fleet pulled over its WAN links —
	// invariant across shard counts (the tier changes who serves, not
	// what a client downloads).
	ClientEgress int64 `json:"clientEgress"`
	// TierEgress is the total bytes the shards served; MaxShardEgress
	// is the hottest single shard's share of it. Near-linear scaling
	// means MaxShardEgress ~ TierEgress/S.
	TierEgress     int64 `json:"tierEgress"`
	MaxShardEgress int64 `json:"maxShardEgress"`
	// MaxShardServe is the hottest shard's busy time serving its share —
	// the tier-side tail that bounds how fast a fleet can be fed. It is
	// the quantity that must fall near-linearly with S.
	MaxShardServe time.Duration `json:"maxShardServe"`
	// MaxReadShare is the largest fraction of the tier's served read
	// requests any one replica answered during the rollout — the
	// request-count analogue of MaxShardEgress (rank-order reads pin it
	// to the primary split; balanced reads spread it).
	MaxReadShare float64 `json:"maxReadShare"`
	// MeanDeploy is the client-side mean deployment time.
	MeanDeploy time.Duration `json:"meanDeploy"`
	// ParityOK reports every client pulled exactly the bytes it pulls
	// from the single-node registry baseline.
	ParityOK bool `json:"parityOK"`
}

// ExtShardFailover is the sweep's replica-failover pass: one shard
// killed, the rollout rerun, and the clients' bytes compared to the
// healthy baseline.
type ExtShardFailover struct {
	Shards      int    `json:"shards"`
	Replication int    `json:"replication"`
	Killed      string `json:"killed"`
	// Failovers counts re-routes past the dead shard; ParityOK reports
	// per-client byte parity with the baseline (replicas serve the
	// identical compressed bytes).
	Failovers int64 `json:"failovers"`
	ParityOK  bool  `json:"parityOK"`
}

// ExtShardResult is the sharded Gear Registry tier experiment: the
// extload/extp2p rollout served by 1/2/4/8 consistent-hash shards, plus
// a kill-one-shard failover pass at replication 2.
type ExtShardResult struct {
	Series   string  `json:"series"`
	Versions int     `json:"versions"`
	Clients  int     `json:"clients"`
	WANMbps  float64 `json:"wanMbps"`
	// BaselineEgress/BaselineMeanTime are the single-node registry
	// reference the 1-shard point must reproduce exactly.
	BaselineEgress   int64            `json:"baselineEgress"`
	BaselineMeanTime time.Duration    `json:"baselineMeanTime"`
	Points           []ExtShardPoint  `json:"points"`
	Failover         ExtShardFailover `json:"failover"`
}

// extShardSweep is the swept shard-count axis. The 1-shard tier runs
// replication 1 — the exact single-node degeneration; the rest run the
// failover-capable replication 2.
var extShardSweep = []struct {
	shards   int
	replicas int
}{
	{1, 1},
	{2, 2},
	{4, 2},
	{8, 2},
}

// Client fleet shape: the extp2p 8-node fleet at the paper's 20 Mbps
// edge uplink; shards talk to the world over the same class of link.
const (
	extShardClients = 8
	extShardWANMbps = 20
	extShardLANMbps = 1000
	extShardFailAt  = 4 // shard count of the failover pass
)

// RunExtShard reruns the rolling-deployment fleet against sharded
// registry tiers and measures how the serving load splits. Placement is
// consistent hashing with virtual nodes, so the hottest shard's egress
// and busy time fall near-linearly as shards are added, while every
// client pulls bit-identical bytes — and the 1-shard/1-replica point
// reproduces the single-node registry baseline exactly.
func RunExtShard(cfg Config) (*ExtShardResult, error) {
	if cfg.VersionsPerSeries <= 0 || cfg.VersionsPerSeries > 4 {
		cfg.VersionsPerSeries = 4
	}
	if cfg.SeriesPerCategory <= 0 || cfg.SeriesPerCategory > 2 {
		cfg.SeriesPerCategory = 2
	}
	// The whole (capped) corpus, not one series: consistent hashing needs
	// a population of objects before the per-shard split is worth
	// measuring.
	co, err := cfg.newCorpus(nil)
	if err != nil {
		return nil, err
	}
	series := cfg.pickSeries(co)
	r, err := cfg.buildRig(co, series, false)
	if err != nil {
		return nil, err
	}
	versions := 0
	computes := make(map[string]time.Duration, len(series))
	for _, s := range series {
		versions += s.NumVersions
		if computes[s.Name], err = co.TaskCompute(s.Name); err != nil {
			return nil, err
		}
	}
	// rolloutAll rolls every series' versions out on one client daemon.
	rolloutAll := func(d *dockersim.Daemon) (int64, time.Duration, error) {
		var bytes int64
		var total time.Duration
		for _, s := range series {
			got, t, err := rollout(co, d, s, computes[s.Name])
			if err != nil {
				return 0, 0, err
			}
			bytes += got
			total += t
		}
		return bytes, total, nil
	}

	res := &ExtShardResult{
		Series:   fmt.Sprintf("%d series", len(series)),
		Versions: versions,
		Clients:  extShardClients,
		WANMbps:  extShardWANMbps,
	}

	// Baseline: the client fleet against the single-node registry.
	baseBytes := make([]int64, extShardClients)
	var baseTotal time.Duration
	for n := 0; n < extShardClients; n++ {
		d, err := cfg.newDaemon(r, extShardWANMbps)
		if err != nil {
			return nil, err
		}
		got, total, err := rolloutAll(d)
		if err != nil {
			return nil, err
		}
		baseBytes[n] = got
		res.BaselineEgress += got
		baseTotal += total
	}
	deploys := time.Duration(extShardClients * versions)
	res.BaselineMeanTime = baseTotal / deploys

	// shardedRollout runs the client fleet against a fresh tier of the
	// given shape (optionally killing one shard first) and returns the
	// point plus the cluster for failover accounting.
	shardedRollout := func(shards, replicas int, kill bool) (ExtShardPoint, *shardreg.Cluster, string, error) {
		point := ExtShardPoint{Shards: shards, Replication: replicas}
		topo, err := netsim.NewTopology(cfg.link(extShardWANMbps), cfg.link(extShardLANMbps))
		if err != nil {
			return point, nil, "", err
		}
		ids := make([]string, shards)
		for i := range ids {
			ids[i] = fmt.Sprintf("shard%02d", i)
		}
		cluster, err := shardreg.New(shardreg.Options{
			Shards:      ids,
			Replication: replicas,
			Compress:    true,
			Telemetry:   cfg.Telemetry,
			Topology:    topo,
		})
		if err != nil {
			return point, nil, "", err
		}
		if _, err := cluster.Seed(r.gear); err != nil {
			return point, nil, "", err
		}
		// Seeding moved bytes through the shard links; reset the clock
		// so the point measures serving, not migration.
		seeded := make(map[string]netsim.Stats, shards)
		victim := ""
		if kill {
			// Kill the member carrying the most primary routes — the
			// worst-case single failure.
			load := cluster.PrimaryLoad()
			most := -1
			for _, id := range cluster.Shards() {
				if load[id] > most {
					most, victim = load[id], id
				}
			}
			if err := cluster.KillShard(victim); err != nil {
				return point, nil, "", err
			}
		}
		for _, id := range cluster.Shards() {
			seeded[id] = topo.Node(id).WAN.Stats()
		}
		// Read counters are cumulative across the sweep's clusters (they
		// share one telemetry registry), so the point's share comes from
		// before/after deltas.
		readsBefore := cluster.Stats()
		point.ParityOK = true
		var tierTotal time.Duration
		for n := 0; n < extShardClients; n++ {
			d, err := dockersim.NewDaemon(r.docker, cluster, dockersim.Options{
				Link:                cfg.link(extShardWANMbps),
				GearRequestBytes:    int64(900 * cfg.Scale),
				SlackerRequestBytes: int64(120 * cfg.Scale),
				Telemetry:           cfg.Telemetry,
			})
			if err != nil {
				return point, nil, "", err
			}
			got, total, err := rolloutAll(d)
			if err != nil {
				return point, nil, "", err
			}
			if got != baseBytes[n] {
				point.ParityOK = false
			}
			point.ClientEgress += got
			tierTotal += total
		}
		for _, id := range cluster.Shards() {
			served := topo.Node(id).WAN.Stats().Sub(seeded[id])
			point.TierEgress += served.Bytes
			if served.Bytes > point.MaxShardEgress {
				point.MaxShardEgress = served.Bytes
			}
			if served.Elapsed > point.MaxShardServe {
				point.MaxShardServe = served.Elapsed
			}
		}
		readsAfter := cluster.Stats()
		prior := make(map[string]int64, len(readsBefore.Shards))
		for _, s := range readsBefore.Shards {
			prior[s.ID] = s.Reads
		}
		if total := readsAfter.Reads - readsBefore.Reads; total > 0 {
			for _, s := range readsAfter.Shards {
				if share := float64(s.Reads-prior[s.ID]) / float64(total); share > point.MaxReadShare {
					point.MaxReadShare = share
				}
			}
		}
		point.MeanDeploy = tierTotal / deploys
		return point, cluster, victim, nil
	}

	for _, pt := range extShardSweep {
		point, _, _, err := shardedRollout(pt.shards, pt.replicas, false)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, point)
	}

	// Failover pass: one dead shard at replication 2 — clients must
	// pull bit-identical bytes from the replicas.
	fpoint, cluster, victim, err := shardedRollout(extShardFailAt, 2, true)
	if err != nil {
		return nil, err
	}
	res.Failover = ExtShardFailover{
		Shards:      extShardFailAt,
		Replication: 2,
		Killed:      victim,
		Failovers:   cluster.Stats().Failovers,
		ParityOK:    fpoint.ParityOK,
	}
	return res, nil
}

func runExtShard(cfg Config, w io.Writer) error {
	res, err := RunExtShard(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the shard-count sweep.
func (r *ExtShardResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s rolling deployment, %d clients @ %g Mbps vs sharded registry tier\n",
		r.Series, r.Clients, r.WANMbps)
	fmt.Fprintf(w, "single-node baseline: %s egress, %v mean deploy\n",
		mb(r.BaselineEgress), r.BaselineMeanTime.Round(time.Millisecond))
	fmt.Fprintf(w, "%-7s %9s %13s %11s %15s %15s %12s %7s\n",
		"shards", "replicas", "tier egress", "max shard", "max shard busy", "max read share", "mean deploy", "parity")
	for i := range r.Points {
		p := &r.Points[i]
		fmt.Fprintf(w, "%-7d %9d %13s %11s %15s %15.3f %12s %7v\n",
			p.Shards, p.Replication, mb(p.TierEgress), mb(p.MaxShardEgress),
			p.MaxShardServe.Round(time.Millisecond), p.MaxReadShare,
			p.MeanDeploy.Round(time.Millisecond), p.ParityOK)
	}
	if len(r.Points) > 1 {
		first, last := &r.Points[0], &r.Points[len(r.Points)-1]
		if last.MaxShardEgress > 0 {
			fmt.Fprintf(w, "hottest shard egress %s -> %s (%.1fx lighter at %dx shards)\n",
				mb(first.MaxShardEgress), mb(last.MaxShardEgress),
				float64(first.MaxShardEgress)/float64(last.MaxShardEgress), last.Shards)
		}
		if last.MaxShardServe > 0 {
			fmt.Fprintf(w, "hottest shard busy time %v -> %v (%.1fx faster tier tail)\n",
				first.MaxShardServe.Round(time.Millisecond), last.MaxShardServe.Round(time.Millisecond),
				float64(first.MaxShardServe)/float64(last.MaxShardServe))
		}
	}
	f := &r.Failover
	fmt.Fprintf(w, "failover: %d shards, replication %d, killed %s: %d re-routes, client byte parity %v\n",
		f.Shards, f.Replication, f.Killed, f.Failovers, f.ParityOK)
}
