package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/gear-image/gear/internal/gear/convert"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/registry"
)

// ExtPushPoint is one worker-count sample of the push-engine sweep.
type ExtPushPoint struct {
	// Workers is both the converter's fingerprint pool and the pusher's
	// upload pool size (1 = the serial baseline).
	Workers int `json:"workers"`
	// PushTime is the summed modeled wall time of the rollout: conversion
	// on the modeled disk plus query/upload transfer on the modeled link.
	PushTime time.Duration `json:"pushTime"`
	// Speedup is PushTime(workers=1) / PushTime(workers).
	Speedup float64 `json:"speedup"`
	// QueryRoundTrips counts dedup query requests; with the batch
	// protocol this is one per image regardless of file count.
	QueryRoundTrips int64 `json:"queryRoundTrips"`
	// Uploaded/UploadedBytes are the Gear files (and payload bytes) that
	// actually crossed the wire; they must be identical at every worker
	// count (parallelism changes time, not volume).
	Uploaded      int   `json:"uploaded"`
	UploadedBytes int64 `json:"uploadedBytes"`
	// Skipped counts query-before-upload dedup hits across the rollout.
	Skipped int `json:"skipped"`
	// DedupRatio is Skipped over all queried fingerprints — the push-side
	// view of the paper's Fig 7 registry saving.
	DedupRatio float64 `json:"dedupRatio"`
}

// ExtPushResult is the concurrent-push-engine sweep: the same
// cold-registry category rollout converted and pushed with 1..16
// workers. Each image dedups its whole fingerprint set against the
// registry in one QueryBatch round trip, then uploads only the absent
// files through the bounded pool; the serial baseline pays one query and
// one upload round trip per file.
type ExtPushResult struct {
	// Series lists the pushed series (one per category).
	Series []string `json:"series"`
	// Images is the number of images pushed per point.
	Images int            `json:"images"`
	Points []ExtPushPoint `json:"points"`
	// WarmQueryRoundTrips/WarmUploads describe re-pushing an image whose
	// files all exist remotely: the dedup fast path must cost exactly one
	// query round trip and zero uploads.
	WarmQueryRoundTrips int `json:"warmQueryRoundTrips"`
	WarmUploads         int `json:"warmUploads"`
}

// extPushWorkers is the swept worker-count axis.
var extPushWorkers = []int{1, 2, 4, 8, 16}

// RunExtPush converts and pushes one series per category (versions
// capped) into fresh registries per worker count, so every point pays
// the full cold-registry cost and dedups only within the rollout.
func RunExtPush(cfg Config) (*ExtPushResult, error) {
	if cfg.SeriesPerCategory <= 0 {
		cfg.SeriesPerCategory = 1
	}
	if cfg.VersionsPerSeries <= 0 || cfg.VersionsPerSeries > 3 {
		cfg.VersionsPerSeries = 3
	}
	co, err := cfg.newCorpus(nil)
	if err != nil {
		return nil, err
	}
	series := cfg.pickSeries(co)

	res := &ExtPushResult{}
	for _, s := range series {
		res.Series = append(res.Series, s.Name)
	}
	reqBytes := int64(900 * cfg.Scale)
	linkCfg := cfg.link(904)

	for _, workers := range extPushWorkers {
		docker := registry.New()
		gear := gearregistry.New(gearregistry.Options{Compress: true})
		link, err := netsim.NewLink(linkCfg)
		if err != nil {
			return nil, err
		}
		conv, err := convert.New(convert.Options{Workers: workers})
		if err != nil {
			return nil, err
		}
		pusher, err := convert.NewPusher(convert.PushOptions{
			Gear:        gear,
			PushWorkers: workers,
			OnPushWindow: func(w convert.PushWindow) {
				// Dedup query first: the whole fingerprint set in one
				// round trip when batched, else one request per file.
				if w.QueryBatched {
					link.TransferBatch(w.Queried, int64(w.Queried)*reqBytes)
				} else {
					for i := 0; i < w.Queried; i++ {
						link.Transfer(reqBytes)
					}
				}
				// Upload streams fair-share the link, one request per
				// object, exactly like download windows.
				if len(w.Streams) > 0 {
					streams := make([]netsim.Stream, 0, len(w.Streams))
					for _, st := range w.Streams {
						streams = append(streams, netsim.PerObjectStream(
							linkCfg, st.Objects, st.Bytes+int64(st.Objects)*reqBytes))
					}
					link.TransferWindow(streams)
				}
			},
		})
		if err != nil {
			return nil, err
		}

		var convTime time.Duration
		p := ExtPushPoint{Workers: workers}
		images := 0
		var queried int
		var firstFiles map[hashing.Fingerprint][]byte
		for _, s := range series {
			for v := 0; v < s.NumVersions; v++ {
				img, err := co.Image(s.Name, v)
				if err != nil {
					return nil, err
				}
				cres, err := conv.Convert(img)
				if err != nil {
					return nil, err
				}
				convTime += cres.Timing.Total()
				// Republish the index under the gear/ namespace, matching
				// the deployment rigs.
				cres.Index.Name = gearRef(s.Name)
				ixImg, err := cres.Index.ToImage()
				if err != nil {
					return nil, err
				}
				cres.IndexImage = ixImg
				indexBytes, window, err := pusher.Push(cres, docker)
				if err != nil {
					return nil, err
				}
				link.Transfer(indexBytes + reqBytes)
				p.QueryRoundTrips += int64(window.QueryRoundTrips)
				p.Uploaded += window.Uploaded()
				p.UploadedBytes += window.Bytes()
				p.Skipped += window.Skipped
				queried += window.Queried
				if firstFiles == nil {
					firstFiles = cres.Files
				}
				images++
			}
		}
		res.Images = images
		p.PushTime = convTime + link.Stats().Elapsed
		if queried > 0 {
			p.DedupRatio = float64(p.Skipped) / float64(queried)
		}
		if len(res.Points) == 0 {
			p.Speedup = 1
		} else {
			p.Speedup = float64(res.Points[0].PushTime) / float64(p.PushTime)
		}
		res.Points = append(res.Points, p)

		// Warm re-push on the last sweep point: every file of the first
		// image already exists remotely, so the dedup fast path must cost
		// exactly one QueryBatch round trip and zero uploads.
		if workers == extPushWorkers[len(extPushWorkers)-1] {
			warm, err := pusher.PushAll(firstFiles)
			if err != nil {
				return nil, err
			}
			res.WarmQueryRoundTrips = warm.QueryRoundTrips
			res.WarmUploads = warm.Uploaded()
		}
	}
	return res, nil
}

func runExtPush(cfg Config, w io.Writer) error {
	res, err := RunExtPush(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the worker sweep.
func (r *ExtPushResult) Print(w io.Writer) {
	fmt.Fprintf(w, "cold-registry push rollout of %d images (%v), 904 Mbps link\n",
		r.Images, r.Series)
	fmt.Fprintf(w, "%-8s %14s %9s %9s %9s %12s %7s\n",
		"workers", "push time", "speedup", "queries", "uploads", "bytes", "dedup")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-8d %14s %8.2fx %9d %9d %12s %6.1f%%\n",
			p.Workers, p.PushTime.Round(time.Millisecond), p.Speedup,
			p.QueryRoundTrips, p.Uploaded, mb(p.UploadedBytes), 100*p.DedupRatio)
	}
	fmt.Fprintf(w, "warm re-push of a fully deduplicated image: %d query round trip(s), %d uploads\n",
		r.WarmQueryRoundTrips, r.WarmUploads)
	fmt.Fprintln(w, "uploads, bytes, and dedup ratio are identical at every worker count:")
	fmt.Fprintln(w, "the engine batches and overlaps round trips, it does not change what is pushed")
}
