package experiments

import (
	"fmt"
	"io"

	"github.com/gear-image/gear/internal/corpus"
)

// InventoryCategory summarizes one category of the generated corpus.
type InventoryCategory struct {
	Category corpus.Category `json:"category"`
	Series   int             `json:"series"`
	Images   int             `json:"images"`
	// AvgImageBytes is the mean uncompressed image size.
	AvgImageBytes int64 `json:"avgImageBytes"`
	// AvgFiles is the mean regular-file count per image.
	AvgFiles int `json:"avgFiles"`
	// NecessaryRatio is mean necessary bytes / image bytes — what an
	// on-demand format downloads (the paper quotes 6.4%-33.3%).
	NecessaryRatio float64 `json:"necessaryRatio"`
}

// InventoryResult describes the corpus the other experiments run on —
// the synthetic counterpart of the paper's §V-A workload table.
type InventoryResult struct {
	Series     int                 `json:"series"`
	Images     int                 `json:"images"`
	TotalBytes int64               `json:"totalBytes"`
	Categories []InventoryCategory `json:"categories"`
}

// RunInventory measures the corpus composition. To keep it cheap it
// samples the first, middle, and last version of each series.
func RunInventory(cfg Config) (*InventoryResult, error) {
	co, err := cfg.newCorpus(nil)
	if err != nil {
		return nil, err
	}
	series := cfg.pickSeries(co)
	res := &InventoryResult{Series: len(series)}
	agg := make(map[corpus.Category]*InventoryCategory)

	for _, s := range series {
		row := agg[s.Category]
		if row == nil {
			row = &InventoryCategory{Category: s.Category}
			agg[s.Category] = row
		}
		row.Series++
		row.Images += s.NumVersions
		res.Images += s.NumVersions

		samples := []int{0, s.NumVersions / 2, s.NumVersions - 1}
		var sampleBytes, necessaryBytes int64
		var sampleFiles int
		seen := make(map[int]bool)
		n := 0
		for _, v := range samples {
			if seen[v] {
				continue
			}
			seen[v] = true
			n++
			img, err := co.Image(s.Name, v)
			if err != nil {
				return nil, err
			}
			root, err := img.Flatten()
			if err != nil {
				return nil, err
			}
			st := root.Stats()
			sampleBytes += st.Bytes
			sampleFiles += st.Files
			items, err := co.NecessarySet(s.Name, v)
			if err != nil {
				return nil, err
			}
			for _, it := range items {
				necessaryBytes += it.Size
			}
		}
		avgBytes := sampleBytes / int64(n)
		row.AvgImageBytes += avgBytes * int64(s.NumVersions)
		row.AvgFiles += (sampleFiles / n) * s.NumVersions
		row.NecessaryRatio += float64(necessaryBytes) / float64(sampleBytes) * float64(s.NumVersions)
		res.TotalBytes += avgBytes * int64(s.NumVersions)
	}

	for _, cat := range corpus.Categories() {
		row, ok := agg[cat]
		if !ok {
			continue
		}
		row.AvgImageBytes /= int64(row.Images)
		row.AvgFiles /= row.Images
		row.NecessaryRatio /= float64(row.Images)
		res.Categories = append(res.Categories, *row)
	}
	return res, nil
}

func runInventory(cfg Config, w io.Writer) error {
	res, err := RunInventory(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the corpus composition table.
func (r *InventoryResult) Print(w io.Writer) {
	fmt.Fprintf(w, "corpus: %d series, %d images, ~%s uncompressed (paper: 50 / 971 / 370 GB)\n",
		r.Series, r.Images, mb(r.TotalBytes))
	fmt.Fprintf(w, "%-22s %7s %7s %12s %10s %11s\n",
		"category", "series", "images", "avg size", "avg files", "necessary")
	for _, row := range r.Categories {
		fmt.Fprintf(w, "%-22s %7d %7d %12s %10d %10.1f%%\n",
			row.Category, row.Series, row.Images, mb(row.AvgImageBytes),
			row.AvgFiles, row.NecessaryRatio*100)
	}
	fmt.Fprintln(w, "(necessary = launch-time on-demand fraction; paper's formats fetch 6.4%-33.3%)")
}
