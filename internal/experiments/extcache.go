package experiments

import (
	"fmt"
	"io"

	"github.com/gear-image/gear/internal/cache"
	"github.com/gear-image/gear/internal/dockersim"
)

// ExtCachePoint is one (capacity, policy) cell of the cache ablation.
type ExtCachePoint struct {
	// CapacityFrac is the cache capacity as a fraction of the rollout's
	// unique gear-file bytes (0 = unlimited).
	CapacityFrac float64 `json:"capacityFrac"`
	Policy       string  `json:"policy"`
	// RemoteBytes is the total fetched over the rollout.
	RemoteBytes int64 `json:"remoteBytes"`
	// RollbackBytes is fetched when v01 is re-deployed after the rollout:
	// tight caches evicted its unique files and must re-download them.
	RollbackBytes int64 `json:"rollbackBytes"`
	// Evictions counts cache evictions under pressure.
	Evictions int64 `json:"evictions"`
	// HitRatio is the cache's hit ratio over the rollout.
	HitRatio float64 `json:"hitRatio"`
}

// ExtCacheResult is the level-1 cache ablation (DESIGN.md §5.3): how the
// paper's "users can decide how much storage it can occupy and can apply
// replacement algorithms ... such as FIFO or LRU" knobs trade local disk
// for bandwidth on a version rollout.
type ExtCacheResult struct {
	Series string `json:"series"`
	// UniqueBytes is the rollout's total unique gear-file volume — the
	// 100% cache point.
	UniqueBytes int64           `json:"uniqueBytes"`
	Points      []ExtCachePoint `json:"points"`
}

// extCacheFracs are the swept capacities (fractions of unique bytes).
var extCacheFracs = []float64{0, 0.5, 0.25, 0.1}

// RunExtCache rolls one client through every redis version per
// (capacity, policy) configuration and measures remote traffic.
func RunExtCache(cfg Config) (*ExtCacheResult, error) {
	const seriesName = "redis"
	co, err := cfg.newCorpus([]string{seriesName})
	if err != nil {
		return nil, err
	}
	series := co.Series()
	r, err := cfg.buildRig(co, series, false)
	if err != nil {
		return nil, err
	}
	s := series[0]

	res := &ExtCacheResult{
		Series:      seriesName,
		UniqueBytes: r.gear.Stats().LogicalBytes,
	}
	for _, frac := range extCacheFracs {
		for _, policy := range []cache.Policy{cache.FIFO, cache.LRU} {
			if frac == 0 && policy == cache.FIFO {
				continue // unlimited cache never evicts; one policy suffices
			}
			capacity := int64(float64(res.UniqueBytes) * frac)
			d, err := dockersim.NewDaemon(r.docker, r.gear, dockersim.Options{
				Link:          cfg.link(100),
				CacheCapacity: capacity,
				CachePolicy:   policy,
			})
			if err != nil {
				return nil, err
			}
			// Rolling upgrade: after deploying version v, the v-1
			// container and image are deleted (the CI/CD pattern of
			// §II-D), so older files lose their index links and become
			// eviction candidates.
			var remote int64
			var prev *dockersim.Deployment
			for v := 0; v < s.NumVersions; v++ {
				access, err := accessPaths(co, seriesName, v)
				if err != nil {
					return nil, err
				}
				dep, err := d.DeployGear(gearRef(seriesName), s.Tags()[v], access, 0)
				if err != nil {
					return nil, err
				}
				remote += dep.Pull.Bytes + dep.Run.Bytes
				if prev != nil {
					if _, err := prev.Destroy(); err != nil {
						return nil, err
					}
					if err := d.GearStore().RemoveIndex(prev.Ref); err != nil {
						return nil, err
					}
				}
				prev = dep
			}
			// Rollback: an incident forces v01 back into service.
			access, err := accessPaths(co, seriesName, 0)
			if err != nil {
				return nil, err
			}
			rb, err := d.DeployGear(gearRef(seriesName), s.Tags()[0], access, 0)
			if err != nil {
				return nil, err
			}
			cs := d.GearStore().CacheStats()
			res.Points = append(res.Points, ExtCachePoint{
				CapacityFrac:  frac,
				Policy:        policy.String(),
				RemoteBytes:   remote,
				RollbackBytes: rb.Pull.Bytes + rb.Run.Bytes,
				Evictions:     cs.Evictions,
				HitRatio:      cs.HitRatio(),
			})
		}
	}
	return res, nil
}

func runExtCache(cfg Config, w io.Writer) error {
	res, err := RunExtCache(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the sweep.
func (r *ExtCacheResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s rollout, level-1 cache sweep (unique gear bytes: %s)\n",
		r.Series, mb(r.UniqueBytes))
	fmt.Fprintf(w, "%-10s %-8s %12s %12s %10s %10s\n",
		"capacity", "policy", "rollout", "rollback", "evictions", "hit ratio")
	for _, p := range r.Points {
		capacity := "unlimited"
		if p.CapacityFrac > 0 {
			capacity = fmt.Sprintf("%.0f%%", p.CapacityFrac*100)
		}
		fmt.Fprintf(w, "%-10s %-8s %12s %12s %10d %9.2f\n",
			capacity, p.Policy, mb(p.RemoteBytes), mb(p.RollbackBytes), p.Evictions, p.HitRatio)
	}
	fmt.Fprintln(w, "pin-aware eviction keeps the rollout itself bandwidth-neutral even at 10%;")
	fmt.Fprintln(w, "the cost of a tight cache appears on rollback, when evicted versions return")
}
