package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/gear-image/gear/internal/corpus"
	"github.com/gear-image/gear/internal/dockersim"
	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/peer"
)

// ExtP2PPoint is one (fleet size, WAN bandwidth) sample of the
// peer-to-peer distribution sweep. Each point runs the same rolling
// deployment twice — peers disabled (the extload configuration) and
// peers enabled — over identical corpora and registries.
type ExtP2PPoint struct {
	// Nodes is the fleet size.
	Nodes int `json:"nodes"`
	// WANMbps is the paper-quoted registry uplink per node; the cluster
	// LAN stays at 1000 Mbps.
	WANMbps float64 `json:"wanMbps"`
	// BaselineEgress is total registry egress with peers disabled.
	BaselineEgress int64 `json:"baselineEgress"`
	// P2PEgress is total registry egress with the peer exchange on.
	P2PEgress int64 `json:"p2pEgress"`
	// LANBytes is the volume Gear files moved between peers instead.
	LANBytes int64 `json:"lanBytes"`
	// PeerObjects counts Gear files served peer-to-peer.
	PeerObjects int64 `json:"peerObjects"`
	// BaselineMeanTime/P2PMeanTime are mean per-deployment times.
	BaselineMeanTime time.Duration `json:"baselineMeanTime"`
	P2PMeanTime      time.Duration `json:"p2pMeanTime"`
	// ParityOK reports that every node received exactly the same bytes
	// in both passes (WAN in the baseline, WAN+LAN with peers): the
	// exchange moves traffic off the registry, it does not change what a
	// node downloads.
	ParityOK bool `json:"parityOK"`
}

// EgressSaving returns the registry-egress reduction peers bought.
func (p *ExtP2PPoint) EgressSaving() float64 {
	if p.BaselineEgress == 0 {
		return 0
	}
	return 1 - float64(p.P2PEgress)/float64(p.BaselineEgress)
}

// ExtP2PResult is the fleet-scale peer-to-peer distribution experiment:
// the extload rollout rerun with a cluster tracker and peer exchange,
// sweeping fleet size and WAN bandwidth. The first node to deploy seeds
// the cluster from the registry; every later node finds each Gear file
// on a peer and pulls it over the LAN instead.
type ExtP2PResult struct {
	// Series is the deployed image series.
	Series string `json:"series"`
	// Versions is the rolling-deployment depth per node.
	Versions int           `json:"versions"`
	LANMbps  float64       `json:"lanMbps"`
	Points   []ExtP2PPoint `json:"points"`
}

// extP2PSweep is the swept (fleet size, WAN Mbps) axis: fleet growth at
// the paper's 20 Mbps edge uplink, plus a 100 Mbps contrast point.
var extP2PSweep = []struct {
	nodes int
	wan   float64
}{
	{1, 20},
	{2, 20},
	{4, 20},
	{8, 20},
	{8, 100},
}

// extP2PLANMbps is the cluster-internal bandwidth for every point.
const extP2PLANMbps = 1000

// RunExtP2P deploys one series' versions across fleets of daemons, with
// and without the peer exchange, and measures where the bytes came
// from. Fleet size 1 pins the degeneration: a lone node finds no peers,
// moves nothing over the LAN, and costs the registry exactly the
// baseline egress.
func RunExtP2P(cfg Config) (*ExtP2PResult, error) {
	if cfg.VersionsPerSeries <= 0 || cfg.VersionsPerSeries > 4 {
		cfg.VersionsPerSeries = 4
	}
	co, err := cfg.newCorpus([]string{"nginx"})
	if err != nil {
		return nil, err
	}
	series := co.Series()
	r, err := cfg.buildRig(co, series, false)
	if err != nil {
		return nil, err
	}
	s := series[0]
	compute, err := co.TaskCompute(s.Name)
	if err != nil {
		return nil, err
	}

	res := &ExtP2PResult{Series: s.Name, Versions: s.NumVersions, LANMbps: extP2PLANMbps}
	for _, pt := range extP2PSweep {
		point := ExtP2PPoint{Nodes: pt.nodes, WANMbps: pt.wan}

		// Pass 1 — peers disabled: independent daemons, the extload
		// configuration at this fleet size and bandwidth.
		baseBytes := make([]int64, pt.nodes)
		var baseTotal time.Duration
		for n := 0; n < pt.nodes; n++ {
			d, err := cfg.newDaemon(r, pt.wan)
			if err != nil {
				return nil, err
			}
			got, total, err := rollout(co, d, s, compute)
			if err != nil {
				return nil, err
			}
			baseBytes[n] = got
			point.BaselineEgress += got
			baseTotal += total
		}

		// Pass 2 — peers enabled: one topology, one tracker, every
		// daemon's cache exported to the cluster.
		topo, err := netsim.NewTopology(cfg.link(pt.wan), cfg.link(extP2PLANMbps))
		if err != nil {
			return nil, err
		}
		tracker := peer.NewTracker()
		network := peer.NewStaticNetwork()
		daemons := make([]*dockersim.Daemon, pt.nodes)
		for n := 0; n < pt.nodes; n++ {
			id := fmt.Sprintf("node%d", n)
			d, err := dockersim.NewDaemon(r.docker, r.gear, dockersim.Options{
				Links:               topo.Node(id),
				Peers:               peer.NewExchange(id, tracker, network),
				GearRequestBytes:    int64(900 * cfg.Scale),
				SlackerRequestBytes: int64(120 * cfg.Scale),
			})
			if err != nil {
				return nil, err
			}
			d.GearStore().Cache().SetHooks(tracker.Hooks(id))
			// Peers serve compressed like the registry, so a node receives
			// the same wire bytes whichever source answers.
			network.Add(id, peer.NewServer(id, d.GearStore().Cache(),
				peer.ServerOptions{Compress: true}))
			daemons[n] = d
		}
		point.ParityOK = true
		var p2pTotal time.Duration
		for n, d := range daemons {
			got, total, err := rollout(co, d, s, compute)
			if err != nil {
				return nil, err
			}
			lan := d.PeerLink().Stats().Bytes
			if got+lan != baseBytes[n] {
				point.ParityOK = false
			}
			point.P2PEgress += got
			p2pTotal += total
			st := d.GearStore().Stats()
			point.PeerObjects += st.PeerObjects
			tracker.ReportServed(int(st.PeerObjects), st.PeerBytes, int(st.RemoteObjects), st.RemoteBytes)
		}
		point.LANBytes = topo.LANStats().Bytes

		deploys := time.Duration(pt.nodes * s.NumVersions)
		point.BaselineMeanTime = baseTotal / deploys
		point.P2PMeanTime = p2pTotal / deploys
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// rollout deploys every version of s on d in order, returning the WAN
// bytes moved and the summed deployment time.
func rollout(co *corpus.Corpus, d *dockersim.Daemon, s corpus.Series, compute time.Duration) (int64, time.Duration, error) {
	var bytes int64
	var total time.Duration
	for v := 0; v < s.NumVersions; v++ {
		access, err := accessPaths(co, s.Name, v)
		if err != nil {
			return 0, 0, err
		}
		dep, err := d.DeployGear(gearRef(s.Name), s.Tags()[v], access, compute)
		if err != nil {
			return 0, 0, err
		}
		bytes += dep.Pull.Bytes + dep.Run.Bytes
		total += dep.Total()
	}
	return bytes, total, nil
}

func runExtP2P(cfg Config, w io.Writer) error {
	res, err := RunExtP2P(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the fleet/bandwidth sweep.
func (r *ExtP2PResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s rolling deployment (%d versions/node), %g Mbps cluster LAN\n",
		r.Series, r.Versions, r.LANMbps)
	fmt.Fprintf(w, "%-6s %5s %14s %14s %12s %11s %11s %7s\n",
		"nodes", "wan", "registry egress", "with peers", "lan bytes",
		"base deploy", "p2p deploy", "parity")
	for i := range r.Points {
		p := &r.Points[i]
		fmt.Fprintf(w, "%-6d %5g %14s %14s %12s %11s %11s %7v\n",
			p.Nodes, p.WANMbps, mb(p.BaselineEgress), mb(p.P2PEgress), mb(p.LANBytes),
			p.BaselineMeanTime.Round(time.Millisecond),
			p.P2PMeanTime.Round(time.Millisecond), p.ParityOK)
	}
	for i := range r.Points {
		p := &r.Points[i]
		if p.Nodes > 1 {
			fmt.Fprintf(w, "%d nodes @ %g Mbps: peers cut registry egress by %.1f%% (%d files served peer-to-peer)\n",
				p.Nodes, p.WANMbps, p.EgressSaving()*100, p.PeerObjects)
		} else if p.LANBytes == 0 && p.P2PEgress == p.BaselineEgress {
			fmt.Fprintf(w, "%d node @ %g Mbps: degenerates exactly — zero peer traffic, baseline egress\n",
				p.Nodes, p.WANMbps)
		}
	}
}
