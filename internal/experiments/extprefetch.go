package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/gear-image/gear/internal/dockersim"
	"github.com/gear-image/gear/internal/prefetch"
)

// ExtPrefetchPoint is one (profile coverage, WAN bandwidth) sample of
// the profile-guided startup prefetch sweep. Each point deploys the
// same image twice on fresh hosts: without a profile (the lazy-fault
// baseline) and with a profile truncated to the given coverage replayed
// before the run phase.
type ExtPrefetchPoint struct {
	// Coverage is the fraction of the recorded profile replayed (head of
	// the access order): 0 = no entries, 1 = the full trace.
	Coverage float64 `json:"coverage"`
	// WANMbps is the paper-quoted registry bandwidth.
	WANMbps float64 `json:"wanMbps"`
	// BaselineStall/GuidedStall are the run-phase demand-stall times.
	BaselineStall time.Duration `json:"baselineStall"`
	GuidedStall   time.Duration `json:"guidedStall"`
	// BaselineMisses/GuidedMisses count blocking demand faults.
	BaselineMisses int64 `json:"baselineMisses"`
	GuidedMisses   int64 `json:"guidedMisses"`
	// BaselineBytes/GuidedBytes are total WAN bytes for the deploy
	// (pull + prefetch + run); the replay must never inflate them.
	BaselineBytes int64 `json:"baselineBytes"`
	GuidedBytes   int64 `json:"guidedBytes"`
	// PrefetchBytes is the share of GuidedBytes moved by the replay.
	PrefetchBytes int64 `json:"prefetchBytes"`
	// PrefetchHits/PrefetchWasted report replay effectiveness: objects
	// the run consumed from the warmed cache vs objects it never read.
	PrefetchHits   int64 `json:"prefetchHits"`
	PrefetchWasted int64 `json:"prefetchWasted"`
	// BaselineTotal/GuidedTotal are full deployment times
	// (pull + prefetch + run).
	BaselineTotal time.Duration `json:"baselineTotal"`
	GuidedTotal   time.Duration `json:"guidedTotal"`
}

// StallReduction returns the demand-stall reduction the replay bought.
func (p *ExtPrefetchPoint) StallReduction() float64 {
	if p.BaselineStall == 0 {
		return 0
	}
	return 1 - float64(p.GuidedStall)/float64(p.BaselineStall)
}

// ExtPrefetchResult is the profile-guided startup prefetch experiment:
// a cold deploy records the image's startup profile, then redeploys on
// fresh hosts replay it at varying coverage and bandwidth, measuring
// how much run-phase demand stall the replay removes.
type ExtPrefetchResult struct {
	// Series is the deployed image series.
	Series string `json:"series"`
	// ProfileEntries is the recorded profile's length (first accesses).
	ProfileEntries int                `json:"profileEntries"`
	Points         []ExtPrefetchPoint `json:"points"`
}

// extPrefetchSweep is the swept (coverage, WAN Mbps) axis: the paper's
// 20 Mbps edge bandwidth across coverage levels, plus a 100 Mbps
// contrast column at full coverage.
var extPrefetchSweep = []struct {
	coverage float64
	wan      float64
}{
	{0, 20},
	{0.5, 20},
	{1, 20},
	{1, 100},
}

// RunExtPrefetch records a startup profile from a cold deploy and
// replays truncations of it on fresh hosts against no-profile
// baselines. Coverage 0 pins the degeneration: an empty profile moves
// nothing and the deploy matches the baseline exactly.
func RunExtPrefetch(cfg Config) (*ExtPrefetchResult, error) {
	if cfg.VersionsPerSeries <= 0 || cfg.VersionsPerSeries > 1 {
		cfg.VersionsPerSeries = 1
	}
	co, err := cfg.newCorpus([]string{"nginx"})
	if err != nil {
		return nil, err
	}
	series := co.Series()
	r, err := cfg.buildRig(co, series, false)
	if err != nil {
		return nil, err
	}
	s := series[0]
	compute, err := co.TaskCompute(s.Name)
	if err != nil {
		return nil, err
	}
	access, err := accessPaths(co, s.Name, 0)
	if err != nil {
		return nil, err
	}
	ref, tag := gearRef(s.Name), s.Tags()[0]

	deploy := func(wan float64, lib *prefetch.Library) (*dockersim.Deployment, error) {
		d, err := dockersim.NewDaemon(r.docker, r.gear, dockersim.Options{
			Link:                cfg.link(wan),
			GearRequestBytes:    int64(900 * cfg.Scale),
			SlackerRequestBytes: int64(120 * cfg.Scale),
			Profiles:            lib,
			Telemetry:           cfg.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		return d.DeployGear(ref, tag, access, compute)
	}

	// Recording pass: a cold deploy persists the image's access trace.
	recLib := prefetch.NewLibrary()
	if _, err := deploy(100, recLib); err != nil {
		return nil, err
	}
	profile, err := recLib.Get(ref + ":" + tag)
	if err != nil {
		return nil, fmt.Errorf("recording deploy persisted no profile: %w", err)
	}

	res := &ExtPrefetchResult{Series: s.Name, ProfileEntries: len(profile.Entries)}
	for _, pt := range extPrefetchSweep {
		point := ExtPrefetchPoint{Coverage: pt.coverage, WANMbps: pt.wan}

		base, err := deploy(pt.wan, nil)
		if err != nil {
			return nil, err
		}
		point.BaselineStall = base.DemandStall
		point.BaselineMisses = base.DemandMisses
		point.BaselineBytes = base.Pull.Bytes + base.Run.Bytes
		point.BaselineTotal = base.Total()

		lib := prefetch.NewLibrary()
		if err := lib.Put(profile.Truncate(pt.coverage)); err != nil {
			return nil, err
		}
		guided, err := deploy(pt.wan, lib)
		if err != nil {
			return nil, err
		}
		point.GuidedStall = guided.DemandStall
		point.GuidedMisses = guided.DemandMisses
		point.GuidedBytes = guided.Pull.Bytes + guided.Prefetch.Bytes + guided.Run.Bytes
		point.PrefetchBytes = guided.Prefetch.Bytes
		point.PrefetchHits = guided.PrefetchHits
		point.PrefetchWasted = guided.PrefetchWasted
		point.GuidedTotal = guided.Total()

		res.Points = append(res.Points, point)
	}
	return res, nil
}

func runExtPrefetch(cfg Config, w io.Writer) error {
	res, err := RunExtPrefetch(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the coverage/bandwidth sweep.
func (r *ExtPrefetchResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s warm-profile redeploy, %d-entry startup profile\n", r.Series, r.ProfileEntries)
	fmt.Fprintf(w, "%-8s %5s %12s %12s %9s %10s %11s %6s %7s\n",
		"coverage", "wan", "base stall", "with profile", "reduction",
		"prefetched", "total bytes", "hits", "wasted")
	for i := range r.Points {
		p := &r.Points[i]
		fmt.Fprintf(w, "%-8s %5g %12s %12s %8.1f%% %10s %11s %6d %7d\n",
			fmt.Sprintf("%.0f%%", p.Coverage*100), p.WANMbps,
			p.BaselineStall.Round(time.Millisecond),
			p.GuidedStall.Round(time.Millisecond),
			p.StallReduction()*100,
			mb(p.PrefetchBytes), mb(p.GuidedBytes),
			p.PrefetchHits, p.PrefetchWasted)
	}
	for i := range r.Points {
		p := &r.Points[i]
		switch {
		case p.Coverage == 1 && p.WANMbps == 20:
			fmt.Fprintf(w, "full profile @ %g Mbps: %.1f%% less demand stall, same total bytes (%s vs %s)\n",
				p.WANMbps, p.StallReduction()*100, mb(p.GuidedBytes), mb(p.BaselineBytes))
		case p.Coverage == 0 && p.GuidedBytes == p.BaselineBytes && p.PrefetchBytes == 0:
			fmt.Fprintf(w, "empty profile @ %g Mbps: degenerates exactly — zero prefetch traffic, baseline stall\n",
				p.WANMbps)
		}
	}
}
