package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/gear-image/gear/internal/corpus"
	"github.com/gear-image/gear/internal/fleet"
)

// ExtFleetPoint is one (scenario, fleet size) sample of the fleet-scale
// scenario sweep.
type ExtFleetPoint struct {
	Scenario string `json:"scenario"`
	Nodes    int    `json:"nodes"`
	// Deploys counts every container deployment the scenario scripted.
	Deploys int64 `json:"deploys"`
	// WANBytes is total registry egress; LANBytes is what the cluster
	// absorbed peer-to-peer instead; PeerObjects counts Gear files
	// served by peers.
	WANBytes    int64 `json:"wanBytes"`
	LANBytes    int64 `json:"lanBytes"`
	PeerObjects int64 `json:"peerObjects"`
	// MeanDeploy/MaxDeploy summarize per-deployment virtual time.
	MeanDeploy time.Duration `json:"meanDeploy"`
	MaxDeploy  time.Duration `json:"maxDeploy"`
	// Fingerprint is the run's canonical-result hash — the value replay
	// checks compare across runs of the same (scenario, seed).
	Fingerprint string `json:"fingerprint"`
}

// ExtFleetResult is the fleet-scale scenario harness experiment:
// scripted flash-crowd, churn, failover, and mixed workloads over
// thousand-node simulated fleets, every run reproducible from
// (scenario, seed).
type ExtFleetResult struct {
	Series string `json:"series"`
	// Versions is the published version depth scenarios roll through.
	Versions int             `json:"versions"`
	Seed     int64           `json:"seed"`
	Points   []ExtFleetPoint `json:"points"`
	// ReplayOK reports that re-running the first sweep point on a fresh
	// harness reproduced a bit-identical result (same fingerprint) —
	// the determinism contract, checked on every run.
	ReplayOK bool `json:"replayOK"`
}

// extFleetSweep is the (scenario, fleet size) axis: flash-crowd growth
// up to the thousand-node fleet, plus the churn, failover, and mixed
// scenarios at a mid-size fleet.
var extFleetSweep = []struct {
	kind  fleet.Kind
	nodes int
}{
	{fleet.FlashCrowd, 16},
	{fleet.FlashCrowd, 64},
	{fleet.FlashCrowd, 256},
	{fleet.FlashCrowd, 1024},
	{fleet.Churn, 64},
	{fleet.Failover, 64},
	{fleet.Mixed, 64},
}

// RunExtFleet runs the scenario sweep. Sweep-point harnesses publish
// into cfg.Telemetry (when set) so whole-run counters land in one
// snapshot; the replay check runs on private registries so its
// bit-for-bit comparison is free of cross-run accumulation.
func RunExtFleet(cfg Config) (*ExtFleetResult, error) {
	if cfg.Scale <= 0 {
		// BuildWorkload would default a zero scale; reject it here so an
		// invalid config fails fast like every other experiment.
		return nil, fmt.Errorf("extfleet: scale %g: %w", cfg.Scale, corpus.ErrBadScale)
	}
	if cfg.VersionsPerSeries <= 0 || cfg.VersionsPerSeries > 4 {
		cfg.VersionsPerSeries = 4
	}
	wl, err := fleet.BuildWorkload(fleet.WorkloadOptions{
		Seed:     cfg.Seed,
		Scale:    cfg.Scale,
		Series:   "nginx",
		Versions: cfg.VersionsPerSeries,
	})
	if err != nil {
		return nil, err
	}
	res := &ExtFleetResult{Series: wl.Series, Versions: wl.Versions(), Seed: cfg.Seed}

	run := func(kind fleet.Kind, nodes int, shared bool) (*fleet.Result, string, error) {
		opts := fleet.Options{Nodes: nodes, Seed: cfg.Seed, Peers: true}
		if shared {
			opts.Telemetry = cfg.Telemetry
		}
		h, err := fleet.New(wl, opts)
		if err != nil {
			return nil, "", err
		}
		r, err := h.Run(kind)
		if err != nil {
			return nil, "", err
		}
		fp, err := r.Fingerprint()
		if err != nil {
			return nil, "", err
		}
		return r, fp, nil
	}

	for _, sw := range extFleetSweep {
		r, fp, err := run(sw.kind, sw.nodes, true)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ExtFleetPoint{
			Scenario:    string(sw.kind),
			Nodes:       sw.nodes,
			Deploys:     r.TotalDeploys,
			WANBytes:    r.WANBytes,
			LANBytes:    r.LANBytes,
			PeerObjects: r.PeerObjects,
			MeanDeploy:  r.MeanDeploy,
			MaxDeploy:   r.MaxDeploy,
			Fingerprint: fp,
		})
	}

	// Replay check: the first sweep point, twice, on private registries.
	first := extFleetSweep[0]
	_, fp1, err := run(first.kind, first.nodes, false)
	if err != nil {
		return nil, err
	}
	_, fp2, err := run(first.kind, first.nodes, false)
	if err != nil {
		return nil, err
	}
	res.ReplayOK = fp1 == fp2
	return res, nil
}

func runExtFleet(cfg Config, w io.Writer) error {
	res, err := RunExtFleet(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the scenario sweep.
func (r *ExtFleetResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s fleet scenarios (%d versions, seed %d), peers on\n",
		r.Series, r.Versions, r.Seed)
	fmt.Fprintf(w, "%-12s %6s %8s %14s %14s %12s %12s %12s\n",
		"scenario", "nodes", "deploys", "registry egress", "lan bytes",
		"peer files", "mean deploy", "max deploy")
	for i := range r.Points {
		p := &r.Points[i]
		fmt.Fprintf(w, "%-12s %6d %8d %14s %14s %12d %12s %12s\n",
			p.Scenario, p.Nodes, p.Deploys, mb(p.WANBytes), mb(p.LANBytes),
			p.PeerObjects,
			p.MeanDeploy.Round(time.Microsecond),
			p.MaxDeploy.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "replay determinism: ok=%v (same (scenario, seed) reproduces bit-identical results)\n", r.ReplayOK)
}
