package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/gear-image/gear/internal/corpus"
)

// Fig9Bandwidths are the paper's link speeds, Mbps.
var Fig9Bandwidths = []float64{904, 100, 20, 5}

// Fig9Cell is one (bandwidth, category, mode) aggregate.
type Fig9Cell struct {
	Pull time.Duration `json:"pull"`
	Run  time.Duration `json:"run"`
}

// Total returns pull+run.
func (c Fig9Cell) Total() time.Duration { return c.Pull + c.Run }

// Fig9Band is one bandwidth's measurements.
type Fig9Band struct {
	Mbps float64 `json:"mbps"`
	// Docker/GearCold/GearWarm map category -> average phase times.
	Docker   map[corpus.Category]Fig9Cell `json:"docker"`
	GearCold map[corpus.Category]Fig9Cell `json:"gearCold"`
	GearWarm map[corpus.Category]Fig9Cell `json:"gearWarm"`
	// SpeedupCold/SpeedupWarm are overall Docker/Gear total-time ratios.
	SpeedupCold float64 `json:"speedupCold"`
	SpeedupWarm float64 `json:"speedupWarm"`
}

// Fig9Result is the deployment-time study across bandwidths.
type Fig9Result struct {
	Bands []Fig9Band `json:"bands"`
}

// RunFig9 deploys the selected corpus at each bandwidth in three modes
// and averages pull/run phases per category.
func RunFig9(cfg Config) (*Fig9Result, error) {
	co, err := cfg.newCorpus(nil)
	if err != nil {
		return nil, err
	}
	series := cfg.pickSeries(co)
	r, err := cfg.buildRig(co, series, false)
	if err != nil {
		return nil, err
	}

	res := &Fig9Result{}
	for _, mbps := range Fig9Bandwidths {
		band := Fig9Band{
			Mbps:     mbps,
			Docker:   make(map[corpus.Category]Fig9Cell),
			GearCold: make(map[corpus.Category]Fig9Cell),
			GearWarm: make(map[corpus.Category]Fig9Cell),
		}
		counts := make(map[corpus.Category]int)
		var dockerSum, coldSum, warmSum time.Duration

		for _, s := range series {
			warm, err := cfg.newDaemon(r, mbps)
			if err != nil {
				return nil, err
			}
			compute, err := co.TaskCompute(s.Name)
			if err != nil {
				return nil, err
			}
			for v := 0; v < s.NumVersions; v++ {
				access, err := accessPaths(co, s.Name, v)
				if err != nil {
					return nil, err
				}
				tag := s.Tags()[v]

				dd, err := cfg.newDaemon(r, mbps)
				if err != nil {
					return nil, err
				}
				dockerDep, err := dd.DeployDocker(s.Name, tag, access, compute)
				if err != nil {
					return nil, err
				}
				cd, err := cfg.newDaemon(r, mbps)
				if err != nil {
					return nil, err
				}
				coldDep, err := cd.DeployGear(gearRef(s.Name), tag, access, compute)
				if err != nil {
					return nil, err
				}
				warmDep, err := warm.DeployGear(gearRef(s.Name), tag, access, compute)
				if err != nil {
					return nil, err
				}

				cat := s.Category
				counts[cat]++
				addCell(band.Docker, cat, dockerDep.Pull.Time, dockerDep.Run.Time)
				addCell(band.GearCold, cat, coldDep.Pull.Time, coldDep.Run.Time)
				addCell(band.GearWarm, cat, warmDep.Pull.Time, warmDep.Run.Time)
				dockerSum += dockerDep.Total()
				coldSum += coldDep.Total()
				warmSum += warmDep.Total()
			}
		}
		for cat, n := range counts {
			band.Docker[cat] = divCell(band.Docker[cat], n)
			band.GearCold[cat] = divCell(band.GearCold[cat], n)
			band.GearWarm[cat] = divCell(band.GearWarm[cat], n)
		}
		if coldSum > 0 {
			band.SpeedupCold = float64(dockerSum) / float64(coldSum)
		}
		if warmSum > 0 {
			band.SpeedupWarm = float64(dockerSum) / float64(warmSum)
		}
		res.Bands = append(res.Bands, band)
	}
	return res, nil
}

func addCell(m map[corpus.Category]Fig9Cell, cat corpus.Category, pull, run time.Duration) {
	c := m[cat]
	c.Pull += pull
	c.Run += run
	m[cat] = c
}

func divCell(c Fig9Cell, n int) Fig9Cell {
	c.Pull /= time.Duration(n)
	c.Run /= time.Duration(n)
	return c
}

func runFig9(cfg Config, w io.Writer) error {
	res, err := RunFig9(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// paperFig9 anchors: overall speedups (warm, cold) the paper quotes per
// bandwidth.
var paperFig9 = map[float64][2]float64{
	904: {1.64, 1.40},
	100: {2.61, 1.92},
	20:  {3.45, 2.23},
	5:   {5.01, 2.95},
}

// Print renders one block per bandwidth with per-category pull/run rows.
func (r *Fig9Result) Print(w io.Writer) {
	for _, band := range r.Bands {
		fmt.Fprintf(w, "-- %g Mbps --\n", band.Mbps)
		fmt.Fprintf(w, "%-22s %22s %22s %22s\n",
			"category", "docker (pull+run)", "gear cold", "gear warm")
		for _, cat := range corpus.Categories() {
			d, ok := band.Docker[cat]
			if !ok {
				continue
			}
			g := band.GearCold[cat]
			gw := band.GearWarm[cat]
			fmt.Fprintf(w, "%-22s %10s +%10s %10s +%10s %10s +%10s\n",
				cat,
				d.Pull.Round(time.Millisecond), d.Run.Round(time.Millisecond),
				g.Pull.Round(time.Millisecond), g.Run.Round(time.Millisecond),
				gw.Pull.Round(time.Millisecond), gw.Run.Round(time.Millisecond))
		}
		anchors := paperFig9[band.Mbps]
		fmt.Fprintf(w, "speedup: gear warm %.2fx (paper %.2fx), gear cold %.2fx (paper %.2fx)\n",
			band.SpeedupWarm, anchors[0], band.SpeedupCold, anchors[1])
	}
}
