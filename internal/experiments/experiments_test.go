package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/gear-image/gear/internal/corpus"
	"github.com/gear-image/gear/internal/dedup"
)

// mini is an even smaller config than Quick for unit tests; experiments
// assert direction/shape, not calibrated magnitudes, at this scale.
func mini() Config {
	return Config{
		Seed:              99,
		Scale:             0.15,
		VersionsPerSeries: 3,
		SeriesPerCategory: 1,
		ChunkSize:         512,
		SlackerBlockSize:  512,
	}
}

func TestRunDispatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("no-such-experiment", mini(), &buf); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("err = %v, want ErrUnknownExperiment", err)
	}
	ids := IDs()
	if len(ids) != 19 || ids[0] != "inventory" || ids[18] != "extchunk" {
		t.Errorf("ids = %v", ids)
	}
	for _, id := range ids {
		if _, err := Result(id, Config{}); err == nil {
			// Result should fail fast on an invalid (zero) config rather
			// than succeed with a nonsense corpus.
			t.Errorf("Result(%s) accepted a zero config", id)
		}
	}
	if _, err := Result("nope", mini()); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("Result err = %v", err)
	}
	for _, r := range All() {
		if r.Title == "" || r.Run == nil {
			t.Errorf("runner %s incomplete", r.ID)
		}
	}
}

func TestBandwidthScale(t *testing.T) {
	cfg := Default()
	if got := cfg.BandwidthScale(904); got != 0.904 {
		t.Errorf("BandwidthScale(904) = %f at scale 1.0", got)
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := RunTable2(mini())
	if err != nil {
		t.Fatal(err)
	}
	if res.Images != 18 { // 6 categories x 1 series x 3 versions
		t.Errorf("images = %d, want 18", res.Images)
	}
	rows := make(map[dedup.Granularity]dedup.Report)
	for _, r := range res.Rows {
		rows[r.Granularity] = r
	}
	if !(rows[dedup.None].StorageBytes > rows[dedup.Layer].StorageBytes &&
		rows[dedup.Layer].StorageBytes > rows[dedup.File].StorageBytes) {
		t.Errorf("storage not monotone: %+v", res.Rows)
	}
	if rows[dedup.Chunk].Objects <= rows[dedup.File].Objects {
		t.Error("chunk objects not above file objects")
	}
	if rows[dedup.CDC].Objects < rows[dedup.File].Objects {
		t.Error("cdc row missing or below file objects")
	}
	if rows[dedup.None].Objects != 18 {
		t.Errorf("none objects = %d", rows[dedup.None].Objects)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "chunk/file object blowup") {
		t.Error("print missing blowup line")
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := RunFig2(mini())
	if err != nil {
		t.Fatal(err)
	}
	if res.Average <= 0.1 || res.Average >= 0.9 {
		t.Errorf("average redundancy = %.2f, out of plausible range", res.Average)
	}
	for cat, v := range res.ByCategory {
		if v < 0 || v > 1 {
			t.Errorf("%s redundancy = %f", cat, v)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "average") {
		t.Error("print missing average")
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := RunFig6(mini())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i-1].AvgUncompressedBytes > res.Series[i].AvgUncompressedBytes {
			t.Error("series not sorted by size")
		}
	}
	for _, s := range res.Series {
		if s.AvgHDD <= 0 || s.AvgSSD <= 0 {
			t.Errorf("%s: zero conversion time", s.Name)
		}
		if s.AvgSSD >= s.AvgHDD {
			t.Errorf("%s: ssd %v not faster than hdd %v", s.Name, s.AvgSSD, s.AvgHDD)
		}
	}
	if res.AvgHDD <= 0 {
		t.Error("zero average")
	}
	// Size-to-time proportionality is asserted in convert's own tests
	// with controlled file counts; at mini scale the min-files-per-package
	// floor decouples byte size from file count, so only the extremes are
	// compared here.
	var smallest, largest Fig6Series
	for i, s := range res.Series {
		if i == 0 || s.AvgUncompressedBytes < smallest.AvgUncompressedBytes {
			smallest = s
		}
		if i == 0 || s.AvgUncompressedBytes > largest.AvgUncompressedBytes {
			largest = s
		}
	}
	if largest.AvgUncompressedBytes > 4*smallest.AvgUncompressedBytes &&
		largest.AvgHDD <= smallest.AvgHDD {
		t.Errorf("4x larger %s (%v) not slower than %s (%v)",
			largest.Name, largest.AvgHDD, smallest.Name, smallest.AvgHDD)
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := RunFig7(mini())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Categories) != 6 {
		t.Fatalf("categories = %d", len(res.Categories))
	}
	for _, row := range res.Categories {
		if row.DockerBytes <= 0 || row.GearBytes <= 0 {
			t.Errorf("%s: empty registries", row.Category)
		}
	}
	if res.Overall.Saving() <= 0 {
		t.Errorf("overall saving = %.2f, want positive", res.Overall.Saving())
	}
	if res.AvgIndexBytes <= 0 || res.IndexShare <= 0 || res.IndexShare > 0.25 {
		t.Errorf("index accounting: avg %d bytes, share %.3f", res.AvgIndexBytes, res.IndexShare)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "overall") {
		t.Error("print missing overall row")
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := RunFig8(mini())
	if err != nil {
		t.Fatal(err)
	}
	if !(res.WarmShare < res.ColdShare && res.ColdShare < 1) {
		t.Errorf("shares not ordered: warm %.2f cold %.2f", res.WarmShare, res.ColdShare)
	}
	for _, row := range res.Categories {
		if row.GearWarmBytes > row.GearColdBytes {
			t.Errorf("%s: warm %d > cold %d", row.Category, row.GearWarmBytes, row.GearColdBytes)
		}
		if row.GearColdBytes >= row.DockerBytes {
			t.Errorf("%s: gear cold %d >= docker %d", row.Category, row.GearColdBytes, row.DockerBytes)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := RunFig9(mini())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bands) != 4 {
		t.Fatalf("bands = %d", len(res.Bands))
	}
	prevWarm := 0.0
	for _, band := range res.Bands {
		if band.SpeedupWarm < band.SpeedupCold {
			t.Errorf("%g Mbps: warm speedup %.2f < cold %.2f",
				band.Mbps, band.SpeedupWarm, band.SpeedupCold)
		}
		if band.SpeedupWarm < prevWarm {
			t.Errorf("%g Mbps: speedup %.2f decreased as bandwidth dropped (prev %.2f)",
				band.Mbps, band.SpeedupWarm, prevWarm)
		}
		prevWarm = band.SpeedupWarm
	}
	// At the lowest bandwidth Gear must be clearly faster.
	last := res.Bands[len(res.Bands)-1]
	if last.SpeedupWarm < 1.3 {
		t.Errorf("5 Mbps warm speedup = %.2f, want > 1.3", last.SpeedupWarm)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "5 Mbps") {
		t.Error("print missing bandwidth header")
	}
}

func TestFig10Shape(t *testing.T) {
	cfg := mini()
	cfg.VersionsPerSeries = 6
	res, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bands) != 2 {
		t.Fatalf("bands = %d", len(res.Bands))
	}
	for _, band := range res.Bands {
		if len(band.Points) != 6 {
			t.Fatalf("points = %d", len(band.Points))
		}
		// Gear's later versions benefit from file sharing.
		if band.Points[5].Gear >= band.Points[0].Gear {
			t.Errorf("%g Mbps: gear v6 (%v) not faster than v1 (%v)",
				band.Mbps, band.Points[5].Gear, band.Points[0].Gear)
		}
	}
	// At 100 Mbps Gear beats both on average.
	slow := res.Bands[1]
	if slow.AvgG >= slow.AvgD {
		t.Errorf("100 Mbps: gear avg %v not faster than docker %v", slow.AvgG, slow.AvgD)
	}
	// Slacker degrades with bandwidth much more than Gear (many small
	// block transfers).
	gearSlowdown := float64(res.Bands[1].AvgG) / float64(res.Bands[0].AvgG)
	slackerSlowdown := float64(res.Bands[1].AvgS) / float64(res.Bands[0].AvgS)
	if slackerSlowdown <= gearSlowdown {
		t.Errorf("slacker slowdown %.2f not worse than gear %.2f", slackerSlowdown, gearSlowdown)
	}
}

func TestFig11Shape(t *testing.T) {
	cfg := mini()
	res, err := RunFig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Services) != 4 {
		t.Fatalf("services = %d", len(res.Services))
	}
	for _, s := range res.Services {
		if n := s.Normalized(); n < 0.7 || n > 1.3 {
			t.Errorf("%s normalized rate = %.3f, want ~1.0", s.Name, n)
		}
	}
	if res.GearShort.Destroy >= res.DockerShort.Destroy {
		t.Errorf("gear destroy %v not faster than docker %v",
			res.GearShort.Destroy, res.DockerShort.Destroy)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "short-running") {
		t.Error("print missing short-running block")
	}
}

func TestExtLoadShape(t *testing.T) {
	res, err := RunExtLoad(mini())
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 8 || res.Deploys != 3 {
		t.Errorf("shape = %d clients x %d deploys", res.Clients, res.Deploys)
	}
	if res.GearEgress >= res.DockerEgress {
		t.Errorf("gear egress %d not below docker %d", res.GearEgress, res.DockerEgress)
	}
	if res.GearMeanTime >= res.DockerMeanTime {
		t.Errorf("gear mean %v not below docker %v", res.GearMeanTime, res.DockerMeanTime)
	}
	if s := res.EgressSaving(); s < 0.3 {
		t.Errorf("egress saving = %.2f, want > 0.3", s)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "registry egress") {
		t.Error("print missing egress line")
	}
}

func TestInventoryShape(t *testing.T) {
	res, err := RunInventory(mini())
	if err != nil {
		t.Fatal(err)
	}
	if res.Series != 6 || res.Images != 18 || len(res.Categories) != 6 {
		t.Fatalf("shape = %d series / %d images / %d categories",
			res.Series, res.Images, len(res.Categories))
	}
	for _, row := range res.Categories {
		if row.AvgImageBytes <= 0 || row.AvgFiles <= 0 {
			t.Errorf("%s: empty stats", row.Category)
		}
		// At mini scale the min-files-per-package floor inflates the hot
		// share; only sanity-check the range here (the calibrated window
		// of 12-26% is verified at full scale in EXPERIMENTS.md).
		if row.NecessaryRatio <= 0 || row.NecessaryRatio >= 1 {
			t.Errorf("%s: necessary ratio %.2f out of range", row.Category, row.NecessaryRatio)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "corpus:") {
		t.Error("print missing summary")
	}
}

func TestExtCacheShape(t *testing.T) {
	res, err := RunExtCache(mini())
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueBytes <= 0 || len(res.Points) != 7 {
		t.Fatalf("shape = %d bytes, %d points", res.UniqueBytes, len(res.Points))
	}
	unlimited := res.Points[0]
	if unlimited.Evictions != 0 {
		t.Errorf("unlimited cache evicted %d times", unlimited.Evictions)
	}
	// Tighter caches can only fetch as much or more.
	for _, p := range res.Points[1:] {
		if p.RemoteBytes < unlimited.RemoteBytes {
			t.Errorf("%v/%s fetched less (%d) than unlimited (%d)",
				p.CapacityFrac, p.Policy, p.RemoteBytes, unlimited.RemoteBytes)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "unlimited") {
		t.Error("print missing unlimited row")
	}
}

func TestExtParallelShape(t *testing.T) {
	res, err := RunExtParallel(mini())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(extParallelWorkers) || res.Deploys == 0 {
		t.Fatalf("shape = %d points, %d deploys", len(res.Points), res.Deploys)
	}
	base := res.Points[0]
	if base.Workers != 1 || base.Speedup != 1 {
		t.Errorf("baseline point = workers %d, speedup %.2f", base.Workers, base.Speedup)
	}
	for i, p := range res.Points {
		// Parallelism must not change what is fetched.
		if p.Bytes != base.Bytes || p.Requests != base.Requests {
			t.Errorf("workers=%d: bytes/requests = %d/%d, want %d/%d",
				p.Workers, p.Bytes, p.Requests, base.Bytes, base.Requests)
		}
		// Deploy time is monotonically non-increasing in workers.
		if i > 0 && p.DeployTime > res.Points[i-1].DeployTime {
			t.Errorf("deploy time rose from workers=%d (%v) to workers=%d (%v)",
				res.Points[i-1].Workers, res.Points[i-1].DeployTime, p.Workers, p.DeployTime)
		}
	}
	if last := res.Points[len(res.Points)-1]; last.Speedup < 1 {
		t.Errorf("workers=%d slower than serial: speedup %.2f", last.Workers, last.Speedup)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "workers") {
		t.Error("print missing workers column")
	}
}

func TestExtPushShape(t *testing.T) {
	res, err := RunExtPush(mini())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(extPushWorkers) || res.Images == 0 {
		t.Fatalf("shape = %d points, %d images", len(res.Points), res.Images)
	}
	base := res.Points[0]
	if base.Workers != 1 || base.Speedup != 1 {
		t.Errorf("baseline point = workers %d, speedup %.2f", base.Workers, base.Speedup)
	}
	if base.Uploaded == 0 || base.Skipped == 0 {
		t.Errorf("rollout uploaded %d / skipped %d; want both nonzero", base.Uploaded, base.Skipped)
	}
	// The batch protocol pays one query round trip per image.
	if base.QueryRoundTrips != int64(res.Images) {
		t.Errorf("query round trips = %d, want one per image (%d)", base.QueryRoundTrips, res.Images)
	}
	for i, p := range res.Points {
		// Parallelism must not change what is pushed.
		if p.Uploaded != base.Uploaded || p.UploadedBytes != base.UploadedBytes ||
			p.Skipped != base.Skipped || p.DedupRatio != base.DedupRatio {
			t.Errorf("workers=%d: uploads/bytes/dedup = %d/%d/%.4f, want %d/%d/%.4f",
				p.Workers, p.Uploaded, p.UploadedBytes, p.DedupRatio,
				base.Uploaded, base.UploadedBytes, base.DedupRatio)
		}
		// Push time is monotonically non-increasing in workers.
		if i > 0 && p.PushTime > res.Points[i-1].PushTime {
			t.Errorf("push time rose from workers=%d (%v) to workers=%d (%v)",
				res.Points[i-1].Workers, res.Points[i-1].PushTime, p.Workers, p.PushTime)
		}
	}
	if last := res.Points[len(res.Points)-1]; last.Speedup < 1 {
		t.Errorf("workers=%d slower than serial: speedup %.2f", last.Workers, last.Speedup)
	}
	// The dedup fast path: a fully present image costs one QueryBatch
	// round trip and zero uploads.
	if res.WarmQueryRoundTrips != 1 || res.WarmUploads != 0 {
		t.Errorf("warm re-push = %d round trips, %d uploads; want 1, 0",
			res.WarmQueryRoundTrips, res.WarmUploads)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "dedup") {
		t.Error("print missing dedup column")
	}
}

func TestExtP2PShape(t *testing.T) {
	res, err := RunExtP2P(mini())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(extP2PSweep) || res.Versions == 0 {
		t.Fatalf("shape = %d points, %d versions", len(res.Points), res.Versions)
	}
	for i := range res.Points {
		p := &res.Points[i]
		// The exchange never changes what a node receives, only where
		// the bytes come from.
		if !p.ParityOK {
			t.Errorf("%d nodes @ %g Mbps: per-node received bytes differ between passes",
				p.Nodes, p.WANMbps)
		}
		if p.Nodes == 1 {
			// Single-node degeneration is exact: no peers to find, zero
			// LAN traffic, byte-identical registry egress.
			if p.LANBytes != 0 || p.PeerObjects != 0 {
				t.Errorf("lone node moved %d LAN bytes / %d peer objects", p.LANBytes, p.PeerObjects)
			}
			if p.P2PEgress != p.BaselineEgress {
				t.Errorf("lone node egress = %d with peers, %d without", p.P2PEgress, p.BaselineEgress)
			}
		} else {
			if p.LANBytes == 0 || p.PeerObjects == 0 {
				t.Errorf("%d nodes: no peer traffic", p.Nodes)
			}
			if p.P2PEgress >= p.BaselineEgress {
				t.Errorf("%d nodes: peers did not reduce egress (%d vs %d)",
					p.Nodes, p.P2PEgress, p.BaselineEgress)
			}
		}
		// Baseline clients are independent and deterministic, so fleet
		// egress is exactly linear in the fleet size.
		if base := res.Points[0].BaselineEgress; p.BaselineEgress != base*int64(p.Nodes) {
			t.Errorf("%d nodes baseline egress = %d, want %d x %d",
				p.Nodes, p.BaselineEgress, p.Nodes, base)
		}
	}
	// The acceptance point: 8 peers on a 20 Mbps uplink cut registry
	// egress by at least half.
	for i := range res.Points {
		p := &res.Points[i]
		if p.Nodes == 8 && p.WANMbps == 20 && p.EgressSaving() < 0.5 {
			t.Errorf("8 nodes @ 20 Mbps saved %.1f%%, want >= 50%%", p.EgressSaving()*100)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "registry egress") {
		t.Error("print missing egress column")
	}
}

func TestPickSeriesRespectsCap(t *testing.T) {
	cfg := mini()
	co, err := cfg.newCorpus(nil)
	if err != nil {
		t.Fatal(err)
	}
	picked := cfg.pickSeries(co)
	counts := make(map[corpus.Category]int)
	for _, s := range picked {
		counts[s.Category]++
	}
	for cat, n := range counts {
		if n > 1 {
			t.Errorf("%s picked %d series, cap 1", cat, n)
		}
	}
	cfg.SeriesPerCategory = 0
	if got := len(cfg.pickSeries(co)); got != 50 {
		t.Errorf("uncapped pick = %d series", got)
	}
}

// TestRunAllMini drives the "all" dispatch end to end — every experiment
// runs and prints at mini scale in one pass.
func TestRunAllMini(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := Run("all", mini(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range IDs() {
		if !strings.Contains(out, "=== "+id) {
			t.Errorf("report missing section %s", id)
		}
	}
}

func TestExtPrefetchShape(t *testing.T) {
	res, err := RunExtPrefetch(mini())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(extPrefetchSweep) || res.ProfileEntries == 0 {
		t.Fatalf("shape = %d points, %d profile entries", len(res.Points), res.ProfileEntries)
	}
	for i := range res.Points {
		p := &res.Points[i]
		// The replay moves recorded objects early; it never adds WAN
		// traffic the lazy baseline would not have pulled.
		if p.GuidedBytes != p.BaselineBytes {
			t.Errorf("coverage %g @ %g Mbps: guided moved %d bytes, baseline %d",
				p.Coverage, p.WANMbps, p.GuidedBytes, p.BaselineBytes)
		}
		if p.Coverage == 0 {
			// Empty-profile degeneration is exact: nothing prefetched,
			// stall and misses identical to the baseline.
			if p.PrefetchBytes != 0 || p.PrefetchHits != 0 {
				t.Errorf("empty profile prefetched %d bytes, %d hits",
					p.PrefetchBytes, p.PrefetchHits)
			}
			if p.GuidedStall != p.BaselineStall || p.GuidedMisses != p.BaselineMisses {
				t.Errorf("empty profile changed stall %v->%v, misses %d->%d",
					p.BaselineStall, p.GuidedStall, p.BaselineMisses, p.GuidedMisses)
			}
		} else {
			if p.PrefetchBytes == 0 || p.PrefetchHits == 0 {
				t.Errorf("coverage %g: no prefetch traffic or hits", p.Coverage)
			}
			if p.GuidedStall >= p.BaselineStall {
				t.Errorf("coverage %g @ %g Mbps: stall not reduced (%v vs %v)",
					p.Coverage, p.WANMbps, p.GuidedStall, p.BaselineStall)
			}
			if p.GuidedMisses >= p.BaselineMisses {
				t.Errorf("coverage %g: misses not reduced (%d vs %d)",
					p.Coverage, p.GuidedMisses, p.BaselineMisses)
			}
		}
		if p.Coverage == 1 {
			// The whole startup trace is warm: the run phase never
			// touches the registry.
			if p.GuidedMisses != 0 || p.GuidedStall != 0 {
				t.Errorf("full coverage left %d misses, %v stall", p.GuidedMisses, p.GuidedStall)
			}
			if p.PrefetchWasted != 0 {
				t.Errorf("full coverage wasted %d prefetched objects", p.PrefetchWasted)
			}
		}
	}
	// The acceptance point: a warm profile at the paper's 20 Mbps edge
	// link removes at least 40% of the demand stall.
	for i := range res.Points {
		p := &res.Points[i]
		if p.Coverage == 1 && p.WANMbps == 20 && p.StallReduction() < 0.4 {
			t.Errorf("full profile @ 20 Mbps reduced stall %.1f%%, want >= 40%%",
				p.StallReduction()*100)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "less demand stall") {
		t.Error("print missing stall-reduction summary")
	}
}

func TestExtShardShape(t *testing.T) {
	res, err := RunExtShard(mini())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(extShardSweep) || res.Versions == 0 {
		t.Fatalf("shape = %d points, %d versions", len(res.Points), res.Versions)
	}
	one := &res.Points[0]
	if one.Shards != 1 || one.Replication != 1 {
		t.Fatalf("first point = %d shards x %d replicas, want 1x1", one.Shards, one.Replication)
	}
	// The 1-shard/1-replica tier degenerates exactly to the single-node
	// registry: same client bytes, same deploy times, one shard serving
	// the whole tier.
	if one.ClientEgress != res.BaselineEgress {
		t.Errorf("1-shard client egress = %d, baseline %d", one.ClientEgress, res.BaselineEgress)
	}
	if one.MeanDeploy != res.BaselineMeanTime {
		t.Errorf("1-shard mean deploy = %v, baseline %v", one.MeanDeploy, res.BaselineMeanTime)
	}
	if one.MaxShardEgress != one.TierEgress {
		t.Errorf("1-shard max = %d, tier = %d", one.MaxShardEgress, one.TierEgress)
	}
	for i := range res.Points {
		p := &res.Points[i]
		// Sharding changes who serves, never what a client downloads.
		if !p.ParityOK {
			t.Errorf("%d shards: per-client bytes differ from baseline", p.Shards)
		}
		if p.ClientEgress != one.ClientEgress {
			t.Errorf("%d shards: client egress = %d, want %d", p.Shards, p.ClientEgress, one.ClientEgress)
		}
		if p.TierEgress != one.TierEgress {
			t.Errorf("%d shards: tier egress = %d, want %d", p.Shards, p.TierEgress, one.TierEgress)
		}
		if p.MeanDeploy != res.BaselineMeanTime {
			t.Errorf("%d shards: mean deploy = %v, want %v", p.Shards, p.MeanDeploy, res.BaselineMeanTime)
		}
		// Splitting the tier strictly sheds load off the hottest shard...
		if i > 0 {
			prev := &res.Points[i-1]
			if p.MaxShardEgress >= prev.MaxShardEgress {
				t.Errorf("%d shards: max shard egress %d did not drop from %d at %d shards",
					p.Shards, p.MaxShardEgress, prev.MaxShardEgress, prev.Shards)
			}
			if p.MaxShardServe >= prev.MaxShardServe {
				t.Errorf("%d shards: max shard busy %v did not drop from %v at %d shards",
					p.Shards, p.MaxShardServe, prev.MaxShardServe, prev.Shards)
			}
		}
	}
	// ...and near-linearly: even at this tiny object population the
	// 8-shard tier's hottest member carries well under half the 1-shard
	// load (the quick/default corpus lands near the ideal 1/8).
	last := &res.Points[len(res.Points)-1]
	if 2*last.MaxShardEgress >= one.MaxShardEgress {
		t.Errorf("8-shard hottest egress %d, not even 2x below 1-shard %d",
			last.MaxShardEgress, one.MaxShardEgress)
	}
	if 2*last.MaxShardServe >= one.MaxShardServe {
		t.Errorf("8-shard hottest busy %v, not even 2x below 1-shard %v",
			last.MaxShardServe, one.MaxShardServe)
	}
	f := &res.Failover
	if f.Shards != extShardFailAt || f.Replication != 2 || f.Killed == "" {
		t.Fatalf("failover pass = %+v", f)
	}
	if f.Failovers == 0 {
		t.Error("killed the busiest shard but saw no failovers")
	}
	if !f.ParityOK {
		t.Error("failover pass: per-client bytes differ from baseline")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	for _, want := range []string{"tier egress", "failover", "parity"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("print missing %q", want)
		}
	}
}

func TestExtHedgeShape(t *testing.T) {
	// Quick, not mini: the p99-gain acceptance bound needs a corpus big
	// enough that the straggler tail clears the healthy size tail.
	res, err := RunExtHedge(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 || res.Objects == 0 || res.SlowShard == "" {
		t.Fatalf("shape = %d cells, %d objects, slow shard %q",
			len(res.Cells), res.Objects, res.SlowShard)
	}
	if res.ReadsPerCell != res.Rounds*res.Objects {
		t.Fatalf("reads per cell = %d, want %d x %d", res.ReadsPerCell, res.Rounds, res.Objects)
	}
	cell := func(policy string, straggle bool) *ExtHedgeCell {
		t.Helper()
		for i := range res.Cells {
			if res.Cells[i].Policy == policy && res.Cells[i].Straggler == straggle {
				return &res.Cells[i]
			}
		}
		t.Fatalf("no cell (%s, %v)", policy, straggle)
		return nil
	}
	// Acceptance: identical client bytes in every cell, exact rank-order
	// degeneration with the zero read options, tail rescued at bounded
	// extra egress.
	if !res.ParityOK {
		t.Error("client bytes differ across read policies")
	}
	if !res.DegenerationOK {
		t.Error("rank-order cells deviated from the primary-only path")
	}
	if res.P99Gain < 3 {
		t.Errorf("straggler p99 gain = %.2fx, want >= 3x", res.P99Gain)
	}
	if !res.WasteOK || res.WasteShare >= 0.05 {
		t.Errorf("hedge waste share = %.4f, want < 0.05", res.WasteShare)
	}
	// The straggler must actually hurt the rank-order policy...
	rankSlow, rankOK := cell("primary", true), cell("primary", false)
	if rankSlow.P99 <= 2*rankOK.P99 {
		t.Errorf("straggler p99 %v vs healthy %v: straggler had no bite", rankSlow.P99, rankOK.P99)
	}
	// ...while balancing routes around it: its read share collapses
	// versus the rank-order run.
	balSlow := cell("balanced", true)
	if balSlow.SlowShardReadShare*2 >= rankSlow.SlowShardReadShare {
		t.Errorf("balanced slow-shard share %.3f, rank-order %.3f: balancer did not avoid it",
			balSlow.SlowShardReadShare, rankSlow.SlowShardReadShare)
	}
	if balSlow.BalancedReads == 0 {
		t.Error("balanced cell recorded no balanced reads")
	}
	// Hedges are insurance: against a straggler some must fire and win;
	// with every shard healthy the size-aware trigger keeps quiet.
	hedgeSlow, hedgeOK := cell("hedged", true), cell("hedged", false)
	if hedgeSlow.HedgesFired == 0 || hedgeSlow.HedgesWon == 0 {
		t.Errorf("straggler hedged cell fired %d won %d, want both > 0",
			hedgeSlow.HedgesFired, hedgeSlow.HedgesWon)
	}
	if hedgeOK.HedgeWasteBytes*20 >= hedgeOK.ClientBytes {
		t.Errorf("healthy hedged cell wasted %d of %d client bytes",
			hedgeOK.HedgeWasteBytes, hedgeOK.ClientBytes)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	for _, want := range []string{"p99", "straggler", "hedge extra egress", "degeneration"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("print missing %q", want)
		}
	}
}

func TestExtChunkShape(t *testing.T) {
	res, err := RunExtChunk(mini())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 || len(res.Degen) != 2 {
		t.Fatalf("points = %d, degen = %d", len(res.Points), len(res.Degen))
	}
	for _, p := range res.Points {
		if !p.ParityOK {
			t.Errorf("point %dKB/%dKB/%dKB: client bytes not exact",
				p.FileBytes>>10, p.ChunkAvg>>10, p.WindowBytes>>10)
		}
		if !p.WindowOK || p.PeakWindowBytes == 0 {
			t.Errorf("point %dKB/%dKB/%dKB: window peak %d vs budget %d",
				p.FileBytes>>10, p.ChunkAvg>>10, p.WindowBytes>>10,
				p.PeakWindowBytes, p.WindowBytes)
		}
		if p.Chunks < 2 {
			t.Errorf("file %d at avg %d produced %d chunks", p.FileBytes, p.ChunkAvg, p.Chunks)
		}
		// The startup read must stall on strictly less than the file, and
		// the modeled stall must drop accordingly.
		if p.DemandBytes >= p.FileBytes || p.DemandBytes < p.HeadBytes {
			t.Errorf("demand bytes %d outside (%d, %d)", p.DemandBytes, p.HeadBytes, p.FileBytes)
		}
		if p.FirstReadStall >= p.WholeFileStall {
			t.Errorf("first-read stall %v not below whole-file %v", p.FirstReadStall, p.WholeFileStall)
		}
	}
	for _, d := range res.Degen {
		if !d.BytesExact || !d.TimingExact || !d.ParityOK {
			t.Errorf("degeneration at %d bytes: %+v", d.FileBytes, d)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	for _, want := range []string{"stall reduction", "degeneration", "parity"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("print missing %q", want)
		}
	}
}
