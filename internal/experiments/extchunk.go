package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gear/store"
	"github.com/gear-image/gear/internal/gear/viewer"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/vfs"
)

// The chunked lazy-loading study: the AI/big-model workload of the
// ROADMAP — a container whose startup touches only the head of one
// large model file. Whole-file Gear stalls that startup on the entire
// file; content-defined chunking stalls it on just the chunks the read
// overlaps, faulted through the bounded fetch window. The sweep runs
// file size x chunk size x window budget, verifies exact client byte
// parity and the window's peak-occupancy bound, and checks that a
// build with chunking disabled degenerates to the whole-file path in
// both bytes and modeled timing.

// ExtChunkPoint is one (file size, chunk size, window budget) sample.
type ExtChunkPoint struct {
	FileBytes   int64 `json:"fileBytes"`
	ChunkAvg    int64 `json:"chunkAvg"`
	WindowBytes int64 `json:"windowBytes"`
	// Chunks is how many pieces the CDC policy cut the file into.
	Chunks int `json:"chunks"`
	// HeadBytes is the startup read; DemandRequests/DemandBytes are the
	// wire traffic it faulted (only the overlapping chunks).
	HeadBytes      int64 `json:"headBytes"`
	DemandRequests int64 `json:"demandRequests"`
	DemandBytes    int64 `json:"demandBytes"`
	// FirstReadStall is the modeled link time of the demand traffic;
	// WholeFileStall is what the same read stalls on the unchunked path
	// (the entire file, one request).
	FirstReadStall time.Duration `json:"firstReadStall"`
	WholeFileStall time.Duration `json:"wholeFileStall"`
	// PeakWindowBytes is the measured high-water mark of in-flight chunk
	// bytes across the full-file read; WindowOK asserts it stayed within
	// the configured budget.
	PeakWindowBytes int64 `json:"peakWindowBytes"`
	WindowOK        bool  `json:"windowOK"`
	// ParityOK reports the head read, the full read, and the total wire
	// volume were all byte-exact.
	ParityOK bool `json:"parityOK"`
}

// ExtChunkDegen is the degeneration check for one file size: chunking
// disabled at build time must reproduce the whole-file path exactly —
// one request, the whole file on the wire, and the identical modeled
// stall.
type ExtChunkDegen struct {
	FileBytes int64         `json:"fileBytes"`
	Requests  int64         `json:"requests"`
	WireBytes int64         `json:"wireBytes"`
	Stall     time.Duration `json:"stall"`
	// BytesExact is one-request/whole-file equality; TimingExact is
	// stall equality with the chunked points' WholeFileStall reference;
	// ParityOK is client byte equality.
	BytesExact  bool `json:"bytesExact"`
	TimingExact bool `json:"timingExact"`
	ParityOK    bool `json:"parityOK"`
}

// ExtChunkResult is the chunked lazy-loading sweep.
type ExtChunkResult struct {
	WANMbps float64         `json:"wanMbps"`
	Points  []ExtChunkPoint `json:"points"`
	Degen   []ExtChunkDegen `json:"degen"`
}

// Sweep axes. Every file exceeds every policy's maximum chunk size
// (4x the average), so each point actually chunks; window budgets stay
// at or above the maximum chunk size so the bound is a true ceiling
// rather than the oversized-chunk serial degeneration.
var (
	extChunkFiles   = []int64{256 << 10, 1 << 20}
	extChunkAvgs    = []int64{8 << 10, 32 << 10}
	extChunkWindows = []int64{128 << 10, 512 << 10}
)

const extChunkWANMbps = 20

// extChunkModel builds the one-big-file image: /model of size bytes
// plus a tiny launcher, from the run's seeded stream.
func extChunkModel(seed, size int64) (*vfs.FS, []byte, error) {
	root := vfs.New()
	model := make([]byte, size)
	rand.New(rand.NewSource(seed ^ size)).Read(model)
	if err := root.WriteFile("/model", model, 0o644); err != nil {
		return nil, nil, err
	}
	if err := root.MkdirAll("/bin", 0o755); err != nil {
		return nil, nil, err
	}
	if err := root.WriteFile("/bin/start", []byte("#!/bin/sh\nexec serve /model\n"), 0o755); err != nil {
		return nil, nil, err
	}
	return root, model, nil
}

// extChunkDeploy publishes root under pol into a fresh registry and
// returns a store-backed viewer over it. The registry stores raw bytes
// (Compress off) so wire volume equals chunk volume exactly.
func extChunkDeploy(root *vfs.FS, pol index.ChunkPolicy, window int64) (*store.Store, *viewer.Viewer, error) {
	ix, pool, err := index.BuildPolicy("ai", "v1", imagefmt.Config{}, root, nil, pol, 1)
	if err != nil {
		return nil, nil, err
	}
	reg := gearregistry.New(gearregistry.Options{})
	for fp, data := range pool {
		if err := reg.Upload(fp, data); err != nil {
			return nil, nil, err
		}
	}
	s, err := store.New(store.Options{Remote: reg, ChunkWindowBytes: window})
	if err != nil {
		return nil, nil, err
	}
	if err := s.AddIndex(ix); err != nil {
		return nil, nil, err
	}
	v, err := s.CreateContainer("c1", "ai:v1")
	if err != nil {
		return nil, nil, err
	}
	return s, v, nil
}

// RunExtChunk sweeps file size x chunk size x window budget over the
// big-model startup read and verifies the degeneration path.
func RunExtChunk(cfg Config) (*ExtChunkResult, error) {
	res := &ExtChunkResult{WANMbps: extChunkWANMbps}
	linkCfg := cfg.link(extChunkWANMbps)

	for _, fileSize := range extChunkFiles {
		root, model, err := extChunkModel(cfg.Seed, fileSize)
		if err != nil {
			return nil, err
		}
		headBytes := fileSize / 8

		// The whole-file reference: one request carrying the full file.
		wholeLink, err := netsim.NewLink(linkCfg)
		if err != nil {
			return nil, err
		}
		wholeStall, err := wholeLink.TransferQuote(1, fileSize)
		if err != nil {
			return nil, err
		}

		for _, avg := range extChunkAvgs {
			chunks, err := index.CDCChunks(avg).Split(model)
			if err != nil {
				return nil, err
			}
			for _, window := range extChunkWindows {
				point := ExtChunkPoint{
					FileBytes:      fileSize,
					ChunkAvg:       avg,
					WindowBytes:    window,
					Chunks:         len(chunks),
					HeadBytes:      headBytes,
					WholeFileStall: wholeStall,
				}
				s, v, err := extChunkDeploy(root, index.CDCChunks(avg), window)
				if err != nil {
					return nil, err
				}
				head, err := v.ReadAt("/model", 0, headBytes)
				if err != nil {
					return nil, err
				}
				st := s.Stats()
				point.DemandRequests = st.RemoteObjects
				point.DemandBytes = st.RemoteBytes
				link, err := netsim.NewLink(linkCfg)
				if err != nil {
					return nil, err
				}
				if point.FirstReadStall, err = link.TransferQuote(int(point.DemandRequests), point.DemandBytes); err != nil {
					return nil, err
				}
				// Full read: every remaining chunk faults through the window.
				full, err := v.ReadFile("/model")
				if err != nil {
					return nil, err
				}
				after := s.Stats()
				point.PeakWindowBytes = s.ChunkWindowPeak()
				point.WindowOK = point.PeakWindowBytes <= window
				point.ParityOK = bytes.Equal(head, model[:headBytes]) &&
					bytes.Equal(full, model) &&
					after.RemoteBytes == fileSize &&
					after.RemoteObjects == int64(len(chunks))
				res.Points = append(res.Points, point)
			}
		}

		// Degeneration: chunking off reproduces the whole-file path in
		// bytes and modeled timing.
		s, v, err := extChunkDeploy(root, index.ChunkPolicy{}, 0)
		if err != nil {
			return nil, err
		}
		head, err := v.ReadAt("/model", 0, headBytes)
		if err != nil {
			return nil, err
		}
		st := s.Stats()
		degen := ExtChunkDegen{
			FileBytes: fileSize,
			Requests:  st.RemoteObjects,
			WireBytes: st.RemoteBytes,
		}
		degenLink, err := netsim.NewLink(linkCfg)
		if err != nil {
			return nil, err
		}
		if degen.Stall, err = degenLink.TransferQuote(int(st.RemoteObjects), st.RemoteBytes); err != nil {
			return nil, err
		}
		degen.BytesExact = st.RemoteObjects == 1 && st.RemoteBytes == fileSize
		degen.TimingExact = degen.Stall == wholeStall
		degen.ParityOK = bytes.Equal(head, model[:headBytes])
		res.Degen = append(res.Degen, degen)
	}
	return res, nil
}

func runExtChunk(cfg Config, w io.Writer) error {
	res, err := RunExtChunk(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the sweep.
func (r *ExtChunkResult) Print(w io.Writer) {
	fmt.Fprintf(w, "big-model startup read (head 1/8 of file) @ %g Mbps\n", r.WANMbps)
	fmt.Fprintf(w, "%-9s %-9s %-9s %7s %10s %12s %12s %10s %7s %7s\n",
		"file", "chunk", "window", "chunks", "demand", "first stall", "whole stall", "peak win", "bound", "parity")
	for i := range r.Points {
		p := &r.Points[i]
		fmt.Fprintf(w, "%-9s %-9s %-9s %7d %10s %12s %12s %10s %7v %7v\n",
			kb(p.FileBytes), kb(p.ChunkAvg), kb(p.WindowBytes), p.Chunks,
			kb(p.DemandBytes), p.FirstReadStall.Round(time.Microsecond),
			p.WholeFileStall.Round(time.Microsecond), kb(p.PeakWindowBytes),
			p.WindowOK, p.ParityOK)
	}
	for i := range r.Points {
		p := &r.Points[i]
		if p.FirstReadStall > 0 && i == 0 {
			fmt.Fprintf(w, "stall reduction at first point = %.1fx\n",
				float64(p.WholeFileStall)/float64(p.FirstReadStall))
		}
	}
	for _, d := range r.Degen {
		fmt.Fprintf(w, "degeneration %s: %d req / %s wire, stall %v (bytes exact %v, timing exact %v, parity %v)\n",
			kb(d.FileBytes), d.Requests, kb(d.WireBytes), d.Stall.Round(time.Microsecond),
			d.BytesExact, d.TimingExact, d.ParityOK)
	}
}

// kb renders bytes as KB.
func kb(n int64) string { return fmt.Sprintf("%d KB", n>>10) }
