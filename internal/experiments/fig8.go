package experiments

import (
	"fmt"
	"io"

	"github.com/gear-image/gear/internal/corpus"
)

// Fig8Category is one category's per-deployment transfer volume.
type Fig8Category struct {
	Category corpus.Category `json:"category"`
	Deploys  int             `json:"deploys"`
	// DockerBytes / GearColdBytes / GearWarmBytes are average bytes
	// transferred per deployment in each mode.
	DockerBytes   int64 `json:"dockerBytes"`
	GearColdBytes int64 `json:"gearColdBytes"`
	GearWarmBytes int64 `json:"gearWarmBytes"`
}

// Fig8Result is the bandwidth study: bytes moved per deployment under
// Docker (full image), Gear with an empty local cache, and Gear with a
// maintained cache.
type Fig8Result struct {
	Categories []Fig8Category `json:"categories"`
	// ColdShare is gear-cold bytes / docker bytes overall (paper: 29.1%,
	// i.e. a 70.9% reduction).
	ColdShare float64 `json:"coldShare"`
	// WarmShare is gear-warm bytes / docker bytes overall (paper: 16.2%).
	WarmShare float64 `json:"warmShare"`
}

// RunFig8 deploys every selected image three ways and accumulates
// transfer volumes.
func RunFig8(cfg Config) (*Fig8Result, error) {
	co, err := cfg.newCorpus(nil)
	if err != nil {
		return nil, err
	}
	series := cfg.pickSeries(co)
	r, err := cfg.buildRig(co, series, false)
	if err != nil {
		return nil, err
	}

	byCat := make(map[corpus.Category]*Fig8Category)
	var dockerTotal, coldTotal, warmTotal int64

	for _, s := range series {
		// Warm-cache daemon persists across the series' versions.
		warm, err := cfg.newDaemon(r, 904)
		if err != nil {
			return nil, err
		}
		row := byCat[s.Category]
		if row == nil {
			row = &Fig8Category{Category: s.Category}
			byCat[s.Category] = row
		}
		for v := 0; v < s.NumVersions; v++ {
			access, err := accessPaths(co, s.Name, v)
			if err != nil {
				return nil, err
			}
			tag := s.Tags()[v]

			// Docker: fresh daemon, full image each time.
			dd, err := cfg.newDaemon(r, 904)
			if err != nil {
				return nil, err
			}
			dockerDep, err := dd.DeployDocker(s.Name, tag, access, 0)
			if err != nil {
				return nil, err
			}

			// Gear cold: fresh daemon (empty cache) each time.
			cd, err := cfg.newDaemon(r, 904)
			if err != nil {
				return nil, err
			}
			coldDep, err := cd.DeployGear(gearRef(s.Name), tag, access, 0)
			if err != nil {
				return nil, err
			}

			// Gear warm: persistent daemon.
			warmDep, err := warm.DeployGear(gearRef(s.Name), tag, access, 0)
			if err != nil {
				return nil, err
			}

			row.Deploys++
			row.DockerBytes += dockerDep.Pull.Bytes + dockerDep.Run.Bytes
			row.GearColdBytes += coldDep.Pull.Bytes + coldDep.Run.Bytes
			row.GearWarmBytes += warmDep.Pull.Bytes + warmDep.Run.Bytes
		}
	}

	res := &Fig8Result{}
	for _, cat := range corpus.Categories() {
		row, ok := byCat[cat]
		if !ok {
			continue
		}
		dockerTotal += row.DockerBytes
		coldTotal += row.GearColdBytes
		warmTotal += row.GearWarmBytes
		n := int64(row.Deploys)
		row.DockerBytes /= n
		row.GearColdBytes /= n
		row.GearWarmBytes /= n
		res.Categories = append(res.Categories, *row)
	}
	if dockerTotal > 0 {
		res.ColdShare = float64(coldTotal) / float64(dockerTotal)
		res.WarmShare = float64(warmTotal) / float64(dockerTotal)
	}
	return res, nil
}

func runFig8(cfg Config, w io.Writer) error {
	res, err := RunFig8(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders per-category transfer volumes and the headline shares.
func (r *Fig8Result) Print(w io.Writer) {
	fmt.Fprintf(w, "%-22s %8s %12s %14s %14s\n",
		"category", "deploys", "docker", "gear (cold)", "gear (cache)")
	for _, row := range r.Categories {
		fmt.Fprintf(w, "%-22s %8d %12s %14s %14s\n",
			row.Category, row.Deploys, mb(row.DockerBytes),
			mb(row.GearColdBytes), mb(row.GearWarmBytes))
	}
	fmt.Fprintf(w, "gear cold transfers %.1f%% of docker (paper: 29.1%%)\n", r.ColdShare*100)
	fmt.Fprintf(w, "gear warm transfers %.1f%% of docker (paper: 16.2%%)\n", r.WarmShare*100)
}
