package experiments

import (
	"fmt"
	"io"

	"github.com/gear-image/gear/internal/dedup"
)

// Table2Result is the dedup-granularity study of §II-D.
type Table2Result struct {
	Rows []dedup.Report `json:"rows"`
	// Images is the corpus size analyzed.
	Images int `json:"images"`
}

// RunTable2 ingests the whole corpus into the dedup analyzer.
func RunTable2(cfg Config) (*Table2Result, error) {
	co, err := cfg.newCorpus(nil)
	if err != nil {
		return nil, err
	}
	analyzer, err := dedup.NewAnalyzer(cfg.ChunkSize)
	if err != nil {
		return nil, err
	}
	images := 0
	for _, s := range cfg.pickSeries(co) {
		for v := 0; v < s.NumVersions; v++ {
			img, err := co.Image(s.Name, v)
			if err != nil {
				return nil, err
			}
			if err := analyzer.Add(img); err != nil {
				return nil, err
			}
			images++
		}
	}
	return &Table2Result{Rows: analyzer.Reports(), Images: images}, nil
}

func runTable2(cfg Config, w io.Writer) error {
	res, err := RunTable2(cfg)
	if err != nil {
		return err
	}
	res.Print(w)
	return nil
}

// Print renders the Table II rows plus the derived ratios the paper
// quotes (layer/file/chunk savings vs none; chunk-object blowup).
func (r *Table2Result) Print(w io.Writer) {
	fmt.Fprintf(w, "%d images analyzed (chunk size %s)\n", r.Images, "per config")
	fmt.Fprintf(w, "%-12s %14s %14s %12s\n", "granularity", "storage", "raw", "objects")
	base := r.Rows[0].StorageBytes
	var fileObjects, chunkObjects int64
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %14s %14s %12d\n",
			row.Granularity, mb(row.StorageBytes), mb(row.RawBytes), row.Objects)
		switch row.Granularity {
		case dedup.File:
			fileObjects = row.Objects
		case dedup.Chunk:
			chunkObjects = row.Objects
		}
	}
	for _, row := range r.Rows[1:] {
		saving := 1 - float64(row.StorageBytes)/float64(base)
		fmt.Fprintf(w, "saving at %-7s = %5.1f%% (paper: layer 74%%, file 87%%, chunk 88%%)\n",
			row.Granularity.String(), saving*100)
	}
	if fileObjects > 0 {
		fmt.Fprintf(w, "chunk/file object blowup = %.1fx (paper: 16.4x)\n",
			float64(chunkObjects)/float64(fileObjects))
	}
}
