package slacker

import (
	"bytes"
	"errors"
	"testing"

	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

func testImage(t *testing.T, tag string, extra map[string]string) *imagefmt.Image {
	t.Helper()
	f := vfs.New()
	if err := f.MkdirAll("/opt", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/opt/big", bytes.Repeat([]byte{0x11}, 10000), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/opt/small", []byte("tiny"), 0o644); err != nil {
		t.Fatal(err)
	}
	for p, content := range extra {
		if err := f.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	img, err := imagefmt.SingleLayerImage("app", tag, f, imagefmt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func setup(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer()
	bi, err := FromImage(testImage(t, "v1", nil), DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	srv.Put(bi)
	return srv, NewClient(srv, nil)
}

func TestMountAndRead(t *testing.T) {
	_, c := setup(t)
	if err := c.Mount("c1", "app:v1"); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("c1", "/opt/big")
	if err != nil || len(got) != 10000 {
		t.Fatalf("ReadFile = %d bytes, %v", len(got), err)
	}
	got, err = c.ReadFile("c1", "/opt/small")
	if err != nil || string(got) != "tiny" {
		t.Errorf("small = %q, %v", got, err)
	}
	st := c.Stats()
	// big spans 3 blocks (10000/4096), small 1, plus metadata.
	if st.BlocksFetched < 4 {
		t.Errorf("blocks fetched = %d", st.BlocksFetched)
	}
}

func TestBlockGranularityFetchesWholeBlocks(t *testing.T) {
	_, c := setup(t)
	if err := c.Mount("c1", "app:v1"); err != nil {
		t.Fatal(err)
	}
	before := c.Stats().BytesFetched
	if _, err := c.ReadFile("c1", "/opt/small"); err != nil {
		t.Fatal(err)
	}
	delta := c.Stats().BytesFetched - before
	if delta != DefaultBlockSize {
		t.Errorf("4-byte file fetched %d bytes, want one full block %d", delta, DefaultBlockSize)
	}
}

func TestRereadUsesBlockCache(t *testing.T) {
	_, c := setup(t)
	if err := c.Mount("c1", "app:v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("c1", "/opt/big"); err != nil {
		t.Fatal(err)
	}
	before := c.Stats().BlocksFetched
	if _, err := c.ReadFile("c1", "/opt/big"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().BlocksFetched; got != before {
		t.Errorf("re-read fetched %d more blocks", got-before)
	}
}

func TestNoSharingAcrossContainers(t *testing.T) {
	// The defining Slacker limitation in Fig 10: a second container
	// re-fetches blocks the first already paged in.
	_, c := setup(t)
	if err := c.Mount("c1", "app:v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("c1", "/opt/big"); err != nil {
		t.Fatal(err)
	}
	first := c.Stats().BlocksFetched
	if err := c.Mount("c2", "app:v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("c2", "/opt/big"); err != nil {
		t.Fatal(err)
	}
	second := c.Stats().BlocksFetched - first
	if second < 3 {
		t.Errorf("second container fetched only %d blocks; sharing should not exist", second)
	}
}

func TestNoDedupOnServer(t *testing.T) {
	srv := NewServer()
	for _, tag := range []string{"v1", "v2"} {
		bi, err := FromImage(testImage(t, tag, nil), DefaultBlockSize)
		if err != nil {
			t.Fatal(err)
		}
		srv.Put(bi)
	}
	st := srv.Stats()
	if st.Images != 2 {
		t.Fatalf("images = %d", st.Images)
	}
	// Identical content stored twice: bytes ~= 2x one device.
	bi, err := srv.Get("app:v1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != 2*bi.DeviceSize() {
		t.Errorf("server bytes = %d, want %d (no dedup)", st.Bytes, 2*bi.DeviceSize())
	}
}

func TestErrors(t *testing.T) {
	c2 := NewClient(NewServer(), nil)
	if err := c2.Mount("c1", "ghost:v1"); !errors.Is(err, ErrNoImage) {
		t.Errorf("err = %v, want ErrNoImage", err)
	}
	_, client := setup(t)
	if _, err := client.ReadFile("c1", "/opt/big"); !errors.Is(err, ErrNoMount) {
		t.Errorf("err = %v, want ErrNoMount", err)
	}
	if err := client.Mount("c1", "app:v1"); err != nil {
		t.Fatal(err)
	}
	if err := client.Mount("c1", "app:v1"); !errors.Is(err, ErrMountExists) {
		t.Errorf("err = %v, want ErrMountExists", err)
	}
	if _, err := client.ReadFile("c1", "/no/such"); !errors.Is(err, ErrNotFile) {
		t.Errorf("err = %v, want ErrNotFile", err)
	}
	if err := client.Unmount("c1"); err != nil {
		t.Fatal(err)
	}
	if err := client.Unmount("c1"); !errors.Is(err, ErrNoMount) {
		t.Errorf("err = %v, want ErrNoMount", err)
	}
}

func TestOnFetchHook(t *testing.T) {
	srv := NewServer()
	bi, err := FromImage(testImage(t, "v1", nil), 0) // 0 -> default block size
	if err != nil {
		t.Fatal(err)
	}
	srv.Put(bi)
	var blocks int
	var total int64
	c := NewClient(srv, func(n int, b int64) { blocks += n; total += b })
	if err := c.Mount("c1", "app:v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("c1", "/opt/big"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if int64(blocks) != st.BlocksFetched || total != st.BytesFetched {
		t.Errorf("hook saw %d/%d, stats %+v", blocks, total, st)
	}
}

func TestEmptyFile(t *testing.T) {
	srv := NewServer()
	bi, err := FromImage(testImage(t, "v1", map[string]string{"/opt/empty": ""}), DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	srv.Put(bi)
	c := NewClient(srv, nil)
	if err := c.Mount("c1", "app:v1"); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("c1", "/opt/empty")
	if err != nil || len(got) != 0 {
		t.Errorf("empty read = %d bytes, %v", len(got), err)
	}
}

func TestMoreRequestsThanGearWouldNeed(t *testing.T) {
	// Block-granularity request inflation: reading N files costs strictly
	// more requests than N (metadata + per-block fetches).
	_, c := setup(t)
	if err := c.Mount("c1", "app:v1"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/opt/big", "/opt/small"} {
		if _, err := c.ReadFile("c1", p); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().BlocksFetched; got <= 2 {
		t.Errorf("blocks fetched = %d, want > file count", got)
	}
}
