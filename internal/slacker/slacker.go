// Package slacker implements the Slacker baseline of Fig 10 (Harter et
// al., FAST'16): a block-based remote image format. Each image is
// flattened onto a per-container virtual block device served over the
// network (the original uses LVM over NFS on a Tintri VMstore); a
// container boots immediately and pages 4 KB blocks in on demand.
//
// The two properties that distinguish Slacker from Gear in the paper's
// evaluation are modeled faithfully:
//
//   - block granularity: a file read fetches every block it spans, plus
//     per-file metadata blocks, so the request count is much higher than
//     Gear's one-request-per-file — which is why Slacker degrades faster
//     as bandwidth drops (§V-E2);
//   - no sharing: block caches are per-container and per-image, so
//     deploying version N+1 after version N re-fetches everything
//     ("Slacker's time shows little change due to the absence of sharing
//     mechanism").
package slacker

import (
	"errors"
	"fmt"
	"sync"

	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

// DefaultBlockSize is the 4 KB paging granularity.
const DefaultBlockSize = 4096

// Errors returned by slacker operations.
var (
	ErrNoImage     = errors.New("image not on block server")
	ErrNoMount     = errors.New("container has no mounted device")
	ErrMountExists = errors.New("container already mounted")
	ErrNotFile     = errors.New("not a regular file")
)

// extent locates a file's bytes on the device.
type extent struct {
	offset int64
	length int64
}

// BlockImage is one image laid out as a virtual block device.
type BlockImage struct {
	ref       string
	blockSize int64
	device    []byte
	extents   map[string]extent
	// metaBlocks is the number of filesystem-metadata blocks charged on
	// mount (superblock, inode tables) before any file is read.
	metaBlocks int
}

// FromImage flattens img onto a device image.
func FromImage(img *imagefmt.Image, blockSize int64) (*BlockImage, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	root, err := img.Flatten()
	if err != nil {
		return nil, fmt.Errorf("slacker: layout %s: %w", img.Manifest.Reference(), err)
	}
	bi := &BlockImage{
		ref:       img.Manifest.Reference(),
		blockSize: blockSize,
		extents:   make(map[string]extent),
	}
	err = root.Walk(func(p string, n *vfs.Node) error {
		if n.Type() != vfs.TypeRegular {
			return nil
		}
		data := n.Content().Data()
		// Files start block-aligned, as ext4 would place them.
		if pad := int64(len(bi.device)) % blockSize; pad != 0 {
			bi.device = append(bi.device, make([]byte, blockSize-pad)...)
		}
		bi.extents[p] = extent{offset: int64(len(bi.device)), length: int64(len(data))}
		bi.device = append(bi.device, data...)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("slacker: layout %s: %w", img.Manifest.Reference(), err)
	}
	// Metadata footprint grows with file count (inode blocks).
	bi.metaBlocks = 4 + len(bi.extents)/64
	return bi, nil
}

// Ref returns the image reference.
func (b *BlockImage) Ref() string { return b.ref }

// DeviceSize returns the virtual device size in bytes.
func (b *BlockImage) DeviceSize() int64 { return int64(len(b.device)) }

// Server hosts block images (the NFS/VMstore side). Safe for concurrent
// use.
type Server struct {
	mu     sync.RWMutex
	images map[string]*BlockImage
}

// NewServer returns an empty block server.
func NewServer() *Server {
	return &Server{images: make(map[string]*BlockImage)}
}

// Put registers an image's block layout.
func (s *Server) Put(bi *BlockImage) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.images[bi.ref] = bi
}

// Get fetches an image's layout.
func (s *Server) Get(ref string) (*BlockImage, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bi, ok := s.images[ref]
	if !ok {
		return nil, fmt.Errorf("slacker: %s: %w", ref, ErrNoImage)
	}
	return bi, nil
}

// Stats reports server-side storage: every image stores its full device
// independently — Slacker has no cross-image dedup.
type ServerStats struct {
	Images int   `json:"images"`
	Bytes  int64 `json:"bytes"`
}

// Stats returns a snapshot.
func (s *Server) Stats() ServerStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := ServerStats{Images: len(s.images)}
	for _, bi := range s.images {
		st.Bytes += bi.DeviceSize()
	}
	return st
}

// Client is one deployment host. Block caches are per-container.
type Client struct {
	server *Server
	// onFetch observes remote block fetches (count, bytes).
	onFetch func(blocks int, bytes int64)

	mu     sync.Mutex
	mounts map[string]*mountState

	blocksFetched int64
	bytesFetched  int64
}

type mountState struct {
	image  *BlockImage
	cached map[int64]bool // block index -> present locally
}

// NewClient returns a client against server. onFetch may be nil.
func NewClient(server *Server, onFetch func(blocks int, bytes int64)) *Client {
	return &Client{
		server:  server,
		onFetch: onFetch,
		mounts:  make(map[string]*mountState),
	}
}

// Mount attaches a container to its per-container device and pages in
// the filesystem metadata blocks. This is Slacker's whole "pull" phase:
// no image data crosses the wire yet.
func (c *Client) Mount(containerID, ref string) error {
	bi, err := c.server.Get(ref)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mounts[containerID]; ok {
		return fmt.Errorf("slacker: %s: %w", containerID, ErrMountExists)
	}
	c.mounts[containerID] = &mountState{image: bi, cached: make(map[int64]bool)}
	c.recordLocked(bi.metaBlocks, int64(bi.metaBlocks)*bi.blockSize)
	return nil
}

// Unmount detaches the container, discarding its block cache.
func (c *Client) Unmount(containerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mounts[containerID]; !ok {
		return fmt.Errorf("slacker: %s: %w", containerID, ErrNoMount)
	}
	delete(c.mounts, containerID)
	return nil
}

// ReadFile reads a file through the container's device, fetching any
// blocks not yet paged in.
func (c *Client) ReadFile(containerID, path string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.mounts[containerID]
	if !ok {
		return nil, fmt.Errorf("slacker: %s: %w", containerID, ErrNoMount)
	}
	ext, ok := m.image.extents[vfs.Clean(path)]
	if !ok {
		return nil, fmt.Errorf("slacker: %s: %s: %w", containerID, path, ErrNotFile)
	}
	first := ext.offset / m.image.blockSize
	last := (ext.offset + ext.length - 1) / m.image.blockSize
	if ext.length == 0 {
		last = first
	}
	missing := 0
	for b := first; b <= last; b++ {
		if !m.cached[b] {
			m.cached[b] = true
			missing++
		}
	}
	c.recordLocked(missing, int64(missing)*m.image.blockSize)
	return m.image.device[ext.offset : ext.offset+ext.length], nil
}

func (c *Client) recordLocked(blocks int, bytes int64) {
	if blocks == 0 {
		return
	}
	c.blocksFetched += int64(blocks)
	c.bytesFetched += bytes
	if c.onFetch != nil {
		c.onFetch(blocks, bytes)
	}
}

// Stats reports client traffic.
type ClientStats struct {
	BlocksFetched int64 `json:"blocksFetched"`
	BytesFetched  int64 `json:"bytesFetched"`
	Mounts        int   `json:"mounts"`
}

// Stats returns a snapshot.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{
		BlocksFetched: c.blocksFetched,
		BytesFetched:  c.bytesFetched,
		Mounts:        len(c.mounts),
	}
}
