package apps

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeContainer serves fixed content with a fixed read cost.
type fakeContainer struct {
	files     map[string][]byte
	readCost  time.Duration
	reads     int
	writes    int
	failWrite bool
}

func (f *fakeContainer) Read(p string) ([]byte, time.Duration, error) {
	f.reads++
	data, ok := f.files[p]
	if !ok {
		return nil, 0, fmt.Errorf("no such file %s", p)
	}
	return data, f.readCost, nil
}

func (f *fakeContainer) Write(string, []byte) error {
	f.writes++
	if f.failWrite {
		return errors.New("read-only")
	}
	return nil
}

func newFake() *fakeContainer {
	return &fakeContainer{
		files: map[string][]byte{
			"/data/a": make([]byte, 100),
			"/data/b": make([]byte, 200),
		},
		readCost: 50 * time.Microsecond,
	}
}

func TestRunKV(t *testing.T) {
	f := newFake()
	res, err := RunKV(f, KVConfig{Requests: 1100, DataPaths: []string{"/data/a", "/data/b"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1100 {
		t.Errorf("ops = %d", res.Ops)
	}
	if res.Throughput() <= 0 {
		t.Error("zero throughput")
	}
	// 1:10 SET:GET -> 100 SETs for 1100 ops.
	if f.writes != 100 {
		t.Errorf("writes = %d, want 100", f.writes)
	}
	if f.reads == 0 || res.ReadBytes == 0 {
		t.Error("no cold reads happened")
	}
}

func TestRunKVErrors(t *testing.T) {
	f := newFake()
	if _, err := RunKV(f, KVConfig{Requests: 0, DataPaths: []string{"/data/a"}}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("err = %v", err)
	}
	if _, err := RunKV(f, KVConfig{Requests: 10}); !errors.Is(err, ErrNoPaths) {
		t.Errorf("err = %v", err)
	}
	f.failWrite = true
	if _, err := RunKV(f, KVConfig{Requests: 10, DataPaths: []string{"/data/a"}}); err == nil {
		t.Error("write failure swallowed")
	}
	f2 := newFake()
	if _, err := RunKV(f2, KVConfig{Requests: 200, DataPaths: []string{"/missing"}}); err == nil {
		t.Error("read failure swallowed")
	}
}

func TestRunWeb(t *testing.T) {
	f := newFake()
	res, err := RunWeb(f, WebConfig{Requests: 100, ContentPaths: []string{"/data/a", "/data/b"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 100 || f.reads != 100 {
		t.Errorf("ops = %d, reads = %d", res.Ops, f.reads)
	}
	// 50 x 100B + 50 x 200B.
	if res.ReadBytes != 50*100+50*200 {
		t.Errorf("read bytes = %d", res.ReadBytes)
	}
	want := time.Duration(100) * (30 + 50) * time.Microsecond
	if res.Elapsed != want {
		t.Errorf("elapsed = %v, want %v", res.Elapsed, want)
	}
}

func TestRunWebErrors(t *testing.T) {
	f := newFake()
	if _, err := RunWeb(f, WebConfig{Requests: -1, ContentPaths: []string{"/data/a"}}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("err = %v", err)
	}
	if _, err := RunWeb(f, WebConfig{Requests: 5}); !errors.Is(err, ErrNoPaths) {
		t.Errorf("err = %v", err)
	}
	if _, err := RunWeb(f, WebConfig{Requests: 5, ContentPaths: []string{"/missing"}}); err == nil {
		t.Error("read failure swallowed")
	}
}

func TestThroughputReflectsReadCost(t *testing.T) {
	fast := newFake()
	slow := newFake()
	slow.readCost = 500 * time.Microsecond
	cfg := WebConfig{Requests: 100, ContentPaths: []string{"/data/a"}}
	rf, err := RunWeb(fast, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunWeb(slow, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Throughput() <= rs.Throughput() {
		t.Errorf("fast %f <= slow %f", rf.Throughput(), rs.Throughput())
	}
}

func TestZeroElapsedThroughput(t *testing.T) {
	var r Result
	if r.Throughput() != 0 {
		t.Error("zero-time throughput should be 0")
	}
}
