// Package apps provides the synthetic long-running and short-running
// workloads of Fig 11: a key-value service driven memtier-style with a
// 1:10 SET:GET mix (standing in for Memcached/Redis), and a web server
// driven ab-style with concurrent content requests (standing in for
// Nginx/Httpd). Both run against a deployed container's filesystem, so
// the only difference between Docker and Gear in steady state is the
// file-serving path — which is exactly what the paper's normalized-rate
// comparison isolates.
//
// All time is virtual: each operation's cost is its modeled compute plus
// whatever the container charges for file reads.
package apps

import (
	"errors"
	"fmt"
	"time"
)

// Container is the filesystem surface a service runs on; satisfied by
// dockersim.Deployment.
type Container interface {
	// Read returns a file's content and the modeled latency of serving it.
	Read(path string) ([]byte, time.Duration, error)
	// Write stores a file in the container's writable layer.
	Write(path string, data []byte) error
}

// Errors returned by workload runs.
var (
	ErrNoPaths    = errors.New("workload needs at least one data path")
	ErrBadRequest = errors.New("request count must be positive")
)

// Result summarizes a workload run.
type Result struct {
	// Ops is the number of operations completed.
	Ops int `json:"ops"`
	// Elapsed is the total virtual time spent.
	Elapsed time.Duration `json:"elapsed"`
	// ReadBytes is the volume served from container files.
	ReadBytes int64 `json:"readBytes"`
}

// Throughput returns operations per virtual second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// KVConfig drives the memtier-style key-value workload.
type KVConfig struct {
	// Requests is the total operation count.
	Requests int
	// SetEvery issues one SET per this many operations (the paper's
	// 1:10 SET-GET ratio is SetEvery=11).
	SetEvery int
	// DataPaths are container files the service occasionally pages in
	// (cold values spilled to disk); one in ColdEvery GETs touches one.
	DataPaths []string
	// ColdEvery controls how often a GET misses RAM and reads a file.
	ColdEvery int
	// PerOpCompute is the CPU cost of one operation.
	PerOpCompute time.Duration
}

func (c KVConfig) withDefaults() KVConfig {
	if c.SetEvery == 0 {
		c.SetEvery = 11
	}
	if c.ColdEvery == 0 {
		c.ColdEvery = 64
	}
	if c.PerOpCompute == 0 {
		c.PerOpCompute = 20 * time.Microsecond
	}
	return c
}

// RunKV executes the key-value workload.
func RunKV(ct Container, cfg KVConfig) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Requests <= 0 {
		return Result{}, fmt.Errorf("apps: kv: %w", ErrBadRequest)
	}
	if len(cfg.DataPaths) == 0 {
		return Result{}, fmt.Errorf("apps: kv: %w", ErrNoPaths)
	}
	var res Result
	var appendLog []byte
	for i := 0; i < cfg.Requests; i++ {
		res.Elapsed += cfg.PerOpCompute
		if i%cfg.SetEvery == 0 {
			// SET: append to the store's log in the writable layer (the
			// root always exists in a container filesystem).
			appendLog = append(appendLog, byte(i))
			if err := ct.Write("/kv.log", appendLog); err != nil {
				return res, fmt.Errorf("apps: kv set %d: %w", i, err)
			}
			// Write-back cost is modeled as one compute unit.
			res.Elapsed += cfg.PerOpCompute
		} else if i%cfg.ColdEvery == 0 {
			p := cfg.DataPaths[i%len(cfg.DataPaths)]
			data, cost, err := ct.Read(p)
			if err != nil {
				return res, fmt.Errorf("apps: kv get %d: %w", i, err)
			}
			res.Elapsed += cost
			res.ReadBytes += int64(len(data))
		}
		res.Ops++
	}
	return res, nil
}

// WebConfig drives the ab-style web workload.
type WebConfig struct {
	// Requests is the total request count.
	Requests int
	// ContentPaths are the documents served round-robin.
	ContentPaths []string
	// PerReqCompute is the CPU cost of one request (parsing, headers).
	PerReqCompute time.Duration
}

func (c WebConfig) withDefaults() WebConfig {
	if c.PerReqCompute == 0 {
		c.PerReqCompute = 30 * time.Microsecond
	}
	return c
}

// RunWeb executes the web workload: every request serves one document
// from the container filesystem.
func RunWeb(ct Container, cfg WebConfig) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Requests <= 0 {
		return Result{}, fmt.Errorf("apps: web: %w", ErrBadRequest)
	}
	if len(cfg.ContentPaths) == 0 {
		return Result{}, fmt.Errorf("apps: web: %w", ErrNoPaths)
	}
	var res Result
	for i := 0; i < cfg.Requests; i++ {
		p := cfg.ContentPaths[i%len(cfg.ContentPaths)]
		data, cost, err := ct.Read(p)
		if err != nil {
			return res, fmt.Errorf("apps: web request %d: %w", i, err)
		}
		res.Elapsed += cfg.PerReqCompute + cost
		res.ReadBytes += int64(len(data))
		res.Ops++
	}
	return res, nil
}
