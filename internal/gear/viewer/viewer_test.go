package viewer

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

// fakeResolver serves from an in-memory pool and mimics the store's
// link-into-index behavior.
type fakeResolver struct {
	pool  map[hashing.Fingerprint][]byte
	tree  *vfs.FS
	calls int
	fail  bool
}

func (r *fakeResolver) Resolve(_, p string, fp hashing.Fingerprint, _ int64) (*vfs.Content, error) {
	r.calls++
	if r.fail {
		return nil, errors.New("registry unreachable")
	}
	data, ok := r.pool[fp]
	if !ok {
		return nil, errors.New("pool miss")
	}
	content := vfs.NewContent(data)
	if n, err := r.tree.Stat(p); err == nil {
		if err := r.tree.PutContent(p, content, n.Mode()); err != nil {
			return nil, err
		}
	}
	return content, nil
}

func setup(t *testing.T) (*Viewer, *fakeResolver) {
	t.Helper()
	root := vfs.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(root.MkdirAll("/app", 0o755))
	must(root.WriteFile("/app/bin", []byte("binary-bytes"), 0o755))
	must(root.WriteFile("/app/conf", []byte("k=v"), 0o600))
	must(root.Symlink("bin", "/app/bin-link"))

	ix, pool, err := index.Build("img", "v1", imagefmt.Config{}, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := ix.ToTree()
	if err != nil {
		t.Fatal(err)
	}
	r := &fakeResolver{pool: pool, tree: tree}
	return New("img:v1", tree, r), r
}

func TestLazyReadPausesOnce(t *testing.T) {
	v, r := setup(t)
	got, err := v.ReadFile("/app/bin")
	if err != nil || string(got) != "binary-bytes" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if r.calls != 1 {
		t.Errorf("resolver calls = %d, want 1", r.calls)
	}
	// Materialized: no second pause.
	if _, err := v.ReadFile("/app/bin"); err != nil {
		t.Fatal(err)
	}
	if r.calls != 1 {
		t.Errorf("resolver calls after re-read = %d, want 1", r.calls)
	}
	if s := v.Stats(); s.Reads != 2 || s.Faults != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestResolverFailurePropagates(t *testing.T) {
	v, r := setup(t)
	r.fail = true
	if _, err := v.ReadFile("/app/bin"); err == nil {
		t.Error("resolver failure swallowed")
	}
}

func TestModeAndModePreservedOnMaterialize(t *testing.T) {
	v, _ := setup(t)
	if _, err := v.ReadFile("/app/conf"); err != nil {
		t.Fatal(err)
	}
	info, err := v.Stat("/app/conf")
	if err != nil || info.Mode != 0o600 {
		t.Errorf("mode after materialize = %o, %v", info.Mode, err)
	}
}

func TestReadDirAndWalkSkipNothing(t *testing.T) {
	v, r := setup(t)
	names, err := v.ReadDir("/app")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(names, ",") != "bin,bin-link,conf" {
		t.Errorf("ReadDir = %v", names)
	}
	var visited []string
	if err := v.Walk(func(p string, _ *vfs.Node) error {
		visited = append(visited, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(visited) != 4 {
		t.Errorf("walk visited %v", visited)
	}
	if r.calls != 0 {
		t.Error("metadata operations triggered fetches")
	}
}

func TestWriteAndCommitCycle(t *testing.T) {
	v, _ := setup(t)
	if err := v.Mkdir("/data", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteFile("/data/out", []byte("result"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := v.Symlink("/data/out", "/data/latest"); err != nil {
		t.Fatal(err)
	}
	if err := v.Remove("/app/conf"); err != nil {
		t.Fatal(err)
	}
	diff := v.DiffTree()
	st := diff.Stats()
	// out + whiteout = 2 files, /data dir, symlink.
	if st.Files != 2 || st.Dirs != 2 || st.Symlinks != 1 {
		t.Errorf("diff stats = %+v", st)
	}
}

func TestRemoveAllSubtree(t *testing.T) {
	v, _ := setup(t)
	if err := v.RemoveAll("/app"); err != nil {
		t.Fatal(err)
	}
	if v.Exists("/app/bin") || v.Exists("/app") {
		t.Error("subtree visible after RemoveAll")
	}
}

func TestNewWithDiffRestoresState(t *testing.T) {
	v, r := setup(t)
	if err := v.WriteFile("/app/conf", []byte("modified"), 0o644); err != nil {
		t.Fatal(err)
	}
	diff := v.DiffTree()
	v.Close()

	v2 := NewWithDiff("img:v1", r.tree, diff, r)
	got, err := v2.ReadFile("/app/conf")
	if err != nil || string(got) != "modified" {
		t.Errorf("restored view = %q, %v", got, err)
	}
}

func TestClosedViewerRejectsEverything(t *testing.T) {
	v, _ := setup(t)
	v.Close()
	if _, err := v.ReadFile("/app/bin"); !errors.Is(err, ErrStopped) {
		t.Errorf("read err = %v", err)
	}
	if err := v.WriteFile("/x", nil, 0o644); !errors.Is(err, ErrStopped) {
		t.Errorf("write err = %v", err)
	}
	if err := v.Mkdir("/d", 0o755); !errors.Is(err, ErrStopped) {
		t.Errorf("mkdir err = %v", err)
	}
	if err := v.Symlink("a", "/l"); !errors.Is(err, ErrStopped) {
		t.Errorf("symlink err = %v", err)
	}
	if err := v.Remove("/app/bin"); !errors.Is(err, ErrStopped) {
		t.Errorf("remove err = %v", err)
	}
	if err := v.RemoveAll("/app"); !errors.Is(err, ErrStopped) {
		t.Errorf("removeall err = %v", err)
	}
	if _, err := v.Stat("/app/bin"); !errors.Is(err, ErrStopped) {
		t.Errorf("stat err = %v", err)
	}
	if _, err := v.ReadDir("/app"); !errors.Is(err, ErrStopped) {
		t.Errorf("readdir err = %v", err)
	}
	if _, err := v.Readlink("/app/bin-link"); !errors.Is(err, ErrStopped) {
		t.Errorf("readlink err = %v", err)
	}
	if err := v.Walk(func(string, *vfs.Node) error { return nil }); !errors.Is(err, ErrStopped) {
		t.Errorf("walk err = %v", err)
	}
	if v.Exists("/app/bin") {
		t.Error("closed viewer reports existence")
	}
	if v.ImageRef() != "img:v1" {
		t.Error("ImageRef lost")
	}
}

func TestRename(t *testing.T) {
	v, r := setup(t)
	if err := v.Rename("/app/bin", "/app/bin-renamed"); err != nil {
		t.Fatal(err)
	}
	if v.Exists("/app/bin") {
		t.Error("old name still visible")
	}
	got, err := v.ReadFile("/app/bin-renamed")
	if err != nil || string(got) != "binary-bytes" {
		t.Errorf("renamed content = %q, %v", got, err)
	}
	// Renaming materialized the file once.
	if r.calls != 1 {
		t.Errorf("resolver calls = %d, want 1", r.calls)
	}
	// Renaming a symlink preserves its target.
	if err := v.Rename("/app/bin-link", "/app/latest"); err != nil {
		t.Fatal(err)
	}
	target, err := v.Readlink("/app/latest")
	if err != nil || target != "bin" {
		t.Errorf("renamed symlink = %q, %v", target, err)
	}
	// Directories cannot be renamed.
	if err := v.Rename("/app", "/app2"); !errors.Is(err, vfs.ErrInvalid) {
		t.Errorf("dir rename err = %v", err)
	}
	// Missing source.
	if err := v.Rename("/ghost", "/x"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("missing source err = %v", err)
	}
}

func TestReadAtWithoutRangeResolver(t *testing.T) {
	// The fake resolver implements only Resolve, so ReadAt must fall back
	// to full materialization and slice.
	v, r := setup(t)
	got, err := v.ReadAt("/app/bin", 7, 5)
	if err != nil || string(got) != "bytes" {
		t.Errorf("ReadAt = %q, %v", got, err)
	}
	if r.calls != 1 {
		t.Errorf("resolver calls = %d, want 1", r.calls)
	}
	if s := v.Stats(); s.Faults != 1 {
		t.Errorf("faults = %d, want 1 (no double count)", s.Faults)
	}
	// Materialized path: ReadAt slices locally.
	got, err = v.ReadAt("/app/bin", 0, 6)
	if err != nil || string(got) != "binary" {
		t.Errorf("second ReadAt = %q, %v", got, err)
	}
	if r.calls != 1 {
		t.Error("second ReadAt refetched")
	}
	// Out-of-range and upper-layer reads.
	if got, err := v.ReadAt("/app/bin", 9999, 5); err != nil || len(got) != 0 {
		t.Errorf("past-EOF = %q, %v", got, err)
	}
	if err := v.WriteFile("/own", []byte("container data"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = v.ReadAt("/own", 10, 4)
	if err != nil || string(got) != "data" {
		t.Errorf("upper ReadAt = %q, %v", got, err)
	}
	// Closed viewer.
	v.Close()
	if _, err := v.ReadAt("/app/bin", 0, 1); !errors.Is(err, ErrStopped) {
		t.Errorf("closed ReadAt err = %v", err)
	}
}

func TestFileHandleWithPlainResolver(t *testing.T) {
	v, _ := setup(t)
	f, err := v.Open("/app/bin")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != int64(len("binary-bytes")) || f.Name() != "/app/bin" {
		t.Errorf("handle = %s/%d", f.Name(), f.Size())
	}
	var out bytes.Buffer
	if _, err := io.Copy(&out, f); err != nil {
		t.Fatal(err)
	}
	if out.String() != "binary-bytes" {
		t.Errorf("copied %q", out.String())
	}
	// Seek current and end.
	if pos, err := f.Seek(-5, io.SeekEnd); err != nil || pos != int64(len("binary-bytes")-5) {
		t.Errorf("SeekEnd = %d, %v", pos, err)
	}
	if pos, err := f.Seek(1, io.SeekCurrent); err != nil || pos != int64(len("binary-bytes")-4) {
		t.Errorf("SeekCurrent = %d, %v", pos, err)
	}
	buf := make([]byte, 10)
	n, err := f.Read(buf)
	if n != 4 || (err != nil && err != io.EOF) {
		t.Errorf("tail read = %d, %v", n, err)
	}
	// ReadAt edge cases.
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := f.ReadAt(buf, f.Size()); err != io.EOF {
		t.Errorf("at-EOF err = %v", err)
	}
	if n, err := f.ReadAt(nil, 0); n != 0 || err != nil {
		t.Errorf("empty read = %d, %v", n, err)
	}
	// Open errors.
	if _, err := v.Open("/app"); err == nil {
		t.Error("opened directory")
	}
	if _, err := v.Open("/app/bin-link"); err == nil {
		t.Error("opened symlink")
	}
	if _, err := v.Open("/ghost"); err == nil {
		t.Error("opened missing file")
	}
}

func TestSliceRange(t *testing.T) {
	data := []byte("0123456789")
	tests := []struct {
		off, n int64
		want   string
	}{
		{0, 4, "0123"},
		{5, 100, "56789"},
		{9, 1, "9"},
		{10, 1, ""},
		{-1, 5, ""},
		{0, 0, ""},
		{0, -3, ""},
	}
	for _, tt := range tests {
		if got := string(sliceRange(data, tt.off, tt.n)); got != tt.want {
			t.Errorf("sliceRange(%d,%d) = %q, want %q", tt.off, tt.n, got, tt.want)
		}
	}
}

func TestRenameMissingDestParent(t *testing.T) {
	v, _ := setup(t)
	if err := v.Rename("/app/conf", "/no/such/dir/conf"); err == nil {
		t.Error("rename into missing dir accepted")
	}
	// Source must still exist after the failed rename.
	if !v.Exists("/app/conf") {
		t.Error("failed rename destroyed the source")
	}
}
