package viewer

import (
	"fmt"
	"io"

	"github.com/gear-image/gear/internal/vfs"
)

// File is a read-only handle on one container file, implementing
// io.Reader, io.ReaderAt, and io.Seeker over the viewer's lazy fetch
// path. Sequential consumers of chunked files pull chunks as the read
// offset crosses them, never the whole file at once.
type File struct {
	v    *Viewer
	path string
	size int64
	off  int64
}

var (
	_ io.Reader   = (*File)(nil)
	_ io.ReaderAt = (*File)(nil)
	_ io.Seeker   = (*File)(nil)
)

// Open returns a handle on the regular file at p. The file's size comes
// from the index, so opening triggers no fetch.
func (v *Viewer) Open(p string) (*File, error) {
	info, err := v.Stat(p)
	if err != nil {
		return nil, err
	}
	if info.Type != vfs.TypeRegular {
		return nil, fmt.Errorf("viewer: open %s: %w", vfs.Clean(p), vfs.ErrInvalid)
	}
	return &File{v: v, path: vfs.Clean(p), size: info.Size}, nil
}

// Size returns the file's length in bytes.
func (f *File) Size() int64 { return f.size }

// Name returns the file's path.
func (f *File) Name() string { return f.path }

// Read implements io.Reader.
func (f *File) Read(p []byte) (int, error) {
	if f.off >= f.size {
		return 0, io.EOF
	}
	n, err := f.ReadAt(p, f.off)
	f.off += int64(n)
	return n, err
}

// ReadAt implements io.ReaderAt.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("viewer: %s: negative offset: %w", f.path, vfs.ErrInvalid)
	}
	if off >= f.size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if want == 0 {
		return 0, nil
	}
	data, err := f.v.ReadAt(f.path, off, want)
	if err != nil {
		return 0, err
	}
	n := copy(p, data)
	if int64(n) < want && off+int64(n) >= f.size {
		return n, io.EOF
	}
	return n, nil
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	var next int64
	switch whence {
	case io.SeekStart:
		next = offset
	case io.SeekCurrent:
		next = f.off + offset
	case io.SeekEnd:
		next = f.size + offset
	default:
		return 0, fmt.Errorf("viewer: %s: bad whence %d: %w", f.path, whence, vfs.ErrInvalid)
	}
	if next < 0 {
		return 0, fmt.Errorf("viewer: %s: seek before start: %w", f.path, vfs.ErrInvalid)
	}
	f.off = next
	return next, nil
}
