// Package viewer implements the Gear File Viewer (§III-D2, §IV of the
// paper): the component that gives a Gear container its root filesystem
// view. It union-mounts the image's read-only "index" directory (level 2
// of the three-level storage structure) under a writable "diff"
// directory (level 3), and redirects regular-file reads through
// fingerprints.
//
// The paper implements the redirection by patching Overlay2's
// ovl_lookup_single(): when the lookup hits a fingerprint file, the
// kernel pauses and asks a user-mode helper to make the file readable
// (hard-linking from the shared cache or downloading it), then resumes.
// Here the same protocol appears as the Resolver interface: a read that
// hits a placeholder pauses, calls Resolve, and continues against the
// materialized content.
package viewer

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"time"

	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/overlay"
	"github.com/gear-image/gear/internal/vfs"
)

// ErrStopped reports use of a viewer after Close.
var ErrStopped = errors.New("viewer is closed")

// Resolver is the user-mode helper of §IV: it makes the Gear file for a
// fingerprint readable — from the shared local cache if present, else by
// downloading it — and installs it over the placeholder at path in the
// shared index tree. It returns the materialized content.
type Resolver interface {
	Resolve(imageRef, path string, fp hashing.Fingerprint, size int64) (*vfs.Content, error)
}

// Viewer is one container's filesystem view. Reads resolve lazily;
// writes land in the diff layer. Viewer is safe for concurrent use.
type Viewer struct {
	imageRef string
	resolver Resolver

	mu     sync.Mutex
	mount  *overlay.Mount
	closed bool

	// reads counts total regular-file reads; faults counts reads that
	// had to pause on a placeholder (the lazy-fetch events of Fig 8/9);
	// stall accumulates the wall-clock time those pauses spent inside
	// the resolver — the per-container view of the store's demand-stall
	// accounting.
	reads  int64
	faults int64
	stall  time.Duration
}

// New mounts a viewer over the shared index tree (level 2) with a fresh
// diff layer. The index tree is attached without copying so placeholder
// materializations are shared across viewers of the same image.
func New(imageRef string, indexTree *vfs.FS, resolver Resolver) *Viewer {
	return &Viewer{
		imageRef: imageRef,
		resolver: resolver,
		mount:    overlay.AttachShared(indexTree),
	}
}

// NewWithDiff remounts a stopped container: same index tree, existing
// diff layer.
func NewWithDiff(imageRef string, indexTree, diff *vfs.FS, resolver Resolver) *Viewer {
	return &Viewer{
		imageRef: imageRef,
		resolver: resolver,
		mount:    overlay.AttachSharedWithUpper(indexTree, diff),
	}
}

// ImageRef returns the image reference this viewer serves.
func (v *Viewer) ImageRef() string { return v.imageRef }

func (v *Viewer) checkOpen() error {
	if v.closed {
		return fmt.Errorf("viewer %s: %w", v.imageRef, ErrStopped)
	}
	return nil
}

// ReadFile returns the content of the regular file at p, materializing a
// fingerprint placeholder on first access ("downloaded on demand, stored
// at the first level, and hard linked to the index", §III-D2).
func (v *Viewer) ReadFile(p string) ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.checkOpen(); err != nil {
		return nil, err
	}
	v.reads++
	data, err := v.mount.ReadFile(p)
	if err != nil {
		return nil, err
	}
	// Data written by the container itself is returned verbatim even if
	// it happens to look like a placeholder: only lower-layer (index)
	// entries are fingerprint files.
	if v.mount.Upper().Exists(vfs.Clean(p)) {
		return data, nil
	}
	fp, size, perr := index.ParsePlaceholder(data)
	if perr != nil {
		return data, nil // already materialized
	}
	// Pause: ask the helper to make the file readable, then resume.
	v.faults++
	start := time.Now()
	content, err := v.resolver.Resolve(v.imageRef, vfs.Clean(p), fp, size)
	v.stall += time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("viewer %s: fault %s: %w", v.imageRef, vfs.Clean(p), err)
	}
	return content.Data(), nil
}

// RangeResolver is the optional chunk-granular fetch interface (§VII's
// future-work extension): serve [off, off+n) of the file behind fp
// without materializing the whole file.
type RangeResolver interface {
	ResolveRange(imageRef string, fp hashing.Fingerprint, off, n int64) ([]byte, error)
}

// ReadAt returns up to n bytes of the regular file at p starting at off.
// For a chunked, unmaterialized file served by a RangeResolver, only the
// chunks overlapping the range are fetched — the mechanism the paper
// proposes for AI containers with big models. Other files materialize
// fully (like ReadFile) and slice.
func (v *Viewer) ReadAt(p string, off, n int64) ([]byte, error) {
	v.mu.Lock()
	if err := v.checkOpen(); err != nil {
		v.mu.Unlock()
		return nil, err
	}
	v.reads++
	data, err := v.mount.ReadFile(p)
	if err != nil {
		v.mu.Unlock()
		return nil, err
	}
	if v.mount.Upper().Exists(vfs.Clean(p)) {
		v.mu.Unlock()
		return sliceRange(data, off, n), nil
	}
	fp, _, perr := index.ParsePlaceholder(data)
	if perr != nil {
		v.mu.Unlock()
		return sliceRange(data, off, n), nil // already materialized
	}
	rr, ok := v.resolver.(RangeResolver)
	if ok {
		v.faults++
		v.mu.Unlock()
		start := time.Now()
		out, err := rr.ResolveRange(v.imageRef, fp, off, n)
		elapsed := time.Since(start)
		if err == nil {
			v.mu.Lock()
			v.stall += elapsed
			v.mu.Unlock()
			return out, nil
		}
		// Not chunked (or range unsupported): fall through to a full
		// read, whose own fault accounting takes over.
		v.mu.Lock()
		v.faults--
	}
	v.mu.Unlock()
	full, err := v.ReadFile(p)
	if err != nil {
		return nil, err
	}
	return sliceRange(full, off, n), nil
}

func sliceRange(data []byte, off, n int64) []byte {
	if off < 0 || off >= int64(len(data)) || n <= 0 {
		return nil
	}
	end := off + n
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	return data[off:end]
}

// Stat resolves p. For an unmaterialized placeholder it reports the real
// file's size (recorded in the placeholder), not the placeholder's own
// length, so stat-only workloads never trigger downloads.
func (v *Viewer) Stat(p string) (Info, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.checkOpen(); err != nil {
		return Info{}, err
	}
	n, err := v.mount.Stat(p)
	if err != nil {
		return Info{}, err
	}
	info := Info{Type: n.Type(), Mode: n.Mode(), Size: n.Size(), Target: n.Target()}
	if n.Type() == vfs.TypeRegular && !v.mount.Upper().Exists(vfs.Clean(p)) {
		if _, size, err := index.ParsePlaceholder(n.Content().Data()); err == nil {
			info.Size = size
			info.Lazy = true
		}
	}
	return info, nil
}

// Info describes a file in the container's view.
type Info struct {
	Type   vfs.FileType
	Mode   fs.FileMode
	Size   int64
	Target string
	// Lazy reports that the file has not been materialized yet.
	Lazy bool
}

// Exists reports whether p resolves in the view.
func (v *Viewer) Exists(p string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return false
	}
	return v.mount.Exists(p)
}

// Readlink returns the symlink target at p. Irregular files are answered
// directly from the index without touching Gear files (§III-D2).
func (v *Viewer) Readlink(p string) (string, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.checkOpen(); err != nil {
		return "", err
	}
	return v.mount.Readlink(p)
}

// ReadDir lists the directory at p from the union view.
func (v *Viewer) ReadDir(p string) ([]string, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.checkOpen(); err != nil {
		return nil, err
	}
	return v.mount.ReadDir(p)
}

// WriteFile writes a file into the diff layer.
func (v *Viewer) WriteFile(p string, data []byte, mode fs.FileMode) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.checkOpen(); err != nil {
		return err
	}
	return v.mount.WriteFile(p, data, mode)
}

// Mkdir creates a directory in the diff layer.
func (v *Viewer) Mkdir(p string, mode fs.FileMode) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.checkOpen(); err != nil {
		return err
	}
	return v.mount.Mkdir(p, mode)
}

// Symlink creates a symlink in the diff layer.
func (v *Viewer) Symlink(target, p string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.checkOpen(); err != nil {
		return err
	}
	return v.mount.Symlink(target, p)
}

// Rename moves a regular file or symlink from oldp to newp, the way
// Overlay2 without redirect_dir does it: copy-up into the diff layer at
// the new name, whiteout the old. Renaming a regular index file
// materializes it first (the content must move into the writable layer).
func (v *Viewer) Rename(oldp, newp string) error {
	// Materializing may need the resolver, so take the lock per step.
	info, err := v.Stat(oldp)
	if err != nil {
		return err
	}
	switch info.Type {
	case vfs.TypeSymlink:
		target, err := v.Readlink(oldp)
		if err != nil {
			return err
		}
		if err := v.Symlink(target, newp); err != nil {
			return err
		}
	case vfs.TypeRegular:
		data, err := v.ReadFile(oldp)
		if err != nil {
			return err
		}
		if err := v.WriteFile(newp, data, info.Mode); err != nil {
			return err
		}
	default:
		return fmt.Errorf("viewer %s: rename %s: directories cannot be renamed without redirect_dir: %w",
			v.imageRef, vfs.Clean(oldp), vfs.ErrInvalid)
	}
	return v.Remove(oldp)
}

// Remove deletes p from the view (whiteout in the diff layer for index
// entries).
func (v *Viewer) Remove(p string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.checkOpen(); err != nil {
		return err
	}
	return v.mount.Remove(p)
}

// RemoveAll deletes the subtree at p from the view.
func (v *Viewer) RemoveAll(p string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.checkOpen(); err != nil {
		return err
	}
	return v.mount.RemoveAll(p)
}

// Walk visits the union view; placeholders are NOT materialized (a walk
// is metadata-only, like ls -R).
func (v *Viewer) Walk(fn vfs.WalkFunc) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.checkOpen(); err != nil {
		return err
	}
	return v.mount.Walk(fn)
}

// DiffTree returns a copy of the diff layer — the input to commit.
func (v *Viewer) DiffTree() *vfs.FS {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.mount.DiffTree()
}

// Close stops the viewer. The paper notes Gear containers tear down
// faster than Docker because only the required files' inode caches need
// destroying; Stats().Faults is exactly that count.
func (v *Viewer) Close() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.closed = true
}

// Stats reports read/fault counters. StallTime is the cumulative
// wall-clock time this container's reads spent paused in the resolver;
// faults served from the level-1 cache (e.g. after a profile-guided
// prefetch) contribute almost nothing, so it tracks the store's
// demand-stall accounting from the container's side.
type Stats struct {
	Reads     int64         `json:"reads"`
	Faults    int64         `json:"faults"`
	StallTime time.Duration `json:"stallTime"`
}

// Stats returns a snapshot of the viewer's counters.
func (v *Viewer) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return Stats{Reads: v.reads, Faults: v.faults, StallTime: v.stall}
}
