package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"github.com/gear-image/gear/internal/cache"
	"github.com/gear-image/gear/internal/gear/convert"
	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

// fixture builds a converted Gear image published into a fresh Gear
// registry and returns the index plus the registry.
func fixture(t *testing.T) (*index.Index, *gearregistry.Registry) {
	t.Helper()
	root := vfs.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(root.MkdirAll("/etc", 0o755))
	must(root.MkdirAll("/bin", 0o755))
	must(root.WriteFile("/bin/app", bytes.Repeat([]byte{0xcd}, 4096), 0o755))
	must(root.WriteFile("/etc/conf", []byte("port=80\n"), 0o644))
	must(root.WriteFile("/etc/conf.bak", []byte("port=80\n"), 0o644)) // duplicate content
	must(root.Symlink("/bin/app", "/bin/app-link"))

	ix, pool, err := index.Build("web", "v1", imagefmt.Config{}, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	gearReg := gearregistry.New(gearregistry.Options{})
	for fp, data := range pool {
		if err := gearReg.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	return ix, gearReg
}

func newStore(t *testing.T, remote gearregistry.Store) *Store {
	t.Helper()
	s, err := New(Options{Remote: remote})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDeployAndLazyRead(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	// First read faults and fetches remotely.
	got, err := v.ReadFile("/etc/conf")
	if err != nil || string(got) != "port=80\n" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	st := s.Stats()
	if st.RemoteObjects != 1 {
		t.Errorf("remote objects = %d, want 1", st.RemoteObjects)
	}
	// Second read of the same file is local (placeholder was replaced).
	if _, err := v.ReadFile("/etc/conf"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().RemoteObjects; got != 1 {
		t.Errorf("remote objects after re-read = %d, want 1", got)
	}
	vs := v.Stats()
	if vs.Reads != 2 || vs.Faults != 1 {
		t.Errorf("viewer stats = %+v", vs)
	}
	// Duplicate content under another path: served from cache, no fetch.
	if _, err := v.ReadFile("/etc/conf.bak"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().RemoteObjects; got != 1 {
		t.Errorf("remote objects after dup read = %d, want 1 (cache hit)", got)
	}
}

func TestSymlinkReadNeedsNoFetch(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	target, err := v.Readlink("/bin/app-link")
	if err != nil || target != "/bin/app" {
		t.Errorf("Readlink = %q, %v", target, err)
	}
	if s.Stats().RemoteObjects != 0 {
		t.Error("irregular file access triggered a fetch")
	}
}

func TestStatReportsRealSizeWithoutFetch(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	info, err := v.Stat("/bin/app")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 4096 || !info.Lazy {
		t.Errorf("Stat = %+v, want size 4096 lazy", info)
	}
	if s.Stats().RemoteObjects != 0 {
		t.Error("stat triggered a fetch")
	}
	// After materialization, Lazy flips off.
	if _, err := v.ReadFile("/bin/app"); err != nil {
		t.Fatal(err)
	}
	info, err = v.Stat("/bin/app")
	if err != nil || info.Lazy || info.Size != 4096 {
		t.Errorf("Stat after read = %+v, %v", info, err)
	}
}

func TestMaterializationSharedAcrossContainers(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v1, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.CreateContainer("c2", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v1.ReadFile("/bin/app"); err != nil {
		t.Fatal(err)
	}
	// c2 reads the same file: served from the shared index tree, no new
	// fetch and no new fault.
	if _, err := v2.ReadFile("/bin/app"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().RemoteObjects; got != 1 {
		t.Errorf("remote objects = %d, want 1", got)
	}
	if f := v2.Stats().Faults; f != 0 {
		t.Errorf("c2 faults = %d, want 0", f)
	}
}

func TestWritesStayInDiff(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v1, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.CreateContainer("c2", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.WriteFile("/etc/conf", []byte("port=8080\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := v1.ReadFile("/etc/conf")
	if err != nil || string(got) != "port=8080\n" {
		t.Errorf("c1 sees %q, %v", got, err)
	}
	// c2 is isolated from c1's write.
	got, err = v2.ReadFile("/etc/conf")
	if err != nil || string(got) != "port=80\n" {
		t.Errorf("c2 sees %q, %v", got, err)
	}
}

func TestContainerDataThatLooksLikePlaceholder(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	fake := index.Placeholder("00000000000000000000000000000000", 99)
	if err := v.WriteFile("/etc/fake", fake, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadFile("/etc/fake")
	if err != nil || !bytes.Equal(got, fake) {
		t.Errorf("container's own placeholder-looking data was intercepted: %q, %v", got, err)
	}
	if s.Stats().RemoteObjects != 0 {
		t.Error("fake placeholder triggered a fetch")
	}
}

func TestDeleteAndWhiteout(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Remove("/etc/conf"); err != nil {
		t.Fatal(err)
	}
	if v.Exists("/etc/conf") {
		t.Error("file visible after remove")
	}
	if _, err := v.ReadFile("/etc/conf"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
	// The whiteout lives in the diff layer.
	if st := v.DiffTree().Stats(); st.Files != 1 {
		t.Errorf("diff files = %d, want 1 whiteout", st.Files)
	}
}

func TestLifecycleDecoupling(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadFile("/bin/app"); err != nil {
		t.Fatal(err)
	}
	// Deleting the container leaves the index and cache intact.
	if err := s.RemoveContainer("c1"); err != nil {
		t.Fatal(err)
	}
	if !s.HasIndex("web:v1") {
		t.Error("index vanished with container")
	}
	if s.CacheStats().Objects == 0 {
		t.Error("cache emptied with container")
	}
	// A new container launches from level 2 without re-fetching.
	v2, err := s.CreateContainer("c2", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	before := s.Stats().RemoteObjects
	if _, err := v2.ReadFile("/bin/app"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().RemoteObjects; got != before {
		t.Error("rematerialization after container delete")
	}
	// Deleting the image leaves Gear files shared in the cache.
	if err := s.RemoveIndex("web:v1"); err != nil {
		t.Fatal(err)
	}
	if s.CacheStats().Objects == 0 {
		t.Error("cache emptied with image")
	}
	// Closed container rejects use.
	if _, err := v.ReadFile("/bin/app"); err == nil {
		t.Error("closed viewer still serves reads")
	}
}

func TestStoreErrors(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if _, err := s.CreateContainer("c1", "ghost:v1"); !errors.Is(err, ErrNoIndex) {
		t.Errorf("err = %v, want ErrNoIndex", err)
	}
	if err := s.RemoveIndex("ghost:v1"); !errors.Is(err, ErrNoIndex) {
		t.Errorf("err = %v, want ErrNoIndex", err)
	}
	if err := s.RemoveContainer("ghost"); !errors.Is(err, ErrNoContainer) {
		t.Errorf("err = %v, want ErrNoContainer", err)
	}
	if _, err := s.Container("ghost"); !errors.Is(err, ErrNoContainer) {
		t.Errorf("err = %v, want ErrNoContainer", err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); !errors.Is(err, ErrIndexExists) {
		t.Errorf("err = %v, want ErrIndexExists", err)
	}
	if _, err := s.CreateContainer("c1", "web:v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateContainer("c1", "web:v1"); !errors.Is(err, ErrContainerBusy) {
		t.Errorf("err = %v, want ErrContainerBusy", err)
	}
	if _, err := s.Index("web:v1"); err != nil {
		t.Errorf("Index() = %v", err)
	}
	if _, err := s.Index("nope:v9"); !errors.Is(err, ErrNoIndex) {
		t.Errorf("err = %v, want ErrNoIndex", err)
	}
}

func TestDisconnectedClientFailsCleanly(t *testing.T) {
	ix, _ := fixture(t)
	s := newStore(t, nil)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadFile("/bin/app"); !errors.Is(err, gearregistry.ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestPrefetch(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if err := s.Prefetch("web:v1"); err != nil {
		t.Fatal(err)
	}
	// All unique files are now cached; a fresh container reads with zero
	// remote traffic.
	before := s.Stats().RemoteBytes
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/bin/app", "/etc/conf", "/etc/conf.bak"} {
		if _, err := v.ReadFile(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().RemoteBytes; got != before {
		t.Errorf("prefetched image still fetched %d bytes", got-before)
	}
	if err := s.Prefetch("nope:v1"); !errors.Is(err, ErrNoIndex) {
		t.Errorf("err = %v, want ErrNoIndex", err)
	}
}

func TestOnRemoteFetchHook(t *testing.T) {
	ix, reg := fixture(t)
	var objects int
	var bytesFetched int64
	s, err := New(Options{Remote: reg, OnRemoteFetch: func(n int, b int64) {
		objects += n
		bytesFetched += b
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadFile("/bin/app"); err != nil {
		t.Fatal(err)
	}
	if objects != 1 || bytesFetched != 4096 {
		t.Errorf("hook saw %d objects / %d bytes", objects, bytesFetched)
	}
}

func TestCommitProducesDeployableImage(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.WriteFile("/etc/extra", []byte("new data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := v.Remove("/etc/conf.bak"); err != nil {
		t.Fatal(err)
	}
	newIx, newFiles, err := s.Commit("c1", "web", "v2")
	if err != nil {
		t.Fatal(err)
	}
	if newIx.Reference() != "web:v2" {
		t.Errorf("ref = %s", newIx.Reference())
	}
	if len(newFiles) != 1 {
		t.Errorf("new files = %d, want 1", len(newFiles))
	}
	if newIx.Lookup("/etc/extra") == nil {
		t.Error("committed file missing from new index")
	}
	if newIx.Lookup("/etc/conf.bak") != nil {
		t.Error("removed file present in new index")
	}
	// Unchanged entries keep their fingerprints (shared with v1).
	if newIx.Lookup("/bin/app").Fingerprint != ix.Lookup("/bin/app").Fingerprint {
		t.Error("unchanged file fingerprint drifted")
	}
	// Upload new files; the committed image deploys on a second store.
	for fp, data := range newFiles {
		if err := reg.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	s2 := newStore(t, reg)
	if err := s2.AddIndex(newIx); err != nil {
		t.Fatal(err)
	}
	v2, err := s2.CreateContainer("c1", "web:v2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v2.ReadFile("/etc/extra")
	if err != nil || string(got) != "new data" {
		t.Errorf("committed file = %q, %v", got, err)
	}
	if _, _, err := s.Commit("ghost", "a", "b"); !errors.Is(err, ErrNoContainer) {
		t.Errorf("err = %v, want ErrNoContainer", err)
	}
}

func TestChunkedFileFetch(t *testing.T) {
	root := vfs.New()
	big := make([]byte, 10000)
	rand.New(rand.NewSource(3)).Read(big)
	if err := root.WriteFile("/model", big, 0o644); err != nil {
		t.Fatal(err)
	}
	ix, pool, err := index.BuildChunked("ai", "v1", imagefmt.Config{}, root, nil, 4096)
	if err != nil {
		t.Fatal(err)
	}
	reg := gearregistry.New(gearregistry.Options{})
	for fp, data := range pool {
		if err := reg.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "ai:v1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadFile("/model")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("chunked read: %d bytes, %v", len(got), err)
	}
	st := s.Stats()
	if st.RemoteObjects != 3 { // 4096+4096+1808
		t.Errorf("remote objects = %d, want 3 chunks", st.RemoteObjects)
	}
	if st.RemoteBytes != 10000 {
		t.Errorf("remote bytes = %d", st.RemoteBytes)
	}
	// Re-read: assembled file is cached whole.
	if _, err := v.ReadFile("/model"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().RemoteObjects; got != 3 {
		t.Errorf("re-read fetched again: %d", got)
	}
}

func TestConcurrentFaultsOnSameFile(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.CreateContainer(fmt.Sprintf("c%d", i), "web:v1")
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := v.ReadFile("/bin/app"); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	// The file crosses the wire at most... once per racing fault is
	// acceptable, but the cache must contain exactly one copy.
	if got := s.CacheStats().Objects; got != 1 {
		t.Errorf("cache objects = %d, want 1", got)
	}
}

func TestEndToEndWithConverter(t *testing.T) {
	// Full pipeline: Docker image -> converter -> publish -> deploy.
	base := vfs.New()
	if err := base.MkdirAll("/srv", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := base.WriteFile("/srv/site.html", []byte("<h1>hello</h1>"), 0o644); err != nil {
		t.Fatal(err)
	}
	img, err := imagefmt.SingleLayerImage("site", "v1", base, imagefmt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := convert.New(convert.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conv.Convert(img)
	if err != nil {
		t.Fatal(err)
	}
	gearReg := gearregistry.New(gearregistry.Options{})
	for fp, data := range res.Files {
		if err := gearReg.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	s := newStore(t, gearReg)
	if err := s.AddIndex(res.Index); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "site:v1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadFile("/srv/site.html")
	if err != nil || string(got) != "<h1>hello</h1>" {
		t.Errorf("end-to-end read = %q, %v", got, err)
	}
}

func TestCacheEvictionUnderPressure(t *testing.T) {
	// A tiny cache forces eviction of unmaterialized (unlinked) files.
	root := vfs.New()
	for i := 0; i < 10; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 1000)
		if err := root.WriteFile(fmt.Sprintf("/f%d", i), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ix, pool, err := index.Build("many", "v1", imagefmt.Config{}, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := gearregistry.New(gearregistry.Options{})
	for fp, data := range pool {
		if err := reg.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(Options{Remote: reg, CacheCapacity: 3000, CachePolicy: cache.FIFO})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "many:v1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := v.ReadFile(fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Files are hard-linked into the index, so they are pinned; the
	// cache may exceed capacity but must never lose a linked file.
	for i := 0; i < 10; i++ {
		if _, err := v.ReadFile(fmt.Sprintf("/f%d", i)); err != nil {
			t.Errorf("linked file lost: %v", err)
		}
	}
	if got := s.Stats().RemoteObjects; got != 10 {
		t.Errorf("remote objects = %d, want 10 (no refetch of linked files)", got)
	}
}

func TestDownloadIntegrityVerification(t *testing.T) {
	// A corrupt registry (wrong bytes under a fingerprint) must be caught
	// before anything reaches the cache or an index tree.
	root := vfs.New()
	if err := root.WriteFile("/bin", []byte("real content"), 0o755); err != nil {
		t.Fatal(err)
	}
	ix, _, err := index.Build("bad", "v1", imagefmt.Config{}, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	evil := gearregistry.New(gearregistry.Options{SkipVerify: true})
	fp := ix.Lookup("/bin").Fingerprint
	if err := evil.Upload(fp, []byte("tampered bytes")); err != nil {
		t.Fatal(err)
	}
	s := newStore(t, evil)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "bad:v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadFile("/bin"); !errors.Is(err, ErrCorruptDownload) {
		t.Errorf("err = %v, want ErrCorruptDownload", err)
	}
	if got := s.CacheStats().Objects; got != 0 {
		t.Errorf("corrupt object entered the cache: %d", got)
	}
}

func TestStoreWithRetryingRemote(t *testing.T) {
	// The store composes with the RetryStore wrapper transparently.
	ix, reg := fixture(t)
	retry, err := gearregistry.NewRetryStore(reg, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := newStore(t, retry)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	data, err := v.ReadFile("/etc/conf")
	if err != nil || string(data) != "port=80\n" {
		t.Errorf("ReadFile = %q, %v", data, err)
	}
}

func TestReadAtFetchesOnlyNeededChunks(t *testing.T) {
	root := vfs.New()
	big := make([]byte, 20000)
	rand.New(rand.NewSource(9)).Read(big)
	if err := root.WriteFile("/model", big, 0o644); err != nil {
		t.Fatal(err)
	}
	ix, pool, err := index.BuildChunked("ai", "v1", imagefmt.Config{}, root, nil, 4096)
	if err != nil {
		t.Fatal(err)
	}
	reg := gearregistry.New(gearregistry.Options{})
	for fp, data := range pool {
		if err := reg.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "ai:v1")
	if err != nil {
		t.Fatal(err)
	}
	// Read bytes [5000, 9000): overlaps chunks 1 and 2 only.
	got, err := v.ReadAt("/model", 5000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big[5000:9000]) {
		t.Error("ranged read returned wrong bytes")
	}
	if objs := s.Stats().RemoteObjects; objs != 2 {
		t.Errorf("remote objects = %d, want 2 (chunks 1 and 2)", objs)
	}
	// A later overlapping read reuses the cached chunks.
	got, err = v.ReadAt("/model", 4096, 4096)
	if err != nil || !bytes.Equal(got, big[4096:8192]) {
		t.Fatalf("second ranged read: %v", err)
	}
	if objs := s.Stats().RemoteObjects; objs != 2 {
		t.Errorf("remote objects after overlap = %d, want 2", objs)
	}
	// Reading past EOF truncates.
	got, err = v.ReadAt("/model", 19000, 5000)
	if err != nil || !bytes.Equal(got, big[19000:]) {
		t.Errorf("tail read = %d bytes, %v", len(got), err)
	}
	// Invalid range.
	if _, err := s.ResolveRange("ai:v1", ix.Lookup("/model").Fingerprint, -1, 10); !errors.Is(err, ErrBadRange) {
		t.Errorf("err = %v, want ErrBadRange", err)
	}
}

func TestReadAtFallsBackForUnchunkedFiles(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadAt("/etc/conf", 5, 2)
	if err != nil || string(got) != "80" {
		t.Errorf("ReadAt = %q, %v", got, err)
	}
	// The unchunked file materialized fully (one object).
	if objs := s.Stats().RemoteObjects; objs != 1 {
		t.Errorf("remote objects = %d, want 1", objs)
	}
	if f := v.Stats().Faults; f != 1 {
		t.Errorf("faults = %d, want exactly 1 (no double count on fallback)", f)
	}
	// Subsequent ReadAt of materialized file is local.
	if _, err := v.ReadAt("/etc/conf", 0, 4); err != nil {
		t.Fatal(err)
	}
	if objs := s.Stats().RemoteObjects; objs != 1 {
		t.Errorf("re-read fetched again: %d", objs)
	}
}

func TestFileHandleStreamsChunks(t *testing.T) {
	root := vfs.New()
	big := make([]byte, 50000)
	rand.New(rand.NewSource(17)).Read(big)
	if err := root.WriteFile("/weights", big, 0o644); err != nil {
		t.Fatal(err)
	}
	ix, pool, err := index.BuildChunked("ai", "v1", imagefmt.Config{}, root, nil, 8192)
	if err != nil {
		t.Fatal(err)
	}
	reg := gearregistry.New(gearregistry.Options{})
	for fp, data := range pool {
		if err := reg.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "ai:v1")
	if err != nil {
		t.Fatal(err)
	}
	f, err := v.Open("/weights")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 50000 || f.Name() != "/weights" {
		t.Errorf("handle = %s/%d", f.Name(), f.Size())
	}
	if s.Stats().RemoteObjects != 0 {
		t.Error("Open fetched data")
	}
	// Read the first 10 bytes: only chunk 0 crosses the wire.
	buf := make([]byte, 10)
	n, err := io.ReadFull(f, buf)
	if err != nil || n != 10 || !bytes.Equal(buf, big[:10]) {
		t.Fatalf("ReadFull = %d, %v", n, err)
	}
	if got := s.Stats().RemoteObjects; got != 1 {
		t.Errorf("remote objects after head read = %d, want 1", got)
	}
	// Seek to the tail and read: fetches only the last chunk.
	if _, err := f.Seek(-8, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	tail := make([]byte, 8)
	if _, err := io.ReadFull(f, tail); err != nil || !bytes.Equal(tail, big[49992:]) {
		t.Fatalf("tail read: %v", err)
	}
	if got := s.Stats().RemoteObjects; got != 2 {
		t.Errorf("remote objects after tail read = %d, want 2", got)
	}
	// Full sequential copy reproduces the file exactly.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := io.Copy(&out, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), big) {
		t.Error("streamed copy mismatch")
	}
	// Reading past EOF.
	if _, err := f.Read(buf); err != io.EOF {
		t.Errorf("read at EOF err = %v", err)
	}
	// Seek validation.
	if _, err := f.Seek(-1, io.SeekStart); err == nil {
		t.Error("negative seek accepted")
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Error("bad whence accepted")
	}
	// Opening a directory or symlink fails.
	if _, err := v.Open("/"); err == nil {
		t.Error("opened a directory")
	}
}
