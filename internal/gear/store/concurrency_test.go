package store

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/telemetry"
	"github.com/gear-image/gear/internal/vfs"
)

// countingStore wraps a registry and counts Download calls per
// fingerprint, to assert the singleflight dedup guarantee.
type countingStore struct {
	inner *gearregistry.Registry

	mu    sync.Mutex
	calls map[hashing.Fingerprint]int
}

func newCountingStore(inner *gearregistry.Registry) *countingStore {
	return &countingStore{inner: inner, calls: make(map[hashing.Fingerprint]int)}
}

func (c *countingStore) Query(fp hashing.Fingerprint) (bool, error) { return c.inner.Query(fp) }
func (c *countingStore) Upload(fp hashing.Fingerprint, data []byte) error {
	return c.inner.Upload(fp, data)
}
func (c *countingStore) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	c.mu.Lock()
	c.calls[fp]++
	c.mu.Unlock()
	return c.inner.Download(fp)
}

func (c *countingStore) counts() map[hashing.Fingerprint]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[hashing.Fingerprint]int, len(c.calls))
	for fp, n := range c.calls {
		out[fp] = n
	}
	return out
}

// bigFixture builds an image with many distinct files.
func bigFixture(t *testing.T, files int) (*index.Index, *gearregistry.Registry) {
	t.Helper()
	root := vfs.New()
	if err := root.MkdirAll("/data", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < files; i++ {
		data := bytes.Repeat([]byte(fmt.Sprintf("file %d ", i)), 64)
		if err := root.WriteFile(fmt.Sprintf("/data/f%03d", i), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ix, pool, err := index.Build("big", "v1", imagefmt.Config{}, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := gearregistry.New(gearregistry.Options{})
	for fp, data := range pool {
		if err := reg.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	return ix, reg
}

// TestConcurrentFaultsSingleDownload: N goroutines faulting the same
// file set through many containers must trigger exactly one remote
// download per fingerprint — the singleflight guarantee, observed both
// at the registry and via OnRemoteFetch.
func TestConcurrentFaultsSingleDownload(t *testing.T) {
	const goroutines = 16
	ix, reg := bigFixture(t, 12)
	counting := newCountingStore(reg)

	var hookObjects atomic.Int64
	s, err := New(Options{
		Remote: counting,
		OnRemoteFetch: func(objects int, _ int64) {
			hookObjects.Add(int64(objects))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}

	paths := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		paths = append(paths, fmt.Sprintf("/data/f%03d", i))
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		v, err := s.CreateContainer(fmt.Sprintf("c%d", g), "big:v1")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, p := range paths {
				if _, err := v.ReadFile(p); err != nil {
					errs <- fmt.Errorf("%s: %w", p, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for fp, n := range counting.counts() {
		if n != 1 {
			t.Errorf("fingerprint %s downloaded %d times, want 1", fp, n)
		}
	}
	st := s.Stats()
	if st.RemoteObjects != 12 {
		t.Errorf("remote objects = %d, want 12", st.RemoteObjects)
	}
	if hookObjects.Load() != 12 {
		t.Errorf("OnRemoteFetch saw %d objects, want 12", hookObjects.Load())
	}
}

// TestFetchAllDedupsAgainstConcurrentFaults: FetchAll running while
// goroutines lazily fault the same fingerprints must still produce
// exactly one download per object.
func TestFetchAllDedupsAgainstConcurrentFaults(t *testing.T) {
	const files = 32
	ix, reg := bigFixture(t, files)
	counting := newCountingStore(reg)
	s, err := New(Options{Remote: counting, FetchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c", "big:v1")
	if err != nil {
		t.Fatal(err)
	}

	var paths []string
	var fps []hashing.Fingerprint
	walkEntries(ix.Root, "", func(p string, e *index.Entry) {
		if e.Type == vfs.TypeRegular {
			paths = append(paths, p)
			fps = append(fps, e.Fingerprint)
		}
	})
	if len(fps) != files {
		t.Fatalf("fixture has %d files, want %d", len(fps), files)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.FetchAll(fps); err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, p := range paths {
				if _, err := v.ReadFile(p); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for fp, n := range counting.counts() {
		if n != 1 {
			t.Errorf("fingerprint %s downloaded %d times, want 1", fp, n)
		}
	}
	st := s.Stats()
	if st.RemoteObjects != files {
		t.Errorf("remote objects = %d, want %d", st.RemoteObjects, files)
	}
}

// TestFetchAllBatchesPerWorker: with a batch-capable remote, FetchAll
// issues one DownloadBatch per worker and the window reflects the
// shards.
func TestFetchAllBatchesPerWorker(t *testing.T) {
	const files = 20
	ix, reg := bigFixture(t, files)
	s, err := New(Options{Remote: reg, FetchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	var fps []hashing.Fingerprint
	walkEntries(ix.Root, "", func(_ string, e *index.Entry) {
		if e.Type == vfs.TypeRegular {
			fps = append(fps, e.Fingerprint)
		}
	})

	var windows []FetchWindow
	s.opts.OnFetchWindow = func(w FetchWindow) { windows = append(windows, w) }
	window, err := s.FetchAll(fps)
	if err != nil {
		t.Fatal(err)
	}
	if len(window.Streams) != 4 {
		t.Fatalf("got %d streams, want 4", len(window.Streams))
	}
	if window.Objects() != files {
		t.Errorf("window objects = %d, want %d", window.Objects(), files)
	}
	for i, st := range window.Streams {
		if !st.Batched {
			t.Errorf("stream %d not batched", i)
		}
		if st.Objects != files/4 {
			t.Errorf("stream %d has %d objects, want %d", i, st.Objects, files/4)
		}
	}
	if len(windows) != 1 {
		t.Fatalf("OnFetchWindow fired %d times, want 1", len(windows))
	}

	// Second FetchAll: everything cached, no streams, no hook.
	window, err = s.FetchAll(fps)
	if err != nil {
		t.Fatal(err)
	}
	if window.Objects() != 0 || len(windows) != 1 {
		t.Errorf("warm FetchAll fetched %d objects, hook fired %d times", window.Objects(), len(windows))
	}
}

// TestFetchAllWorkersEquivalent: the same fingerprint set fetched with
// different worker counts yields identical cache contents and identical
// remote byte/object totals — parallelism changes time, not volume.
func TestFetchAllWorkersEquivalent(t *testing.T) {
	const files = 17 // not divisible by worker counts: exercises uneven shards
	ix, reg := bigFixture(t, files)
	var fps []hashing.Fingerprint
	walkEntries(ix.Root, "", func(_ string, e *index.Entry) {
		if e.Type == vfs.TypeRegular {
			fps = append(fps, e.Fingerprint)
		}
	})

	var base Stats
	for i, workers := range []int{1, 2, 4, 8, 16} {
		s, err := New(Options{Remote: reg, FetchWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddIndex(ix); err != nil {
			t.Fatal(err)
		}
		if _, err := s.FetchAll(fps); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if i == 0 {
			base = st
			continue
		}
		if st.RemoteObjects != base.RemoteObjects || st.RemoteBytes != base.RemoteBytes {
			t.Errorf("workers=%d: objects/bytes = %d/%d, want %d/%d",
				workers, st.RemoteObjects, st.RemoteBytes, base.RemoteObjects, base.RemoteBytes)
		}
	}
}

// TestConcurrentContainerLifecycle: container create/fault/remove racing
// across goroutines must not deadlock (the RemoveContainer/fault lock
// cycle) or corrupt store state.
func TestConcurrentContainerLifecycle(t *testing.T) {
	ix, reg := bigFixture(t, 8)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id := fmt.Sprintf("c%d-%d", g, i)
				v, err := s.CreateContainer(id, "big:v1")
				if err != nil {
					t.Error(err)
					return
				}
				p := fmt.Sprintf("/data/f%03d", (g+i)%8)
				if _, err := v.ReadFile(p); err != nil {
					t.Error(err)
					return
				}
				if err := s.RemoveContainer(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Containers != 0 {
		t.Errorf("containers left = %d, want 0", st.Containers)
	}
}

// TestSnapshotDuringConcurrentFetchAll: readers hammering the shared
// telemetry registry's Snapshot() — and the legacy Stats() view — while
// FetchAll and demand faults publish concurrently must stay race-clean
// (run under -race), every mid-flight snapshot must validate, and after
// quiesce the unified snapshot must reconcile exactly with the legacy
// per-package accessor.
func TestSnapshotDuringConcurrentFetchAll(t *testing.T) {
	const files = 32
	ix, reg := bigFixture(t, files)
	tele := telemetry.NewRegistry()
	s, err := New(Options{Remote: reg, FetchWorkers: 4, Telemetry: tele})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c", "big:v1")
	if err != nil {
		t.Fatal(err)
	}

	var paths []string
	var fps []hashing.Fingerprint
	walkEntries(ix.Root, "", func(p string, e *index.Entry) {
		if e.Type == vfs.TypeRegular {
			paths = append(paths, p)
			fps = append(fps, e.Fingerprint)
		}
	})

	done := make(chan struct{})
	var snapshots atomic.Int64
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := tele.Snapshot()
				if err := snap.Validate(); err != nil {
					t.Errorf("mid-flight snapshot invalid: %v", err)
					return
				}
				_ = s.Stats() // the legacy view must also be safe to copy
				snapshots.Add(1)
			}
		}()
	}

	var writers sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			if _, err := s.FetchAll(fps); err != nil {
				errs <- err
			}
		}()
		writers.Add(1)
		go func() {
			defer writers.Done()
			for _, p := range paths {
				if _, err := v.ReadFile(p); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	writers.Wait()
	close(done)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if snapshots.Load() == 0 {
		t.Fatal("snapshot readers never ran")
	}

	// After quiesce: the unified snapshot and the legacy Stats view read
	// the same handles, so they must agree to the last byte.
	snap := tele.Snapshot()
	st := s.Stats()
	checks := []struct {
		metric string
		got    int64
		want   int64
	}{
		{"store.remote.objects", snap.Counter("store.remote.objects"), st.RemoteObjects},
		{"store.remote.bytes", snap.Counter("store.remote.bytes"), st.RemoteBytes},
		{"store.peer.objects", snap.Counter("store.peer.objects"), st.PeerObjects},
		{"store.demand.misses", snap.Counter("store.demand.misses"), st.DemandMisses},
		{"store.demand.stall.bytes", snap.Counter("store.demand.stall.bytes"), st.StallBytes},
		{"store.prefetch.objects", snap.Counter("store.prefetch.objects"), st.PrefetchObjects},
		{"store.prefetch.hits", snap.Counter("store.prefetch.hits"), st.PrefetchHits},
		{"store.indexes", snap.Gauge("store.indexes"), int64(st.Indexes)},
		{"store.containers", snap.Gauge("store.containers"), int64(st.Containers)},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: snapshot %d != legacy view %d", c.metric, c.got, c.want)
		}
	}
	if st.RemoteObjects != files {
		t.Errorf("remote objects = %d, want %d", st.RemoteObjects, files)
	}
}

// TestConcurrentPrefetchAndDeploy: Prefetch racing container reads.
func TestConcurrentPrefetchAndDeploy(t *testing.T) {
	ix, reg := bigFixture(t, 24)
	counting := newCountingStore(reg)
	s, err := New(Options{Remote: counting, FetchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c", "big:v1")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := s.Prefetch("big:v1"); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 24; i++ {
			if _, err := v.ReadFile(fmt.Sprintf("/data/f%03d", i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	for fp, n := range counting.counts() {
		if n != 1 {
			t.Errorf("fingerprint %s downloaded %d times, want 1", fp, n)
		}
	}
}
