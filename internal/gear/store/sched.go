package store

import (
	"errors"
	"fmt"
	"sync"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/prefetch"
)

// Two-class fetch scheduling. Every transfer the store issues belongs
// to one of two classes:
//
//	demand   — a container is blocked on the bytes right now (a viewer
//	           fault, a ranged read, an explicit FetchAll);
//	prefetch — a background profile replay warming the level-1 cache.
//
// Demand has strict priority: prefetch admissions wait until no demand
// transfer is active, and the number of in-flight prefetch objects
// never exceeds the configured budget, so background replay can never
// starve a foreground miss of link bandwidth or worker slots. An
// in-flight prefetch transfer is not aborted when demand arrives (the
// bytes are already moving and will be wanted anyway); preemption
// happens at admission granularity. The singleflight table is shared
// by both classes, so a fingerprint being prefetched is never fetched
// a second time by a demand miss — the miss joins the prefetch flight
// (and its wait is accounted as demand stall).
type fetchClass int

const (
	classDemand fetchClass = iota
	classPrefetch
)

// DefaultPrefetchInflight is the prefetch budget used when Options
// leaves PrefetchInflight zero.
const DefaultPrefetchInflight = 4

// scheduler is the two-class admission gate. It is cheap enough to sit
// on every miss: demand transfers touch one mutex twice.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	demand int // active demand transfers
	inflt  int // admitted prefetch objects
	budget int
}

func newScheduler(budget int) *scheduler {
	s := &scheduler{budget: budget}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// beginDemand registers a foreground transfer. Prefetch admission
// pauses until every registered demand ends.
func (s *scheduler) beginDemand() {
	s.mu.Lock()
	s.demand++
	s.mu.Unlock()
}

// endDemand retires a foreground transfer, waking prefetch waiters
// when the last one drains.
func (s *scheduler) endDemand() {
	s.mu.Lock()
	s.demand--
	if s.demand == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// acquirePrefetch admits n prefetch objects, blocking while any demand
// transfer is active or while the admission would exceed the inflight
// budget. n must not exceed the budget.
func (s *scheduler) acquirePrefetch(n int) {
	s.mu.Lock()
	for s.demand > 0 || s.inflt+n > s.budget {
		s.cond.Wait()
	}
	s.inflt += n
	s.mu.Unlock()
}

// releasePrefetch retires n admitted prefetch objects.
func (s *scheduler) releasePrefetch(n int) {
	s.mu.Lock()
	s.inflt -= n
	s.cond.Broadcast()
	s.mu.Unlock()
}

// recorder returns (creating if needed) the access recorder for ref.
// Recording is enabled by configuring a profile library.
func (s *Store) recorder(ref string) *prefetch.Recorder {
	if s.opts.Profiles == nil {
		return nil
	}
	s.recMu.Lock()
	defer s.recMu.Unlock()
	r, ok := s.recorders[ref]
	if !ok {
		r = prefetch.NewRecorder()
		s.recorders[ref] = r
	}
	return r
}

// record notes a first-class read access for ref's startup profile.
func (s *Store) record(ref string, fp hashing.Fingerprint, size int64) {
	if r := s.recorder(ref); r != nil {
		r.Record(fp, size)
	}
}

// SaveProfile persists ref's recorded access trace into the configured
// profile library. It refuses to replace a persisted profile with a
// shorter trace (a warm redeploy that exits early must not clobber the
// richer profile that warmed it), and reports whether it saved.
func (s *Store) SaveProfile(ref string) (bool, error) {
	if s.opts.Profiles == nil {
		return false, nil
	}
	s.recMu.Lock()
	r := s.recorders[ref]
	s.recMu.Unlock()
	if r == nil || r.Len() == 0 {
		return false, nil
	}
	// A corrupt or version-skewed stored profile decodes with an error
	// and is treated as absent: the fresh trace replaces it.
	if existing, err := s.opts.Profiles.Get(ref); err == nil && len(existing.Entries) >= r.Len() {
		return false, nil
	}
	if err := s.opts.Profiles.Put(r.Snapshot(ref)); err != nil {
		return false, fmt.Errorf("store: save profile %s: %w", ref, err)
	}
	return true, nil
}

// PrefetchResult summarizes one startup-profile replay.
type PrefetchResult struct {
	// Found reports that a usable (present, decodable, right-version)
	// profile existed. False means the deploy ran exactly as without
	// prefetch.
	Found bool `json:"found"`
	// Entries is the profile's recorded access count.
	Entries int `json:"entries"`
	// Requested is how many raw Gear objects (files, or chunks of
	// chunked files) the replay submitted to the fetch engine — entries
	// already cached at admission time are skipped.
	Requested int `json:"requested"`
	// Objects/Bytes are the registry (WAN) transfers the replay itself
	// performed; objects another flight was already fetching are not
	// counted here.
	Objects int   `json:"objects"`
	Bytes   int64 `json:"bytes"`
	// Windows is the number of admission groups issued (each at most
	// the inflight budget wide).
	Windows int `json:"windows"`
}

// PrefetchProfile replays ref's persisted startup profile through the
// fetch engine under the prefetch class: objects are admitted in
// first-access order, at most PrefetchInflight at a time, only while
// no demand transfer is active. A missing, corrupt, or version-skewed
// profile is not an error — the result reports Found=false and the
// deploy degrades to plain lazy faulting. The image's index must be
// installed (chunked files replay as their chunks).
func (s *Store) PrefetchProfile(ref string) (PrefetchResult, error) {
	var res PrefetchResult
	if s.opts.Profiles == nil {
		return res, nil
	}
	p, err := s.opts.Profiles.Get(ref)
	if err != nil {
		return res, nil // absent/corrupt/skewed profile: no prefetch
	}
	s.mu.Lock()
	st, ok := s.indexes[ref]
	s.mu.Unlock()
	if !ok {
		return res, fmt.Errorf("store: prefetch %s: %w", ref, ErrNoIndex)
	}
	res.Found = true
	res.Entries = len(p.Entries)

	// Translate profile entries into raw transfer objects, preserving
	// access order and deduplicating chunks shared between files.
	seen := make(map[hashing.Fingerprint]bool, len(p.Entries))
	var objects []hashing.Fingerprint
	add := func(fp hashing.Fingerprint) {
		if !seen[fp] {
			seen[fp] = true
			objects = append(objects, fp)
		}
	}
	for _, e := range p.Entries {
		if chunks := st.chunks[e.Fingerprint]; len(chunks) > 0 {
			for _, ch := range chunks {
				add(ch.Fingerprint)
			}
			continue
		}
		add(e.Fingerprint)
	}

	budget := s.opts.PrefetchInflight
	var errs []error
	for lo := 0; lo < len(objects); {
		// Build the next admission group: up to budget objects that are
		// not already local.
		group := make([]hashing.Fingerprint, 0, budget)
		for lo < len(objects) && len(group) < budget {
			if !s.cache.Contains(objects[lo]) {
				group = append(group, objects[lo])
			}
			lo++
		}
		if len(group) == 0 {
			continue
		}
		res.Requested += len(group)
		res.Windows++
		s.sched.acquirePrefetch(len(group))
		w, err := s.fetchAll(group, len(group), classPrefetch)
		s.sched.releasePrefetch(len(group))
		if err != nil {
			errs = append(errs, err)
		}
		res.Objects += w.Objects()
		res.Bytes += w.Bytes()
	}
	return res, errors.Join(errs...)
}

// PrefetchHandle tracks a background profile replay started with
// StartPrefetch.
type PrefetchHandle struct {
	done chan struct{}
	res  PrefetchResult
	err  error
}

// Wait blocks until the replay finishes and returns its result.
func (h *PrefetchHandle) Wait() (PrefetchResult, error) {
	<-h.done
	return h.res, h.err
}

// StartPrefetch runs PrefetchProfile in the background — the
// deployment shape the profile is for: the container starts faulting
// immediately while the replay warms the cache behind it, yielding to
// every demand miss.
func (s *Store) StartPrefetch(ref string) *PrefetchHandle {
	h := &PrefetchHandle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.res, h.err = s.PrefetchProfile(ref)
	}()
	return h
}

// markPrefetched tags fp as admitted to the cache by a prefetch
// replay; the tag is consumed by the first demand hit (PrefetchHits)
// or remains as waste (PrefetchWasted).
func (s *Store) markPrefetched(fp hashing.Fingerprint) {
	s.prefMu.Lock()
	if !s.prefetched[fp] {
		s.prefetched[fp] = true
		s.m.prefetchWasted.Add(1)
	}
	s.prefMu.Unlock()
}

// noteDemandHit updates prefetch-effectiveness accounting for a demand
// read served from the level-1 cache.
func (s *Store) noteDemandHit(fp hashing.Fingerprint) {
	s.prefMu.Lock()
	if s.prefetched[fp] {
		delete(s.prefetched, fp)
		s.m.prefetchWasted.Add(-1)
		s.m.prefetchHits.Add(1)
	}
	s.prefMu.Unlock()
}

// noteDemandMiss updates stall accounting for a demand read that had
// to wait for contentBytes to arrive (led or joined). A miss on a
// fingerprint the replay was still fetching clears its prefetch tag
// without scoring a hit: the prefetch did not arrive in time.
func (s *Store) noteDemandMiss(fp hashing.Fingerprint, contentBytes int64) {
	s.m.demandMisses.Add(1)
	s.m.stallBytes.Add(contentBytes)
	s.prefMu.Lock()
	if s.prefetched[fp] {
		delete(s.prefetched, fp)
		s.m.prefetchWasted.Add(-1)
	}
	s.prefMu.Unlock()
}
