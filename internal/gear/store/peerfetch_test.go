package store

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

// fakePeers is a PeerSource with scriptable behavior per fingerprint:
// serve, corrupt the payload, or miss. It counts probes to assert the
// singleflight invariant holds across the peer path too.
type fakePeers struct {
	mu      sync.Mutex
	data    map[hashing.Fingerprint][]byte
	corrupt map[hashing.Fingerprint]bool // serve wrong bytes for these
	calls   map[hashing.Fingerprint]int
}

func newFakePeers(pool map[hashing.Fingerprint][]byte) *fakePeers {
	data := make(map[hashing.Fingerprint][]byte, len(pool))
	for fp, d := range pool {
		data[fp] = d
	}
	return &fakePeers{
		data:    data,
		corrupt: make(map[hashing.Fingerprint]bool),
		calls:   make(map[hashing.Fingerprint]int),
	}
}

func (p *fakePeers) FetchPeer(fp hashing.Fingerprint) ([]byte, int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls[fp]++
	d, ok := p.data[fp]
	if !ok {
		return nil, 0, false
	}
	if p.corrupt[fp] {
		d = append([]byte("flipped:"), d...)
	}
	return d, int64(len(d)), true
}

func (p *fakePeers) counts() map[hashing.Fingerprint]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[hashing.Fingerprint]int, len(p.calls))
	for fp, n := range p.calls {
		out[fp] = n
	}
	return out
}

// peerFixture builds an image whose file pool is known to the caller,
// uploaded to a fresh registry.
func peerFixture(t *testing.T, files int) (*index.Index, map[hashing.Fingerprint][]byte, *gearregistry.Registry) {
	t.Helper()
	root := vfs.New()
	if err := root.MkdirAll("/data", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < files; i++ {
		data := bytes.Repeat([]byte(fmt.Sprintf("peer file %d ", i)), 64)
		if err := root.WriteFile(fmt.Sprintf("/data/f%03d", i), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ix, pool, err := index.Build("peered", "v1", imagefmt.Config{}, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := gearregistry.New(gearregistry.Options{})
	for fp, data := range pool {
		if err := reg.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	return ix, pool, reg
}

func poolFingerprints(pool map[hashing.Fingerprint][]byte) []hashing.Fingerprint {
	fps := make([]hashing.Fingerprint, 0, len(pool))
	for fp := range pool {
		fps = append(fps, fp)
	}
	return fps
}

// TestPeerFetchServesFromPeersNotRegistry: with a peer source that holds
// everything, both the FetchAll path and the lazy fault path are served
// entirely by peers — zero registry traffic, correct bytes, and peer
// accounting visible through Stats and the OnPeerFetch hook.
func TestPeerFetchServesFromPeersNotRegistry(t *testing.T) {
	ix, pool, reg := peerFixture(t, 10)
	counting := newCountingStore(reg)
	peers := newFakePeers(pool)

	var hookObjects atomic.Int64
	var hookBytes atomic.Int64
	s, err := New(Options{
		Remote: counting,
		Peers:  peers,
		OnPeerFetch: func(objects int, bytes int64) {
			hookObjects.Add(int64(objects))
			hookBytes.Add(bytes)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}

	// Half through the batched FetchAll path...
	fps := poolFingerprints(pool)
	half := fps[:len(fps)/2]
	if _, err := s.FetchAll(half); err != nil {
		t.Fatal(err)
	}
	// ...the rest through lazy faults.
	v, err := s.CreateContainer("c0", "peered:v1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("/data/f%03d", i)
		got, err := v.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte(fmt.Sprintf("peer file %d ", i)), 64)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: peer-served content differs", p)
		}
	}

	st := s.Stats()
	if st.PeerObjects != int64(len(pool)) {
		t.Errorf("peer objects = %d, want %d", st.PeerObjects, len(pool))
	}
	if st.RemoteObjects != 0 || st.RemoteBytes != 0 {
		t.Errorf("registry traffic = %d objects / %d bytes, want none", st.RemoteObjects, st.RemoteBytes)
	}
	if len(counting.counts()) != 0 {
		t.Errorf("registry saw downloads: %v", counting.counts())
	}
	if hookObjects.Load() != st.PeerObjects || hookBytes.Load() != st.PeerBytes {
		t.Errorf("OnPeerFetch saw %d/%d, stats say %d/%d",
			hookObjects.Load(), hookBytes.Load(), st.PeerObjects, st.PeerBytes)
	}
}

// TestCorruptPeerFallsBackToRegistry: a peer serving bytes that fail
// fingerprint verification is ignored — every object transparently
// falls back to the registry, content stays correct, and nothing
// corrupt is ever attributed to the peer path.
func TestCorruptPeerFallsBackToRegistry(t *testing.T) {
	ix, pool, reg := peerFixture(t, 8)
	counting := newCountingStore(reg)
	peers := newFakePeers(pool)
	for fp := range pool {
		peers.corrupt[fp] = true
	}

	s, err := New(Options{Remote: counting, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}

	fps := poolFingerprints(pool)
	if _, err := s.FetchAll(fps[:len(fps)/2]); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c0", "peered:v1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("/data/f%03d", i)
		got, err := v.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte(fmt.Sprintf("peer file %d ", i)), 64)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: corrupt peer bytes reached a container", p)
		}
	}

	st := s.Stats()
	if st.PeerObjects != 0 || st.PeerBytes != 0 {
		t.Errorf("corrupt peer accounted as %d objects / %d bytes", st.PeerObjects, st.PeerBytes)
	}
	if st.RemoteObjects != int64(len(pool)) {
		t.Errorf("registry objects = %d, want %d", st.RemoteObjects, len(pool))
	}
	// Fallback preserves singleflight: exactly one registry download per
	// fingerprint despite the wasted peer probes.
	for fp, n := range counting.counts() {
		if n != 1 {
			t.Errorf("fingerprint %s downloaded %d times, want 1", fp, n)
		}
	}
}

// TestMixedPeerOutcomesSplitAccounting: peers hold some files, corrupt
// others, and miss the rest; each object lands on exactly one side of
// the peer/registry accounting split.
func TestMixedPeerOutcomesSplitAccounting(t *testing.T) {
	ix, pool, reg := peerFixture(t, 9)
	counting := newCountingStore(reg)
	peers := newFakePeers(pool)
	fps := poolFingerprints(pool)
	served := map[hashing.Fingerprint]bool{}
	for i, fp := range fps {
		switch i % 3 {
		case 0: // served intact
			served[fp] = true
		case 1: // served corrupt → registry
			peers.corrupt[fp] = true
		case 2: // not held → registry
			delete(peers.data, fp)
		}
	}

	s, err := New(Options{Remote: counting, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FetchAll(fps); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	wantPeer := int64(len(served))
	if st.PeerObjects != wantPeer {
		t.Errorf("peer objects = %d, want %d", st.PeerObjects, wantPeer)
	}
	if st.RemoteObjects != int64(len(fps))-wantPeer {
		t.Errorf("registry objects = %d, want %d", st.RemoteObjects, int64(len(fps))-wantPeer)
	}
	for fp, n := range counting.counts() {
		if served[fp] {
			t.Errorf("peer-served %s also hit the registry %d times", fp, n)
		}
		if n != 1 {
			t.Errorf("fingerprint %s downloaded %d times, want 1", fp, n)
		}
	}
}

// TestPeerFetchPreservesSingleflight: concurrent faults on the same
// files with a peer source must probe each peer fingerprint at most
// once — joiners wait on the leader's flight instead of re-probing.
func TestPeerFetchPreservesSingleflight(t *testing.T) {
	const goroutines = 16
	ix, pool, reg := peerFixture(t, 12)
	counting := newCountingStore(reg)
	peers := newFakePeers(pool)

	s, err := New(Options{Remote: counting, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}

	paths := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		paths = append(paths, fmt.Sprintf("/data/f%03d", i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		v, err := s.CreateContainer(fmt.Sprintf("c%d", g), "peered:v1")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, p := range paths {
				if _, err := v.ReadFile(p); err != nil {
					errs <- fmt.Errorf("%s: %w", p, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for fp, n := range peers.counts() {
		if n != 1 {
			t.Errorf("fingerprint %s probed %d times, want 1", fp, n)
		}
	}
	if got := len(counting.counts()); got != 0 {
		t.Errorf("registry saw %d downloads, want 0", got)
	}
	if st := s.Stats(); st.PeerObjects != 12 {
		t.Errorf("peer objects = %d, want 12", st.PeerObjects)
	}
}
