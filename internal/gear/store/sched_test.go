package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/prefetch"
	"github.com/gear-image/gear/internal/vfs"
)

// prefetchFixture builds an image with five "startup" files plus one
// off-profile file, publishes it to a registry, and returns the index,
// the per-path fingerprints, and the registry.
func prefetchFixture(t *testing.T) (*index.Index, map[string]hashing.Fingerprint, *gearregistry.Registry) {
	t.Helper()
	root := vfs.New()
	contents := map[string][]byte{"/d": []byte("demand-only file, not in any profile")}
	for i := 0; i < 5; i++ {
		contents[fmt.Sprintf("/p%d", i)] = bytes.Repeat([]byte{byte('a' + i)}, 512)
	}
	fps := make(map[string]hashing.Fingerprint, len(contents))
	for p, data := range contents {
		if err := root.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		fps[p] = hashing.FingerprintBytes(data)
	}
	ix, pool, err := index.Build("web", "v1", imagefmt.Config{}, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := gearregistry.New(gearregistry.Options{})
	for fp, data := range pool {
		if err := reg.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	return ix, fps, reg
}

// startupProfile persists the p-files' access order into a library.
func startupProfile(t *testing.T, fps map[string]hashing.Fingerprint) *prefetch.Library {
	t.Helper()
	lib := prefetch.NewLibrary()
	p := &prefetch.Profile{ImageRef: "web:v1"}
	for i := 0; i < 5; i++ {
		p.Entries = append(p.Entries, prefetch.Entry{
			Fingerprint: fps[fmt.Sprintf("/p%d", i)],
			Size:        512,
		})
	}
	if err := lib.Put(p); err != nil {
		t.Fatal(err)
	}
	return lib
}

// blockingRemote wraps a registry so the test controls exactly when
// each download finishes. It deliberately does not implement
// BatchDownloader: every object is one Download call, so concurrency
// is observable per object.
type blockingRemote struct {
	backing gearregistry.Store
	startCh chan hashing.Fingerprint // signals every download start
	gates   map[hashing.Fingerprint]chan struct{}

	mu          sync.Mutex
	completed   []hashing.Fingerprint
	prefetchSet map[hashing.Fingerprint]bool
	cur, max    int // in-flight prefetch-class downloads
}

func newBlockingRemote(backing gearregistry.Store, prefetchSet map[hashing.Fingerprint]bool) *blockingRemote {
	return &blockingRemote{
		backing:     backing,
		startCh:     make(chan hashing.Fingerprint, 64),
		gates:       make(map[hashing.Fingerprint]chan struct{}),
		prefetchSet: prefetchSet,
	}
}

func (b *blockingRemote) gate(fp hashing.Fingerprint) chan struct{} {
	ch := make(chan struct{})
	b.gates[fp] = ch
	return ch
}

func (b *blockingRemote) Query(fp hashing.Fingerprint) (bool, error) {
	return b.backing.Query(fp)
}

func (b *blockingRemote) Upload(fp hashing.Fingerprint, data []byte) error {
	return b.backing.Upload(fp, data)
}

func (b *blockingRemote) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	b.mu.Lock()
	if b.prefetchSet[fp] {
		b.cur++
		if b.cur > b.max {
			b.max = b.cur
		}
	}
	gate := b.gates[fp]
	b.mu.Unlock()
	b.startCh <- fp
	if gate != nil {
		<-gate
	}
	data, wire, err := b.backing.Download(fp)
	b.mu.Lock()
	if b.prefetchSet[fp] {
		b.cur--
	}
	b.completed = append(b.completed, fp)
	b.mu.Unlock()
	return data, wire, err
}

func (b *blockingRemote) waitStarts(t *testing.T, n int) []hashing.Fingerprint {
	t.Helper()
	var got []hashing.Fingerprint
	for len(got) < n {
		select {
		case fp := <-b.startCh:
			got = append(got, fp)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %d download starts (got %d)", n, len(got))
		}
	}
	return got
}

func (b *blockingRemote) snapshot() (completed []hashing.Fingerprint, maxPrefetch int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]hashing.Fingerprint(nil), b.completed...), b.max
}

// TestSchedulerDemandPreemptsPrefetch drives a background profile
// replay against a registry the test gates, and checks the two-class
// contract: a demand miss arriving mid-replay starts immediately and
// completes before any queued prefetch object starts, and the replay
// never holds more than its inflight budget.
func TestSchedulerDemandPreemptsPrefetch(t *testing.T) {
	ix, fps, reg := prefetchFixture(t)
	lib := startupProfile(t, fps)

	prefetchSet := make(map[hashing.Fingerprint]bool)
	for i := 0; i < 5; i++ {
		prefetchSet[fps[fmt.Sprintf("/p%d", i)]] = true
	}
	remote := newBlockingRemote(reg, prefetchSet)
	// Gate the first prefetch group and the demand object; later groups
	// run ungated.
	gateP0 := remote.gate(fps["/p0"])
	gateP1 := remote.gate(fps["/p1"])
	gateD := remote.gate(fps["/d"])

	s, err := New(Options{Remote: remote, Profiles: lib, PrefetchInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}

	h := s.StartPrefetch("web:v1")
	// The first admission group (budget 2) is in flight, gated.
	remote.waitStarts(t, 2)

	// A demand miss starts immediately even with the budget saturated.
	readDone := make(chan error, 1)
	go func() {
		_, err := v.ReadFile("/d")
		readDone <- err
	}()
	if got := remote.waitStarts(t, 1); got[0] != fps["/d"] {
		t.Fatalf("third download start = %s, want demand object %s", got[0], fps["/d"])
	}

	// Retire prefetch group 1. The demand transfer is still active, so
	// group 2 must stay queued: no new download may start.
	close(gateP0)
	close(gateP1)
	select {
	case fp := <-remote.startCh:
		t.Fatalf("download of %s started while a demand miss was active", fp)
	case <-time.After(100 * time.Millisecond):
	}

	// Release the demand object; the replay resumes only after it is
	// fully served.
	close(gateD)
	if err := <-readDone; err != nil {
		t.Fatal(err)
	}
	remote.waitStarts(t, 3) // group 2 (p2, p3) and group 3 (p4)
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}

	completed, maxPrefetch := remote.snapshot()
	if maxPrefetch > 2 {
		t.Errorf("prefetch held %d objects in flight, budget is 2", maxPrefetch)
	}
	// The demand object finished before any post-preemption prefetch
	// object started, hence before any of them completed.
	demandAt, p2At := -1, -1
	for i, fp := range completed {
		if fp == fps["/d"] {
			demandAt = i
		}
		if fp == fps["/p2"] {
			p2At = i
		}
	}
	if demandAt == -1 || p2At == -1 || demandAt > p2At {
		t.Errorf("completion order %v: demand at %d, p2 at %d", completed, demandAt, p2At)
	}

	st := s.Stats()
	if st.DemandMisses != 1 {
		t.Errorf("demand misses = %d, want 1 (the /d fault)", st.DemandMisses)
	}
	if st.PrefetchObjects != 5 {
		t.Errorf("prefetch objects = %d, want 5", st.PrefetchObjects)
	}
	if st.PrefetchHits != 0 || st.PrefetchWasted != 5 {
		t.Errorf("before any profile read: hits=%d wasted=%d, want 0/5", st.PrefetchHits, st.PrefetchWasted)
	}

	// Demand reads of replayed files are cache hits and consume the
	// prefetched tags.
	for i := 0; i < 5; i++ {
		if _, err := v.ReadFile(fmt.Sprintf("/p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st = s.Stats()
	if st.DemandMisses != 1 {
		t.Errorf("profile reads caused demand misses: %d", st.DemandMisses)
	}
	if st.PrefetchHits != 5 || st.PrefetchWasted != 0 {
		t.Errorf("after profile reads: hits=%d wasted=%d, want 5/0", st.PrefetchHits, st.PrefetchWasted)
	}
}

// TestPrefetchProfileWarmRedeploy records a profile from a cold deploy,
// replays it on a fresh store, and checks the second deploy faults
// without a single demand miss — while total registry traffic stays
// identical to the cold run.
func TestPrefetchProfileWarmRedeploy(t *testing.T) {
	ix, fps, reg := prefetchFixture(t)
	lib := prefetch.NewLibrary()

	cold, err := New(Options{Remote: reg, Profiles: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := cold.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := v.ReadFile(fmt.Sprintf("/p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if saved, err := cold.SaveProfile("web:v1"); err != nil || !saved {
		t.Fatalf("SaveProfile = %v, %v; want save", saved, err)
	}
	coldStats := cold.Stats()
	if coldStats.DemandMisses != 5 {
		t.Fatalf("cold demand misses = %d, want 5", coldStats.DemandMisses)
	}

	// The persisted profile preserves first-access order.
	p, err := lib.Get("web:v1")
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range p.Entries {
		if want := fps[fmt.Sprintf("/p%d", i)]; e.Fingerprint != want {
			t.Fatalf("profile entry %d = %s, want %s", i, e.Fingerprint, want)
		}
	}

	warm, err := New(Options{Remote: reg, Profiles: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	res, err := warm.PrefetchProfile("web:v1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Objects != 5 {
		t.Fatalf("replay = %+v, want Found with 5 objects", res)
	}
	v2, err := warm.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := v2.ReadFile(fmt.Sprintf("/p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	warmStats := warm.Stats()
	if warmStats.DemandMisses != 0 || warmStats.StallBytes != 0 {
		t.Errorf("warm deploy stalled: misses=%d bytes=%d", warmStats.DemandMisses, warmStats.StallBytes)
	}
	if warmStats.PrefetchHits != 5 {
		t.Errorf("prefetch hits = %d, want 5", warmStats.PrefetchHits)
	}
	if warmStats.RemoteBytes != coldStats.RemoteBytes {
		t.Errorf("warm remote bytes = %d, cold = %d; prefetch must not inflate traffic",
			warmStats.RemoteBytes, coldStats.RemoteBytes)
	}
}

// TestPrefetchProfileAbsentOrBroken: a missing, corrupt, or
// version-skewed profile silently degrades to a plain lazy deploy.
func TestPrefetchProfileAbsentOrBroken(t *testing.T) {
	ix, _, reg := prefetchFixture(t)
	lib := prefetch.NewLibrary()
	s, err := New(Options{Remote: reg, Profiles: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}

	res, err := s.PrefetchProfile("web:v1")
	if err != nil || res.Found {
		t.Fatalf("absent profile: %+v, %v; want not found, nil error", res, err)
	}

	lib.PutRaw("web:v1", []byte("GPF1 this is not a profile"))
	res, err = s.PrefetchProfile("web:v1")
	if err != nil || res.Found {
		t.Fatalf("corrupt profile: %+v, %v; want not found, nil error", res, err)
	}

	// Version skew: valid profile with a bumped version byte.
	good := &prefetch.Profile{ImageRef: "web:v1", Entries: []prefetch.Entry{
		{Fingerprint: hashing.FingerprintBytes([]byte("x")), Size: 1},
	}}
	data, err := prefetch.Encode(good)
	if err != nil {
		t.Fatal(err)
	}
	data[3] = '9'
	lib.PutRaw("web:v1", data)
	res, err = s.PrefetchProfile("web:v1")
	if err != nil || res.Found {
		t.Fatalf("version-skewed profile: %+v, %v; want not found, nil error", res, err)
	}

	if st := s.Stats(); st.PrefetchObjects != 0 || st.RemoteObjects != 0 {
		t.Errorf("degraded replays moved bytes: %+v", st)
	}
}

// TestSaveProfileKeepsRicherTrace: a shorter rerun trace (warm deploys
// fault less) must not clobber the profile that made it fast.
func TestSaveProfileKeepsRicherTrace(t *testing.T) {
	ix, fps, reg := prefetchFixture(t)
	lib := startupProfile(t, fps) // 5 entries persisted

	s, err := New(Options{Remote: reg, Profiles: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadFile("/p0"); err != nil {
		t.Fatal(err)
	}
	if saved, err := s.SaveProfile("web:v1"); err != nil || saved {
		t.Fatalf("SaveProfile with 1-entry trace = %v, %v; want no save", saved, err)
	}
	p, err := lib.Get("web:v1")
	if err != nil || len(p.Entries) != 5 {
		t.Fatalf("persisted profile shrank: %+v, %v", p, err)
	}

	// A richer trace (6 accesses: all five p-files plus /d) does replace it.
	for i := 1; i < 5; i++ {
		if _, err := v.ReadFile(fmt.Sprintf("/p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.ReadFile("/d"); err != nil {
		t.Fatal(err)
	}
	if saved, err := s.SaveProfile("web:v1"); err != nil || !saved {
		t.Fatalf("SaveProfile with richer trace = %v, %v; want save", saved, err)
	}
	p, err = lib.Get("web:v1")
	if err != nil || len(p.Entries) != 6 {
		t.Fatalf("richer trace not persisted: %+v, %v", p, err)
	}
}

// TestEagerPrefetchDoesNotRecord: the whole-image Prefetch walk is not
// a startup access pattern and must leave the profile recorder empty.
func TestEagerPrefetchDoesNotRecord(t *testing.T) {
	ix, _, reg := prefetchFixture(t)
	lib := prefetch.NewLibrary()
	s, err := New(Options{Remote: reg, Profiles: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if err := s.Prefetch("web:v1"); err != nil {
		t.Fatal(err)
	}
	if saved, err := s.SaveProfile("web:v1"); err != nil || saved {
		t.Fatalf("SaveProfile after eager walk = %v, %v; want empty trace", saved, err)
	}
}

// TestViewerStallAgreesWithStore: the viewer's per-container stall
// counter and the store's demand-stall accounting describe the same
// events. Cold, every fault is a demand miss and the viewer's stall
// envelope contains the store's (the store span sits inside the
// resolver call). After a profile replay, faults still happen but hit
// the warmed cache: the store records zero misses and zero stall.
func TestViewerStallAgreesWithStore(t *testing.T) {
	ix, fps, reg := prefetchFixture(t)
	lib := startupProfile(t, fps)

	cold, err := New(Options{Remote: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := cold.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := v.ReadFile(fmt.Sprintf("/p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	vs, ss := v.Stats(), cold.Stats()
	if vs.Faults != ss.DemandMisses {
		t.Errorf("cold: viewer faults = %d, store demand misses = %d", vs.Faults, ss.DemandMisses)
	}
	if ss.StallTime <= 0 {
		t.Errorf("cold: store stall time = %v, want > 0", ss.StallTime)
	}
	if vs.StallTime < ss.StallTime {
		t.Errorf("cold: viewer stall %v < store stall %v; the viewer envelope must contain the store span",
			vs.StallTime, ss.StallTime)
	}

	warm, err := New(Options{Remote: reg, Profiles: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if _, err := warm.PrefetchProfile("web:v1"); err != nil {
		t.Fatal(err)
	}
	v2, err := warm.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := v2.ReadFile(fmt.Sprintf("/p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	vs2, ss2 := v2.Stats(), warm.Stats()
	if vs2.Faults != 5 {
		t.Errorf("warm: viewer faults = %d, want 5 (placeholders still fault)", vs2.Faults)
	}
	if ss2.DemandMisses != 0 || ss2.StallTime != 0 {
		t.Errorf("warm: store misses=%d stall=%v, want 0/0", ss2.DemandMisses, ss2.StallTime)
	}
}
