package store

import (
	"testing"
)

// benchWindowRead measures the chunked demand-read path: each
// iteration cold-faults a 256 KB / 8 KB-chunk file through the window
// budget. Store construction is excluded from the timer so B/op tracks
// the fetch machinery (window accounting, singleflight, assembly).
func benchWindowRead(b *testing.B, window int64, readahead int) {
	ix, reg, want := chunkedFixture(b, 256<<10, 8<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := New(Options{Remote: reg, ChunkWindowBytes: window, ChunkReadahead: readahead})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.AddIndex(ix); err != nil {
			b.Fatal(err)
		}
		v, err := s.CreateContainer("c", "ai:v1")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		data, err := v.ReadFile("/model")
		if err != nil || len(data) != len(want) {
			b.Fatalf("read %d bytes, %v", len(data), err)
		}
	}
}

func BenchmarkChunkWindowRead(b *testing.B) {
	benchWindowRead(b, 64<<10, 0)
}

func BenchmarkChunkWindowReadahead(b *testing.B) {
	benchWindowRead(b, 64<<10, 2)
}
