package store

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

// chunkedFixture publishes one size-byte file chunked at chunkSize into
// a fresh registry and returns the index, registry, and file bytes.
func chunkedFixture(t testing.TB, size, chunkSize int64) (*index.Index, *gearregistry.Registry, []byte) {
	t.Helper()
	root := vfs.New()
	big := make([]byte, size)
	rand.New(rand.NewSource(41)).Read(big)
	if err := root.WriteFile("/model", big, 0o644); err != nil {
		t.Fatal(err)
	}
	ix, pool, err := index.BuildChunked("ai", "v1", imagefmt.Config{}, root, nil, chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	reg := gearregistry.New(gearregistry.Options{})
	for fp, data := range pool {
		if err := reg.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	return ix, reg, big
}

// slowRemote delays every download and tracks the peak number of
// concurrent ones — the observable the window budget must bound.
type slowRemote struct {
	inner gearregistry.Store
	delay time.Duration

	mu       sync.Mutex
	conc     int
	peakConc int
}

func (r *slowRemote) Query(fp hashing.Fingerprint) (bool, error)    { return r.inner.Query(fp) }
func (r *slowRemote) Upload(fp hashing.Fingerprint, d []byte) error { return r.inner.Upload(fp, d) }
func (r *slowRemote) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	r.mu.Lock()
	r.conc++
	if r.conc > r.peakConc {
		r.peakConc = r.conc
	}
	r.mu.Unlock()
	time.Sleep(r.delay)
	defer func() {
		r.mu.Lock()
		r.conc--
		r.mu.Unlock()
	}()
	return r.inner.Download(fp)
}

// A wide ranged read faults its chunks concurrently, but never holds
// more than ChunkWindowBytes in flight.
func TestChunkWindowBoundsInflight(t *testing.T) {
	ix, reg, big := chunkedFixture(t, 65536, 4096) // 16 chunks
	slow := &slowRemote{inner: reg, delay: 10 * time.Millisecond}
	s, err := New(Options{Remote: slow, ChunkWindowBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "ai:v1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadAt("/model", 0, 65536)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("windowed read: %d bytes, %v", len(got), err)
	}
	if peak := s.ChunkWindowPeak(); peak > 8192 {
		t.Errorf("window peak = %d bytes, budget 8192", peak)
	}
	if slow.peakConc > 2 {
		t.Errorf("concurrent downloads = %d, budget admits 2", slow.peakConc)
	}
	if slow.peakConc < 2 {
		t.Errorf("concurrent downloads = %d, want the window to overlap transfers", slow.peakConc)
	}
	if st := s.Stats(); st.RemoteObjects != 16 || st.RemoteBytes != 65536 {
		t.Errorf("remote = %d objects / %d bytes", st.RemoteObjects, st.RemoteBytes)
	}
}

// A chunk bigger than the whole budget degenerates to serial admission
// instead of deadlocking.
func TestChunkWindowOversizedChunk(t *testing.T) {
	ix, reg, big := chunkedFixture(t, 16384, 4096)
	slow := &slowRemote{inner: reg, delay: time.Millisecond}
	s, err := New(Options{Remote: slow, ChunkWindowBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "ai:v1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadAt("/model", 0, 16384)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("oversized-chunk read: %v", err)
	}
	if slow.peakConc != 1 {
		t.Errorf("concurrent downloads = %d, want serial degeneration", slow.peakConc)
	}
	if peak := s.ChunkWindowPeak(); peak != 4096 {
		t.Errorf("window peak = %d, want one chunk", peak)
	}
}

// Leftover budget reads ahead along the file; the readahead chunks are
// background prefetch traffic, and a later demand read consumes them
// from the cache as prefetch hits.
func TestChunkReadahead(t *testing.T) {
	ix, reg, big := chunkedFixture(t, 20000, 4096) // 5 chunks
	s, err := New(Options{Remote: reg, ChunkReadahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "ai:v1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadAt("/model", 0, 10)
	if err != nil || !bytes.Equal(got, big[:10]) {
		t.Fatalf("head read: %v", err)
	}
	s.WaitReadahead()
	st := s.Stats()
	if st.RemoteObjects != 3 { // chunk 0 demand + chunks 1,2 readahead
		t.Fatalf("remote objects = %d, want 3", st.RemoteObjects)
	}
	if st.PrefetchObjects != 2 || st.PrefetchWasted != 2 {
		t.Errorf("readahead accounting = %d objects / %d wasted, want 2/2",
			st.PrefetchObjects, st.PrefetchWasted)
	}
	// The next read lands entirely on readahead chunks: no new wire.
	got, err = v.ReadAt("/model", 4096, 8192)
	if err != nil || !bytes.Equal(got, big[4096:12288]) {
		t.Fatalf("follow-up read: %v", err)
	}
	st = s.Stats()
	if st.RemoteObjects != 3 {
		t.Errorf("follow-up fetched again: %d objects", st.RemoteObjects)
	}
	if st.PrefetchHits != 2 || st.PrefetchWasted != 0 {
		t.Errorf("hits = %d, wasted = %d, want 2/0", st.PrefetchHits, st.PrefetchWasted)
	}
}

// Demand admission preempts readahead: while a demand acquisition
// waits, tryAcquire refuses even though bytes would fit.
func TestChunkWindowDemandPreemptsReadahead(t *testing.T) {
	w := newChunkWindow(100, newStore(t, nil).m.windowPeak)
	w.acquire(80)
	done := make(chan struct{})
	go func() {
		w.acquire(40) // blocks: 80+40 > 100
		close(done)
	}()
	waitFor(t, func() bool {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.waiting == 1
	})
	if w.tryAcquire(10) {
		t.Fatal("readahead admitted past a waiting demand read")
	}
	w.release(80)
	<-done
	if !w.tryAcquire(10) {
		t.Fatal("readahead refused with free budget and no waiters")
	}
	w.release(40)
	w.release(10)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// With RangeReads enabled and a range-capable registry, a ranged fault
// on a NON-chunked file moves only the requested bytes and does not
// materialize the file; the slice is not cached, so the path trades
// repeat-read locality for first-touch latency.
func TestRangeReadsFastPath(t *testing.T) {
	ix, reg := fixture(t)
	s, err := New(Options{Remote: reg, RangeReads: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	v, err := s.CreateContainer("c1", "web:v1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadAt("/bin/app", 100, 50)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0xcd}, 50)) {
		t.Fatalf("range fast path: %q, %v", got, err)
	}
	st := s.Stats()
	if st.RemoteObjects != 1 || st.RemoteBytes != 50 {
		t.Errorf("remote = %d objects / %d bytes, want 1/50", st.RemoteObjects, st.RemoteBytes)
	}
	if s.CacheStats().Objects != 0 {
		t.Error("partial read entered the cache")
	}
	// Uncached: a second cold partial read re-fetches.
	if _, err := v.ReadAt("/bin/app", 0, 10); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.RemoteObjects != 2 || st.RemoteBytes != 60 {
		t.Errorf("second range = %d objects / %d bytes, want 2/60", st.RemoteObjects, st.RemoteBytes)
	}
	// Materializing caches the whole file; later ranges are local.
	if _, err := v.ReadFile("/bin/app"); err != nil {
		t.Fatal(err)
	}
	base := s.Stats().RemoteBytes
	if _, err := v.ReadAt("/bin/app", 1, 1); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.RemoteBytes != base {
		t.Errorf("materialized range still hit the wire: %d -> %d", base, st.RemoteBytes)
	}
	// A range past the end falls back to the full-read clamp.
	tail, err := v.ReadAt("/etc/conf", 5, 100)
	if err != nil || string(tail) != "80\n" {
		t.Errorf("oob fallback = %q, %v", tail, err)
	}
}

// Without the option (or without a range-capable remote) non-chunked
// ranged reads keep the pre-range behavior: full materialization.
func TestRangeReadsDisabledDegenerates(t *testing.T) {
	ix, reg := fixture(t)
	for name, s := range map[string]*Store{
		"option off":      newStore(t, reg),
		"rangeless store": mustStore(t, Options{Remote: &slowRemote{inner: reg}, RangeReads: true}),
	} {
		if err := s.AddIndex(ix); err != nil {
			t.Fatal(err)
		}
		v, err := s.CreateContainer("c1", "web:v1")
		if err != nil {
			t.Fatal(err)
		}
		got, err := v.ReadAt("/bin/app", 100, 50)
		if err != nil || len(got) != 50 {
			t.Fatalf("%s: %v", name, err)
		}
		// Whole file crossed the wire and is cached — the legacy path.
		if st := s.Stats(); st.RemoteBytes != 4096 {
			t.Errorf("%s: remote bytes = %d, want full file", name, st.RemoteBytes)
		}
		if s.CacheStats().Objects != 1 {
			t.Errorf("%s: file not materialized", name)
		}
	}
}

func mustStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// ResolveRange input validation and absent-image behavior are
// unchanged by the window engine.
func TestResolveRangeValidation(t *testing.T) {
	ix, reg := fixture(t)
	s := newStore(t, reg)
	if err := s.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	fp := ix.Lookup("/bin/app").Fingerprint
	if _, err := s.ResolveRange("web:v1", fp, -1, 10); !errors.Is(err, ErrBadRange) {
		t.Errorf("negative off: %v", err)
	}
	if _, err := s.ResolveRange("web:v1", fp, 0, 0); !errors.Is(err, ErrBadRange) {
		t.Errorf("zero n: %v", err)
	}
	if _, err := s.ResolveRange("web:v1", fp, 0, 10); !errors.Is(err, ErrNotChunked) {
		t.Errorf("non-chunked without RangeReads: %v", err)
	}
}
