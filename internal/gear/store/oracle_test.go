package store

import (
	"fmt"
	"math/rand"
	"path"
	"strings"
	"testing"
	"testing/quick"

	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gear/viewer"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

// TestViewerMatchesOracleProperty drives a random operation sequence
// against two systems in lockstep:
//
//   - the full Gear stack: image -> index -> registry -> store ->
//     viewer with lazy faults, writable diff, whiteouts;
//   - an oracle: the flattened image as a plain in-memory filesystem.
//
// After every operation both sides must agree on each probed path's
// existence and content, and at the end the viewer's full walk must
// equal the oracle tree. This is the strongest correctness statement in
// the repo: a container cannot distinguish a Gear mount from a fully
// materialized root filesystem.
func TestViewerMatchesOracleProperty(t *testing.T) {
	prop := func(seed int64) bool { return oracleRun(t, seed) }
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestViewerOracleRegressionSeeds pins seeds that exposed real bugs
// (overlay parent-type checks) so they never regress.
func TestViewerOracleRegressionSeeds(t *testing.T) {
	for _, seed := range []int64{5168952738916755181, -6548972544288121539} {
		if !oracleRun(t, seed) {
			t.Errorf("seed %d diverged from oracle", seed)
		}
	}
}

func oracleRun(t *testing.T, seed int64) bool {
	{
		rng := rand.New(rand.NewSource(seed))

		// Random image root.
		root := vfs.New()
		dirs := []string{"/"}
		var paths []string
		for i := 0; i < 40; i++ {
			d := dirs[rng.Intn(len(dirs))]
			p := path.Join(d, fmt.Sprintf("n%02d", i))
			switch rng.Intn(4) {
			case 0:
				if root.Mkdir(p, 0o755) == nil {
					dirs = append(dirs, p)
				}
			case 1:
				_ = root.Symlink("/n00", p)
				paths = append(paths, p)
			default:
				data := make([]byte, rng.Intn(200))
				rng.Read(data)
				if root.WriteFile(p, data, 0o644) == nil {
					paths = append(paths, p)
				}
			}
		}

		ix, pool, err := index.Build("prop", "v1", imagefmt.Config{}, root, nil)
		if err != nil {
			return false
		}
		reg := gearregistry.New(gearregistry.Options{Compress: true})
		for fp, data := range pool {
			if err := reg.Upload(fp, data); err != nil {
				return false
			}
		}
		s, err := New(Options{Remote: reg})
		if err != nil {
			return false
		}
		if err := s.AddIndex(ix); err != nil {
			return false
		}
		view, err := s.CreateContainer("c", "prop:v1")
		if err != nil {
			return false
		}
		oracle := root.Clone()

		// Random op sequence applied to both sides.
		allPaths := append([]string{}, paths...)
		allPaths = append(allPaths, dirs...)
		for op := 0; op < 60; op++ {
			target := allPaths[rng.Intn(len(allPaths))]
			kind := rng.Intn(6)
			if testing.Verbose() {
				t.Logf("op %d kind %d target %s | /n00: gear=%v oracle=%v", op, kind, target,
					view.Exists("/n00"), oracle.Exists("/n00"))
			}
			switch kind {
			case 0: // read
				got, gerr := view.ReadFile(target)
				want, werr := oracle.ReadFile(target)
				if (gerr == nil) != (werr == nil) {
					t.Logf("read %s: gear err %v, oracle err %v", target, gerr, werr)
					return false
				}
				if gerr == nil && string(got) != string(want) {
					t.Logf("read %s: content mismatch", target)
					return false
				}
			case 1: // write
				data := []byte(fmt.Sprintf("w%d", op))
				gerr := view.WriteFile(target, data, 0o644)
				werr := oracle.WriteFile(target, data, 0o644)
				if (gerr == nil) != (werr == nil) {
					t.Logf("write %s: gear err %v, oracle err %v", target, gerr, werr)
					return false
				}
			case 2: // remove subtree
				gerr := view.RemoveAll(target)
				werr := oracle.RemoveAll(target)
				// Both RemoveAlls tolerate missing paths.
				if (gerr == nil) != (werr == nil) {
					t.Logf("removeall %s: gear err %v, oracle err %v", target, gerr, werr)
					return false
				}
			case 3: // mkdir under an existing dir
				p := path.Join(target, fmt.Sprintf("d%02d", op))
				gerr := view.Mkdir(p, 0o755)
				var werr error
				if n, err := oracle.Stat(target); err != nil || !n.IsDir() || oracle.Exists(p) {
					werr = fmt.Errorf("invalid")
				} else {
					werr = oracle.Mkdir(p, 0o755)
				}
				if (gerr == nil) != (werr == nil) {
					n, serr := oracle.Stat(target)
					t.Logf("mkdir %s: gear err %v, oracle err %v; oracle parent stat: %v,%v; oracle exists(p)=%v; gear exists(target)=%v",
						p, gerr, werr, n, serr, oracle.Exists(p), view.Exists(target))
					return false
				}
				if gerr == nil {
					allPaths = append(allPaths, p)
				}
			case 4: // exists probe
				if view.Exists(target) != oracle.Exists(target) {
					t.Logf("exists %s: mismatch", target)
					return false
				}
			default: // readdir probe on a directory
				gnames, gerr := view.ReadDir(target)
				var wnames []string
				n, werr := oracle.Stat(target)
				if werr == nil && n.IsDir() {
					wnames = n.ChildNames()
				} else {
					werr = fmt.Errorf("not dir")
				}
				if (gerr == nil) != (werr == nil) {
					t.Logf("readdir %s: gear err %v, oracle err %v", target, gerr, werr)
					return false
				}
				if gerr == nil && strings.Join(gnames, ",") != strings.Join(wnames, ",") {
					t.Logf("readdir %s: %v vs %v", target, gnames, wnames)
					return false
				}
			}
		}

		// Final full-tree comparison.
		if a, b := viewSnapshot(t, view), oracleSnapshot(oracle); a != b {
			t.Logf("final tree mismatch:\n--- gear\n%s--- oracle\n%s", a, b)
			return false
		}
		return true
	}
}

// viewSnapshot walks the viewer, then reads file contents (materializing
// everything). Reads happen after the walk because the viewer's mutex is
// not reentrant.
func viewSnapshot(t *testing.T, v *viewer.Viewer) string {
	t.Helper()
	type entry struct {
		p      string
		typ    vfs.FileType
		target string
	}
	var entries []entry
	_ = v.Walk(func(p string, n *vfs.Node) error {
		entries = append(entries, entry{p: p, typ: n.Type(), target: n.Target()})
		return nil
	})
	var sb strings.Builder
	for _, e := range entries {
		switch e.typ {
		case vfs.TypeDir:
			fmt.Fprintf(&sb, "%s dir\n", e.p)
		case vfs.TypeSymlink:
			fmt.Fprintf(&sb, "%s link %s\n", e.p, e.target)
		case vfs.TypeRegular:
			data, err := v.ReadFile(e.p)
			if err != nil {
				fmt.Fprintf(&sb, "%s ERR %v\n", e.p, err)
				continue
			}
			fmt.Fprintf(&sb, "%s file %q\n", e.p, data)
		}
	}
	return sb.String()
}

func oracleSnapshot(f *vfs.FS) string {
	var sb strings.Builder
	_ = f.Walk(func(p string, n *vfs.Node) error {
		switch n.Type() {
		case vfs.TypeDir:
			fmt.Fprintf(&sb, "%s dir\n", p)
		case vfs.TypeSymlink:
			fmt.Fprintf(&sb, "%s link %s\n", p, n.Target())
		case vfs.TypeRegular:
			fmt.Fprintf(&sb, "%s file %q\n", p, n.Content().Data())
		}
		return nil
	})
	return sb.String()
}
