// Package store implements Gear's client-side three-level storage
// structure (§III-D1 of the paper) and the driver logic that deploys
// Gear containers over it:
//
//	level 1 — a shared, content-addressed cache of Gear files,
//	          deduplicated by fingerprint and shared by all images;
//	level 2 — per-image "index" directories (placeholder trees) that
//	          containers mount read-only;
//	level 3 — per-container "diff" directories holding modifications.
//
// The three levels decouple lifecycles: removing a container deletes
// only its diff; removing an image deletes only its index, leaving its
// Gear files shared in the cache.
//
// The store is also the viewer's Resolver (the paper's user-mode
// helper): a placeholder fault looks in the cache first, downloads from
// the Gear Registry on a miss, stores the file at level 1, and hard
// links it over the placeholder at level 2 so every later access — from
// any container of that image — is local.
package store

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/gear-image/gear/internal/cache"
	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gear/viewer"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/prefetch"
	"github.com/gear-image/gear/internal/telemetry"
	"github.com/gear-image/gear/internal/vfs"
)

// Errors returned by store operations.
var (
	ErrNoIndex       = errors.New("image index not present")
	ErrIndexExists   = errors.New("image index already present")
	ErrNoContainer   = errors.New("container not found")
	ErrContainerBusy = errors.New("container id already in use")
)

// Options configures a Store.
type Options struct {
	// CacheCapacity bounds the level-1 cache in bytes (0 = unlimited).
	CacheCapacity int64
	// CachePolicy selects the replacement algorithm (default LRU).
	CachePolicy cache.Policy
	// Remote is the Gear Registry files are fetched from on cache misses.
	// A nil Remote makes misses fail, which models a disconnected client.
	Remote gearregistry.Store
	// OnRemoteFetch, if set, observes every remote fetch (object count
	// and byte volume). The deployment simulator hooks netsim here.
	OnRemoteFetch func(objects int, bytes int64)
	// FetchWorkers bounds the concurrency of FetchAll (and Prefetch,
	// which uses it). 0 selects DefaultFetchWorkers. Lazy single-file
	// faults (Resolve) are unaffected.
	FetchWorkers int
	// OnFetchWindow, if set, observes each FetchAll call as a window of
	// concurrent streams; it takes precedence over OnRemoteFetch for
	// those transfers. The deployment simulator hooks netsim's
	// fair-share model here.
	OnFetchWindow func(FetchWindow)
	// Peers, if set, is consulted on every miss before the registry:
	// a cluster neighbour that already holds the file serves it over
	// the cheap LAN instead of the registry's WAN. Peer payloads are
	// fingerprint-verified exactly like registry downloads; a peer
	// that serves corrupt bytes is simply ignored and the fetch falls
	// back to the registry.
	Peers PeerSource
	// OnPeerFetch, if set, observes every peer-served fetch (object
	// count and byte volume). The deployment simulator prices these on
	// the LAN link, separate from registry WAN traffic.
	OnPeerFetch func(objects int, bytes int64)
	// Profiles, if set, enables profile-guided startup prefetch: the
	// store records each image's first-access order (fingerprint, size,
	// sequence) as containers fault, SaveProfile persists it here, and
	// PrefetchProfile replays it on the next deploy. Nil disables both
	// recording and replay — the store behaves exactly as before.
	Profiles *prefetch.Library
	// PrefetchInflight bounds how many profile-replay objects may be in
	// flight at once (the prefetch budget). Demand misses always have
	// strict priority regardless of this value. 0 selects
	// DefaultPrefetchInflight.
	PrefetchInflight int
	// ChunkWindowBytes bounds the bytes of chunk transfers in flight for
	// ranged reads of chunked files — the client's transient-memory
	// budget, however large the file. Demand chunks preempt readahead
	// admission. 0 selects DefaultChunkWindowBytes.
	ChunkWindowBytes int64
	// ChunkReadahead is how many chunks past a demanded range the window
	// opportunistically fetches in the background with leftover budget.
	// 0 disables readahead.
	ChunkReadahead int
	// RangeReads enables the partial-read fast path for non-chunked
	// files: a ranged fault asks the registry's range verb for exactly
	// the requested bytes instead of materializing the file. Off (the
	// default), ranged reads of non-chunked files behave byte-identically
	// to full materialization.
	RangeReads bool
	// Telemetry, if set, is the registry the store (and its level-1
	// cache) publishes store.*/cache.* metrics into — typically the
	// per-daemon registry. Nil gets private, live handles, so the
	// legacy Stats views work either way.
	Telemetry *telemetry.Registry
	// Trace, if set, receives a structured span per fetch window and
	// per blocking fault the store leads. Nil disables tracing.
	Trace *telemetry.TraceRing
}

// PeerSource obtains Gear files from cluster peers. ok=false means no
// peer could serve the file and the store should use the registry.
// peer.Exchange is the production implementation.
type PeerSource interface {
	FetchPeer(fp hashing.Fingerprint) (data []byte, wireBytes int64, ok bool)
}

// DefaultFetchWorkers is the FetchAll concurrency used when Options
// leaves FetchWorkers zero.
const DefaultFetchWorkers = 8

// Store is a client's Gear storage. It is safe for concurrent use.
type Store struct {
	opts  Options
	cache *cache.Cache

	mu         sync.Mutex
	indexes    map[string]*imageState
	containers map[string]*containerState

	// flightMu guards flights, the singleflight table of in-progress
	// downloads. It is always taken without mu held.
	flightMu sync.Mutex
	flights  map[hashing.Fingerprint]*flight

	// sched is the two-class admission gate giving demand misses strict
	// priority over profile-replay prefetch.
	sched *scheduler

	// window is the byte-budget gate chunk-granular ranged reads fault
	// through; bg tracks its background readahead fetches.
	window *chunkWindow
	bg     sync.WaitGroup

	// recMu guards recorders, the per-image startup-profile recorders
	// (populated only when opts.Profiles is set).
	recMu     sync.Mutex
	recorders map[string]*prefetch.Recorder

	// prefMu guards prefetched, the set of fingerprints the replay
	// admitted that no demand read has consumed yet. The
	// store.prefetch.wasted gauge mirrors len(prefetched) and is only
	// mutated under prefMu.
	prefMu     sync.Mutex
	prefetched map[hashing.Fingerprint]bool

	// m holds the store.* telemetry handles. They are the counters'
	// only storage — the legacy Stats struct is a view over them.
	m storeMetrics
}

// storeMetrics are the store's telemetry handles, resolved once at New
// so hot paths pay a single atomic op per publish.
type storeMetrics struct {
	remoteObjects, remoteBytes *telemetry.Counter
	peerObjects, peerBytes     *telemetry.Counter

	demandMisses *telemetry.Counter
	stallBytes   *telemetry.Counter
	stallNanos   *telemetry.Counter
	stall        *telemetry.Histogram

	prefetchObjects, prefetchBytes *telemetry.Counter
	prefetchHits                   *telemetry.Counter
	prefetchWasted                 *telemetry.Gauge

	chunkDemand, chunkReadahead *telemetry.Counter
	rangeReads                  *telemetry.Counter
	windowPeak                  *telemetry.Gauge

	indexes, containers *telemetry.Gauge
}

func newStoreMetrics(reg *telemetry.Registry) storeMetrics {
	return storeMetrics{
		remoteObjects:   reg.Counter("store.remote.objects"),
		remoteBytes:     reg.Counter("store.remote.bytes"),
		peerObjects:     reg.Counter("store.peer.objects"),
		peerBytes:       reg.Counter("store.peer.bytes"),
		demandMisses:    reg.Counter("store.demand.misses"),
		stallBytes:      reg.Counter("store.demand.stall.bytes"),
		stallNanos:      reg.Counter("store.demand.stall.ns"),
		stall:           reg.Histogram("store.demand.stall", telemetry.DefaultLatencyBounds),
		prefetchObjects: reg.Counter("store.prefetch.objects"),
		prefetchBytes:   reg.Counter("store.prefetch.bytes"),
		prefetchHits:    reg.Counter("store.prefetch.hits"),
		prefetchWasted:  reg.Gauge("store.prefetch.wasted"),
		chunkDemand:     reg.Counter("store.chunk.demand"),
		chunkReadahead:  reg.Counter("store.chunk.readahead"),
		rangeReads:      reg.Counter("store.range.reads"),
		windowPeak:      reg.Gauge("store.chunk.window.peak"),
		indexes:         reg.Gauge("store.indexes"),
		containers:      reg.Gauge("store.containers"),
	}
}

type imageState struct {
	ix     *index.Index
	tree   *vfs.FS // shared placeholder tree (level 2)
	chunks map[hashing.Fingerprint][]index.Chunk
}

type containerState struct {
	imageRef string
	view     *viewer.Viewer
}

var _ viewer.Resolver = (*Store)(nil)

// New returns an empty Store.
func New(opts Options) (*Store, error) {
	if opts.CachePolicy == 0 {
		opts.CachePolicy = cache.LRU
	}
	if opts.FetchWorkers <= 0 {
		opts.FetchWorkers = DefaultFetchWorkers
	}
	if opts.PrefetchInflight <= 0 {
		opts.PrefetchInflight = DefaultPrefetchInflight
	}
	if opts.ChunkWindowBytes <= 0 {
		opts.ChunkWindowBytes = DefaultChunkWindowBytes
	}
	c, err := cache.NewTelemetered(opts.CacheCapacity, opts.CachePolicy, opts.Telemetry)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	m := newStoreMetrics(opts.Telemetry)
	return &Store{
		opts:       opts,
		cache:      c,
		indexes:    make(map[string]*imageState),
		containers: make(map[string]*containerState),
		flights:    make(map[hashing.Fingerprint]*flight),
		sched:      newScheduler(opts.PrefetchInflight),
		window:     newChunkWindow(opts.ChunkWindowBytes, m.windowPeak),
		recorders:  make(map[string]*prefetch.Recorder),
		prefetched: make(map[hashing.Fingerprint]bool),
		m:          m,
	}, nil
}

// AddIndex installs an image's Gear index at level 2. This is the only
// prerequisite for launching containers of that image.
func (s *Store) AddIndex(ix *index.Index) error {
	if err := ix.Validate(); err != nil {
		return fmt.Errorf("store: add index: %w", err)
	}
	tree, err := ix.ToTree()
	if err != nil {
		return fmt.Errorf("store: add index: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ref := ix.Reference()
	if _, ok := s.indexes[ref]; ok {
		return fmt.Errorf("store: %s: %w", ref, ErrIndexExists)
	}
	s.indexes[ref] = &imageState{ix: ix, tree: tree, chunks: ix.ChunkMap()}
	s.m.indexes.Add(1)
	return nil
}

// HasIndex reports whether the image's index is installed.
func (s *Store) HasIndex(ref string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.indexes[ref]
	return ok
}

// Index returns the installed index for ref.
func (s *Store) Index(ref string) (*index.Index, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.indexes[ref]
	if !ok {
		return nil, fmt.Errorf("store: %s: %w", ref, ErrNoIndex)
	}
	return st.ix, nil
}

// RemoveIndex deletes an image's level-2 state. Its Gear files remain in
// the level-1 cache and stay shareable by other images, but — per
// §III-D1, "files that are not linked to Gear indexes are candidates for
// replacement" — their hard links from this index are released, so the
// cache may now evict them under pressure. If containers of the image
// are still running, the release is deferred: the shared index tree is
// their root filesystem, exactly as an unlinked-but-open file keeps
// working.
func (s *Store) RemoveIndex(ref string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.indexes[ref]
	if !ok {
		return fmt.Errorf("store: %s: %w", ref, ErrNoIndex)
	}
	delete(s.indexes, ref)
	s.m.indexes.Add(-1)
	for _, c := range s.containers {
		if c.imageRef == ref {
			return nil // live containers keep the tree (and its pins)
		}
	}
	return st.tree.RemoveAll("/")
}

// CreateContainer launches a container from an installed index and
// returns its viewer. Only the tiny index must be local; file content
// arrives on demand.
func (s *Store) CreateContainer(id, imageRef string) (*viewer.Viewer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.containers[id]; ok {
		return nil, fmt.Errorf("store: %s: %w", id, ErrContainerBusy)
	}
	st, ok := s.indexes[imageRef]
	if !ok {
		return nil, fmt.Errorf("store: %s: %w", imageRef, ErrNoIndex)
	}
	v := viewer.New(imageRef, st.tree, s)
	s.containers[id] = &containerState{imageRef: imageRef, view: v}
	s.m.containers.Add(1)
	return v, nil
}

// Container returns a running container's viewer.
func (s *Store) Container(id string) (*viewer.Viewer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.containers[id]
	if !ok {
		return nil, fmt.Errorf("store: %s: %w", id, ErrNoContainer)
	}
	return c.view, nil
}

// RemoveContainer destroys a container: only its level-3 diff goes away;
// the image index and cached files survive.
func (s *Store) RemoveContainer(id string) error {
	s.mu.Lock()
	c, ok := s.containers[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("store: %s: %w", id, ErrNoContainer)
	}
	delete(s.containers, id)
	s.m.containers.Add(-1)
	// Close outside mu: the viewer takes its own lock, which faulting
	// reads hold while they call back into the store — closing under mu
	// would invert that order and deadlock.
	s.mu.Unlock()
	c.view.Close()
	return nil
}

// Resolve implements viewer.Resolver: cache lookup, then remote
// download, then hard link over the placeholder in the image's shared
// index tree. Faults resolved here are first-class accesses and feed
// the image's startup profile when a profile library is configured.
func (s *Store) Resolve(imageRef, path string, fp hashing.Fingerprint, size int64) (*vfs.Content, error) {
	return s.resolve(imageRef, path, fp, size, true)
}

// resolve is Resolve with recording controllable: the eager Prefetch
// walk passes record=false so a whole-image sweep does not overwrite
// the access order real container starts exhibit.
func (s *Store) resolve(imageRef, path string, fp hashing.Fingerprint, size int64, record bool) (*vfs.Content, error) {
	if record {
		s.record(imageRef, fp, size)
	}
	s.mu.Lock()
	st := s.indexes[imageRef]
	// The index may have been removed while containers still run; the
	// fetch continues against the cache/registry without level-2 updates.
	var chunks []index.Chunk
	if st != nil {
		chunks = st.chunks[fp]
	}
	s.mu.Unlock()

	// A concurrent fault may have materialized the node already. The
	// shared tree is internally locked, so mu is not needed here.
	if st != nil {
		if n, err := st.tree.Stat(path); err == nil && n.Type() == vfs.TypeRegular {
			if !index.IsPlaceholder(n.Content().Data()) {
				return n.Content(), nil
			}
		}
	}

	content, err := s.fetch(fp, size, chunks)
	if err != nil {
		return nil, err
	}
	if st != nil {
		if n, statErr := st.tree.Stat(path); statErr == nil && n.Type() == vfs.TypeRegular {
			if err := st.tree.PutContent(path, content, n.Mode()); err != nil {
				return nil, fmt.Errorf("store: link %s into index: %w", path, err)
			}
		}
	}
	return content, nil
}

// fetch obtains the Gear file for fp: level-1 cache first, then peers,
// then the remote registry, deduplicating concurrent downloads of the
// same fingerprint. Chunked files fetch missing chunks individually and
// assemble.
func (s *Store) fetch(fp hashing.Fingerprint, size int64, chunks []index.Chunk) (*vfs.Content, error) {
	if len(chunks) > 0 {
		if c, ok := s.cache.Get(fp); ok {
			s.noteDemandHit(fp)
			return c, nil
		}
		assembled := make([]byte, 0, size)
		var reg, peer tally
		for _, ch := range chunks {
			c, wire, src, err := s.fetchOne(ch.Fingerprint)
			if err != nil {
				return nil, err
			}
			switch src {
			case srcRegistry:
				reg.add(wire)
			case srcPeer:
				peer.add(wire)
			}
			assembled = append(assembled, c.Data()...)
		}
		s.recordRemote(reg.objects, reg.bytes)
		s.recordPeer(peer.objects, peer.bytes)
		content, err := s.cache.Put(fp, assembled)
		if err != nil {
			return nil, fmt.Errorf("store: cache %s: %w", fp, err)
		}
		return content, nil
	}
	c, wire, src, err := s.fetchOne(fp)
	if err != nil {
		return nil, err
	}
	switch src {
	case srcRegistry:
		s.recordRemote(1, wire)
	case srcPeer:
		s.recordPeer(1, wire)
	}
	return c, nil
}

// tally accumulates per-source transfer accounting.
type tally struct {
	objects int
	bytes   int64
}

func (t *tally) add(wire int64) {
	t.objects++
	t.bytes += wire
}

// ErrCorruptDownload reports a fetched Gear file whose content does not
// hash to its fingerprint — a corrupt or malicious registry response.
var ErrCorruptDownload = errors.New("downloaded gear file fails fingerprint verification")

// download obtains fp's bytes from the cheapest source that can deliver
// them verifiably: a cluster peer first, the registry otherwise.
// fromPeer reports which source served, so the caller accounts the
// transfer on the right link.
func (s *Store) download(fp hashing.Fingerprint) (data []byte, wire int64, fromPeer bool, err error) {
	if data, wire, ok := s.fetchFromPeer(fp); ok {
		return data, wire, true, nil
	}
	if s.opts.Remote == nil {
		return nil, 0, false, fmt.Errorf("store: %s: no remote registry: %w", fp, gearregistry.ErrNotFound)
	}
	data, wire, err = s.opts.Remote.Download(fp)
	if err != nil {
		return nil, 0, false, fmt.Errorf("store: download: %w", err)
	}
	// Content addressing makes end-to-end integrity free: verify before
	// anything enters the cache or an index tree. Collision-fallback IDs
	// ("<fp>-cN") cannot be verified by hashing and are accepted as-is.
	if err := verify(fp, data); err != nil {
		return nil, 0, false, err
	}
	return data, wire, false, nil
}

// fetchFromPeer asks the peer source for fp and verifies the answer.
// Corrupt peer payloads are treated as a miss: the registry fallback is
// always correct, just more expensive.
func (s *Store) fetchFromPeer(fp hashing.Fingerprint) ([]byte, int64, bool) {
	if s.opts.Peers == nil {
		return nil, 0, false
	}
	data, wire, ok := s.opts.Peers.FetchPeer(fp)
	if !ok || verify(fp, data) != nil {
		return nil, 0, false
	}
	return data, wire, true
}

func (s *Store) recordRemote(objects int, bytes int64) {
	if objects == 0 {
		return
	}
	s.m.remoteObjects.Add(int64(objects))
	s.m.remoteBytes.Add(bytes)
	if s.opts.OnRemoteFetch != nil {
		s.opts.OnRemoteFetch(objects, bytes)
	}
}

func (s *Store) recordPeer(objects int, bytes int64) {
	if objects == 0 {
		return
	}
	s.m.peerObjects.Add(int64(objects))
	s.m.peerBytes.Add(bytes)
	if s.opts.OnPeerFetch != nil {
		s.opts.OnPeerFetch(objects, bytes)
	}
}

// ResolveRange implements viewer.RangeResolver: it serves [off, off+n)
// of the file behind fp, fetching only the chunks that overlap the range
// — the paper's future-work "read big files on demand in chunks" (§VII).
// Overlapping chunks fault concurrently through the chunk window (at
// most ChunkWindowBytes in flight, however wide the read), and leftover
// budget reads ahead along the file per ChunkReadahead. Non-chunked
// files use the registry range verb when RangeReads is enabled, and
// fall back to full materialization otherwise. Partial reads do not
// link anything into the index tree (the file is not complete), but
// every fetched chunk lands in the level-1 cache for reuse.
func (s *Store) ResolveRange(imageRef string, fp hashing.Fingerprint, off, n int64) ([]byte, error) {
	if n <= 0 || off < 0 {
		return nil, fmt.Errorf("store: range [%d,+%d): %w", off, n, ErrBadRange)
	}
	s.mu.Lock()
	var chunks []index.Chunk
	if st := s.indexes[imageRef]; st != nil {
		chunks = st.chunks[fp]
	}
	s.mu.Unlock()
	if len(chunks) == 0 {
		return s.rangeRead(fp, off, n)
	}
	// Ranged reads are first-class accesses too; the profile records the
	// file, and its replay pulls the chunks.
	var total int64
	for _, ch := range chunks {
		total += ch.Size
	}
	s.record(imageRef, fp, total)
	// Whole file already assembled? Serve from cache.
	if c, ok := s.cache.Get(fp); ok {
		s.noteDemandHit(fp)
		return sliceRange(c.Data(), off, n), nil
	}
	lo, hi, loOff := chunkSpan(chunks, off, n)
	if lo == hi {
		return nil, nil // range starts past the end of the file
	}
	contents, reg, peer, err := s.fetchChunks(chunks[lo:hi])
	s.recordRemote(reg.objects, reg.bytes)
	s.recordPeer(peer.objects, peer.bytes)
	if err != nil {
		return nil, err
	}
	if ra := s.opts.ChunkReadahead; ra > 0 && hi < len(chunks) {
		end := hi + ra
		if end > len(chunks) {
			end = len(chunks)
		}
		s.readahead(chunks[hi:end])
	}
	out := make([]byte, 0, n)
	pos := loOff
	for _, c := range contents {
		data := c.Data()
		chunkEnd := pos + int64(len(data))
		a := int64(0)
		if off > pos {
			a = off - pos
		}
		b := int64(len(data))
		if off+n < chunkEnd {
			b = off + n - pos
		}
		out = append(out, data[a:b]...)
		pos = chunkEnd
	}
	return out, nil
}

// Errors for ranged reads.
var (
	ErrBadRange   = errors.New("invalid byte range")
	ErrNotChunked = errors.New("file is not chunked; use a full read")
)

func sliceRange(data []byte, off, n int64) []byte {
	if off >= int64(len(data)) {
		return nil
	}
	end := off + n
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	return data[off:end]
}

// Prefetch materializes every file of an installed image (a full
// download, used to pre-warm caches or to compare against Docker's
// eager pull). The downloads run through FetchAll, so they use up to
// FetchWorkers concurrent (batched where supported) transfers.
func (s *Store) Prefetch(ref string) error {
	s.mu.Lock()
	st, ok := s.indexes[ref]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("store: %s: %w", ref, ErrNoIndex)
	}
	// Gather the raw objects to pull: chunk fingerprints for chunked
	// files (the transfer unit), file fingerprints otherwise.
	var fps []hashing.Fingerprint
	walkEntries(st.ix.Root, "", func(_ string, e *index.Entry) {
		if e.Type != vfs.TypeRegular || e.Fingerprint == "" {
			return
		}
		if chunks := st.chunks[e.Fingerprint]; len(chunks) > 0 {
			for _, ch := range chunks {
				fps = append(fps, ch.Fingerprint)
			}
			return
		}
		fps = append(fps, e.Fingerprint)
	})
	if _, err := s.FetchAll(fps); err != nil {
		return err
	}
	// Link everything into the level-2 tree; all content is local now,
	// so these resolves assemble and hard-link without network traffic.
	var err error
	walkEntries(st.ix.Root, "", func(p string, e *index.Entry) {
		if err != nil || e.Type != vfs.TypeRegular {
			return
		}
		// record=false: an eager whole-image walk is not a startup access
		// pattern and must not pollute the image's profile.
		if _, rerr := s.resolve(ref, p, e.Fingerprint, e.Size, false); rerr != nil {
			err = rerr
		}
	})
	return err
}

// Fingerprints translates index-tree paths of ref into the raw Gear
// objects a fetch must pull: paths still holding placeholders map to
// their file fingerprint, or to their chunk fingerprints for chunked
// files. Already-materialized, missing, and non-regular paths are
// skipped. The result feeds FetchAll to pre-fault a known access set.
func (s *Store) Fingerprints(ref string, paths []string) ([]hashing.Fingerprint, error) {
	s.mu.Lock()
	st, ok := s.indexes[ref]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: %s: %w", ref, ErrNoIndex)
	}
	var fps []hashing.Fingerprint
	for _, p := range paths {
		n, err := st.tree.Stat(p)
		if err != nil || n.Type() != vfs.TypeRegular {
			continue
		}
		fp, _, err := index.ParsePlaceholder(n.Content().Data())
		if err != nil {
			continue // already materialized
		}
		if chunks := st.chunks[fp]; len(chunks) > 0 {
			for _, ch := range chunks {
				fps = append(fps, ch.Fingerprint)
			}
			continue
		}
		fps = append(fps, fp)
	}
	return fps, nil
}

func walkEntries(e *index.Entry, at string, fn func(p string, e *index.Entry)) {
	p := at + "/" + e.Name
	if e.Name == "" {
		p = "/"
	}
	fn(p, e)
	for _, c := range e.Children {
		walkEntries(c, vfs.Clean(p), fn)
	}
}

// Commit turns a container into a new Gear image (§III-D2): the diff's
// regular files become new Gear files (added to the level-1 cache and
// returned for upload), and the diff's metadata merges with the current
// index into a new index under newName:newTag.
func (s *Store) Commit(containerID, newName, newTag string) (*index.Index, map[hashing.Fingerprint][]byte, error) {
	s.mu.Lock()
	c, ok := s.containers[containerID]
	if !ok {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("store: %s: %w", containerID, ErrNoContainer)
	}
	st, ok := s.indexes[c.imageRef]
	if !ok {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("store: %s: %w", c.imageRef, ErrNoIndex)
	}
	s.mu.Unlock()

	diff := c.view.DiffTree()
	newIx, newFiles, err := index.ApplyDiff(st.ix, newName, newTag, diff, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("store: commit %s: %w", containerID, err)
	}
	for fp, data := range newFiles {
		if _, err := s.cache.Put(fp, data); err != nil {
			return nil, nil, fmt.Errorf("store: commit cache %s: %w", fp, err)
		}
	}
	return newIx, newFiles, nil
}

// CacheStats exposes level-1 cache effectiveness.
func (s *Store) CacheStats() cache.Stats { return s.cache.Stats() }

// Cache exposes the level-1 cache itself, so peer distribution can
// export it (peer.NewServer) and track its membership (cache.SetHooks).
func (s *Store) Cache() *cache.Cache { return s.cache }

// ClearCache empties level 1 (the paper's cold-cache runs).
func (s *Store) ClearCache() { s.cache.Clear() }

// Stats summarizes remote traffic attributable to this store. Remote*
// count registry (WAN) transfers; Peer* count cluster-peer (LAN)
// transfers. Demand*/Stall* account foreground faults that had to wait
// for the network; Prefetch* account the profile replay and how much of
// it demand reads actually consumed.
//
// Stats is a view over the store.* telemetry metrics (Options.
// Telemetry): every field reads the same handle a shared registry
// snapshot reports, so the two always reconcile exactly.
type Stats struct {
	RemoteObjects int64 `json:"remoteObjects"`
	RemoteBytes   int64 `json:"remoteBytes"`
	PeerObjects   int64 `json:"peerObjects"`
	PeerBytes     int64 `json:"peerBytes"`
	Indexes       int   `json:"indexes"`
	Containers    int   `json:"containers"`

	// DemandMisses counts lazy faults that blocked on a transfer (led or
	// joined); StallBytes is the content volume those faults waited for,
	// and StallTime the cumulative wall-clock time demand reads spent
	// blocked in the fetch path.
	DemandMisses int64         `json:"demandMisses"`
	StallBytes   int64         `json:"stallBytes"`
	StallTime    time.Duration `json:"stallTime"`
	// PrefetchObjects/PrefetchBytes are the registry transfers performed
	// under the prefetch class. PrefetchHits counts demand reads served
	// from the cache because a replay put the object there first;
	// PrefetchWasted is the gauge of replayed objects no demand read has
	// consumed (yet).
	PrefetchObjects int64 `json:"prefetchObjects"`
	PrefetchBytes   int64 `json:"prefetchBytes"`
	PrefetchHits    int64 `json:"prefetchHits"`
	PrefetchWasted  int64 `json:"prefetchWasted"`
}

// Stats returns a snapshot.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		RemoteObjects:   s.m.remoteObjects.Value(),
		RemoteBytes:     s.m.remoteBytes.Value(),
		PeerObjects:     s.m.peerObjects.Value(),
		PeerBytes:       s.m.peerBytes.Value(),
		Indexes:         len(s.indexes),
		Containers:      len(s.containers),
		DemandMisses:    s.m.demandMisses.Value(),
		StallBytes:      s.m.stallBytes.Value(),
		StallTime:       time.Duration(s.m.stallNanos.Value()),
		PrefetchObjects: s.m.prefetchObjects.Value(),
		PrefetchBytes:   s.m.prefetchBytes.Value(),
		PrefetchHits:    s.m.prefetchHits.Value(),
		PrefetchWasted:  s.m.prefetchWasted.Value(),
	}
}
