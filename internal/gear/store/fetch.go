package store

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/telemetry"
	"github.com/gear-image/gear/internal/vfs"
)

// flight is one in-progress remote download. Concurrent faults on the
// same fingerprint join the first caller's flight instead of issuing
// duplicate downloads (singleflight).
type flight struct {
	done    chan struct{}
	content *vfs.Content
	err     error
}

// claimFlight registers a flight for fp, or joins the one in progress.
func (s *Store) claimFlight(fp hashing.Fingerprint) (f *flight, leader bool) {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if f, ok := s.flights[fp]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	s.flights[fp] = f
	return f, true
}

// finishFlight publishes the flight's result and releases waiters.
func (s *Store) finishFlight(fp hashing.Fingerprint, f *flight) {
	s.flightMu.Lock()
	delete(s.flights, fp)
	s.flightMu.Unlock()
	close(f.done)
}

// fetchSource reports which source satisfied a fetch: locally (cache
// hit or a flight another goroutine led — no wire bytes spent by this
// call), a cluster peer over the LAN, or the registry over the WAN.
type fetchSource int

const (
	srcLocal fetchSource = iota
	srcPeer
	srcRegistry
)

// fetchOne obtains the Gear file for fp: level-1 cache, then an
// in-progress flight, then a download it leads itself (peers before
// registry). src reports which source this call spent wire bytes on;
// joiners and cache hits return srcLocal. The caller is responsible
// for transfer accounting; fetchOne itself accounts demand stall —
// every call is a foreground read, so time spent past the cache lookup
// is a container blocked on the network. Registering the demand with
// the scheduler pauses further prefetch admission until the miss is
// served; a fingerprint the replay is already moving is joined via its
// flight, never fetched twice.
func (s *Store) fetchOne(fp hashing.Fingerprint) (c *vfs.Content, wire int64, src fetchSource, err error) {
	if c, ok := s.cache.Get(fp); ok {
		s.noteDemandHit(fp)
		return c, 0, srcLocal, nil
	}
	s.sched.beginDemand()
	start := time.Now()
	defer func() {
		stall := time.Since(start)
		s.m.stallNanos.Add(stall.Nanoseconds())
		s.m.stall.ObserveDuration(stall)
		s.sched.endDemand()
	}()
	f, leader := s.claimFlight(fp)
	if !leader {
		<-f.done
		if f.err == nil && f.content != nil {
			s.noteDemandMiss(fp, int64(len(f.content.Data())))
			s.opts.Trace.Record(telemetry.Span{
				Op: "fault", Ref: refPrefix(fp), Class: telemetry.ClassDemand,
				Source: telemetry.SourceCache, Objects: 1,
				QueueWait: time.Since(start),
			})
		}
		return f.content, 0, srcLocal, f.err
	}
	defer s.finishFlight(fp, f)
	// Re-check after claiming: a previous leader may have completed
	// between our miss and our claim. Contains leaves hit/miss stats
	// untouched, so the race does not distort cache accounting.
	if s.cache.Contains(fp) {
		if c, ok := s.cache.Get(fp); ok {
			f.content = c
			s.noteDemandHit(fp)
			return c, 0, srcLocal, nil
		}
	}
	data, wire, fromPeer, err := s.download(fp)
	if err != nil {
		f.err = err
		return nil, 0, srcLocal, err
	}
	c, err = s.cache.Put(fp, data)
	if err != nil {
		f.err = fmt.Errorf("store: cache %s: %w", fp, err)
		return nil, 0, srcLocal, f.err
	}
	f.content = c
	s.noteDemandMiss(fp, int64(len(data)))
	source := telemetry.SourceRegistry
	if fromPeer {
		source = telemetry.SourcePeer
	}
	s.opts.Trace.Record(telemetry.Span{
		Op: "fault", Ref: refPrefix(fp), Class: telemetry.ClassDemand,
		Source: source, Objects: 1, Bytes: wire,
		Transfer: time.Since(start),
	})
	if fromPeer {
		return c, wire, srcPeer, nil
	}
	return c, wire, srcRegistry, nil
}

// refPrefix abbreviates a fingerprint for trace spans.
func refPrefix(fp hashing.Fingerprint) string {
	const n = 12
	if len(fp) <= n {
		return string(fp)
	}
	return string(fp[:n])
}

// StreamStat describes one worker's share of a fetch window.
type StreamStat struct {
	// Objects is how many Gear files the worker transferred.
	Objects int `json:"objects"`
	// Bytes is the wire volume the worker moved.
	Bytes int64 `json:"bytes"`
	// Batched reports whether the worker used one DownloadBatch round
	// trip (true) or per-object downloads (false).
	Batched bool `json:"batched"`
}

// FetchWindow summarizes one FetchAll call: the concurrent registry
// streams that shared the WAN link. Peer-served transfers are not part
// of the window — they ride the LAN and are reported through
// OnPeerFetch instead. The deployment simulator converts the window
// into netsim fair-share streams.
type FetchWindow struct {
	Streams []StreamStat `json:"streams"`
	// Prefetch reports that the window was issued by a startup-profile
	// replay rather than a demand fetch, so observers can price or rank
	// it as background traffic.
	Prefetch bool `json:"prefetch,omitempty"`
}

// Objects returns the total object count across streams.
func (w FetchWindow) Objects() int {
	var n int
	for _, st := range w.Streams {
		n += st.Objects
	}
	return n
}

// Bytes returns the total wire bytes across streams.
func (w FetchWindow) Bytes() int64 {
	var n int64
	for _, st := range w.Streams {
		n += st.Bytes
	}
	return n
}

// FetchAll materializes every given Gear file into the level-1 cache
// using up to FetchWorkers concurrent workers. Each worker issues one
// DownloadBatch round trip when the remote supports it, or per-object
// downloads otherwise. Fingerprints already cached or already being
// fetched by another goroutine are not downloaded again.
//
// The returned window describes only the transfers this call performed;
// accounting hooks (OnFetchWindow, or OnRemoteFetch as a fallback) fire
// once for the whole window.
func (s *Store) FetchAll(fps []hashing.Fingerprint) (FetchWindow, error) {
	return s.fetchAll(fps, s.opts.FetchWorkers, classDemand)
}

// fetchAll is FetchAll with the worker count and fetch class explicit.
// Demand-class calls register with the scheduler for their duration
// (pausing prefetch admission); prefetch-class calls tag the window and
// mark what they admit for hit/waste accounting.
func (s *Store) fetchAll(fps []hashing.Fingerprint, maxWorkers int, class fetchClass) (FetchWindow, error) {
	if class == classDemand {
		s.sched.beginDemand()
		defer s.sched.endDemand()
	}
	// Deduplicate, drop what is already local, and claim or join flights.
	seen := make(map[hashing.Fingerprint]bool, len(fps))
	var claimed []hashing.Fingerprint
	claimedFlights := make(map[hashing.Fingerprint]*flight)
	var joined []*flight
	for _, fp := range fps {
		if seen[fp] {
			continue
		}
		seen[fp] = true
		if s.cache.Contains(fp) {
			continue
		}
		f, leader := s.claimFlight(fp)
		if leader {
			claimed = append(claimed, fp)
			claimedFlights[fp] = f
		} else {
			joined = append(joined, f)
		}
	}

	var errs []error
	if len(claimed) > 0 {
		workers := min(maxWorkers, len(claimed))
		if workers < 1 {
			workers = 1
		}
		streams := make([]StreamStat, workers)
		peers := make([]tally, workers)
		workerErrs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			// Contiguous balanced shards: worker w takes [lo, hi).
			lo := w * len(claimed) / workers
			hi := (w + 1) * len(claimed) / workers
			wg.Add(1)
			go func(w int, shard []hashing.Fingerprint) {
				defer wg.Done()
				streams[w], peers[w], workerErrs[w] = s.fetchShard(shard, claimedFlights, class)
			}(w, claimed[lo:hi])
		}
		wg.Wait()
		window := FetchWindow{Prefetch: class == classPrefetch}
		var peerTotal tally
		for w := 0; w < workers; w++ {
			if streams[w].Objects > 0 {
				window.Streams = append(window.Streams, streams[w])
			}
			peerTotal.objects += peers[w].objects
			peerTotal.bytes += peers[w].bytes
			if workerErrs[w] != nil {
				errs = append(errs, workerErrs[w])
			}
		}
		s.recordPeer(peerTotal.objects, peerTotal.bytes)
		spanClass := telemetry.ClassDemand
		if class == classPrefetch {
			spanClass = telemetry.ClassPrefetch
		}
		if peerTotal.objects > 0 {
			s.opts.Trace.Record(telemetry.Span{
				Op: "fetch", Class: spanClass, Source: telemetry.SourcePeer,
				Objects: peerTotal.objects, Bytes: peerTotal.bytes,
			})
		}
		if n := window.Objects(); n > 0 {
			s.m.remoteObjects.Add(int64(n))
			s.m.remoteBytes.Add(window.Bytes())
			if class == classPrefetch {
				s.m.prefetchObjects.Add(int64(n))
				s.m.prefetchBytes.Add(window.Bytes())
			}
			s.opts.Trace.Record(telemetry.Span{
				Op: "fetch", Class: spanClass, Source: telemetry.SourceRegistry,
				Objects: n, Bytes: window.Bytes(),
			})
			switch {
			case s.opts.OnFetchWindow != nil:
				s.opts.OnFetchWindow(window)
			case s.opts.OnRemoteFetch != nil:
				s.opts.OnRemoteFetch(n, window.Bytes())
			}
		}
		for _, f := range joined {
			<-f.done
			if f.err != nil {
				errs = append(errs, f.err)
			}
		}
		return window, errors.Join(errs...)
	}

	for _, f := range joined {
		<-f.done
		if f.err != nil {
			errs = append(errs, f.err)
		}
	}
	return FetchWindow{}, errors.Join(errs...)
}

// fetchShard downloads one worker's shard: peers are tried first for
// every object, then what remains goes to the registry, preferring a
// single batch round trip. Every claimed flight in the shard is
// completed exactly once, whether the shard succeeds or fails. The
// returned StreamStat covers registry transfers (the WAN window); the
// tally covers peer-served transfers. Prefetch-class shards tag every
// object they admit so later demand reads score as prefetch hits.
func (s *Store) fetchShard(shard []hashing.Fingerprint, flights map[hashing.Fingerprint]*flight, class fetchClass) (StreamStat, tally, error) {
	if len(shard) == 0 {
		return StreamStat{}, tally{}, nil
	}
	admitted := func(fp hashing.Fingerprint) {
		if class == classPrefetch {
			s.markPrefetched(fp)
		}
	}
	var peer tally
	var errs []error
	rest := shard
	if s.opts.Peers != nil {
		rest = make([]hashing.Fingerprint, 0, len(shard))
		for _, fp := range shard {
			data, wire, ok := s.fetchFromPeer(fp)
			if !ok {
				rest = append(rest, fp)
				continue
			}
			f := flights[fp]
			c, perr := s.cache.Put(fp, data)
			if perr != nil {
				f.err = fmt.Errorf("store: cache %s: %w", fp, perr)
				errs = append(errs, f.err)
			} else {
				f.content = c
				peer.add(wire)
				admitted(fp)
			}
			s.finishFlight(fp, f)
		}
	}
	if len(rest) == 0 {
		return StreamStat{}, peer, errors.Join(errs...)
	}
	if s.opts.Remote == nil {
		err := fmt.Errorf("store: no remote registry: %w", gearregistry.ErrNotFound)
		for _, fp := range rest {
			f := flights[fp]
			f.err = err
			s.finishFlight(fp, f)
		}
		errs = append(errs, err)
		return StreamStat{}, peer, errors.Join(errs...)
	}

	if bd, ok := s.opts.Remote.(gearregistry.BatchDownloader); ok {
		payloads, wire, err := bd.DownloadBatch(rest)
		if err == nil {
			for i, fp := range rest {
				if verr := verify(fp, payloads[i]); verr != nil {
					err = verr
					break
				}
			}
		}
		if err != nil {
			// All-or-nothing: the whole remainder's flights fail together.
			err = fmt.Errorf("store: batch download: %w", err)
			for _, fp := range rest {
				f := flights[fp]
				f.err = err
				s.finishFlight(fp, f)
			}
			errs = append(errs, err)
			return StreamStat{}, peer, errors.Join(errs...)
		}
		for i, fp := range rest {
			f := flights[fp]
			c, perr := s.cache.Put(fp, payloads[i])
			if perr != nil {
				f.err = fmt.Errorf("store: cache %s: %w", fp, perr)
				errs = append(errs, f.err)
			} else {
				f.content = c
				admitted(fp)
			}
			s.finishFlight(fp, f)
		}
		return StreamStat{Objects: len(rest), Bytes: wire, Batched: true}, peer, errors.Join(errs...)
	}

	var st StreamStat
	for _, fp := range rest {
		f := flights[fp]
		data, wire, fromPeer, err := s.download(fp)
		if err == nil {
			var c *vfs.Content
			c, err = s.cache.Put(fp, data)
			if err != nil {
				err = fmt.Errorf("store: cache %s: %w", fp, err)
			} else {
				f.content = c
				admitted(fp)
				// A peer that announced between our probe above and this
				// retry still counts as peer traffic.
				if fromPeer {
					peer.add(wire)
				} else {
					st.Objects++
					st.Bytes += wire
				}
			}
		}
		f.err = err
		if err != nil {
			errs = append(errs, err)
		}
		s.finishFlight(fp, f)
	}
	return st, peer, errors.Join(errs...)
}

// verify checks a payload against its content address; collision
// fallback IDs ("<fp>-cN") are accepted as-is.
func verify(fp hashing.Fingerprint, data []byte) error {
	if len(fp) == 32 && hashing.FingerprintBytes(data) != fp {
		return fmt.Errorf("store: download %s: %w", fp, ErrCorruptDownload)
	}
	return nil
}
