package store

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/telemetry"
	"github.com/gear-image/gear/internal/vfs"
)

// The chunk fetch window: ranged reads of chunked files fault their
// chunks through a fixed byte budget of in-flight transfers instead of
// serially. The budget bounds the client's transient memory (and the
// link concurrency) however large the file or the read; demand chunks
// — the ones a blocked Read overlaps — are admitted with strict
// priority, and whatever budget is left behind them opportunistically
// reads ahead along the file. Readahead is admission-only: a demand
// read never waits for a readahead chunk's budget (a waiting demand
// blocks further readahead admission), and an in-flight readahead is
// not aborted — its bytes are already moving and are wanted next.

// DefaultChunkWindowBytes is the in-flight chunk byte budget used when
// Options leaves ChunkWindowBytes zero.
const DefaultChunkWindowBytes = 4 << 20

// chunkWindow is the byte-budget admission gate. Demand acquisitions
// block until the budget fits them (or the window is empty — a chunk
// bigger than the whole budget degenerates to serial admission rather
// than deadlocking); readahead admission is non-blocking and yields to
// any waiting demand.
type chunkWindow struct {
	mu     sync.Mutex
	cond   *sync.Cond
	budget int64
	// inflight is the admitted byte volume; waiting counts demand
	// acquisitions currently blocked, which veto readahead admission.
	inflight int64
	waiting  int
	// peak mirrors into the store.chunk.window.peak gauge: the high-water
	// mark of admitted bytes, the experiment's bounded-memory witness.
	peak *telemetry.Gauge
}

func newChunkWindow(budget int64, peak *telemetry.Gauge) *chunkWindow {
	w := &chunkWindow{budget: budget, peak: peak}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// acquire admits size demand bytes, blocking while they do not fit.
func (w *chunkWindow) acquire(size int64) {
	w.mu.Lock()
	w.waiting++
	for w.inflight > 0 && w.inflight+size > w.budget {
		w.cond.Wait()
	}
	w.waiting--
	w.admitLocked(size)
	w.mu.Unlock()
}

// tryAcquire admits size readahead bytes only if they fit right now and
// no demand acquisition is waiting.
func (w *chunkWindow) tryAcquire(size int64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.waiting > 0 || w.inflight+size > w.budget {
		return false
	}
	w.admitLocked(size)
	return true
}

func (w *chunkWindow) admitLocked(size int64) {
	w.inflight += size
	if w.inflight > w.peak.Value() {
		w.peak.Set(w.inflight)
	}
}

// release retires size admitted bytes.
func (w *chunkWindow) release(size int64) {
	w.mu.Lock()
	w.inflight -= size
	w.cond.Broadcast()
	w.mu.Unlock()
}

// ChunkWindowPeak returns the high-water mark of in-flight chunk bytes
// — never above ChunkWindowBytes unless a single chunk exceeded the
// whole budget (the serial-degeneration case).
func (s *Store) ChunkWindowPeak() int64 { return s.m.windowPeak.Value() }

// chunkSpan locates the chunks overlapping [off, off+n): the index
// range [lo, hi) and the file offset at which chunk lo starts.
func chunkSpan(chunks []index.Chunk, off, n int64) (lo, hi int, loOff int64) {
	var pos int64
	lo = -1
	for i, ch := range chunks {
		end := pos + ch.Size
		if end > off && pos < off+n {
			if lo < 0 {
				lo = i
				loOff = pos
			}
			hi = i + 1
		}
		if pos >= off+n {
			break
		}
		pos = end
	}
	if lo < 0 {
		return 0, 0, 0
	}
	return lo, hi, loOff
}

// fetchChunks faults the given chunks through the window concurrently
// and returns their contents in order, plus the per-source transfer
// tallies of what this call itself moved. Chunks already cached are
// served without touching the window.
func (s *Store) fetchChunks(chunks []index.Chunk) ([]*vfs.Content, tally, tally, error) {
	out := make([]*vfs.Content, len(chunks))
	var mu sync.Mutex
	var reg, peer tally
	var errs []error
	var wg sync.WaitGroup
	for i, ch := range chunks {
		if c, ok := s.cache.Get(ch.Fingerprint); ok {
			s.noteDemandHit(ch.Fingerprint)
			out[i] = c
			continue
		}
		wg.Add(1)
		go func(i int, ch index.Chunk) {
			defer wg.Done()
			s.window.acquire(ch.Size)
			defer s.window.release(ch.Size)
			s.m.chunkDemand.Inc()
			c, wire, src, err := s.fetchOne(ch.Fingerprint)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			out[i] = c
			switch src {
			case srcRegistry:
				reg.add(wire)
			case srcPeer:
				peer.add(wire)
			}
		}(i, ch)
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, reg, peer, errors.Join(errs...)
	}
	return out, reg, peer, nil
}

// readahead opportunistically schedules the next chunks after a
// demanded span, each admitted only if the window has spare budget and
// no demand read is waiting on it. Fetches run in the background; a
// later demand read on the same chunk joins the flight instead of
// re-downloading.
func (s *Store) readahead(chunks []index.Chunk) {
	for _, ch := range chunks {
		if s.cache.Contains(ch.Fingerprint) {
			continue
		}
		if !s.window.tryAcquire(ch.Size) {
			return
		}
		s.bg.Add(1)
		go s.readaheadChunk(ch.Fingerprint, ch.Size)
	}
}

// readaheadChunk downloads one admitted readahead chunk into the
// level-1 cache. It leads a flight like any fetch (a demand miss that
// arrives meanwhile joins it, scoring the readahead as useful via the
// prefetch-hit accounting); if another flight already has the chunk,
// the admission is simply returned.
func (s *Store) readaheadChunk(fp hashing.Fingerprint, size int64) {
	defer s.bg.Done()
	defer s.window.release(size)
	f, leader := s.claimFlight(fp)
	if !leader {
		return
	}
	defer s.finishFlight(fp, f)
	if c, ok := s.cache.Get(fp); ok {
		f.content = c
		return
	}
	data, wire, fromPeer, err := s.download(fp)
	if err != nil {
		f.err = err
		return
	}
	c, err := s.cache.Put(fp, data)
	if err != nil {
		f.err = fmt.Errorf("store: cache %s: %w", fp, err)
		return
	}
	f.content = c
	s.markPrefetched(fp)
	s.m.chunkReadahead.Inc()
	source := telemetry.SourceRegistry
	if fromPeer {
		s.recordPeer(1, wire)
		source = telemetry.SourcePeer
	} else {
		s.recordRemote(1, wire)
		s.m.prefetchObjects.Add(1)
		s.m.prefetchBytes.Add(wire)
	}
	s.opts.Trace.Record(telemetry.Span{
		Op: "readahead", Ref: refPrefix(fp), Class: telemetry.ClassPrefetch,
		Source: source, Objects: 1, Bytes: wire,
	})
}

// WaitReadahead blocks until every background readahead in flight has
// completed — the quiescence point experiments and tests measure at.
func (s *Store) WaitReadahead() { s.bg.Wait() }

// rangeRead is the non-chunked partial-read fast path: with
// Options.RangeReads set and a registry that speaks the range verb, a
// ranged fault moves only the requested bytes instead of materializing
// the file. The slice is served uncompressed and is NOT cached — it is
// not the whole verifiable object — so repeated cold partial reads
// re-fetch; a workload that re-reads should materialize instead. With
// the option off (the default) or the verb absent, ErrNotChunked tells
// the viewer to fall back to full materialization, byte-identical to a
// store without this path.
func (s *Store) rangeRead(fp hashing.Fingerprint, off, n int64) ([]byte, error) {
	if !s.opts.RangeReads || s.opts.Remote == nil {
		return nil, ErrNotChunked
	}
	rd, ok := s.opts.Remote.(gearregistry.RangeDownloader)
	if !ok {
		return nil, ErrNotChunked
	}
	if c, ok := s.cache.Get(fp); ok {
		s.noteDemandHit(fp)
		return sliceRange(c.Data(), off, n), nil
	}
	s.sched.beginDemand()
	start := time.Now()
	defer func() {
		stall := time.Since(start)
		s.m.stallNanos.Add(stall.Nanoseconds())
		s.m.stall.ObserveDuration(stall)
		s.sched.endDemand()
	}()
	payload, wire, err := rd.DownloadRange(fp, off, n)
	if err != nil {
		// A range past the file's end (or a registry without the object)
		// falls back to the full-read path, whose own clamping and error
		// reporting take over.
		if errors.Is(err, gearregistry.ErrBadRange) ||
			errors.Is(err, gearregistry.ErrRangeUnsupported) ||
			errors.Is(err, gearregistry.ErrNotFound) {
			return nil, ErrNotChunked
		}
		return nil, fmt.Errorf("store: range read %s: %w", fp, err)
	}
	s.recordRemote(1, wire)
	s.noteDemandMiss(fp, int64(len(payload)))
	s.m.rangeReads.Inc()
	s.opts.Trace.Record(telemetry.Span{
		Op: "rangefault", Ref: refPrefix(fp), Class: telemetry.ClassDemand,
		Source: telemetry.SourceRegistry, Objects: 1, Bytes: wire,
		Transfer: time.Since(start),
	})
	return payload, nil
}
