package index

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

// benchIndex builds a mid-size index: 20 directories of 25 files each
// plus a handful of chunked big files — roughly the entry count of the
// paper's smaller images.
func benchIndex(b *testing.B) *Index {
	b.Helper()
	fs := vfs.New()
	rng := rand.New(rand.NewSource(11))
	for d := 0; d < 20; d++ {
		dir := fmt.Sprintf("/app/dir%02d", d)
		if err := fs.MkdirAll(dir, 0o755); err != nil {
			b.Fatal(err)
		}
		for f := 0; f < 25; f++ {
			data := make([]byte, 64+rng.Intn(512))
			rng.Read(data)
			if err := fs.WriteFile(fmt.Sprintf("%s/f%02d", dir, f), data, 0o644); err != nil {
				b.Fatal(err)
			}
		}
	}
	big := make([]byte, 64<<10)
	rng.Read(big)
	for i := 0; i < 4; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/app/big%d.bin", i), big, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	ix, _, err := BuildChunked("bench", "v1", imagefmt.Config{}, fs, nil, 8192)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

func BenchmarkEncodeBinary(b *testing.B) {
	ix := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeBinary(ix); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBinary(b *testing.B) {
	ix := benchIndex(b)
	enc, err := EncodeBinary(ix)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBinary(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeJSON(b *testing.B) {
	ix := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(ix); err != nil {
			b.Fatal(err)
		}
	}
}
