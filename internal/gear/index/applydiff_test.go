package index

import (
	"testing"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/tarstream"
	"github.com/gear-image/gear/internal/vfs"
)

// baseIndex builds a small index to commit against.
func baseIndex(t *testing.T) *Index {
	t.Helper()
	root := vfs.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(root.MkdirAll("/etc/app", 0o755))
	must(root.MkdirAll("/data", 0o755))
	must(root.WriteFile("/etc/app/conf", []byte("v1 conf"), 0o644))
	must(root.WriteFile("/data/seed", []byte("seed"), 0o644))
	must(root.Symlink("conf", "/etc/app/conf-link"))
	ix, _, err := Build("app", "v1", imagefmt.Config{Env: []string{"E=1"}}, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestApplyDiffAddsModifiesDeletes(t *testing.T) {
	ix := baseIndex(t)
	diff := vfs.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// Modify an existing file, add a new nested file, delete another,
	// add a symlink.
	must(diff.MkdirAll("/etc/app", 0o755))
	must(diff.WriteFile("/etc/app/conf", []byte("v2 conf"), 0o600))
	must(diff.MkdirAll("/var/log/app", 0o755))
	must(diff.WriteFile("/var/log/app/out", []byte("log line"), 0o644))
	must(diff.MkdirAll("/data", 0o755))
	must(diff.WriteFile("/data/.wh.seed", nil, 0))
	must(diff.Symlink("/var/log/app/out", "/latest-log"))

	newIx, newFiles, err := ApplyDiff(ix, "app", "v2", diff, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := newIx.Validate(); err != nil {
		t.Fatal(err)
	}
	if newIx.Reference() != "app:v2" {
		t.Errorf("ref = %s", newIx.Reference())
	}
	// Config carried over.
	if len(newIx.Config.Env) != 1 || newIx.Config.Env[0] != "E=1" {
		t.Error("config lost")
	}
	// Modified file: new fingerprint, new mode.
	conf := newIx.Lookup("/etc/app/conf")
	if conf == nil || string(newFiles[conf.Fingerprint]) != "v2 conf" || conf.Mode != 0o600 {
		t.Errorf("modified conf entry = %+v", conf)
	}
	if conf.Fingerprint == ix.Lookup("/etc/app/conf").Fingerprint {
		t.Error("modified file kept its old fingerprint")
	}
	// Added file under new directories.
	if newIx.Lookup("/var/log/app/out") == nil {
		t.Error("added file missing")
	}
	// Deleted file.
	if newIx.Lookup("/data/seed") != nil {
		t.Error("whiteouted file survived")
	}
	if newIx.Lookup("/data") == nil {
		t.Error("parent of whiteouted file vanished")
	}
	// Symlink added.
	if e := newIx.Lookup("/latest-log"); e == nil || e.Target != "/var/log/app/out" {
		t.Errorf("symlink = %+v", e)
	}
	// Untouched entries keep their fingerprints.
	if newIx.Lookup("/etc/app/conf-link") == nil {
		t.Error("untouched symlink lost")
	}
	// newFiles contains exactly the two new contents.
	if len(newFiles) != 2 {
		t.Errorf("new files = %d, want 2", len(newFiles))
	}
	// The old index is unchanged.
	if ix.Lookup("/var/log") != nil || ix.Lookup("/data/seed") == nil {
		t.Error("ApplyDiff mutated the source index")
	}
}

func TestApplyDiffOpaqueDirectory(t *testing.T) {
	ix := baseIndex(t)
	diff := vfs.New()
	if err := diff.MkdirAll("/etc/app", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := diff.WriteFile("/etc/app/"+tarstream.OpaqueMarker, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := diff.WriteFile("/etc/app/fresh", []byte("only me"), 0o644); err != nil {
		t.Fatal(err)
	}
	newIx, _, err := ApplyDiff(ix, "app", "v2", diff, nil)
	if err != nil {
		t.Fatal(err)
	}
	if newIx.Lookup("/etc/app/conf") != nil || newIx.Lookup("/etc/app/conf-link") != nil {
		t.Error("opaque directory kept old entries")
	}
	if newIx.Lookup("/etc/app/fresh") == nil {
		t.Error("opaque directory lost this layer's entry")
	}
}

func TestApplyDiffReplaceDirWithFile(t *testing.T) {
	ix := baseIndex(t)
	diff := vfs.New()
	if err := diff.WriteFile("/.wh.data", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := diff.WriteFile("/data", []byte("now a file"), 0o644); err != nil {
		t.Fatal(err)
	}
	newIx, files, err := ApplyDiff(ix, "app", "v2", diff, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := newIx.Lookup("/data")
	if e == nil || e.Type != vfs.TypeRegular {
		t.Fatalf("entry = %+v, want regular file", e)
	}
	if string(files[e.Fingerprint]) != "now a file" {
		t.Error("replacement content wrong")
	}
	if newIx.Lookup("/data/seed") != nil {
		t.Error("child of replaced directory survived")
	}
}

func TestApplyDiffDeduplicatesNewFiles(t *testing.T) {
	ix := baseIndex(t)
	diff := vfs.New()
	if err := diff.WriteFile("/a", []byte("same bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := diff.WriteFile("/b", []byte("same bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	newIx, files, err := ApplyDiff(ix, "app", "v2", diff, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Errorf("new files = %d, want 1 (deduped)", len(files))
	}
	if newIx.Lookup("/a").Fingerprint != newIx.Lookup("/b").Fingerprint {
		t.Error("identical new files got different fingerprints")
	}
}

func TestApplyDiffMatchesOverlaySemantics(t *testing.T) {
	// Index-level diff application must agree with filesystem-level
	// ApplyLayer on the materialized trees.
	ix := baseIndex(t)
	diff := vfs.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(diff.MkdirAll("/etc/app", 0o755))
	must(diff.WriteFile("/etc/app/.wh.conf-link", nil, 0))
	must(diff.WriteFile("/etc/app/new", []byte("n"), 0o644))
	must(diff.WriteFile("/.wh.data", nil, 0))

	newIx, _, err := ApplyDiff(ix, "app", "v2", diff, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotTree, err := newIx.ToTree()
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: placeholder tree + raw overlay application, re-parsed.
	oracleTree, err := ix.ToTree()
	if err != nil {
		t.Fatal(err)
	}
	// Fingerprint the diff's regular files the same way ApplyDiff does so
	// both sides carry placeholders.
	reg := hashing.NewRegistry(nil)
	phDiff := vfs.New()
	must(phDiff.MkdirAll("/etc/app", 0o755))
	must(phDiff.WriteFile("/etc/app/.wh.conf-link", nil, 0))
	newData := []byte("n")
	must(phDiff.WriteFile("/etc/app/new", Placeholder(reg.Assign(newData), int64(len(newData))), 0o644))
	must(phDiff.WriteFile("/.wh.data", nil, 0))
	if err := tarstream.ApplyLayer(oracleTree, phDiff); err != nil {
		t.Fatal(err)
	}
	oracleIx, err := FromTree("app", "v2", ix.Config, oracleTree)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Encode(oracleIx)
	if err != nil {
		t.Fatal(err)
	}
	gotIx, err := FromTree("app", "v2", ix.Config, gotTree)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(gotIx)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("ApplyDiff disagrees with overlay semantics:\n%s\nvs\n%s", b, a)
	}
}
